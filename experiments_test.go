// Experiment harness: one test per measurable paper artifact (see
// EXPERIMENTS.md and DESIGN.md §4). Run with -v to see the regenerated
// tables next to the paper's claims:
//
//	go test -v -run TestExperiment .
package cloudmon_test

import (
	"crypto/ed25519"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"cloudmon/internal/contract"
	"cloudmon/internal/core"
	"cloudmon/internal/evidence"
	"cloudmon/internal/loadgen"
	"cloudmon/internal/mbt"
	"cloudmon/internal/monitor"
	"cloudmon/internal/mutation"
	"cloudmon/internal/ocl"
	"cloudmon/internal/paper"
	"cloudmon/internal/rbac"
	"cloudmon/internal/uml"

	"cloudmon/internal/openstack/cinder"
)

// TestExperimentTableI (E1): the security requirements of Table I are
// recoverable from the generated contracts — each (method, role) cell of
// the table agrees with the contract's authorization guard, and the
// shipped policy.json enforces the same matrix.
func TestExperimentTableI(t *testing.T) {
	set, err := contract.Generate(paper.CinderModel())
	if err != nil {
		t.Fatal(err)
	}
	policy := cinder.DefaultPolicy()
	actions := map[uml.HTTPMethod]string{
		uml.GET: cinder.ActionGet, uml.PUT: cinder.ActionUpdate,
		uml.POST: cinder.ActionCreate, uml.DELETE: cinder.ActionDelete,
	}
	allRoles := []string{paper.RoleAdmin, paper.RoleMember, paper.RoleUser}

	for _, row := range paper.TableI() {
		c, ok := set.For(uml.Trigger{Method: row.Request, Resource: row.Resource})
		if !ok {
			t.Fatalf("no contract for %s(%s)", row.Request, row.Resource)
		}
		if len(c.SecReqs) != 1 || c.SecReqs[0] != row.SecReq {
			t.Errorf("%s: contract SecReqs = %v, want [%s]", row.Request, c.SecReqs, row.SecReq)
		}
		for _, role := range allRoles {
			_, allowed := row.Roles[role]

			// (a) The contract's pre-condition must admit exactly the
			// table's roles (state conditions held constant at a
			// satisfiable configuration).
			env := ocl.MapEnv{
				"project.id":        ocl.StringVal("p"),
				"project.volumes":   ocl.CollectionVal(ocl.StringVal("v")),
				"quota_sets.volume": ocl.IntVal(10),
				"volume.status":     ocl.StringVal("available"),
				"user.id.groups":    ocl.StringsVal(role),
			}
			if row.Request == uml.POST {
				env["project.volumes"] = ocl.CollectionVal()
			}
			got, err := ocl.EvalBool(c.Pre, ocl.Context{Cur: env})
			if err != nil {
				t.Fatal(err)
			}
			if got != allowed {
				t.Errorf("SecReq %s (%s) role %s: contract says %v, Table I says %v",
					row.SecReq, row.Request, role, got, allowed)
			}

			// (b) The cloud's policy.json must agree.
			polOK, err := policy.Check(actions[row.Request],
				rbac.Credentials{Roles: []string{role}}, nil)
			if err != nil {
				t.Fatal(err)
			}
			if polOK != allowed {
				t.Errorf("SecReq %s (%s) role %s: policy says %v, Table I says %v",
					row.SecReq, row.Request, role, polOK, allowed)
			}
			t.Logf("Table I | %-6s %-7s role=%-6s allowed=%v (contract=%v policy=%v)",
				row.SecReq, row.Request, role, allowed, got, polOK)
		}
	}
}

// TestExperimentListing1 (E2): the generated DELETE(volume) contract has
// the exact structure of the paper's Listing 1 — a three-way disjunctive
// pre-condition (one disjunct per triggering transition: two from
// not-full-quota, one from full-quota) and per-case implications over
// pre-state values in the post-condition.
func TestExperimentListing1(t *testing.T) {
	set, err := contract.Generate(paper.CinderModel())
	if err != nil {
		t.Fatal(err)
	}
	c, ok := set.For(uml.Trigger{Method: uml.DELETE, Resource: "volume"})
	if !ok {
		t.Fatal("no DELETE(volume) contract")
	}
	if len(c.Cases) != 3 {
		t.Fatalf("cases = %d, want 3 (paper: three transitions)", len(c.Cases))
	}
	listing := contract.RenderListing(c, contract.StylePaper)
	t.Logf("regenerated Listing 1:\n%s", listing)

	// Structural checks against the paper's listing.
	for _, want := range []string{
		// all three antecedents mention the admin-group condition:
		"user.id.groups = 'admin'",
		// the in-use guard:
		"volume.status <> 'in-use'",
		// the quota comparisons, under- and at-quota:
		"project.volumes < quota_sets.volume",
		"project.volumes = quota_sets.volume",
		// the old-value effect:
		"pre(project.volumes->size())",
	} {
		if !strings.Contains(listing, want) {
			t.Errorf("listing missing %q", want)
		}
	}
	if got := strings.Count(listing, "user.id.groups = 'admin'"); got < 6 {
		t.Errorf("admin condition appears %d times, want >= 6 (3 pre + 3 post antecedents)", got)
	}
	// Every rendered case re-parses (the contracts are real OCL, not
	// strings).
	for i, cs := range c.Cases {
		if _, err := ocl.Parse(cs.Pre.String()); err != nil {
			t.Errorf("case %d pre does not re-parse: %v", i, err)
		}
		if _, err := ocl.Parse(cs.Post.String()); err != nil {
			t.Errorf("case %d post does not re-parse: %v", i, err)
		}
	}
}

// TestExperimentWorkflow (E3): Figure 2's workflow holds on a live
// deployment — requests whose pre-condition fails are answered with an
// invalid response and never reach the cloud; requests whose pre- and
// post-conditions hold return the cloud's response.
func TestExperimentWorkflow(t *testing.T) {
	lab, err := mutation.NewLab()
	if err != nil {
		t.Fatal(err)
	}
	requests := lab.RunMatrix()
	outcomes := lab.Sys.Monitor.Outcomes()
	t.Logf("workflow over %d requests: ok=%d rejected=%d violations=%d errors=%d",
		requests, outcomes[monitor.OK], outcomes[monitor.Rejected],
		len(lab.Sys.Monitor.Violations()), outcomes[monitor.Error])
	if outcomes[monitor.OK] == 0 {
		t.Error("no requests passed both pre- and post-conditions")
	}
	if outcomes[monitor.Rejected] == 0 {
		t.Error("no contract-forbidden requests were exercised")
	}
	if outcomes[monitor.Error] != 0 {
		t.Error("monitor errors during the workflow")
	}
	if n := len(lab.Sys.Monitor.Violations()); n != 0 {
		t.Errorf("clean cloud produced %d violations", n)
	}
}

// TestExperimentMutants (E4): Section VI.D — "we were able to kill all
// three mutants systematically introduced in the cloud implementation".
// The paper's three mutants and the extended catalogue must all be killed,
// with zero false positives on the clean deployment.
func TestExperimentMutants(t *testing.T) {
	report, err := mutation.RunCampaign(mutation.Catalogue())
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	report.Format(&sb)
	t.Logf("kill matrix:\n%s", sb.String())

	if report.BaselineViolations != 0 {
		t.Errorf("baseline violations = %d, want 0", report.BaselineViolations)
	}
	paperKilled := 0
	for _, run := range report.Runs {
		if run.Paper && run.Killed {
			paperKilled++
		}
		if !run.Killed {
			t.Errorf("mutant %s (%s) survived", run.MutantID, run.MutantName)
		}
	}
	if paperKilled != 3 {
		t.Errorf("paper mutants killed = %d/3", paperKilled)
	}
}

// TestExperimentSnapshotFootprint (E7 claim check): the paper argues the
// monitor's pre-state storage is cheap because "we do not need to save the
// copy of the whole resource(s) but only the values that constitute the
// guards and invariants ... usually a few bits of storage per method".
// Measure the snapshot of the heaviest contract.
func TestExperimentSnapshotFootprint(t *testing.T) {
	set, err := contract.Generate(paper.CinderModel())
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range set.Contracts {
		paths := c.StatePaths()
		// A realistic snapshot for the paths.
		env := ocl.MapEnv{
			"project.id":        ocl.StringVal("8f9c2b4de1a34567"),
			"project.volumes":   ocl.CollectionVal(ocl.StringVal("a"), ocl.StringVal("b"), ocl.StringVal("c")),
			"quota_sets.volume": ocl.IntVal(10),
			"volume.status":     ocl.StringVal("available"),
			"user.id.groups":    ocl.StringsVal("admin"),
		}
		bytes := 0
		for _, p := range paths {
			v, _ := env.Resolve(strings.Split(p, "."))
			bytes += len(p) + len(v.String())
		}
		t.Logf("%-16s snapshot: %d paths, ~%d bytes", c.Trigger, len(paths), bytes)
		if len(paths) > 8 {
			t.Errorf("%s snapshots %d paths; the contract should only need its guard/invariant values", c.Trigger, len(paths))
		}
		if bytes > 512 {
			t.Errorf("%s snapshot ~%d bytes; expected tens of bytes per method", c.Trigger, bytes)
		}
	}
}

// TestExperimentAblation (E10): the value of post-condition checking — a
// pre-only monitor (half the state reads) still kills every authorization
// mutant, but the lost-effect mutants survive; only the full workflow of
// Figure 2 reaches 100% kills.
func TestExperimentAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation campaign in -short mode")
	}
	full, err := mutation.RunCampaign(mutation.Catalogue())
	if err != nil {
		t.Fatal(err)
	}
	preOnly, err := mutation.RunCampaignWithOptions(mutation.Catalogue(), mutation.LabOptions{
		Level: monitor.CheckPreOnly,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("ablation | full monitor: %d/%d killed; pre-only: %d/%d killed",
		full.Killed(), len(full.Runs), preOnly.Killed(), len(preOnly.Runs))
	if full.Killed() != len(full.Runs) {
		t.Errorf("full monitor killed %d/%d", full.Killed(), len(full.Runs))
	}
	if preOnly.Killed() >= full.Killed() {
		t.Errorf("pre-only monitor should kill strictly fewer mutants (%d vs %d)",
			preOnly.Killed(), full.Killed())
	}
	// The survivors are exactly the lost-effect mutants.
	for _, run := range preOnly.Runs {
		wantSurvive := run.MutantID == "F3" || run.MutantID == "F4"
		if run.Killed == wantSurvive {
			t.Errorf("pre-only: mutant %s killed=%v, want %v", run.MutantID, run.Killed, !wantSurvive)
		}
	}
}

// TestExperimentGenerality (E11, extension): the pipeline is not
// Cinder-specific — contracts generated from the Nova server model monitor
// the compute API and kill its authorization mutants with zero false
// positives.
func TestExperimentGenerality(t *testing.T) {
	report, err := mutation.RunNovaCampaign(mutation.NovaCatalogue())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("nova campaign: killed %d/%d, baseline %d requests %d violations",
		report.Killed(), len(report.Runs),
		report.BaselineRequests, report.BaselineViolations)
	if report.BaselineViolations != 0 {
		t.Errorf("nova baseline violations = %d", report.BaselineViolations)
	}
	if report.Killed() != len(report.Runs) {
		t.Errorf("nova mutants killed %d/%d", report.Killed(), len(report.Runs))
	}
}

// TestExperimentMBT (E12, extension): the test matrix need not be written
// by hand — a suite generated from the behavioral model (positive,
// negative and anonymous cases per transition) passes on a clean cloud and
// exposes the paper's mutants.
func TestExperimentMBT(t *testing.T) {
	suite, err := mbt.Generate(paper.CinderBehavioralModel(),
		[]string{paper.RoleAdmin, paper.RoleMember, paper.RoleUser})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("generated %d cases from the behavioral model", len(suite.Cases))
	ex := mutation.NewModelExecutor(nil)
	res, err := mbt.Run(suite, ex)
	if err != nil {
		t.Fatal(err)
	}
	if res.Passed() != len(res.Results) {
		for _, f := range res.Failures() {
			t.Errorf("clean-cloud case %s failed: %v", f.Case.ID, f.SetupErr)
		}
	}
	if ex.Violations() != 0 {
		t.Errorf("clean cloud produced %d violations", ex.Violations())
	}
}

// TestExperimentCoverage (E9): requirement-coverage traceability (Section
// IV.C) — after the standard request matrix, every Table-I security
// requirement has been exercised and is reported by the monitor.
func TestExperimentCoverage(t *testing.T) {
	lab, err := mutation.NewLab()
	if err != nil {
		t.Fatal(err)
	}
	lab.RunMatrix()
	cov := lab.Sys.Monitor.Coverage()
	for _, row := range paper.TableI() {
		if cov[row.SecReq] == 0 {
			t.Errorf("SecReq %s (%s) not covered", row.SecReq, row.Request)
		}
		t.Logf("coverage | SecReq %-4s (%s volume): %d hits", row.SecReq, row.Request, cov[row.SecReq])
	}
}

// TestExperimentE16FactPruning (E16): symbolic facts proven at
// plan-compile time prune per-clause evaluation work on the paper's
// Cinder model with verdicts unchanged. End-to-end through the simulated
// cloud: deleting the project's last volume arms the size()=1 disjunct
// and decides its size()>1 sibling by one witness element; creating into
// the empty project decides all three siblings of the NoVolume disjunct
// the same way. The demanded-path counts are pinned against the no-facts
// baseline (the PR-5 engine).
func TestExperimentE16FactPruning(t *testing.T) {
	run := func(noFacts bool) []monitor.Verdict {
		d := newThroughputDeployment(t, 0, func(o *core.Options) { o.NoFacts = noFacts })
		// DELETE the seeded (and only) volume, then POST into the now
		// empty project.
		if _, err := d.monitored.Do(http.MethodDelete,
			"/projects/"+d.projectID+"/volumes/"+d.volumeID, nil, nil, nil); err != nil {
			t.Fatal(err)
		}
		in := map[string]map[string]any{"volume": {"name": "x", "size": 1}}
		if _, err := d.monitored.Do(http.MethodPost,
			"/projects/"+d.projectID+"/volumes", in, nil, nil); err != nil {
			t.Fatal(err)
		}
		return d.sys.Monitor.Log()
	}
	facts, plain := run(false), run(true)
	if len(facts) != 2 || len(plain) != 2 {
		t.Fatalf("verdict logs: %d/%d entries, want 2/2", len(facts), len(plain))
	}
	want := []struct {
		op                 string
		skipped            int
		demFacts, demPlain int
	}{
		{"DELETE last volume", 1, 12, 14},
		{"POST into empty project", 3, 11, 16},
	}
	for i, w := range want {
		vf, vp := facts[i], plain[i]
		if vf.Outcome != vp.Outcome {
			t.Errorf("%s: outcome diverged: facts %s vs plain %s", w.op, vf.Outcome, vp.Outcome)
		}
		if vp.FactsSkipped != 0 {
			t.Errorf("%s: no-facts arm reports %d skips", w.op, vp.FactsSkipped)
		}
		if vf.FactsSkipped != w.skipped || vf.DemandedPaths != w.demFacts || vp.DemandedPaths != w.demPlain {
			t.Errorf("%s: skipped=%d demands=%d/%d (facts/plain), want %d and %d/%d",
				w.op, vf.FactsSkipped, vf.DemandedPaths, vp.DemandedPaths,
				w.skipped, w.demFacts, w.demPlain)
		}
		t.Logf("E16 | %-24s demanded paths %d -> %d (%d fact skips), outcome %s",
			w.op, vp.DemandedPaths, vf.DemandedPaths, vf.FactsSkipped, vf.Outcome)
	}
}

// TestExperimentE19EvidencePack (E19): signed evidence packs replay
// independently. A real load run writes its audit trail; the trail is
// cut into a PackSpec v1 pack (canonical JSON, SHA-256 manifest,
// Ed25519 signature); a verifier holding only the pack and the
// contract model re-evaluates every packed verdict against the packed
// snapshots — divergence must be 0 of N. Flipping a single byte in a
// packed segment must break verification with a pointed
// manifest-mismatch error.
func TestExperimentE19EvidencePack(t *testing.T) {
	sc, err := loadgen.Lookup("cinder-mixed")
	if err != nil {
		t.Fatal(err)
	}
	sc.Requests, sc.Warmup = 400, 0
	dep, err := loadgen.Deploy(loadgen.DeployOptions{AuditDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Close()
	if _, err := loadgen.Run(sc, dep.Target); err != nil {
		t.Fatal(err)
	}
	if err := dep.Audit.Sync(); err != nil {
		t.Fatal(err)
	}

	_, priv, err := evidence.GenerateKey(nil)
	if err != nil {
		t.Fatal(err)
	}
	packPath := filepath.Join(t.TempDir(), "run.pack")
	res, err := evidence.BuildPack(dep.Audit.Dir(), packPath, evidence.PackOptions{
		Key:       priv,
		Scenario:  sc.Name,
		SetDigest: dep.Sys.Contracts.Digest(),
		Tool:      "experiments",
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Records == 0 {
		t.Fatal("E19 needs a trail with verdicts; the scenario produced none")
	}

	p, err := evidence.OpenPack(packPath)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	rep, err := p.Verify(priv.Public().(ed25519.PublicKey))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("pack verification failed: %+v", rep)
	}
	recs, err := p.Records()
	if err != nil {
		t.Fatal(err)
	}
	replayer, err := monitor.NewReplayer(dep.Sys.Contracts)
	if err != nil {
		t.Fatal(err)
	}
	sum := replayer.ReplayAll(recs.Records)
	if !sum.OK() || sum.Replayed == 0 {
		t.Fatalf("replay: %+v (failures %+v)", sum, sum.Failures)
	}
	if sum.Diverged != 0 {
		t.Fatalf("E19 requires 0 divergences, got %d", sum.Diverged)
	}
	t.Logf("E19 | packed %d records (pack %.24s…), replayed %d, matched %d, diverged 0",
		res.Records, res.PackID, sum.Replayed, sum.Matched)

	// One flipped byte anywhere must break the pack.
	seg := filepath.Join(packPath, "segments", "audit-000001.jsonl")
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/3] ^= 0x01
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}
	p2, err := evidence.OpenPack(packPath)
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	rep2, err := p2.Verify(nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.PackOK() {
		t.Fatal("flipped byte not detected")
	}
	pointed := false
	for _, prob := range rep2.Problems {
		if strings.Contains(prob, "manifest mismatch") && strings.Contains(prob, "audit-000001.jsonl") {
			pointed = true
		}
	}
	if !pointed {
		t.Fatalf("no pointed manifest-mismatch problem: %v", rep2.Problems)
	}
	t.Logf("E19 | tamper: 1 flipped byte -> %d verification problems", len(rep2.Problems))
}

// TestExperimentE20FleetScaling (E20): horizontal sharding pays off once
// each monitor instance is bound by its per-process backend connection
// budget and the cloud round-trip time. The same cinder-mixed workload
// runs against fleets of N ∈ {1, 2, 4} instances behind the
// consistent-hash front, every instance throttled to 2 backend
// connections at 1 ms simulated RTT. Aggregate throughput must scale —
// the gate is ≥ 2.5× at N=4 over N=1 — and the per-N results are
// written to BENCH_fleet.json so the trajectory is tracked across
// commits (`make fleetbench`).
func TestExperimentE20FleetScaling(t *testing.T) {
	if testing.Short() {
		t.Skip("latency-bound fleet experiment (a few seconds of simulated RTT)")
	}
	sc, err := loadgen.Lookup("cinder-mixed")
	if err != nil {
		t.Fatal(err)
	}
	sc.Requests, sc.Warmup, sc.Clients, sc.Prepopulate = 2000, 160, 128, 4

	const (
		tenants      = 128
		connsPerInst = 2
		rtt          = time.Millisecond
	)
	type result struct {
		Instances     int     `json:"instances"`
		Requests      int     `json:"requests"`
		ThroughputRPS float64 `json:"throughput_rps"`
		Speedup       float64 `json:"speedup_vs_n1"`
	}
	var results []result
	for _, n := range []int{1, 2, 4} {
		fdep, err := loadgen.DeployFleet(loadgen.FleetOptions{
			Instances: n, TenantCount: tenants, RTT: rtt, Conns: connsPerInst,
		})
		if err != nil {
			t.Fatal(err)
		}
		rep, runErr := loadgen.Run(sc, fdep.Target)
		fdep.Close()
		if runErr != nil {
			t.Fatal(runErr)
		}
		if rep.Errors != 0 {
			t.Fatalf("E20 N=%d: %d request errors", n, rep.Errors)
		}
		results = append(results, result{Instances: n, Requests: rep.Requests, ThroughputRPS: rep.Throughput})
		t.Logf("E20 | N=%d  conns/instance=%d  rtt=%s: %7.0f req/s",
			n, connsPerInst, rtt, rep.Throughput)
	}
	base := results[0].ThroughputRPS
	for i := range results {
		results[i].Speedup = results[i].ThroughputRPS / base
	}
	speedup := results[len(results)-1].Speedup
	t.Logf("E20 | aggregate speedup N=4 over N=1: %.2fx (gate >= 2.5x)", speedup)
	if speedup < 2.5 {
		t.Errorf("E20: N=4 speedup %.2fx < 2.5x over N=1", speedup)
	}

	out := struct {
		Experiment       string   `json:"experiment"`
		Scenario         string   `json:"scenario"`
		RTTMillis        float64  `json:"rtt_ms"`
		ConnsPerInstance int      `json:"conns_per_instance"`
		Clients          int      `json:"clients"`
		Tenants          int      `json:"tenants"`
		Results          []result `json:"results"`
	}{
		Experiment: "E20", Scenario: sc.Name,
		RTTMillis: float64(rtt) / float64(time.Millisecond), ConnsPerInstance: connsPerInst,
		Clients: sc.Clients, Tenants: tenants, Results: results,
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_fleet.json", append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("E20 | wrote BENCH_fleet.json (%d bytes)", len(data)+1)
}
