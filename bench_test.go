// Benchmark harness for the paper's experiments (see EXPERIMENTS.md):
//
//	E5  BenchmarkMonitorOverhead    proxy cost vs direct cloud access
//	E6  BenchmarkContractGeneration model-size sweep
//	E7  BenchmarkOCLEval            formula-size sweep (+ parse)
//	E8  BenchmarkCodegen            resources-count sweep
//	E13 BenchmarkMonitorThroughput  concurrent hot path: serial vs
//	    parallel snapshots vs pre-state cache, in-process and with
//	    simulated network latency
//	E15 BenchmarkEvalPlan           demand-driven evaluation vs eager
//	    whole-contract snapshots, with per-op cloud-GET economy and
//	    flight coalescing under simulated latency
//	E16 BenchmarkEvalPlanFacts      compile-time fact pruning vs the
//	    no-facts lazy baseline, with per-op clause-demand economy
//	E17 BenchmarkCompiledEval       closure-chain compiled clauses vs the
//	    tree-walking reference on the in-process OK path
//
// plus supporting micro-benchmarks for the substrate (policy checks,
// XMI round-trips, router dispatch).
package cloudmon_test

import (
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"cloudmon/internal/codegen"
	"cloudmon/internal/contract"
	"cloudmon/internal/core"
	"cloudmon/internal/httpkit"
	"cloudmon/internal/monitor"
	"cloudmon/internal/ocl"
	"cloudmon/internal/openstack"
	"cloudmon/internal/openstack/cinder"
	"cloudmon/internal/osbinding"
	"cloudmon/internal/osclient"
	"cloudmon/internal/paper"
	"cloudmon/internal/rbac"
	"cloudmon/internal/uml"
	"cloudmon/internal/xmi"
)

// benchDeployment wires cloud + monitor in process for the overhead bench.
type benchDeployment struct {
	cloud     *openstack.Cloud
	sys       *core.System
	projectID string
	volumeID  string
	direct    *osclient.Client // straight to the cloud
	monitored *osclient.Client // through the monitor
}

func newBenchDeployment(b *testing.B, mode monitor.Mode) *benchDeployment {
	b.Helper()
	cloud := openstack.New(openstack.Config{})
	seed := cloud.ApplySeed(openstack.Seed{
		ProjectName: "bench",
		Quota:       cinder.QuotaSet{Volumes: 1000000, Gigabytes: 1 << 30},
		GroupRoles:  paper.GroupRole(),
		Users: []openstack.SeedUser{
			{Name: "alice", Password: "pw", Group: paper.GroupProjAdministrator},
			{Name: "cm-svc", Password: "pw", Group: paper.GroupProjAdministrator},
		},
	})
	cloudHTTP := httpkit.HandlerClient(cloud)
	sys, err := core.Build(core.Options{
		Model:    paper.CinderModel(),
		CloudURL: "http://cloud.internal",
		ServiceAccount: osbinding.ServiceAccount{
			User: "cm-svc", Password: "pw", ProjectID: seed.ProjectID,
		},
		Mode:       mode,
		HTTPClient: cloudHTTP,
	})
	if err != nil {
		b.Fatal(err)
	}
	auth := osclient.Client{BaseURL: "http://cloud.internal", HTTPClient: cloudHTTP}
	tok, err := auth.Authenticate("alice", "pw", seed.ProjectID)
	if err != nil {
		b.Fatal(err)
	}
	direct := osclient.New("http://cloud.internal")
	direct.HTTPClient = cloudHTTP
	monitored := osclient.New("http://monitor.internal")
	monitored.HTTPClient = httpkit.HandlerClient(sys.Monitor)

	d := &benchDeployment{
		cloud:     cloud,
		sys:       sys,
		projectID: seed.ProjectID,
		direct:    direct.WithToken(tok),
		monitored: monitored.WithToken(tok),
	}
	v, _, err := d.direct.CreateVolume(d.projectID, "bench", 1)
	if err != nil {
		b.Fatal(err)
	}
	d.volumeID = v.ID
	return d
}

// BenchmarkMonitorOverhead (E5) compares a GET on the volume resource
// issued directly against the cloud with the same GET through the cloud
// monitor (pre-snapshot + pre-check + forward + post-snapshot +
// post-check), plus the write path (POST+DELETE pairs).
func BenchmarkMonitorOverhead(b *testing.B) {
	b.Run("GET/direct", func(b *testing.B) {
		d := newBenchDeployment(b, monitor.Enforce)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := d.direct.GetVolume(d.projectID, d.volumeID); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("GET/monitored", func(b *testing.B) {
		d := newBenchDeployment(b, monitor.Enforce)
		path := "/projects/" + d.projectID + "/volumes/" + d.volumeID
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := d.monitored.Do(http.MethodGet, path, nil, nil, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("CreateDelete/direct", func(b *testing.B) {
		d := newBenchDeployment(b, monitor.Enforce)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			v, _, err := d.direct.CreateVolume(d.projectID, "x", 1)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := d.direct.DeleteVolume(d.projectID, v.ID); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("CreateDelete/monitored", func(b *testing.B) {
		d := newBenchDeployment(b, monitor.Enforce)
		collection := "/projects/" + d.projectID + "/volumes"
		in := map[string]map[string]any{"volume": {"name": "x", "size": 1}}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var out struct {
				Volume cinder.Volume `json:"volume"`
			}
			if _, err := d.monitored.Do(http.MethodPost, collection, in, &out, nil); err != nil {
				b.Fatal(err)
			}
			if _, err := d.monitored.Do(http.MethodDelete, collection+"/"+out.Volume.ID, nil, nil, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// delayTransport adds a fixed latency to every backend round trip — a
// stand-in for a monitor deployed across a network from the cloud.
type delayTransport struct {
	base  http.RoundTripper
	delay time.Duration
}

func (t delayTransport) RoundTrip(r *http.Request) (*http.Response, error) {
	time.Sleep(t.delay)
	return t.base.RoundTrip(r)
}

// newThroughputDeployment wires cloud + monitor in process with an
// optional per-backend-request delay and arbitrary core option tweaks
// (testing.TB so experiment tests can reuse it alongside benchmarks).
func newThroughputDeployment(b testing.TB, delay time.Duration, mutate func(*core.Options)) *benchDeployment {
	b.Helper()
	cloud := openstack.New(openstack.Config{})
	seed := cloud.ApplySeed(openstack.Seed{
		ProjectName: "bench",
		Quota:       cinder.QuotaSet{Volumes: 1000000, Gigabytes: 1 << 30},
		GroupRoles:  paper.GroupRole(),
		Users: []openstack.SeedUser{
			{Name: "alice", Password: "pw", Group: paper.GroupProjAdministrator},
			{Name: "cm-svc", Password: "pw", Group: paper.GroupProjAdministrator},
		},
	})
	cloudHTTP := httpkit.HandlerClient(cloud)
	monHTTP := cloudHTTP
	if delay > 0 {
		monHTTP = &http.Client{Transport: delayTransport{base: cloudHTTP.Transport, delay: delay}}
	}
	opts := core.Options{
		Model:    paper.CinderModel(),
		CloudURL: "http://cloud.internal",
		ServiceAccount: osbinding.ServiceAccount{
			User: "cm-svc", Password: "pw", ProjectID: seed.ProjectID,
		},
		Mode:       monitor.Enforce,
		HTTPClient: monHTTP,
	}
	if mutate != nil {
		mutate(&opts)
	}
	sys, err := core.Build(opts)
	if err != nil {
		b.Fatal(err)
	}
	auth := osclient.Client{BaseURL: "http://cloud.internal", HTTPClient: cloudHTTP}
	tok, err := auth.Authenticate("alice", "pw", seed.ProjectID)
	if err != nil {
		b.Fatal(err)
	}
	direct := osclient.New("http://cloud.internal")
	direct.HTTPClient = cloudHTTP
	monitored := osclient.New("http://monitor.internal")
	monitored.HTTPClient = httpkit.HandlerClient(sys.Monitor)
	d := &benchDeployment{
		cloud:     cloud,
		sys:       sys,
		projectID: seed.ProjectID,
		direct:    direct.WithToken(tok),
		monitored: monitored.WithToken(tok),
	}
	v, _, err := d.direct.CreateVolume(d.projectID, "bench", 1)
	if err != nil {
		b.Fatal(err)
	}
	d.volumeID = v.ID
	return d
}

// BenchmarkMonitorThroughput (E13) drives a concurrent monitored GET
// workload through each hot-path configuration. The in-process variants
// measure software overhead under contention (sharded log, precomputed
// state paths, pre-state cache); the netsim variants add 1ms of simulated
// network latency per backend request, where fanning the five snapshot
// reads across the worker pool collapses pre+post snapshot cost from
// ~10 sequential round trips to ~2-4.
func BenchmarkMonitorThroughput(b *testing.B) {
	variants := []struct {
		name   string
		mutate func(*core.Options)
	}{
		{"serial", nil},
		{"parallel-snapshots", func(o *core.Options) {
			o.ParallelSnapshots = true
			o.SnapshotWorkers = 5
		}},
		{"cached", func(o *core.Options) {
			o.PreStateCacheTTL = 10 * time.Millisecond
		}},
		{"parallel+cached", func(o *core.Options) {
			o.ParallelSnapshots = true
			o.SnapshotWorkers = 5
			o.PreStateCacheTTL = 10 * time.Millisecond
		}},
	}

	b.Run("GET/direct", func(b *testing.B) {
		d := newThroughputDeployment(b, 0, nil)
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				if _, _, err := d.direct.GetVolume(d.projectID, d.volumeID); err != nil {
					b.Fatal(err)
				}
			}
		})
	})
	for _, v := range variants {
		b.Run("GET/"+v.name, func(b *testing.B) {
			d := newThroughputDeployment(b, 0, v.mutate)
			path := "/projects/" + d.projectID + "/volumes/" + d.volumeID
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					if _, err := d.monitored.Do(http.MethodGet, path, nil, nil, nil); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}

	// Simulated network latency: the deployment regime the parallel
	// snapshot fan-out exists for. Sequential client, latency-bound.
	const delay = time.Millisecond
	for _, v := range variants[:2] {
		b.Run("netsim-1ms/"+v.name, func(b *testing.B) {
			d := newThroughputDeployment(b, delay, v.mutate)
			path := "/projects/" + d.projectID + "/volumes/" + d.volumeID
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := d.monitored.Do(http.MethodGet, path, nil, nil, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEvalPlan (E15) compares the demand-driven evaluation engine
// (compiled plans, per-path fetches, effect-frame post reuse) against the
// eager whole-contract snapshot, on the read and write paths, in process
// and under 1ms of simulated network latency per backend round trip. Each
// sub-benchmark also reports the cloud-read economy as cloudGETs/op — the
// number the lazy engine exists to shrink; with network latency in the
// loop, saved GETs convert directly into saved milliseconds.
func BenchmarkEvalPlan(b *testing.B) {
	engines := []struct {
		name string
		eval monitor.EvalMode
	}{
		{"lazy", monitor.EvalLazy},
		{"eager", monitor.EvalEager},
	}
	reportGets := func(b *testing.B, d *benchDeployment, before uint64) {
		b.ReportMetric(float64(d.sys.Provider.Stats().Gets-before)/float64(b.N), "cloudGETs/op")
	}
	for _, eng := range engines {
		eng := eng
		b.Run("GET/"+eng.name, func(b *testing.B) {
			d := newThroughputDeployment(b, 0, func(o *core.Options) { o.Eval = eng.eval })
			path := "/projects/" + d.projectID + "/volumes/" + d.volumeID
			b.ReportAllocs()
			before := d.sys.Provider.Stats().Gets
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := d.monitored.Do(http.MethodGet, path, nil, nil, nil); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			reportGets(b, d, before)
		})
		b.Run("CreateDelete/"+eng.name, func(b *testing.B) {
			d := newThroughputDeployment(b, 0, func(o *core.Options) { o.Eval = eng.eval })
			collection := "/projects/" + d.projectID + "/volumes"
			in := map[string]map[string]any{"volume": {"name": "x", "size": 1}}
			b.ReportAllocs()
			before := d.sys.Provider.Stats().Gets
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var out struct {
					Volume cinder.Volume `json:"volume"`
				}
				if _, err := d.monitored.Do(http.MethodPost, collection, in, &out, nil); err != nil {
					b.Fatal(err)
				}
				if _, err := d.monitored.Do(http.MethodDelete, collection+"/"+out.Volume.ID, nil, nil, nil); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			// Two monitored requests per iteration.
			b.ReportMetric(float64(d.sys.Provider.Stats().Gets-before)/float64(2*b.N), "cloudGETs/req")
		})
		b.Run("netsim-1ms/GET/"+eng.name, func(b *testing.B) {
			d := newThroughputDeployment(b, time.Millisecond, func(o *core.Options) { o.Eval = eng.eval })
			path := "/projects/" + d.projectID + "/volumes/" + d.volumeID
			before := d.sys.Provider.Stats().Gets
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := d.monitored.Do(http.MethodGet, path, nil, nil, nil); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			reportGets(b, d, before)
		})
	}
	// Concurrent lazy GETs against a slow backend: identical in-flight
	// path fetches coalesce onto one leader, so the per-op GET count
	// drops below the serial figure as parallelism rises.
	b.Run("netsim-1ms/GET/lazy-parallel", func(b *testing.B) {
		d := newThroughputDeployment(b, time.Millisecond, func(o *core.Options) { o.Eval = monitor.EvalLazy })
		path := "/projects/" + d.projectID + "/volumes/" + d.volumeID
		// The workload is latency-bound, not CPU-bound: pin 8 client
		// goroutines per proc so in-flight fetches overlap (and so
		// coalesce) even on a single-core runner.
		b.SetParallelism(8)
		before := d.sys.Provider.Stats().Gets
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				if _, err := d.monitored.Do(http.MethodGet, path, nil, nil, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.StopTimer()
		reportGets(b, d, before)
		fs := d.sys.Monitor.FetchStats()
		b.ReportMetric(float64(fs.Coalesced)/float64(b.N), "coalesced/op")
	})
}

// BenchmarkEvalPlanFacts (E16) compares the lazy engine with compile-time
// facts (the default) against the same engine with facts disabled — the
// PR-5 baseline. The pruning shows up as fewer per-clause path demands
// (witness skips decide excluded disjuncts with one element), reported as
// demands/op from the monitor's verdict log; cloud GETs/op stay identical
// because the skipped elements read already-fetched paths on these routes.
func BenchmarkEvalPlanFacts(b *testing.B) {
	variants := []struct {
		name    string
		noFacts bool
	}{
		{"facts", false},
		{"no-facts", true},
	}
	reportWork := func(b *testing.B, d *benchDeployment, before uint64) {
		b.ReportMetric(float64(d.sys.Provider.Stats().Gets-before)/float64(b.N), "cloudGETs/op")
		var demands, skips, n int
		for _, v := range d.sys.Monitor.Log() {
			demands += v.DemandedPaths
			skips += v.FactsSkipped
			n++
		}
		if n > 0 {
			b.ReportMetric(float64(demands)/float64(n), "demands/op")
			b.ReportMetric(float64(skips)/float64(n), "factskips/op")
		}
	}
	for _, v := range variants {
		v := v
		b.Run("GET/"+v.name, func(b *testing.B) {
			d := newThroughputDeployment(b, 0, func(o *core.Options) { o.NoFacts = v.noFacts })
			path := "/projects/" + d.projectID + "/volumes/" + d.volumeID
			b.ReportAllocs()
			before := d.sys.Provider.Stats().Gets
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := d.monitored.Do(http.MethodGet, path, nil, nil, nil); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			reportWork(b, d, before)
		})
		b.Run("CreateDelete/"+v.name, func(b *testing.B) {
			d := newThroughputDeployment(b, 0, func(o *core.Options) { o.NoFacts = v.noFacts })
			collection := "/projects/" + d.projectID + "/volumes"
			in := map[string]map[string]any{"volume": {"name": "x", "size": 1}}
			b.ReportAllocs()
			before := d.sys.Provider.Stats().Gets
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var out struct {
					Volume cinder.Volume `json:"volume"`
				}
				if _, err := d.monitored.Do(http.MethodPost, collection, in, &out, nil); err != nil {
					b.Fatal(err)
				}
				if _, err := d.monitored.Do(http.MethodDelete, collection+"/"+out.Volume.ID, nil, nil, nil); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			reportWork(b, d, before)
		})
	}
}

// BenchmarkMonitorAblation compares the full workflow against the
// pre-only ablation (no post-state snapshot, no effect check) on the write
// path — the cost the post-condition verification adds, to be read against
// the mutants only it can kill (see TestAblationPreOnlyMissesLostEffects).
func BenchmarkMonitorAblation(b *testing.B) {
	run := func(b *testing.B, level monitor.CheckLevel) {
		cloud := openstack.New(openstack.Config{})
		seed := cloud.ApplySeed(openstack.Seed{
			ProjectName: "bench",
			Quota:       cinder.QuotaSet{Volumes: 1000000, Gigabytes: 1 << 30},
			GroupRoles:  paper.GroupRole(),
			Users: []openstack.SeedUser{
				{Name: "alice", Password: "pw", Group: paper.GroupProjAdministrator},
				{Name: "cm-svc", Password: "pw", Group: paper.GroupProjAdministrator},
			},
		})
		cloudHTTP := httpkit.HandlerClient(cloud)
		sys, err := core.Build(core.Options{
			Model:    paper.CinderModel(),
			CloudURL: "http://cloud.internal",
			ServiceAccount: osbinding.ServiceAccount{
				User: "cm-svc", Password: "pw", ProjectID: seed.ProjectID,
			},
			Level:      level,
			HTTPClient: cloudHTTP,
		})
		if err != nil {
			b.Fatal(err)
		}
		auth := osclient.Client{BaseURL: "http://cloud.internal", HTTPClient: cloudHTTP}
		tok, err := auth.Authenticate("alice", "pw", seed.ProjectID)
		if err != nil {
			b.Fatal(err)
		}
		client := osclient.New("http://monitor.internal").WithToken(tok)
		client.HTTPClient = httpkit.HandlerClient(sys.Monitor)
		collection := "/projects/" + seed.ProjectID + "/volumes"
		in := map[string]map[string]any{"volume": {"name": "x", "size": 1}}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var out struct {
				Volume cinder.Volume `json:"volume"`
			}
			if _, err := client.Do(http.MethodPost, collection, in, &out, nil); err != nil {
				b.Fatal(err)
			}
			if _, err := client.Do(http.MethodDelete, collection+"/"+out.Volume.ID, nil, nil, nil); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("full", func(b *testing.B) { run(b, monitor.CheckFull) })
	b.Run("pre-only", func(b *testing.B) { run(b, monitor.CheckPreOnly) })
}

// syntheticModel builds a chain state machine with the given number of
// states (and one POST transition between consecutive states) over a
// two-resource model — the workload for the generation sweeps.
func syntheticModel(states int) *uml.Model {
	rm := &uml.ResourceModel{
		Name: "synthetic",
		Resources: []*uml.ResourceDef{
			{Name: "things", Kind: uml.KindCollection},
			{Name: "thing", Kind: uml.KindNormal, Attributes: []uml.Attribute{
				{Name: "id", Type: uml.TypeString},
				{Name: "count", Type: uml.TypeInteger},
			}},
		},
		Associations: []uml.Association{
			{From: "things", To: "thing", Role: "thing", Mult: uml.Multiplicity{Min: 0, Max: uml.Many}},
		},
	}
	bm := &uml.BehavioralModel{Name: "synthetic_sm"}
	for i := 0; i < states; i++ {
		bm.States = append(bm.States, &uml.State{
			Name:      "s" + strconv.Itoa(i),
			Initial:   i == 0,
			Invariant: "thing.count = " + strconv.Itoa(i),
		})
	}
	for i := 0; i+1 < states; i++ {
		bm.Transitions = append(bm.Transitions, &uml.Transition{
			From: "s" + strconv.Itoa(i), To: "s" + strconv.Itoa(i+1),
			Trigger: uml.Trigger{Method: uml.POST, Resource: "thing"},
			Guard:   "user.id.groups='admin' and thing.count >= " + strconv.Itoa(i),
			Effect:  "thing.count = pre(thing.count) + 1",
			SecReqs: []string{"1." + strconv.Itoa(i%4)},
		})
	}
	return &uml.Model{Resource: rm, Behavioral: bm}
}

// BenchmarkContractGeneration (E6) sweeps the behavioral-model size.
func BenchmarkContractGeneration(b *testing.B) {
	for _, states := range []int{4, 16, 64, 256} {
		b.Run(fmt.Sprintf("states=%d", states), func(b *testing.B) {
			m := syntheticModel(states)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := contract.Generate(m); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// conjFormula builds a conjunction of n comparison clauses.
func conjFormula(n int) string {
	clauses := make([]string, n)
	for i := range clauses {
		clauses[i] = fmt.Sprintf("project.volumes->size() >= %d", i%3)
	}
	return strings.Join(clauses, " and ")
}

// BenchmarkOCLEval (E7) sweeps the formula size for evaluation cost.
func BenchmarkOCLEval(b *testing.B) {
	env := ocl.MapEnv{
		"project.volumes": ocl.CollectionVal(ocl.StringVal("a"), ocl.StringVal("b"), ocl.StringVal("c")),
	}
	ctx := ocl.Context{Cur: env}
	for _, n := range []int{1, 4, 16, 64, 256} {
		b.Run(fmt.Sprintf("clauses=%d", n), func(b *testing.B) {
			e := ocl.MustParse(conjFormula(n))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := ocl.EvalBool(e, ctx); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkOCLParse measures parsing cost over the same sweep.
func BenchmarkOCLParse(b *testing.B) {
	for _, n := range []int{1, 16, 256} {
		b.Run(fmt.Sprintf("clauses=%d", n), func(b *testing.B) {
			src := conjFormula(n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := ocl.Parse(src); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkOCLEvalPaperDelete evaluates the real DELETE(volume) pre- and
// post-condition the monitor runs per request.
func BenchmarkOCLEvalPaperDelete(b *testing.B) {
	set, err := contract.Generate(paper.CinderModel())
	if err != nil {
		b.Fatal(err)
	}
	c, _ := set.For(uml.Trigger{Method: uml.DELETE, Resource: "volume"})
	pre := ocl.MapEnv{
		"project.id":        ocl.StringVal("p"),
		"project.volumes":   ocl.CollectionVal(ocl.StringVal("a"), ocl.StringVal("b")),
		"quota_sets.volume": ocl.IntVal(10),
		"volume.status":     ocl.StringVal("available"),
		"user.id.groups":    ocl.StringsVal("admin"),
	}
	post := ocl.MapEnv{
		"project.id":        ocl.StringVal("p"),
		"project.volumes":   ocl.CollectionVal(ocl.StringVal("a")),
		"quota_sets.volume": ocl.IntVal(10),
		"volume.status":     ocl.StringVal("available"),
		"user.id.groups":    ocl.StringsVal("admin"),
	}
	b.Run("pre", func(b *testing.B) {
		ctx := ocl.Context{Cur: pre}
		for i := 0; i < b.N; i++ {
			if _, err := ocl.EvalBool(c.Pre, ctx); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("post", func(b *testing.B) {
		ctx := ocl.Context{Cur: post, Pre: pre}
		for i := 0; i < b.N; i++ {
			if _, err := ocl.EvalBool(c.Post, ctx); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkCompiledEval (E17) pits the compiled closure-chain engine
// against the lazy engine's tree walk on the in-process OK path: the full
// pre-check of the paper's DELETE(volume) contract — clause programs in
// plan order to the first true disjunct — over an already-fetched state.
// The compiled arm resets and refills a pooled slot frame every
// iteration (that refill is part of the engine's per-request cost) and
// must run allocation-free; the tree-walk arm evaluates the same clauses
// with ocl.Eval over the same map environment. The post sub-benchmarks
// extend the comparison through the consequent programs with a bound
// pre-state bank.
func BenchmarkCompiledEval(b *testing.B) {
	set, err := contract.Generate(paper.CinderModel())
	if err != nil {
		b.Fatal(err)
	}
	c, _ := set.For(uml.Trigger{Method: uml.DELETE, Resource: "volume"})
	plan := c.Plan()
	comp := plan.Compiled
	pre := ocl.MapEnv{
		"project.id":        ocl.StringVal("p"),
		"project.volumes":   ocl.CollectionVal(ocl.StringVal("a"), ocl.StringVal("b")),
		"quota_sets.volume": ocl.IntVal(10),
		"volume.status":     ocl.StringVal("available"),
		"user.id.groups":    ocl.StringsVal("admin"),
	}
	post := ocl.MapEnv{
		"project.id":        ocl.StringVal("p"),
		"project.volumes":   ocl.CollectionVal(ocl.StringVal("a")),
		"quota_sets.volume": ocl.IntVal(10),
		"volume.status":     ocl.StringVal("available"),
		"user.id.groups":    ocl.StringsVal("admin"),
	}
	// Slot bindings are resolved once per environment — the monitor knows
	// every slot index from the compiled path table (and each Demand
	// carries its Index), so per-request fill is a straight copy into the
	// banks with no path hashing.
	type binding struct {
		val     ocl.Value
		present bool
	}
	bind := func(env ocl.MapEnv) []binding {
		bs := make([]binding, len(comp.Paths()))
		for i, p := range comp.Paths() {
			bs[i].val, bs[i].present = env[p]
		}
		return bs
	}
	preBind, postBind := bind(pre), bind(post)
	fill := func(fr *contract.Frame, bs []binding) {
		for i := range bs {
			fr.SetCurSlot(i, bs[i].val, bs[i].present)
		}
	}
	preCheckCompiled := func(fr *contract.Frame) bool {
		fr.Reset()
		fill(fr, preBind)
		for _, pc := range plan.Pre {
			v, err := comp.PreProgram(pc.Index).Run(fr)
			if err != nil {
				b.Fatal(err)
			}
			if ok, defined, isBool := ocl.KernelBool(v); isBool && defined && ok {
				return true
			}
		}
		return false
	}
	preCheckTree := func() bool {
		ctx := ocl.Context{Cur: pre}
		for _, pc := range plan.Pre {
			v, err := ocl.Eval(c.Cases[pc.Index].Pre, ctx)
			if err != nil {
				b.Fatal(err)
			}
			if ok, defined, isBool := ocl.KernelBool(v); isBool && defined && ok {
				return true
			}
		}
		return false
	}
	// preCheckLazy reproduces monitor.EvalLazy's per-request evaluation
	// machinery — a fresh demand-signalling environment, the
	// fetch-and-re-evaluate loop (a clause restarts after every path it
	// demands), and per-clause demand accounting — with fetches served
	// from the already-available state. This measures the engine the
	// compiled programs replace; the tree-walk arm above is the
	// single-pass floor no demand-driven evaluator can reach.
	preCheckLazy := func() bool {
		env := &benchLazyEnv{
			src:      pre,
			vals:     make(ocl.MapEnv),
			have:     make(map[string]bool),
			demanded: make(map[string]bool, 8),
		}
		ctx := ocl.Context{Cur: env}
		for _, pc := range plan.Pre {
			clear(env.demanded)
			var v ocl.Value
			for {
				var err error
				v, err = ocl.Eval(c.Cases[pc.Index].Pre, ctx)
				if err == nil {
					break
				}
				var uf *benchUnfetched
				if !errors.As(err, &uf) {
					b.Fatal(err)
				}
				val, ok := pre[uf.path]
				env.have[uf.path] = true
				if ok {
					env.vals[uf.path] = val
				}
			}
			if ok, defined, isBool := ocl.KernelBool(v); isBool && defined && ok {
				return true
			}
		}
		return false
	}
	b.Run("pre/compiled", func(b *testing.B) {
		fr := comp.NewFrame()
		defer comp.Release(fr)
		if !preCheckCompiled(fr) {
			b.Fatal("pre-check did not pass")
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			preCheckCompiled(fr)
		}
	})
	b.Run("pre/lazy-engine", func(b *testing.B) {
		if !preCheckLazy() {
			b.Fatal("pre-check did not pass")
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			preCheckLazy()
		}
	})
	b.Run("pre/tree-walk", func(b *testing.B) {
		if !preCheckTree() {
			b.Fatal("pre-check did not pass")
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			preCheckTree()
		}
	})
	// The post-check runs consequent programs only: antecedent verdicts
	// carry over from the pre-check. Case 0 is the admin DELETE
	// transition, the active clause on this state.
	active := -1
	for i, cs := range c.Cases {
		v, err := ocl.Eval(cs.Pre, ocl.Context{Cur: pre})
		if err != nil {
			b.Fatal(err)
		}
		if ok, defined, isBool := ocl.KernelBool(v); isBool && defined && ok {
			active = i
			break
		}
	}
	if active < 0 {
		b.Fatal("no active case on the OK pre-state")
	}
	b.Run("post/compiled", func(b *testing.B) {
		fr := comp.NewFrame()
		defer comp.Release(fr)
		run := func() {
			fr.Reset()
			fill(fr, preBind)
			fr.BeginPost()
			for i := range preBind {
				fr.SetPreSlot(i, preBind[i].val, preBind[i].present)
			}
			fill(fr, postBind)
			if _, err := comp.PostProgram(active).Run(fr); err != nil {
				b.Fatal(err)
			}
		}
		run()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			run()
		}
	})
	b.Run("post/tree-walk", func(b *testing.B) {
		ctx := ocl.Context{Cur: post, Pre: pre}
		run := func() {
			if _, err := ocl.Eval(c.Cases[active].Post, ctx); err != nil {
				b.Fatal(err)
			}
		}
		run()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			run()
		}
	})
}

// benchLazyEnv mirrors the lazy engine's demand-signalling environment
// for the E17 lazy arm: a fetched path resolves from vals (absent paths
// to Undefined), an unfetched one aborts evaluation with benchUnfetched
// so the driver can fetch it and re-evaluate — the monitor's
// lazyEnv/evalDemand discipline against an in-process state source.
type benchLazyEnv struct {
	src      ocl.MapEnv
	vals     ocl.MapEnv
	have     map[string]bool
	demanded map[string]bool
}

// Resolve implements ocl.Environment.
func (e *benchLazyEnv) Resolve(path []string) (ocl.Value, error) {
	key := strings.Join(path, ".")
	if e.have[key] {
		if e.demanded != nil {
			e.demanded[key] = true
		}
		if v, ok := e.vals[key]; ok {
			return v, nil
		}
		return ocl.Undefined(), nil
	}
	return ocl.Value{}, &benchUnfetched{path: key}
}

type benchUnfetched struct{ path string }

func (e *benchUnfetched) Error() string { return "bench: state path " + e.path + " not fetched" }

// syntheticResourceModel builds a resource model with n normal resources
// hanging off one collection.
func syntheticResourceModel(n int) *uml.Model {
	rm := &uml.ResourceModel{
		Name:      "wide",
		Resources: []*uml.ResourceDef{{Name: "roots", Kind: uml.KindCollection}},
	}
	bm := &uml.BehavioralModel{Name: "wide_sm"}
	bm.States = append(bm.States,
		&uml.State{Name: "empty", Initial: true},
		&uml.State{Name: "busy"})
	for i := 0; i < n; i++ {
		name := "res" + strconv.Itoa(i)
		rm.Resources = append(rm.Resources, &uml.ResourceDef{
			Name: name, Kind: uml.KindNormal,
			Attributes: []uml.Attribute{
				{Name: "id", Type: uml.TypeString},
				{Name: "size", Type: uml.TypeInteger},
			},
		})
		rm.Associations = append(rm.Associations, uml.Association{
			From: "roots", To: name, Role: name, Mult: uml.Multiplicity{Min: 0, Max: uml.Many},
		})
		bm.Transitions = append(bm.Transitions, &uml.Transition{
			From: "empty", To: "busy",
			Trigger: uml.Trigger{Method: uml.POST, Resource: name},
			Guard:   "user.id.groups='admin'",
			SecReqs: []string{"1.1"},
		})
	}
	return &uml.Model{Resource: rm, Behavioral: bm}
}

// BenchmarkCodegen (E8) sweeps the resource count for skeleton generation.
func BenchmarkCodegen(b *testing.B) {
	for _, n := range []int{2, 8, 32, 128} {
		b.Run(fmt.Sprintf("resources=%d", n), func(b *testing.B) {
			m := syntheticResourceModel(n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := codegen.Generate(m, codegen.Options{Project: "bench"}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPolicyCheck measures a policy.json rule evaluation, the cost
// the simulated cloud pays per request.
func BenchmarkPolicyCheck(b *testing.B) {
	p := cinder.DefaultPolicy()
	creds := rbac.Credentials{UserID: "u", ProjectID: "p", Roles: []string{"member"}}
	target := rbac.Target{"project_id": "p"}
	for i := 0; i < b.N; i++ {
		if _, err := p.Check(cinder.ActionCreate, creds, target); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkXMIRoundTrip measures model import/export.
func BenchmarkXMIRoundTrip(b *testing.B) {
	m := paper.CinderModel()
	data, err := xmi.Encode(m)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("encode", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := xmi.Encode(m); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("decode", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := xmi.Decode(data); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAsyncPost (E18) measures the mutating-request throughput
// ceiling of deferred post verification under 1ms of simulated network
// latency per backend round trip. Each op is a monitored create+delete
// pair — both carry post-conditions, so the synchronous monitor pays the
// post-state round trips on the response path while the async pipeline
// overlaps them with the next request's pre phase (the write fence keeps
// the verdicts equivalent). The payoff scales with post-phase weight:
// frame-reuse keeps the sync post down to ~1 round trip per request, so
// deferral buys ~1.25×; the full re-check (reuse off — the paper's
// re-snapshot-everything workflow) pays 4-5 post round trips per request
// synchronously and deferral buys well past 1.5×. The async arms drain
// outside the timed window, mirroring loadgen, and report the p99
// detection lag the overlap costs.
func BenchmarkAsyncPost(b *testing.B) {
	const delay = time.Millisecond
	configs := []struct {
		name    string
		noReuse bool
	}{
		{"frame-reuse", false},
		{"full-recheck", true},
	}
	for _, cfg := range configs {
		for _, mode := range []monitor.PostMode{monitor.PostSync, monitor.PostAsync} {
			cfg, mode := cfg, mode
			b.Run("create-delete/"+cfg.name+"/"+mode.String(), func(b *testing.B) {
				d := newThroughputDeployment(b, delay, func(o *core.Options) {
					o.Post = mode
					o.NoPostReuse = cfg.noReuse
				})
				defer d.sys.Monitor.Close()
				collection := "/projects/" + d.projectID + "/volumes"
				in := map[string]map[string]any{"volume": {"name": "bench-async", "size": 1}}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					var out struct {
						Volume struct {
							ID string `json:"id"`
						} `json:"volume"`
					}
					if _, err := d.monitored.Do(http.MethodPost, collection, in, &out, nil); err != nil {
						b.Fatal(err)
					}
					if _, err := d.monitored.Do(http.MethodDelete, collection+"/"+out.Volume.ID, nil, nil, nil); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				if mode == monitor.PostAsync {
					d.sys.Monitor.DrainPost()
					st := d.sys.Monitor.AsyncPostStats()
					b.ReportMetric(float64(st.Lag.Quantile(0.99).Microseconds())/1e3, "p99-lag-ms")
					b.ReportMetric(float64(st.Shed), "shed")
				}
			})
		}
	}
}
