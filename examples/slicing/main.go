// Model slicing in action (the paper's §VI.B future work): a security
// auditor who only cares about the DELETE scenario (SecReq 1.4) slices the
// full Cinder model down to it, generates contracts for the slice, and
// monitors only those methods — smaller models, fewer monitored routes,
// identical verdicts on the covered scenario.
//
//	go run ./examples/slicing
package main

import (
	"fmt"
	"log"
	"net/http"

	"cloudmon/internal/contract"
	"cloudmon/internal/core"
	"cloudmon/internal/httpkit"
	"cloudmon/internal/monitor"
	"cloudmon/internal/openstack"
	"cloudmon/internal/openstack/cinder"
	"cloudmon/internal/osbinding"
	"cloudmon/internal/osclient"
	"cloudmon/internal/paper"
	"cloudmon/internal/slice"
	"cloudmon/internal/uml"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	full := paper.CinderModel()
	sliced, err := slice.Model(full, slice.BySecReqs("1.4"))
	if err != nil {
		return err
	}
	fmt.Printf("full model:   %d resources, %d transitions, SecReqs %v\n",
		len(full.Resource.Resources), len(full.Behavioral.Transitions),
		full.Behavioral.SecReqs())
	fmt.Printf("1.4 slice:    %d resources, %d transitions, SecReqs %v\n",
		len(sliced.Resource.Resources), len(sliced.Behavioral.Transitions),
		sliced.Behavioral.SecReqs())

	set, err := contract.Generate(sliced)
	if err != nil {
		return err
	}
	fmt.Printf("slice generates %d contract(s):\n\n%s\n",
		len(set.Contracts), contract.RenderSet(set, contract.StyleConjunction))

	// Deploy a cloud and monitor only the slice.
	cloud := openstack.New(openstack.Config{})
	seed := cloud.ApplySeed(openstack.Seed{
		ProjectName: "myProject",
		Quota:       cinder.QuotaSet{Volumes: 3, Gigabytes: 100},
		GroupRoles:  paper.GroupRole(),
		Users: []openstack.SeedUser{
			{Name: "alice", Password: "pw-alice", Group: paper.GroupProjAdministrator},
			{Name: "bob", Password: "pw-bob", Group: paper.GroupServiceArchitect},
			{Name: "cm-svc", Password: "pw-svc", Group: paper.GroupProjAdministrator},
		},
	})
	cloudHTTP := httpkit.HandlerClient(cloud)
	sys, err := core.Build(core.Options{
		Model:    sliced,
		CloudURL: "http://cloud.internal",
		ServiceAccount: osbinding.ServiceAccount{
			User: "cm-svc", Password: "pw-svc", ProjectID: seed.ProjectID,
		},
		Mode:       monitor.Enforce,
		HTTPClient: cloudHTTP,
	})
	if err != nil {
		return err
	}
	fmt.Printf("monitored routes (slice):\n")
	for _, r := range sys.Routes {
		fmt.Printf("  %-6s %s\n", r.Trigger.Method, r.Pattern)
	}

	// Set up a volume directly on the cloud, then exercise DELETE through
	// the sliced monitor.
	direct := osclient.New("http://cloud.internal")
	direct.HTTPClient = cloudHTTP
	adminTok, err := direct.Authenticate("alice", "pw-alice", seed.ProjectID)
	if err != nil {
		return err
	}
	memberAuth := osclient.Client{BaseURL: "http://cloud.internal", HTTPClient: cloudHTTP}
	memberTok, err := memberAuth.Authenticate("bob", "pw-bob", seed.ProjectID)
	if err != nil {
		return err
	}
	vol, _, err := direct.CreateVolume(seed.ProjectID, "audit-me", 5)
	if err != nil {
		return err
	}

	mon := osclient.New("http://monitor.internal")
	mon.HTTPClient = httpkit.HandlerClient(sys.Monitor)
	target := "/projects/" + seed.ProjectID + "/volumes/" + vol.ID

	status, _ := mon.WithToken(memberTok).Do(http.MethodDelete, target, nil, nil, nil)
	fmt.Printf("\nDELETE as member through the slice monitor -> %d (blocked)\n", status)
	status, _ = mon.WithToken(adminTok).Do(http.MethodDelete, target, nil, nil, nil)
	fmt.Printf("DELETE as admin through the slice monitor  -> %d (permitted)\n", status)

	// Methods outside the slice are not routed — the slice monitor is
	// deliberately scoped.
	status, _ = mon.WithToken(adminTok).Do(http.MethodGet, target, nil, nil, nil)
	fmt.Printf("GET (outside the slice)                    -> %d (no contract route)\n", status)

	del, _ := set.For(uml.Trigger{Method: uml.DELETE, Resource: "volume"})
	fmt.Printf("\nSecReq coverage of the audit: %v (contract %s)\n",
		sys.Monitor.Coverage(), del.Trigger)
	return nil
}
