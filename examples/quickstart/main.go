// Quickstart: the whole pipeline in one process.
//
//	go run ./examples/quickstart
//
// It builds the paper's Cinder design model, generates the method
// contracts, boots the simulated OpenStack cloud, puts the cloud monitor
// in front of it, and issues a handful of requests — one permitted, one
// forbidden by role, one forbidden by state — printing the monitor's
// verdicts.
package main

import (
	"fmt"
	"log"
	"net/http"

	"cloudmon/internal/contract"
	"cloudmon/internal/core"
	"cloudmon/internal/httpkit"
	"cloudmon/internal/monitor"
	"cloudmon/internal/openstack"
	"cloudmon/internal/openstack/cinder"
	"cloudmon/internal/osbinding"
	"cloudmon/internal/osclient"
	"cloudmon/internal/paper"
	"cloudmon/internal/uml"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 1. The design models (Figure 3 of the paper).
	model := paper.CinderModel()
	fmt.Printf("model %q: %d resources, %d states, %d transitions\n",
		model.Resource.Name,
		len(model.Resource.Resources),
		len(model.Behavioral.States),
		len(model.Behavioral.Transitions))

	// 2. Contract generation (Section V).
	set, err := contract.Generate(model)
	if err != nil {
		return err
	}
	del, _ := set.For(uml.Trigger{Method: uml.DELETE, Resource: "volume"})
	fmt.Printf("generated %d contracts; DELETE(volume) pre-condition:\n  %s\n\n",
		len(set.Contracts), del.Pre)

	// 3. A simulated private cloud with the Table-I deployment.
	cloud := openstack.New(openstack.Config{})
	seed := cloud.ApplySeed(openstack.Seed{
		ProjectName: "myProject",
		Quota:       cinder.QuotaSet{Volumes: 2, Gigabytes: 100},
		GroupRoles:  paper.GroupRole(),
		Users: []openstack.SeedUser{
			{Name: "alice", Password: "pw-alice", Group: paper.GroupProjAdministrator},
			{Name: "bob", Password: "pw-bob", Group: paper.GroupServiceArchitect},
			{Name: "cm-svc", Password: "pw-svc", Group: paper.GroupProjAdministrator},
		},
	})

	// 4. The cloud monitor, wired in process (no sockets needed).
	sys, err := core.Build(core.Options{
		Model:    model,
		CloudURL: "http://cloud.internal",
		ServiceAccount: osbinding.ServiceAccount{
			User: "cm-svc", Password: "pw-svc", ProjectID: seed.ProjectID,
		},
		Mode:       monitor.Enforce,
		HTTPClient: httpkit.HandlerClient(cloud),
	})
	if err != nil {
		return err
	}

	// 5. Drive requests through the monitor.
	cloudClient := osclient.New("http://cloud.internal")
	cloudClient.HTTPClient = httpkit.HandlerClient(cloud)
	monClient := osclient.New("http://monitor.internal")
	monClient.HTTPClient = httpkit.HandlerClient(sys.Monitor)

	adminTok, err := (&osclient.Client{
		BaseURL: cloudClient.BaseURL, HTTPClient: cloudClient.HTTPClient,
	}).Authenticate("alice", "pw-alice", seed.ProjectID)
	if err != nil {
		return err
	}
	memberTok, err := (&osclient.Client{
		BaseURL: cloudClient.BaseURL, HTTPClient: cloudClient.HTTPClient,
	}).Authenticate("bob", "pw-bob", seed.ProjectID)
	if err != nil {
		return err
	}
	admin := monClient.WithToken(adminTok)
	member := monClient.WithToken(memberTok)
	volumes := "/projects/" + seed.ProjectID + "/volumes"

	// A permitted POST by the administrator.
	var created struct {
		Volume cinder.Volume `json:"volume"`
	}
	in := map[string]map[string]any{"volume": {"name": "data", "size": 10}}
	status, err := admin.Do(http.MethodPost, volumes, in, &created, nil)
	fmt.Printf("admin POST volume      -> %d (err=%v)\n", status, err)

	// A DELETE forbidden by role: the member is blocked by the monitor.
	status, _ = member.Do(http.MethodDelete, volumes+"/"+created.Volume.ID, nil, nil, nil)
	fmt.Printf("member DELETE volume   -> %d (blocked by contract)\n", status)

	// A permitted DELETE by the administrator.
	status, err = admin.Do(http.MethodDelete, volumes+"/"+created.Volume.ID, nil, nil, nil)
	fmt.Printf("admin DELETE volume    -> %d (err=%v)\n", status, err)

	// A DELETE on a nonexistent volume: forbidden by state.
	status, _ = admin.Do(http.MethodDelete, volumes+"/ghost", nil, nil, nil)
	fmt.Printf("admin DELETE ghost     -> %d (blocked by contract)\n", status)

	// 6. Inspect the monitor's log and SecReq coverage.
	fmt.Println("\nmonitor verdicts:")
	for _, v := range sys.Monitor.Log() {
		fmt.Printf("  %-16s %-28s pre=%-5v forwarded=%-5v backend=%d\n",
			v.Trigger, v.Outcome, v.PreOK, v.Forwarded, v.BackendStatus)
	}
	fmt.Println("security-requirement coverage:")
	for _, s := range sys.Contracts.SecReqs() {
		fmt.Printf("  SecReq %s: %d\n", s, sys.Monitor.Coverage()[s])
	}
	return nil
}
