// The paper's full case study (Sections II, IV and VI.D): a Cinder volume
// API monitored for the Table-I security requirements, exercised across
// roles and stateful scenarios — quota exhaustion and deletion of an
// attached (in-use) volume.
//
//	go run ./examples/cinder-volumes
package main

import (
	"fmt"
	"log"
	"net/http"

	"cloudmon/internal/core"
	"cloudmon/internal/httpkit"
	"cloudmon/internal/monitor"
	"cloudmon/internal/openstack"
	"cloudmon/internal/openstack/cinder"
	"cloudmon/internal/osbinding"
	"cloudmon/internal/osclient"
	"cloudmon/internal/paper"
)

// deployment bundles the wired-up scenario.
type deployment struct {
	cloud     *openstack.Cloud
	sys       *core.System
	projectID string
	clients   map[string]*osclient.Client // role -> monitor client
	direct    *osclient.Client            // admin client straight to the cloud
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func newDeployment() (*deployment, error) {
	cloud := openstack.New(openstack.Config{})
	seed := cloud.ApplySeed(openstack.Seed{
		ProjectName: "myProject",
		Quota:       cinder.QuotaSet{Volumes: 3, Gigabytes: 100},
		GroupRoles:  paper.GroupRole(),
		Users: []openstack.SeedUser{
			{Name: "alice", Password: "pw-alice", Group: paper.GroupProjAdministrator},
			{Name: "bob", Password: "pw-bob", Group: paper.GroupServiceArchitect},
			{Name: "carol", Password: "pw-carol", Group: paper.GroupBusinessAnalyst},
			{Name: "cm-svc", Password: "pw-svc", Group: paper.GroupProjAdministrator},
		},
	})
	cloudHTTP := httpkit.HandlerClient(cloud)
	sys, err := core.Build(core.Options{
		Model:    paper.CinderModel(),
		CloudURL: "http://cloud.internal",
		ServiceAccount: osbinding.ServiceAccount{
			User: "cm-svc", Password: "pw-svc", ProjectID: seed.ProjectID,
		},
		Mode:       monitor.Enforce,
		HTTPClient: cloudHTTP,
	})
	if err != nil {
		return nil, err
	}
	d := &deployment{
		cloud:     cloud,
		sys:       sys,
		projectID: seed.ProjectID,
		clients:   make(map[string]*osclient.Client, 3),
	}
	monHTTP := httpkit.HandlerClient(sys.Monitor)
	for user, role := range map[string]string{
		"alice": paper.RoleAdmin, "bob": paper.RoleMember, "carol": paper.RoleUser,
	} {
		auth := osclient.Client{BaseURL: "http://cloud.internal", HTTPClient: cloudHTTP}
		tok, err := auth.Authenticate(user, "pw-"+user, seed.ProjectID)
		if err != nil {
			return nil, err
		}
		mc := osclient.New("http://monitor.internal")
		mc.HTTPClient = monHTTP
		d.clients[role] = mc.WithToken(tok)
		if role == paper.RoleAdmin {
			dc := osclient.New("http://cloud.internal")
			dc.HTTPClient = cloudHTTP
			d.direct = dc.WithToken(tok)
		}
	}
	return d, nil
}

func (d *deployment) volumes() string { return "/projects/" + d.projectID + "/volumes" }

func (d *deployment) request(role, method, path string, body any) int {
	status, _ := d.clients[role].Do(method, path, body, nil, nil)
	return status
}

func (d *deployment) create(role, name string) (string, int) {
	var out struct {
		Volume cinder.Volume `json:"volume"`
	}
	in := map[string]map[string]any{"volume": {"name": name, "size": 5}}
	status, err := d.clients[role].Do(http.MethodPost, d.volumes(), in, &out, nil)
	if err != nil {
		return "", status
	}
	return out.Volume.ID, status
}

func run() error {
	d, err := newDeployment()
	if err != nil {
		return err
	}
	fmt.Println("=== Table I: role-by-role authorization through the monitor ===")

	// SecReq 1.3 — POST.
	vol, status := d.create(paper.RoleAdmin, "admin-vol")
	fmt.Printf("POST   as admin  -> %d (SecReq 1.3: permitted)\n", status)
	_, status = d.create(paper.RoleMember, "member-vol")
	fmt.Printf("POST   as member -> %d (SecReq 1.3: permitted)\n", status)
	_, status = d.create(paper.RoleUser, "user-vol")
	fmt.Printf("POST   as user   -> %d (SecReq 1.3: blocked by monitor)\n", status)

	// SecReq 1.1 — GET for everyone.
	for _, role := range []string{paper.RoleAdmin, paper.RoleMember, paper.RoleUser} {
		status = d.request(role, http.MethodGet, d.volumes()+"/"+vol, nil)
		fmt.Printf("GET    as %-6s -> %d (SecReq 1.1: permitted)\n", role, status)
	}

	// SecReq 1.2 — PUT for admin and member.
	in := map[string]map[string]any{"volume": {"name": "renamed"}}
	status = d.request(paper.RoleMember, http.MethodPut, d.volumes()+"/"+vol, in)
	fmt.Printf("PUT    as member -> %d (SecReq 1.2: permitted)\n", status)
	status = d.request(paper.RoleUser, http.MethodPut, d.volumes()+"/"+vol, in)
	fmt.Printf("PUT    as user   -> %d (SecReq 1.2: blocked by monitor)\n", status)

	// SecReq 1.4 — DELETE only for admin.
	status = d.request(paper.RoleMember, http.MethodDelete, d.volumes()+"/"+vol, nil)
	fmt.Printf("DELETE as member -> %d (SecReq 1.4: blocked by monitor)\n", status)

	fmt.Println("\n=== Stateful scenarios from the behavioral model ===")

	// Quota exhaustion: third create fills the quota, fourth is blocked.
	_, status = d.create(paper.RoleAdmin, "third")
	fmt.Printf("POST #3 (fills quota)        -> %d\n", status)
	_, status = d.create(paper.RoleAdmin, "overflow")
	fmt.Printf("POST #4 (over quota)         -> %d (blocked: full-quota state)\n", status)

	// In-use volume: attach via nova, then DELETE is blocked by the guard
	// volume.status <> 'in-use'.
	server, _, err := d.direct.CreateServer(d.projectID, "web")
	if err != nil {
		return err
	}
	if _, err := d.direct.AttachVolume(d.projectID, server.ID, vol); err != nil {
		return err
	}
	status = d.request(paper.RoleAdmin, http.MethodDelete, d.volumes()+"/"+vol, nil)
	fmt.Printf("DELETE in-use volume         -> %d (blocked: status guard)\n", status)
	if _, err := d.direct.DetachVolume(d.projectID, server.ID, vol); err != nil {
		return err
	}
	status = d.request(paper.RoleAdmin, http.MethodDelete, d.volumes()+"/"+vol, nil)
	fmt.Printf("DELETE after detach          -> %d (permitted)\n", status)

	fmt.Println("\n=== Monitor summary ===")
	outcomes := d.sys.Monitor.Outcomes()
	fmt.Printf("verdicts: ok=%d blocked=%d violations=%d\n",
		outcomes[monitor.OK], outcomes[monitor.Blocked],
		len(d.sys.Monitor.Violations()))
	fmt.Println("security-requirement coverage (Section IV.C traceability):")
	for _, s := range d.sys.Contracts.SecReqs() {
		fmt.Printf("  SecReq %s exercised %d times\n", s, d.sys.Monitor.Coverage()[s])
	}
	return nil
}
