// Mutation testing with the cloud monitor as the test oracle — the
// paper's validation (Section VI.D), reproduced and extended.
//
//	go run ./examples/mutation-testing
//
// For every mutant: a fresh simulated cloud is built, the fault is
// injected into its implementation, the standard request matrix is driven
// through the monitor in Observe mode, and the mutant counts as killed if
// the monitor reports at least one contract violation.
package main

import (
	"fmt"
	"log"
	"os"

	"cloudmon/internal/mutation"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fmt.Println("=== Reproducing the paper's validation: 3 mutants (Section VI.D) ===")
	report, err := mutation.RunCampaign(mutation.PaperMutants())
	if err != nil {
		return err
	}
	report.Format(os.Stdout)
	if report.Killed() != len(report.Runs) {
		return fmt.Errorf("paper validation failed: %d/%d killed",
			report.Killed(), len(report.Runs))
	}

	fmt.Println("\n=== Extended campaign: full mutant catalogue ===")
	fmt.Println("mutants model developer errors in authorization and functional logic:")
	for _, m := range mutation.Catalogue() {
		fmt.Printf("  %-4s %-22s %s\n", m.ID, m.Name, m.Description)
	}
	fmt.Println()
	full, err := mutation.RunCampaign(mutation.Catalogue())
	if err != nil {
		return err
	}
	full.Format(os.Stdout)
	return nil
}
