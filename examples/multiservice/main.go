// Multi-service monitoring: one cloud, two monitored APIs. The Cinder
// volume model (the paper's case study) and the Nova server model (the
// extension scenario) are compiled into two monitors mounted behind one
// entry point — showing that the pipeline scales across services exactly
// as the paper's modular OpenStack architecture suggests.
//
//	go run ./examples/multiservice
package main

import (
	"fmt"
	"log"
	"net/http"
	"strings"

	"cloudmon/internal/core"
	"cloudmon/internal/httpkit"
	"cloudmon/internal/monitor"
	"cloudmon/internal/openstack"
	"cloudmon/internal/openstack/cinder"
	"cloudmon/internal/osbinding"
	"cloudmon/internal/osclient"
	"cloudmon/internal/paper"
	"cloudmon/internal/uml"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// multiMonitor routes volume URIs to the cinder monitor and server URIs to
// the nova monitor.
type multiMonitor struct {
	volumes *monitor.Monitor
	servers *monitor.Monitor
}

func (m *multiMonitor) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if strings.Contains(r.URL.Path, "/servers") {
		m.servers.ServeHTTP(w, r)
		return
	}
	m.volumes.ServeHTTP(w, r)
}

func run() error {
	cloud := openstack.New(openstack.Config{})
	seed := cloud.ApplySeed(openstack.Seed{
		ProjectName: "myProject",
		Quota:       cinder.QuotaSet{Volumes: 5, Gigabytes: 100},
		GroupRoles:  paper.GroupRole(),
		Users: []openstack.SeedUser{
			{Name: "alice", Password: "pw-alice", Group: paper.GroupProjAdministrator},
			{Name: "bob", Password: "pw-bob", Group: paper.GroupServiceArchitect},
			{Name: "cm-svc", Password: "pw-svc", Group: paper.GroupProjAdministrator},
		},
	})
	cloudHTTP := httpkit.HandlerClient(cloud)
	account := osbinding.ServiceAccount{User: "cm-svc", Password: "pw-svc", ProjectID: seed.ProjectID}

	build := func(model *uml.Model) (*core.System, error) {
		return core.Build(core.Options{
			Model:          model,
			CloudURL:       "http://cloud.internal",
			ServiceAccount: account,
			Mode:           monitor.Enforce,
			HTTPClient:     cloudHTTP,
		})
	}
	volSys, err := build(paper.CinderModel())
	if err != nil {
		return err
	}
	srvSys, err := build(paper.NovaModel())
	if err != nil {
		return err
	}
	entry := &multiMonitor{volumes: volSys.Monitor, servers: srvSys.Monitor}

	// Clients.
	auth := osclient.Client{BaseURL: "http://cloud.internal", HTTPClient: cloudHTTP}
	adminTok, err := auth.Authenticate("alice", "pw-alice", seed.ProjectID)
	if err != nil {
		return err
	}
	memberAuth := osclient.Client{BaseURL: "http://cloud.internal", HTTPClient: cloudHTTP}
	memberTok, err := memberAuth.Authenticate("bob", "pw-bob", seed.ProjectID)
	if err != nil {
		return err
	}
	mon := osclient.New("http://monitor.internal")
	mon.HTTPClient = httpkit.HandlerClient(entry)
	admin := mon.WithToken(adminTok)
	member := mon.WithToken(memberTok)

	volumes := "/projects/" + seed.ProjectID + "/volumes"
	servers := "/projects/" + seed.ProjectID + "/servers"

	fmt.Println("=== one entry point, two monitored services ===")

	// Volume API through the cinder monitor.
	var vol struct {
		Volume cinder.Volume `json:"volume"`
	}
	status, err := admin.Do(http.MethodPost, volumes,
		map[string]map[string]any{"volume": {"name": "data", "size": 5}}, &vol, nil)
	fmt.Printf("POST   %s -> %d (err=%v)\n", volumes, status, err)

	// Server API through the nova monitor.
	var srv struct {
		Server struct {
			ID string `json:"id"`
		} `json:"server"`
	}
	status, err = member.Do(http.MethodPost, servers,
		map[string]map[string]string{"server": {"name": "web"}}, &srv, nil)
	fmt.Printf("POST   %s -> %d (err=%v)\n", servers, status, err)

	// Member may not delete servers (SecReq 2.3) nor volumes (SecReq 1.4).
	status, _ = member.Do(http.MethodDelete, servers+"/"+srv.Server.ID, nil, nil, nil)
	fmt.Printf("DELETE server as member  -> %d (blocked)\n", status)
	status, _ = member.Do(http.MethodDelete, volumes+"/"+vol.Volume.ID, nil, nil, nil)
	fmt.Printf("DELETE volume as member  -> %d (blocked)\n", status)

	// The administrator cleans up through both monitors.
	status, _ = admin.Do(http.MethodDelete, servers+"/"+srv.Server.ID, nil, nil, nil)
	fmt.Printf("DELETE server as admin   -> %d\n", status)
	status, _ = admin.Do(http.MethodDelete, volumes+"/"+vol.Volume.ID, nil, nil, nil)
	fmt.Printf("DELETE volume as admin   -> %d\n", status)

	fmt.Println("\nper-service coverage:")
	fmt.Printf("  cinder monitor: %v\n", volSys.Monitor.Coverage())
	fmt.Printf("  nova monitor:   %v\n", srvSys.Monitor.Coverage())
	return nil
}
