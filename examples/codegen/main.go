// uml2go end to end: export the paper's models as XMI (the MagicDraw step
// of the paper's toolchain), read the XMI back, and generate the Django-
// style monitor skeleton — resources.go / routes.go / handlers.go — into a
// temporary directory.
//
//	go run ./examples/codegen
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"cloudmon/internal/codegen"
	"cloudmon/internal/paper"
	"cloudmon/internal/xmi"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	dir, err := os.MkdirTemp("", "uml2go-example")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	// 1. The analyst exports the diagrams as XMI.
	xmiPath := filepath.Join(dir, "cinder.xmi")
	if err := xmi.WriteFile(xmiPath, paper.CinderModel()); err != nil {
		return err
	}
	info, err := os.Stat(xmiPath)
	if err != nil {
		return err
	}
	fmt.Printf("exported design models to %s (%d bytes)\n", xmiPath, info.Size())

	// 2. uml2go consumes the XMI.
	model, err := xmi.ReadFile(xmiPath)
	if err != nil {
		return err
	}
	res, err := codegen.Generate(model, codegen.Options{
		Project:  "cindermon",
		CloudURL: "http://127.0.0.1:8776",
	})
	if err != nil {
		return err
	}
	outDir := filepath.Join(dir, "cindermon")
	if err := codegen.WriteFiles(outDir, res.Files); err != nil {
		return err
	}

	names := make([]string, 0, len(res.Files))
	for name := range res.Files {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Printf("generated skeleton (%d files):\n", len(names))
	for _, name := range names {
		fmt.Printf("  %-13s %5d bytes\n", name, len(res.Files[name]))
	}

	// 3. Show the generated URI table (the urls.py analogue) and the head
	// of the DELETE handler (the views.py analogue with contract checks).
	fmt.Println("\n--- routes.go ---")
	fmt.Print(string(res.Files["routes.go"]))

	handlers := string(res.Files["handlers.go"])
	if idx := strings.Index(handlers, "// handleDeleteVolume"); idx >= 0 {
		rest := handlers[idx:]
		if end := strings.Index(rest, "\n}\n"); end >= 0 {
			rest = rest[:end+3]
		}
		fmt.Println("--- handlers.go (DELETE view) ---")
		fmt.Print(rest)
	}
	return nil
}
