# Convenience targets; everything is plain `go` underneath (stdlib only).

.PHONY: all build vet lint test race cover bench planbench factbench compbench asyncbench fleetbench fleet examples experiments artifacts fuzz chaos obs evidence

all: build vet lint test

build:
	go build ./...

vet:
	go vet ./...

# Static analysis of every model the examples construct (the two paper
# models and the SecReq-1.4 audit slice), plus the repo's own analyzers
# (hot-path allocation discipline, atomic counters). Fails on any
# error-severity diagnostic or lint finding.
lint:
	go run ./cmd/modelvet -example cinder
	go run ./cmd/modelvet -example nova
	go run ./cmd/modelvet -example cinder-secreq-1.4
	go run ./cmd/repolint .

test:
	go test ./...

race:
	go test -race ./...

cover:
	go test -cover ./...

bench:
	go test -run XXX -bench . -benchmem .

# E15: the demand-driven evaluation engine vs the eager whole-contract
# snapshot, with per-op cloud-GET economy (see EXPERIMENTS.md).
planbench:
	go test -run XXX -bench BenchmarkEvalPlan -benchmem .

# E16: the lazy engine with compile-time facts vs without (witness skips
# and static clauses; see EXPERIMENTS.md).
factbench:
	go test -run XXX -bench BenchmarkEvalPlanFacts -benchmem .

# E17: the compiled closure-chain engine vs the lazy engine and the
# single-pass tree walk on the in-process OK path (see EXPERIMENTS.md).
# Results land in BENCH_compiled.json for cross-commit tracking.
compbench:
	go test -run XXX -bench BenchmarkCompiledEval -benchmem . \
		| go run ./cmd/benchjson -out BENCH_compiled.json

# E18: synchronous vs deferred (async) post-verification on a mutating
# create/delete workload at 1 ms simulated RTT, with p99 detection lag
# (see EXPERIMENTS.md). Results land in BENCH_async.json.
asyncbench:
	go test -run XXX -bench BenchmarkAsyncPost -benchtime 25x . \
		| go run ./cmd/benchjson -out BENCH_async.json

# E20: aggregate throughput of the sharded fleet at N ∈ {1,2,4}
# instances behind the consistent-hash front, each instance throttled to
# a small backend connection budget at 1 ms simulated RTT (see
# EXPERIMENTS.md). The experiment writes BENCH_fleet.json itself and
# fails if N=4 is not ≥ 2.5× N=1.
fleetbench:
	go test -run TestExperimentE20FleetScaling -v .

# Fleet soundness: the fleet package and in-process fleet scenarios
# (verdict conservation, mid-run resize remap invariant, chaos soak
# through the front) under the race detector, then a full
# loadmon -fleet run with aggregate invariant verification.
fleet:
	go test -race ./internal/fleet/
	go test -race -run 'TestFleet' ./internal/loadgen/
	go run ./cmd/loadmon -fleet 4 -fleet-projects 16 -requests 1200 \
		-warmup 0 -clients 16 -verify

# Seed-corpus fuzzing already runs under `make test`; this target fuzzes
# each parser for 30s, plus the compiled OCL engine against the
# tree-walking reference.
fuzz:
	go test -fuzz FuzzParse -fuzztime 30s ./internal/ocl/
	go test -fuzz FuzzEval -fuzztime 30s ./internal/ocl/
	go test -fuzz FuzzParseRule -fuzztime 30s ./internal/rbac/
	go test -fuzz FuzzCompiledEval -fuzztime 30s ./internal/contract/

# Chaos: the fault×policy matrix and the chaotic soaks under the race
# detector, then a fault-ridden loadmon run with invariant verification.
chaos:
	go test -race ./internal/faults/... -run TestFaultPolicyMatrix
	go test -race -run 'TestSoakChaos' ./internal/loadgen/
	go run ./cmd/loadmon -scenario cinder-mixed -requests 600 -clients 16 \
		-faults internal/faults/testdata/chaos.json -fail-policy open -verify

# Observability smoke: a chaotic loadmon run writing an audit trail,
# verified three ways (verdict counters ≡ /metrics ≡ audit records),
# then the trail inspected and chain-checked with auditctl.
obs:
	rm -rf /tmp/cloudmon-obs-audit
	go run ./cmd/loadmon -scenario cinder-mixed -requests 600 -clients 16 \
		-faults internal/faults/testdata/chaos.json -fail-policy open \
		-audit-dir /tmp/cloudmon-obs-audit -verify
	go run ./cmd/auditctl verify -dir /tmp/cloudmon-obs-audit
	go run ./cmd/auditctl summarize -dir /tmp/cloudmon-obs-audit

# Evidence soundness: a chaotic loadmon run is cut into a signed
# evidence pack; the pack must verify and every packed verdict must
# replay to the same outcome (exit 5 on divergence). Then one byte of a
# packed segment is flipped and verification must fail (exit 4) with a
# pointed manifest-mismatch error.
evidence:
	rm -rf /tmp/cloudmon-evidence
	mkdir -p /tmp/cloudmon-evidence
	go run ./cmd/loadmon -scenario cinder-mixed -requests 600 -clients 16 \
		-faults internal/faults/testdata/chaos.json -fail-policy open \
		-audit-dir /tmp/cloudmon-evidence/trail -verify
	go run ./cmd/auditctl keygen -out /tmp/cloudmon-evidence/sign.key
	go run ./cmd/auditctl pack -dir /tmp/cloudmon-evidence/trail \
		-out /tmp/cloudmon-evidence/run.pack -key /tmp/cloudmon-evidence/sign.key \
		-scenario cinder-mixed
	go run ./cmd/auditctl verify -pack /tmp/cloudmon-evidence/run.pack \
		-pub /tmp/cloudmon-evidence/sign.key.pub
	go run ./cmd/auditctl replay -pack /tmp/cloudmon-evidence/run.pack
	printf '\0' | dd of=$$(ls /tmp/cloudmon-evidence/run.pack/segments/audit-*.jsonl | head -1) \
		bs=1 seek=120 count=1 conv=notrunc
	! go run ./cmd/auditctl verify -pack /tmp/cloudmon-evidence/run.pack
	@echo "evidence: pack verified, replay clean, tamper detected"

examples:
	go run ./examples/quickstart
	go run ./examples/cinder-volumes
	go run ./examples/mutation-testing
	go run ./examples/codegen
	go run ./examples/multiservice
	go run ./examples/slicing

# Regenerate every paper artifact (EXPERIMENTS.md index).
experiments:
	go test -v -run TestExperiment .

artifacts:
	go run ./cmd/mutantlab -table1
	go run ./cmd/mutantlab -listing1
	go run ./cmd/mutantlab -paper
