module cloudmon

go 1.22
