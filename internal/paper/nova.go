package paper

import "cloudmon/internal/uml"

// This file extends the paper's case study with a second service model —
// the compute (Nova) server API — demonstrating that the approach
// generalizes beyond the Cinder volume scenario: same metamodel, same
// contract generator, same monitor, different resource vocabulary.

// State names of the server behavioral model.
const (
	StateNoServer    = "project_with_no_server"
	StateWithServers = "project_with_servers"
)

// Server-model invariants.
const (
	InvNoServer    = "project.id->size()=1 and project.servers->size()=0"
	InvWithServers = "project.id->size()=1 and project.servers->size()>=1"
)

// NovaResourceModel models the compute API's resource structure: the
// Servers collection under a project, and the server resource.
func NovaResourceModel() *uml.ResourceModel {
	return &uml.ResourceModel{
		Name: "nova",
		Resources: []*uml.ResourceDef{
			{Name: "projects", Kind: uml.KindCollection},
			{Name: "project", Kind: uml.KindNormal, Attributes: []uml.Attribute{
				{Name: "id", Type: uml.TypeString},
				{Name: "name", Type: uml.TypeString},
			}},
			{Name: "servers", Kind: uml.KindCollection},
			{Name: "server", Kind: uml.KindNormal, Attributes: []uml.Attribute{
				{Name: "id", Type: uml.TypeString},
				{Name: "name", Type: uml.TypeString},
				{Name: "status", Type: uml.TypeString},
			}},
		},
		Associations: []uml.Association{
			{From: "projects", To: "project", Role: "project", Mult: uml.Multiplicity{Min: 0, Max: uml.Many}},
			{From: "project", To: "servers", Role: "servers", Mult: uml.Multiplicity{Min: 1, Max: 1}},
			{From: "servers", To: "server", Role: "server", Mult: uml.Multiplicity{Min: 0, Max: uml.Many}},
		},
	}
}

// NovaBehavioralModel models the server lifecycle: creation by admin or
// member (SecReq 2.2), reads by every role (SecReq 2.1), deletion by the
// administrator only (SecReq 2.3).
func NovaBehavioralModel() *uml.BehavioralModel {
	post := uml.Trigger{Method: uml.POST, Resource: "server"}
	get := uml.Trigger{Method: uml.GET, Resource: "server"}
	del := uml.Trigger{Method: uml.DELETE, Resource: "server"}

	return &uml.BehavioralModel{
		Name: "nova_project",
		States: []*uml.State{
			{Name: StateNoServer, Initial: true, Invariant: InvNoServer},
			{Name: StateWithServers, Invariant: InvWithServers},
		},
		Transitions: []*uml.Transition{
			// POST(server): boot an instance (SecReq 2.2).
			{
				From: StateNoServer, To: StateWithServers, Trigger: post,
				Guard:   AuthAdminMember,
				Effect:  "project.servers->size() = pre(project.servers->size()) + 1",
				SecReqs: []string{"2.2"},
			},
			{
				From: StateWithServers, To: StateWithServers, Trigger: post,
				Guard:   AuthAdminMember,
				Effect:  "project.servers->size() = pre(project.servers->size()) + 1",
				SecReqs: []string{"2.2"},
			},
			// GET(server): read access for every role (SecReq 2.1).
			{
				From: StateWithServers, To: StateWithServers, Trigger: get,
				Guard:   AuthAnyRole,
				Effect:  "project.servers->size() = pre(project.servers->size())",
				SecReqs: []string{"2.1"},
			},
			// DELETE(server): administrators only (SecReq 2.3).
			{
				From: StateWithServers, To: StateWithServers, Trigger: del,
				Guard:   AuthAdmin + " and project.servers->size() > 1",
				Effect:  "project.servers->size() = pre(project.servers->size()) - 1",
				SecReqs: []string{"2.3"},
			},
			{
				From: StateWithServers, To: StateNoServer, Trigger: del,
				Guard:   AuthAdmin + " and project.servers->size() = 1",
				Effect:  "project.servers->size() = pre(project.servers->size()) - 1",
				SecReqs: []string{"2.3"},
			},
		},
	}
}

// NovaModel bundles the compute-service diagrams.
func NovaModel() *uml.Model {
	return &uml.Model{
		Resource:   NovaResourceModel(),
		Behavioral: NovaBehavioralModel(),
	}
}
