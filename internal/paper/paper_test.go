package paper

import (
	"testing"

	"cloudmon/internal/ocl"
	"cloudmon/internal/uml"
)

func TestCinderModelValidates(t *testing.T) {
	if err := CinderModel().Validate(); err != nil {
		t.Fatalf("paper model invalid: %v", err)
	}
}

func TestAllOCLFragmentsParse(t *testing.T) {
	m := CinderBehavioralModel()
	for _, s := range m.States {
		if _, err := ocl.Parse(s.Invariant); err != nil {
			t.Errorf("state %s invariant: %v", s.Name, err)
		}
	}
	for i, tr := range m.Transitions {
		if _, err := ocl.Parse(tr.Guard); err != nil {
			t.Errorf("transition %d guard: %v", i, err)
		}
		if _, err := ocl.Parse(tr.Effect); err != nil {
			t.Errorf("transition %d effect: %v", i, err)
		}
	}
}

func TestGuardsHaveNoPre(t *testing.T) {
	m := CinderBehavioralModel()
	for i, tr := range m.Transitions {
		g := ocl.MustParse(tr.Guard)
		if err := ocl.CheckNoPre(g); err != nil {
			t.Errorf("transition %d guard uses pre(): %v", i, err)
		}
	}
}

func TestDeleteHasThreeTransitions(t *testing.T) {
	// Section V: "DELETE on volume invokes three transitions in the
	// behavioral model: one from project_with_volume_and_full_quota and two
	// from project_with_volume_and_not_full_quota".
	m := CinderBehavioralModel()
	del := m.TransitionsFor(uml.Trigger{Method: uml.DELETE, Resource: "volume"})
	if len(del) != 3 {
		t.Fatalf("DELETE(volume) transitions = %d, want 3", len(del))
	}
	from := map[string]int{}
	for _, tr := range del {
		from[tr.From]++
	}
	if from[StateFullQuota] != 1 || from[StateNotFullQuota] != 2 {
		t.Errorf("DELETE transition sources = %v", from)
	}
}

func TestTableICoversAllMethods(t *testing.T) {
	rows := TableI()
	if len(rows) != 4 {
		t.Fatalf("Table I rows = %d, want 4", len(rows))
	}
	bySec := map[string]TableIRow{}
	for _, r := range rows {
		bySec[r.SecReq] = r
	}
	if bySec["1.1"].Request != uml.GET || len(bySec["1.1"].Roles) != 3 {
		t.Errorf("SecReq 1.1 row wrong: %+v", bySec["1.1"])
	}
	if bySec["1.4"].Request != uml.DELETE || len(bySec["1.4"].Roles) != 1 {
		t.Errorf("SecReq 1.4 row wrong: %+v", bySec["1.4"])
	}
	if _, ok := bySec["1.4"].Roles[RoleAdmin]; !ok {
		t.Error("DELETE must be admin-only")
	}
}

func TestSecReqTagsMatchTableI(t *testing.T) {
	m := CinderBehavioralModel()
	got := m.SecReqs()
	want := []string{"1.1", "1.2", "1.3", "1.4"}
	if len(got) != len(want) {
		t.Fatalf("SecReqs = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SecReqs = %v, want %v", got, want)
		}
	}
}

func TestBehavioralSecReqsMatchMethods(t *testing.T) {
	// Every transition's SecReq tag must agree with its trigger method per
	// Table I (1.1=GET, 1.2=PUT, 1.3=POST, 1.4=DELETE).
	secOf := map[uml.HTTPMethod]string{
		uml.GET: "1.1", uml.PUT: "1.2", uml.POST: "1.3", uml.DELETE: "1.4",
	}
	for i, tr := range CinderBehavioralModel().Transitions {
		want := secOf[tr.Trigger.Method]
		if len(tr.SecReqs) != 1 || tr.SecReqs[0] != want {
			t.Errorf("transition %d (%s): SecReqs = %v, want [%s]",
				i, tr.Trigger, tr.SecReqs, want)
		}
	}
}

func TestVolumeURI(t *testing.T) {
	uris := CinderResourceModel().URIs()
	if uris["volume"] != "/projects/{project_id}/volumes/{volume_id}" {
		t.Errorf("volume URI = %q", uris["volume"])
	}
}

func TestGroupRole(t *testing.T) {
	gr := GroupRole()
	if gr[GroupProjAdministrator] != RoleAdmin ||
		gr[GroupServiceArchitect] != RoleMember ||
		gr[GroupBusinessAnalyst] != RoleUser {
		t.Errorf("GroupRole = %v", gr)
	}
}

func TestInvariantsDisjoint(t *testing.T) {
	// The three states partition the reachable configurations: for a grid
	// of (volumes, quota) values exactly one invariant holds (given the
	// project exists and quota >= 1, volumes <= quota).
	invs := []string{InvNoVolume, InvNotFull, InvFull}
	parsed := make([]ocl.Expr, len(invs))
	for i, s := range invs {
		parsed[i] = ocl.MustParse(s)
	}
	for quota := 1; quota <= 4; quota++ {
		for vols := 0; vols <= quota; vols++ {
			elems := make([]ocl.Value, vols)
			for i := range elems {
				elems[i] = ocl.StringVal("v")
			}
			env := ocl.MapEnv{
				"project.id":        ocl.StringVal("p1"),
				"project.volumes":   ocl.CollectionVal(elems...),
				"quota_sets.volume": ocl.IntVal(quota),
			}
			holds := 0
			for _, e := range parsed {
				ok, err := ocl.EvalBool(e, ocl.Context{Cur: env})
				if err != nil {
					t.Fatal(err)
				}
				if ok {
					holds++
				}
			}
			if holds != 1 {
				t.Errorf("volumes=%d quota=%d: %d invariants hold, want exactly 1",
					vols, quota, holds)
			}
		}
	}
}
