// Package paper provides the running example of the DSN'18 paper as
// ready-made fixtures: the Cinder resource and behavioral models of
// Figure 3, and the security-requirements table of Table I. Examples,
// tests and the experiment harness all build on these so the repository
// reproduces the paper's artifacts from a single source of truth.
package paper

import (
	"cloudmon/internal/uml"
)

// Role names used in the example cloud (Table I).
const (
	RoleAdmin  = "admin"
	RoleMember = "member"
	RoleUser   = "user"
)

// User-group names used in the example cloud (Table I).
const (
	GroupProjAdministrator = "proj_administrator"
	GroupServiceArchitect  = "service_architect"
	GroupBusinessAnalyst   = "business_analyst"
)

// State names of the behavioral model (Figure 3, right).
const (
	StateNoVolume     = "project_with_no_volume"
	StateNotFullQuota = "project_with_volume_and_not_full_quota"
	StateFullQuota    = "project_with_volume_and_full_quota"
)

// State invariants (Section IV.B).
const (
	InvNoVolume = "project.id->size()=1 and project.volumes->size()=0"
	InvNotFull  = "project.id->size()=1 and project.volumes->size()>=1 and " +
		"project.volumes < quota_sets.volume"
	InvFull = "project.id->size()=1 and project.volumes->size()>=1 and " +
		"project.volumes = quota_sets.volume"
)

// Authorization guard fragments derived from Table I. `user.id.groups`
// resolves to the set of roles held by the requesting user.
const (
	AuthAdmin       = "user.id.groups='admin'"
	AuthAdminMember = "(user.id.groups='admin' or user.id.groups='member')"
	AuthAnyRole     = "(user.id.groups='admin' or user.id.groups='member' or user.id.groups='user')"
)

// TableIRow is one row of Table I: which roles (via which user groups) may
// issue a request on a resource, tagged with a security requirement id.
type TableIRow struct {
	Resource string
	SecReq   string
	Request  uml.HTTPMethod
	// Roles maps each permitted role to the user group holding it in the
	// example deployment.
	Roles map[string]string
}

// TableI returns the paper's Table I (security requirements for the Cinder
// volume resource).
func TableI() []TableIRow {
	return []TableIRow{
		{
			Resource: "volume", SecReq: "1.1", Request: uml.GET,
			Roles: map[string]string{
				RoleAdmin:  GroupProjAdministrator,
				RoleMember: GroupServiceArchitect,
				RoleUser:   GroupBusinessAnalyst,
			},
		},
		{
			Resource: "volume", SecReq: "1.2", Request: uml.PUT,
			Roles: map[string]string{
				RoleAdmin:  GroupProjAdministrator,
				RoleMember: GroupServiceArchitect,
			},
		},
		{
			Resource: "volume", SecReq: "1.3", Request: uml.POST,
			Roles: map[string]string{
				RoleAdmin:  GroupProjAdministrator,
				RoleMember: GroupServiceArchitect,
			},
		},
		{
			Resource: "volume", SecReq: "1.4", Request: uml.DELETE,
			Roles: map[string]string{
				RoleAdmin: GroupProjAdministrator,
			},
		},
	}
}

// CinderResourceModel builds the resource model of Figure 3 (left): the
// Projects and Volumes collections, and the project, volume, quota_sets and
// usergroup normal resources with their associations.
func CinderResourceModel() *uml.ResourceModel {
	return &uml.ResourceModel{
		Name: "cinder",
		Resources: []*uml.ResourceDef{
			{Name: "projects", Kind: uml.KindCollection},
			{Name: "project", Kind: uml.KindNormal, Attributes: []uml.Attribute{
				{Name: "id", Type: uml.TypeString},
				{Name: "name", Type: uml.TypeString},
			}},
			{Name: "volumes", Kind: uml.KindCollection},
			{Name: "volume", Kind: uml.KindNormal, Attributes: []uml.Attribute{
				{Name: "id", Type: uml.TypeString},
				{Name: "status", Type: uml.TypeString},
				{Name: "size", Type: uml.TypeInteger},
			}},
			{Name: "quota_sets", Kind: uml.KindNormal, Attributes: []uml.Attribute{
				{Name: "volume", Type: uml.TypeInteger},
			}},
			{Name: "usergroup", Kind: uml.KindNormal, Attributes: []uml.Attribute{
				{Name: "name", Type: uml.TypeString},
				{Name: "role", Type: uml.TypeString},
			}},
		},
		Associations: []uml.Association{
			{From: "projects", To: "project", Role: "project", Mult: uml.Multiplicity{Min: 0, Max: uml.Many}},
			{From: "project", To: "volumes", Role: "volumes", Mult: uml.Multiplicity{Min: 1, Max: 1}},
			{From: "volumes", To: "volume", Role: "volume", Mult: uml.Multiplicity{Min: 0, Max: uml.Many}},
			{From: "project", To: "quota_sets", Role: "quota_sets", Mult: uml.Multiplicity{Min: 1, Max: 1}},
			{From: "project", To: "usergroup", Role: "usergroups", Mult: uml.Multiplicity{Min: 0, Max: uml.Many}},
		},
	}
}

// CinderBehavioralModel builds the behavioral model of Figure 3 (right):
// three project states with OCL invariants, POST/DELETE transitions moving
// between them under Table-I authorization guards, and GET/PUT self-loops.
// Transition comments carry the SecReq tags for traceability.
func CinderBehavioralModel() *uml.BehavioralModel {
	post := uml.Trigger{Method: uml.POST, Resource: "volume"}
	del := uml.Trigger{Method: uml.DELETE, Resource: "volume"}
	get := uml.Trigger{Method: uml.GET, Resource: "volume"}
	put := uml.Trigger{Method: uml.PUT, Resource: "volume"}

	m := &uml.BehavioralModel{
		Name: "cinder_project",
		States: []*uml.State{
			{Name: StateNoVolume, Initial: true, Invariant: InvNoVolume},
			{Name: StateNotFullQuota, Invariant: InvNotFull},
			{Name: StateFullQuota, Invariant: InvFull},
		},
		Transitions: []*uml.Transition{
			// POST(volume): add a volume (SecReq 1.3).
			{
				From: StateNoVolume, To: StateNotFullQuota, Trigger: post,
				Guard:   AuthAdminMember + " and quota_sets.volume > 1",
				Effect:  "project.volumes->size() = pre(project.volumes->size()) + 1",
				SecReqs: []string{"1.3"},
			},
			{
				From: StateNoVolume, To: StateFullQuota, Trigger: post,
				Guard:   AuthAdminMember + " and quota_sets.volume = 1",
				Effect:  "project.volumes->size() = pre(project.volumes->size()) + 1",
				SecReqs: []string{"1.3"},
			},
			{
				From: StateNotFullQuota, To: StateNotFullQuota, Trigger: post,
				Guard:   AuthAdminMember + " and project.volumes + 1 < quota_sets.volume",
				Effect:  "project.volumes->size() = pre(project.volumes->size()) + 1",
				SecReqs: []string{"1.3"},
			},
			{
				From: StateNotFullQuota, To: StateFullQuota, Trigger: post,
				Guard:   AuthAdminMember + " and project.volumes + 1 = quota_sets.volume",
				Effect:  "project.volumes->size() = pre(project.volumes->size()) + 1",
				SecReqs: []string{"1.3"},
			},
			// DELETE(volume): three transitions, as in Section V — one from
			// full quota, two from not-full quota (SecReq 1.4).
			{
				From: StateNotFullQuota, To: StateNoVolume, Trigger: del,
				Guard: "volume.status <> 'in-use' and " + AuthAdmin +
					" and project.volumes->size() = 1",
				Effect:  "project.volumes->size() = pre(project.volumes->size()) - 1",
				SecReqs: []string{"1.4"},
			},
			{
				From: StateNotFullQuota, To: StateNotFullQuota, Trigger: del,
				Guard: "project.volumes->size() > 1 and volume.status <> 'in-use' and " +
					AuthAdmin,
				Effect:  "project.volumes->size() = pre(project.volumes->size()) - 1",
				SecReqs: []string{"1.4"},
			},
			{
				From: StateFullQuota, To: StateNotFullQuota, Trigger: del,
				Guard:   "volume.status <> 'in-use' and " + AuthAdmin,
				Effect:  "project.volumes->size() = pre(project.volumes->size()) - 1",
				SecReqs: []string{"1.4"},
			},
			// GET(volume): read access on every state with a volume
			// (SecReq 1.1).
			{
				From: StateNotFullQuota, To: StateNotFullQuota, Trigger: get,
				Guard:   AuthAnyRole,
				Effect:  "project.volumes->size() = pre(project.volumes->size())",
				SecReqs: []string{"1.1"},
			},
			{
				From: StateFullQuota, To: StateFullQuota, Trigger: get,
				Guard:   AuthAnyRole,
				Effect:  "project.volumes->size() = pre(project.volumes->size())",
				SecReqs: []string{"1.1"},
			},
			// PUT(volume): update on every state with a volume (SecReq 1.2).
			{
				From: StateNotFullQuota, To: StateNotFullQuota, Trigger: put,
				Guard:   AuthAdminMember,
				Effect:  "project.volumes->size() = pre(project.volumes->size())",
				SecReqs: []string{"1.2"},
			},
			{
				From: StateFullQuota, To: StateFullQuota, Trigger: put,
				Guard:   AuthAdminMember,
				Effect:  "project.volumes->size() = pre(project.volumes->size())",
				SecReqs: []string{"1.2"},
			},
		},
	}
	return m
}

// CinderModel bundles both Figure-3 diagrams.
func CinderModel() *uml.Model {
	return &uml.Model{
		Resource:   CinderResourceModel(),
		Behavioral: CinderBehavioralModel(),
	}
}

// GroupRole maps the example deployment's user groups to their assigned
// roles (Table I, rightmost columns).
func GroupRole() map[string]string {
	return map[string]string{
		GroupProjAdministrator: RoleAdmin,
		GroupServiceArchitect:  RoleMember,
		GroupBusinessAnalyst:   RoleUser,
	}
}
