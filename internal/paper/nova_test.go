package paper

import (
	"testing"

	"cloudmon/internal/ocl"
	"cloudmon/internal/uml"
)

func TestNovaModelValidates(t *testing.T) {
	if err := NovaModel().Validate(); err != nil {
		t.Fatalf("nova model invalid: %v", err)
	}
}

func TestNovaOCLFragmentsParse(t *testing.T) {
	m := NovaBehavioralModel()
	for _, s := range m.States {
		if _, err := ocl.Parse(s.Invariant); err != nil {
			t.Errorf("state %s invariant: %v", s.Name, err)
		}
	}
	for i, tr := range m.Transitions {
		if _, err := ocl.Parse(tr.Guard); err != nil {
			t.Errorf("transition %d guard: %v", i, err)
		}
		if _, err := ocl.Parse(tr.Effect); err != nil {
			t.Errorf("transition %d effect: %v", i, err)
		}
		if g := ocl.MustParse(tr.Guard); ocl.UsesPre(g) {
			t.Errorf("transition %d guard uses pre()", i)
		}
	}
}

func TestNovaURIs(t *testing.T) {
	uris := NovaResourceModel().URIs()
	if uris["server"] != "/projects/{project_id}/servers/{server_id}" {
		t.Errorf("server URI = %q", uris["server"])
	}
	if uris["servers"] != "/projects/{project_id}/servers" {
		t.Errorf("servers URI = %q", uris["servers"])
	}
}

func TestNovaSecReqsDisjointFromCinder(t *testing.T) {
	cinderReqs := CinderBehavioralModel().SecReqs()
	novaReqs := NovaBehavioralModel().SecReqs()
	seen := make(map[string]bool, len(cinderReqs))
	for _, s := range cinderReqs {
		seen[s] = true
	}
	for _, s := range novaReqs {
		if seen[s] {
			t.Errorf("SecReq %s used by both models; tags must be distinct for traceability", s)
		}
	}
	if len(novaReqs) != 3 {
		t.Errorf("nova SecReqs = %v, want 3", novaReqs)
	}
}

func TestNovaInvariantsPartition(t *testing.T) {
	invs := []string{InvNoServer, InvWithServers}
	for servers := 0; servers <= 3; servers++ {
		elems := make([]ocl.Value, servers)
		for i := range elems {
			elems[i] = ocl.StringVal("s")
		}
		env := ocl.MapEnv{
			"project.id":      ocl.StringVal("p"),
			"project.servers": ocl.CollectionVal(elems...),
		}
		holds := 0
		for _, src := range invs {
			ok, err := ocl.EvalBool(ocl.MustParse(src), ocl.Context{Cur: env})
			if err != nil {
				t.Fatal(err)
			}
			if ok {
				holds++
			}
		}
		if holds != 1 {
			t.Errorf("servers=%d: %d invariants hold, want exactly 1", servers, holds)
		}
	}
}

func TestNovaDeleteAdminOnly(t *testing.T) {
	m := NovaBehavioralModel()
	for _, tr := range m.TransitionsFor(uml.Trigger{Method: uml.DELETE, Resource: "server"}) {
		env := ocl.MapEnv{
			"project.id":      ocl.StringVal("p"),
			"project.servers": ocl.CollectionVal(ocl.StringVal("s")),
			"user.id.groups":  ocl.StringsVal(RoleMember),
		}
		ok, err := ocl.EvalBool(ocl.MustParse(tr.Guard), ocl.Context{Cur: env})
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			t.Errorf("member satisfies DELETE guard %q", tr.Guard)
		}
	}
}
