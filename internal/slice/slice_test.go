package slice

import (
	"testing"

	"cloudmon/internal/contract"
	"cloudmon/internal/paper"
	"cloudmon/internal/uml"
)

func TestSliceBySecReqDelete(t *testing.T) {
	m, err := Model(paper.CinderModel(), BySecReqs("1.4"))
	if err != nil {
		t.Fatal(err)
	}
	// Only the three DELETE transitions survive.
	if len(m.Behavioral.Transitions) != 3 {
		t.Fatalf("transitions = %d, want 3", len(m.Behavioral.Transitions))
	}
	for _, tr := range m.Behavioral.Transitions {
		if tr.Trigger.Method != uml.DELETE {
			t.Errorf("unexpected trigger %s", tr.Trigger)
		}
	}
	// All three states remain (endpoints + initial).
	if len(m.Behavioral.States) != 3 {
		t.Errorf("states = %d, want 3", len(m.Behavioral.States))
	}
	// The slice still generates contracts.
	set, err := contract.Generate(m)
	if err != nil {
		t.Fatalf("slice does not generate: %v", err)
	}
	if len(set.Contracts) != 1 {
		t.Errorf("contracts = %d, want 1", len(set.Contracts))
	}
	if got := set.SecReqs(); len(got) != 1 || got[0] != "1.4" {
		t.Errorf("SecReqs = %v", got)
	}
}

func TestSliceByMethodsKeepsVocabulary(t *testing.T) {
	m, err := Model(paper.CinderModel(), ByMethods(uml.POST))
	if err != nil {
		t.Fatal(err)
	}
	// POST guards reference quota_sets.volume; the resource must survive.
	if _, ok := m.Resource.Resource("quota_sets"); !ok {
		t.Error("quota_sets dropped although POST guards reference it")
	}
	// usergroup is not referenced by POST scenarios and must be gone.
	if _, ok := m.Resource.Resource("usergroup"); ok {
		t.Error("usergroup kept although nothing references it")
	}
	// Ancestors for URI composition survive.
	for _, name := range []string{"projects", "project", "volumes", "volume"} {
		if _, ok := m.Resource.Resource(name); !ok {
			t.Errorf("ancestor %q dropped", name)
		}
	}
	// URIs still compose as in the full model.
	uris := m.Resource.URIs()
	if uris["volume"] != "/projects/{project_id}/volumes/{volume_id}" {
		t.Errorf("volume URI = %q", uris["volume"])
	}
}

func TestSliceByResources(t *testing.T) {
	m, err := Model(paper.CinderModel(), ByResources("volume"))
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Behavioral.Transitions) != len(paper.CinderBehavioralModel().Transitions) {
		t.Errorf("volume slice should keep all transitions of the volume-only model")
	}
}

func TestSliceAnyCombinesPredicates(t *testing.T) {
	m, err := Model(paper.CinderModel(), Any(BySecReqs("1.1"), BySecReqs("1.4")))
	if err != nil {
		t.Fatal(err)
	}
	methods := map[uml.HTTPMethod]bool{}
	for _, tr := range m.Behavioral.Transitions {
		methods[tr.Trigger.Method] = true
	}
	if !methods[uml.GET] || !methods[uml.DELETE] || methods[uml.POST] || methods[uml.PUT] {
		t.Errorf("methods in slice = %v", methods)
	}
}

func TestSliceEmptyIsError(t *testing.T) {
	if _, err := Model(paper.CinderModel(), BySecReqs("9.9")); err == nil {
		t.Error("empty slice accepted")
	}
}

func TestSliceInvalidInputIsError(t *testing.T) {
	m := paper.CinderModel()
	m.Behavioral.States = nil
	if _, err := Model(m, ByResources("volume")); err == nil {
		t.Error("invalid input accepted")
	}
}

func TestSliceDoesNotAliasInput(t *testing.T) {
	src := paper.CinderModel()
	m, err := Model(src, BySecReqs("1.4"))
	if err != nil {
		t.Fatal(err)
	}
	// Mutating the slice must not affect the source.
	m.Behavioral.Transitions[0].Guard = "true"
	m.Behavioral.Transitions[0].SecReqs[0] = "X"
	m.Behavioral.States[0].Invariant = "true"
	for _, tr := range src.Behavioral.Transitions {
		if tr.Guard == "true" {
			t.Error("slice aliases source transitions")
		}
		for _, s := range tr.SecReqs {
			if s == "X" {
				t.Error("slice aliases SecReq slices")
			}
		}
	}
	for _, s := range src.Behavioral.States {
		if s.Invariant == "true" {
			t.Error("slice aliases source states")
		}
	}
}

func TestSliceKeepsInitialState(t *testing.T) {
	// A slice of only GET self-loops on non-initial states must still
	// carry the initial state so the scenario stays anchored.
	m, err := Model(paper.CinderModel(), BySecReqs("1.1"))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := m.Behavioral.InitialState(); !ok {
		t.Error("initial state dropped")
	}
}
