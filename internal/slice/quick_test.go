package slice

import (
	"reflect"
	"testing"

	"cloudmon/internal/contract"
	"cloudmon/internal/paper"
	"cloudmon/internal/uml"
)

// TestSliceIdempotent: slicing a slice by the same criterion is the
// identity — the slice already contains exactly the matching scenarios.
func TestSliceIdempotent(t *testing.T) {
	for _, tag := range []string{"1.1", "1.2", "1.3", "1.4"} {
		once, err := Model(paper.CinderModel(), BySecReqs(tag))
		if err != nil {
			t.Fatalf("tag %s: %v", tag, err)
		}
		twice, err := Model(once, BySecReqs(tag))
		if err != nil {
			t.Fatalf("tag %s re-slice: %v", tag, err)
		}
		if !reflect.DeepEqual(once.Behavioral, twice.Behavioral) {
			t.Errorf("tag %s: behavioral slice not idempotent", tag)
		}
		if !reflect.DeepEqual(once.Resource, twice.Resource) {
			t.Errorf("tag %s: resource slice not idempotent", tag)
		}
	}
}

// TestSliceContractsAgreeWithFullModel: a slice's contracts equal the full
// model's contracts for the covered triggers (slicing never changes the
// obligations it keeps).
func TestSliceContractsAgreeWithFullModel(t *testing.T) {
	full, err := contract.Generate(paper.CinderModel())
	if err != nil {
		t.Fatal(err)
	}
	for _, method := range []uml.HTTPMethod{uml.GET, uml.PUT, uml.POST, uml.DELETE} {
		sliced, err := Model(paper.CinderModel(), ByMethods(method))
		if err != nil {
			t.Fatalf("%s: %v", method, err)
		}
		set, err := contract.Generate(sliced)
		if err != nil {
			t.Fatalf("%s: %v", method, err)
		}
		tr := uml.Trigger{Method: method, Resource: "volume"}
		fc, ok1 := full.For(tr)
		sc, ok2 := set.For(tr)
		if !ok1 || !ok2 {
			t.Fatalf("%s: contract missing (full=%v slice=%v)", method, ok1, ok2)
		}
		if fc.Pre.String() != sc.Pre.String() {
			t.Errorf("%s: slice pre differs:\n full %s\nslice %s", method, fc.Pre, sc.Pre)
		}
		if fc.Post.String() != sc.Post.String() {
			t.Errorf("%s: slice post differs", method)
		}
		if fc.URI != sc.URI {
			t.Errorf("%s: slice URI %q != full %q", method, sc.URI, fc.URI)
		}
	}
}

// TestSliceUnionCoversModel: slicing by every SecReq and unioning the
// transition counts recovers the full model's transitions (no scenario is
// lost across the partition).
func TestSliceUnionCoversModel(t *testing.T) {
	m := paper.CinderModel()
	total := 0
	for _, tag := range m.Behavioral.SecReqs() {
		s, err := Model(paper.CinderModel(), BySecReqs(tag))
		if err != nil {
			t.Fatal(err)
		}
		total += len(s.Behavioral.Transitions)
	}
	if total != len(m.Behavioral.Transitions) {
		t.Errorf("union of per-SecReq slices has %d transitions, model has %d",
			total, len(m.Behavioral.Transitions))
	}
}
