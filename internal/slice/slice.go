// Package slice implements model slicing — the future-work item the paper
// names for managing model complexity ("proposing a support for splitting
// the models into several parts via slicing", Section VI.B). A slice keeps
// only the behavioral scenarios an expert cares about (selected by
// resource, trigger, or security requirement) together with the minimal
// resource-model vocabulary those scenarios reference, and is itself a
// valid model: it validates, generates contracts, and can be fed to the
// monitor or to uml2go unchanged.
package slice

import (
	"fmt"
	"sort"
	"strings"

	"cloudmon/internal/ocl"
	"cloudmon/internal/uml"
)

// Predicate selects the transitions to keep.
type Predicate func(*uml.Transition) bool

// ByResources keeps transitions whose trigger targets one of the resources.
func ByResources(resources ...string) Predicate {
	set := toSet(resources)
	return func(t *uml.Transition) bool { return set[t.Trigger.Resource] }
}

// ByMethods keeps transitions triggered by one of the HTTP methods.
func ByMethods(methods ...uml.HTTPMethod) Predicate {
	set := make(map[uml.HTTPMethod]bool, len(methods))
	for _, m := range methods {
		set[m] = true
	}
	return func(t *uml.Transition) bool { return set[t.Trigger.Method] }
}

// BySecReqs keeps transitions annotated with any of the requirement tags —
// the slice an auditor of specific requirements wants.
func BySecReqs(tags ...string) Predicate {
	set := toSet(tags)
	return func(t *uml.Transition) bool {
		for _, s := range t.SecReqs {
			if set[s] {
				return true
			}
		}
		return false
	}
}

// Any keeps transitions matched by any of the predicates.
func Any(preds ...Predicate) Predicate {
	return func(t *uml.Transition) bool {
		for _, p := range preds {
			if p(t) {
				return true
			}
		}
		return false
	}
}

func toSet(items []string) map[string]bool {
	set := make(map[string]bool, len(items))
	for _, s := range items {
		set[s] = true
	}
	return set
}

// Model produces the slice of m selected by keep. The result contains:
//
//   - the kept transitions;
//   - every state that is an endpoint of a kept transition, plus the
//     initial state (so the scenario remains anchored);
//   - the resource definitions referenced by kept triggers, state
//     invariants, guards and effects — closed over association-role
//     navigation and over ancestors needed to compose URIs;
//   - the associations whose both ends survive.
//
// An empty slice (no transition matches) is an error: a monitor without
// methods is meaningless.
func Model(m *uml.Model, keep Predicate) (*uml.Model, error) {
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("slice: invalid input model: %w", err)
	}

	var kept []*uml.Transition
	for _, t := range m.Behavioral.Transitions {
		if keep(t) {
			kept = append(kept, copyTransition(t))
		}
	}
	if len(kept) == 0 {
		return nil, fmt.Errorf("slice: no transition of %q matches the criterion", m.Behavioral.Name)
	}

	// States: endpoints of kept transitions + the initial state.
	stateNames := make(map[string]bool, len(kept)*2)
	for _, t := range kept {
		stateNames[t.From] = true
		stateNames[t.To] = true
	}
	if init, ok := m.Behavioral.InitialState(); ok {
		stateNames[init.Name] = true
	}
	var states []*uml.State
	for _, s := range m.Behavioral.States {
		if stateNames[s.Name] {
			cp := *s
			states = append(states, &cp)
		}
	}

	bm := &uml.BehavioralModel{
		Name:        m.Behavioral.Name,
		States:      states,
		Transitions: kept,
	}

	rm, err := sliceResourceModel(m.Resource, bm)
	if err != nil {
		return nil, err
	}

	out := &uml.Model{Resource: rm, Behavioral: bm}
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("slice: produced invalid model: %w", err)
	}
	return out, nil
}

// sliceResourceModel computes the minimal resource vocabulary the sliced
// behavioral model needs.
func sliceResourceModel(rm *uml.ResourceModel, bm *uml.BehavioralModel) (*uml.ResourceModel, error) {
	needed := make(map[string]bool)

	// 1. Trigger resources.
	for _, t := range bm.Transitions {
		needed[t.Trigger.Resource] = true
	}

	// 2. OCL navigation vocabulary: heads, and targets of association
	// roles used as second segments.
	addPaths := func(src string) error {
		if strings.TrimSpace(src) == "" {
			return nil
		}
		e, err := ocl.Parse(src)
		if err != nil {
			return fmt.Errorf("slice: parse %q: %w", src, err)
		}
		for _, dotted := range ocl.NavPaths(e) {
			path := strings.Split(dotted, ".")
			head := path[0]
			if head == "user" {
				continue
			}
			needed[head] = true
			if len(path) > 1 {
				for _, a := range rm.AssociationsFrom(head) {
					if a.Role == path[1] {
						needed[a.To] = true
					}
				}
			}
		}
		return nil
	}
	for _, s := range bm.States {
		if err := addPaths(s.Invariant); err != nil {
			return nil, err
		}
	}
	for _, t := range bm.Transitions {
		if err := addPaths(t.Guard); err != nil {
			return nil, err
		}
		if err := addPaths(t.Effect); err != nil {
			return nil, err
		}
	}

	// 3. Ancestors: every resource on an incoming association chain, so
	// URI composition from the roots still works.
	incoming := make(map[string][]string, len(rm.Associations))
	for _, a := range rm.Associations {
		incoming[a.To] = append(incoming[a.To], a.From)
	}
	queue := make([]string, 0, len(needed))
	for name := range needed {
		queue = append(queue, name)
	}
	sort.Strings(queue) // deterministic traversal
	for len(queue) > 0 {
		name := queue[0]
		queue = queue[1:]
		for _, parent := range incoming[name] {
			if !needed[parent] {
				needed[parent] = true
				queue = append(queue, parent)
			}
		}
	}

	out := &uml.ResourceModel{Name: rm.Name}
	for _, r := range rm.Resources {
		if !needed[r.Name] {
			continue
		}
		cp := &uml.ResourceDef{Name: r.Name, Kind: r.Kind}
		cp.Attributes = append(cp.Attributes, r.Attributes...)
		out.Resources = append(out.Resources, cp)
	}
	for _, a := range rm.Associations {
		if needed[a.From] && needed[a.To] {
			out.Associations = append(out.Associations, a)
		}
	}
	return out, nil
}

func copyTransition(t *uml.Transition) *uml.Transition {
	cp := *t
	cp.SecReqs = append([]string(nil), t.SecReqs...)
	return &cp
}
