package contract

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"
)

// Digest returns a stable content digest of the contract: SHA-256 over a
// deterministic textual rendering of the trigger, URI, every case's
// clauses (pre, post, guard, effect, transition endpoints, SecReq tags)
// and the combined pre/post formulas. Two contracts digest equal exactly
// when they would make the same decisions, so the digest — stamped on
// every audit record — binds a verdict to the contract version that
// produced it; evidence replay refuses to compare across versions.
func (c *Contract) Digest() string {
	h := sha256.New()
	fmt.Fprintf(h, "cloudmon.contract/v1\ntrigger %s\nuri %s\n", c.Trigger, c.URI)
	for _, cs := range c.Cases {
		fmt.Fprintf(h, "case %s->%s on %s\n", cs.Transition.From, cs.Transition.To, cs.Transition.Trigger)
		fmt.Fprintf(h, "secreqs %s\n", strings.Join(cs.Transition.SecReqs, ","))
		fmt.Fprintf(h, "pre %s\npost %s\nguard %s\neffect %s\n", cs.Pre, cs.Post, cs.Guard, cs.Effect)
	}
	fmt.Fprintf(h, "pre %s\npost %s\nsecreqs %s\n", c.Pre, c.Post, strings.Join(c.SecReqs, ","))
	return "sha256:" + hex.EncodeToString(h.Sum(nil))
}

// Digest returns a stable content digest of the whole set: SHA-256 over
// the per-contract digests in trigger order.
func (s *Set) Digest() string {
	h := sha256.New()
	fmt.Fprintf(h, "cloudmon.contract-set/v1\n")
	for _, c := range s.Contracts {
		fmt.Fprintf(h, "%s %s\n", c.Trigger, c.Digest())
	}
	return "sha256:" + hex.EncodeToString(h.Sum(nil))
}
