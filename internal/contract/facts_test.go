package contract

import (
	"testing"

	"cloudmon/internal/ocl"
	"cloudmon/internal/paper"
	"cloudmon/internal/uml"
)

// TestCinderFactsExclusions pins the witness exclusions the symbolic pass
// proves on the paper's model: every ordered pair of disjuncts of every
// trigger is mutually exclusive (the states partition the quota space),
// each with a runtime-checkable witness element.
func TestCinderFactsExclusions(t *testing.T) {
	set := generate(t)
	wantPairs := map[string]int{
		"POST(volume)":   12, // 4 disjuncts, all ordered pairs excluded
		"DELETE(volume)": 6,
		"GET(volume)":    2,
		"PUT(volume)":    2,
	}
	for _, c := range set.Contracts {
		f := c.Plan().Facts
		if f == nil {
			t.Fatalf("%s: no facts", c.Trigger)
		}
		if err := f.Check(c); err != nil {
			t.Fatalf("%s: %v", c.Trigger, err)
		}
		total := 0
		for _, exs := range f.Exclusions {
			total += len(exs)
		}
		if want := wantPairs[c.Trigger.String()]; total != want {
			t.Errorf("%s: %d exclusions, want %d", c.Trigger, total, want)
		}
		for i, pf := range f.Pre {
			if pf.Static != nil {
				t.Errorf("%s case %d: unexpected static value %s", c.Trigger, i, pf.Static)
			}
			if len(pf.SubsumedBy) != 0 {
				t.Errorf("%s case %d: unexpected subsumption by %v", c.Trigger, i, pf.SubsumedBy)
			}
			if pf.Rewritten {
				t.Errorf("%s case %d: unexpected fold rewrite to %s", c.Trigger, i, pf.Folded)
			}
		}
		if len(f.DeadPaths) != 0 {
			t.Errorf("%s: unexpected dead paths %v", c.Trigger, f.DeadPaths)
		}
	}

	// Spot-check the DELETE witnesses: once the size()=1 disjunct is
	// true, its siblings are decided by a single element each.
	del, _ := set.For(uml.Trigger{Method: uml.DELETE, Resource: "volume"})
	f := del.Plan().Facts
	ex := exclusionFrom(t, f, 1, 0) // target case 1, provider case 0
	if ex.Witness.String() != "project.volumes->size() > 1" || ex.WitnessPos != 3 {
		t.Errorf("DELETE 0=>1 witness = %q at %d", ex.Witness, ex.WitnessPos)
	}
	ex = exclusionFrom(t, f, 2, 0)
	if ex.Witness.String() != "project.volumes = quota_sets.volume" || ex.WitnessPos != 2 {
		t.Errorf("DELETE 0=>2 witness = %q at %d", ex.Witness, ex.WitnessPos)
	}
	if ex.Reason == "" {
		t.Error("exclusion carries no reason trace")
	}

	// And the POST quota split: quota > 1 versus quota = 1.
	post, _ := set.For(uml.Trigger{Method: uml.POST, Resource: "volume"})
	ex = exclusionFrom(t, post.Plan().Facts, 1, 0)
	if ex.Witness.String() != "quota_sets.volume = 1" || ex.WitnessPos != 3 {
		t.Errorf("POST 0=>1 witness = %q at %d", ex.Witness, ex.WitnessPos)
	}
}

func exclusionFrom(t *testing.T, f *Facts, target, provider int) Exclusion {
	t.Helper()
	for _, ex := range f.Exclusions[target] {
		if ex.Provider == provider {
			return ex
		}
	}
	t.Fatalf("no exclusion for case %d from provider %d", target, provider)
	return Exclusion{}
}

// TestFactsStaticClauses: a disjunct whose guard is contradictory folds
// to a static false; its paths leave the demand universe, its implication
// is vacuous, and paths only it read are reported dead.
func TestFactsStaticClauses(t *testing.T) {
	c := &Contract{
		Cases: []Case{
			{
				Pre:  ocl.MustParse("thing.items->size() = 1 and 2 > 3"),
				Post: ocl.MustParse("thing.items->size() = 0"),
			},
			{
				Pre:  ocl.MustParse("thing.other->size() >= 1"),
				Post: ocl.MustParse("thing.other->size() >= 1"),
			},
		},
	}
	f := c.Plan().Facts
	if err := f.Check(c); err != nil {
		t.Fatal(err)
	}
	pf := f.Pre[0]
	if !pf.Rewritten || pf.Folded.String() != "thing.items->size() = 1 and false" {
		t.Errorf("folded = %q (rewritten=%v)", pf.Folded, pf.Rewritten)
	}
	if pf.Static == nil || pf.Static.Kind != ocl.KindBool || pf.Static.Bool {
		t.Fatalf("case 0 static = %v, want false", pf.Static)
	}
	if pf.Reason == "" {
		t.Error("static fact carries no reason trace")
	}
	if s := f.Post[0].AnteStatic; s == nil || s.Bool {
		t.Errorf("post 0 AnteStatic = %v, want false", s)
	}
	if len(f.DeadPaths) != 1 || f.DeadPaths[0].Path != "thing.items" {
		t.Errorf("dead paths = %v, want [thing.items]", f.DeadPaths)
	}
	if f.Pre[1].Static != nil {
		t.Errorf("case 1 unexpectedly static: %v", f.Pre[1].Static)
	}

	// A tautological disjunct is static true; nothing is dead (its
	// consequent still runs).
	c2 := &Contract{Cases: []Case{{
		Pre:  ocl.MustParse("2 > 1"),
		Post: ocl.MustParse("thing.items->size() = 0"),
	}}}
	f2 := c2.Plan().Facts
	if s := f2.Pre[0].Static; s == nil || !s.Bool {
		t.Fatalf("static = %v, want true", s)
	}
	if len(f2.DeadPaths) != 0 {
		t.Errorf("dead paths = %v, want none", f2.DeadPaths)
	}
}

// TestFactsSubsumption: a strictly stronger disjunct is reported as
// subsumed by its weaker sibling (diagnostic MV702 feed).
func TestFactsSubsumption(t *testing.T) {
	c := &Contract{
		Cases: []Case{
			{Pre: ocl.MustParse("a.x->size() >= 1"), Post: ocl.MustParse("a.x->size() >= 1")},
			{Pre: ocl.MustParse("a.x->size() > 1"), Post: ocl.MustParse("a.x->size() >= 1")},
		},
	}
	f := c.Plan().Facts
	if got := f.Pre[1].SubsumedBy; len(got) != 1 || got[0] != 0 {
		t.Errorf("case 1 SubsumedBy = %v, want [0]", got)
	}
	if len(f.Pre[0].SubsumedBy) != 0 {
		t.Errorf("case 0 SubsumedBy = %v, want none", f.Pre[0].SubsumedBy)
	}
}

// TestFactsWitnessBlockedByErroringPrefix: an element that may error and
// is not shared with the provider blocks the witness scan — skipping past
// it could hide an evaluation error the eager engine reports.
func TestFactsWitnessBlockedByErroringPrefix(t *testing.T) {
	c := &Contract{
		Cases: []Case{
			{Pre: ocl.MustParse("a.x->size() = 0"), Post: ocl.MustParse("a.x->size() = 0")},
			{
				// a.y + 1 = 2 can error (arithmetic on an arbitrary kind)
				// and the provider does not evaluate it.
				Pre:  ocl.MustParse("a.y + 1 = 2 and a.x->size() >= 1"),
				Post: ocl.MustParse("a.x->size() >= 1"),
			},
		},
	}
	f := c.Plan().Facts
	if len(f.Exclusions[1]) != 0 {
		t.Errorf("expected no exclusion past a possibly-erroring prefix, got %+v", f.Exclusions[1])
	}
	// The reverse direction is fine: case 0's single element is refuted
	// and has no prefix.
	if len(f.Exclusions[0]) != 1 {
		t.Errorf("expected the reverse exclusion, got %+v", f.Exclusions[0])
	}
}

// TestFactsOnShippedModels: the artifact machine-check passes on every
// model the repository ships.
func TestFactsOnShippedModels(t *testing.T) {
	models := map[string]*uml.Model{
		"cinder": paper.CinderModel(),
	}
	for name, m := range models {
		set, err := Generate(m)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, c := range set.Contracts {
			if err := c.Plan().Facts.Check(c); err != nil {
				t.Errorf("%s %s: %v", name, c.Trigger, err)
			}
		}
	}
}
