package contract

import (
	"testing"

	"cloudmon/internal/ocl"
)

// FuzzCompiledEval is the compiler's soundness fuzzer: any formula the
// parser accepts must evaluate identically under the closure-chain
// programs and the reference tree walk — same value (including Undefined
// propagation) or the same error, over the same environments. The seed
// corpus unions the OCL package's parse and eval seeds with forms that
// target compiler-specific machinery: iterator registers, the collection
// arena, pre-state slots and constant folding.
func FuzzCompiledEval(f *testing.F) {
	seeds := []string{
		// From the OCL fuzz corpus.
		"true",
		"project.id->size()=1 and project.volumes->size()=0",
		"project.volumes < quota_sets.volume and volume.status <> 'in-use'",
		"user.id.groups='admin' or user.id.groups='member'",
		"pre(project.volumes->size()) - 1",
		"x@pre = 3",
		"nums->select(n | n > 1)->size()",
		"coll->forAll(g | g <> 'banned')",
		"not (a and b) implies c xor d",
		"1 + 2 * 3 / 4 - 5",
		"project.volumes->size() = 2",
		"user.id.groups->forAll(g | g = 'admin')",
		"pre(x) + 1 < y",
		"a / 0",
		"x->sum()",
		// Compiler-specific shapes.
		"nums->select(n | nums->select(m | m > n)->size() > 0)->size()",
		"nums->collect(n | n + 1)->sum()",
		"nums->reject(n | n > 1)->includes(1)",
		"user.id.groups->exists(g | g = missing)",
		"pre(project.volumes)->size() < project.volumes->size()",
		"volume.status@pre = volume.status",
		"nums->count(1) + nums->first()",
		"2 > 1 and 3 * 3 = 9",
		"missing = missing",
		"nums->isEmpty() or nums->notEmpty()",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	env := ocl.MapEnv{
		"project.id":        ocl.StringVal("p1"),
		"project.volumes":   ocl.CollectionVal(ocl.StringVal("a"), ocl.StringVal("b")),
		"quota_sets.volume": ocl.IntVal(10),
		"volume.status":     ocl.StringVal("available"),
		"user.id.groups":    ocl.StringsVal("admin", "member"),
		"nums":              ocl.CollectionVal(ocl.IntVal(1), ocl.IntVal(2), ocl.IntVal(3)),
		"coll":              ocl.StringsVal("x", "y"),
		"x":                 ocl.IntVal(1),
		"y":                 ocl.IntVal(2),
		"a":                 ocl.IntVal(3),
		"b":                 ocl.BoolVal(true),
		"c":                 ocl.BoolVal(false),
		"d":                 ocl.BoolVal(true),
	}
	pre := ocl.MapEnv{
		"project.volumes": ocl.CollectionVal(ocl.StringVal("a"), ocl.StringVal("b"), ocl.StringVal("c")),
		"volume.status":   ocl.StringVal("in-use"),
		"x":               ocl.IntVal(7),
		"nums":            ocl.CollectionVal(ocl.IntVal(9)),
	}
	f.Fuzz(func(t *testing.T, src string) {
		e, err := ocl.Parse(src)
		if err != nil {
			return
		}
		ce := CompileExpr(e)
		// Two environment bindings: with a pre-state and without one
		// (pre()/@pre must surface ErrNoPreState in both engines).
		for _, preEnv := range []ocl.MapEnv{pre, nil} {
			// Bind Pre only when a pre-state exists: a typed-nil MapEnv in
			// the interface field would read as an empty (bound) pre-state.
			ctx := ocl.Context{Cur: env}
			if preEnv != nil {
				ctx.Pre = preEnv
			}
			wantV, wantErr := ocl.Eval(e, ctx)
			gotV, gotErr := ce.Eval(env, preEnv)
			if (wantErr == nil) != (gotErr == nil) {
				t.Fatalf("%q (pre=%v): error divergence: tree-walk %v, compiled %v",
					src, preEnv != nil, wantErr, gotErr)
			}
			if wantErr != nil {
				if wantErr.Error() != gotErr.Error() {
					t.Fatalf("%q (pre=%v): error text divergence: tree-walk %q, compiled %q",
						src, preEnv != nil, wantErr.Error(), gotErr.Error())
				}
				continue
			}
			if !wantV.Equal(gotV) {
				t.Fatalf("%q (pre=%v): value divergence: tree-walk %v, compiled %v",
					src, preEnv != nil, wantV, gotV)
			}
		}
	})
}
