package contract

import (
	"strings"
	"testing"

	"cloudmon/internal/paper"
)

// TestCompilerCampaignKillsAllMutants pins the compiler mutation score at
// 100%: every seeded semantic fault in the closure-chain compiler is
// detected by the differential corpus. A drop below full kills means a
// compiler rule lost its witnessing formula — the differential safety net
// has a hole — and must fail loudly, not erode silently.
func TestCompilerCampaignKillsAllMutants(t *testing.T) {
	set, err := Generate(paper.CinderModel())
	if err != nil {
		t.Fatal(err)
	}
	report, err := RunCompilerCampaign(set)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Kills) != len(CompilerMutants()) {
		t.Fatalf("campaign ran %d mutants, catalogue has %d", len(report.Kills), len(CompilerMutants()))
	}
	for _, k := range report.Kills {
		if !k.Killed {
			t.Errorf("mutant %s survived the corpus (%d trials)", k.Mutant, k.Trials)
		}
	}
	if got, want := report.Killed(), len(CompilerMutants()); got != want {
		t.Errorf("kill score %d/%d, pinned at %d/%d", got, len(report.Kills), want, want)
	}
	var sb strings.Builder
	report.Format(&sb)
	if !strings.Contains(sb.String(), "kill score:") {
		t.Errorf("report format lost its score line:\n%s", sb.String())
	}
}

// TestCompilerCampaignSyntheticOnly checks the synthetic corpus alone
// (nil contract set) already kills every mutant — contract clauses add
// real-workload confidence, not coverage the score depends on.
func TestCompilerCampaignSyntheticOnly(t *testing.T) {
	report, err := RunCompilerCampaign(nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range report.Kills {
		if !k.Killed {
			t.Errorf("mutant %s survives the synthetic corpus", k.Mutant)
		}
	}
}
