// The compiled engine's runtime state: a Frame of generation-stamped
// value slots, one per state path the contract can demand, plus iterator
// registers and an append-only arena for collection results. Frames are
// pooled per Compiled artifact so a warmed monitor evaluates contracts
// without allocating.
package contract

import (
	"cloudmon/internal/ocl"
)

// Demand is the compiled engine's demand signal: a program reached a
// state-path slot that has not been filled this evaluation. Demands are
// preallocated per slot at compile time, so signalling one costs nothing;
// the demand loop (internal/monitor) fetches the path, fills the slot and
// re-runs the program — the mirror of the lazy engine's unfetchedError.
type Demand struct {
	// Path is the dotted state path the program demanded.
	Path string
	// Index is the slot index in the Compiled path table.
	Index int
	// Pre marks a pre-state (old value) demand; false is current state.
	Pre bool
}

// Error implements the error interface.
func (d *Demand) Error() string {
	if d.Pre {
		return "contract: pre-state path " + d.Path + " not resolved"
	}
	return "contract: state path " + d.Path + " not resolved"
}

// slot is one state-path value. gen stamps the fill (valid when it equals
// the bank's generation — bumping the generation empties the whole bank
// in O(1)); demandGen stamps the last clause window that read the slot,
// for per-clause distinct-demand accounting.
type slot struct {
	val       ocl.Value
	gen       uint64
	demandGen uint64
	present   bool
}

// Frame is the mutable evaluation state of one monitored request. It is
// not safe for concurrent use; obtain one per evaluation from
// Compiled.NewFrame and return it with Compiled.Release.
type Frame struct {
	c *Compiled
	// cur and pre are the current- and pre-state slot banks, indexed by
	// the Compiled path table.
	cur, pre []slot
	// curGen/preGen are the banks' fill generations: a slot is filled iff
	// its gen matches. Bumping a generation invalidates the bank.
	curGen, preGen uint64
	// clauseGen identifies the open demand-accounting window; demanded
	// counts the distinct slot reads within it.
	clauseGen uint64
	demanded  int
	// hasPre reports whether a pre-state environment is bound: pre()/
	// @pre without one is ocl.ErrNoPreState, exactly as in the tree walk.
	hasPre bool
	// regs holds iterator-variable bindings, indexed by lexical depth.
	regs []ocl.Value
	// arena backs collection results built during evaluation
	// (select/reject/collect). It is append-only within one evaluation
	// and recycled across evaluations, so the steady state allocates
	// nothing; results alias it and die with the frame's reuse.
	arena []ocl.Value
}

// Reset empties both banks, closes the accounting window and recycles the
// arena. Generations only ever increase, so stale slot stamps from
// earlier evaluations can never read as filled.
func (fr *Frame) Reset() {
	fr.curGen++
	fr.preGen++
	fr.clauseGen++
	fr.demanded = 0
	fr.hasPre = false
	fr.arena = fr.arena[:0]
}

// SetCur fills the current-state slot for path (present=false marks it
// fetched but absent, resolving to Undefined). Paths outside the
// contract's table are ignored.
func (fr *Frame) SetCur(path string, v ocl.Value, present bool) {
	if i, ok := fr.c.idx[path]; ok {
		fr.cur[i] = slot{val: v, gen: fr.curGen, present: present}
	}
}

// SetCurSlot fills current-state slot i directly. Callers that resolved
// the path table once (Compiled.Paths order, or a Demand's Index) fill
// per request without re-hashing path strings — the point of resolving
// paths at compile time.
func (fr *Frame) SetCurSlot(i int, v ocl.Value, present bool) {
	fr.cur[i] = slot{val: v, gen: fr.curGen, present: present}
}

// SetPreSlot fills pre-state slot i directly and marks the pre-state
// bound.
func (fr *Frame) SetPreSlot(i int, v ocl.Value, present bool) {
	fr.hasPre = true
	fr.pre[i] = slot{val: v, gen: fr.preGen, present: present}
}

// SetPre fills the pre-state slot for path and marks the pre-state bound.
func (fr *Frame) SetPre(path string, v ocl.Value, present bool) {
	fr.hasPre = true
	if i, ok := fr.c.idx[path]; ok {
		fr.pre[i] = slot{val: v, gen: fr.preGen, present: present}
	}
}

// BeginPost turns the frame around for the post-check: the current bank
// is emptied (it now describes the post-state, fetched on demand) and the
// pre-state bank is bound. Callers then copy the captured pre-state in
// via SetPre.
func (fr *Frame) BeginPost() {
	fr.curGen++
	fr.preGen++
	fr.hasPre = true
}

// BeginClause opens a demand-accounting window; TakeDemands closes it and
// reports the distinct slot reads since — the compiled engine's
// equivalent of lazyEnv.beginClause/takeDemands, feeding the same
// Verdict.DemandedPaths measure.
func (fr *Frame) BeginClause() {
	fr.clauseGen++
	fr.demanded = 0
}

// TakeDemands closes the window and returns its distinct demand count.
func (fr *Frame) TakeDemands() int {
	n := fr.demanded
	fr.clauseGen++
	fr.demanded = 0
	return n
}

// Filled reports whether the demanded slot has been filled — the demand
// loop's progress guard (a fetch that does not fill its slot would loop
// forever).
func (fr *Frame) Filled(d *Demand) bool {
	if d.Pre {
		return fr.pre[d.Index].gen == fr.preGen
	}
	return fr.cur[d.Index].gen == fr.curGen
}

// loadCur reads a current-state slot, accounting the demand window.
func (fr *Frame) loadCur(i int) (ocl.Value, error) {
	s := &fr.cur[i]
	if s.gen != fr.curGen {
		return ocl.Value{}, fr.c.curDemand[i]
	}
	if s.demandGen != fr.clauseGen {
		s.demandGen = fr.clauseGen
		fr.demanded++
	}
	if !s.present {
		return ocl.Value{Kind: ocl.KindUndefined}, nil
	}
	return s.val, nil
}

// loadPre reads a pre-state slot.
func (fr *Frame) loadPre(i int) (ocl.Value, error) {
	if !fr.hasPre {
		return ocl.Value{}, ocl.ErrNoPreState
	}
	s := &fr.pre[i]
	if s.gen != fr.preGen {
		return ocl.Value{}, fr.c.preDemand[i]
	}
	if s.demandGen != fr.clauseGen {
		s.demandGen = fr.clauseGen
		fr.demanded++
	}
	if !s.present {
		return ocl.Value{Kind: ocl.KindUndefined}, nil
	}
	return s.val, nil
}
