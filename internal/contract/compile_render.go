package contract

import (
	"fmt"
	"strings"
)

// RenderCompiled summarizes each contract's compiled artifact — the slot
// table, program counts and register bank — the way RenderFacts presents
// the symbolic pass's output. modelvet -compiled prints this so a model
// author can see what the monitor will actually execute per request.
func RenderCompiled(set *Set) string {
	var b strings.Builder
	for _, c := range set.Contracts {
		cp := c.Plan().Compiled
		fmt.Fprintf(&b, "%s %s\n", c.Trigger, c.URI)
		if cp == nil {
			fmt.Fprintf(&b, "  (not compiled)\n")
			continue
		}
		witnesses := 0
		for _, ws := range cp.witness {
			witnesses += len(ws)
		}
		fmt.Fprintf(&b, "  programs: %d pre, %d post, %d witness; %d iterator registers\n",
			cp.Cases(), cp.Cases(), witnesses, cp.Registers())
		fmt.Fprintf(&b, "  slots (%d):\n", len(cp.Paths()))
		for i, p := range cp.Paths() {
			fmt.Fprintf(&b, "    [%d] %s\n", i, p)
		}
	}
	return b.String()
}
