package contract

import (
	"fmt"
	"math/rand"
	"testing"

	"cloudmon/internal/ocl"
	"cloudmon/internal/uml"
)

// genModel builds a random valid model: a chain/star state machine over a
// small resource vocabulary with random guards and effects.
func genModel(r *rand.Rand) *uml.Model {
	rm := &uml.ResourceModel{
		Name: "gen",
		Resources: []*uml.ResourceDef{
			{Name: "roots", Kind: uml.KindCollection},
			{Name: "item", Kind: uml.KindNormal, Attributes: []uml.Attribute{
				{Name: "id", Type: uml.TypeString},
				{Name: "count", Type: uml.TypeInteger},
				{Name: "state", Type: uml.TypeString},
			}},
		},
		Associations: []uml.Association{
			{From: "roots", To: "item", Role: "item", Mult: uml.Multiplicity{Min: 0, Max: uml.Many}},
		},
	}
	nStates := 2 + r.Intn(5)
	bm := &uml.BehavioralModel{Name: "gen_sm"}
	for i := 0; i < nStates; i++ {
		bm.States = append(bm.States, &uml.State{
			Name:      fmt.Sprintf("s%d", i),
			Initial:   i == 0,
			Invariant: fmt.Sprintf("item.count >= %d", i),
		})
	}
	methods := []uml.HTTPMethod{uml.GET, uml.PUT, uml.POST, uml.DELETE}
	nTrans := 1 + r.Intn(8)
	for i := 0; i < nTrans; i++ {
		guard := ""
		if r.Intn(2) == 0 {
			guard = fmt.Sprintf("user.id.groups='admin' and item.count < %d", 1+r.Intn(9))
		}
		effect := ""
		if r.Intn(2) == 0 {
			effect = "item.count = pre(item.count) + 1"
		}
		var reqs []string
		if r.Intn(2) == 0 {
			reqs = []string{fmt.Sprintf("9.%d", r.Intn(4))}
		}
		bm.Transitions = append(bm.Transitions, &uml.Transition{
			From:    fmt.Sprintf("s%d", r.Intn(nStates)),
			To:      fmt.Sprintf("s%d", r.Intn(nStates)),
			Trigger: uml.Trigger{Method: methods[r.Intn(len(methods))], Resource: "item"},
			Guard:   guard,
			Effect:  effect,
			SecReqs: reqs,
		})
	}
	return &uml.Model{Resource: rm, Behavioral: bm}
}

// TestPropertyGenerateInvariants: for any valid model, Generate succeeds
// and the output satisfies the structural laws of Section V.
func TestPropertyGenerateInvariants(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	for i := 0; i < 300; i++ {
		m := genModel(r)
		set, err := Generate(m)
		if err != nil {
			t.Fatalf("iteration %d: Generate: %v", i, err)
		}
		// One contract per distinct trigger.
		triggers := m.Behavioral.Triggers()
		if len(set.Contracts) != len(triggers) {
			t.Fatalf("iteration %d: %d contracts for %d triggers", i, len(set.Contracts), len(triggers))
		}
		for _, c := range set.Contracts {
			// Law 1: one case per triggering transition.
			if got, want := len(c.Cases), len(m.Behavioral.TransitionsFor(c.Trigger)); got != want {
				t.Fatalf("iteration %d: %s has %d cases, want %d", i, c.Trigger, got, want)
			}
			// Law 2: pre-conditions never use old values.
			if ocl.UsesPre(c.Pre) {
				t.Fatalf("iteration %d: %s pre uses pre()", i, c.Trigger)
			}
			for _, cs := range c.Cases {
				if ocl.UsesPre(cs.Pre) {
					t.Fatalf("iteration %d: case pre uses pre()", i)
				}
			}
			// Law 3: rendered contracts re-parse.
			if _, err := ocl.Parse(c.Pre.String()); err != nil {
				t.Fatalf("iteration %d: pre does not re-parse: %v", i, err)
			}
			if _, err := ocl.Parse(c.Post.String()); err != nil {
				t.Fatalf("iteration %d: post does not re-parse: %v", i, err)
			}
			// Law 4: any case pre implies the combined pre (disjunction
			// soundness) — checked semantically on random environments.
			for trial := 0; trial < 4; trial++ {
				env := ocl.MapEnv{
					"item.id":        ocl.StringVal("x"),
					"item.count":     ocl.IntVal(r.Intn(12)),
					"item.state":     ocl.StringVal("s"),
					"user.id.groups": ocl.StringsVal([]string{"admin", "member"}[r.Intn(2)]),
				}
				ctx := ocl.Context{Cur: env}
				combined, err := ocl.EvalBool(c.Pre, ctx)
				if err != nil {
					t.Fatal(err)
				}
				anyCase := false
				for _, cs := range c.Cases {
					ok, err := ocl.EvalBool(cs.Pre, ctx)
					if err != nil {
						t.Fatal(err)
					}
					anyCase = anyCase || ok
				}
				if anyCase != combined {
					t.Fatalf("iteration %d: combined pre %v but cases %v for %s",
						i, combined, anyCase, c.Trigger)
				}
			}
			// Law 5: state paths cover both pre and post vocabulary.
			pathSet := map[string]bool{}
			for _, p := range c.StatePaths() {
				pathSet[p] = true
			}
			for _, p := range append(ocl.NavPaths(c.Pre), ocl.NavPaths(c.Post)...) {
				if !pathSet[p] {
					t.Fatalf("iteration %d: path %s missing from StatePaths", i, p)
				}
			}
		}
	}
}

// TestPropertySecReqsAreUnionOfCases: contract SecReqs equal the union of
// the triggering transitions' tags.
func TestPropertySecReqsUnion(t *testing.T) {
	r := rand.New(rand.NewSource(29))
	for i := 0; i < 200; i++ {
		m := genModel(r)
		set, err := Generate(m)
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range set.Contracts {
			want := map[string]bool{}
			for _, tr := range m.Behavioral.TransitionsFor(c.Trigger) {
				for _, s := range tr.SecReqs {
					want[s] = true
				}
			}
			if len(want) != len(c.SecReqs) {
				t.Fatalf("iteration %d: SecReqs %v, want %v", i, c.SecReqs, want)
			}
			for _, s := range c.SecReqs {
				if !want[s] {
					t.Fatalf("iteration %d: unexpected SecReq %s", i, s)
				}
			}
		}
	}
}
