package contract

import (
	"fmt"
	"strings"
)

// RenderFacts renders every contract's compile-time facts as text — the
// output behind modelvet's -facts flag. Each line is one proven fact with
// its reason trace; a contract the symbolic pass proved nothing about
// says so explicitly.
func RenderFacts(set *Set) string {
	var b strings.Builder
	for _, c := range set.Contracts {
		renderContractFacts(&b, c)
	}
	return b.String()
}

func renderContractFacts(b *strings.Builder, c *Contract) {
	f := c.Plan().Facts
	fmt.Fprintf(b, "%s %s\n", c.Trigger, c.URI)
	if f == nil {
		fmt.Fprintf(b, "  (no facts)\n")
		return
	}
	proved := false
	for i := range f.Pre {
		pf := &f.Pre[i]
		if pf.Rewritten {
			fmt.Fprintf(b, "  pre[%d] %s folds to: %s\n", i, caseLabel(c, i), pf.Folded)
			proved = true
		}
		if pf.Static != nil {
			fmt.Fprintf(b, "  pre[%d] %s static %s — %s\n", i, caseLabel(c, i), pf.Static, pf.Reason)
			proved = true
		}
		for _, j := range pf.SubsumedBy {
			fmt.Fprintf(b, "  pre[%d] %s entails pre[%d] %s: redundant in the disjunction\n",
				i, caseLabel(c, i), j, caseLabel(c, j))
			proved = true
		}
	}
	for j, exs := range f.Exclusions {
		for _, ex := range exs {
			fmt.Fprintf(b, "  pre[%d] %s skippable once pre[%d] %s is true: witness %s (element %d of %d)\n",
				j, caseLabel(c, j), ex.Provider, caseLabel(c, ex.Provider),
				ex.Witness, ex.WitnessPos+1, ex.Elements)
			proved = true
		}
	}
	for i := range f.Post {
		if f.Post[i].Vacuous() {
			fmt.Fprintf(b, "  post[%d] %s vacuous — %s\n", i, caseLabel(c, i), f.Post[i].Reason)
			proved = true
		}
	}
	for _, d := range f.DeadPaths {
		fmt.Fprintf(b, "  dead path %s — %s\n", d.Path, d.Reason)
		proved = true
	}
	if !proved {
		fmt.Fprintf(b, "  (nothing proven beyond per-state evaluation)\n")
	}
}

// caseLabel names a case by its transition when the contract carries one.
func caseLabel(c *Contract, i int) string {
	if i < len(c.Cases) {
		if t := c.Cases[i].Transition; t != nil {
			return t.From + "->" + t.To
		}
	}
	return "case"
}
