package contract

import (
	"reflect"
	"sort"
	"testing"

	"cloudmon/internal/ocl"
	"cloudmon/internal/uml"
)

// TestStatePathsMemoized: StatePaths computes once and returns the same
// slice on every call — the hot path (one call per request per snapshot)
// must not re-walk the contract's ASTs.
func TestStatePathsMemoized(t *testing.T) {
	set := generate(t)
	c, _ := set.For(uml.Trigger{Method: uml.DELETE, Resource: "volume"})
	a := c.StatePaths()
	b := c.StatePaths()
	if len(a) == 0 {
		t.Fatal("StatePaths is empty")
	}
	if &a[0] != &b[0] {
		t.Error("StatePaths recomputed: two calls returned distinct slices")
	}
}

// TestPlanMemoized: Generate precomputes the plan; Plan() always hands out
// the same object.
func TestPlanMemoized(t *testing.T) {
	set := generate(t)
	c, _ := set.For(uml.Trigger{Method: uml.GET, Resource: "volume"})
	if c.Plan() != c.Plan() {
		t.Error("Plan recomputed: two calls returned distinct plans")
	}
}

// TestPlanCoversEveryCase: each case appears exactly once in both clause
// lists, post-clauses stay in model order, and the pre-clause union equals
// the eager snapshot set.
func TestPlanCoversEveryCase(t *testing.T) {
	set := generate(t)
	for _, c := range set.Contracts {
		p := c.Plan()
		if len(p.Pre) != len(c.Cases) || len(p.Post) != len(c.Cases) {
			t.Fatalf("%s: plan has %d pre / %d post clauses for %d cases",
				c.Trigger, len(p.Pre), len(p.Post), len(c.Cases))
		}
		seen := make(map[int]bool)
		for _, cl := range p.Pre {
			if seen[cl.Index] {
				t.Errorf("%s: pre clause %d appears twice", c.Trigger, cl.Index)
			}
			seen[cl.Index] = true
		}
		for i, cl := range p.Post {
			if cl.Index != i {
				t.Errorf("%s: post clause %d out of model order (index %d)", c.Trigger, i, cl.Index)
			}
		}
		union := append([]string(nil), p.PrePaths...)
		eager := append([]string(nil), p.EagerPaths...)
		sort.Strings(union)
		sort.Strings(eager)
		if !reflect.DeepEqual(union, eager) {
			t.Errorf("%s: pre-clause union %v != eager paths %v", c.Trigger, union, eager)
		}
	}
}

// TestPlanPreOrderingOnPaperModel: the DELETE contract's three disjuncts
// share one path set, so ordering falls to static cost — the
// quota-exhausted disjunct (no size guard) is smallest and runs first.
func TestPlanPreOrderingOnPaperModel(t *testing.T) {
	set := generate(t)
	c, _ := set.For(uml.Trigger{Method: uml.DELETE, Resource: "volume"})
	p := c.Plan()
	for i := 1; i < len(p.Pre); i++ {
		a, b := p.Pre[i-1], p.Pre[i]
		if len(a.Paths) > len(b.Paths) {
			t.Errorf("pre clauses out of order: %d paths before %d", len(a.Paths), len(b.Paths))
		}
		if len(a.Paths) == len(b.Paths) && a.Cost > b.Cost {
			t.Errorf("pre clauses out of cost order: cost %d before %d", a.Cost, b.Cost)
		}
	}
	// First clause pays for every path; the rest (same path set) add none.
	if !reflect.DeepEqual(p.Pre[0].Added, p.Pre[0].Paths) {
		t.Errorf("first clause Added = %v, want its full path set %v", p.Pre[0].Added, p.Pre[0].Paths)
	}
	for _, cl := range p.Pre[1:] {
		if len(cl.Added) != 0 {
			t.Errorf("clause %d Added = %v, want none (paths already fetched)", cl.Index, cl.Added)
		}
	}
}

// TestPlanOrdersCheapDisjunctFirst: a synthetic contract where one disjunct
// reads strictly fewer paths — it must lead the plan regardless of model
// order, and the wide clause's Added holds only its marginal paths.
func TestPlanOrdersCheapDisjunctFirst(t *testing.T) {
	wide := ocl.MustParse("a.b = 1 and c.d = 2 and e.f = 3")
	narrow := ocl.MustParse("a.b = 1")
	c := &Contract{
		Cases: []Case{
			{Pre: wide, Post: ocl.MustParse("a.b = 1")},
			{Pre: narrow, Post: ocl.MustParse("a.b = 1")},
		},
	}
	p := c.Plan()
	if p.Pre[0].Index != 1 {
		t.Fatalf("plan leads with clause %d, want the narrow clause 1", p.Pre[0].Index)
	}
	if want := []string{"a.b"}; !reflect.DeepEqual(p.Pre[0].Added, want) {
		t.Errorf("narrow clause Added = %v, want %v", p.Pre[0].Added, want)
	}
	if want := []string{"c.d", "e.f"}; !reflect.DeepEqual(p.Pre[1].Added, want) {
		t.Errorf("wide clause Added = %v, want marginal %v", p.Pre[1].Added, want)
	}
	if want := []string{"a.b", "c.d", "e.f"}; !reflect.DeepEqual(p.PrePaths, want) {
		t.Errorf("PrePaths = %v, want %v", p.PrePaths, want)
	}
}

// TestPlanPostClausePaths: post-clauses split the consequent's reads by
// environment and record the effect frame.
func TestPlanPostClausePaths(t *testing.T) {
	set := generate(t)
	c, _ := set.For(uml.Trigger{Method: uml.DELETE, Resource: "volume"})
	p := c.Plan()
	for _, cl := range p.Post {
		if want := []string{"project.volumes"}; !reflect.DeepEqual(cl.PrePaths, want) {
			t.Errorf("clause %d PrePaths = %v, want %v (the volumes@pre reference)", cl.Index, cl.PrePaths, want)
		}
		if want := []string{"project.volumes"}; !reflect.DeepEqual(cl.Touched, want) {
			t.Errorf("clause %d Touched = %v, want %v (DELETE only shrinks the volume set)", cl.Index, cl.Touched, want)
		}
		for _, path := range cl.CurPaths {
			found := false
			for _, p := range c.StatePaths() {
				if p == path {
					found = true
				}
			}
			if !found {
				t.Errorf("clause %d reads %q, not a contract state path", cl.Index, path)
			}
		}
	}
}
