package contract

import (
	"bytes"
	"strings"
	"testing"

	"cloudmon/internal/paper"
	"cloudmon/internal/uml"
)

func genFrom(t *testing.T, m *uml.Model) *Set {
	t.Helper()
	set, err := Generate(m)
	if err != nil {
		t.Fatal(err)
	}
	return set
}

func TestDiffIdenticalModelsIsEmpty(t *testing.T) {
	old := genFrom(t, paper.CinderModel())
	new := genFrom(t, paper.CinderModel())
	d := DiffSets(old, new)
	if !d.Empty() {
		t.Errorf("identical models diff: %+v", d.Changes)
	}
	var buf bytes.Buffer
	d.Format(&buf)
	if !strings.Contains(buf.String(), "preserved") {
		t.Errorf("empty diff report = %q", buf.String())
	}
}

func TestDiffDetectsLoosenedGuard(t *testing.T) {
	// The next release accidentally lets members delete volumes: exactly
	// the paper's A1 mutant, caught at the model level before deployment.
	old := genFrom(t, paper.CinderModel())
	m := paper.CinderModel()
	for _, tr := range m.Behavioral.Transitions {
		if tr.Trigger.Method == uml.DELETE {
			tr.Guard = strings.ReplaceAll(tr.Guard,
				"user.id.groups='admin'",
				"(user.id.groups='admin' or user.id.groups='member')")
		}
	}
	new := genFrom(t, m)
	d := DiffSets(old, new)
	del := uml.Trigger{Method: uml.DELETE, Resource: "volume"}
	changes := d.ForTrigger(del)
	kinds := map[ChangeKind]bool{}
	for _, c := range changes {
		kinds[c.Kind] = true
	}
	if !kinds[PreChanged] || !kinds[PostChanged] {
		t.Errorf("loosened guard not reported: %+v", changes)
	}
	// Untouched methods are quiet.
	if got := d.ForTrigger(uml.Trigger{Method: uml.GET, Resource: "volume"}); len(got) != 0 {
		t.Errorf("GET changed: %+v", got)
	}
}

func TestDiffDetectsRemovedAndAddedMethods(t *testing.T) {
	old := genFrom(t, paper.CinderModel())
	m := paper.CinderModel()
	// Remove all PUT transitions: the method disappears from the API spec.
	var kept []*uml.Transition
	for _, tr := range m.Behavioral.Transitions {
		if tr.Trigger.Method != uml.PUT {
			kept = append(kept, tr)
		}
	}
	m.Behavioral.Transitions = kept
	new := genFrom(t, m)
	d := DiffSets(old, new)
	var removed, added int
	for _, c := range d.Changes {
		switch c.Kind {
		case MethodRemoved:
			removed++
			if c.Trigger.Method != uml.PUT {
				t.Errorf("wrong method removed: %s", c.Trigger)
			}
		case MethodAdded:
			added++
		}
	}
	if removed != 1 || added != 0 {
		t.Errorf("removed=%d added=%d", removed, added)
	}
	// Reverse direction reports an addition.
	rd := DiffSets(new, old)
	if len(rd.Changes) != 1 || rd.Changes[0].Kind != MethodAdded {
		t.Errorf("reverse diff = %+v", rd.Changes)
	}
}

func TestDiffDetectsSecReqRetagging(t *testing.T) {
	old := genFrom(t, paper.CinderModel())
	m := paper.CinderModel()
	for _, tr := range m.Behavioral.Transitions {
		if tr.Trigger.Method == uml.GET {
			tr.SecReqs = []string{"1.9"}
		}
	}
	new := genFrom(t, m)
	d := DiffSets(old, new)
	found := false
	for _, c := range d.Changes {
		if c.Kind == SecReqsChanged {
			found = true
			if c.Old != "1.1" || c.New != "1.9" {
				t.Errorf("secreq change = %q -> %q", c.Old, c.New)
			}
		}
	}
	if !found {
		t.Error("SecReq retagging not detected")
	}
}

func TestDiffDetectsURIMove(t *testing.T) {
	old := genFrom(t, paper.CinderModel())
	m := paper.CinderModel()
	// Rename the volumes association role: every volume URI moves.
	for i := range m.Resource.Associations {
		if m.Resource.Associations[i].Role == "volumes" {
			m.Resource.Associations[i].Role = "block_devices"
		}
	}
	// Keep OCL paths intact (they reference the old role); patch the
	// vocabulary by renaming in the formulas too.
	rewrite := func(s string) string {
		return strings.ReplaceAll(s, "project.volumes", "project.block_devices")
	}
	for _, st := range m.Behavioral.States {
		st.Invariant = rewrite(st.Invariant)
	}
	for _, tr := range m.Behavioral.Transitions {
		tr.Guard = rewrite(tr.Guard)
		tr.Effect = rewrite(tr.Effect)
	}
	new := genFrom(t, m)
	d := DiffSets(old, new)
	found := false
	for _, c := range d.Changes {
		if c.Kind == URIChanged {
			found = true
			if !strings.Contains(c.New, "block_devices") {
				t.Errorf("URI change = %q -> %q", c.Old, c.New)
			}
		}
	}
	if !found {
		t.Error("URI move not detected")
	}
}

func TestDiffFormat(t *testing.T) {
	old := genFrom(t, paper.CinderModel())
	m := paper.CinderModel()
	m.Behavioral.Transitions = m.Behavioral.Transitions[:5] // drop some
	new := genFrom(t, m)
	var buf bytes.Buffer
	DiffSets(old, new).Format(&buf)
	out := buf.String()
	if !strings.Contains(out, "change(s) detected") {
		t.Errorf("report = %q", out)
	}
}

func TestChangeKindString(t *testing.T) {
	kinds := []ChangeKind{MethodAdded, MethodRemoved, PreChanged, PostChanged, SecReqsChanged, URIChanged}
	for _, k := range kinds {
		if strings.HasPrefix(k.String(), "ChangeKind(") {
			t.Errorf("kind %d unnamed", k)
		}
	}
	if ChangeKind(99).String() == "" {
		t.Error("unknown kind renders empty")
	}
}
