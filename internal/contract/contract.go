// Package contract implements the paper's contract-generation mechanism
// (Section V): it turns a behavioral model into Design-by-Contract method
// contracts.
//
// For a method m triggering transitions t1..tn:
//
//	pre(m)  =  OR_i  ( inv(source(t_i)) and guard(t_i) )
//	post(m) =  AND_i ( pre_i  implies  inv(target(t_i)) and effect(t_i) )
//
// where each antecedent pre_i is evaluated on the *pre-state* — the monitor
// snapshots the navigation-path values a contract mentions before forwarding
// the request, exactly as the paper stores them "in the local variables of
// the monitor implementation".
//
// Note: the paper's Listing 1 joins the post-condition implications with
// "or"; its prose ("the corresponding post-condition for that method should
// also be established") requires a conjunction, which is what we generate.
// RenderListing can reproduce either spelling.
package contract

import (
	"fmt"
	"sort"
	"strings"

	"cloudmon/internal/ocl"
	"cloudmon/internal/uml"
)

// Case is the contract contribution of a single transition.
type Case struct {
	// Transition is the source transition.
	Transition *uml.Transition
	// Pre is inv(source) and guard — no pre() references.
	Pre ocl.Expr
	// Post is inv(target) and effect — may reference pre() old values.
	Post ocl.Expr
	// Guard is the transition's parsed guard alone (literal true when the
	// model declares none). The planner uses its vocabulary separately
	// from the source invariant's.
	Guard ocl.Expr
	// Effect is the transition's parsed effect alone (literal true when
	// absent). Its current-state paths bound what the transition may
	// change — the lazy post-check's re-fetch frame.
	Effect ocl.Expr
}

// Contract is the combined method contract for one trigger.
type Contract struct {
	// Trigger identifies the method: HTTP verb + resource.
	Trigger uml.Trigger
	// URI is the resource's relative URI from the resource model.
	URI string
	// Cases are the per-transition contributions, in model order.
	Cases []Case
	// Pre is the combined pre-condition: the disjunction of case
	// pre-conditions. Evaluable against the current (pre-call) state.
	Pre ocl.Expr
	// Post is the combined post-condition: the conjunction of
	// pre_i implies post_i, with each antecedent wrapped to evaluate
	// against the pre-state snapshot. Evaluable with ocl.Context{Cur:
	// post-state, Pre: snapshot}.
	Post ocl.Expr
	// SecReqs are the distinct security-requirement tags covered by this
	// method, sorted (traceability, Section IV.C).
	SecReqs []string

	// statePaths caches the StatePaths result. Generate fills it once so
	// the monitor's per-request hot path never re-walks the formulas.
	statePaths []string
	// plan caches the compiled evaluation plan (see Plan).
	plan *Plan
}

// StatePaths returns the distinct navigation paths the contract needs from
// the cloud: the union of paths in Pre and Post, in first-use order. The
// monitor snapshots exactly these before forwarding ("only the values that
// constitute the guards and invariants"). For contracts built by Generate
// the result is precomputed; callers must not mutate it.
func (c *Contract) StatePaths() []string {
	if c.statePaths == nil {
		c.statePaths = computeStatePaths(c)
	}
	return c.statePaths
}

// computeStatePaths walks Pre and Post collecting distinct paths in
// first-use order.
func computeStatePaths(c *Contract) []string {
	seen := make(map[string]bool)
	var out []string
	for _, p := range append(ocl.NavPaths(c.Pre), ocl.NavPaths(c.Post)...) {
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	return out
}

// Set is the full collection of generated contracts for a model.
type Set struct {
	// Model is the source model.
	Model *uml.Model
	// Contracts holds one contract per trigger, in trigger order.
	Contracts []*Contract
}

// For returns the contract for the trigger, if one was generated.
func (s *Set) For(tr uml.Trigger) (*Contract, bool) {
	for _, c := range s.Contracts {
		if c.Trigger == tr {
			return c, true
		}
	}
	return nil, false
}

// SecReqs returns the distinct security-requirement tags across all
// contracts, sorted.
func (s *Set) SecReqs() []string {
	set := make(map[string]bool)
	for _, c := range s.Contracts {
		for _, r := range c.SecReqs {
			set[r] = true
		}
	}
	out := make([]string, 0, len(set))
	for r := range set {
		out = append(out, r)
	}
	sort.Strings(out)
	return out
}

// Generate derives the contract set from a validated model. It parses every
// OCL fragment once, validates the paper's well-formedness rules (guards and
// invariants must not use pre(); navigation heads must be model resources or
// the `user` authorization context) and combines transitions per trigger.
func Generate(m *uml.Model) (*Set, error) {
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("contract: invalid model: %w", err)
	}
	vocab := VocabularyOf(m.Resource)
	invs := make(map[string]ocl.Expr, len(m.Behavioral.States))
	for _, s := range m.Behavioral.States {
		inv, err := ocl.Parse(s.Invariant)
		if err != nil {
			return nil, fmt.Errorf("contract: state %s invariant: %w", s.Name, err)
		}
		if err := ocl.CheckNoPre(inv); err != nil {
			return nil, fmt.Errorf("contract: state %s invariant: %w", s.Name, err)
		}
		if err := ocl.CheckVocabulary(inv, vocab); err != nil {
			return nil, fmt.Errorf("contract: state %s invariant: %w", s.Name, err)
		}
		invs[s.Name] = inv
	}

	uris := m.Resource.URIs()
	set := &Set{Model: m}
	for _, tr := range m.Behavioral.Triggers() {
		transitions := m.Behavioral.TransitionsFor(tr)
		c := &Contract{Trigger: tr, URI: uris[tr.Resource]}
		secSet := make(map[string]bool)
		pres := make([]ocl.Expr, 0, len(transitions))
		posts := make([]ocl.Expr, 0, len(transitions))
		for _, t := range transitions {
			guard, err := ocl.Parse(t.Guard)
			if err != nil {
				return nil, fmt.Errorf("contract: %s guard: %w", tr, err)
			}
			if err := ocl.CheckNoPre(guard); err != nil {
				return nil, fmt.Errorf("contract: %s guard: %w", tr, err)
			}
			if err := ocl.CheckVocabulary(guard, vocab); err != nil {
				return nil, fmt.Errorf("contract: %s guard: %w", tr, err)
			}
			effect, err := ocl.Parse(t.Effect)
			if err != nil {
				return nil, fmt.Errorf("contract: %s effect: %w", tr, err)
			}
			if err := ocl.CheckVocabulary(effect, vocab); err != nil {
				return nil, fmt.Errorf("contract: %s effect: %w", tr, err)
			}
			casePre := conj(invs[t.From], guard)
			casePost := conj(invs[t.To], effect)
			c.Cases = append(c.Cases, Case{
				Transition: t,
				Pre:        casePre,
				Post:       casePost,
				Guard:      guard,
				Effect:     effect,
			})
			pres = append(pres, casePre)
			// The antecedent refers to the state before the call: wrap it
			// in pre() so evaluation reads the snapshot.
			posts = append(posts, ocl.Implies(&ocl.PreExpr{Expr: casePre}, casePost))
			for _, s := range t.SecReqs {
				secSet[s] = true
			}
		}
		c.Pre = ocl.Or(pres...)
		c.Post = ocl.And(posts...)
		for s := range secSet {
			c.SecReqs = append(c.SecReqs, s)
		}
		sort.Strings(c.SecReqs)
		c.statePaths = computeStatePaths(c)
		c.plan = compilePlan(c)
		set.Contracts = append(set.Contracts, c)
	}
	return set, nil
}

// conj conjoins two expressions, dropping literal-true sides so rendered
// contracts stay readable.
func conj(a, b ocl.Expr) ocl.Expr {
	if isTrue(a) {
		return b
	}
	if isTrue(b) {
		return a
	}
	return &ocl.Binary{Op: ocl.OpAnd, L: a, R: b}
}

func isTrue(e ocl.Expr) bool {
	l, ok := e.(*ocl.Lit)
	return ok && l.Value.Kind == ocl.KindBool && l.Value.Bool
}

// VocabularyOf builds the navigation vocabulary from the resource model:
// a path head must be a declared resource (its second segment, when the
// resource is known, must be one of its attributes or outgoing association
// roles) or the `user` authorization context, which the monitor populates
// from the requester's credentials. The static analyzer (package analysis)
// shares this definition so modelvet and the generator agree on what a
// well-formed path is.
func VocabularyOf(rm *uml.ResourceModel) ocl.VocabularyFunc {
	type resourceVocab struct {
		segments map[string]bool
	}
	resources := make(map[string]resourceVocab, len(rm.Resources))
	for _, r := range rm.Resources {
		v := resourceVocab{segments: make(map[string]bool)}
		for _, a := range r.Attributes {
			v.segments[a.Name] = true
		}
		for _, assoc := range rm.AssociationsFrom(r.Name) {
			v.segments[assoc.Role] = true
		}
		resources[r.Name] = v
	}
	return func(path []string) bool {
		if len(path) == 0 {
			return false
		}
		if path[0] == "user" {
			return true
		}
		v, ok := resources[path[0]]
		if !ok {
			return false
		}
		if len(path) == 1 {
			return true
		}
		return v.segments[path[1]]
	}
}

// ListingStyle selects how RenderListing joins the post-condition cases.
type ListingStyle int

// Listing styles.
const (
	// StyleConjunction joins post implications with "and" (the semantics
	// the paper's prose defines, and what the monitor evaluates).
	StyleConjunction ListingStyle = iota + 1
	// StylePaper joins post implications with "or", reproducing the exact
	// spelling of the paper's Listing 1.
	StylePaper
)

// RenderListing renders the contract in the format of the paper's
// Listing 1:
//
//	PreCondition(DELETE(/projects/{project_id}/volumes/{volume_id})):
//	[(case1) or
//	(case2) or
//	(case3)]
//	PostCondition(...):
//	[((case1) => post1) and ...]
func RenderListing(c *Contract, style ListingStyle) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "PreCondition(%s(%s)):\n[", c.Trigger.Method, c.URI)
	for i, cs := range c.Cases {
		if i > 0 {
			sb.WriteString(" or\n")
		}
		fmt.Fprintf(&sb, "(%s)", cs.Pre)
	}
	sb.WriteString("]\n")
	joiner := " and\n"
	if style == StylePaper {
		joiner = " or\n"
	}
	fmt.Fprintf(&sb, "PostCondition(%s(%s)):\n[", c.Trigger.Method, c.URI)
	for i, cs := range c.Cases {
		if i > 0 {
			sb.WriteString(joiner)
		}
		fmt.Fprintf(&sb, "((%s) => %s)", cs.Pre, cs.Post)
	}
	sb.WriteString("]\n")
	return sb.String()
}

// RenderSet renders every contract in the set in Listing-1 format,
// separated by blank lines.
func RenderSet(s *Set, style ListingStyle) string {
	parts := make([]string, 0, len(s.Contracts))
	for _, c := range s.Contracts {
		parts = append(parts, RenderListing(c, style))
	}
	return strings.Join(parts, "\n")
}
