// Evaluation plans: the compiled, demand-driven form of a contract.
//
// Eager checking snapshots the union of every path a contract could ever
// mention — twice per request. The plan decomposes the contract back into
// the clauses Generate built it from (pre(m)'s disjuncts, post(m)'s
// per-transition implications), records exactly which state paths each
// clause reads and in which context (current vs pre-state), and orders the
// pre-clauses cheapest-first so that evaluation fetches as little of the
// cloud as a verdict actually needs.
package contract

import (
	"sort"

	"cloudmon/internal/ocl"
)

// PreClause is one disjunct of pre(m): inv(source) and guard for a single
// transition. All its paths read the current state (guards and invariants
// cannot use pre()).
type PreClause struct {
	// Index is the clause's position in Contract.Cases (model order).
	Index int
	// Paths are the distinct current-state paths the disjunct reads, in
	// first-use order.
	Paths []string
	// Added are the paths this clause needs beyond everything earlier
	// clauses in plan order already fetched — the clause's marginal fetch
	// cost when the plan runs front to back.
	Added []string
	// Cost is the static size of the disjunct (AST node count), the
	// tie-breaker for ordering clauses with equal path demands.
	Cost int
}

// PostClause is one conjunct of post(m): casePre implies
// (inv(target) and effect) for a single transition. Post-clauses stay in
// model order — the antecedent's truth is already known from the pre-check,
// so ordering buys nothing and model order keeps attribution stable.
type PostClause struct {
	// Index is the clause's position in Contract.Cases.
	Index int
	// CurPaths are the consequent's current-state paths — what the
	// post-check must observe after the call for this clause.
	CurPaths []string
	// PrePaths are the consequent's pre()/@pre references — the pre-state
	// paths the post-check reads beyond what the antecedent already
	// demanded. They must be captured before forwarding (they are
	// unobservable afterwards); the antecedent itself is not re-evaluated
	// at post time, its pre-phase verdict is reused.
	PrePaths []string
	// Touched are the current-state paths of the transition's effect —
	// the frame of what the transition may change. Post-state values of
	// paths outside every active clause's frame can be reused from the
	// pre-state snapshot instead of re-fetched.
	Touched []string
	// Cost is the static size of the full implication.
	Cost int
}

// Plan is a contract compiled for demand-driven evaluation.
type Plan struct {
	// Pre holds the pre-condition disjuncts ordered cheapest-first:
	// ascending by number of paths, then static cost, then model order.
	Pre []PreClause
	// Post holds the post-condition implications in model order.
	Post []PostClause
	// PrePaths is the union of all pre-clause paths in plan order — equal
	// as a set to the paths the eager pre-snapshot fetches.
	PrePaths []string
	// EagerPaths is StatePaths(): what the eager engine fetches for each
	// of its two snapshots. Kept on the plan so observers can compare.
	EagerPaths []string
	// Facts is the statically proven clause knowledge (see facts.go).
	// The plan's clause lists above stay fact-neutral — a contract is
	// shared by monitors with facts on and off — so every pruning
	// decision is the runtime's, guided by this artifact.
	Facts *Facts
	// Compiled is the closure-chain evaluator set (see compile.go):
	// every clause translated once into slot-model programs, compiled
	// from the facts' folded forms. The compiled engine shares the lazy
	// engine's workflow and swaps only the per-node evaluation.
	Compiled *Compiled
}

// Plan returns the contract's compiled evaluation plan. For contracts built
// by Generate the plan is precomputed; callers must not mutate it.
func (c *Contract) Plan() *Plan {
	if c.plan == nil {
		c.plan = compilePlan(c)
	}
	return c.plan
}

// compilePlan decomposes the contract into per-clause path demands.
func compilePlan(c *Contract) *Plan {
	p := &Plan{EagerPaths: c.StatePaths()}
	for i, cs := range c.Cases {
		cur, _ := ocl.ContextPaths(cs.Pre)
		p.Pre = append(p.Pre, PreClause{
			Index: i,
			Paths: cur,
			Cost:  ocl.StaticCost(cs.Pre),
		})
	}
	sort.SliceStable(p.Pre, func(a, b int) bool {
		pa, pb := p.Pre[a], p.Pre[b]
		if len(pa.Paths) != len(pb.Paths) {
			return len(pa.Paths) < len(pb.Paths)
		}
		if pa.Cost != pb.Cost {
			return pa.Cost < pb.Cost
		}
		return pa.Index < pb.Index
	})
	fetched := make(map[string]bool)
	for i := range p.Pre {
		for _, path := range p.Pre[i].Paths {
			if !fetched[path] {
				fetched[path] = true
				p.Pre[i].Added = append(p.Pre[i].Added, path)
				p.PrePaths = append(p.PrePaths, path)
			}
		}
	}
	for i, cs := range c.Cases {
		// Only the consequent runs at post time — the antecedent's verdict
		// is carried over from the pre-check, so its paths never need a
		// post-state (or top-up) fetch.
		cur, pre := ocl.ContextPaths(cs.Post)
		touched, _ := ocl.ContextPaths(cs.Effect)
		p.Post = append(p.Post, PostClause{
			Index:    i,
			CurPaths: cur,
			PrePaths: pre,
			Touched:  touched,
			Cost:     ocl.StaticCost(cs.Post),
		})
	}
	p.Facts = computeFacts(c, p)
	p.Compiled = compileContract(c, p)
	return p
}
