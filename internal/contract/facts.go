// Facts: the statically proven clause knowledge a plan carries.
//
// Everything in a generated contract is derived from the model, so a
// whole class of per-request work is decidable offline. The symbolic
// interpreter (internal/analysis/symbolic) proves three families of
// facts at plan-compile time:
//
//   - static clauses: a disjunct (or an implication antecedent) whose
//     folded form decides to the same value for every state — the
//     monitor assigns the value without evaluating or fetching;
//   - exclusions: a disjunct containing an element refuted by an
//     already-true sibling — the monitor evaluates just that witness
//     element and, when it observes definite false, skips the rest of
//     the disjunct (soundness argument in DESIGN.md §3.5: every element
//     before the witness is proven error-free or is shared with the
//     true sibling, and the witness itself is confirmed at runtime);
//   - dead paths: state paths no clause can demand once static clauses
//     are pruned — they drop out of the plan's fetch universe.
//
// Every fact carries a human-readable reason trace, and the monitor's
// FactsDebug mode re-derives each skipped value the slow way and counts
// mismatches, so an unsound fact cannot hide.
package contract

import (
	"fmt"

	"cloudmon/internal/analysis/symbolic"
	"cloudmon/internal/ocl"
)

// PreFact is what the symbolic pass proved about one pre-condition
// disjunct (indexed like Contract.Cases).
type PreFact struct {
	// Folded is the disjunct with environment-independent subexpressions
	// constant-folded. Evaluating it is value- and error-equivalent to
	// evaluating the original for every state; the lazy engine evaluates
	// this form.
	Folded ocl.Expr
	// Rewritten marks that folding changed the rendered formula.
	Rewritten bool
	// Static, when non-nil, is the value the disjunct evaluates to in
	// every state — the monitor assigns it without evaluation.
	Static *ocl.Value
	// SubsumedBy lists sibling disjuncts this disjunct entails (model
	// indexes): whenever this one holds, so do they. Diagnostic only
	// (MV702) — entailment is proven under idealized types, so the
	// runtime never acts on it without observation.
	SubsumedBy []int
	// Reason is the fact's trace ("why is this sound"), empty when the
	// pass proved nothing beyond the fold.
	Reason string
}

// Exclusion is a witness-based skip for one disjunct: once the provider
// disjunct is definitely true, evaluating just the witness element and
// observing definite false decides the whole disjunct false.
type Exclusion struct {
	// Provider is the case index whose runtime-true verdict arms this
	// exclusion.
	Provider int
	// Witness is the refuted element the monitor must still evaluate;
	// only a definite-false observation licenses the skip.
	Witness ocl.Expr
	// WitnessPos is the witness's position in the disjunct's element
	// list; Elements is the list's length (what the skip saves).
	WitnessPos, Elements int
	// Reason is the fact's trace.
	Reason string
}

// PostFact is what the symbolic pass proved about one post-condition
// implication (indexed like Contract.Cases).
type PostFact struct {
	// Folded is the constant-folded consequent, evaluation-equivalent to
	// the original.
	Folded ocl.Expr
	// Rewritten marks that folding changed the rendered formula.
	Rewritten bool
	// AnteStatic mirrors the antecedent's PreFact.Static: when it is the
	// boolean false, the implication holds vacuously in every state and
	// the consequent (with its pre-state top-up fetches) is never
	// touched.
	AnteStatic *ocl.Value
	// Reason is the fact's trace, empty when nothing was proven.
	Reason string
}

// Vacuous reports that the implication's antecedent is statically false:
// the implication holds in every state and the consequent — with its
// pre-state top-up fetches — is never run.
func (pf *PostFact) Vacuous() bool {
	return pf.AnteStatic != nil && pf.AnteStatic.Kind == ocl.KindBool && !pf.AnteStatic.Bool
}

// DeadPath is a state path no clause can demand under the facts.
type DeadPath struct {
	Path   string
	Reason string
}

// Facts is the per-plan artifact of the symbolic pass. All slices are
// indexed by case (model order); Exclusions[j] lists the skips available
// for disjunct j, in provider order.
type Facts struct {
	Pre        []PreFact
	Exclusions [][]Exclusion
	Post       []PostFact
	DeadPaths  []DeadPath
}

// computeFacts runs the symbolic interpreter over the contract's cases.
func computeFacts(c *Contract, p *Plan) *Facts {
	f := &Facts{
		Pre:        make([]PreFact, len(c.Cases)),
		Exclusions: make([][]Exclusion, len(c.Cases)),
		Post:       make([]PostFact, len(c.Cases)),
	}
	elements := make([][]ocl.Expr, len(c.Cases))
	for i, cs := range c.Cases {
		folded := symbolic.Fold(cs.Pre)
		pf := PreFact{Folded: folded, Rewritten: folded.String() != cs.Pre.String()}
		if v, reason := staticValue(folded); v != nil {
			pf.Static = v
			pf.Reason = "pre-condition disjunct " + reason
		}
		f.Pre[i] = pf
		elements[i] = symbolic.Elements(folded)
	}
	// Witness exclusions between every ordered pair of disjuncts. The
	// provider must become definitely true at runtime before the skip
	// arms, so both orders are kept — plan order decides which fires.
	for i := range c.Cases {
		provSet := make(map[string]bool, len(elements[i]))
		var provAtoms []symbolic.Atom
		for _, el := range elements[i] {
			provSet[el.String()] = true
			if a, ok := symbolic.AtomOf(el); ok {
				provAtoms = append(provAtoms, a)
			}
		}
		for j := range c.Cases {
			if i == j || f.Pre[j].Static != nil {
				continue
			}
			if ex, ok := findExclusion(i, elements[j], provSet, provAtoms); ok {
				f.Exclusions[j] = append(f.Exclusions[j], ex)
			}
		}
	}
	// Subsumption (diagnostics): j entails i when every element of i is
	// covered by an element of j.
	for j := range c.Cases {
		for i := range c.Cases {
			if i != j && entailsAll(elements[j], elements[i]) {
				f.Pre[j].SubsumedBy = append(f.Pre[j].SubsumedBy, i)
			}
		}
	}
	for i, cs := range c.Cases {
		folded := symbolic.Fold(cs.Post)
		pf := PostFact{Folded: folded, Rewritten: folded.String() != cs.Post.String()}
		if s := f.Pre[i].Static; s != nil {
			pf.AnteStatic = s
			if s.Kind == ocl.KindBool && !s.Bool {
				pf.Reason = "antecedent is statically false: implication holds vacuously, consequent and its fetches are skipped"
			} else {
				pf.Reason = fmt.Sprintf("antecedent is statically %s", *s)
			}
		}
		f.Post[i] = pf
	}
	f.DeadPaths = deadPaths(f, p)
	return f
}

// staticValue reports the environment-independent value of a folded
// clause, if the decision procedure proves one.
func staticValue(folded ocl.Expr) (*ocl.Value, string) {
	if l, ok := folded.(*ocl.Lit); ok {
		v := l.Value
		return &v, fmt.Sprintf("folds to %s for every state", v)
	}
	var v ocl.Value
	switch symbolic.Decide(folded) {
	case symbolic.True:
		v = ocl.BoolVal(true)
	case symbolic.False:
		v = ocl.BoolVal(false)
	case symbolic.Undef:
		v = ocl.Undefined()
	default:
		return nil, ""
	}
	return &v, fmt.Sprintf("decides to %s for every state", v)
}

// findExclusion scans the target disjunct's elements in evaluation order
// for a witness refuted by the provider. The scan may only walk past
// elements that are error-free in every state or literally shared with
// the (runtime-true, hence error-free here) provider — otherwise skipping
// them could hide an evaluation error the eager engine surfaces.
func findExclusion(provider int, target []ocl.Expr, provSet map[string]bool, provAtoms []symbolic.Atom) (Exclusion, bool) {
	for m, el := range target {
		if a, ok := symbolic.AtomOf(el); ok {
			for _, pa := range provAtoms {
				if pa.Refutes(a) {
					return Exclusion{
						Provider:   provider,
						Witness:    el,
						WitnessPos: m,
						Elements:   len(target),
						Reason: fmt.Sprintf(
							"element %d %q contradicts %q of disjunct %d; elements before it are error-free or shared with that disjunct",
							m, el, renderAtom(pa), provider),
					}, true
				}
			}
		}
		if !symbolic.NeverErrors(el) && !provSet[el.String()] {
			return Exclusion{}, false
		}
	}
	return Exclusion{}, false
}

// renderAtom shows an atom in the reason trace.
func renderAtom(a symbolic.Atom) string {
	if a.Pair {
		return fmt.Sprintf("%s %s %s", a.Subject, a.Op, a.Other)
	}
	return fmt.Sprintf("%s %s %d", a.Subject, a.Op, a.Const)
}

// entailsAll reports whether every element of sup is covered by an
// element of sub — syntactically identical or atom-entailed — i.e.
// sub => sup under the idealized reading.
func entailsAll(sub, sup []ocl.Expr) bool {
	subSet := make(map[string]bool, len(sub))
	var subAtoms []symbolic.Atom
	for _, el := range sub {
		subSet[el.String()] = true
		if a, ok := symbolic.AtomOf(el); ok {
			subAtoms = append(subAtoms, a)
		}
	}
	for _, el := range sup {
		if subSet[el.String()] {
			continue
		}
		a, ok := symbolic.AtomOf(el)
		if !ok {
			return false
		}
		covered := false
		for _, sa := range subAtoms {
			if sa.Entails(a) {
				covered = true
				break
			}
		}
		if !covered {
			return false
		}
	}
	return true
}

// Check machine-verifies the artifact against its contract: indexes in
// range, witnesses genuinely elements of their disjunct at the recorded
// position, every element before a witness error-free or shared with the
// provider, static values re-derivable, and dead paths absent from every
// live clause. It re-derives each condition independently of
// computeFacts's scan order, so a bug in fact construction fails loudly;
// tests and the modelvet -facts report run it over every model.
func (f *Facts) Check(c *Contract) error {
	if len(f.Pre) != len(c.Cases) || len(f.Post) != len(c.Cases) || len(f.Exclusions) != len(c.Cases) {
		return fmt.Errorf("facts: slice lengths disagree with %d cases", len(c.Cases))
	}
	for i, pf := range f.Pre {
		if pf.Static != nil {
			v, reason := staticValue(pf.Folded)
			if v == nil || !v.Equal(*pf.Static) {
				return fmt.Errorf("facts: case %d static value %s not re-derivable (%s)", i, pf.Static, reason)
			}
		}
		for _, ex := range f.Exclusions[i] {
			if ex.Provider < 0 || ex.Provider >= len(c.Cases) || ex.Provider == i {
				return fmt.Errorf("facts: case %d exclusion has bad provider %d", i, ex.Provider)
			}
			elems := symbolic.Elements(pf.Folded)
			if ex.Elements != len(elems) || ex.WitnessPos < 0 || ex.WitnessPos >= len(elems) {
				return fmt.Errorf("facts: case %d exclusion positions out of range", i)
			}
			if elems[ex.WitnessPos].String() != ex.Witness.String() {
				return fmt.Errorf("facts: case %d witness %q is not element %d", i, ex.Witness, ex.WitnessPos)
			}
			provSet := make(map[string]bool)
			for _, el := range symbolic.Elements(f.Pre[ex.Provider].Folded) {
				provSet[el.String()] = true
			}
			for _, el := range elems[:ex.WitnessPos] {
				if !symbolic.NeverErrors(el) && !provSet[el.String()] {
					return fmt.Errorf("facts: case %d element %q before witness may error and is not shared with provider %d",
						i, el, ex.Provider)
				}
			}
		}
	}
	demandable := make(map[string]bool)
	for i := range f.Pre {
		if f.Pre[i].Static == nil {
			for _, p := range ocl.NavPaths(f.Pre[i].Folded) {
				demandable[p] = true
			}
		}
		if !f.Post[i].Vacuous() {
			for _, p := range ocl.NavPaths(f.Post[i].Folded) {
				demandable[p] = true
			}
		}
	}
	for _, d := range f.DeadPaths {
		if demandable[d.Path] {
			return fmt.Errorf("facts: dead path %s is demandable", d.Path)
		}
	}
	return nil
}

// deadPaths lists the plan's eager paths that no clause can demand once
// static clauses are pruned.
func deadPaths(f *Facts, p *Plan) []DeadPath {
	demand := make(map[string]bool)
	for i := range f.Pre {
		if f.Pre[i].Static == nil {
			for _, path := range ocl.NavPaths(f.Pre[i].Folded) {
				demand[path] = true
			}
		}
	}
	for i := range f.Post {
		if f.Post[i].Vacuous() {
			continue // consequent never evaluated
		}
		for _, path := range ocl.NavPaths(f.Post[i].Folded) {
			demand[path] = true
		}
	}
	// The universe is the union of every clause's declared paths (not
	// EagerPaths, which is only populated for Generate-built contracts).
	var universe []string
	seen := make(map[string]bool)
	add := func(paths []string) {
		for _, path := range paths {
			if !seen[path] {
				seen[path] = true
				universe = append(universe, path)
			}
		}
	}
	add(p.PrePaths)
	for i := range p.Post {
		add(p.Post[i].CurPaths)
		add(p.Post[i].PrePaths)
	}
	var dead []DeadPath
	for _, path := range universe {
		if !demand[path] {
			dead = append(dead, DeadPath{
				Path:   path,
				Reason: "every clause reading it is statically decided; no evaluation can demand it",
			})
		}
	}
	return dead
}
