package contract

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"cloudmon/internal/uml"
)

// This file implements contract diffing — the release-to-release check the
// paper's conclusion motivates: "Since open source cloud frameworks
// usually undergo frequent changes, the automated nature of our approach
// allows the developers to relatively easily check whether functional and
// security requirements have been preserved in new releases." Diffing the
// contract sets generated from two model versions reports exactly which
// methods' obligations drifted.

// ChangeKind classifies one contract change.
type ChangeKind int

// Change kinds.
const (
	// MethodAdded: the new model introduces a method the old one lacked.
	MethodAdded ChangeKind = iota + 1
	// MethodRemoved: a previously specified method disappeared.
	MethodRemoved
	// PreChanged: the combined pre-condition differs.
	PreChanged
	// PostChanged: the combined post-condition differs.
	PostChanged
	// SecReqsChanged: the traced security requirements differ.
	SecReqsChanged
	// URIChanged: the resource moved in the URI space.
	URIChanged
)

// String returns the kind name.
func (k ChangeKind) String() string {
	switch k {
	case MethodAdded:
		return "method-added"
	case MethodRemoved:
		return "method-removed"
	case PreChanged:
		return "pre-changed"
	case PostChanged:
		return "post-changed"
	case SecReqsChanged:
		return "secreqs-changed"
	case URIChanged:
		return "uri-changed"
	}
	return fmt.Sprintf("ChangeKind(%d)", int(k))
}

// Change is one detected difference between contract sets.
type Change struct {
	Trigger uml.Trigger
	Kind    ChangeKind
	// Old and New carry the differing renderings (empty when not
	// applicable, e.g. for added/removed methods).
	Old, New string
}

// Diff is the full comparison result.
type Diff struct {
	Changes []Change
}

// Empty reports whether the two sets agree — the requirements were
// preserved.
func (d *Diff) Empty() bool { return len(d.Changes) == 0 }

// ForTrigger returns the changes affecting one trigger.
func (d *Diff) ForTrigger(tr uml.Trigger) []Change {
	var out []Change
	for _, c := range d.Changes {
		if c.Trigger == tr {
			out = append(out, c)
		}
	}
	return out
}

// DiffSets compares two generated contract sets (typically: the previous
// release's model vs. the current one). Formulas are compared by their
// canonical printed form, so semantically identical rewrites that print
// identically do not alarm.
func DiffSets(old, new *Set) *Diff {
	d := &Diff{}
	seen := make(map[uml.Trigger]bool)
	for _, oc := range old.Contracts {
		seen[oc.Trigger] = true
		nc, ok := new.For(oc.Trigger)
		if !ok {
			d.Changes = append(d.Changes, Change{
				Trigger: oc.Trigger, Kind: MethodRemoved,
				Old: RenderListing(oc, StyleConjunction),
			})
			continue
		}
		if oc.URI != nc.URI {
			d.Changes = append(d.Changes, Change{
				Trigger: oc.Trigger, Kind: URIChanged, Old: oc.URI, New: nc.URI,
			})
		}
		if oldPre, newPre := oc.Pre.String(), nc.Pre.String(); oldPre != newPre {
			d.Changes = append(d.Changes, Change{
				Trigger: oc.Trigger, Kind: PreChanged, Old: oldPre, New: newPre,
			})
		}
		if oldPost, newPost := oc.Post.String(), nc.Post.String(); oldPost != newPost {
			d.Changes = append(d.Changes, Change{
				Trigger: oc.Trigger, Kind: PostChanged, Old: oldPost, New: newPost,
			})
		}
		if oldReqs, newReqs := strings.Join(oc.SecReqs, ","), strings.Join(nc.SecReqs, ","); oldReqs != newReqs {
			d.Changes = append(d.Changes, Change{
				Trigger: oc.Trigger, Kind: SecReqsChanged, Old: oldReqs, New: newReqs,
			})
		}
	}
	for _, nc := range new.Contracts {
		if !seen[nc.Trigger] {
			d.Changes = append(d.Changes, Change{
				Trigger: nc.Trigger, Kind: MethodAdded,
				New: RenderListing(nc, StyleConjunction),
			})
		}
	}
	sort.SliceStable(d.Changes, func(i, j int) bool {
		ti, tj := d.Changes[i].Trigger, d.Changes[j].Trigger
		if ti.Resource != tj.Resource {
			return ti.Resource < tj.Resource
		}
		if ti.Method != tj.Method {
			return ti.Method < tj.Method
		}
		return d.Changes[i].Kind < d.Changes[j].Kind
	})
	return d
}

// Format renders the diff as a review report.
func (d *Diff) Format(w io.Writer) {
	if d.Empty() {
		fmt.Fprintln(w, "contracts unchanged: functional and security requirements preserved")
		return
	}
	fmt.Fprintf(w, "%d contract change(s) detected:\n", len(d.Changes))
	for _, c := range d.Changes {
		fmt.Fprintf(w, "\n* %s — %s\n", c.Trigger, c.Kind)
		switch c.Kind {
		case MethodAdded:
			fmt.Fprintf(w, "  new contract:\n%s", indent(c.New, "    "))
		case MethodRemoved:
			fmt.Fprintf(w, "  removed contract:\n%s", indent(c.Old, "    "))
		default:
			fmt.Fprintf(w, "  old: %s\n  new: %s\n", c.Old, c.New)
		}
	}
}

func indent(s, prefix string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i, l := range lines {
		lines[i] = prefix + l
	}
	return strings.Join(lines, "\n") + "\n"
}
