package contract

import (
	"strings"
	"testing"

	"cloudmon/internal/ocl"
	"cloudmon/internal/paper"
	"cloudmon/internal/uml"
)

func generate(t *testing.T) *Set {
	t.Helper()
	set, err := Generate(paper.CinderModel())
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return set
}

func TestGenerateProducesContractPerTrigger(t *testing.T) {
	set := generate(t)
	if len(set.Contracts) != 4 {
		t.Fatalf("contracts = %d, want 4 (GET/PUT/POST/DELETE on volume)", len(set.Contracts))
	}
	for _, m := range []uml.HTTPMethod{uml.GET, uml.PUT, uml.POST, uml.DELETE} {
		if _, ok := set.For(uml.Trigger{Method: m, Resource: "volume"}); !ok {
			t.Errorf("no contract for %s(volume)", m)
		}
	}
}

func TestDeleteContractShape(t *testing.T) {
	// Section V / Listing 1: DELETE(volume) combines three transitions.
	set := generate(t)
	c, ok := set.For(uml.Trigger{Method: uml.DELETE, Resource: "volume"})
	if !ok {
		t.Fatal("no DELETE contract")
	}
	if len(c.Cases) != 3 {
		t.Fatalf("DELETE cases = %d, want 3", len(c.Cases))
	}
	// Pre is a 3-way disjunction.
	pre, ok := c.Pre.(*ocl.Binary)
	if !ok || pre.Op != ocl.OpOr {
		t.Fatalf("Pre is not a disjunction: %s", c.Pre)
	}
	// Post is a conjunction of implications over pre-state antecedents.
	if !ocl.UsesPre(c.Post) {
		t.Error("Post must reference the pre-state")
	}
	if ocl.UsesPre(c.Pre) {
		t.Error("Pre must not reference the pre-state")
	}
	if len(c.SecReqs) != 1 || c.SecReqs[0] != "1.4" {
		t.Errorf("DELETE SecReqs = %v, want [1.4]", c.SecReqs)
	}
	if c.URI != "/projects/{project_id}/volumes/{volume_id}" {
		t.Errorf("DELETE URI = %q", c.URI)
	}
}

func TestDeletePreSemantics(t *testing.T) {
	set := generate(t)
	c, _ := set.For(uml.Trigger{Method: uml.DELETE, Resource: "volume"})

	mkEnv := func(vols, quota int, status string, roles ...string) ocl.MapEnv {
		elems := make([]ocl.Value, vols)
		for i := range elems {
			elems[i] = ocl.StringVal("v")
		}
		return ocl.MapEnv{
			"project.id":        ocl.StringVal("p1"),
			"project.volumes":   ocl.CollectionVal(elems...),
			"quota_sets.volume": ocl.IntVal(quota),
			"volume.status":     ocl.StringVal(status),
			"user.id.groups":    ocl.StringsVal(roles...),
		}
	}
	tests := []struct {
		name string
		env  ocl.MapEnv
		want bool
	}{
		{"admin deletes available volume", mkEnv(1, 10, "available", "admin"), true},
		{"admin deletes from full quota", mkEnv(3, 3, "available", "admin"), true},
		{"member cannot delete", mkEnv(1, 10, "available", "member"), false},
		{"user cannot delete", mkEnv(1, 10, "available", "user"), false},
		{"in-use volume cannot be deleted", mkEnv(1, 10, "in-use", "admin"), false},
		{"no volume to delete", mkEnv(0, 10, "available", "admin"), false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := ocl.EvalBool(c.Pre, ocl.Context{Cur: tt.env})
			if err != nil {
				t.Fatal(err)
			}
			if got != tt.want {
				t.Errorf("pre = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestDeletePostSemantics(t *testing.T) {
	set := generate(t)
	c, _ := set.For(uml.Trigger{Method: uml.DELETE, Resource: "volume"})

	mkEnv := func(vols int) ocl.MapEnv {
		elems := make([]ocl.Value, vols)
		for i := range elems {
			elems[i] = ocl.StringVal("v")
		}
		return ocl.MapEnv{
			"project.id":        ocl.StringVal("p1"),
			"project.volumes":   ocl.CollectionVal(elems...),
			"quota_sets.volume": ocl.IntVal(3),
			"volume.status":     ocl.StringVal("available"),
			"user.id.groups":    ocl.StringsVal("admin"),
		}
	}
	// Correct behaviour: 2 volumes -> 1 volume.
	okPost, err := ocl.EvalBool(c.Post, ocl.Context{Cur: mkEnv(1), Pre: mkEnv(2)})
	if err != nil {
		t.Fatal(err)
	}
	if !okPost {
		t.Error("post should hold when a volume was removed")
	}
	// Faulty behaviour: nothing was removed.
	badPost, err := ocl.EvalBool(c.Post, ocl.Context{Cur: mkEnv(2), Pre: mkEnv(2)})
	if err != nil {
		t.Fatal(err)
	}
	if badPost {
		t.Error("post should fail when the volume was not removed")
	}
}

func TestPostContractQuota(t *testing.T) {
	set := generate(t)
	c, _ := set.For(uml.Trigger{Method: uml.POST, Resource: "volume"})
	if len(c.Cases) != 4 {
		t.Fatalf("POST cases = %d, want 4", len(c.Cases))
	}
	mkEnv := func(vols, quota int, roles ...string) ocl.MapEnv {
		elems := make([]ocl.Value, vols)
		for i := range elems {
			elems[i] = ocl.StringVal("v")
		}
		return ocl.MapEnv{
			"project.id":        ocl.StringVal("p1"),
			"project.volumes":   ocl.CollectionVal(elems...),
			"quota_sets.volume": ocl.IntVal(quota),
			"volume.status":     ocl.StringVal("available"),
			"user.id.groups":    ocl.StringsVal(roles...),
		}
	}
	tests := []struct {
		name string
		env  ocl.MapEnv
		want bool
	}{
		{"member creates first volume", mkEnv(0, 10, "member"), true},
		{"admin creates under quota", mkEnv(2, 10, "admin"), true},
		{"quota full blocks create", mkEnv(3, 3, "admin"), false},
		{"plain user cannot create", mkEnv(0, 10, "user"), false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := ocl.EvalBool(c.Pre, ocl.Context{Cur: tt.env})
			if err != nil {
				t.Fatal(err)
			}
			if got != tt.want {
				t.Errorf("pre = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestStatePaths(t *testing.T) {
	set := generate(t)
	c, _ := set.For(uml.Trigger{Method: uml.DELETE, Resource: "volume"})
	paths := c.StatePaths()
	want := map[string]bool{
		"project.id":        true,
		"project.volumes":   true,
		"quota_sets.volume": true,
		"volume.status":     true,
		"user.id.groups":    true,
	}
	if len(paths) != len(want) {
		t.Fatalf("StatePaths = %v", paths)
	}
	for _, p := range paths {
		if !want[p] {
			t.Errorf("unexpected path %q", p)
		}
	}
}

func TestRenderListing(t *testing.T) {
	set := generate(t)
	c, _ := set.For(uml.Trigger{Method: uml.DELETE, Resource: "volume"})
	out := RenderListing(c, StyleConjunction)
	for _, want := range []string{
		"PreCondition(DELETE(/projects/{project_id}/volumes/{volume_id})):",
		"PostCondition(DELETE(/projects/{project_id}/volumes/{volume_id})):",
		"volume.status <> 'in-use'",
		"user.id.groups = 'admin'",
		" or\n",
		" => ",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("listing missing %q:\n%s", want, out)
		}
	}
	paperStyle := RenderListing(c, StylePaper)
	if strings.Count(paperStyle, ") or\n((") < 2 {
		t.Errorf("paper style should join posts with or:\n%s", paperStyle)
	}
	// Round-trip: each rendered case must re-parse.
	for _, cs := range c.Cases {
		if _, err := ocl.Parse(cs.Pre.String()); err != nil {
			t.Errorf("case pre does not re-parse: %v", err)
		}
		if _, err := ocl.Parse(cs.Post.String()); err != nil {
			t.Errorf("case post does not re-parse: %v", err)
		}
	}
}

func TestRenderSet(t *testing.T) {
	set := generate(t)
	out := RenderSet(set, StyleConjunction)
	for _, m := range []string{"GET", "PUT", "POST", "DELETE"} {
		if !strings.Contains(out, "PreCondition("+m+"(") {
			t.Errorf("RenderSet missing %s contract", m)
		}
	}
}

func TestSetSecReqs(t *testing.T) {
	set := generate(t)
	got := set.SecReqs()
	want := []string{"1.1", "1.2", "1.3", "1.4"}
	if len(got) != len(want) {
		t.Fatalf("SecReqs = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SecReqs = %v, want %v", got, want)
		}
	}
}

func TestGenerateRejectsBadModels(t *testing.T) {
	base := func() *uml.Model { return paper.CinderModel() }

	t.Run("invalid model", func(t *testing.T) {
		m := base()
		m.Behavioral.States = nil
		if _, err := Generate(m); err == nil {
			t.Error("want error for empty state machine")
		}
	})
	t.Run("syntax error in guard", func(t *testing.T) {
		m := base()
		m.Behavioral.Transitions[0].Guard = "a and"
		if _, err := Generate(m); err == nil {
			t.Error("want error for malformed guard")
		}
	})
	t.Run("pre in guard", func(t *testing.T) {
		m := base()
		m.Behavioral.Transitions[0].Guard = "project.volumes->size() = pre(project.volumes->size())"
		if _, err := Generate(m); err == nil {
			t.Error("want error for pre() in guard")
		}
	})
	t.Run("pre in invariant", func(t *testing.T) {
		m := base()
		m.Behavioral.States[0].Invariant = "pre(project.id) = project.id"
		if _, err := Generate(m); err == nil {
			t.Error("want error for pre() in invariant")
		}
	})
	t.Run("unknown resource in guard", func(t *testing.T) {
		m := base()
		m.Behavioral.Transitions[0].Guard = "flavors.count > 1"
		if _, err := Generate(m); err == nil {
			t.Error("want error for unknown navigation head")
		}
	})
	t.Run("unknown attribute in guard", func(t *testing.T) {
		m := base()
		m.Behavioral.Transitions[0].Guard = "volume.colour = 'red'"
		if _, err := Generate(m); err == nil {
			t.Error("want error for unknown attribute")
		}
	})
	t.Run("syntax error in effect", func(t *testing.T) {
		m := base()
		m.Behavioral.Transitions[0].Effect = ")("
		if _, err := Generate(m); err == nil {
			t.Error("want error for malformed effect")
		}
	})
	t.Run("syntax error in invariant", func(t *testing.T) {
		m := base()
		m.Behavioral.States[0].Invariant = "(("
		if _, err := Generate(m); err == nil {
			t.Error("want error for malformed invariant")
		}
	})
}

func TestEmptyGuardMeansTrue(t *testing.T) {
	m := paper.CinderModel()
	// Strip one guard: the case pre-condition collapses to the source
	// invariant alone.
	m.Behavioral.Transitions[0].Guard = ""
	set, err := Generate(m)
	if err != nil {
		t.Fatal(err)
	}
	c, _ := set.For(uml.Trigger{Method: uml.POST, Resource: "volume"})
	if strings.Contains(c.Cases[0].Pre.String(), "true") {
		t.Errorf("true literal should be dropped from conjunction: %s", c.Cases[0].Pre)
	}
}
