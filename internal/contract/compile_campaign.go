// The compiler mutation campaign: differential adequacy evidence for the
// closure-chain compiler. Each seeded mutant (CompilerMutants) breaks one
// documented evaluator rule at compile time; the campaign evaluates a
// corpus of formulas — every clause of a generated contract set plus
// synthetic forms targeting each rule — under both the mutated compiler
// and the tree-walking reference, and declares the mutant killed on the
// first value or error divergence. A surviving mutant means the corpus
// (and therefore the differential test suite built from the same
// semantics) has a blind spot.
package contract

import (
	"fmt"
	"io"

	"cloudmon/internal/ocl"
)

// CompilerKill records one mutant's fate against the corpus.
type CompilerKill struct {
	// Mutant is the seeded fault's name.
	Mutant string `json:"mutant"`
	// Killed reports whether any corpus formula diverged.
	Killed bool `json:"killed"`
	// Witness is the first diverging formula, with the divergence shape.
	Witness string `json:"witness,omitempty"`
	// Trials is the number of (formula, environment) pairs evaluated.
	Trials int `json:"trials"`
}

// CompilerCampaignReport is the campaign's result set.
type CompilerCampaignReport struct {
	// Kills holds one entry per seeded mutant, in catalogue order.
	Kills []CompilerKill `json:"kills"`
	// Formulas is the corpus size.
	Formulas int `json:"formulas"`
}

// Killed counts killed mutants.
func (r *CompilerCampaignReport) Killed() int {
	n := 0
	for _, k := range r.Kills {
		if k.Killed {
			n++
		}
	}
	return n
}

// Score is the kill ratio in [0, 1].
func (r *CompilerCampaignReport) Score() float64 {
	if len(r.Kills) == 0 {
		return 0
	}
	return float64(r.Killed()) / float64(len(r.Kills))
}

// Format renders the kill matrix as a table.
func (r *CompilerCampaignReport) Format(w io.Writer) {
	fmt.Fprintf(w, "%-22s %-8s %s\n", "MUTANT", "KILLED", "WITNESS")
	for _, k := range r.Kills {
		status := "LIVE"
		if k.Killed {
			status = "killed"
		}
		fmt.Fprintf(w, "%-22s %-8s %s\n", k.Mutant, status, k.Witness)
	}
	fmt.Fprintf(w, "\nkill score: %d/%d (%.0f%%) over %d formulas\n",
		r.Killed(), len(r.Kills), 100*r.Score(), r.Formulas)
}

// campaignEnvs returns the characteristic states the corpus is evaluated
// under: a well-populated current state, a pre-state that differs on every
// shared path (so pre-as-cur cannot hide), and a sparse state that forces
// Undefined through every operator family.
func campaignEnvs() (cur, pre, sparse ocl.MapEnv) {
	cur = ocl.MapEnv{
		"project.id":        ocl.StringVal("p"),
		"project.volumes":   ocl.CollectionVal(ocl.StringVal("a"), ocl.StringVal("b")),
		"quota_sets.volume": ocl.IntVal(10),
		"volume.status":     ocl.StringVal("available"),
		"user.id.groups":    ocl.StringsVal("admin", "member"),
		"nums":              ocl.CollectionVal(ocl.IntVal(1), ocl.IntVal(2), ocl.IntVal(3)),
		"empty":             ocl.CollectionVal(),
		"x":                 ocl.IntVal(2),
	}
	pre = ocl.MapEnv{
		"project.id":        ocl.StringVal("q"),
		"project.volumes":   ocl.CollectionVal(ocl.StringVal("a"), ocl.StringVal("b"), ocl.StringVal("c")),
		"quota_sets.volume": ocl.IntVal(3),
		"volume.status":     ocl.StringVal("in-use"),
		"user.id.groups":    ocl.StringsVal("member"),
		"nums":              ocl.CollectionVal(ocl.IntVal(9)),
		"empty":             ocl.CollectionVal(ocl.IntVal(1)),
		"x":                 ocl.IntVal(7),
	}
	sparse = ocl.MapEnv{"x": ocl.IntVal(2)}
	return cur, pre, sparse
}

// campaignFormulas returns the synthetic corpus: each formula targets at
// least one mutant's blind rule, and together they cover every seeded
// fault. Contract clauses are appended by the caller.
func campaignFormulas() []string {
	return []string{
		// Collection coercions on equality and counting.
		"user.id.groups = 'admin'",
		"nums->count(2) = 1",
		// Kleene three-valued logic under Undefined operands.
		"(volume.status = 'gone') and true",
		"(volume.status = 'gone') implies true",
		"(volume.status = 'gone') or false",
		"not (volume.status = 'gone')",
		"true xor true",
		// Ordering and arithmetic edges.
		"x <= 2",
		"x < 2",
		"x / 0 = 0",
		"1 + 2 * 3 = 7",
		// Iterators over empty and Undefined-producing bodies.
		"empty->forAll(n | false)",
		"empty->exists(n | true)",
		"nums->exists(n | n = missing)",
		"nums->select(n | n > 1)->size() = 2",
		// Scalar-as-singleton coercion.
		"x->size() = 1",
		"x->isEmpty()",
		// Absent paths resolve to Undefined, not false.
		"volume.status = 'gone'",
		// Old-value operator against a differing pre-state.
		"pre(x) = 7",
		"x@pre > x",
		"pre(project.volumes->size()) - project.volumes->size() = 1",
	}
}

// RunCompilerCampaign evaluates every seeded compiler mutant against the
// differential corpus: the synthetic formulas plus every clause (pre,
// post, effect) of the given contract set. A nil set runs the synthetic
// corpus alone.
func RunCompilerCampaign(set *Set) (*CompilerCampaignReport, error) {
	type probe struct {
		src string
		e   ocl.Expr
	}
	var corpus []probe
	for _, src := range campaignFormulas() {
		e, err := ocl.Parse(src)
		if err != nil {
			return nil, fmt.Errorf("corpus formula %q: %w", src, err)
		}
		corpus = append(corpus, probe{src, e})
	}
	if set != nil {
		for _, c := range set.Contracts {
			for _, cs := range c.Cases {
				for _, e := range []ocl.Expr{cs.Pre, cs.Post, cs.Effect} {
					corpus = append(corpus, probe{e.String(), e})
				}
			}
		}
	}
	cur, pre, sparse := campaignEnvs()
	bindings := []struct {
		cur, pre ocl.MapEnv
	}{
		{cur, pre},
		{cur, nil},
		{sparse, nil},
	}
	report := &CompilerCampaignReport{Formulas: len(corpus)}
	for _, mutant := range CompilerMutants() {
		kill := CompilerKill{Mutant: mutant}
		for _, p := range corpus {
			mutated := CompileExprWithMutant(p.e, mutant)
			for _, bind := range bindings {
				kill.Trials++
				ctx := ocl.Context{Cur: bind.cur}
				if bind.pre != nil {
					ctx.Pre = bind.pre
				}
				wantV, wantErr := ocl.Eval(p.e, ctx)
				gotV, gotErr := mutated.Eval(bind.cur, bind.pre)
				switch {
				case (wantErr == nil) != (gotErr == nil):
					kill.Killed = true
					kill.Witness = fmt.Sprintf("%s: error divergence (%v vs %v)", p.src, wantErr, gotErr)
				case wantErr != nil && wantErr.Error() != gotErr.Error():
					kill.Killed = true
					kill.Witness = fmt.Sprintf("%s: error text divergence", p.src)
				case wantErr == nil && !wantV.Equal(gotV):
					kill.Killed = true
					kill.Witness = fmt.Sprintf("%s: %v vs %v", p.src, wantV, gotV)
				}
				if kill.Killed {
					break
				}
			}
			if kill.Killed {
				break
			}
		}
		report.Kills = append(report.Kills, kill)
	}
	return report, nil
}
