// The contract compiler: each Plan clause's OCL AST is translated once,
// at plan-compile time, into a chain of Go closures over the Frame's
// flat slot model (frame.go). State paths resolve to slot indexes fixed
// at compile time, iterator variables to registers indexed by lexical
// depth, and constant subtrees arrive pre-folded — the programs compile
// the symbolic pass's Folded clause forms (facts.go), which are value-
// and error-equivalent to the originals.
//
// Soundness is not argued node-by-node here: every coercion rule is a
// call into the ocl evaluation kernel (ocl/kernel.go), the same
// functions the tree-walking evaluator runs, and the equivalence of the
// composition is enforced by the three-way differential suite, the
// FuzzCompiledEval harness and the seeded compiler mutants below.
package contract

import (
	"fmt"
	"strings"
	"sync"

	"cloudmon/internal/ocl"
)

// evalFn is a compiled expression: it evaluates over a Frame and either
// produces a value, signals a *Demand for an unfilled slot, or fails
// with the same error the tree-walking evaluator would produce.
type evalFn func(fr *Frame) (ocl.Value, error)

// Program is one compiled clause.
type Program struct {
	fn evalFn
	// paths are the distinct state paths the clause can demand, in
	// first-use order (diagnostics; the slot model resolves them).
	paths []string
}

// Run evaluates the program over the frame.
func (p *Program) Run(fr *Frame) (ocl.Value, error) { return p.fn(fr) }

// Paths returns the distinct state paths the program can demand.
func (p *Program) Paths() []string { return p.paths }

// Compiled is a contract's closure-chain evaluator set: one program per
// pre-condition disjunct, post-condition consequent and exclusion
// witness, sharing a single state-path slot table and a Frame pool.
type Compiled struct {
	paths []string
	idx   map[string]int
	// curDemand/preDemand are the preallocated per-slot demand errors —
	// signalling a demand on the OK path allocates nothing.
	curDemand []*Demand
	preDemand []*Demand
	// pre and post are indexed like Contract.Cases; witness is parallel
	// to Facts.Exclusions.
	pre     []*Program
	post    []*Program
	witness [][]*Program
	numRegs int
	pool    sync.Pool
}

// Paths returns the slot table: every state path any program can demand.
func (cp *Compiled) Paths() []string { return cp.paths }

// Cases returns the number of compiled clause pairs.
func (cp *Compiled) Cases() int { return len(cp.pre) }

// PreProgram returns the compiled pre-condition disjunct for case i.
func (cp *Compiled) PreProgram(i int) *Program { return cp.pre[i] }

// PostProgram returns the compiled post-condition consequent for case i.
func (cp *Compiled) PostProgram(i int) *Program { return cp.post[i] }

// WitnessProgram returns the compiled witness for Facts.Exclusions[i][j].
func (cp *Compiled) WitnessProgram(i, j int) *Program { return cp.witness[i][j] }

// Registers returns the iterator-register bank size the programs need —
// the deepest lexical iterator nesting across all compiled clauses.
func (cp *Compiled) Registers() int { return cp.numRegs }

// NewFrame returns a reset Frame from the pool. Frames must go back via
// Release; a warmed pool makes evaluation allocation-free.
func (cp *Compiled) NewFrame() *Frame {
	fr := cp.pool.Get().(*Frame)
	fr.Reset()
	return fr
}

// Release returns a frame to the pool. The caller must not retain
// values aliasing the frame's arena past this point.
func (cp *Compiled) Release(fr *Frame) { cp.pool.Put(fr) }

// compileContract builds the contract's compiled evaluator set from the
// plan's folded clause forms.
func compileContract(c *Contract, p *Plan) *Compiled {
	co := newCompiler("")
	cp := co.cp
	cp.pre = make([]*Program, len(c.Cases))
	cp.post = make([]*Program, len(c.Cases))
	for i, cs := range c.Cases {
		preExpr, postExpr := cs.Pre, cs.Post
		if p.Facts != nil {
			if f := p.Facts.Pre[i].Folded; f != nil {
				preExpr = f
			}
			if f := p.Facts.Post[i].Folded; f != nil {
				postExpr = f
			}
		}
		cp.pre[i] = co.program(preExpr)
		cp.post[i] = co.program(postExpr)
	}
	if p.Facts != nil {
		cp.witness = make([][]*Program, len(p.Facts.Exclusions))
		for i, exs := range p.Facts.Exclusions {
			for _, ex := range exs {
				cp.witness[i] = append(cp.witness[i], co.program(ex.Witness))
			}
		}
	}
	co.seal()
	return cp
}

// CompiledExpr is a single compiled expression with its own slot table —
// the standalone face of the compiler for fuzzing, benchmarks and the
// mutation campaign. The contract pipeline uses Compiled instead, which
// shares one table across all clauses.
type CompiledExpr struct {
	cp   *Compiled
	prog *Program
}

// CompileExpr compiles one OCL expression. Compilation is total: inputs
// the evaluator would reject at runtime compile to programs producing
// the identical runtime error.
func CompileExpr(e ocl.Expr) *CompiledExpr { return CompileExprWithMutant(e, "") }

// CompileExprWithMutant compiles with one seeded semantic fault enabled
// (see CompilerMutants) — the mutation campaign's entry point. An empty
// mutant compiles faithfully.
func CompileExprWithMutant(e ocl.Expr, mutant string) *CompiledExpr {
	co := newCompiler(mutant)
	prog := co.program(e)
	co.seal()
	return &CompiledExpr{cp: co.cp, prog: prog}
}

// Paths returns the expression's slot table.
func (ce *CompiledExpr) Paths() []string { return ce.cp.paths }

// Eval runs the compiled expression against map environments, mirroring
// ocl.Eval(e, ocl.Context{Cur: cur, Pre: pre}): every slot is filled up
// front (missing keys resolve to Undefined, as ocl.MapEnv does), so no
// demand can occur. Collection results are detached from the frame's
// arena before the frame returns to the pool.
func (ce *CompiledExpr) Eval(cur, pre ocl.MapEnv) (ocl.Value, error) {
	fr := ce.cp.NewFrame()
	defer ce.cp.Release(fr)
	for _, path := range ce.cp.paths {
		v, ok := cur[path]
		fr.SetCur(path, v, ok)
	}
	if pre != nil {
		fr.hasPre = true
		for _, path := range ce.cp.paths {
			v, ok := pre[path]
			fr.SetPre(path, v, ok)
		}
	}
	v, err := ce.prog.Run(fr)
	if err != nil {
		return ocl.Value{}, err
	}
	return detachValue(v), nil
}

// detachValue deep-copies collection storage that may alias a frame's
// arena, so results survive the frame's reuse.
func detachValue(v ocl.Value) ocl.Value {
	if v.Kind != ocl.KindCollection || len(v.Elems) == 0 {
		return v
	}
	elems := make([]ocl.Value, len(v.Elems))
	for i, e := range v.Elems {
		elems[i] = detachValue(e)
	}
	v.Elems = elems
	return v
}

// CompilerMutants lists the seeded semantic faults the mutation campaign
// compiles in one at a time (cmd/mutantlab -compiler). Each breaks one
// documented evaluator rule; an adequate differential corpus must kill
// every one of them against the tree-walking reference.
func CompilerMutants() []string {
	return []string{
		"eq-membership-drop",   // `=` loses the collection-membership and count coercions
		"and-undef-false",      // Kleene `and` collapses Undefined to false
		"implies-undef-strict", // U implies true no longer rescues to true
		"cmp-le-lt",            // <= compiles as <
		"forall-empty-false",   // forAll over the empty collection is false
		"exists-undef-false",   // exists ignores Undefined bodies
		"scalar-size-zero",     // scalars lose their singleton coercion in size()
		"absent-as-false",      // an absent state path reads as false, not Undefined
		"div-zero-zero",        // division by zero yields 0, not Undefined
		"xor-as-or",            // xor compiles as or
		"not-undef-true",       // not Undefined yields true
		"pre-as-cur",           // @pre/pre() reads the current state
	}
}

// compiler translates one AST at a time into closures over a shared
// Compiled artifact.
type compiler struct {
	cp *Compiled
	// scope holds the iterator variables in lexical nesting order; a
	// variable's register index is its depth.
	scope   []string
	maxRegs int
	mutant  string
}

func newCompiler(mutant string) *compiler {
	return &compiler{cp: &Compiled{idx: make(map[string]int)}, mutant: mutant}
}

// seal finalizes the artifact once every program is compiled: the slot
// table is frozen and the frame pool learns its dimensions.
func (co *compiler) seal() {
	cp := co.cp
	cp.numRegs = co.maxRegs
	cp.pool.New = func() any {
		return &Frame{
			c:     cp,
			cur:   make([]slot, len(cp.paths)),
			pre:   make([]slot, len(cp.paths)),
			regs:  make([]ocl.Value, cp.numRegs),
			arena: make([]ocl.Value, 0, 16),
		}
	}
}

// program compiles one clause.
func (co *compiler) program(e ocl.Expr) *Program {
	return &Program{fn: co.compile(e, false), paths: ocl.NavPaths(e)}
}

// ensurePath interns a state path into the slot table.
func (co *compiler) ensurePath(key string) int {
	cp := co.cp
	if i, ok := cp.idx[key]; ok {
		return i
	}
	i := len(cp.paths)
	cp.idx[key] = i
	cp.paths = append(cp.paths, key)
	cp.curDemand = append(cp.curDemand, &Demand{Path: key, Index: i})
	cp.preDemand = append(cp.preDemand, &Demand{Path: key, Index: i, Pre: true})
	return i
}

// lookupVar resolves an iterator variable to its register, innermost
// binding first — the lexical mirror of the evaluator's scope stack.
func (co *compiler) lookupVar(name string) (int, bool) {
	for i := len(co.scope) - 1; i >= 0; i-- {
		if co.scope[i] == name {
			return i, true
		}
	}
	return 0, false
}

// compile translates a node. inPre is true inside pre(...) — navigation
// then reads the pre-state bank, exactly as the evaluator's inPre flag
// redirects navigation to ctx.Pre.
func (co *compiler) compile(e ocl.Expr, inPre bool) evalFn {
	switch n := e.(type) {
	case *ocl.Lit:
		v := n.Value
		return func(*Frame) (ocl.Value, error) { return v, nil }
	case *ocl.Nav:
		return co.compileNav(n, inPre)
	case *ocl.PreExpr:
		body := co.compile(n.Expr, true)
		return func(fr *Frame) (ocl.Value, error) {
			if !fr.hasPre {
				return ocl.Value{}, ocl.ErrNoPreState
			}
			return body(fr)
		}
	case *ocl.Unary:
		return co.compileUnary(n, inPre)
	case *ocl.Binary:
		return co.compileBinary(n, inPre)
	case *ocl.CollOp:
		return co.compileColl(n, inPre)
	case *ocl.IterOp:
		return co.compileIter(n, inPre)
	default:
		err := &ocl.EvalError{Expr: e, Message: "unknown expression node"}
		return func(*Frame) (ocl.Value, error) { return ocl.Value{}, err }
	}
}

func (co *compiler) compileNav(n *ocl.Nav, inPre bool) evalFn {
	if reg, ok := co.lookupVar(n.Path[0]); ok {
		// Iterator variables shadow navigation heads; both failure modes
		// are lexically decidable, so they compile to constant errors.
		if len(n.Path) > 1 {
			err := &ocl.EvalError{Expr: n, Message: fmt.Sprintf(
				"cannot navigate below iterator variable %q", n.Path[0])}
			return func(*Frame) (ocl.Value, error) { return ocl.Value{}, err }
		}
		if n.AtPre {
			err := &ocl.EvalError{Expr: n, Message: "@pre on an iterator variable"}
			return func(*Frame) (ocl.Value, error) { return ocl.Value{}, err }
		}
		return func(fr *Frame) (ocl.Value, error) { return fr.regs[reg], nil }
	}
	i := co.ensurePath(strings.Join(n.Path, "."))
	usePre := inPre || n.AtPre
	if co.mutant == "pre-as-cur" && usePre {
		usePre = false
	}
	if usePre {
		return func(fr *Frame) (ocl.Value, error) { return fr.loadPre(i) }
	}
	if co.mutant == "absent-as-false" {
		return func(fr *Frame) (ocl.Value, error) {
			v, err := fr.loadCur(i)
			if err == nil && v.IsUndefined() {
				return ocl.BoolVal(false), nil
			}
			return v, err
		}
	}
	return func(fr *Frame) (ocl.Value, error) { return fr.loadCur(i) }
}

func (co *compiler) compileUnary(n *ocl.Unary, inPre bool) evalFn {
	ef := co.compile(n.Expr, inPre)
	switch n.Op {
	case ocl.OpNot:
		notUndefTrue := co.mutant == "not-undef-true"
		return func(fr *Frame) (ocl.Value, error) {
			v, err := ef(fr)
			if err != nil {
				return ocl.Value{}, err
			}
			if v.IsUndefined() {
				if notUndefTrue {
					return ocl.BoolVal(true), nil
				}
				return ocl.Undefined(), nil
			}
			if v.Kind != ocl.KindBool {
				return ocl.Value{}, &ocl.EvalError{Expr: n, Message: "not applied to " + v.Kind.String()}
			}
			return ocl.BoolVal(!v.Bool), nil
		}
	case ocl.OpNeg:
		return func(fr *Frame) (ocl.Value, error) {
			v, err := ef(fr)
			if err != nil {
				return ocl.Value{}, err
			}
			if v.IsUndefined() {
				return ocl.Undefined(), nil
			}
			if v.Kind != ocl.KindInt {
				return ocl.Value{}, &ocl.EvalError{Expr: n, Message: "negation applied to " + v.Kind.String()}
			}
			return ocl.IntVal(-v.Int), nil
		}
	}
	err := &ocl.EvalError{Expr: n, Message: "unknown unary operator"}
	return func(fr *Frame) (ocl.Value, error) {
		if _, e := ef(fr); e != nil {
			return ocl.Value{}, e
		}
		return ocl.Value{}, err
	}
}

// microOp is a compile-time operand descriptor for the fused comparison
// closures: a direct slot read, a slot read's collection size, or a
// constant. Loading one is straight-line code — no child closure call, no
// Value copy through a function boundary.
type microOp struct {
	mode uint8 // microSlot, microSize or microConst
	idx  int
	pre  bool
	cv   ocl.Value
}

const (
	microSlot uint8 = iota + 1
	microSize
	microConst
)

// load resolves the operand against the frame.
func (m *microOp) load(fr *Frame) (ocl.Value, error) {
	switch m.mode {
	case microSlot:
		if m.pre {
			return fr.loadPre(m.idx)
		}
		return fr.loadCur(m.idx)
	case microSize:
		v, err := fr.loadCur(m.idx)
		if m.pre {
			v, err = fr.loadPre(m.idx)
		}
		if err != nil {
			return ocl.Value{}, err
		}
		return ocl.IntVal(v.Size()), nil
	default:
		return m.cv, nil
	}
}

// slotOperand resolves e to a slot read when it is a plain state-path
// navigation — including pre(path): loadPre's missing-pre-state check is
// exactly the PreExpr wrapper's, so the fusion preserves error order.
// Iterator-shadowed heads are lexical error cases and stay unfused.
func (co *compiler) slotOperand(e ocl.Expr, inPre bool) (idx int, pre, ok bool) {
	if p, isPre := e.(*ocl.PreExpr); isPre {
		if nav, isNav := p.Expr.(*ocl.Nav); isNav {
			if _, shadowed := co.lookupVar(nav.Path[0]); !shadowed {
				return co.ensurePath(strings.Join(nav.Path, ".")), true, true
			}
		}
		return 0, false, false
	}
	nav, isNav := e.(*ocl.Nav)
	if !isNav {
		return 0, false, false
	}
	if _, shadowed := co.lookupVar(nav.Path[0]); shadowed {
		return 0, false, false
	}
	return co.ensurePath(strings.Join(nav.Path, ".")), inPre || nav.AtPre, true
}

// micro resolves e to a fused operand when it is a literal, a slot read,
// or a slot read's size — the operand shapes contract atoms are built of.
func (co *compiler) micro(e ocl.Expr, inPre bool) (microOp, bool) {
	if v, ok := litValue(e); ok {
		return microOp{mode: microConst, cv: v}, true
	}
	if idx, pre, ok := co.slotOperand(e, inPre); ok {
		return microOp{mode: microSlot, idx: idx, pre: pre}, true
	}
	if c, ok := e.(*ocl.CollOp); ok && c.Name == "size" && len(c.Args) == 0 {
		if idx, pre, ok := co.slotOperand(c.Recv, inPre); ok {
			return microOp{mode: microSize, idx: idx, pre: pre}, true
		}
	}
	return microOp{}, false
}

// fuseBinary compiles a comparison or arithmetic atom whose operands both
// resolve to micro operands into one closure. These atoms — role and
// status literals against slots, volume counts against quotas — dominate
// the contract corpus, and fusing them removes every child closure call
// from the clause's leaves. Only the faithful compiler fuses; mutated
// compilers take the generic paths their seeded faults live on.
func (co *compiler) fuseBinary(n *ocl.Binary, inPre bool) evalFn {
	ml, okL := co.micro(n.L, inPre)
	mr, okR := co.micro(n.R, inPre)
	if !okL || !okR {
		return nil
	}
	// Slot-vs-constant comparisons — the single hottest atom shape — get
	// closures with the slot load inlined: no microOp dispatch, no second
	// operand load, straight-line compare on matching kinds.
	if mr.mode == microConst && ml.mode != microConst {
		if fn := fuseSlotConst(n, ml, mr.cv); fn != nil {
			return fn
		}
	}
	if ml.mode != microConst && mr.mode != microConst {
		if fn := fuseSlotSlot(n, ml, mr); fn != nil {
			return fn
		}
	}
	switch op := n.Op; op {
	case ocl.OpEq:
		return func(fr *Frame) (ocl.Value, error) {
			l, err := ml.load(fr)
			if err != nil {
				return ocl.Value{}, err
			}
			r, err := mr.load(fr)
			if err != nil {
				return ocl.Value{}, err
			}
			// Same-kind scalars compare field-to-field (equalValues ends in
			// Value.Equal there); everything else — coercions, Undefined —
			// takes the kernel.
			if l.Kind == r.Kind {
				switch l.Kind {
				case ocl.KindString:
					return ocl.BoolVal(l.Str == r.Str), nil
				case ocl.KindInt:
					return ocl.BoolVal(l.Int == r.Int), nil
				case ocl.KindBool:
					return ocl.BoolVal(l.Bool == r.Bool), nil
				}
			}
			return ocl.KernelEqual(l, r), nil
		}
	case ocl.OpNe:
		return func(fr *Frame) (ocl.Value, error) {
			l, err := ml.load(fr)
			if err != nil {
				return ocl.Value{}, err
			}
			r, err := mr.load(fr)
			if err != nil {
				return ocl.Value{}, err
			}
			if l.Kind == r.Kind {
				switch l.Kind {
				case ocl.KindString:
					return ocl.BoolVal(l.Str != r.Str), nil
				case ocl.KindInt:
					return ocl.BoolVal(l.Int != r.Int), nil
				case ocl.KindBool:
					return ocl.BoolVal(l.Bool != r.Bool), nil
				}
			}
			eq := ocl.KernelEqual(l, r)
			if eq.IsUndefined() {
				return eq, nil
			}
			return ocl.BoolVal(!eq.Bool), nil
		}
	case ocl.OpLt, ocl.OpLe, ocl.OpGt, ocl.OpGe:
		return func(fr *Frame) (ocl.Value, error) {
			l, err := ml.load(fr)
			if err != nil {
				return ocl.Value{}, err
			}
			r, err := mr.load(fr)
			if err != nil {
				return ocl.Value{}, err
			}
			if l.Kind == ocl.KindInt && r.Kind == ocl.KindInt {
				var b bool
				switch op {
				case ocl.OpLt:
					b = l.Int < r.Int
				case ocl.OpLe:
					b = l.Int <= r.Int
				case ocl.OpGt:
					b = l.Int > r.Int
				default:
					b = l.Int >= r.Int
				}
				return ocl.BoolVal(b), nil
			}
			v, ok := ocl.KernelCompare(op, l, r)
			if !ok {
				return ocl.Value{}, &ocl.EvalError{Expr: n, Message: fmt.Sprintf(
					"cannot order %s and %s", l.Kind, r.Kind)}
			}
			return v, nil
		}
	case ocl.OpAdd, ocl.OpSub, ocl.OpMul, ocl.OpDiv:
		return func(fr *Frame) (ocl.Value, error) {
			l, err := ml.load(fr)
			if err != nil {
				return ocl.Value{}, err
			}
			r, err := mr.load(fr)
			if err != nil {
				return ocl.Value{}, err
			}
			v, ok := ocl.KernelArith(op, l, r)
			if !ok {
				return ocl.Value{}, &ocl.EvalError{Expr: n, Message: fmt.Sprintf(
					"arithmetic on %s and %s", l.Kind, r.Kind)}
			}
			return v, nil
		}
	}
	return nil
}

// fuseSlotConst builds the specialized closure for a fused comparison
// whose left operand is a slot read (optionally its size) and whose right
// operand is a literal. The slot load is written out inline so the whole
// atom is one closure call; the kind-mismatch and coercion cases fall
// back to the kernels, preserving tree-walk semantics exactly.
func fuseSlotConst(n *ocl.Binary, ml microOp, cv ocl.Value) evalFn {
	idx, pre, sized := ml.idx, ml.pre, ml.mode == microSize
	switch op := n.Op; op {
	case ocl.OpEq, ocl.OpNe:
		neg := op == ocl.OpNe
		return func(fr *Frame) (ocl.Value, error) {
			var l ocl.Value
			var err error
			if pre {
				l, err = fr.loadPre(idx)
			} else {
				l, err = fr.loadCur(idx)
			}
			if err != nil {
				return ocl.Value{}, err
			}
			if sized {
				l = ocl.IntVal(l.Size())
			}
			if l.Kind == cv.Kind {
				switch l.Kind {
				case ocl.KindString:
					return ocl.BoolVal((l.Str == cv.Str) != neg), nil
				case ocl.KindInt:
					return ocl.BoolVal((l.Int == cv.Int) != neg), nil
				case ocl.KindBool:
					return ocl.BoolVal((l.Bool == cv.Bool) != neg), nil
				}
			}
			// Membership coercion against a string literal — the role
			// check `groups = 'admin'` — written out: a string scalar can
			// only equal a string element, and never triggers the count
			// coercion, so the kernel's loop reduces to this one.
			if l.Kind == ocl.KindCollection && cv.Kind == ocl.KindString {
				hit := false
				for i := range l.Elems {
					if l.Elems[i].Kind == ocl.KindString && l.Elems[i].Str == cv.Str {
						hit = true
						break
					}
				}
				return ocl.BoolVal(hit != neg), nil
			}
			eq := ocl.KernelEqual(l, cv)
			if neg && !eq.IsUndefined() {
				return ocl.BoolVal(!eq.Bool), nil
			}
			return eq, nil
		}
	case ocl.OpLt, ocl.OpLe, ocl.OpGt, ocl.OpGe:
		return func(fr *Frame) (ocl.Value, error) {
			var l ocl.Value
			var err error
			if pre {
				l, err = fr.loadPre(idx)
			} else {
				l, err = fr.loadCur(idx)
			}
			if err != nil {
				return ocl.Value{}, err
			}
			if sized {
				l = ocl.IntVal(l.Size())
			}
			if l.Kind == ocl.KindInt && cv.Kind == ocl.KindInt {
				var b bool
				switch op {
				case ocl.OpLt:
					b = l.Int < cv.Int
				case ocl.OpLe:
					b = l.Int <= cv.Int
				case ocl.OpGt:
					b = l.Int > cv.Int
				default:
					b = l.Int >= cv.Int
				}
				return ocl.BoolVal(b), nil
			}
			v, ok := ocl.KernelCompare(op, l, cv)
			if !ok {
				return ocl.Value{}, &ocl.EvalError{Expr: n, Message: fmt.Sprintf(
					"cannot order %s and %s", l.Kind, cv.Kind)}
			}
			return v, nil
		}
	}
	return nil
}

// fuseSlotSlot is fuseSlotConst's two-slot sibling: both operands are
// slot reads (optionally sized), both loads written out inline. Covers
// the quota comparison `project.volumes < quota_sets.volume` shape.
func fuseSlotSlot(n *ocl.Binary, ml, mr microOp) evalFn {
	li, lp, ls := ml.idx, ml.pre, ml.mode == microSize
	ri, rp, rs := mr.idx, mr.pre, mr.mode == microSize
	switch op := n.Op; op {
	case ocl.OpEq, ocl.OpNe:
		neg := op == ocl.OpNe
		return func(fr *Frame) (ocl.Value, error) {
			var l, r ocl.Value
			var err error
			if lp {
				l, err = fr.loadPre(li)
			} else {
				l, err = fr.loadCur(li)
			}
			if err != nil {
				return ocl.Value{}, err
			}
			if rp {
				r, err = fr.loadPre(ri)
			} else {
				r, err = fr.loadCur(ri)
			}
			if err != nil {
				return ocl.Value{}, err
			}
			if ls {
				l = ocl.IntVal(l.Size())
			}
			if rs {
				r = ocl.IntVal(r.Size())
			}
			if l.Kind == r.Kind {
				switch l.Kind {
				case ocl.KindString:
					return ocl.BoolVal((l.Str == r.Str) != neg), nil
				case ocl.KindInt:
					return ocl.BoolVal((l.Int == r.Int) != neg), nil
				case ocl.KindBool:
					return ocl.BoolVal((l.Bool == r.Bool) != neg), nil
				}
			}
			eq := ocl.KernelEqual(l, r)
			if neg && !eq.IsUndefined() {
				return ocl.BoolVal(!eq.Bool), nil
			}
			return eq, nil
		}
	case ocl.OpLt, ocl.OpLe, ocl.OpGt, ocl.OpGe:
		return func(fr *Frame) (ocl.Value, error) {
			var l, r ocl.Value
			var err error
			if lp {
				l, err = fr.loadPre(li)
			} else {
				l, err = fr.loadCur(li)
			}
			if err != nil {
				return ocl.Value{}, err
			}
			if rp {
				r, err = fr.loadPre(ri)
			} else {
				r, err = fr.loadCur(ri)
			}
			if err != nil {
				return ocl.Value{}, err
			}
			if ls {
				l = ocl.IntVal(l.Size())
			}
			if rs {
				r = ocl.IntVal(r.Size())
			}
			if l.Kind == ocl.KindInt && r.Kind == ocl.KindInt {
				var b bool
				switch op {
				case ocl.OpLt:
					b = l.Int < r.Int
				case ocl.OpLe:
					b = l.Int <= r.Int
				case ocl.OpGt:
					b = l.Int > r.Int
				default:
					b = l.Int >= r.Int
				}
				return ocl.BoolVal(b), nil
			}
			v, ok := ocl.KernelCompare(op, l, r)
			if !ok {
				return ocl.Value{}, &ocl.EvalError{Expr: n, Message: fmt.Sprintf(
					"cannot order %s and %s", l.Kind, r.Kind)}
			}
			return v, nil
		}
	}
	return nil
}

func (co *compiler) compileBinary(n *ocl.Binary, inPre bool) evalFn {
	switch n.Op {
	case ocl.OpAnd, ocl.OpOr, ocl.OpImplies, ocl.OpXor:
		return co.compileLogic(n, inPre)
	}
	if co.mutant == "" {
		if fn := co.fuseBinary(n, inPre); fn != nil {
			return fn
		}
	}
	lf := co.compile(n.L, inPre)
	rf := co.compile(n.R, inPre)
	op := n.Op
	if co.mutant == "cmp-le-lt" && op == ocl.OpLe {
		op = ocl.OpLt
	}
	switch op {
	case ocl.OpEq:
		if co.mutant == "eq-membership-drop" {
			return func(fr *Frame) (ocl.Value, error) {
				l, r, err := evalPair(fr, lf, rf)
				if err != nil {
					return ocl.Value{}, err
				}
				if l.IsUndefined() && r.IsUndefined() {
					return ocl.BoolVal(true), nil
				}
				if l.IsUndefined() || r.IsUndefined() {
					return ocl.Undefined(), nil
				}
				return ocl.BoolVal(l.Equal(r)), nil
			}
		}
		// Peephole: slot-vs-constant equality is the contract corpus's
		// commonest atom (role and status literals); comparing against a
		// captured constant skips one dynamic call and Value copy per
		// evaluation. Literals never error or demand, so evaluation order
		// is preserved either side.
		if cv, isConst := litValue(n.R); isConst {
			return func(fr *Frame) (ocl.Value, error) {
				l, err := lf(fr)
				if err != nil {
					return ocl.Value{}, err
				}
				return ocl.KernelEqual(l, cv), nil
			}
		}
		if cv, isConst := litValue(n.L); isConst {
			return func(fr *Frame) (ocl.Value, error) {
				r, err := rf(fr)
				if err != nil {
					return ocl.Value{}, err
				}
				return ocl.KernelEqual(cv, r), nil
			}
		}
		return func(fr *Frame) (ocl.Value, error) {
			l, r, err := evalPair(fr, lf, rf)
			if err != nil {
				return ocl.Value{}, err
			}
			return ocl.KernelEqual(l, r), nil
		}
	case ocl.OpNe:
		if cv, isConst := litValue(n.R); isConst {
			return func(fr *Frame) (ocl.Value, error) {
				l, err := lf(fr)
				if err != nil {
					return ocl.Value{}, err
				}
				eq := ocl.KernelEqual(l, cv)
				if eq.IsUndefined() {
					return eq, nil
				}
				return ocl.BoolVal(!eq.Bool), nil
			}
		}
		return func(fr *Frame) (ocl.Value, error) {
			l, r, err := evalPair(fr, lf, rf)
			if err != nil {
				return ocl.Value{}, err
			}
			eq := ocl.KernelEqual(l, r)
			if eq.IsUndefined() {
				return eq, nil
			}
			return ocl.BoolVal(!eq.Bool), nil
		}
	case ocl.OpLt, ocl.OpLe, ocl.OpGt, ocl.OpGe:
		cmpOp := op
		if cv, isConst := litValue(n.R); isConst {
			return func(fr *Frame) (ocl.Value, error) {
				l, err := lf(fr)
				if err != nil {
					return ocl.Value{}, err
				}
				v, ok := ocl.KernelCompare(cmpOp, l, cv)
				if !ok {
					return ocl.Value{}, &ocl.EvalError{Expr: n, Message: fmt.Sprintf(
						"cannot order %s and %s", l.Kind, cv.Kind)}
				}
				return v, nil
			}
		}
		if cv, isConst := litValue(n.L); isConst {
			return func(fr *Frame) (ocl.Value, error) {
				r, err := rf(fr)
				if err != nil {
					return ocl.Value{}, err
				}
				v, ok := ocl.KernelCompare(cmpOp, cv, r)
				if !ok {
					return ocl.Value{}, &ocl.EvalError{Expr: n, Message: fmt.Sprintf(
						"cannot order %s and %s", cv.Kind, r.Kind)}
				}
				return v, nil
			}
		}
		return func(fr *Frame) (ocl.Value, error) {
			l, r, err := evalPair(fr, lf, rf)
			if err != nil {
				return ocl.Value{}, err
			}
			v, ok := ocl.KernelCompare(cmpOp, l, r)
			if !ok {
				return ocl.Value{}, &ocl.EvalError{Expr: n, Message: fmt.Sprintf(
					"cannot order %s and %s", l.Kind, r.Kind)}
			}
			return v, nil
		}
	case ocl.OpAdd, ocl.OpSub, ocl.OpMul, ocl.OpDiv:
		arithOp := op
		divZeroZero := co.mutant == "div-zero-zero" && op == ocl.OpDiv
		return func(fr *Frame) (ocl.Value, error) {
			l, r, err := evalPair(fr, lf, rf)
			if err != nil {
				return ocl.Value{}, err
			}
			v, ok := ocl.KernelArith(arithOp, l, r)
			if !ok {
				return ocl.Value{}, &ocl.EvalError{Expr: n, Message: fmt.Sprintf(
					"arithmetic on %s and %s", l.Kind, r.Kind)}
			}
			if divZeroZero && v.IsUndefined() && !l.IsUndefined() && !r.IsUndefined() {
				return ocl.IntVal(0), nil
			}
			return v, nil
		}
	}
	err := &ocl.EvalError{Expr: n, Message: "unknown binary operator"}
	return func(fr *Frame) (ocl.Value, error) {
		if _, _, e := evalPair(fr, lf, rf); e != nil {
			return ocl.Value{}, e
		}
		return ocl.Value{}, err
	}
}

// litValue reports whether e is a literal, returning its value — the
// guard for the constant-operand peepholes above.
func litValue(e ocl.Expr) (ocl.Value, bool) {
	if l, ok := e.(*ocl.Lit); ok {
		return l.Value, true
	}
	return ocl.Value{}, false
}

// evalPair evaluates both operands of a non-short-circuiting binary
// operator, left first, exactly as the evaluator does.
func evalPair(fr *Frame, lf, rf evalFn) (ocl.Value, ocl.Value, error) {
	l, err := lf(fr)
	if err != nil {
		return ocl.Value{}, ocl.Value{}, err
	}
	r, err := rf(fr)
	if err != nil {
		return ocl.Value{}, ocl.Value{}, err
	}
	return l, r, nil
}

// logicPart is one operand of a flattened and/or chain, paired with the
// nested connective node the tree walk would attribute a non-boolean
// operand error to — flattening must not change error text.
type logicPart struct {
	fn     evalFn
	parent *ocl.Binary
}

// flattenLogic gathers the left-to-right operand sequence of an
// associative connective chain. Kleene and/or are associative in all
// three truth values, and short-circuiting on a definite false (and) or
// true (or) skips exactly the operands the nested closures would skip,
// so one loop over the flattened sequence is observationally identical
// to the closure nest — while paying one call frame per chain instead
// of one per connective.
func (co *compiler) flattenLogic(n *ocl.Binary, op ocl.BinOp, inPre bool, parts []logicPart) []logicPart {
	for _, side := range []ocl.Expr{n.L, n.R} {
		if b, ok := side.(*ocl.Binary); ok && b.Op == op {
			parts = co.flattenLogic(b, op, inPre, parts)
		} else {
			parts = append(parts, logicPart{fn: co.compile(side, inPre), parent: n})
		}
	}
	return parts
}

// isLogicChain reports whether n has a same-op connective directly under
// it, i.e. flattening would yield more than two operands.
func isLogicChain(n *ocl.Binary) bool {
	if b, ok := n.L.(*ocl.Binary); ok && b.Op == n.Op {
		return true
	}
	b, ok := n.R.(*ocl.Binary)
	return ok && b.Op == n.Op
}

// compileLogic compiles the short-circuiting three-valued connectives,
// including the left-first evaluation order the demand loop depends on.
func (co *compiler) compileLogic(n *ocl.Binary, inPre bool) evalFn {
	// Only the faithful compiler flattens: the seeded connective faults
	// live on the generic two-operand closures.
	if co.mutant == "" && (n.Op == ocl.OpAnd || n.Op == ocl.OpOr) && isLogicChain(n) {
		parts := co.flattenLogic(n, n.Op, inPre, nil)
		if n.Op == ocl.OpAnd {
			return func(fr *Frame) (ocl.Value, error) {
				undef := false
				for i := range parts {
					v, err := parts[i].fn(fr)
					if err != nil {
						return ocl.Value{}, err
					}
					b, def, ok := ocl.KernelBool(v)
					if !ok {
						return ocl.Value{}, &ocl.EvalError{Expr: parts[i].parent,
							Message: "boolean operator applied to " + v.Kind.String()}
					}
					if def && !b {
						return ocl.BoolVal(false), nil
					}
					undef = undef || !def
				}
				if undef {
					return ocl.Undefined(), nil
				}
				return ocl.BoolVal(true), nil
			}
		}
		return func(fr *Frame) (ocl.Value, error) {
			undef := false
			for i := range parts {
				v, err := parts[i].fn(fr)
				if err != nil {
					return ocl.Value{}, err
				}
				b, def, ok := ocl.KernelBool(v)
				if !ok {
					return ocl.Value{}, &ocl.EvalError{Expr: parts[i].parent,
						Message: "boolean operator applied to " + v.Kind.String()}
				}
				if def && b {
					return ocl.BoolVal(true), nil
				}
				undef = undef || !def
			}
			if undef {
				return ocl.Undefined(), nil
			}
			return ocl.BoolVal(false), nil
		}
	}
	lf := co.compile(n.L, inPre)
	rf := co.compile(n.R, inPre)
	op := n.Op
	if co.mutant == "xor-as-or" && op == ocl.OpXor {
		op = ocl.OpOr
	}
	andUndefFalse := co.mutant == "and-undef-false" && op == ocl.OpAnd
	impliesStrict := co.mutant == "implies-undef-strict" && op == ocl.OpImplies
	// boolOperand evaluates one operand to its three-valued truth; the
	// closures below are specialized per connective so evaluation pays no
	// runtime operator dispatch.
	boolOperand := func(fr *Frame, f evalFn) (b, def bool, err error) {
		v, err := f(fr)
		if err != nil {
			return false, false, err
		}
		b, def, ok := ocl.KernelBool(v)
		if !ok {
			return false, false, &ocl.EvalError{Expr: n, Message: "boolean operator applied to " + v.Kind.String()}
		}
		return b, def, nil
	}
	switch op {
	case ocl.OpAnd:
		return func(fr *Frame) (ocl.Value, error) {
			lb, lDef, err := boolOperand(fr, lf)
			if err != nil {
				return ocl.Value{}, err
			}
			if lDef && !lb {
				return ocl.BoolVal(false), nil
			}
			rb, rDef, err := boolOperand(fr, rf)
			if err != nil {
				return ocl.Value{}, err
			}
			if rDef && !rb {
				return ocl.BoolVal(false), nil
			}
			if !lDef || !rDef {
				if andUndefFalse {
					return ocl.BoolVal(false), nil
				}
				return ocl.Undefined(), nil
			}
			return ocl.BoolVal(lb && rb), nil
		}
	case ocl.OpOr:
		return func(fr *Frame) (ocl.Value, error) {
			lb, lDef, err := boolOperand(fr, lf)
			if err != nil {
				return ocl.Value{}, err
			}
			if lDef && lb {
				return ocl.BoolVal(true), nil
			}
			rb, rDef, err := boolOperand(fr, rf)
			if err != nil {
				return ocl.Value{}, err
			}
			if rDef && rb {
				return ocl.BoolVal(true), nil
			}
			if !lDef || !rDef {
				return ocl.Undefined(), nil
			}
			return ocl.BoolVal(lb || rb), nil
		}
	case ocl.OpImplies:
		return func(fr *Frame) (ocl.Value, error) {
			lb, lDef, err := boolOperand(fr, lf)
			if err != nil {
				return ocl.Value{}, err
			}
			if lDef && !lb {
				return ocl.BoolVal(true), nil
			}
			rb, rDef, err := boolOperand(fr, rf)
			if err != nil {
				return ocl.Value{}, err
			}
			if rDef && rb {
				if impliesStrict && !lDef {
					return ocl.Undefined(), nil
				}
				return ocl.BoolVal(true), nil
			}
			if !lDef || !rDef {
				return ocl.Undefined(), nil
			}
			return ocl.BoolVal(!lb || rb), nil
		}
	case ocl.OpXor:
		return func(fr *Frame) (ocl.Value, error) {
			lb, lDef, err := boolOperand(fr, lf)
			if err != nil {
				return ocl.Value{}, err
			}
			rb, rDef, err := boolOperand(fr, rf)
			if err != nil {
				return ocl.Value{}, err
			}
			if !lDef || !rDef {
				return ocl.Undefined(), nil
			}
			return ocl.BoolVal(lb != rb), nil
		}
	}
	err := &ocl.EvalError{Expr: n, Message: "unknown logical operator"}
	return func(fr *Frame) (ocl.Value, error) {
		if _, _, e := boolOperand(fr, lf); e != nil {
			return ocl.Value{}, e
		}
		if _, _, e := boolOperand(fr, rf); e != nil {
			return ocl.Value{}, e
		}
		return ocl.Value{}, err
	}
}

func (co *compiler) compileColl(n *ocl.CollOp, inPre bool) evalFn {
	recvF := co.compile(n.Recv, inPre)
	argFs := make([]evalFn, len(n.Args))
	for i, a := range n.Args {
		argFs[i] = co.compile(a, inPre)
	}
	// The evaluator checks arity after the receiver evaluates, so a
	// mismatch compiles to "evaluate the receiver, then fail" — demand
	// and error order stay identical.
	arity := func(k int) evalFn {
		if len(n.Args) == k {
			return nil
		}
		err := &ocl.EvalError{Expr: n, Message: fmt.Sprintf(
			"%s expects %d argument(s), got %d", n.Name, k, len(n.Args))}
		return func(fr *Frame) (ocl.Value, error) {
			if _, e := recvF(fr); e != nil {
				return ocl.Value{}, e
			}
			return ocl.Value{}, err
		}
	}
	switch n.Name {
	case "size":
		if bad := arity(0); bad != nil {
			return bad
		}
		scalarSizeZero := co.mutant == "scalar-size-zero"
		return func(fr *Frame) (ocl.Value, error) {
			recv, err := recvF(fr)
			if err != nil {
				return ocl.Value{}, err
			}
			if scalarSizeZero && recv.Kind != ocl.KindCollection {
				return ocl.IntVal(0), nil
			}
			return ocl.IntVal(recv.Size()), nil
		}
	case "isEmpty", "notEmpty":
		if bad := arity(0); bad != nil {
			return bad
		}
		wantEmpty := n.Name == "isEmpty"
		return func(fr *Frame) (ocl.Value, error) {
			recv, err := recvF(fr)
			if err != nil {
				return ocl.Value{}, err
			}
			return ocl.BoolVal((recv.Size() == 0) == wantEmpty), nil
		}
	case "includes", "excludes", "count":
		if bad := arity(1); bad != nil {
			return bad
		}
		name := n.Name
		argF := argFs[0]
		return func(fr *Frame) (ocl.Value, error) {
			recv, err := recvF(fr)
			if err != nil {
				return ocl.Value{}, err
			}
			arg, err := argF(fr)
			if err != nil {
				return ocl.Value{}, err
			}
			count := 0
			for k, sz := 0, recv.Size(); k < sz; k++ {
				if recv.ElemAt(k).Equal(arg) {
					count++
				}
			}
			switch name {
			case "includes":
				return ocl.BoolVal(count > 0), nil
			case "excludes":
				return ocl.BoolVal(count == 0), nil
			}
			return ocl.IntVal(count), nil
		}
	case "sum":
		if bad := arity(0); bad != nil {
			return bad
		}
		return func(fr *Frame) (ocl.Value, error) {
			recv, err := recvF(fr)
			if err != nil {
				return ocl.Value{}, err
			}
			total := 0
			for k, sz := 0, recv.Size(); k < sz; k++ {
				i, ok := ocl.KernelInt(recv.ElemAt(k))
				if !ok {
					return ocl.Value{}, &ocl.EvalError{Expr: n, Message: "sum over non-integer element"}
				}
				total += i
			}
			return ocl.IntVal(total), nil
		}
	case "first":
		if bad := arity(0); bad != nil {
			return bad
		}
		return func(fr *Frame) (ocl.Value, error) {
			recv, err := recvF(fr)
			if err != nil {
				return ocl.Value{}, err
			}
			if recv.Size() == 0 {
				return ocl.Undefined(), nil
			}
			return recv.ElemAt(0), nil
		}
	}
	err := &ocl.EvalError{Expr: n, Message: "unknown collection operation " + n.Name}
	return func(fr *Frame) (ocl.Value, error) {
		if _, e := recvF(fr); e != nil {
			return ocl.Value{}, e
		}
		return ocl.Value{}, err
	}
}

func (co *compiler) compileIter(n *ocl.IterOp, inPre bool) evalFn {
	recvF := co.compile(n.Recv, inPre)
	depth := len(co.scope)
	co.scope = append(co.scope, n.Var)
	if len(co.scope) > co.maxRegs {
		co.maxRegs = len(co.scope)
	}
	bodyF := co.compile(n.Body, inPre)
	co.scope = co.scope[:len(co.scope)-1]
	switch n.Name {
	case "forAll", "exists":
		want := n.Name == "exists" // short-circuit value
		emptyFalse := co.mutant == "forall-empty-false" && n.Name == "forAll"
		undefFalse := co.mutant == "exists-undef-false" && n.Name == "exists"
		return func(fr *Frame) (ocl.Value, error) {
			recv, err := recvF(fr)
			if err != nil {
				return ocl.Value{}, err
			}
			sawUndefined := false
			sz := recv.Size()
			for k := 0; k < sz; k++ {
				fr.regs[depth] = recv.ElemAt(k)
				v, err := bodyF(fr)
				if err != nil {
					return ocl.Value{}, err
				}
				b, def, ok := ocl.KernelBool(v)
				if !ok {
					return ocl.Value{}, &ocl.EvalError{Expr: n, Message: "boolean operator applied to " + v.Kind.String()}
				}
				if !def {
					sawUndefined = true
					continue
				}
				if b == want {
					return ocl.BoolVal(want), nil
				}
			}
			if emptyFalse && sz == 0 {
				return ocl.BoolVal(false), nil
			}
			if sawUndefined {
				if undefFalse {
					return ocl.BoolVal(false), nil
				}
				return ocl.Undefined(), nil
			}
			return ocl.BoolVal(!want), nil
		}
	case "select", "reject":
		keepOn := n.Name == "select"
		if buildsCollections(n.Body) {
			// A collection-building body appends its own scratch to the
			// arena between this loop's appends, so a contiguous arena
			// region is impossible: fall back to an allocated result.
			// Such nesting does not occur in generated contracts.
			return func(fr *Frame) (ocl.Value, error) {
				recv, err := recvF(fr)
				if err != nil {
					return ocl.Value{}, err
				}
				sz := recv.Size()
				out := make([]ocl.Value, 0, sz)
				for k := 0; k < sz; k++ {
					elem := recv.ElemAt(k)
					fr.regs[depth] = elem
					v, err := bodyF(fr)
					if err != nil {
						return ocl.Value{}, err
					}
					b, def, ok := ocl.KernelBool(v)
					if !ok {
						return ocl.Value{}, &ocl.EvalError{Expr: n, Message: "boolean operator applied to " + v.Kind.String()}
					}
					if def && b == keepOn {
						out = append(out, elem)
					}
				}
				return ocl.Value{Kind: ocl.KindCollection, Elems: out}, nil
			}
		}
		// Builder-free body: it never touches the arena, so kept elements
		// land contiguously and the result is a capacity-capped slice of
		// arena — zero allocations in the steady state.
		return func(fr *Frame) (ocl.Value, error) {
			recv, err := recvF(fr)
			if err != nil {
				return ocl.Value{}, err
			}
			start := len(fr.arena)
			sz := recv.Size()
			for k := 0; k < sz; k++ {
				elem := recv.ElemAt(k)
				fr.regs[depth] = elem
				v, err := bodyF(fr)
				if err != nil {
					return ocl.Value{}, err
				}
				b, def, ok := ocl.KernelBool(v)
				if !ok {
					return ocl.Value{}, &ocl.EvalError{Expr: n, Message: "boolean operator applied to " + v.Kind.String()}
				}
				if def && b == keepOn {
					fr.arena = append(fr.arena, elem)
				}
			}
			end := len(fr.arena)
			return ocl.Value{Kind: ocl.KindCollection, Elems: fr.arena[start:end:end]}, nil
		}
	case "collect":
		if buildsCollections(n.Body) {
			return func(fr *Frame) (ocl.Value, error) {
				recv, err := recvF(fr)
				if err != nil {
					return ocl.Value{}, err
				}
				sz := recv.Size()
				out := make([]ocl.Value, 0, sz)
				for k := 0; k < sz; k++ {
					fr.regs[depth] = recv.ElemAt(k)
					v, err := bodyF(fr)
					if err != nil {
						return ocl.Value{}, err
					}
					out = append(out, v)
				}
				return ocl.Value{Kind: ocl.KindCollection, Elems: out}, nil
			}
		}
		return func(fr *Frame) (ocl.Value, error) {
			recv, err := recvF(fr)
			if err != nil {
				return ocl.Value{}, err
			}
			start := len(fr.arena)
			sz := recv.Size()
			for k := 0; k < sz; k++ {
				fr.regs[depth] = recv.ElemAt(k)
				v, err := bodyF(fr)
				if err != nil {
					return ocl.Value{}, err
				}
				fr.arena = append(fr.arena, v)
			}
			end := len(fr.arena)
			return ocl.Value{Kind: ocl.KindCollection, Elems: fr.arena[start:end:end]}, nil
		}
	}
	err := &ocl.EvalError{Expr: n, Message: "unknown iterator operation " + n.Name}
	return func(fr *Frame) (ocl.Value, error) {
		if _, e := recvF(fr); e != nil {
			return ocl.Value{}, e
		}
		return ocl.Value{}, err
	}
}

// buildsCollections reports whether evaluating the expression can append
// result storage to the frame arena (select/reject/collect anywhere in
// the tree) — the test for the iterator fast path above.
func buildsCollections(e ocl.Expr) bool {
	found := false
	ocl.Walk(e, func(n ocl.Expr) bool {
		if it, ok := n.(*ocl.IterOp); ok {
			switch it.Name {
			case "select", "reject", "collect":
				found = true
				return false
			}
		}
		return true
	})
	return found
}
