package contract

import (
	"testing"

	"cloudmon/internal/ocl"
	"cloudmon/internal/paper"
	"cloudmon/internal/uml"
)

// paperDeleteCompiled returns the paper DELETE-volume contract's plan and
// compiled artifact — the workload the tentpole's performance claims are
// pinned against.
func paperDeleteCompiled(t testing.TB) (*Contract, *Plan) {
	t.Helper()
	set, err := Generate(paper.CinderModel())
	if err != nil {
		t.Fatal(err)
	}
	c, ok := set.For(uml.Trigger{Method: uml.DELETE, Resource: "volume"})
	if !ok {
		t.Fatal("no DELETE volume contract")
	}
	return c, c.Plan()
}

func okDeleteEnv() ocl.MapEnv {
	return ocl.MapEnv{
		"project.id":        ocl.StringVal("p"),
		"project.volumes":   ocl.CollectionVal(ocl.StringVal("a"), ocl.StringVal("b")),
		"quota_sets.volume": ocl.IntVal(10),
		"volume.status":     ocl.StringVal("available"),
		"user.id.groups":    ocl.StringsVal("admin"),
	}
}

// fillCur loads every contract path into the frame's current bank, the
// state of a pre-check whose demands have all been fetched.
func fillCur(fr *Frame, env ocl.MapEnv, paths []string) {
	for _, p := range paths {
		v, ok := env[p]
		fr.SetCur(p, v, ok)
	}
}

// preCheck runs the compiled pre-check to a verdict: the disjunction of
// the plan-ordered clause programs, stopping at the first true.
func preCheck(t testing.TB, plan *Plan, fr *Frame, env ocl.MapEnv) bool {
	fr.Reset()
	fillCur(fr, env, plan.Compiled.Paths())
	for _, pc := range plan.Pre {
		v, err := plan.Compiled.PreProgram(pc.Index).Run(fr)
		if err != nil {
			t.Fatal(err)
		}
		if b, defined, ok := ocl.KernelBool(v); ok && defined && b {
			return true
		}
	}
	return false
}

// TestCompiledPreCheckZeroAllocs is the tentpole's allocation gate: once
// the frame pool is warm, a full compiled pre-check of the paper's DELETE
// contract — frame reset, five slot fills, clause programs to a verdict —
// allocates nothing. Any regression here (a closure capturing loop state,
// a collection built off-arena, an error wrapped on the hot path) fails
// the build, not a profile review.
func TestCompiledPreCheckZeroAllocs(t *testing.T) {
	_, plan := paperDeleteCompiled(t)
	env := okDeleteEnv()
	fr := plan.Compiled.NewFrame()
	defer plan.Compiled.Release(fr)
	if !preCheck(t, plan, fr, env) {
		t.Fatal("pre-check did not pass on the OK state")
	}
	allocs := testing.AllocsPerRun(200, func() {
		preCheck(t, plan, fr, env)
	})
	if allocs != 0 {
		t.Errorf("compiled OK-path pre-check allocates %.1f objects/run, want 0", allocs)
	}
}

// TestCompiledViolationAllocsBounded gates the violation path: a failing
// pre-check walks every clause program to false and may surface evaluation
// machinery the OK path short-circuits past, but it must stay within a
// small constant — no per-element or per-path allocation.
func TestCompiledViolationAllocsBounded(t *testing.T) {
	_, plan := paperDeleteCompiled(t)
	env := okDeleteEnv()
	env["user.id.groups"] = ocl.StringsVal("intruder")
	env["volume.status"] = ocl.StringVal("in-use")
	fr := plan.Compiled.NewFrame()
	defer plan.Compiled.Release(fr)
	if preCheck(t, plan, fr, env) {
		t.Fatal("pre-check passed on the violating state")
	}
	allocs := testing.AllocsPerRun(200, func() {
		preCheck(t, plan, fr, env)
	})
	if allocs > 2 {
		t.Errorf("compiled violation-path pre-check allocates %.1f objects/run, want <= 2", allocs)
	}
}

// TestCompiledPostZeroAllocs extends the gate through the post-check: the
// consequent programs over a turned-around frame (pre bank bound, current
// bank refilled with the post-state) also run allocation-free.
func TestCompiledPostZeroAllocs(t *testing.T) {
	c, plan := paperDeleteCompiled(t)
	preEnv := okDeleteEnv()
	postEnv := okDeleteEnv()
	postEnv["project.volumes"] = ocl.CollectionVal(ocl.StringVal("a"))
	comp := plan.Compiled
	// Post programs are consequent-only: the antecedent's verdict is
	// carried over from the pre-check, so run just the cases whose
	// antecedent held on the pre-state.
	var active []int
	for i, cs := range c.Cases {
		v, err := ocl.Eval(cs.Pre, ocl.Context{Cur: preEnv})
		if err != nil {
			t.Fatal(err)
		}
		if b, defined, ok := ocl.KernelBool(v); ok && defined && b {
			active = append(active, i)
		}
	}
	if len(active) == 0 {
		t.Fatal("no active cases on the OK pre-state")
	}
	fr := comp.NewFrame()
	defer comp.Release(fr)
	postCheck := func() bool {
		fr.Reset()
		fillCur(fr, preEnv, comp.Paths())
		fr.BeginPost()
		for _, p := range comp.Paths() {
			v, ok := preEnv[p]
			fr.SetPre(p, v, ok)
		}
		fillCur(fr, postEnv, comp.Paths())
		for _, i := range active {
			v, err := comp.PostProgram(i).Run(fr)
			if err != nil {
				t.Fatal(err)
			}
			if b, defined, ok := ocl.KernelBool(v); !ok || !defined || !b {
				return false
			}
		}
		return true
	}
	if !postCheck() {
		t.Fatal("post-check did not pass on the OK transition")
	}
	allocs := testing.AllocsPerRun(200, func() {
		postCheck()
	})
	if allocs != 0 {
		t.Errorf("compiled OK-path post-check allocates %.1f objects/run, want 0", allocs)
	}
}

// TestCompiledExprMatchesTreeWalkOnContracts pins program-level soundness
// on the real workload (the fuzzer covers the grammar): every clause of
// every generated contract, compiled standalone, agrees with the tree walk
// over characteristic states.
func TestCompiledExprMatchesTreeWalkOnContracts(t *testing.T) {
	set, err := Generate(paper.CinderModel())
	if err != nil {
		t.Fatal(err)
	}
	envs := []ocl.MapEnv{
		okDeleteEnv(),
		{},
		{"user.id.groups": ocl.StringsVal("intruder"), "project.volumes": ocl.IntVal(3)},
		{"quota_sets.volume": ocl.StringVal("ten"), "volume.status": ocl.StringVal("in-use")},
	}
	for _, c := range set.Contracts {
		for ci, cs := range c.Cases {
			for _, e := range []ocl.Expr{cs.Pre, cs.Post, cs.Effect} {
				ce := CompileExpr(e)
				for ei, env := range envs {
					ctx := ocl.Context{Cur: env, Pre: envs[0]}
					wantV, wantErr := ocl.Eval(e, ctx)
					gotV, gotErr := ce.Eval(env, envs[0])
					if (wantErr == nil) != (gotErr == nil) {
						t.Fatalf("%s case %d env %d: error divergence: %v vs %v", c.Trigger, ci, ei, wantErr, gotErr)
					}
					if wantErr == nil && !wantV.Equal(gotV) {
						t.Fatalf("%s case %d env %d: value divergence: %v vs %v", c.Trigger, ci, ei, wantV, gotV)
					}
				}
			}
		}
	}
}
