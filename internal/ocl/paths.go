package ocl

import "strings"

// ContextPaths splits the navigation paths of an expression by the
// environment they resolve against: cur holds paths read from the current
// state, pre holds paths read from the pre-state snapshot (inside pre(...)
// or suffixed @pre). A path appearing in both contexts is reported in both
// lists. Each list is distinct and in first-occurrence order, mirroring
// NavPaths. The contract planner uses the split to fetch only what each
// clause's next evaluation step can actually read.
func ContextPaths(e Expr) (cur, pre []string) {
	seenCur := make(map[string]bool)
	seenPre := make(map[string]bool)
	collectContextPaths(e, false, map[string]int{}, func(key string, inPre bool) {
		if inPre {
			if !seenPre[key] {
				seenPre[key] = true
				pre = append(pre, key)
			}
			return
		}
		if !seenCur[key] {
			seenCur[key] = true
			cur = append(cur, key)
		}
	})
	return cur, pre
}

// collectContextPaths walks the tree carrying the pre(...) nesting flag and
// the set of bound iterator variables, reporting each free navigation path
// with the context it resolves in.
func collectContextPaths(e Expr, inPre bool, bound map[string]int, report func(string, bool)) {
	switch n := e.(type) {
	case *Nav:
		if bound[n.Path[0]] == 0 {
			report(strings.Join(n.Path, "."), inPre || n.AtPre)
		}
	case *Unary:
		collectContextPaths(n.Expr, inPre, bound, report)
	case *Binary:
		collectContextPaths(n.L, inPre, bound, report)
		collectContextPaths(n.R, inPre, bound, report)
	case *CollOp:
		collectContextPaths(n.Recv, inPre, bound, report)
		for _, a := range n.Args {
			collectContextPaths(a, inPre, bound, report)
		}
	case *IterOp:
		collectContextPaths(n.Recv, inPre, bound, report)
		bound[n.Var]++
		collectContextPaths(n.Body, inPre, bound, report)
		bound[n.Var]--
	case *PreExpr:
		collectContextPaths(n.Expr, true, bound, report)
	}
}

// StaticCost is a rough size measure of an expression — the node count of
// its tree. The contract planner uses it as a tie-breaker when ordering
// clauses with equal path demands: smaller formulas are cheaper to decide.
func StaticCost(e Expr) int {
	n := 0
	Walk(e, func(Expr) bool { n++; return true })
	return n
}
