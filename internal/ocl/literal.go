package ocl

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseValue parses the literal syntax Value.String renders — the format
// the monitor's audit snapshots are stored in:
//
//	true | false | 42 | -7 | 'text' | OclUndefined | Set{1, 'a', Set{}}
//
// It is the inverse of Value.String for every value whose strings contain
// no single quote (String does not escape quotes, so such values do not
// round-trip; ParseValue reports an error rather than guess). Evidence
// replay uses it to rebuild state environments from packed audit records.
func ParseValue(s string) (Value, error) {
	p := &literalParser{src: s}
	v, err := p.value()
	if err != nil {
		return Value{}, err
	}
	p.ws()
	if p.pos != len(p.src) {
		return Value{}, fmt.Errorf("ocl: trailing input %q in value literal", p.src[p.pos:])
	}
	return v, nil
}

type literalParser struct {
	src string
	pos int
}

func (p *literalParser) ws() {
	for p.pos < len(p.src) && (p.src[p.pos] == ' ' || p.src[p.pos] == '\t') {
		p.pos++
	}
}

func (p *literalParser) value() (Value, error) {
	p.ws()
	if p.pos >= len(p.src) {
		return Value{}, fmt.Errorf("ocl: empty value literal")
	}
	rest := p.src[p.pos:]
	switch {
	case strings.HasPrefix(rest, "true"):
		p.pos += len("true")
		return BoolVal(true), nil
	case strings.HasPrefix(rest, "false"):
		p.pos += len("false")
		return BoolVal(false), nil
	case strings.HasPrefix(rest, "OclUndefined"):
		p.pos += len("OclUndefined")
		return Undefined(), nil
	case strings.HasPrefix(rest, "Set{"):
		p.pos += len("Set{")
		return p.set()
	case rest[0] == '\'':
		p.pos++
		end := strings.IndexByte(p.src[p.pos:], '\'')
		if end < 0 {
			return Value{}, fmt.Errorf("ocl: unterminated string in value literal %q", p.src)
		}
		v := StringVal(p.src[p.pos : p.pos+end])
		p.pos += end + 1
		return v, nil
	case rest[0] == '-' || (rest[0] >= '0' && rest[0] <= '9'):
		end := p.pos + 1
		for end < len(p.src) && p.src[end] >= '0' && p.src[end] <= '9' {
			end++
		}
		n, err := strconv.Atoi(p.src[p.pos:end])
		if err != nil {
			return Value{}, fmt.Errorf("ocl: bad integer in value literal %q: %v", p.src, err)
		}
		p.pos = end
		return IntVal(n), nil
	}
	return Value{}, fmt.Errorf("ocl: unrecognized value literal %q", rest)
}

// set parses the elements after "Set{" up to the matching "}".
func (p *literalParser) set() (Value, error) {
	var elems []Value
	p.ws()
	if p.pos < len(p.src) && p.src[p.pos] == '}' {
		p.pos++
		return CollectionVal(), nil
	}
	for {
		v, err := p.value()
		if err != nil {
			return Value{}, err
		}
		elems = append(elems, v)
		p.ws()
		if p.pos >= len(p.src) {
			return Value{}, fmt.Errorf("ocl: unterminated Set in value literal %q", p.src)
		}
		switch p.src[p.pos] {
		case ',':
			p.pos++
		case '}':
			p.pos++
			return CollectionVal(elems...), nil
		default:
			return Value{}, fmt.Errorf("ocl: expected ',' or '}' in Set literal, got %q", p.src[p.pos:])
		}
	}
}
