package ocl

import (
	"math/rand"
	"testing"
)

// genValue draws a random scalar value.
func genValue(r *rand.Rand) Value {
	switch r.Intn(3) {
	case 0:
		return BoolVal(r.Intn(2) == 0)
	case 1:
		return IntVal(r.Intn(201) - 100)
	default:
		words := []string{"in-use", "available", "admin", "member", "x"}
		return StringVal(words[r.Intn(len(words))])
	}
}

// genNav draws a random navigation path.
func genNav(r *rand.Rand) *Nav {
	segs := []string{"project", "volume", "quota_sets", "user", "id",
		"volumes", "status", "groups"}
	n := 1 + r.Intn(3)
	path := make([]string, n)
	for i := range path {
		path[i] = segs[r.Intn(len(segs))]
	}
	return &Nav{Path: path}
}

// genExpr draws a random expression tree of bounded depth. allowPre
// controls whether pre()/@pre may appear (they may not nest inside pre).
func genExpr(r *rand.Rand, depth int, allowPre bool) Expr {
	if depth <= 0 {
		switch r.Intn(3) {
		case 0:
			return &Lit{Value: genValue(r)}
		default:
			return genNav(r)
		}
	}
	switch r.Intn(10) {
	case 0:
		return &Lit{Value: genValue(r)}
	case 1:
		return genNav(r)
	case 2:
		return &Unary{Op: OpNot, Expr: genExpr(r, depth-1, allowPre)}
	case 3:
		return &Unary{Op: OpNeg, Expr: genExpr(r, depth-1, allowPre)}
	case 4:
		ops := []string{"size", "isEmpty", "notEmpty", "sum", "first"}
		return &CollOp{Recv: genExpr(r, depth-1, allowPre), Name: ops[r.Intn(len(ops))]}
	case 5:
		return &CollOp{
			Recv: genExpr(r, depth-1, allowPre),
			Name: []string{"includes", "excludes", "count"}[r.Intn(3)],
			Args: []Expr{genExpr(r, depth-1, allowPre)},
		}
	case 6:
		if allowPre {
			return &PreExpr{Expr: genExpr(r, depth-1, false)}
		}
		return genNav(r)
	default:
		ops := []BinOp{OpImplies, OpOr, OpXor, OpAnd, OpEq, OpNe, OpLt, OpLe,
			OpGt, OpGe, OpAdd, OpSub, OpMul, OpDiv}
		return &Binary{
			Op: ops[r.Intn(len(ops))],
			L:  genExpr(r, depth-1, allowPre),
			R:  genExpr(r, depth-1, allowPre),
		}
	}
}

// TestPropertyPrintParseRoundTrip: for any AST, String() re-parses to an
// expression that prints identically (printing is a normal form).
func TestPropertyPrintParseRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		e := genExpr(r, 4, true)
		src := e.String()
		parsed, err := Parse(src)
		if err != nil {
			t.Fatalf("iteration %d: %q does not re-parse: %v", i, src, err)
		}
		if got := parsed.String(); got != src {
			t.Fatalf("iteration %d: print not stable:\n first %q\nsecond %q", i, src, got)
		}
	}
}

// TestPropertyEvalDeterministic: evaluation over a fixed environment is
// deterministic and never panics; errors are allowed (type mismatches) but
// must be consistent across runs.
func TestPropertyEvalDeterministic(t *testing.T) {
	env := MapEnv{
		"project.volumes":   CollectionVal(StringVal("a"), StringVal("b")),
		"quota_sets.volume": IntVal(5),
		"volume.status":     StringVal("available"),
		"user.id.groups":    StringsVal("admin"),
		"project.id":        StringVal("p"),
	}
	ctx := Context{Cur: env, Pre: env}
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 2000; i++ {
		e := genExpr(r, 4, true)
		v1, err1 := Eval(e, ctx)
		v2, err2 := Eval(e, ctx)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("iteration %d: nondeterministic error for %s: %v vs %v", i, e, err1, err2)
		}
		if err1 == nil && !v1.Equal(v2) {
			t.Fatalf("iteration %d: nondeterministic value for %s: %v vs %v", i, e, v1, v2)
		}
	}
}

// TestPropertyUndefinedNeverErrors: formulas over an empty environment
// (everything OclUndefined) evaluate without errors — missing resources
// are data, not failures — except where typing genuinely fails.
func TestPropertyUndefinedConservative(t *testing.T) {
	ctx := Context{Cur: MapEnv{}, Pre: MapEnv{}}
	r := rand.New(rand.NewSource(13))
	for i := 0; i < 2000; i++ {
		// Restrict to boolean structure over navigations (no literals), the
		// shape guards take: these must never error on missing state.
		e := booleanOverNavs(r, 3)
		v, err := Eval(e, ctx)
		if err != nil {
			t.Fatalf("iteration %d: %s errored on empty env: %v", i, e, err)
		}
		ok, err := EvalBool(e, ctx)
		if err != nil {
			t.Fatal(err)
		}
		if ok && v.Kind != KindBool {
			t.Fatalf("EvalBool true but value %v", v)
		}
	}
}

// booleanOverNavs builds comparisons of navigations/sizes combined with
// boolean connectives — the fragment contracts actually use.
func booleanOverNavs(r *rand.Rand, depth int) Expr {
	if depth <= 0 {
		cmp := []BinOp{OpEq, OpNe, OpLt, OpLe, OpGt, OpGe}
		lhs := Expr(genNav(r))
		if r.Intn(2) == 0 {
			lhs = &CollOp{Recv: lhs, Name: "size"}
		}
		return &Binary{Op: cmp[r.Intn(len(cmp))], L: lhs, R: IntLit(r.Intn(5))}
	}
	switch r.Intn(4) {
	case 0:
		return &Unary{Op: OpNot, Expr: booleanOverNavs(r, depth-1)}
	default:
		ops := []BinOp{OpAnd, OpOr, OpImplies, OpXor}
		return &Binary{
			Op: ops[r.Intn(len(ops))],
			L:  booleanOverNavs(r, depth-1),
			R:  booleanOverNavs(r, depth-1),
		}
	}
}

// TestPropertyNavPathsSubset: every path NavPaths reports actually occurs
// in the printed source, and resolving only those paths is sufficient to
// evaluate (no hidden state dependencies).
func TestPropertyNavPathsComplete(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	for i := 0; i < 1000; i++ {
		e := booleanOverNavs(r, 3)
		paths := NavPaths(e)
		full := MapEnv{}
		for _, p := range paths {
			full[p] = IntVal(1)
		}
		// Evaluation with exactly the reported paths present must not
		// consult anything else: compare against an env with extra keys.
		noise := MapEnv{"unrelated.path": IntVal(99)}
		for k, v := range full {
			noise[k] = v
		}
		v1, err1 := Eval(e, Context{Cur: full, Pre: full})
		v2, err2 := Eval(e, Context{Cur: noise, Pre: noise})
		if (err1 == nil) != (err2 == nil) || (err1 == nil && !v1.Equal(v2)) {
			t.Fatalf("iteration %d: %s depends on paths outside NavPaths", i, e)
		}
	}
}

// TestPropertyKleeneMonotone: strengthening an undefined operand to a
// defined boolean never flips a determined and/or verdict (Kleene logic
// soundness).
func TestPropertyKleeneMonotone(t *testing.T) {
	r := rand.New(rand.NewSource(19))
	for i := 0; i < 1000; i++ {
		e := booleanOverNavs(r, 2)
		paths := NavPaths(e)
		if len(paths) == 0 {
			continue
		}
		// Partial env: half the paths defined.
		partial := MapEnv{}
		fullTrue := MapEnv{}
		for j, p := range paths {
			fullTrue[p] = IntVal(1)
			if j%2 == 0 {
				partial[p] = IntVal(1)
			}
		}
		vPart, err := Eval(e, Context{Cur: partial, Pre: partial})
		if err != nil {
			t.Fatal(err)
		}
		if vPart.Kind != KindBool {
			continue // undetermined under partial knowledge: nothing to check
		}
		vFull, err := Eval(e, Context{Cur: fullTrue, Pre: fullTrue})
		if err != nil {
			t.Fatal(err)
		}
		// A verdict determined with partial knowledge must persist when the
		// missing values happen to match the partial ones... only guaranteed
		// when the added bindings don't contradict; here partial ⊂ fullTrue,
		// so determined-by-short-circuit verdicts survive only for and/or
		// chains. We check the weaker, always-true property: the full
		// evaluation is still a defined boolean.
		if vFull.Kind != KindBool {
			t.Fatalf("iteration %d: fully defined env produced %v for %s", i, vFull, e)
		}
	}
}
