package ocl

import "testing"

// FuzzParse checks the parser never panics and that accepted inputs have a
// stable printed normal form (print -> parse -> print is idempotent). The
// seed corpus runs under plain `go test`; use `go test -fuzz FuzzParse`
// for continuous fuzzing.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		"true",
		"project.id->size()=1 and project.volumes->size()=0",
		"project.volumes < quota_sets.volume and volume.status <> 'in-use'",
		"user.id.groups='admin' or user.id.groups='member'",
		"pre(project.volumes->size()) - 1",
		"x@pre = 3",
		"nums->select(n | n > 1)->size()",
		"coll->forAll(g | g <> 'banned')",
		"not (a and b) implies c xor d",
		"1 + 2 * 3 / 4 - 5",
		"(((((x)))))",
		"'unterminated",
		"a->",
		"->size()",
		"pre(",
		"a | b",
		"@pre",
		"-9",
		"a->includes('x', 'y')",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		e, err := Parse(src)
		if err != nil {
			return // rejection is fine; panics are not
		}
		printed := e.String()
		e2, err := Parse(printed)
		if err != nil {
			t.Fatalf("printed form %q of %q does not re-parse: %v", printed, src, err)
		}
		if got := e2.String(); got != printed {
			t.Fatalf("printing not idempotent: %q -> %q", printed, got)
		}
	})
}

// FuzzEval checks evaluation never panics on arbitrary accepted formulas
// over a fixed environment.
func FuzzEval(f *testing.F) {
	for _, s := range []string{
		"project.volumes->size() = 2",
		"user.id.groups->forAll(g | g = 'admin')",
		"pre(x) + 1 < y",
		"a / 0",
		"x->sum()",
	} {
		f.Add(s)
	}
	env := MapEnv{
		"project.volumes": CollectionVal(StringVal("a"), StringVal("b")),
		"user.id.groups":  StringsVal("admin"),
		"x":               IntVal(1),
		"y":               IntVal(2),
		"a":               IntVal(3),
	}
	ctx := Context{Cur: env, Pre: env}
	f.Fuzz(func(t *testing.T, src string) {
		e, err := Parse(src)
		if err != nil {
			return
		}
		// Eval may fail (type errors) but must not panic, and must be
		// deterministic.
		v1, err1 := Eval(e, ctx)
		v2, err2 := Eval(e, ctx)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("nondeterministic error: %v vs %v", err1, err2)
		}
		if err1 == nil && !v1.Equal(v2) {
			t.Fatalf("nondeterministic value: %v vs %v", v1, v2)
		}
	})
}
