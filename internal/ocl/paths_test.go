package ocl

import (
	"reflect"
	"testing"
)

func TestContextPathsSplitsByEnvironment(t *testing.T) {
	e := MustParse("pre(project.volumes) - 1 = project.volumes and quota_sets.volume > 0")
	cur, pre := ContextPaths(e)
	if want := []string{"project.volumes", "quota_sets.volume"}; !reflect.DeepEqual(cur, want) {
		t.Errorf("cur = %v, want %v", cur, want)
	}
	if want := []string{"project.volumes"}; !reflect.DeepEqual(pre, want) {
		t.Errorf("pre = %v, want %v", pre, want)
	}
}

func TestContextPathsAtPreSuffix(t *testing.T) {
	e := MustParse("volume.status@pre = 'available' and volume.status = 'deleted'")
	cur, pre := ContextPaths(e)
	if want := []string{"volume.status"}; !reflect.DeepEqual(cur, want) {
		t.Errorf("cur = %v, want %v", cur, want)
	}
	if want := []string{"volume.status"}; !reflect.DeepEqual(pre, want) {
		t.Errorf("pre = %v, want %v", pre, want)
	}
}

func TestContextPathsDistinctFirstOccurrence(t *testing.T) {
	e := MustParse("a.b = 1 and c.d = 2 and a.b = 3")
	cur, pre := ContextPaths(e)
	if want := []string{"a.b", "c.d"}; !reflect.DeepEqual(cur, want) {
		t.Errorf("cur = %v, want %v", cur, want)
	}
	if len(pre) != 0 {
		t.Errorf("pre = %v, want empty", pre)
	}
}

func TestContextPathsExcludeIteratorVariables(t *testing.T) {
	e := MustParse("project.volumes->forAll(v | v.status = volume.status)")
	cur, pre := ContextPaths(e)
	if want := []string{"project.volumes", "volume.status"}; !reflect.DeepEqual(cur, want) {
		t.Errorf("cur = %v, want %v", cur, want)
	}
	if len(pre) != 0 {
		t.Errorf("pre = %v, want empty", pre)
	}
}

func TestContextPathsNestedPreCoversWholeSubtree(t *testing.T) {
	// Everything under pre(...) is pre-state, including nested navigation.
	e := &PreExpr{Expr: MustParse("a.b = 1 and c.d->size() > 0")}
	cur, pre := ContextPaths(e)
	if len(cur) != 0 {
		t.Errorf("cur = %v, want empty", cur)
	}
	if want := []string{"a.b", "c.d"}; !reflect.DeepEqual(pre, want) {
		t.Errorf("pre = %v, want %v", pre, want)
	}
}

func TestStaticCostCountsNodes(t *testing.T) {
	small := MustParse("a.b = 1")
	big := MustParse("a.b = 1 and c.d = 2 and e.f->size() >= 3")
	cs, cb := StaticCost(small), StaticCost(big)
	if cs <= 0 || cb <= cs {
		t.Errorf("StaticCost small=%d big=%d, want 0 < small < big", cs, cb)
	}
}
