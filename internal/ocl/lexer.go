package ocl

import (
	"strings"
	"unicode"
	"unicode/utf8"
)

// lexer tokenizes an OCL expression source string.
type lexer struct {
	src string
	pos int
}

// keywords maps reserved words to token kinds. `pre` is treated as a keyword
// only when followed by '('; otherwise it can appear as an identifier
// segment (handled in next()).
var keywords = map[string]TokenKind{
	"and":     TokAnd,
	"or":      TokOr,
	"xor":     TokXor,
	"not":     TokNot,
	"implies": TokImplies,
	"true":    TokTrue,
	"false":   TokFalse,
}

// Lex tokenizes src into a token stream ending with TokEOF.
func Lex(src string) ([]Token, error) {
	lx := lexer{src: src}
	var toks []Token
	for {
		tok, err := lx.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, tok)
		if tok.Kind == TokEOF {
			return toks, nil
		}
	}
}

func (lx *lexer) errf(pos int, msg string) error {
	return &SyntaxError{Pos: pos, Message: msg, Src: lx.src}
}

func (lx *lexer) peekByte() byte {
	if lx.pos >= len(lx.src) {
		return 0
	}
	return lx.src[lx.pos]
}

func (lx *lexer) skipSpace() {
	for lx.pos < len(lx.src) {
		r, sz := utf8.DecodeRuneInString(lx.src[lx.pos:])
		if !unicode.IsSpace(r) {
			return
		}
		lx.pos += sz
	}
}

// next scans the next token.
func (lx *lexer) next() (Token, error) {
	lx.skipSpace()
	start := lx.pos
	if lx.pos >= len(lx.src) {
		return Token{Kind: TokEOF, Pos: start}, nil
	}
	c := lx.src[lx.pos]
	switch {
	case c == '(':
		lx.pos++
		return Token{Kind: TokLParen, Text: "(", Pos: start}, nil
	case c == ')':
		lx.pos++
		return Token{Kind: TokRParen, Text: ")", Pos: start}, nil
	case c == '.':
		lx.pos++
		return Token{Kind: TokDot, Text: ".", Pos: start}, nil
	case c == ',':
		lx.pos++
		return Token{Kind: TokComma, Text: ",", Pos: start}, nil
	case c == '@':
		lx.pos++
		return Token{Kind: TokAt, Text: "@", Pos: start}, nil
	case c == '|':
		lx.pos++
		return Token{Kind: TokBar, Text: "|", Pos: start}, nil
	case c == '+':
		lx.pos++
		return Token{Kind: TokPlus, Text: "+", Pos: start}, nil
	case c == '*':
		lx.pos++
		return Token{Kind: TokStar, Text: "*", Pos: start}, nil
	case c == '/':
		lx.pos++
		return Token{Kind: TokSlash, Text: "/", Pos: start}, nil
	case c == '-':
		if strings.HasPrefix(lx.src[lx.pos:], "->") {
			lx.pos += 2
			return Token{Kind: TokArrow, Text: "->", Pos: start}, nil
		}
		lx.pos++
		return Token{Kind: TokMinus, Text: "-", Pos: start}, nil
	case c == '=':
		// Accept `==>` and `=>` as implication spellings (the paper's
		// Listing 1 uses both) and bare `=` as equality.
		if strings.HasPrefix(lx.src[lx.pos:], "==>") {
			lx.pos += 3
			return Token{Kind: TokImplies, Text: "==>", Pos: start}, nil
		}
		if strings.HasPrefix(lx.src[lx.pos:], "=>") {
			lx.pos += 2
			return Token{Kind: TokImplies, Text: "=>", Pos: start}, nil
		}
		lx.pos++
		return Token{Kind: TokEq, Text: "=", Pos: start}, nil
	case c == '<':
		if strings.HasPrefix(lx.src[lx.pos:], "<>") {
			lx.pos += 2
			return Token{Kind: TokNe, Text: "<>", Pos: start}, nil
		}
		if strings.HasPrefix(lx.src[lx.pos:], "<=") {
			lx.pos += 2
			return Token{Kind: TokLe, Text: "<=", Pos: start}, nil
		}
		lx.pos++
		return Token{Kind: TokLt, Text: "<", Pos: start}, nil
	case c == '>':
		if strings.HasPrefix(lx.src[lx.pos:], ">=") {
			lx.pos += 2
			return Token{Kind: TokGe, Text: ">=", Pos: start}, nil
		}
		lx.pos++
		return Token{Kind: TokGt, Text: ">", Pos: start}, nil
	case c == '\'':
		lx.pos++
		var sb strings.Builder
		for {
			if lx.pos >= len(lx.src) {
				return Token{}, lx.errf(start, "unterminated string literal")
			}
			if lx.src[lx.pos] == '\'' {
				lx.pos++
				return Token{Kind: TokString, Text: sb.String(), Pos: start}, nil
			}
			r, sz := utf8.DecodeRuneInString(lx.src[lx.pos:])
			sb.WriteRune(r)
			lx.pos += sz
		}
	case c >= '0' && c <= '9':
		for lx.pos < len(lx.src) && lx.src[lx.pos] >= '0' && lx.src[lx.pos] <= '9' {
			lx.pos++
		}
		return Token{Kind: TokInt, Text: lx.src[start:lx.pos], Pos: start}, nil
	default:
		// Decode the full rune: widening the lead byte of a multi-byte
		// (or invalid) UTF-8 sequence would misclassify it — an invalid
		// byte like 0xc2 widens to a letter, enters the identifier scan,
		// consumes nothing and loops the token stream forever.
		r, _ := utf8.DecodeRuneInString(lx.src[lx.pos:])
		if !isIdentStart(r) {
			return Token{}, lx.errf(start, "unexpected character "+string(r))
		}
		for lx.pos < len(lx.src) {
			r, sz := utf8.DecodeRuneInString(lx.src[lx.pos:])
			if !isIdentPart(r) {
				break
			}
			lx.pos += sz
		}
		word := lx.src[start:lx.pos]
		if kind, ok := keywords[word]; ok {
			return Token{Kind: kind, Text: word, Pos: start}, nil
		}
		if word == "pre" {
			// `pre(` is the old-value operator; a bare `pre` is an
			// identifier (e.g. a resource named pre).
			rest := lx.src[lx.pos:]
			if strings.HasPrefix(strings.TrimLeft(rest, " \t"), "(") {
				return Token{Kind: TokPre, Text: word, Pos: start}, nil
			}
		}
		return Token{Kind: TokIdent, Text: word, Pos: start}, nil
	}
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}
