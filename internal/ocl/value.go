// Package ocl implements the OCL (Object Constraint Language) subset the
// paper uses for state invariants, guards and effects: boolean connectives
// (and, or, not, implies), comparisons, integer arithmetic, navigation paths
// over addressable resources, collection operations (->size(), ->isEmpty(),
// ->notEmpty(), ->includes(v)), and the pre(...) old-value operator used in
// post-conditions.
//
// Expressions are parsed once into an AST and evaluated against an
// Environment that resolves navigation paths (e.g. project.volumes) to
// values. The cloud monitor supplies an Environment backed by live REST
// queries against the monitored cloud; tests supply map-backed environments.
package ocl

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Kind enumerates the value kinds the evaluator produces.
type Kind int

// Value kinds. Enums start at 1 so the zero Kind is detectably invalid.
const (
	KindBool Kind = iota + 1
	KindInt
	KindString
	KindCollection
	KindUndefined
)

// String returns the kind name.
func (k Kind) String() string {
	switch k {
	case KindBool:
		return "Boolean"
	case KindInt:
		return "Integer"
	case KindString:
		return "String"
	case KindCollection:
		return "Collection"
	case KindUndefined:
		return "OclUndefined"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Value is an OCL runtime value. Exactly one field (selected by Kind) is
// meaningful. Undefined models OCL's OclUndefined: navigation over a
// missing/unreachable resource yields Undefined rather than an error, which
// is how the paper maps "GET returned non-200" into formulas (the
// `project.volumes->size()=0` reading in Section IV.B).
type Value struct {
	Kind Kind
	Bool bool
	Int  int
	Str  string
	// Elems holds collection elements.
	Elems []Value
}

// Convenience constructors.

// BoolVal returns a Boolean value.
func BoolVal(b bool) Value { return Value{Kind: KindBool, Bool: b} }

// IntVal returns an Integer value.
func IntVal(i int) Value { return Value{Kind: KindInt, Int: i} }

// StringVal returns a String value.
func StringVal(s string) Value { return Value{Kind: KindString, Str: s} }

// CollectionVal returns a Collection value over elems. The slice is copied
// so callers may reuse their buffer.
func CollectionVal(elems ...Value) Value {
	cp := make([]Value, len(elems))
	copy(cp, elems)
	return Value{Kind: KindCollection, Elems: cp}
}

// StringsVal returns a Collection of String values.
func StringsVal(ss ...string) Value {
	elems := make([]Value, len(ss))
	for i, s := range ss {
		elems[i] = StringVal(s)
	}
	return Value{Kind: KindCollection, Elems: elems}
}

// Undefined is the OclUndefined value.
func Undefined() Value { return Value{Kind: KindUndefined} }

// IsUndefined reports whether the value is OclUndefined.
func (v Value) IsUndefined() bool { return v.Kind == KindUndefined }

// Size returns the collection cardinality. Non-collection values have
// size 1 in OCL (a single object coerces to the singleton collection);
// Undefined has size 0 — this matches the paper's idiom where
// `project.id->size()=1` tests that GET on the resource returned 200.
func (v Value) Size() int {
	switch v.Kind {
	case KindCollection:
		return len(v.Elems)
	case KindUndefined:
		return 0
	default:
		return 1
	}
}

// Equal reports deep value equality.
func (v Value) Equal(o Value) bool {
	if v.Kind != o.Kind {
		return false
	}
	switch v.Kind {
	case KindBool:
		return v.Bool == o.Bool
	case KindInt:
		return v.Int == o.Int
	case KindString:
		return v.Str == o.Str
	case KindUndefined:
		return true
	case KindCollection:
		if len(v.Elems) != len(o.Elems) {
			return false
		}
		for i := range v.Elems {
			if !v.Elems[i].Equal(o.Elems[i]) {
				return false
			}
		}
		return true
	}
	return false
}

// String renders the value in OCL-ish literal syntax.
func (v Value) String() string {
	switch v.Kind {
	case KindBool:
		return strconv.FormatBool(v.Bool)
	case KindInt:
		return strconv.Itoa(v.Int)
	case KindString:
		return "'" + v.Str + "'"
	case KindUndefined:
		return "OclUndefined"
	case KindCollection:
		parts := make([]string, len(v.Elems))
		for i, e := range v.Elems {
			parts[i] = e.String()
		}
		return "Set{" + strings.Join(parts, ", ") + "}"
	}
	return "<invalid>"
}

// Environment resolves navigation paths to values. Paths are the dotted
// prefixes of OCL navigation expressions, e.g. ["project", "volumes"].
// Implementations return (Undefined(), nil) for paths that navigate through
// missing resources, and a non-nil error only for infrastructure failures
// (e.g. the monitored cloud is unreachable).
type Environment interface {
	Resolve(path []string) (Value, error)
}

// MapEnv is a map-backed Environment keyed by the dotted path. It is the
// standard environment for tests and for the monitor's state snapshots.
type MapEnv map[string]Value

var _ Environment = MapEnv(nil)

// Resolve implements Environment. Unknown paths resolve to Undefined.
func (m MapEnv) Resolve(path []string) (Value, error) {
	v, ok := m[strings.Join(path, ".")]
	if !ok {
		return Undefined(), nil
	}
	return v, nil
}

// Keys returns the sorted keys of the environment (useful for deterministic
// snapshot reporting).
func (m MapEnv) Keys() []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
