package ocl

import (
	"errors"
	"fmt"
)

// EvalError is an evaluation error (type mismatch, unknown operation, or a
// pre() reference without a pre-state environment).
type EvalError struct {
	Expr    Expr
	Message string
}

// Error implements the error interface.
func (e *EvalError) Error() string {
	return fmt.Sprintf("ocl: eval %s: %s", e.Expr, e.Message)
}

// ErrNoPreState is returned when pre(...)/@pre is used without a pre-state
// environment (e.g. inside a pre-condition).
var ErrNoPreState = errors.New("ocl: pre() used without a pre-state environment")

// Context carries the environments an evaluation reads from. Cur resolves
// navigation in the current state; Pre resolves old values for pre()/@pre
// and may be nil when no pre-state exists.
type Context struct {
	Cur Environment
	Pre Environment
}

// Eval evaluates the expression in the context, returning an OCL value.
// Navigation through missing resources yields Undefined (three-valued
// logic applies to the boolean connectives); genuine failures (environment
// errors, type mismatches) return a non-nil error.
func Eval(e Expr, ctx Context) (Value, error) {
	ev := evaluator{ctx: ctx, inPre: false}
	return ev.eval(e)
}

// EvalBool evaluates the expression and converts the result to a boolean
// verdict: true only if the expression evaluates to the Boolean true.
// Undefined — e.g. a formula over a resource that does not exist — counts
// as false, which is the conservative verdict for contract checking.
func EvalBool(e Expr, ctx Context) (bool, error) {
	v, err := Eval(e, ctx)
	if err != nil {
		return false, err
	}
	return v.Kind == KindBool && v.Bool, nil
}

type evaluator struct {
	ctx Context
	// inPre is true while evaluating inside pre(...) — navigation then
	// resolves against the pre-state environment.
	inPre bool
	// scopes holds iterator-variable bindings, innermost last.
	scopes []scopeBinding
}

type scopeBinding struct {
	name  string
	value Value
}

// lookupVar resolves an iterator variable from the innermost scope.
func (ev *evaluator) lookupVar(name string) (Value, bool) {
	for i := len(ev.scopes) - 1; i >= 0; i-- {
		if ev.scopes[i].name == name {
			return ev.scopes[i].value, true
		}
	}
	return Value{}, false
}

func (ev *evaluator) eval(e Expr) (Value, error) {
	switch n := e.(type) {
	case *Lit:
		return n.Value, nil
	case *Nav:
		// Iterator variables shadow navigation heads.
		if v, ok := ev.lookupVar(n.Path[0]); ok {
			if len(n.Path) > 1 {
				return Value{}, &EvalError{Expr: e, Message: fmt.Sprintf(
					"cannot navigate below iterator variable %q", n.Path[0])}
			}
			if n.AtPre {
				return Value{}, &EvalError{Expr: e, Message: "@pre on an iterator variable"}
			}
			return v, nil
		}
		env := ev.ctx.Cur
		if ev.inPre || n.AtPre {
			env = ev.ctx.Pre
			if env == nil {
				return Value{}, ErrNoPreState
			}
		}
		if env == nil {
			return Value{}, &EvalError{Expr: e, Message: "no environment"}
		}
		return env.Resolve(n.Path)
	case *PreExpr:
		if ev.ctx.Pre == nil {
			return Value{}, ErrNoPreState
		}
		saved := ev.inPre
		ev.inPre = true
		v, err := ev.eval(n.Expr)
		ev.inPre = saved
		return v, err
	case *Unary:
		return ev.evalUnary(n)
	case *Binary:
		return ev.evalBinary(n)
	case *CollOp:
		return ev.evalCollOp(n)
	case *IterOp:
		return ev.evalIterOp(n)
	default:
		return Value{}, &EvalError{Expr: e, Message: "unknown expression node"}
	}
}

// evalIterOp evaluates forAll/exists/select/reject/collect with the
// iterator variable bound per element. forAll over the empty collection is
// true and exists is false, per OCL.
func (ev *evaluator) evalIterOp(n *IterOp) (Value, error) {
	recv, err := ev.eval(n.Recv)
	if err != nil {
		return Value{}, err
	}
	elems := asCollection(recv)
	ev.scopes = append(ev.scopes, scopeBinding{name: n.Var})
	defer func() { ev.scopes = ev.scopes[:len(ev.scopes)-1] }()
	evalBody := func(elem Value) (Value, error) {
		ev.scopes[len(ev.scopes)-1].value = elem
		return ev.eval(n.Body)
	}
	switch n.Name {
	case "forAll", "exists":
		want := n.Name == "exists" // short-circuit value
		sawUndefined := false
		for _, elem := range elems {
			v, err := evalBody(elem)
			if err != nil {
				return Value{}, err
			}
			b, def, err := boolOf(n, v)
			if err != nil {
				return Value{}, err
			}
			if !def {
				sawUndefined = true
				continue
			}
			if b == want {
				return BoolVal(want), nil
			}
		}
		if sawUndefined {
			return Undefined(), nil
		}
		return BoolVal(!want), nil
	case "select", "reject":
		keepOn := n.Name == "select"
		out := make([]Value, 0, len(elems))
		for _, elem := range elems {
			v, err := evalBody(elem)
			if err != nil {
				return Value{}, err
			}
			b, def, err := boolOf(n, v)
			if err != nil {
				return Value{}, err
			}
			if def && b == keepOn {
				out = append(out, elem)
			}
		}
		return CollectionVal(out...), nil
	case "collect":
		out := make([]Value, 0, len(elems))
		for _, elem := range elems {
			v, err := evalBody(elem)
			if err != nil {
				return Value{}, err
			}
			out = append(out, v)
		}
		return CollectionVal(out...), nil
	default:
		return Value{}, &EvalError{Expr: n, Message: "unknown iterator operation " + n.Name}
	}
}

func (ev *evaluator) evalUnary(n *Unary) (Value, error) {
	v, err := ev.eval(n.Expr)
	if err != nil {
		return Value{}, err
	}
	switch n.Op {
	case OpNot:
		if v.IsUndefined() {
			return Undefined(), nil
		}
		if v.Kind != KindBool {
			return Value{}, &EvalError{Expr: n, Message: "not applied to " + v.Kind.String()}
		}
		return BoolVal(!v.Bool), nil
	case OpNeg:
		if v.IsUndefined() {
			return Undefined(), nil
		}
		if v.Kind != KindInt {
			return Value{}, &EvalError{Expr: n, Message: "negation applied to " + v.Kind.String()}
		}
		return IntVal(-v.Int), nil
	}
	return Value{}, &EvalError{Expr: n, Message: "unknown unary operator"}
}

func (ev *evaluator) evalBinary(n *Binary) (Value, error) {
	// Boolean connectives use OCL's three-valued (Kleene) semantics so
	// that formulas over missing resources behave sensibly; they also
	// short-circuit, which matters when navigation is backed by live REST
	// queries.
	switch n.Op {
	case OpAnd, OpOr, OpImplies, OpXor:
		return ev.evalLogic(n)
	}
	l, err := ev.eval(n.L)
	if err != nil {
		return Value{}, err
	}
	r, err := ev.eval(n.R)
	if err != nil {
		return Value{}, err
	}
	switch n.Op {
	case OpEq:
		return equalValues(l, r), nil
	case OpNe:
		eq := equalValues(l, r)
		if eq.IsUndefined() {
			return eq, nil
		}
		return BoolVal(!eq.Bool), nil
	case OpLt, OpLe, OpGt, OpGe:
		return compareValues(n, l, r)
	case OpAdd, OpSub, OpMul, OpDiv:
		return arithValues(n, l, r)
	}
	return Value{}, &EvalError{Expr: n, Message: "unknown binary operator"}
}

// evalLogic implements short-circuiting three-valued boolean connectives.
func (ev *evaluator) evalLogic(n *Binary) (Value, error) {
	l, err := ev.eval(n.L)
	if err != nil {
		return Value{}, err
	}
	lb, lDef, err := boolOf(n, l)
	if err != nil {
		return Value{}, err
	}
	// Short-circuit on a determined left operand.
	switch n.Op {
	case OpAnd:
		if lDef && !lb {
			return BoolVal(false), nil
		}
	case OpOr:
		if lDef && lb {
			return BoolVal(true), nil
		}
	case OpImplies:
		if lDef && !lb {
			return BoolVal(true), nil
		}
	}
	r, err := ev.eval(n.R)
	if err != nil {
		return Value{}, err
	}
	rb, rDef, err := boolOf(n, r)
	if err != nil {
		return Value{}, err
	}
	switch n.Op {
	case OpAnd:
		if rDef && !rb {
			return BoolVal(false), nil
		}
		if !lDef || !rDef {
			return Undefined(), nil
		}
		return BoolVal(lb && rb), nil
	case OpOr:
		if rDef && rb {
			return BoolVal(true), nil
		}
		if !lDef || !rDef {
			return Undefined(), nil
		}
		return BoolVal(lb || rb), nil
	case OpImplies:
		if rDef && rb {
			return BoolVal(true), nil
		}
		if !lDef || !rDef {
			return Undefined(), nil
		}
		return BoolVal(!lb || rb), nil
	case OpXor:
		if !lDef || !rDef {
			return Undefined(), nil
		}
		return BoolVal(lb != rb), nil
	}
	return Value{}, &EvalError{Expr: n, Message: "unknown logical operator"}
}

// boolOf extracts a boolean, reporting (value, defined, error). Undefined is
// (false, false, nil); non-boolean kinds are errors.
func boolOf(ctx Expr, v Value) (bool, bool, error) {
	switch v.Kind {
	case KindBool:
		return v.Bool, true, nil
	case KindUndefined:
		return false, false, nil
	default:
		return false, false, &EvalError{Expr: ctx, Message: "boolean operator applied to " + v.Kind.String()}
	}
}

// equalValues implements `=` with the documented coercions:
//
//   - Collection = scalar compares membership — the paper's
//     `user.id.groups='admin'` tests that 'admin' is among the user's
//     groups.
//   - Collection = Integer additionally compares the collection size when
//     the collection holds no integers (the paper writes
//     `project.volumes < quota_sets.volume` and `project.volumes->size()=0`
//     interchangeably for counts).
//   - Undefined = anything is Undefined (except Undefined = Undefined,
//     which is true).
func equalValues(l, r Value) Value {
	if l.IsUndefined() && r.IsUndefined() {
		return BoolVal(true)
	}
	if l.IsUndefined() || r.IsUndefined() {
		return Undefined()
	}
	// Membership coercion for collection vs scalar.
	if l.Kind == KindCollection && r.Kind != KindCollection {
		return collectionEqScalar(l, r)
	}
	if r.Kind == KindCollection && l.Kind != KindCollection {
		return collectionEqScalar(r, l)
	}
	if l.Kind != r.Kind {
		return BoolVal(false)
	}
	return BoolVal(l.Equal(r))
}

func collectionEqScalar(coll, scalar Value) Value {
	for _, e := range coll.Elems {
		if e.Equal(scalar) {
			return BoolVal(true)
		}
	}
	// Count coercion: an all-non-integer collection compared to an integer
	// compares its size.
	if scalar.Kind == KindInt {
		for _, e := range coll.Elems {
			if e.Kind == KindInt {
				return BoolVal(false)
			}
		}
		return BoolVal(len(coll.Elems) == scalar.Int)
	}
	return BoolVal(false)
}

// intOf coerces a value to an integer for ordering/arithmetic: integers map
// to themselves and collections coerce to their size (the paper compares
// `project.volumes` — a collection — against quota integers directly).
func intOf(v Value) (int, bool) {
	switch v.Kind {
	case KindInt:
		return v.Int, true
	case KindCollection:
		return len(v.Elems), true
	default:
		return 0, false
	}
}

func compareValues(n *Binary, l, r Value) (Value, error) {
	if l.IsUndefined() || r.IsUndefined() {
		return Undefined(), nil
	}
	if l.Kind == KindString && r.Kind == KindString {
		return BoolVal(compareOrd(n.Op, stringCmp(l.Str, r.Str))), nil
	}
	li, lok := intOf(l)
	ri, rok := intOf(r)
	if !lok || !rok {
		return Value{}, &EvalError{Expr: n, Message: fmt.Sprintf(
			"cannot order %s and %s", l.Kind, r.Kind)}
	}
	return BoolVal(compareOrd(n.Op, intCmp(li, ri))), nil
}

func intCmp(a, b int) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func stringCmp(a, b string) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func compareOrd(op BinOp, cmp int) bool {
	switch op {
	case OpLt:
		return cmp < 0
	case OpLe:
		return cmp <= 0
	case OpGt:
		return cmp > 0
	case OpGe:
		return cmp >= 0
	}
	return false
}

func arithValues(n *Binary, l, r Value) (Value, error) {
	if l.IsUndefined() || r.IsUndefined() {
		return Undefined(), nil
	}
	li, lok := intOf(l)
	ri, rok := intOf(r)
	if !lok || !rok {
		return Value{}, &EvalError{Expr: n, Message: fmt.Sprintf(
			"arithmetic on %s and %s", l.Kind, r.Kind)}
	}
	switch n.Op {
	case OpAdd:
		return IntVal(li + ri), nil
	case OpSub:
		return IntVal(li - ri), nil
	case OpMul:
		return IntVal(li * ri), nil
	case OpDiv:
		if ri == 0 {
			return Undefined(), nil
		}
		return IntVal(li / ri), nil
	}
	return Value{}, &EvalError{Expr: n, Message: "unknown arithmetic operator"}
}

// asCollection coerces a value to collection elements. Scalars become
// singleton collections (OCL's implicit collect); Undefined becomes the
// empty collection, which is how "resource not found" reads as size 0.
func asCollection(v Value) []Value {
	switch v.Kind {
	case KindCollection:
		return v.Elems
	case KindUndefined:
		return nil
	default:
		return []Value{v}
	}
}

func (ev *evaluator) evalCollOp(n *CollOp) (Value, error) {
	recv, err := ev.eval(n.Recv)
	if err != nil {
		return Value{}, err
	}
	elems := asCollection(recv)
	needArgs := func(k int) error {
		if len(n.Args) != k {
			return &EvalError{Expr: n, Message: fmt.Sprintf(
				"%s expects %d argument(s), got %d", n.Name, k, len(n.Args))}
		}
		return nil
	}
	switch n.Name {
	case "size":
		if err := needArgs(0); err != nil {
			return Value{}, err
		}
		return IntVal(len(elems)), nil
	case "isEmpty":
		if err := needArgs(0); err != nil {
			return Value{}, err
		}
		return BoolVal(len(elems) == 0), nil
	case "notEmpty":
		if err := needArgs(0); err != nil {
			return Value{}, err
		}
		return BoolVal(len(elems) > 0), nil
	case "includes", "excludes", "count":
		if err := needArgs(1); err != nil {
			return Value{}, err
		}
		arg, err := ev.eval(n.Args[0])
		if err != nil {
			return Value{}, err
		}
		count := 0
		for _, e := range elems {
			if e.Equal(arg) {
				count++
			}
		}
		switch n.Name {
		case "includes":
			return BoolVal(count > 0), nil
		case "excludes":
			return BoolVal(count == 0), nil
		default:
			return IntVal(count), nil
		}
	case "sum":
		if err := needArgs(0); err != nil {
			return Value{}, err
		}
		total := 0
		for _, e := range elems {
			i, ok := intOf(e)
			if !ok {
				return Value{}, &EvalError{Expr: n, Message: "sum over non-integer element"}
			}
			total += i
		}
		return IntVal(total), nil
	case "first":
		if err := needArgs(0); err != nil {
			return Value{}, err
		}
		if len(elems) == 0 {
			return Undefined(), nil
		}
		return elems[0], nil
	default:
		return Value{}, &EvalError{Expr: n, Message: "unknown collection operation " + n.Name}
	}
}
