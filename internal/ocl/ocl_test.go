package ocl

import (
	"errors"
	"strings"
	"testing"
)

func env() MapEnv {
	return MapEnv{
		"project.id":        StringVal("4"),
		"project.volumes":   CollectionVal(StringVal("v1"), StringVal("v2")),
		"quota_sets.volume": IntVal(10),
		"volume.status":     StringVal("available"),
		"user.id.groups":    StringsVal("admin", "member"),
	}
}

func evalSrc(t *testing.T, src string, ctx Context) Value {
	t.Helper()
	e, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	v, err := Eval(e, ctx)
	if err != nil {
		t.Fatalf("Eval(%q): %v", src, err)
	}
	return v
}

func TestLexBasics(t *testing.T) {
	toks, err := Lex("project.volumes->size() >= 1 and x <> 'in-use'")
	if err != nil {
		t.Fatal(err)
	}
	kinds := make([]TokenKind, 0, len(toks))
	for _, tok := range toks {
		kinds = append(kinds, tok.Kind)
	}
	want := []TokenKind{
		TokIdent, TokDot, TokIdent, TokArrow, TokIdent, TokLParen, TokRParen,
		TokGe, TokInt, TokAnd, TokIdent, TokNe, TokString, TokEOF,
	}
	if len(kinds) != len(want) {
		t.Fatalf("token kinds = %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("token %d = %v, want %v (all: %v)", i, kinds[i], want[i], kinds)
		}
	}
}

func TestLexImpliesSpellings(t *testing.T) {
	for _, src := range []string{"a => b", "a ==> b", "a implies b"} {
		toks, err := Lex(src)
		if err != nil {
			t.Fatalf("Lex(%q): %v", src, err)
		}
		if toks[1].Kind != TokImplies {
			t.Errorf("Lex(%q)[1] = %v, want implies", src, toks[1].Kind)
		}
	}
}

func TestLexPreKeywordOnlyBeforeParen(t *testing.T) {
	toks, err := Lex("pre(x) and pre.y")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != TokPre {
		t.Errorf("pre( should lex as TokPre, got %v", toks[0].Kind)
	}
	// "pre.y": pre must be a plain identifier.
	var after []Token
	for i, tok := range toks {
		if tok.Kind == TokAnd {
			after = toks[i+1:]
			break
		}
	}
	if len(after) == 0 || after[0].Kind != TokIdent || after[0].Text != "pre" {
		t.Errorf("bare pre should lex as identifier, got %+v", after)
	}
}

func TestLexErrors(t *testing.T) {
	// "\xc2x" regresses an invalid-UTF-8 lead byte: widened to a rune it
	// reads as a letter, and the lexer once looped forever emitting empty
	// identifiers without advancing.
	for _, src := range []string{"'unterminated", "a ? b", "\xc2x", "a->\xc2xists(g | g)", "\xff"} {
		if _, err := Lex(src); err == nil {
			t.Errorf("Lex(%q): want error", src)
		} else {
			var serr *SyntaxError
			if !errors.As(err, &serr) {
				t.Errorf("Lex(%q): error is not *SyntaxError: %v", src, err)
			}
		}
	}
}

func TestParsePrecedence(t *testing.T) {
	tests := []struct {
		src, want string
	}{
		{"a and b or c", "a and b or c"},
		{"a or b and c", "a or b and c"},
		{"(a or b) and c", "(a or b) and c"},
		{"a = 1 and b = 2", "a = 1 and b = 2"},
		{"not a and b", "not a and b"},
		{"not (a and b)", "not (a and b)"},
		{"a implies b implies c", "a implies b implies c"},
		{"1 + 2 * 3 = 7", "1 + 2 * 3 = 7"},
		{"(1 + 2) * 3 = 9", "(1 + 2) * 3 = 9"},
		{"x->size() = 1", "x->size() = 1"},
		{"pre(x->size()) < x->size()", "pre(x->size()) < x->size()"},
		{"x@pre = 3", "x@pre = 3"},
		{"a.b.c->includes('q')", "a.b.c->includes('q')"},
	}
	for _, tt := range tests {
		e, err := Parse(tt.src)
		if err != nil {
			t.Errorf("Parse(%q): %v", tt.src, err)
			continue
		}
		if got := e.String(); got != tt.want {
			t.Errorf("Parse(%q).String() = %q, want %q", tt.src, got, tt.want)
		}
	}
}

func TestParseEmptyIsTrue(t *testing.T) {
	for _, src := range []string{"", "   ", "\t\n"} {
		e, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		v, err := Eval(e, Context{Cur: MapEnv{}})
		if err != nil || v.Kind != KindBool || !v.Bool {
			t.Errorf("Parse(%q) should evaluate true, got %v err=%v", src, v, err)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{
		"a and",
		"->size()",
		"a->size",
		"(a",
		"a b",
		"pre()",
		"1@pre",
		"a@post",
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q): want error", src)
		}
	}
}

func TestRoundTripParsePrint(t *testing.T) {
	srcs := []string{
		"project.id->size() = 1 and project.volumes->size() = 0",
		"project.volumes < quota_sets.volume and volume.status <> 'in-use'",
		"user.id.groups = 'admin' or user.id.groups = 'member'",
		"project.volumes->size() < pre(project.volumes->size())",
		"not (a and b) implies c xor d",
	}
	for _, src := range srcs {
		e1, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		printed := e1.String()
		e2, err := Parse(printed)
		if err != nil {
			t.Fatalf("reparse of %q (printed %q): %v", src, printed, err)
		}
		if e2.String() != printed {
			t.Errorf("print/parse not stable: %q -> %q -> %q", src, printed, e2.String())
		}
	}
}

func TestEvalPaperInvariants(t *testing.T) {
	ctx := Context{Cur: env()}
	tests := []struct {
		src  string
		want bool
	}{
		// Paper Section IV.B invariants.
		{"project.id->size()=1 and project.volumes->size()=0", false},
		{"project.id->size()=1 and project.volumes->size()>=1", true},
		// Quota guard: collection coerces to its size for ordering.
		{"project.volumes < quota_sets.volume", true},
		{"project.volumes >= quota_sets.volume", false},
		// Status and group membership (collection = scalar is membership).
		{"volume.status <> 'in-use'", true},
		{"user.id.groups='admin'", true},
		{"user.id.groups='business_analyst'", false},
		{"user.id.groups->includes('member')", true},
		{"user.id.groups->excludes('member')", false},
		// Boolean algebra over it all.
		{"project.id->size()=1 and project.volumes->size()>=1 and " +
			"project.volumes < quota_sets.volume and volume.status <> 'in-use' " +
			"and user.id.groups='admin'", true},
	}
	for _, tt := range tests {
		e, err := Parse(tt.src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", tt.src, err)
		}
		got, err := EvalBool(e, ctx)
		if err != nil {
			t.Fatalf("EvalBool(%q): %v", tt.src, err)
		}
		if got != tt.want {
			t.Errorf("EvalBool(%q) = %v, want %v", tt.src, got, tt.want)
		}
	}
}

func TestEvalUndefinedSemantics(t *testing.T) {
	ctx := Context{Cur: MapEnv{"present": IntVal(1)}}
	tests := []struct {
		src  string
		want Value
	}{
		// Missing resource: size 0, isEmpty true.
		{"missing->size()", IntVal(0)},
		{"missing->isEmpty()", BoolVal(true)},
		{"missing->notEmpty()", BoolVal(false)},
		// Comparisons with undefined are undefined.
		{"missing = 1", Undefined()},
		{"missing < 1", Undefined()},
		// Kleene logic: short-circuiting sides dominate.
		{"false and missing = 1", BoolVal(false)},
		{"true or missing = 1", BoolVal(true)},
		{"missing = 1 or true", BoolVal(true)},
		{"missing = 1 and false", BoolVal(false)},
		{"missing = 1 implies present = 1", BoolVal(true)},
		{"false implies missing = 1", BoolVal(true)},
		// Undefined propagates when undetermined.
		{"missing = 1 and true", Undefined()},
		{"not (missing = 1)", Undefined()},
		// Division by zero is undefined.
		{"present / 0", Undefined()},
	}
	for _, tt := range tests {
		got := evalSrc(t, tt.src, ctx)
		if !got.Equal(tt.want) {
			t.Errorf("Eval(%q) = %v, want %v", tt.src, got, tt.want)
		}
	}
}

func TestEvalBoolTreatsUndefinedAsFalse(t *testing.T) {
	e := MustParse("missing = 1")
	ok, err := EvalBool(e, Context{Cur: MapEnv{}})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("undefined formula should produce false verdict")
	}
}

func TestEvalPreState(t *testing.T) {
	pre := MapEnv{"project.volumes": CollectionVal(StringVal("a"), StringVal("b"))}
	cur := MapEnv{"project.volumes": CollectionVal(StringVal("a"))}
	ctx := Context{Cur: cur, Pre: pre}

	tests := []struct {
		src  string
		want bool
	}{
		{"project.volumes->size() < pre(project.volumes->size())", true},
		{"project.volumes->size() = pre(project.volumes->size()) - 1", true},
		{"project.volumes@pre->size() = 2", true},
		{"pre(project.volumes)->size() = 2", true},
	}
	for _, tt := range tests {
		e, err := Parse(tt.src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", tt.src, err)
		}
		got, err := EvalBool(e, ctx)
		if err != nil {
			t.Fatalf("EvalBool(%q): %v", tt.src, err)
		}
		if got != tt.want {
			t.Errorf("EvalBool(%q) = %v, want %v", tt.src, got, tt.want)
		}
	}
}

func TestEvalPreWithoutPreState(t *testing.T) {
	e := MustParse("pre(x) = 1")
	_, err := Eval(e, Context{Cur: MapEnv{}})
	if !errors.Is(err, ErrNoPreState) {
		t.Errorf("want ErrNoPreState, got %v", err)
	}
}

func TestEvalTypeErrors(t *testing.T) {
	ctx := Context{Cur: MapEnv{
		"s": StringVal("x"),
		"b": BoolVal(true),
	}}
	for _, src := range []string{
		"s + 1",
		"not s",
		"b < 1",
		"s->sum()",
		"x->frobnicate()",
		"x->size(1)",
	} {
		e, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		if _, err := Eval(e, ctx); err == nil {
			t.Errorf("Eval(%q): want error", src)
		}
	}
}

func TestCollectionOps(t *testing.T) {
	ctx := Context{Cur: MapEnv{
		"nums":  CollectionVal(IntVal(1), IntVal(2), IntVal(2)),
		"one":   IntVal(7),
		"empty": CollectionVal(),
	}}
	tests := []struct {
		src  string
		want Value
	}{
		{"nums->size()", IntVal(3)},
		{"nums->sum()", IntVal(5)},
		{"nums->count(2)", IntVal(2)},
		{"nums->includes(1)", BoolVal(true)},
		{"nums->excludes(9)", BoolVal(true)},
		{"nums->first()", IntVal(1)},
		{"empty->first()", Undefined()},
		// Scalars coerce to singleton collections.
		{"one->size()", IntVal(1)},
		{"one->sum()", IntVal(7)},
		{"one->includes(7)", BoolVal(true)},
	}
	for _, tt := range tests {
		got := evalSrc(t, tt.src, ctx)
		if !got.Equal(tt.want) {
			t.Errorf("Eval(%q) = %v, want %v", tt.src, got, tt.want)
		}
	}
}

func TestNavPaths(t *testing.T) {
	e := MustParse("project.id->size()=1 and project.volumes < quota_sets.volume " +
		"and pre(project.volumes->size()) > 0 and project.id = '4'")
	got := NavPaths(e)
	want := []string{"project.id", "project.volumes", "quota_sets.volume"}
	if len(got) != len(want) {
		t.Fatalf("NavPaths = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("NavPaths = %v, want %v", got, want)
		}
	}
}

func TestUsesPre(t *testing.T) {
	if UsesPre(MustParse("a = 1 and b = 2")) {
		t.Error("no pre in plain formula")
	}
	if !UsesPre(MustParse("a < pre(a)")) {
		t.Error("pre() not detected")
	}
	if !UsesPre(MustParse("a@pre = 1")) {
		t.Error("@pre not detected")
	}
}

func TestCheckVocabulary(t *testing.T) {
	known := func(path []string) bool {
		return strings.Join(path, ".") != "bogus.path"
	}
	if err := CheckVocabulary(MustParse("a.b = 1"), known); err != nil {
		t.Errorf("known path rejected: %v", err)
	}
	if err := CheckVocabulary(MustParse("a = 1 and bogus.path = 2"), known); err == nil {
		t.Error("unknown path accepted")
	}
}

func TestCheckNoPre(t *testing.T) {
	if err := CheckNoPre(MustParse("a = 1")); err != nil {
		t.Errorf("plain formula rejected: %v", err)
	}
	if err := CheckNoPre(MustParse("a = pre(a)")); err == nil {
		t.Error("pre() accepted in pre-condition position")
	}
}

func TestComplexity(t *testing.T) {
	if got := Complexity(MustParse("a = 1")); got != 3 {
		t.Errorf("Complexity(a = 1) = %d, want 3", got)
	}
	if got := Complexity(MustParse("a")); got != 1 {
		t.Errorf("Complexity(a) = %d, want 1", got)
	}
}

func TestBuilders(t *testing.T) {
	e := And(
		&Binary{Op: OpEq, L: SizeOf("project.id"), R: IntLit(1)},
		&Binary{Op: OpEq, L: SizeOf("project.volumes"), R: IntLit(0)},
	)
	want := "project.id->size() = 1 and project.volumes->size() = 0"
	if e.String() != want {
		t.Errorf("builder output = %q, want %q", e.String(), want)
	}
	if Or().String() != "false" {
		t.Errorf("empty Or should be false literal")
	}
	if And().String() != "true" {
		t.Errorf("empty And should be true literal")
	}
	if got := Implies(StrLit("a"), IntLit(1)).String(); got != "'a' implies 1" {
		t.Errorf("Implies = %q", got)
	}
}

func TestValueString(t *testing.T) {
	tests := []struct {
		v    Value
		want string
	}{
		{BoolVal(true), "true"},
		{IntVal(42), "42"},
		{StringVal("in-use"), "'in-use'"},
		{Undefined(), "OclUndefined"},
		{CollectionVal(IntVal(1), StringVal("a")), "Set{1, 'a'}"},
	}
	for _, tt := range tests {
		if got := tt.v.String(); got != tt.want {
			t.Errorf("Value.String() = %q, want %q", got, tt.want)
		}
	}
}

func TestValueSize(t *testing.T) {
	if Undefined().Size() != 0 {
		t.Error("undefined size should be 0")
	}
	if IntVal(3).Size() != 1 {
		t.Error("scalar size should be 1")
	}
	if CollectionVal(IntVal(1), IntVal(2)).Size() != 2 {
		t.Error("collection size should be 2")
	}
}

func TestMapEnvKeys(t *testing.T) {
	m := MapEnv{"b": IntVal(1), "a": IntVal(2)}
	keys := m.Keys()
	if len(keys) != 2 || keys[0] != "a" || keys[1] != "b" {
		t.Errorf("Keys = %v, want [a b]", keys)
	}
}
