package ocl

import (
	"strconv"
	"strings"
)

// Expr is an OCL expression AST node. Implementations are Lit, Nav, Unary,
// Binary, CollOp and PreExpr. Every node renders itself back to canonical
// OCL source via String().
type Expr interface {
	// String renders canonical OCL source for the node.
	String() string
	// isExpr restricts implementations to this package.
	isExpr()
}

// BinOp enumerates binary operators.
type BinOp int

// Binary operators in increasing precedence groups.
const (
	OpImplies BinOp = iota + 1
	OpOr
	OpXor
	OpAnd
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpAdd
	OpSub
	OpMul
	OpDiv
)

// String renders the operator in OCL syntax.
func (op BinOp) String() string {
	switch op {
	case OpImplies:
		return "implies"
	case OpOr:
		return "or"
	case OpXor:
		return "xor"
	case OpAnd:
		return "and"
	case OpEq:
		return "="
	case OpNe:
		return "<>"
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	case OpAdd:
		return "+"
	case OpSub:
		return "-"
	case OpMul:
		return "*"
	case OpDiv:
		return "/"
	}
	return "?"
}

// precedence returns the binding strength of the operator (higher binds
// tighter).
func (op BinOp) precedence() int {
	switch op {
	case OpImplies:
		return 1
	case OpOr, OpXor:
		return 2
	case OpAnd:
		return 3
	case OpEq, OpNe, OpLt, OpLe, OpGt, OpGe:
		return 4
	case OpAdd, OpSub:
		return 5
	case OpMul, OpDiv:
		return 6
	}
	return 0
}

// Lit is a literal: Boolean, Integer or String.
type Lit struct {
	Value Value
}

func (*Lit) isExpr() {}

// String renders the literal.
func (l *Lit) String() string { return l.Value.String() }

// Nav is a navigation path over addressable resources, e.g.
// project.volumes or user.id.groups. AtPre marks the OCL `@pre` suffix,
// which evaluates the path in the pre-state.
type Nav struct {
	Path  []string
	AtPre bool
}

func (*Nav) isExpr() {}

// String renders the navigation path.
func (n *Nav) String() string {
	s := strings.Join(n.Path, ".")
	if n.AtPre {
		s += "@pre"
	}
	return s
}

// UnOp enumerates unary operators.
type UnOp int

// Unary operators.
const (
	OpNot UnOp = iota + 1
	OpNeg
)

// Unary is a unary operation (not e, -e).
type Unary struct {
	Op   UnOp
	Expr Expr
}

func (*Unary) isExpr() {}

// String renders the unary expression.
func (u *Unary) String() string {
	if u.Op == OpNot {
		return "not " + parenthesize(u.Expr, 7)
	}
	return "-" + parenthesize(u.Expr, 7)
}

// Binary is a binary operation.
type Binary struct {
	Op   BinOp
	L, R Expr
}

func (*Binary) isExpr() {}

// String renders the binary expression with minimal parentheses.
func (b *Binary) String() string {
	p := b.Op.precedence()
	// Left-associative: right operand needs parens at equal precedence.
	return parenthesize(b.L, p) + " " + b.Op.String() + " " + parenthesize(b.R, p+1)
}

// parenthesize renders e, wrapping in parentheses when e binds looser than
// the context precedence.
func parenthesize(e Expr, ctx int) string {
	if b, ok := e.(*Binary); ok && b.Op.precedence() < ctx {
		return "(" + b.String() + ")"
	}
	return e.String()
}

// CollOp is a collection operation applied with the arrow syntax,
// e.g. project.volumes->size() or groups->includes('admin').
type CollOp struct {
	Recv Expr
	// Name is the operation name: size, isEmpty, notEmpty, includes,
	// excludes, count, sum, first.
	Name string
	Args []Expr
}

func (*CollOp) isExpr() {}

// String renders the collection operation.
func (c *CollOp) String() string {
	args := make([]string, len(c.Args))
	for i, a := range c.Args {
		args[i] = a.String()
	}
	return parenthesize(c.Recv, 7) + "->" + c.Name + "(" + strings.Join(args, ", ") + ")"
}

// IterOp is an OCL iterator expression over a collection with a bound
// variable, e.g. user.id.groups->forAll(g | g <> 'banned') or
// project.volumes->select(v | v = volume.id)->size(). Supported iterators:
// forAll, exists, select, reject, collect.
type IterOp struct {
	Recv Expr
	// Name is the iterator name.
	Name string
	// Var is the bound iterator variable.
	Var string
	// Body is evaluated once per element with Var bound.
	Body Expr
}

func (*IterOp) isExpr() {}

// String renders the iterator expression.
func (it *IterOp) String() string {
	return parenthesize(it.Recv, 7) + "->" + it.Name + "(" + it.Var + " | " + it.Body.String() + ")"
}

// iterNames are the supported iterator operations.
var iterNames = map[string]bool{
	"forAll":  true,
	"exists":  true,
	"select":  true,
	"reject":  true,
	"collect": true,
}

// PreExpr is the paper's pre(expr) old-value operator: expr is evaluated in
// the pre-state environment (the snapshot taken before the method ran).
type PreExpr struct {
	Expr Expr
}

func (*PreExpr) isExpr() {}

// String renders the pre() wrapper.
func (p *PreExpr) String() string { return "pre(" + p.Expr.String() + ")" }

// Walk visits every node of the expression tree in depth-first pre-order.
// If fn returns false the node's children are skipped.
func Walk(e Expr, fn func(Expr) bool) {
	if e == nil || !fn(e) {
		return
	}
	switch n := e.(type) {
	case *Unary:
		Walk(n.Expr, fn)
	case *Binary:
		Walk(n.L, fn)
		Walk(n.R, fn)
	case *CollOp:
		Walk(n.Recv, fn)
		for _, a := range n.Args {
			Walk(a, fn)
		}
	case *IterOp:
		Walk(n.Recv, fn)
		Walk(n.Body, fn)
	case *PreExpr:
		Walk(n.Expr, fn)
	}
}

// NavPaths returns the distinct navigation paths referenced by the
// expression, as dotted strings, in first-occurrence order. Iterator
// variables are lexically scoped and excluded. The monitor uses this to
// decide which resource-state values to snapshot before forwarding a
// request (the paper: "we do not need to save the copy of the whole
// resource(s) but only the values that constitute the guards and invariants").
func NavPaths(e Expr) []string {
	var out []string
	seen := make(map[string]bool)
	collectNavPaths(e, map[string]int{}, func(key string) {
		if !seen[key] {
			seen[key] = true
			out = append(out, key)
		}
	})
	return out
}

// collectNavPaths walks the tree carrying the set of bound iterator
// variables, reporting each free navigation path.
func collectNavPaths(e Expr, bound map[string]int, report func(string)) {
	switch n := e.(type) {
	case *Nav:
		if bound[n.Path[0]] == 0 {
			report(strings.Join(n.Path, "."))
		}
	case *Unary:
		collectNavPaths(n.Expr, bound, report)
	case *Binary:
		collectNavPaths(n.L, bound, report)
		collectNavPaths(n.R, bound, report)
	case *CollOp:
		collectNavPaths(n.Recv, bound, report)
		for _, a := range n.Args {
			collectNavPaths(a, bound, report)
		}
	case *IterOp:
		collectNavPaths(n.Recv, bound, report)
		bound[n.Var]++
		collectNavPaths(n.Body, bound, report)
		bound[n.Var]--
	case *PreExpr:
		collectNavPaths(n.Expr, bound, report)
	}
}

// UsesPre reports whether the expression contains a pre(...) or @pre
// old-value reference. Pre-conditions must not use old values; the contract
// generator validates this.
func UsesPre(e Expr) bool {
	found := false
	Walk(e, func(n Expr) bool {
		switch nn := n.(type) {
		case *PreExpr:
			found = true
			return false
		case *Nav:
			if nn.AtPre {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// And returns the conjunction of the expressions, or the true literal for
// an empty list. Single-element lists return the element unchanged.
func And(exprs ...Expr) Expr { return fold(OpAnd, exprs) }

// Or returns the disjunction of the expressions, or the false literal for
// an empty list.
func Or(exprs ...Expr) Expr {
	if len(exprs) == 0 {
		return &Lit{Value: BoolVal(false)}
	}
	return fold(OpOr, exprs)
}

// Implies returns l implies r.
func Implies(l, r Expr) Expr { return &Binary{Op: OpImplies, L: l, R: r} }

// True returns the true literal.
func True() Expr { return &Lit{Value: BoolVal(true)} }

func fold(op BinOp, exprs []Expr) Expr {
	if len(exprs) == 0 {
		return True()
	}
	acc := exprs[0]
	for _, e := range exprs[1:] {
		acc = &Binary{Op: op, L: acc, R: e}
	}
	return acc
}

// IntLit returns an integer literal expression.
func IntLit(i int) Expr { return &Lit{Value: IntVal(i)} }

// StrLit returns a string literal expression.
func StrLit(s string) Expr { return &Lit{Value: StringVal(s)} }

// NavOf returns a navigation expression over the dotted path.
func NavOf(dotted string) Expr { return &Nav{Path: strings.Split(dotted, ".")} }

// SizeOf returns `path->size()` for the dotted navigation path.
func SizeOf(dotted string) Expr { return &CollOp{Recv: NavOf(dotted), Name: "size"} }

// unquoteInt parses an integer literal token.
func unquoteInt(text string) (int, bool) {
	n, err := strconv.Atoi(text)
	return n, err == nil
}
