package ocl

import "fmt"

// Parse parses an OCL expression from source. The empty (or all-whitespace)
// string parses to the true literal, matching the convention that omitted
// guards/invariants mean "true".
func Parse(src string) (Expr, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{src: src, toks: toks}
	if p.peek().Kind == TokEOF {
		return True(), nil
	}
	e, err := p.parseExpr(0)
	if err != nil {
		return nil, err
	}
	if tok := p.peek(); tok.Kind != TokEOF {
		return nil, p.errf(tok.Pos, "unexpected %s after expression", tok.Kind)
	}
	return e, nil
}

// MustParse parses src and panics on error. For use in tests and in
// programmatically-built models with constant expressions.
func MustParse(src string) Expr {
	e, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return e
}

type parser struct {
	src  string
	toks []Token
	pos  int
}

func (p *parser) peek() Token { return p.toks[p.pos] }

func (p *parser) advance() Token {
	tok := p.toks[p.pos]
	if tok.Kind != TokEOF {
		p.pos++
	}
	return tok
}

func (p *parser) expect(kind TokenKind) (Token, error) {
	tok := p.peek()
	if tok.Kind != kind {
		return Token{}, p.errf(tok.Pos, "expected %s, got %s", kind, tok.Kind)
	}
	return p.advance(), nil
}

func (p *parser) errf(pos int, format string, args ...any) error {
	return &SyntaxError{Pos: pos, Message: fmt.Sprintf(format, args...), Src: p.src}
}

// binOpFor maps a token to a binary operator, if it is one.
func binOpFor(kind TokenKind) (BinOp, bool) {
	switch kind {
	case TokImplies:
		return OpImplies, true
	case TokOr:
		return OpOr, true
	case TokXor:
		return OpXor, true
	case TokAnd:
		return OpAnd, true
	case TokEq:
		return OpEq, true
	case TokNe:
		return OpNe, true
	case TokLt:
		return OpLt, true
	case TokLe:
		return OpLe, true
	case TokGt:
		return OpGt, true
	case TokGe:
		return OpGe, true
	case TokPlus:
		return OpAdd, true
	case TokMinus:
		return OpSub, true
	case TokStar:
		return OpMul, true
	case TokSlash:
		return OpDiv, true
	}
	return 0, false
}

// parseExpr is a precedence-climbing expression parser. minPrec is the
// minimum operator precedence to consume.
func (p *parser) parseExpr(minPrec int) (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		op, ok := binOpFor(p.peek().Kind)
		if !ok || op.precedence() < minPrec {
			return left, nil
		}
		p.advance()
		// Left-associative: parse the right side at one level tighter.
		right, err := p.parseExpr(op.precedence() + 1)
		if err != nil {
			return nil, err
		}
		left = &Binary{Op: op, L: left, R: right}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	switch tok := p.peek(); tok.Kind {
	case TokNot:
		p.advance()
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: OpNot, Expr: e}, nil
	case TokMinus:
		p.advance()
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: OpNeg, Expr: e}, nil
	}
	return p.parsePostfix()
}

// parsePostfix parses a primary expression followed by any chain of
// `->op(args)` collection operations and `@pre` suffixes.
func (p *parser) parsePostfix() (Expr, error) {
	e, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		switch p.peek().Kind {
		case TokArrow:
			p.advance()
			name, err := p.expect(TokIdent)
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokLParen); err != nil {
				return nil, err
			}
			// Iterator form: ->name(var | body).
			if p.peek().Kind == TokIdent && p.pos+1 < len(p.toks) && p.toks[p.pos+1].Kind == TokBar {
				if !iterNames[name.Text] {
					return nil, p.errf(name.Pos, "unknown iterator operation %q", name.Text)
				}
				varTok := p.advance()
				p.advance() // the bar
				body, err := p.parseExpr(0)
				if err != nil {
					return nil, err
				}
				if _, err := p.expect(TokRParen); err != nil {
					return nil, err
				}
				e = &IterOp{Recv: e, Name: name.Text, Var: varTok.Text, Body: body}
				continue
			}
			if iterNames[name.Text] {
				return nil, p.errf(name.Pos, "iterator %q requires a variable: ->%s(v | ...)",
					name.Text, name.Text)
			}
			var args []Expr
			if p.peek().Kind != TokRParen {
				for {
					arg, err := p.parseExpr(0)
					if err != nil {
						return nil, err
					}
					args = append(args, arg)
					if p.peek().Kind != TokComma {
						break
					}
					p.advance()
				}
			}
			if _, err := p.expect(TokRParen); err != nil {
				return nil, err
			}
			e = &CollOp{Recv: e, Name: name.Text, Args: args}
		case TokAt:
			// `@pre` suffix on a navigation path.
			p.advance()
			word, err := p.expect(TokIdent)
			if err != nil {
				return nil, err
			}
			if word.Text != "pre" {
				return nil, p.errf(word.Pos, "expected 'pre' after '@', got %q", word.Text)
			}
			nav, ok := e.(*Nav)
			if !ok {
				return nil, p.errf(word.Pos, "@pre may only follow a navigation path")
			}
			nav.AtPre = true
		default:
			return e, nil
		}
	}
}

func (p *parser) parsePrimary() (Expr, error) {
	switch tok := p.peek(); tok.Kind {
	case TokLParen:
		p.advance()
		e, err := p.parseExpr(0)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		return e, nil
	case TokPre:
		p.advance()
		if _, err := p.expect(TokLParen); err != nil {
			return nil, err
		}
		inner, err := p.parseExpr(0)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		return &PreExpr{Expr: inner}, nil
	case TokTrue:
		p.advance()
		return &Lit{Value: BoolVal(true)}, nil
	case TokFalse:
		p.advance()
		return &Lit{Value: BoolVal(false)}, nil
	case TokInt:
		p.advance()
		n, ok := unquoteInt(tok.Text)
		if !ok {
			return nil, p.errf(tok.Pos, "invalid integer literal %q", tok.Text)
		}
		return &Lit{Value: IntVal(n)}, nil
	case TokString:
		p.advance()
		return &Lit{Value: StringVal(tok.Text)}, nil
	case TokIdent:
		p.advance()
		path := []string{tok.Text}
		for p.peek().Kind == TokDot {
			p.advance()
			seg, err := p.expect(TokIdent)
			if err != nil {
				return nil, err
			}
			path = append(path, seg.Text)
		}
		return &Nav{Path: path}, nil
	default:
		return nil, p.errf(tok.Pos, "unexpected %s", tok.Kind)
	}
}
