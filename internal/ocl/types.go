package ocl

import (
	"fmt"
	"strings"
)

// This file implements static type inference over OCL expressions. The
// rules mirror the dynamic semantics of eval.go — including the paper's
// documented coercions (collections order and add as their size, collection
// = scalar is membership) — so that an expression the checker accepts
// cannot raise an EvalError for a type reason at monitoring time, and an
// expression it rejects would raise one on some input. The analyzer
// (package analysis) runs the checker against a TypeEnv derived from the
// resource model; tests can use MapTypeEnv.

// TypeKind enumerates the static types.
type TypeKind int

// Static type kinds. TAny is the unknown type: paths outside the model
// vocabulary (e.g. the `user` authorization context) and values the
// checker cannot pin down. TAny is compatible with everything — the
// checker only reports definite errors.
const (
	TAny TypeKind = iota
	TBool
	TInt
	TString
	TColl
)

// String returns the OCL-facing name of the kind.
func (k TypeKind) String() string {
	switch k {
	case TAny:
		return "OclAny"
	case TBool:
		return "Boolean"
	case TInt:
		return "Integer"
	case TString:
		return "String"
	case TColl:
		return "Collection"
	}
	return fmt.Sprintf("TypeKind(%d)", int(k))
}

// Type is a static OCL type. For TColl, Elem is the element type (nil
// when unknown).
type Type struct {
	Kind TypeKind
	Elem *Type
}

// Convenience constructors.

// AnyType is the unknown type.
func AnyType() Type { return Type{Kind: TAny} }

// BoolType is the Boolean type.
func BoolType() Type { return Type{Kind: TBool} }

// IntType is the Integer type.
func IntType() Type { return Type{Kind: TInt} }

// StringType is the String type.
func StringType() Type { return Type{Kind: TString} }

// CollType is a collection type with the given element type. Pass AnyType()
// for an unknown element type.
func CollType(elem Type) Type {
	e := elem
	return Type{Kind: TColl, Elem: &e}
}

// String renders the type.
func (t Type) String() string {
	if t.Kind == TColl {
		if t.Elem == nil || t.Elem.Kind == TAny {
			return "Collection"
		}
		return "Collection(" + t.Elem.String() + ")"
	}
	return t.Kind.String()
}

// elem returns the element type a value of t yields under OCL's implicit
// singleton-collection coercion.
func (t Type) elem() Type {
	if t.Kind == TColl {
		if t.Elem == nil {
			return AnyType()
		}
		return *t.Elem
	}
	// Scalars coerce to singleton collections of themselves; Any stays Any.
	return t
}

// TypeEnv resolves navigation paths to static types. Implementations
// return AnyType() for paths they cannot type (the checker then stays
// silent about them — vocabulary errors are a separate check).
type TypeEnv interface {
	TypeOf(path []string) Type
}

// MapTypeEnv is a map-backed TypeEnv keyed by the dotted path; unknown
// paths are TAny. It is the standard environment for tests.
type MapTypeEnv map[string]Type

var _ TypeEnv = MapTypeEnv(nil)

// TypeOf implements TypeEnv.
func (m MapTypeEnv) TypeOf(path []string) Type {
	if t, ok := m[strings.Join(path, ".")]; ok {
		return t
	}
	return AnyType()
}

// IssueKind classifies a static type issue.
type IssueKind int

// Issue kinds, ordered roughly by severity.
const (
	// IssueTypeMismatch: the operation would raise an EvalError at
	// runtime (boolean connective over a non-boolean, ordering or
	// arithmetic over an unorderable kind, not/- over the wrong kind).
	IssueTypeMismatch IssueKind = iota + 1
	// IssueIncomparable: `=`/`<>` between scalars of different definite
	// kinds — never an error at runtime, but the comparison is
	// constantly false (resp. true), which almost always means a typo.
	IssueIncomparable
	// IssueUnknownOp: a collection operation the evaluator does not
	// implement — guaranteed EvalError on first evaluation.
	IssueUnknownOp
	// IssueBadArity: wrong number of arguments to a collection
	// operation — guaranteed EvalError on first evaluation.
	IssueBadArity
	// IssueIterScope: navigation below an iterator variable or @pre on
	// one — guaranteed EvalError when the body runs.
	IssueIterScope
)

// String returns the kind label.
func (k IssueKind) String() string {
	switch k {
	case IssueTypeMismatch:
		return "type-mismatch"
	case IssueIncomparable:
		return "incomparable"
	case IssueUnknownOp:
		return "unknown-op"
	case IssueBadArity:
		return "bad-arity"
	case IssueIterScope:
		return "iterator-scope"
	}
	return fmt.Sprintf("IssueKind(%d)", int(k))
}

// TypeIssue is one finding of the static checker, anchored at the
// offending sub-expression.
type TypeIssue struct {
	Kind    IssueKind
	Expr    Expr
	Message string
}

// String renders the issue with its sub-expression.
func (i TypeIssue) String() string {
	return fmt.Sprintf("%s: %s (in %s)", i.Kind, i.Message, i.Expr)
}

// InferType infers the static type of the expression under env, collecting
// issues for every definite misuse. It never fails: un-inferable
// sub-expressions type as TAny.
func InferType(e Expr, env TypeEnv) (Type, []TypeIssue) {
	c := &typeChecker{env: env}
	t := c.infer(e)
	return t, c.issues
}

// TypeCheck returns the issues of the expression under env.
func TypeCheck(e Expr, env TypeEnv) []TypeIssue {
	_, issues := InferType(e, env)
	return issues
}

// collOpSig describes a supported collection operation: its arity and its
// result type (resultElem means "the receiver's element type").
type collOpSig struct {
	arity      int
	result     TypeKind
	resultElem bool
}

// collOpSigs mirrors evalCollOp.
var collOpSigs = map[string]collOpSig{
	"size":     {arity: 0, result: TInt},
	"isEmpty":  {arity: 0, result: TBool},
	"notEmpty": {arity: 0, result: TBool},
	"includes": {arity: 1, result: TBool},
	"excludes": {arity: 1, result: TBool},
	"count":    {arity: 1, result: TInt},
	"sum":      {arity: 0, result: TInt},
	"first":    {arity: 0, resultElem: true},
}

type scopeType struct {
	name string
	typ  Type
}

type typeChecker struct {
	env    TypeEnv
	scopes []scopeType
	issues []TypeIssue
}

func (c *typeChecker) issue(kind IssueKind, e Expr, format string, args ...any) {
	c.issues = append(c.issues, TypeIssue{
		Kind:    kind,
		Expr:    e,
		Message: fmt.Sprintf(format, args...),
	})
}

func (c *typeChecker) lookupVar(name string) (Type, bool) {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if c.scopes[i].name == name {
			return c.scopes[i].typ, true
		}
	}
	return Type{}, false
}

func (c *typeChecker) infer(e Expr) Type {
	switch n := e.(type) {
	case *Lit:
		switch n.Value.Kind {
		case KindBool:
			return BoolType()
		case KindInt:
			return IntType()
		case KindString:
			return StringType()
		case KindCollection:
			return CollType(AnyType())
		default:
			return AnyType()
		}
	case *Nav:
		if t, ok := c.lookupVar(n.Path[0]); ok {
			if len(n.Path) > 1 {
				c.issue(IssueIterScope, n,
					"cannot navigate below iterator variable %q", n.Path[0])
				return AnyType()
			}
			if n.AtPre {
				c.issue(IssueIterScope, n, "@pre on iterator variable %q", n.Path[0])
			}
			return t
		}
		return c.env.TypeOf(n.Path)
	case *PreExpr:
		return c.infer(n.Expr)
	case *Unary:
		t := c.infer(n.Expr)
		switch n.Op {
		case OpNot:
			c.requireBool(n, t, "not")
			return BoolType()
		case OpNeg:
			// evalUnary requires a genuine Integer (no size coercion).
			if t.Kind != TAny && t.Kind != TInt {
				c.issue(IssueTypeMismatch, n, "negation applied to %s", t)
			}
			return IntType()
		}
		return AnyType()
	case *Binary:
		lt := c.infer(n.L)
		rt := c.infer(n.R)
		switch n.Op {
		case OpAnd, OpOr, OpXor, OpImplies:
			c.requireBool(n, lt, n.Op.String())
			c.requireBool(n, rt, n.Op.String())
			return BoolType()
		case OpEq, OpNe:
			c.checkComparable(n, lt, rt)
			return BoolType()
		case OpLt, OpLe, OpGt, OpGe:
			c.checkOrdered(n, lt, rt)
			return BoolType()
		case OpAdd, OpSub, OpMul, OpDiv:
			c.requireNumeric(n, lt, n.Op.String())
			c.requireNumeric(n, rt, n.Op.String())
			return IntType()
		}
		return AnyType()
	case *CollOp:
		recv := c.infer(n.Recv)
		for _, a := range n.Args {
			c.infer(a)
		}
		sig, ok := collOpSigs[n.Name]
		if !ok {
			c.issue(IssueUnknownOp, n, "unknown collection operation %q", n.Name)
			return AnyType()
		}
		if len(n.Args) != sig.arity {
			c.issue(IssueBadArity, n, "%s expects %d argument(s), got %d",
				n.Name, sig.arity, len(n.Args))
		}
		if n.Name == "sum" {
			// Sum needs integer elements; flag definitely-non-integer ones.
			elem := recv.elem()
			if elem.Kind == TBool || elem.Kind == TString {
				c.issue(IssueTypeMismatch, n, "sum over %s elements", elem)
			}
		}
		if sig.resultElem {
			return recv.elem()
		}
		return Type{Kind: sig.result}
	case *IterOp:
		recv := c.infer(n.Recv)
		c.scopes = append(c.scopes, scopeType{name: n.Var, typ: recv.elem()})
		body := c.infer(n.Body)
		c.scopes = c.scopes[:len(c.scopes)-1]
		switch n.Name {
		case "forAll", "exists":
			c.requireBool(n, body, n.Name)
			return BoolType()
		case "select", "reject":
			c.requireBool(n, body, n.Name)
			return CollType(recv.elem())
		case "collect":
			return CollType(body)
		default:
			// The parser rejects unknown iterators; keep the evaluator's
			// diagnostic anyway for ASTs built programmatically.
			c.issue(IssueUnknownOp, n, "unknown iterator operation %q", n.Name)
			return AnyType()
		}
	}
	return AnyType()
}

// requireBool flags t unless it can be a Boolean (boolOf errors on
// anything but Boolean and Undefined at runtime).
func (c *typeChecker) requireBool(e Expr, t Type, op string) {
	switch t.Kind {
	case TBool, TAny:
	default:
		c.issue(IssueTypeMismatch, e, "%s applied to %s", op, t)
	}
}

// requireNumeric flags t unless intOf can coerce it: Integer, or a
// collection (which coerces to its size).
func (c *typeChecker) requireNumeric(e Expr, t Type, op string) {
	switch t.Kind {
	case TInt, TColl, TAny:
	default:
		c.issue(IssueTypeMismatch, e, "arithmetic %q on %s", op, t)
	}
}

// checkOrdered mirrors compareValues: String with String is fine,
// otherwise both sides must coerce to integers.
func (c *typeChecker) checkOrdered(e Expr, lt, rt Type) {
	if lt.Kind == TAny || rt.Kind == TAny {
		return
	}
	if lt.Kind == TString && rt.Kind == TString {
		return
	}
	ok := func(t Type) bool { return t.Kind == TInt || t.Kind == TColl }
	if !ok(lt) || !ok(rt) {
		c.issue(IssueTypeMismatch, e, "cannot order %s and %s", lt, rt)
	}
}

// checkComparable flags `=`/`<>` between scalars of different definite
// kinds. Collection-vs-scalar is exempt (membership coercion), and a
// collection compared with an Integer additionally reads as a size
// comparison — both documented in equalValues.
func (c *typeChecker) checkComparable(e Expr, lt, rt Type) {
	if lt.Kind == TAny || rt.Kind == TAny {
		return
	}
	if lt.Kind == TColl || rt.Kind == TColl {
		return
	}
	if lt.Kind != rt.Kind {
		c.issue(IssueIncomparable, e,
			"comparison of %s and %s is always false", lt, rt)
	}
}
