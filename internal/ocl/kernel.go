// The evaluation kernel: the semantic core of eval.go exported as plain
// value functions, so the contract compiler (internal/contract/compile.go)
// can generate closure chains that are value- and error-equivalent to the
// tree-walking evaluator without re-implementing (and silently diverging
// from) the coercion rules. Every function here is a thin alias of the
// unexported helper the evaluator itself uses — there is exactly one
// implementation of each rule.
//
// Kernel functions never construct errors: an impossible coercion is
// reported as ok=false and the caller attaches its own expression context.
// That keeps the compiled OK path allocation-free — errors are built only
// when an evaluation actually fails.
package ocl

// KernelBool extracts a boolean operand: (value, defined, ok). Undefined
// is (false, false, true); non-boolean kinds are (_, _, false) and the
// caller reports "boolean operator applied to <kind>".
func KernelBool(v Value) (b, defined, ok bool) {
	switch v.Kind {
	case KindBool:
		return v.Bool, true, true
	case KindUndefined:
		return false, false, true
	default:
		return false, false, false
	}
}

// KernelEqual implements `=` with the membership and count coercions
// documented on equalValues.
func KernelEqual(l, r Value) Value { return equalValues(l, r) }

// KernelCompare implements <, <=, >, >= with the collection-size
// coercion. ok=false means the kinds cannot be ordered.
func KernelCompare(op BinOp, l, r Value) (Value, bool) {
	if l.IsUndefined() || r.IsUndefined() {
		return Undefined(), true
	}
	if l.Kind == KindString && r.Kind == KindString {
		return BoolVal(compareOrd(op, stringCmp(l.Str, r.Str))), true
	}
	li, lok := intOf(l)
	ri, rok := intOf(r)
	if !lok || !rok {
		return Value{}, false
	}
	return BoolVal(compareOrd(op, intCmp(li, ri))), true
}

// KernelArith implements +, -, *, / with the collection-size coercion and
// division by zero yielding Undefined. ok=false means the kinds do not
// coerce to integers.
func KernelArith(op BinOp, l, r Value) (Value, bool) {
	if l.IsUndefined() || r.IsUndefined() {
		return Undefined(), true
	}
	li, lok := intOf(l)
	ri, rok := intOf(r)
	if !lok || !rok {
		return Value{}, false
	}
	switch op {
	case OpAdd:
		return IntVal(li + ri), true
	case OpSub:
		return IntVal(li - ri), true
	case OpMul:
		return IntVal(li * ri), true
	case OpDiv:
		if ri == 0 {
			return Undefined(), true
		}
		return IntVal(li / ri), true
	}
	return Value{}, false
}

// KernelInt coerces a value to an integer the way ordering and arithmetic
// do: integers map to themselves, collections to their size.
func KernelInt(v Value) (int, bool) { return intOf(v) }

// ElemAt indexes the value under the implicit-collection coercion
// asCollection applies: collections index their elements, scalars are
// their own sole element. Callers iterate i in [0, v.Size()) — for
// Undefined the range is empty, so ElemAt is never reached — which is
// exactly the loop asCollection's materialized slice would drive, minus
// the allocation.
func (v Value) ElemAt(i int) Value {
	if v.Kind == KindCollection {
		return v.Elems[i]
	}
	return v
}
