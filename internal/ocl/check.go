package ocl

import (
	"fmt"
	"strings"
)

// VocabularyFunc reports whether a navigation path is known to the model.
// The contract generator derives one from the resource model so typos in
// analyst-written formulas are caught at generation time, not at runtime.
type VocabularyFunc func(path []string) bool

// CheckVocabulary walks the expression and returns an error naming the
// first free navigation path the vocabulary does not recognize. Iterator
// variables are lexically scoped and exempt.
func CheckVocabulary(e Expr, known VocabularyFunc) error {
	var badPath string
	collectNavPaths(e, map[string]int{}, func(dotted string) {
		if badPath != "" {
			return
		}
		if !known(strings.Split(dotted, ".")) {
			badPath = dotted
		}
	})
	if badPath != "" {
		return fmt.Errorf("ocl: unknown navigation path %q", badPath)
	}
	return nil
}

// CheckNoPre returns an error if the expression uses pre()/@pre. Used to
// validate pre-conditions and guards, which by definition have no pre-state.
func CheckNoPre(e Expr) error {
	if UsesPre(e) {
		return fmt.Errorf("ocl: pre() old-value reference not allowed here: %s", e)
	}
	return nil
}

// Complexity returns the number of AST nodes in the expression — a simple
// size metric used by the benchmarks (experiment E7 sweeps formula size).
func Complexity(e Expr) int {
	n := 0
	Walk(e, func(Expr) bool {
		n++
		return true
	})
	return n
}
