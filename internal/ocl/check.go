package ocl

import (
	"fmt"
	"sort"
	"strings"
)

// VocabularyFunc reports whether a navigation path is known to the model.
// The contract generator derives one from the resource model so typos in
// analyst-written formulas are caught at generation time, not at runtime.
type VocabularyFunc func(path []string) bool

// UnknownPaths returns every free navigation path in the expression the
// vocabulary does not recognize, sorted and deduplicated, so one run
// surfaces every typo. Iterator variables are lexically scoped and exempt.
func UnknownPaths(e Expr, known VocabularyFunc) []string {
	seen := make(map[string]bool)
	var bad []string
	collectNavPaths(e, map[string]int{}, func(dotted string) {
		if seen[dotted] {
			return
		}
		seen[dotted] = true
		if !known(strings.Split(dotted, ".")) {
			bad = append(bad, dotted)
		}
	})
	sort.Strings(bad)
	return bad
}

// CheckVocabulary walks the expression and returns an error naming every
// free navigation path the vocabulary does not recognize (sorted,
// deduplicated). Iterator variables are lexically scoped and exempt.
func CheckVocabulary(e Expr, known VocabularyFunc) error {
	bad := UnknownPaths(e, known)
	switch len(bad) {
	case 0:
		return nil
	case 1:
		return fmt.Errorf("ocl: unknown navigation path %q", bad[0])
	default:
		quoted := make([]string, len(bad))
		for i, p := range bad {
			quoted[i] = fmt.Sprintf("%q", p)
		}
		return fmt.Errorf("ocl: unknown navigation paths %s", strings.Join(quoted, ", "))
	}
}

// CheckNoPre returns an error if the expression uses pre()/@pre. Used to
// validate pre-conditions and guards, which by definition have no pre-state.
func CheckNoPre(e Expr) error {
	if UsesPre(e) {
		return fmt.Errorf("ocl: pre() old-value reference not allowed here: %s", e)
	}
	return nil
}

// Complexity returns the number of AST nodes in the expression — a simple
// size metric used by the benchmarks (experiment E7 sweeps formula size).
func Complexity(e Expr) int {
	n := 0
	Walk(e, func(Expr) bool {
		n++
		return true
	})
	return n
}
