package ocl

import "fmt"

// TokenKind enumerates lexical token kinds.
type TokenKind int

// Token kinds.
const (
	TokEOF TokenKind = iota + 1
	TokIdent
	TokInt
	TokString // 'single-quoted'
	TokLParen
	TokRParen
	TokDot
	TokComma
	TokArrow   // ->
	TokEq      // =
	TokNe      // <>
	TokLt      // <
	TokLe      // <=
	TokGt      // >
	TokGe      // >=
	TokPlus    // +
	TokMinus   // -
	TokStar    // *
	TokSlash   // /
	TokAnd     // and
	TokOr      // or
	TokXor     // xor
	TokNot     // not
	TokImplies // implies, also accepted as => or ==>
	TokTrue    // true
	TokFalse   // false
	TokPre     // pre  (old-value operator / @pre)
	TokAt      // @
	TokBar     // |  (iterator variable separator)
)

// String returns a human-readable token kind name.
func (k TokenKind) String() string {
	switch k {
	case TokEOF:
		return "EOF"
	case TokIdent:
		return "identifier"
	case TokInt:
		return "integer"
	case TokString:
		return "string"
	case TokLParen:
		return "("
	case TokRParen:
		return ")"
	case TokDot:
		return "."
	case TokComma:
		return ","
	case TokArrow:
		return "->"
	case TokEq:
		return "="
	case TokNe:
		return "<>"
	case TokLt:
		return "<"
	case TokLe:
		return "<="
	case TokGt:
		return ">"
	case TokGe:
		return ">="
	case TokPlus:
		return "+"
	case TokMinus:
		return "-"
	case TokStar:
		return "*"
	case TokSlash:
		return "/"
	case TokAnd:
		return "and"
	case TokOr:
		return "or"
	case TokXor:
		return "xor"
	case TokNot:
		return "not"
	case TokImplies:
		return "implies"
	case TokTrue:
		return "true"
	case TokFalse:
		return "false"
	case TokPre:
		return "pre"
	case TokAt:
		return "@"
	case TokBar:
		return "|"
	}
	return fmt.Sprintf("TokenKind(%d)", int(k))
}

// Token is one lexical token with its source position (byte offset).
type Token struct {
	Kind TokenKind
	Text string
	Pos  int
}

// SyntaxError is a lexing or parsing error with the byte offset into the
// expression source.
type SyntaxError struct {
	Pos     int
	Message string
	Src     string
}

// Error implements the error interface.
func (e *SyntaxError) Error() string {
	return fmt.Sprintf("ocl: syntax error at offset %d: %s (in %q)", e.Pos, e.Message, e.Src)
}
