package ocl

import (
	"reflect"
	"strings"
	"testing"
)

// vocabOf builds a VocabularyFunc accepting exactly the dotted paths.
func vocabOf(paths ...string) VocabularyFunc {
	known := make(map[string]bool, len(paths))
	for _, p := range paths {
		known[p] = true
	}
	return func(path []string) bool { return known[strings.Join(path, ".")] }
}

func TestCheckVocabularyAccepts(t *testing.T) {
	e := MustParse("project.volumes->size() = 1 and volume.status <> 'x'")
	err := CheckVocabulary(e, vocabOf("project.volumes", "volume.status"))
	if err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestCheckVocabularyReportsAllUnknownPathsSorted(t *testing.T) {
	// Three distinct typos, one duplicated — the error must name all
	// three, sorted, exactly once each.
	e := MustParse("zz.top = 1 and aa.bb = 2 and mm.nn = 3 and aa.bb = 4")
	err := CheckVocabulary(e, vocabOf())
	if err == nil {
		t.Fatal("want error")
	}
	msg := err.Error()
	wantOrder := []string{`"aa.bb"`, `"mm.nn"`, `"zz.top"`}
	last := -1
	for _, w := range wantOrder {
		idx := strings.Index(msg, w)
		if idx < 0 {
			t.Fatalf("error %q does not mention %s", msg, w)
		}
		if idx <= last {
			t.Fatalf("error %q does not list paths in sorted order", msg)
		}
		last = idx
	}
	if strings.Count(msg, `"aa.bb"`) != 1 {
		t.Fatalf("error %q repeats a deduplicated path", msg)
	}
}

func TestCheckVocabularySingleUnknownKeepsClassicMessage(t *testing.T) {
	e := MustParse("ghost.attr = 1")
	err := CheckVocabulary(e, vocabOf())
	if err == nil || !strings.Contains(err.Error(), `unknown navigation path "ghost.attr"`) {
		t.Fatalf("error = %v, want the single-path message", err)
	}
}

func TestUnknownPaths(t *testing.T) {
	e := MustParse("known.a = 1 and bad.b = 2 and bad.c = 3")
	got := UnknownPaths(e, vocabOf("known.a"))
	want := []string{"bad.b", "bad.c"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("UnknownPaths = %v, want %v", got, want)
	}
	if got := UnknownPaths(e, vocabOf("known.a", "bad.b", "bad.c")); len(got) != 0 {
		t.Fatalf("UnknownPaths on fully-known = %v, want empty", got)
	}
}

func TestVocabularyScopingOfIteratorVariables(t *testing.T) {
	// The bound variable g is exempt inside its body but not outside;
	// nested scopes re-bind and unbind correctly.
	e := MustParse("user.id.groups->forAll(g | g <> 'banned') and g.x = 1")
	got := UnknownPaths(e, vocabOf("user.id.groups"))
	if !reflect.DeepEqual(got, []string{"g.x"}) {
		t.Fatalf("UnknownPaths = %v, want [g.x] (g free outside the iterator)", got)
	}

	// Shadowing: the inner iterator re-binds the same name.
	e = MustParse("xs->forAll(v | ys->exists(v | v = 1) and v = 2)")
	if got := UnknownPaths(e, vocabOf("xs", "ys")); len(got) != 0 {
		t.Fatalf("UnknownPaths = %v, want empty (v bound at both depths)", got)
	}
}

func TestCheckNoPreOnNestedPre(t *testing.T) {
	cases := []struct {
		src     string
		wantErr bool
	}{
		{"project.volumes->size() = 1", false},
		{"pre(project.volumes->size()) = 1", true},
		{"project.volumes@pre->size() = 1", true},
		// pre() buried in an iterator body.
		{"xs->forAll(x | x = pre(quota.volume))", true},
		// @pre buried under a collection operation argument.
		{"xs->includes(limits@pre)", true},
		// pre() nested inside pre().
		{"pre(pre(quota.volume)) = 1", true},
	}
	for _, tt := range cases {
		err := CheckNoPre(MustParse(tt.src))
		if (err != nil) != tt.wantErr {
			t.Errorf("CheckNoPre(%q) error = %v, want error %v", tt.src, err, tt.wantErr)
		}
	}
}

func TestComplexityCountsNodes(t *testing.T) {
	if got := Complexity(MustParse("1 + 2")); got != 3 {
		t.Fatalf("Complexity(1+2) = %d, want 3", got)
	}
}
