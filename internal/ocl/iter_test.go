package ocl

import "testing"

func iterEnv() MapEnv {
	return MapEnv{
		"user.id.groups":  StringsVal("admin", "member"),
		"project.volumes": CollectionVal(StringVal("v1"), StringVal("v2"), StringVal("v3")),
		"volume.id":       StringVal("v2"),
		"nums":            CollectionVal(IntVal(1), IntVal(2), IntVal(3)),
		"empty":           CollectionVal(),
	}
}

func TestIteratorEval(t *testing.T) {
	ctx := Context{Cur: iterEnv()}
	tests := []struct {
		src  string
		want Value
	}{
		// forAll / exists with strings.
		{"user.id.groups->forAll(g | g <> 'banned')", BoolVal(true)},
		{"user.id.groups->forAll(g | g = 'admin')", BoolVal(false)},
		{"user.id.groups->exists(g | g = 'member')", BoolVal(true)},
		{"user.id.groups->exists(g | g = 'ghost')", BoolVal(false)},
		// Membership of a navigated value.
		{"project.volumes->exists(v | v = volume.id)", BoolVal(true)},
		// Empty-collection semantics.
		{"empty->forAll(x | x = 1)", BoolVal(true)},
		{"empty->exists(x | x = 1)", BoolVal(false)},
		// Scalars coerce to singleton collections.
		{"volume.id->forAll(v | v = 'v2')", BoolVal(true)},
		// select / reject / collect.
		{"nums->select(n | n > 1)->size()", IntVal(2)},
		{"nums->reject(n | n > 1)->size()", IntVal(1)},
		{"nums->collect(n | n * 10)->sum()", IntVal(60)},
		{"nums->select(n | n > 1)->sum()", IntVal(5)},
		// Nested iterators with shadowing-free distinct vars.
		{"nums->forAll(a | nums->exists(b | b = a))", BoolVal(true)},
		// Undefined receiver behaves as empty.
		{"missing->forAll(x | x = 1)", BoolVal(true)},
		{"missing->exists(x | x = 1)", BoolVal(false)},
	}
	for _, tt := range tests {
		got := evalSrc(t, tt.src, ctx)
		if !got.Equal(tt.want) {
			t.Errorf("Eval(%q) = %v, want %v", tt.src, got, tt.want)
		}
	}
}

func TestIteratorUndefinedBody(t *testing.T) {
	ctx := Context{Cur: iterEnv()}
	// A body that is undefined for some element leaves the verdict
	// undetermined unless short-circuited.
	v := evalSrc(t, "nums->forAll(n | missing = n)", ctx)
	if !v.IsUndefined() {
		t.Errorf("forAll with undefined body = %v, want undefined", v)
	}
	// ...but a definite witness still decides exists.
	v = evalSrc(t, "nums->exists(n | n = 2 or missing = 1)", ctx)
	if !v.Equal(BoolVal(true)) {
		t.Errorf("exists with witness = %v", v)
	}
}

func TestIteratorParsePrintRoundTrip(t *testing.T) {
	srcs := []string{
		"user.id.groups->forAll(g | g <> 'banned')",
		"project.volumes->select(v | v = volume.id)->size() = 1",
		"nums->collect(n | n + 1)->sum() > 0",
		"nums->forAll(a | nums->exists(b | b = a))",
	}
	for _, src := range srcs {
		e, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		printed := e.String()
		if printed != src {
			t.Errorf("print = %q, want %q", printed, src)
		}
		if _, err := Parse(printed); err != nil {
			t.Errorf("reparse of %q: %v", printed, err)
		}
	}
}

func TestIteratorParseErrors(t *testing.T) {
	for _, src := range []string{
		"x->forAll(g g)",         // missing bar
		"x->forAll()",            // iterator without variable
		"x->frobAll(g | g = 1)",  // unknown iterator
		"x->forAll(g | )",        // empty body
		"x->forAll(g | g = 1",    // unclosed
		"x->size(g | g)",         // non-iterator with variable form
		"x->forAll(g | g = 1) =", // trailing operator
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q): want error", src)
		}
	}
}

func TestIteratorEvalErrors(t *testing.T) {
	ctx := Context{Cur: iterEnv()}
	for _, src := range []string{
		// Navigation below an iterator variable is not supported.
		"nums->forAll(n | n.field = 1)",
		// Non-boolean body for forAll.
		"nums->forAll(n | n + 1)",
	} {
		e, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		if _, err := Eval(e, ctx); err == nil {
			t.Errorf("Eval(%q): want error", src)
		}
	}
}

func TestIteratorVariableScoping(t *testing.T) {
	// The iterator variable shadows an environment path of the same name
	// inside the body only.
	env := MapEnv{
		"g":    StringVal("outer"),
		"coll": StringsVal("inner"),
	}
	ctx := Context{Cur: env}
	v := evalSrc(t, "coll->forAll(g | g = 'inner')", ctx)
	if !v.Equal(BoolVal(true)) {
		t.Errorf("shadowed variable = %v", v)
	}
	v = evalSrc(t, "g = 'outer'", ctx)
	if !v.Equal(BoolVal(true)) {
		t.Errorf("outer binding = %v", v)
	}
	// After the iterator, the outer binding is visible again.
	v = evalSrc(t, "coll->forAll(g | g = 'inner') and g = 'outer'", ctx)
	if !v.Equal(BoolVal(true)) {
		t.Errorf("post-iterator binding = %v", v)
	}
}

func TestIteratorNavPathsExcludeBoundVars(t *testing.T) {
	e := MustParse("project.volumes->select(v | v = volume.id)->size() = 1")
	paths := NavPaths(e)
	want := map[string]bool{"project.volumes": true, "volume.id": true}
	if len(paths) != len(want) {
		t.Fatalf("NavPaths = %v", paths)
	}
	for _, p := range paths {
		if !want[p] {
			t.Errorf("unexpected path %q (iterator variable leaked?)", p)
		}
	}
}

func TestIteratorVocabularyExcludesBoundVars(t *testing.T) {
	known := func(path []string) bool {
		head := path[0]
		return head == "project" || head == "volume"
	}
	e := MustParse("project.volumes->forAll(v | v <> volume.id)")
	if err := CheckVocabulary(e, known); err != nil {
		t.Errorf("bound variable rejected by vocabulary: %v", err)
	}
	e = MustParse("project.volumes->forAll(v | v <> ghost.id)")
	if err := CheckVocabulary(e, known); err == nil {
		t.Error("free unknown path accepted")
	}
}

func TestIteratorInGuardThroughContractPipeline(t *testing.T) {
	// Iterators compose with pre(): old collection contents.
	pre := MapEnv{"project.volumes": StringsVal("a", "b")}
	cur := MapEnv{"project.volumes": StringsVal("a")}
	v := evalSrc(t, "pre(project.volumes)->forAll(x | x = 'a' or x = 'b')",
		Context{Cur: cur, Pre: pre})
	if !v.Equal(BoolVal(true)) {
		t.Errorf("pre + iterator = %v", v)
	}
	v = evalSrc(t, "pre(project.volumes->select(x | x = 'b'))->size() = 1",
		Context{Cur: cur, Pre: pre})
	if !v.Equal(BoolVal(true)) {
		t.Errorf("pre(select) = %v", v)
	}
}
