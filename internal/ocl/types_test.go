package ocl

import (
	"strings"
	"testing"
)

// testTypeEnv mirrors the Cinder vocabulary's interesting corners.
func testTypeEnv() TypeEnv {
	return MapTypeEnv{
		"project.id":        StringType(),
		"project.volumes":   CollType(AnyType()),
		"quota_sets.volume": IntType(),
		"volume.status":     StringType(),
		"volume.size":       IntType(),
		"volume.shared":     BoolType(),
	}
}

func inferOf(t *testing.T, src string) (Type, []TypeIssue) {
	t.Helper()
	e, err := Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return InferType(e, testTypeEnv())
}

func TestInferTypesOfPaperIdioms(t *testing.T) {
	// Every shipped formula shape must type cleanly — the checker's
	// coercions must match eval.go's.
	clean := []struct {
		src  string
		want TypeKind
	}{
		{"project.id->size() = 1", TBool},
		{"project.volumes->size() >= 1", TBool},
		{"project.volumes < quota_sets.volume", TBool},
		{"project.volumes + 1 = quota_sets.volume", TBool},
		{"user.id.groups = 'admin'", TBool},
		{"volume.status <> 'in-use'", TBool},
		{"project.volumes->size() = pre(project.volumes->size()) + 1", TBool},
		{"project.volumes->forAll(v | v <> 'banned')", TBool},
		{"project.volumes->select(v | v = 'x')->size()", TInt},
		{"project.volumes->isEmpty()", TBool},
		{"volume.size * 2 + 1", TInt},
		{"not volume.shared", TBool},
		{"volume.status", TString},
	}
	for _, tt := range clean {
		typ, issues := inferOf(t, tt.src)
		if len(issues) != 0 {
			t.Errorf("%q: unexpected issues %v", tt.src, issues)
		}
		if typ.Kind != tt.want {
			t.Errorf("%q: type %s, want %s", tt.src, typ, tt.want)
		}
	}
}

func TestTypeIssues(t *testing.T) {
	cases := []struct {
		src     string
		kind    IssueKind
		mention string
	}{
		{"volume.size and volume.shared", IssueTypeMismatch, "and applied to Integer"},
		{"not volume.size", IssueTypeMismatch, "not applied to Integer"},
		{"-volume.status", IssueTypeMismatch, "negation applied to String"},
		{"-project.volumes", IssueTypeMismatch, "negation applied to Collection"},
		{"volume.status + 1", IssueTypeMismatch, `arithmetic "+" on String`},
		{"volume.status < 1", IssueTypeMismatch, "cannot order String and Integer"},
		{"volume.shared < volume.shared", IssueTypeMismatch, "cannot order Boolean and Boolean"},
		{"volume.size = 'big'", IssueIncomparable, "always false"},
		{"volume.shared = 1", IssueIncomparable, "always false"},
		{"project.volumes->flatten() = 1", IssueUnknownOp, `"flatten"`},
		{"project.volumes->size(1) = 1", IssueBadArity, "size expects 0"},
		{"project.volumes->includes() = true", IssueBadArity, "includes expects 1"},
		{"project.volumes->forAll(v | v.deep = 1)", IssueIterScope, "below iterator variable"},
		{"project.volumes->forAll(v | volume.size)", IssueTypeMismatch, "forAll applied to Integer"},
		{"project.volumes->sum()", IssueTypeMismatch, ""},
	}
	for _, tt := range cases {
		t.Run(tt.src, func(t *testing.T) {
			if tt.src == "project.volumes->sum()" {
				// sum over Collection(OclAny) is fine: ensure NO issue.
				_, issues := inferOf(t, tt.src)
				if len(issues) != 0 {
					t.Fatalf("unexpected issues: %v", issues)
				}
				return
			}
			_, issues := inferOf(t, tt.src)
			found := false
			for _, is := range issues {
				if is.Kind == tt.kind && strings.Contains(is.Message, tt.mention) {
					found = true
				}
			}
			if !found {
				t.Fatalf("want %s issue mentioning %q, got %v", tt.kind, tt.mention, issues)
			}
		})
	}
}

func TestTypeCheckerIteratorScoping(t *testing.T) {
	// The iterator variable shadows the environment inside its body and
	// goes back out of scope outside it.
	typ, issues := inferOf(t, "project.volumes->select(s | s = 'x')->includes(volume.status)")
	if len(issues) != 0 {
		t.Fatalf("issues: %v", issues)
	}
	if typ.Kind != TBool {
		t.Fatalf("type = %s, want Boolean", typ)
	}
	// A variable named like a resource shadows it: status navigation
	// below it is an iterator-scope issue, not a vocabulary miss.
	_, issues = inferOf(t, "project.volumes->forAll(volume | volume.status = 'x')")
	if len(issues) != 1 || issues[0].Kind != IssueIterScope {
		t.Fatalf("want one iterator-scope issue, got %v", issues)
	}
}

func TestSumOverDefiniteStringElements(t *testing.T) {
	env := MapTypeEnv{"tags": CollType(StringType())}
	e := MustParse("tags->sum()")
	issues := TypeCheck(e, env)
	if len(issues) != 1 || issues[0].Kind != IssueTypeMismatch {
		t.Fatalf("want sum type-mismatch, got %v", issues)
	}
}

func TestCollectAndFirstTypes(t *testing.T) {
	env := MapTypeEnv{"xs": CollType(IntType())}
	typ, issues := InferType(MustParse("xs->collect(x | x + 1)->first()"), env)
	if len(issues) != 0 {
		t.Fatalf("issues: %v", issues)
	}
	if typ.Kind != TInt {
		t.Fatalf("first of collect(int) = %s, want Integer", typ)
	}
}

func TestTypeStringRendering(t *testing.T) {
	if got := CollType(StringType()).String(); got != "Collection(String)" {
		t.Errorf("CollType(String) = %q", got)
	}
	if got := CollType(AnyType()).String(); got != "Collection" {
		t.Errorf("CollType(Any) = %q", got)
	}
	if got := AnyType().String(); got != "OclAny" {
		t.Errorf("AnyType = %q", got)
	}
}

func TestUnknownPathsStayAny(t *testing.T) {
	// Unknown vocabulary must not produce type issues — vocabulary
	// checking is a separate concern.
	_, issues := inferOf(t, "mystery.path + unknown.other = 3 and user.id.groups = 'x'")
	if len(issues) != 0 {
		t.Fatalf("issues over unknown paths: %v", issues)
	}
}
