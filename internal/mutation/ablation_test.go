package mutation

import (
	"testing"

	"cloudmon/internal/monitor"
)

// TestAblationPreOnlyMissesLostEffects: the post-condition check earns its
// cost — a pre-only monitor still kills every authorization mutant and the
// guard-violating functional mutants, but the lost-effect mutants (F3
// delete-noop, F4 create-noop) survive because only the post-state
// comparison can see them.
func TestAblationPreOnlyMissesLostEffects(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation campaign in -short mode")
	}
	report, err := RunCampaignWithOptions(Catalogue(), LabOptions{
		Level: monitor.CheckPreOnly,
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.BaselineViolations != 0 {
		t.Errorf("baseline violations = %d", report.BaselineViolations)
	}
	survivors := map[string]bool{}
	for _, run := range report.Runs {
		if !run.Killed {
			survivors[run.MutantID] = true
		}
	}
	// The lost-effect mutants must survive pre-only checking.
	for _, id := range []string{"F3", "F4"} {
		if !survivors[id] {
			t.Errorf("mutant %s killed by the pre-only monitor; post-conditions would be redundant", id)
		}
	}
	// Everything else is still killed (pre checks + response-code
	// comparison suffice for authorization and guard faults).
	for _, run := range report.Runs {
		if run.MutantID == "F3" || run.MutantID == "F4" {
			continue
		}
		if !run.Killed {
			t.Errorf("mutant %s (%s) unexpectedly survived pre-only checking",
				run.MutantID, run.MutantName)
		}
	}
}
