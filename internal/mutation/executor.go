package mutation

import (
	"fmt"
	"net/http"

	"cloudmon/internal/mbt"
	"cloudmon/internal/openstack/cinder"
	"cloudmon/internal/osclient"
	"cloudmon/internal/uml"
)

// ModelExecutor drives mbt-generated suites against the lab deployment:
// triggers on the volume resource map to monitored REST requests, and the
// cloud monitor acts as the test oracle. A fresh deployment is provisioned
// per Reset; an optional mutant is re-applied each time.
type ModelExecutor struct {
	mutant *Mutant
	lab    *Lab
	// created tracks volume IDs created by POST steps; item-addressing
	// triggers (GET/PUT/DELETE) target the most recent one.
	created []string
	// violations accumulates monitor violations across deployments (each
	// Reset harvests the previous lab's log) — the oracle signal for
	// mutant kills.
	violations int
}

var _ mbt.Executor = (*ModelExecutor)(nil)

// NewModelExecutor returns an executor; mutant may be nil for a clean
// deployment.
func NewModelExecutor(mutant *Mutant) *ModelExecutor {
	return &ModelExecutor{mutant: mutant}
}

// Lab exposes the current deployment (for violation inspection after a
// run). Valid after the first Reset.
func (e *ModelExecutor) Lab() *Lab { return e.lab }

// Violations returns the total number of monitor violations observed
// across all deployments of this executor, including the current one.
func (e *ModelExecutor) Violations() int {
	total := e.violations
	if e.lab != nil {
		total += len(e.lab.Sys.Monitor.Violations())
	}
	return total
}

// Reset implements mbt.Executor.
func (e *ModelExecutor) Reset() error {
	if e.lab != nil {
		e.violations += len(e.lab.Sys.Monitor.Violations())
	}
	lab, err := NewLab()
	if err != nil {
		return err
	}
	if e.mutant != nil {
		if err := e.mutant.Apply(lab.Cloud); err != nil {
			return err
		}
	}
	e.lab = lab
	e.created = nil
	return nil
}

// Fire implements mbt.Executor.
func (e *ModelExecutor) Fire(step mbt.Step) (bool, error) {
	if e.lab == nil {
		return false, fmt.Errorf("mutation: executor not reset")
	}
	if step.Trigger.Resource != "volume" {
		return false, fmt.Errorf("mutation: executor only drives the volume resource, got %s",
			step.Trigger)
	}
	client := e.client(step.Role)
	collection := e.lab.volumesPath()
	target := "missing-volume"
	if len(e.created) > 0 {
		target = e.created[len(e.created)-1]
	}

	switch step.Trigger.Method {
	case uml.POST:
		var out struct {
			Volume cinder.Volume `json:"volume"`
		}
		in := map[string]map[string]any{"volume": {"name": "mbt", "size": 1}}
		status, err := client.Do(http.MethodPost, collection, in, &out, nil)
		if transportError(err) {
			return false, err
		}
		if permitted(status) {
			e.created = append(e.created, out.Volume.ID)
			return true, nil
		}
		return false, nil
	case uml.GET:
		status, err := client.Do(http.MethodGet, collection+"/"+target, nil, nil, nil)
		if transportError(err) {
			return false, err
		}
		return permitted(status), nil
	case uml.PUT:
		in := map[string]map[string]any{"volume": {"name": "renamed"}}
		status, err := client.Do(http.MethodPut, collection+"/"+target, in, nil, nil)
		if transportError(err) {
			return false, err
		}
		return permitted(status), nil
	case uml.DELETE:
		status, err := client.Do(http.MethodDelete, collection+"/"+target, nil, nil, nil)
		if transportError(err) {
			return false, err
		}
		if permitted(status) && len(e.created) > 0 {
			e.created = e.created[:len(e.created)-1]
			return true, nil
		}
		return permitted(status), nil
	default:
		return false, fmt.Errorf("mutation: unsupported trigger method %s", step.Trigger.Method)
	}
}

// client returns a monitor-facing client for the role ("" = anonymous).
func (e *ModelExecutor) client(role string) *osclient.Client {
	if role == "" {
		return e.lab.monClient.WithToken("")
	}
	return e.lab.as(role)
}

// permitted reports whether the status is a 2xx success.
func permitted(status int) bool { return status >= 200 && status <= 299 }

// transportError distinguishes infrastructure failures from HTTP-level
// denials (StatusError), which are expected experiment outcomes.
func transportError(err error) bool {
	if err == nil {
		return false
	}
	_, isStatus := err.(*osclient.StatusError)
	return !isStatus
}
