package mutation

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	"cloudmon/internal/core"
	"cloudmon/internal/httpkit"
	"cloudmon/internal/monitor"
	"cloudmon/internal/openstack"
	"cloudmon/internal/openstack/cinder"
	"cloudmon/internal/osbinding"
	"cloudmon/internal/osclient"
	"cloudmon/internal/paper"
)

// Lab is one experimental deployment: a freshly seeded simulated cloud and
// a cloud monitor in Observe (test-oracle) mode, wired in process.
type Lab struct {
	// Cloud is the simulated private cloud (mutants are applied to it).
	Cloud *openstack.Cloud
	// Sys is the generated monitoring pipeline.
	Sys *core.System
	// ProjectID is the seeded project.
	ProjectID string

	cloudClient *osclient.Client
	monClient   *osclient.Client
	tokens      map[string]string // role -> token
	requests    int
}

// Users of the lab deployment, one per Table-I role.
var labUsers = []openstack.SeedUser{
	{Name: "alice", Password: "pw-alice", Group: paper.GroupProjAdministrator},
	{Name: "bob", Password: "pw-bob", Group: paper.GroupServiceArchitect},
	{Name: "carol", Password: "pw-carol", Group: paper.GroupBusinessAnalyst},
	// The monitor's service account is an administrator so that mutations
	// of the user-facing policy cannot blind the monitor's state reads.
	{Name: "cm-svc", Password: "pw-svc", Group: paper.GroupProjAdministrator},
}

// labQuota is small so the request matrix reaches the full-quota state.
var labQuota = cinder.QuotaSet{Volumes: 3, Gigabytes: 1000}

// LabOptions customizes the lab deployment.
type LabOptions struct {
	// Level ablates the monitor's contract checking (default CheckFull).
	Level monitor.CheckLevel
}

// NewLab builds a deployment with the paper's example model and seed.
func NewLab() (*Lab, error) {
	return NewLabWithOptions(LabOptions{})
}

// NewLabWithOptions builds a lab with the given options.
func NewLabWithOptions(opts LabOptions) (*Lab, error) {
	cloud := openstack.New(openstack.Config{})
	res := cloud.ApplySeed(openstack.Seed{
		ProjectName: "myProject",
		Quota:       labQuota,
		GroupRoles:  paper.GroupRole(),
		Users:       labUsers,
	})
	cloudHTTP := httpkit.HandlerClient(cloud)
	sys, err := core.Build(core.Options{
		Model:    paper.CinderModel(),
		CloudURL: "http://cloud.internal",
		ServiceAccount: osbinding.ServiceAccount{
			User: "cm-svc", Password: "pw-svc", ProjectID: res.ProjectID,
		},
		Mode:       monitor.Observe,
		Level:      opts.Level,
		HTTPClient: cloudHTTP,
	})
	if err != nil {
		return nil, fmt.Errorf("mutation: build monitor: %w", err)
	}
	lab := &Lab{
		Cloud:     cloud,
		Sys:       sys,
		ProjectID: res.ProjectID,
		tokens:    make(map[string]string, 3),
	}
	lab.cloudClient = osclient.New("http://cloud.internal")
	lab.cloudClient.HTTPClient = cloudHTTP
	lab.monClient = osclient.New("http://monitor.internal")
	lab.monClient.HTTPClient = httpkit.HandlerClient(sys.Monitor)

	for user, role := range map[string]string{
		"alice": paper.RoleAdmin, "bob": paper.RoleMember, "carol": paper.RoleUser,
	} {
		auth := *lab.cloudClient
		tok, err := auth.Authenticate(user, "pw-"+user, res.ProjectID)
		if err != nil {
			return nil, fmt.Errorf("mutation: authenticate %s: %w", user, err)
		}
		lab.tokens[role] = tok
	}
	return lab, nil
}

// as returns a monitor-facing client holding the role's token.
func (l *Lab) as(role string) *osclient.Client {
	return l.monClient.WithToken(l.tokens[role])
}

// direct returns a cloud-facing client holding the admin token (used for
// scenario setup that is outside the monitored API, e.g. attaching).
func (l *Lab) direct() *osclient.Client {
	return l.cloudClient.WithToken(l.tokens[paper.RoleAdmin])
}

// volumesPath is the monitor-facing collection URI.
func (l *Lab) volumesPath() string {
	return "/projects/" + l.ProjectID + "/volumes"
}

// monitored request helpers; errors are expected for contract-rejected
// requests and are part of the experiment, so they are swallowed.

func (l *Lab) post(role string) string {
	l.requests++
	var out struct {
		Volume cinder.Volume `json:"volume"`
	}
	in := map[string]map[string]any{"volume": {"name": "vol", "size": 1}}
	_, err := l.as(role).Do(http.MethodPost, l.volumesPath(), in, &out, nil)
	if err != nil {
		return ""
	}
	return out.Volume.ID
}

func (l *Lab) get(role, id string) {
	l.requests++
	_, _ = l.as(role).Do(http.MethodGet, l.volumesPath()+"/"+id, nil, nil, nil)
}

func (l *Lab) put(role, id string) {
	l.requests++
	in := map[string]map[string]any{"volume": {"name": "renamed"}}
	_, _ = l.as(role).Do(http.MethodPut, l.volumesPath()+"/"+id, in, nil, nil)
}

func (l *Lab) del(role, id string) {
	l.requests++
	_, _ = l.as(role).Do(http.MethodDelete, l.volumesPath()+"/"+id, nil, nil, nil)
}

// RunMatrix drives the standard request matrix through the monitor: every
// Table-I (method, role) combination, plus the stateful scenarios — quota
// exhaustion and deletion of an in-use volume. It returns the number of
// requests issued.
func (l *Lab) RunMatrix() int {
	before := l.requests
	pid := l.ProjectID

	// Phase 1: creation by each role (admin/member permitted, user not).
	v1 := l.post(paper.RoleAdmin)
	v2 := l.post(paper.RoleMember)
	l.post(paper.RoleUser)

	// A target volume for read/update/delete phases. Under create-noop
	// mutants no volume exists; fall back to the reported (fake) ID so the
	// requests still exercise the contract.
	target := v1
	if target == "" {
		target = "missing-volume"
	}

	// Phase 2: reads by every role.
	for _, role := range []string{paper.RoleAdmin, paper.RoleMember, paper.RoleUser} {
		l.get(role, target)
	}
	// Phase 3: updates by every role (admin/member permitted).
	for _, role := range []string{paper.RoleUser, paper.RoleMember, paper.RoleAdmin} {
		l.put(role, target)
	}
	// Phase 4: forbidden deletions.
	l.del(paper.RoleMember, target)
	l.del(paper.RoleUser, target)

	// Phase 5: fill the quota, then attempt one more create.
	v3 := l.post(paper.RoleAdmin)
	l.post(paper.RoleAdmin) // over quota -> contract forbids

	// Phase 6: attach the target volume (setup outside the monitored API),
	// attempt DELETE on the in-use volume, detach again.
	direct := l.direct()
	if server, _, err := direct.CreateServer(pid, "lab-server"); err == nil && v1 != "" {
		if _, err := direct.AttachVolume(pid, server.ID, v1); err == nil {
			l.del(paper.RoleAdmin, v1)
			_, _ = direct.DetachVolume(pid, server.ID, v1)
		}
	}

	// Phase 7: legitimate cleanup deletions by the administrator.
	for _, id := range []string{v1, v2, v3} {
		if id != "" {
			l.del(paper.RoleAdmin, id)
		}
	}
	return l.requests - before
}

// RunReport is the outcome of one mutant run.
type RunReport struct {
	MutantID   string
	MutantName string
	Kind       Kind
	Paper      bool
	// Killed reports whether the monitor flagged at least one violation.
	Killed bool
	// Violations is the number of violation verdicts.
	Violations int
	// FirstViolation describes the first detection (outcome + trigger).
	FirstViolation string
	// Requests is the matrix size driven against this mutant.
	Requests int
}

// CampaignReport aggregates a whole campaign.
type CampaignReport struct {
	// BaselineRequests/BaselineViolations are from the clean (unmutated)
	// run; violations here would be false positives.
	BaselineRequests   int
	BaselineViolations int
	Runs               []RunReport
}

// Killed returns the number of killed mutants.
func (r *CampaignReport) Killed() int {
	n := 0
	for _, run := range r.Runs {
		if run.Killed {
			n++
		}
	}
	return n
}

// KillRatio returns killed/total, or 1 for an empty campaign.
func (r *CampaignReport) KillRatio() float64 {
	if len(r.Runs) == 0 {
		return 1
	}
	return float64(r.Killed()) / float64(len(r.Runs))
}

// RunCampaign executes the request matrix against a clean deployment and
// then against one fresh deployment per mutant, collecting kill results.
func RunCampaign(mutants []Mutant) (*CampaignReport, error) {
	return RunCampaignWithOptions(mutants, LabOptions{})
}

// RunCampaignWithOptions runs a campaign with customized lab deployments —
// the ablation harness (e.g. a pre-only monitor).
func RunCampaignWithOptions(mutants []Mutant, opts LabOptions) (*CampaignReport, error) {
	report := &CampaignReport{}

	baseline, err := NewLabWithOptions(opts)
	if err != nil {
		return nil, err
	}
	report.BaselineRequests = baseline.RunMatrix()
	report.BaselineViolations = len(baseline.Sys.Monitor.Violations())

	for _, m := range mutants {
		lab, err := NewLabWithOptions(opts)
		if err != nil {
			return nil, err
		}
		if err := m.Apply(lab.Cloud); err != nil {
			return nil, err
		}
		requests := lab.RunMatrix()
		violations := lab.Sys.Monitor.Violations()
		run := RunReport{
			MutantID:   m.ID,
			MutantName: m.Name,
			Kind:       m.Kind,
			Paper:      m.Paper,
			Killed:     len(violations) > 0,
			Violations: len(violations),
			Requests:   requests,
		}
		if len(violations) > 0 {
			v := violations[0]
			run.FirstViolation = fmt.Sprintf("%s on %s", v.Outcome, v.Trigger)
		}
		report.Runs = append(report.Runs, run)
	}
	return report, nil
}

// MarshalJSON serializes the report for tooling (CI gates on kill rate).
func (r *CampaignReport) MarshalJSON() ([]byte, error) {
	type runDoc struct {
		ID             string `json:"id"`
		Name           string `json:"name"`
		Kind           string `json:"kind"`
		Paper          bool   `json:"paper,omitempty"`
		Killed         bool   `json:"killed"`
		Violations     int    `json:"violations"`
		FirstViolation string `json:"first_violation,omitempty"`
		Requests       int    `json:"requests"`
	}
	doc := struct {
		BaselineRequests   int      `json:"baseline_requests"`
		BaselineViolations int      `json:"baseline_violations"`
		Killed             int      `json:"killed"`
		Total              int      `json:"total"`
		KillRatio          float64  `json:"kill_ratio"`
		Runs               []runDoc `json:"runs"`
	}{
		BaselineRequests:   r.BaselineRequests,
		BaselineViolations: r.BaselineViolations,
		Killed:             r.Killed(),
		Total:              len(r.Runs),
		KillRatio:          r.KillRatio(),
	}
	for _, run := range r.Runs {
		doc.Runs = append(doc.Runs, runDoc{
			ID: run.MutantID, Name: run.MutantName, Kind: run.Kind.String(),
			Paper: run.Paper, Killed: run.Killed, Violations: run.Violations,
			FirstViolation: run.FirstViolation, Requests: run.Requests,
		})
	}
	return json.Marshal(doc)
}

// Format renders the campaign report as the validation table.
func (r *CampaignReport) Format(w io.Writer) {
	fmt.Fprintf(w, "%-5s %-22s %-14s %-6s %-7s %-5s %s\n",
		"ID", "Mutant", "Kind", "Paper", "Killed", "Viol", "First detection")
	fmt.Fprintln(w, strings.Repeat("-", 92))
	for _, run := range r.Runs {
		paperMark := ""
		if run.Paper {
			paperMark = "yes"
		}
		killed := "NO"
		if run.Killed {
			killed = "yes"
		}
		fmt.Fprintf(w, "%-5s %-22s %-14s %-6s %-7s %-5d %s\n",
			run.MutantID, run.MutantName, run.Kind, paperMark, killed,
			run.Violations, run.FirstViolation)
	}
	fmt.Fprintln(w, strings.Repeat("-", 92))
	fmt.Fprintf(w, "killed %d/%d (%.0f%%); baseline: %d requests, %d false positives\n",
		r.Killed(), len(r.Runs), 100*r.KillRatio(),
		r.BaselineRequests, r.BaselineViolations)
}
