package mutation

import "testing"

func TestNovaBaselineClean(t *testing.T) {
	lab, err := NewNovaLab()
	if err != nil {
		t.Fatal(err)
	}
	requests := lab.RunMatrix()
	if requests < 8 {
		t.Errorf("matrix issued only %d requests", requests)
	}
	if v := lab.Sys.Monitor.Violations(); len(v) != 0 {
		for _, viol := range v {
			t.Errorf("false positive: %s %s (%s)", viol.Trigger, viol.Outcome, viol.Detail)
		}
	}
	cov := lab.Sys.Monitor.Coverage()
	for _, s := range []string{"2.1", "2.2", "2.3"} {
		if cov[s] == 0 {
			t.Errorf("SecReq %s not covered", s)
		}
	}
}

// TestNovaCampaignAllKilled: the same validation design applied to the
// compute service — every nova authorization mutant is killed with zero
// false positives.
func TestNovaCampaignAllKilled(t *testing.T) {
	report, err := RunNovaCampaign(NovaCatalogue())
	if err != nil {
		t.Fatal(err)
	}
	if report.BaselineViolations != 0 {
		t.Errorf("baseline violations = %d", report.BaselineViolations)
	}
	for _, run := range report.Runs {
		if !run.Killed {
			t.Errorf("nova mutant %s (%s) survived", run.MutantID, run.MutantName)
		}
	}
	if len(report.Runs) != 4 {
		t.Errorf("runs = %d, want 4", len(report.Runs))
	}
}

func TestNovaCatalogueWellFormed(t *testing.T) {
	seen := map[string]bool{}
	for _, m := range NovaCatalogue() {
		if m.ID == "" || m.Name == "" || m.Apply == nil {
			t.Errorf("incomplete mutant %+v", m)
		}
		if seen[m.ID] {
			t.Errorf("duplicate ID %s", m.ID)
		}
		seen[m.ID] = true
	}
}
