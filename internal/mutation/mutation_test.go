package mutation

import (
	"bytes"
	"strings"
	"testing"
)

func TestCatalogueWellFormed(t *testing.T) {
	muts := Catalogue()
	if len(muts) < 12 {
		t.Fatalf("catalogue size = %d, want >= 12", len(muts))
	}
	seen := make(map[string]bool)
	paperCount := 0
	for _, m := range muts {
		if m.ID == "" || m.Name == "" || m.Description == "" || m.Apply == nil {
			t.Errorf("mutant %+v incomplete", m)
		}
		if seen[m.ID] {
			t.Errorf("duplicate mutant ID %s", m.ID)
		}
		seen[m.ID] = true
		if m.Kind != KindAuthorization && m.Kind != KindFunctional {
			t.Errorf("mutant %s has invalid kind", m.ID)
		}
		if m.Paper {
			paperCount++
		}
	}
	// The paper's validation used exactly three mutants.
	if paperCount != 3 {
		t.Errorf("paper mutants = %d, want 3", paperCount)
	}
	if got := len(PaperMutants()); got != 3 {
		t.Errorf("PaperMutants = %d", got)
	}
}

func TestBaselineHasNoFalsePositives(t *testing.T) {
	lab, err := NewLab()
	if err != nil {
		t.Fatal(err)
	}
	requests := lab.RunMatrix()
	if requests < 12 {
		t.Errorf("matrix issued only %d requests", requests)
	}
	if v := lab.Sys.Monitor.Violations(); len(v) != 0 {
		for _, viol := range v {
			t.Errorf("false positive: %s %s (%s)", viol.Trigger, viol.Outcome, viol.Detail)
		}
	}
	// The matrix must exercise every security requirement.
	cov := lab.Sys.Monitor.Coverage()
	for _, s := range []string{"1.1", "1.2", "1.3", "1.4"} {
		if cov[s] == 0 {
			t.Errorf("SecReq %s not covered by the matrix", s)
		}
	}
}

// TestPaperMutantsAllKilled reproduces Section VI.D: the monitor kills all
// three mutants injected into the cloud implementation.
func TestPaperMutantsAllKilled(t *testing.T) {
	report, err := RunCampaign(PaperMutants())
	if err != nil {
		t.Fatal(err)
	}
	if report.BaselineViolations != 0 {
		t.Errorf("baseline violations = %d, want 0", report.BaselineViolations)
	}
	if report.Killed() != 3 {
		for _, run := range report.Runs {
			t.Logf("%s (%s): killed=%v violations=%d first=%s",
				run.MutantID, run.MutantName, run.Killed, run.Violations, run.FirstViolation)
		}
		t.Fatalf("killed %d/3 paper mutants", report.Killed())
	}
}

// TestFullCatalogueKilled runs the extended campaign: every mutant in the
// catalogue must be detected by the standard request matrix.
func TestFullCatalogueKilled(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaign in -short mode")
	}
	report, err := RunCampaign(Catalogue())
	if err != nil {
		t.Fatal(err)
	}
	for _, run := range report.Runs {
		if !run.Killed {
			t.Errorf("mutant %s (%s) survived", run.MutantID, run.MutantName)
		}
	}
	if report.KillRatio() != 1 {
		t.Errorf("kill ratio = %.2f, want 1.00", report.KillRatio())
	}
}

func TestReportFormat(t *testing.T) {
	report, err := RunCampaign(PaperMutants()[:1])
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	report.Format(&buf)
	out := buf.String()
	for _, want := range []string{"A1", "delete-allows-member", "killed 1/1", "baseline"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestKillRatioEmpty(t *testing.T) {
	r := &CampaignReport{}
	if r.KillRatio() != 1 {
		t.Error("empty campaign ratio should be 1")
	}
}

func TestKindString(t *testing.T) {
	if KindAuthorization.String() != "authorization" || KindFunctional.String() != "functional" {
		t.Error("kind names wrong")
	}
	if Kind(99).String() == "" {
		t.Error("unknown kind should render")
	}
}
