package mutation

import (
	"testing"

	"cloudmon/internal/mbt"
	"cloudmon/internal/paper"
	"cloudmon/internal/uml"
)

var mbtRoles = []string{paper.RoleAdmin, paper.RoleMember, paper.RoleUser}

// TestMBTSuiteOnCleanCloud: the suite generated from the behavioral model
// runs green against a correct deployment — every positive case permitted,
// every negative and anonymous case denied, no monitor violations.
func TestMBTSuiteOnCleanCloud(t *testing.T) {
	suite, err := mbt.Generate(paper.CinderBehavioralModel(), mbtRoles)
	if err != nil {
		t.Fatal(err)
	}
	ex := NewModelExecutor(nil)
	res, err := mbt.Run(suite, ex)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range res.Failures() {
		t.Errorf("case %s failed: permitted=%v expect=%v setup=%v",
			f.Case.ID, f.Permitted, f.Case.ExpectPermitted, f.SetupErr)
	}
	if v := ex.Lab().Sys.Monitor.Violations(); len(v) != 0 {
		t.Errorf("clean deployment produced %d violations", len(v))
	}
}

// TestMBTSuiteKillsPaperMutants: the auto-generated suite is as strong an
// oracle as the hand-written matrix — every paper mutant is exposed either
// by a failing case or by a monitor violation.
func TestMBTSuiteKillsPaperMutants(t *testing.T) {
	if testing.Short() {
		t.Skip("mutant sweep in -short mode")
	}
	suite, err := mbt.Generate(paper.CinderBehavioralModel(), mbtRoles)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range PaperMutants() {
		m := m
		t.Run(m.ID, func(t *testing.T) {
			ex := NewModelExecutor(&m)
			res, err := mbt.Run(suite, ex)
			if err != nil {
				t.Fatal(err)
			}
			// A mutant is killed if any case deviates from its expectation
			// OR the monitor flagged a violation during the run (in Observe
			// mode the monitor answers 409 for violations, so the case may
			// still "pass" — the oracle signal is the violation itself).
			failures := len(res.Failures())
			if failures == 0 && ex.Violations() == 0 {
				t.Errorf("mutant %s (%s) survived the generated suite", m.ID, m.Name)
			}
		})
	}
}

// TestModelExecutorRejectsForeignResources guards the executor's scope.
func TestModelExecutorScope(t *testing.T) {
	ex := NewModelExecutor(nil)
	if _, err := ex.Fire(mbt.Step{}); err == nil {
		t.Error("firing before reset should error")
	}
	if err := ex.Reset(); err != nil {
		t.Fatal(err)
	}
	if _, err := ex.Fire(mbt.Step{Trigger: serverTrigger()}); err == nil {
		t.Error("non-volume trigger accepted")
	}
}

// serverTrigger is a trigger outside the executor's volume scope.
func serverTrigger() uml.Trigger {
	return uml.Trigger{Method: uml.GET, Resource: "server"}
}
