package mutation

import (
	"fmt"
	"net/http"

	"cloudmon/internal/core"
	"cloudmon/internal/httpkit"
	"cloudmon/internal/monitor"
	"cloudmon/internal/openstack"
	"cloudmon/internal/openstack/nova"
	"cloudmon/internal/osbinding"
	"cloudmon/internal/osclient"
	"cloudmon/internal/paper"
)

// This file extends the validation to the compute service: the same
// campaign design (inject faults into the cloud, drive a matrix through
// the monitor, count kills) applied to the Nova server model — evidence
// that the approach generalizes beyond the paper's Cinder case study.

// NovaCatalogue returns authorization mutants for the compute service.
func NovaCatalogue() []Mutant {
	novaPolicyMutant := func(id, name, desc, action, rule string) Mutant {
		return Mutant{
			ID: id, Name: name, Description: desc, Kind: KindAuthorization,
			Apply: func(c *openstack.Cloud) error {
				p := c.Compute.Policy().Clone()
				if err := p.SetRule(action, rule); err != nil {
					return fmt.Errorf("mutation %s: %w", id, err)
				}
				c.Compute.SetPolicy(p)
				return nil
			},
		}
	}
	return []Mutant{
		novaPolicyMutant("N1", "server-delete-allows-member",
			"the compute DELETE policy wrongly grants the member role",
			nova.ActionDelete, "role:admin or role:member"),
		novaPolicyMutant("N2", "server-get-denies-user",
			"the compute GET policy wrongly drops the user role",
			nova.ActionGet, "role:admin or role:member"),
		novaPolicyMutant("N3", "server-create-allows-user",
			"the compute POST policy wrongly grants the user role",
			nova.ActionCreate, "role:admin or role:member or role:user"),
		novaPolicyMutant("N4", "server-delete-denies-admin",
			"a role-name typo denies server DELETE even to administrators",
			nova.ActionDelete, "role:adm1n"),
	}
}

// NovaLab is the compute-service twin of Lab: a fresh cloud monitored by
// contracts generated from the Nova server model.
type NovaLab struct {
	Cloud     *openstack.Cloud
	Sys       *core.System
	ProjectID string

	monClient *osclient.Client
	tokens    map[string]string
	created   []string
	requests  int
}

// NewNovaLab builds the compute-model deployment.
func NewNovaLab() (*NovaLab, error) {
	cloud := openstack.New(openstack.Config{})
	res := cloud.ApplySeed(openstack.Seed{
		ProjectName: "myProject",
		GroupRoles:  paper.GroupRole(),
		Users:       labUsers,
	})
	cloudHTTP := httpkit.HandlerClient(cloud)
	sys, err := core.Build(core.Options{
		Model:    paper.NovaModel(),
		CloudURL: "http://cloud.internal",
		ServiceAccount: osbinding.ServiceAccount{
			User: "cm-svc", Password: "pw-svc", ProjectID: res.ProjectID,
		},
		Mode:       monitor.Observe,
		HTTPClient: cloudHTTP,
	})
	if err != nil {
		return nil, fmt.Errorf("mutation: build nova monitor: %w", err)
	}
	lab := &NovaLab{
		Cloud:     cloud,
		Sys:       sys,
		ProjectID: res.ProjectID,
		tokens:    make(map[string]string, 3),
	}
	lab.monClient = osclient.New("http://monitor.internal")
	lab.monClient.HTTPClient = httpkit.HandlerClient(sys.Monitor)
	cloudClient := osclient.New("http://cloud.internal")
	cloudClient.HTTPClient = cloudHTTP
	for user, role := range map[string]string{
		"alice": paper.RoleAdmin, "bob": paper.RoleMember, "carol": paper.RoleUser,
	} {
		auth := *cloudClient
		tok, err := auth.Authenticate(user, "pw-"+user, res.ProjectID)
		if err != nil {
			return nil, fmt.Errorf("mutation: authenticate %s: %w", user, err)
		}
		lab.tokens[role] = tok
	}
	return lab, nil
}

func (l *NovaLab) serversPath() string {
	return "/projects/" + l.ProjectID + "/servers"
}

func (l *NovaLab) as(role string) *osclient.Client {
	return l.monClient.WithToken(l.tokens[role])
}

func (l *NovaLab) post(role string) string {
	l.requests++
	var out struct {
		Server nova.Server `json:"server"`
	}
	in := map[string]map[string]string{"server": {"name": "srv"}}
	if _, err := l.as(role).Do(http.MethodPost, l.serversPath(), in, &out, nil); err != nil {
		return ""
	}
	l.created = append(l.created, out.Server.ID)
	return out.Server.ID
}

func (l *NovaLab) get(role, id string) {
	l.requests++
	_, _ = l.as(role).Do(http.MethodGet, l.serversPath()+"/"+id, nil, nil, nil)
}

func (l *NovaLab) del(role, id string) {
	l.requests++
	_, _ = l.as(role).Do(http.MethodDelete, l.serversPath()+"/"+id, nil, nil, nil)
}

// RunMatrix drives the compute request matrix: creation by each role,
// reads by each role, forbidden deletions, then cleanup by the admin.
func (l *NovaLab) RunMatrix() int {
	before := l.requests
	s1 := l.post(paper.RoleAdmin)
	l.post(paper.RoleMember)
	l.post(paper.RoleUser) // forbidden

	target := s1
	if target == "" {
		target = "missing-server"
	}
	for _, role := range []string{paper.RoleAdmin, paper.RoleMember, paper.RoleUser} {
		l.get(role, target)
	}
	l.del(paper.RoleMember, target) // forbidden
	l.del(paper.RoleUser, target)   // forbidden
	for _, id := range l.created {
		if id != "" {
			l.del(paper.RoleAdmin, id)
		}
	}
	return l.requests - before
}

// RunNovaCampaign executes the compute matrix against a clean deployment
// and one fresh deployment per mutant.
func RunNovaCampaign(mutants []Mutant) (*CampaignReport, error) {
	report := &CampaignReport{}
	baseline, err := NewNovaLab()
	if err != nil {
		return nil, err
	}
	report.BaselineRequests = baseline.RunMatrix()
	report.BaselineViolations = len(baseline.Sys.Monitor.Violations())

	for _, m := range mutants {
		lab, err := NewNovaLab()
		if err != nil {
			return nil, err
		}
		if err := m.Apply(lab.Cloud); err != nil {
			return nil, err
		}
		requests := lab.RunMatrix()
		violations := lab.Sys.Monitor.Violations()
		run := RunReport{
			MutantID:   m.ID,
			MutantName: m.Name,
			Kind:       m.Kind,
			Paper:      m.Paper,
			Killed:     len(violations) > 0,
			Violations: len(violations),
			Requests:   requests,
		}
		if len(violations) > 0 {
			v := violations[0]
			run.FirstViolation = fmt.Sprintf("%s on %s", v.Outcome, v.Trigger)
		}
		report.Runs = append(report.Runs, run)
	}
	return report, nil
}
