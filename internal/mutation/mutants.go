// Package mutation reproduces and extends the paper's validation
// (Section VI.D): implementation faults — mutants — are systematically
// injected into the simulated private cloud, a request matrix is driven
// through the cloud monitor in its test-oracle mode, and a mutant counts
// as killed when the monitor reports a contract violation.
//
// The paper injected three authorization mutants and killed all three; the
// catalogue below contains those three (marked Paper) plus an extended set
// of authorization and functional mutants.
package mutation

import (
	"fmt"

	"cloudmon/internal/openstack"
	"cloudmon/internal/openstack/cinder"
)

// Kind classifies mutants.
type Kind int

// Mutant kinds.
const (
	// KindAuthorization mutants corrupt the access-control implementation
	// (wrong role, dropped check, over/under-permissive policy).
	KindAuthorization Kind = iota + 1
	// KindFunctional mutants corrupt the functional behaviour the
	// contracts specify (quota, status lifecycle, lost effects).
	KindFunctional
)

// String returns the kind name.
func (k Kind) String() string {
	switch k {
	case KindAuthorization:
		return "authorization"
	case KindFunctional:
		return "functional"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Mutant is one injectable implementation fault.
type Mutant struct {
	// ID is a short stable identifier, e.g. "A1".
	ID string
	// Name is a one-line summary.
	Name string
	// Description explains the developer error the mutant models.
	Description string
	// Kind classifies the fault.
	Kind Kind
	// Paper marks the three mutants reproducing the paper's validation.
	Paper bool
	// Apply injects the fault into a freshly built cloud.
	Apply func(c *openstack.Cloud) error
}

// policyMutant builds a mutant that replaces one cinder policy rule.
func policyMutant(id, name, desc, action, rule string, isPaper bool) Mutant {
	return Mutant{
		ID: id, Name: name, Description: desc,
		Kind: KindAuthorization, Paper: isPaper,
		Apply: func(c *openstack.Cloud) error {
			p := c.Volumes.Policy().Clone()
			if err := p.SetRule(action, rule); err != nil {
				return fmt.Errorf("mutation %s: %w", id, err)
			}
			c.Volumes.SetPolicy(p)
			return nil
		},
	}
}

// faultMutant builds a mutant that installs cinder fault flags.
func faultMutant(id, name, desc string, kind Kind, f cinder.Faults) Mutant {
	return Mutant{
		ID: id, Name: name, Description: desc, Kind: kind,
		Apply: func(c *openstack.Cloud) error {
			c.Volumes.SetFaults(f)
			return nil
		},
	}
}

// Catalogue returns the full mutant catalogue. The first three reproduce
// the paper's validation mutants ("wrong authorization on resources").
func Catalogue() []Mutant {
	return []Mutant{
		// --- The paper's three authorization mutants. ---
		policyMutant("A1", "delete-allows-member",
			"the DELETE policy wrongly grants the member role (privilege escalation)",
			cinder.ActionDelete, "role:admin or role:member", true),
		policyMutant("A2", "get-denies-user",
			"the GET policy wrongly drops the user role (authorized user locked out)",
			cinder.ActionGet, "role:admin or role:member", true),
		{
			ID:   "A3",
			Name: "delete-check-dropped",
			Description: "the developer forgot the authorization check on DELETE " +
				"entirely; any authenticated user can delete volumes",
			Kind: KindAuthorization, Paper: true,
			Apply: func(c *openstack.Cloud) error {
				c.Volumes.SetFaults(cinder.Faults{
					SkipAuth: map[string]bool{cinder.ActionDelete: true},
				})
				return nil
			},
		},
		// --- Extended authorization mutants. ---
		policyMutant("A4", "create-allows-user",
			"the POST policy wrongly grants the user role",
			cinder.ActionCreate, "role:admin or role:member or role:user", false),
		policyMutant("A5", "update-allows-user",
			"the PUT policy wrongly grants the user role",
			cinder.ActionUpdate, "role:admin or role:member or role:user", false),
		policyMutant("A6", "delete-allows-anyone",
			"the DELETE policy degenerates to always-allow",
			cinder.ActionDelete, "@", false),
		policyMutant("A7", "delete-denies-admin",
			"a role-name typo denies DELETE even to administrators",
			cinder.ActionDelete, "role:adm1n", false),
		policyMutant("A8", "create-denies-member",
			"the POST policy wrongly drops the member role",
			cinder.ActionCreate, "role:admin", false),
		policyMutant("A9", "update-denies-member",
			"the PUT policy wrongly drops the member role",
			cinder.ActionUpdate, "role:admin", false),
		{
			ID:   "A10",
			Name: "create-check-dropped",
			Description: "the developer forgot the authorization check on POST; " +
				"any authenticated user can create volumes",
			Kind: KindAuthorization,
			Apply: func(c *openstack.Cloud) error {
				c.Volumes.SetFaults(cinder.Faults{
					SkipAuth: map[string]bool{cinder.ActionCreate: true},
				})
				return nil
			},
		},
		// --- Functional mutants. ---
		faultMutant("F1", "delete-ignores-in-use",
			"DELETE removes volumes that are attached to an instance",
			KindFunctional, cinder.Faults{IgnoreInUseOnDelete: true}),
		faultMutant("F2", "create-ignores-quota",
			"POST creates volumes beyond the project quota",
			KindFunctional, cinder.Faults{IgnoreQuotaOnCreate: true}),
		faultMutant("F3", "delete-is-noop",
			"DELETE acknowledges with 204 but the volume is not removed",
			KindFunctional, cinder.Faults{DeleteIsNoOp: true}),
		faultMutant("F4", "create-is-noop",
			"POST acknowledges with 202 but no volume is created",
			KindFunctional, cinder.Faults{CreateIsNoOp: true}),
		faultMutant("F5", "delete-wrong-status",
			"DELETE answers 500 although the volume was removed",
			KindFunctional, cinder.Faults{DeleteStatusCode: 500}),
	}
}

// PaperMutants returns only the three mutants reproducing Section VI.D.
func PaperMutants() []Mutant {
	var out []Mutant
	for _, m := range Catalogue() {
		if m.Paper {
			out = append(out, m)
		}
	}
	return out
}
