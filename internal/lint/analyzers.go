package lint

import (
	"go/ast"
	"path/filepath"
	"regexp"
)

// Analyzers returns the repo's full analyzer set, in the order findings
// should be reported.
func Analyzers() []*Analyzer {
	return []*Analyzer{HotPath(), AtomicCounters(), CanonicalJSON()}
}

// hotFuncs names the per-request hot path, per package: the monitor's
// check dispatch and the demand-driven evaluators it re-enters once per
// clause, and the compiled engine's slot accessors and program entry —
// the functions every fused closure funnels through, where a stray
// allocation multiplies by the atom count. Everything reachable per
// request but outside these (snapshotting, forwarding, verdict
// recording) already allocates by design.
var hotFuncs = map[string]map[string]bool{
	"monitor": {
		"(*Monitor).check": true,
		"evalDemand":       true,
		"evalProgram":      true,
	},
	"contract": {
		"(*Frame).loadCur":    true,
		"(*Frame).loadPre":    true,
		"(*Frame).SetCur":     true,
		"(*Frame).SetPre":     true,
		"(*Frame).SetCurSlot": true,
		"(*Frame).SetPreSlot": true,
		"(*Program).Run":      true,
	},
}

// HotPath forbids wall-clock reads, string formatting, and map
// allocation inside the monitor's hot-path functions. Each of those
// showed up in profiles before the lazy engine's rewrite; the rule keeps
// them from creeping back.
func HotPath() *Analyzer {
	return &Analyzer{
		Name: "hotpath",
		Doc:  "no time.Now, fmt.Sprintf, or map allocation in the monitor hot path",
		Run:  runHotPath,
	}
}

func runHotPath(p *Pass) {
	funcs := hotFuncs[p.Pkg]
	if funcs == nil {
		return
	}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !funcs[funcKey(fn)] {
				continue
			}
			name := funcKey(fn)
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CallExpr:
					if isPkgCall(n, "time", "Now") {
						p.Reportf(n.Pos(), "%s calls time.Now in the hot path; take timestamps outside or reuse the request's", name)
					}
					if isPkgCall(n, "fmt", "Sprintf") {
						p.Reportf(n.Pos(), "%s calls fmt.Sprintf in the hot path; format lazily in the verdict or error path", name)
					}
					if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "make" && len(n.Args) > 0 {
						if _, isMap := n.Args[0].(*ast.MapType); isMap {
							p.Reportf(n.Pos(), "%s allocates a map in the hot path; preallocate at route-compile time", name)
						}
					}
				case *ast.CompositeLit:
					if _, isMap := n.Type.(*ast.MapType); isMap {
						p.Reportf(n.Pos(), "%s allocates a map literal in the hot path; preallocate at route-compile time", name)
					}
				}
				return true
			})
		}
	}
}

// funcKey renders a FuncDecl as "name" or "(*Recv).name".
func funcKey(fn *ast.FuncDecl) string {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return fn.Name.Name
	}
	switch t := fn.Recv.List[0].Type.(type) {
	case *ast.StarExpr:
		if id, ok := t.X.(*ast.Ident); ok {
			return "(*" + id.Name + ")." + fn.Name.Name
		}
	case *ast.Ident:
		return t.Name + "." + fn.Name.Name
	}
	return fn.Name.Name
}

// isPkgCall reports whether call is pkg.sel(...), matching the selector
// syntactically (the repo imports stdlib packages under their own names).
func isPkgCall(call *ast.CallExpr, pkg, sel string) bool {
	s, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || s.Sel.Name != sel {
		return false
	}
	id, ok := s.X.(*ast.Ident)
	return ok && id.Name == pkg
}

// counterName matches struct field names that denote tallies shared
// across request goroutines.
var counterName = regexp.MustCompile(`(?i)(count|counter|total|hits|misses|pruned|mismatch|coalesced|outcomes|coverage)`)

// AtomicCounters requires that counter-named struct fields in the monitor
// package use the lock-free obs types (or sync/atomic) instead of raw
// integers: every request goroutine increments them, and a raw int is a
// data race the race detector only catches when two requests actually
// collide. Exported fields are exempt — they appear only in snapshot
// structs (Verdict, CacheStats, FetchStats) returned by value; the live
// shared state is always an unexported field.
func AtomicCounters() *Analyzer {
	return &Analyzer{
		Name: "atomiccounter",
		Doc:  "counter-named monitor struct fields must be obs.Counter/obs.KeyedCounter or atomic, not raw ints",
		Run:  runAtomicCounters,
	}
}

func runAtomicCounters(p *Pass) {
	if p.Pkg != "monitor" {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				if !isRawIntType(field.Type) {
					continue
				}
				for _, name := range field.Names {
					if !ast.IsExported(name.Name) && counterName.MatchString(name.Name) {
						p.Reportf(name.Pos(),
							"field %s looks like a shared counter but is a raw integer; use obs.Counter, obs.KeyedCounter, or sync/atomic",
							name.Name)
					}
				}
			}
			return true
		})
	}
}

// CanonicalJSON forbids plain encoding/json marshalling inside the
// evidence package: every signed or hashed document there must go
// through the canonical encoder, or two semantically identical
// documents could hash differently and verdict evidence would stop
// being portable. canonical.go itself — the codec — is exempt; reading
// (json.Unmarshal, json.NewDecoder) is always allowed.
func CanonicalJSON() *Analyzer {
	return &Analyzer{
		Name: "canonicaljson",
		Doc:  "the evidence package must marshal through evidence.Marshal, not encoding/json",
		Run:  runCanonicalJSON,
	}
}

func runCanonicalJSON(p *Pass) {
	if p.Pkg != "evidence" {
		return
	}
	for _, f := range p.Files {
		if filepath.Base(p.Fset.Position(f.Pos()).Filename) == "canonical.go" {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			for _, sel := range []string{"Marshal", "MarshalIndent", "NewEncoder"} {
				if isPkgCall(call, "json", sel) {
					p.Reportf(call.Pos(),
						"json.%s in package evidence bypasses canonicalization; use evidence.Marshal (hashes and signatures cover exact bytes)",
						sel)
				}
			}
			return true
		})
	}
}

func isRawIntType(t ast.Expr) bool {
	id, ok := t.(*ast.Ident)
	if !ok {
		return false
	}
	switch id.Name {
	case "int", "int32", "int64", "uint", "uint32", "uint64", "uintptr":
		return true
	}
	return false
}
