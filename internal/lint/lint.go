// Package lint is the repo's own static analyzer, shaped after
// golang.org/x/tools/go/analysis but built on the standard library's
// go/parser and go/ast alone (the repo takes no dependencies). Each
// Analyzer inspects parsed files and reports findings; Run walks a source
// tree and applies every analyzer to every package.
//
// The analyzers encode invariants the monitor's performance work depends
// on but the compiler cannot check: the per-request hot path must not
// allocate or format, and counters shared across request goroutines must
// be the lock-free obs types, not raw integers.
package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// An Analyzer names one check and the function that runs it over a
// single package.
type Analyzer struct {
	// Name identifies the analyzer in findings, e.g. "hotpath".
	Name string
	// Doc is a one-line description of what the analyzer enforces.
	Doc string
	// Run inspects the package and reports findings through the pass.
	Run func(*Pass)
}

// A Pass carries one package's parsed files to an analyzer and collects
// its findings.
type Pass struct {
	Fset *token.FileSet
	// Pkg is the package name (not import path) of the files.
	Pkg string
	// Dir is the directory the files were parsed from, relative to the
	// Run root.
	Dir      string
	Files    []*ast.File
	analyzer *Analyzer
	findings *[]Finding
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.findings = append(*p.findings, Finding{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Finding is one rule violation.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Pos, f.Analyzer, f.Message)
}

// Run walks every Go package under root and applies the analyzers.
// Test files, testdata, and hidden directories are skipped: the rules
// guard production code.
func Run(root string, analyzers []*Analyzer) ([]Finding, error) {
	pkgs, err := loadPackages(root)
	if err != nil {
		return nil, err
	}
	var findings []Finding
	for _, pkg := range pkgs {
		RunPackage(pkg, analyzers, &findings)
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, nil
}

// RunPackage applies the analyzers to one parsed package, appending to
// findings. Exposed so tests can lint synthetic sources.
func RunPackage(pkg *Pass, analyzers []*Analyzer, findings *[]Finding) {
	for _, a := range analyzers {
		p := *pkg
		p.analyzer = a
		p.findings = findings
		a.Run(&p)
	}
}

// loadPackages parses every non-test Go file under root, grouped by
// directory.
func loadPackages(root string) ([]*Pass, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
			return filepath.SkipDir
		}
		dirs = append(dirs, path)
		return nil
	})
	if err != nil {
		return nil, err
	}
	var pkgs []*Pass
	for _, dir := range dirs {
		entries, err := os.ReadDir(dir)
		if err != nil {
			return nil, err
		}
		fset := token.NewFileSet()
		var files []*ast.File
		pkgName := ""
		for _, e := range entries {
			name := e.Name()
			if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
				continue
			}
			f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.SkipObjectResolution)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", filepath.Join(dir, name), err)
			}
			files = append(files, f)
			pkgName = f.Name.Name
		}
		if len(files) == 0 {
			continue
		}
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			rel = dir
		}
		pkgs = append(pkgs, &Pass{Fset: fset, Pkg: pkgName, Dir: rel, Files: files})
	}
	return pkgs, nil
}
