package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

// parseSrc builds a Pass from synthetic source, the way testdata packages
// feed go/analysis analyzers.
func parseSrc(t *testing.T, src string) *Pass {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "src.go", src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	return &Pass{Fset: fset, Pkg: f.Name.Name, Dir: ".", Files: []*ast.File{f}}
}

func lintSrc(t *testing.T, src string) []Finding {
	t.Helper()
	var findings []Finding
	RunPackage(parseSrc(t, src), Analyzers(), &findings)
	return findings
}

func wantFinding(t *testing.T, findings []Finding, analyzer, needle string) {
	t.Helper()
	for _, f := range findings {
		if f.Analyzer == analyzer && strings.Contains(f.Message, needle) {
			return
		}
	}
	t.Fatalf("no %s finding mentioning %q in %v", analyzer, needle, findings)
}

func TestHotPathForbidsTimeSprintfAndMaps(t *testing.T) {
	findings := lintSrc(t, `package monitor

import (
	"fmt"
	"time"
)

type Monitor struct{}

func (m *Monitor) check() {
	_ = time.Now()
	_ = fmt.Sprintf("%d", 1)
	_ = make(map[string]bool)
}

func evalDemand() {
	_ = map[string]int{"a": 1}
}
`)
	wantFinding(t, findings, "hotpath", "(*Monitor).check calls time.Now")
	wantFinding(t, findings, "hotpath", "(*Monitor).check calls fmt.Sprintf")
	wantFinding(t, findings, "hotpath", "(*Monitor).check allocates a map")
	wantFinding(t, findings, "hotpath", "evalDemand allocates a map literal")
	if len(findings) != 4 {
		t.Fatalf("got %d findings, want 4: %v", len(findings), findings)
	}
}

// TestHotPathCoversCompiledEngine pins the rule's reach into the
// contract package: the compiled engine's slot accessors are on every
// fused closure's path, so the same constructs are forbidden there.
func TestHotPathCoversCompiledEngine(t *testing.T) {
	findings := lintSrc(t, `package contract

import "time"

type Frame struct{}
type Program struct{}

func (fr *Frame) loadCur(i int) { _ = time.Now() }

func (p *Program) Run() { _ = make(map[string]int) }
`)
	wantFinding(t, findings, "hotpath", "(*Frame).loadCur calls time.Now")
	wantFinding(t, findings, "hotpath", "(*Program).Run allocates a map")
	if len(findings) != 2 {
		t.Fatalf("got %d findings, want 2: %v", len(findings), findings)
	}
}

func TestHotPathIgnoresColdFunctionsAndOtherPackages(t *testing.T) {
	// The same constructs outside the hot-path functions are fine.
	if f := lintSrc(t, `package monitor

import "time"

func (m *Monitor) record() { _ = time.Now(); _ = make(map[string]bool) }

type Monitor struct{}
`); len(f) != 0 {
		t.Fatalf("cold function flagged: %v", f)
	}
	// A different package named check/evalDemand is out of scope.
	if f := lintSrc(t, `package other

import "time"

func evalDemand() { _ = time.Now() }
`); len(f) != 0 {
		t.Fatalf("other package flagged: %v", f)
	}
}

func TestAtomicCountersFlagsRawSharedInts(t *testing.T) {
	findings := lintSrc(t, `package monitor

type Monitor struct {
	requestCount uint64
	factsPruned  int64
}
`)
	wantFinding(t, findings, "atomiccounter", "requestCount")
	wantFinding(t, findings, "atomiccounter", "factsPruned")
}

func TestAtomicCountersAllowsObsTypesAndSnapshots(t *testing.T) {
	findings := lintSrc(t, `package monitor

import "cloudmon/internal/obs"

type Monitor struct {
	coalesced obs.Counter
	coverage  obs.KeyedCounter
	maxLog    int
}

// Snapshot structs returned by value carry exported raw ints by design.
type CacheStats struct {
	Hits   uint64
	Misses uint64
}
`)
	if len(findings) != 0 {
		t.Fatalf("legitimate counters flagged: %v", findings)
	}
}

func TestCanonicalJSONForbidsPlainMarshalInEvidence(t *testing.T) {
	findings := lintSrc(t, `package evidence

import (
	"encoding/json"
	"io"
)

func bad(w io.Writer) {
	_, _ = json.Marshal(1)
	_, _ = json.MarshalIndent(1, "", " ")
	_ = json.NewEncoder(w)
}

func stillFine() {
	_ = json.Unmarshal(nil, nil)
	_ = json.NewDecoder(nil)
}
`)
	wantFinding(t, findings, "canonicaljson", "json.Marshal in package evidence")
	wantFinding(t, findings, "canonicaljson", "json.MarshalIndent in package evidence")
	wantFinding(t, findings, "canonicaljson", "json.NewEncoder in package evidence")
	if len(findings) != 3 {
		t.Fatalf("got %d findings, want 3 (reads are allowed): %v", len(findings), findings)
	}
}

func TestCanonicalJSONExemptsCodecAndOtherPackages(t *testing.T) {
	// canonical.go IS the codec: it must call encoding/json.
	src := `package evidence

import "encoding/json"

func Marshal(v any) ([]byte, error) { return json.Marshal(v) }
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "canonical.go", src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	var findings []Finding
	RunPackage(&Pass{Fset: fset, Pkg: "evidence", Dir: ".", Files: []*ast.File{f}}, Analyzers(), &findings)
	if len(findings) != 0 {
		t.Fatalf("canonical.go exemption broken: %v", findings)
	}
	// Any other package may marshal as it likes.
	if f := lintSrc(t, `package obs

import "encoding/json"

func write() { _, _ = json.Marshal(1) }
`); len(f) != 0 {
		t.Fatalf("other package flagged: %v", f)
	}
}

// TestRepoIsClean lints the actual repository: the monitor hot path and
// counter fields must satisfy the rules the analyzers enforce.
func TestRepoIsClean(t *testing.T) {
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		t.Skip("caller unavailable")
	}
	root := filepath.Dir(filepath.Dir(filepath.Dir(file))) // internal/lint -> repo root
	findings, err := Run(root, Analyzers())
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}
