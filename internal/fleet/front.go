package fleet

import (
	"fmt"
	"net/http"
	"strings"
	"sync"

	"cloudmon/internal/obs"
)

// Member is one monitor instance as the front tier sees it. In-process
// fleets (loadmon -fleet) fill the fields with direct handler and method
// references; a remote front fills them with small HTTP forwarders.
type Member struct {
	// ID is the instance id — the rendezvous-hash identity. Required.
	ID string
	// Proxy serves the instance's monitor proxy. Required.
	Proxy http.Handler
	// Metrics scrapes the instance's exposition document for the front's
	// federation endpoint (nil: the instance is skipped in federation).
	Metrics func() (string, error)
	// Invalidate bumps the instance's pre-state cache generation for a
	// project — the bus target, and the front's migration fence on
	// resize-driven remaps (nil: no cache to invalidate).
	Invalidate func(project string) error
}

// Front is the fleet's routing tier: an http.Handler that extracts the
// project key from each request path and forwards it to the rendezvous
// owner. Routing is sticky and fenced: the front tracks per-project
// in-flight counts, and when a resize moves a project to a new owner, the
// project's new requests wait for the old owner's in-flight requests to
// drain and the new owner's cache generation is bumped before any of them
// is routed — so a remap can never serve a verdict from another
// instance's stale pre-state.
type Front struct {
	mu      sync.Mutex
	members map[string]*Member
	ring    *Ring
	states  map[string]*projectState

	routed     obs.KeyedCounter // requests per instance id
	remaps     obs.Counter      // project ownership changes (resizes only)
	fenceWaits obs.Counter      // requests that waited on a migration fence
	requests   obs.Counter
}

// projectState is the front's sticky-ownership record for one project.
type projectState struct {
	owner    string
	inflight int
	cond     *sync.Cond
}

// NewFront builds a front over the members; the initial ring spans all of
// them.
func NewFront(members []*Member) (*Front, error) {
	f := &Front{
		members: make(map[string]*Member),
		states:  make(map[string]*projectState),
	}
	if err := f.resizeLocked(members); err != nil {
		return nil, err
	}
	return f, nil
}

// Resize replaces the member set — the N→N+1 (or N→N-1) operation. The
// ring swaps atomically under the front's lock; in-flight requests finish
// on their old owner, and every project the new ring assigns elsewhere is
// fenced and generation-bumped before its next request routes.
func (f *Front) Resize(members []*Member) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.resizeLocked(members); err != nil {
		return err
	}
	// Wake fence waiters: the desired owner may have changed again.
	for _, st := range f.states {
		st.cond.Broadcast()
	}
	return nil
}

func (f *Front) resizeLocked(members []*Member) error {
	ids := make([]string, 0, len(members))
	byID := make(map[string]*Member, len(members))
	for _, m := range members {
		if m == nil || m.Proxy == nil {
			return fmt.Errorf("fleet: member without a proxy handler")
		}
		ids = append(ids, m.ID)
		byID[m.ID] = m
	}
	ring, err := NewRing(ids)
	if err != nil {
		return err
	}
	f.members = byID
	f.ring = ring
	return nil
}

// Ring returns the current routing table.
func (f *Front) Ring() *Ring {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ring
}

// ProjectKey extracts the routing key from a request path. The monitored
// APIs all carry the project as the segment after "projects" (the
// monitor's routes bind it as {project_id}); requests without one — health
// probes, unroutable paths — hash by their full path so they still route
// deterministically.
func ProjectKey(path string) string {
	segs := strings.Split(strings.Trim(path, "/"), "/")
	for i := 0; i+1 < len(segs); i++ {
		if segs[i] == "projects" {
			return segs[i+1]
		}
	}
	return path
}

// ServeHTTP routes the request to the project's owner.
func (f *Front) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	project := ProjectKey(r.URL.Path)
	m, st := f.acquire(project)
	f.requests.Inc()
	f.routed.Add(m.ID, 1)
	defer f.release(st)
	m.Proxy.ServeHTTP(w, r)
}

// acquire resolves the project's owner under the migration fence and
// registers the request in flight.
func (f *Front) acquire(project string) (*Member, *projectState) {
	f.mu.Lock()
	defer f.mu.Unlock()
	st := f.states[project]
	if st == nil {
		st = &projectState{cond: sync.NewCond(&f.mu)}
		f.states[project] = st
	}
	want := f.ring.Owner(project)
	waited := false
	for st.owner != "" && st.owner != want && st.inflight > 0 {
		// The ring moved the project while the old owner still has its
		// requests in flight: wait for the drain, then recheck (the ring
		// may have moved again underneath the wait).
		waited = true
		st.cond.Wait()
		want = f.ring.Owner(project)
	}
	if waited {
		f.fenceWaits.Inc()
	}
	if st.owner != want {
		if st.owner != "" {
			// Remap: the new owner may hold cached pre-state from an
			// earlier ownership stint, predating writes the old owner
			// forwarded. Bump its generation before any request routes.
			f.remaps.Inc()
			if m := f.members[want]; m != nil && m.Invalidate != nil {
				_ = m.Invalidate(project)
			}
		}
		st.owner = want
	}
	st.inflight++
	return f.members[want], st
}

// release retires an in-flight request and wakes fence waiters when the
// project drains.
func (f *Front) release(st *projectState) {
	f.mu.Lock()
	st.inflight--
	if st.inflight == 0 {
		st.cond.Broadcast()
	}
	f.mu.Unlock()
}

// Stats is the front's routing accounting.
type Stats struct {
	// Requests is the total routed request count.
	Requests uint64
	// Routed counts requests per instance id.
	Routed map[string]uint64
	// Remaps counts project ownership changes (0 without a resize — the
	// stable-routing invariant loadmon -verify pins).
	Remaps uint64
	// FenceWaits counts requests that waited on a migration fence.
	FenceWaits uint64
	// Projects is the number of distinct project keys seen.
	Projects int
}

// Stats snapshots the routing counters.
func (f *Front) Stats() Stats {
	f.mu.Lock()
	projects := len(f.states)
	f.mu.Unlock()
	return Stats{
		Requests:   f.requests.Value(),
		Routed:     f.routed.Snapshot(),
		Remaps:     f.remaps.Value(),
		FenceWaits: f.fenceWaits.Value(),
		Projects:   projects,
	}
}

// Owners snapshots the sticky ownership table (project → instance id) for
// projects that have routed at least one request.
func (f *Front) Owners() map[string]string {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make(map[string]string, len(f.states))
	for p, st := range f.states {
		if st.owner != "" {
			out[p] = st.owner
		}
	}
	return out
}

// RegisterMetrics exposes the front's routing counters.
func (f *Front) RegisterMetrics(reg *obs.Registry) {
	reg.Collect(func(w *obs.MetricsWriter) {
		w.Counter("fleet_requests_total",
			"Requests routed by the fleet front.", float64(f.requests.Value()))
		w.KeyedCounter("fleet_routed_total",
			"Requests routed per monitor instance.", &f.routed, "instance")
		w.Counter("fleet_remaps_total",
			"Project ownership changes (resize-driven remaps).", float64(f.remaps.Value()))
		w.Counter("fleet_fence_waits_total",
			"Requests that waited on a migration fence.", float64(f.fenceWaits.Value()))
		f.mu.Lock()
		n, projects := len(f.members), len(f.states)
		f.mu.Unlock()
		w.Gauge("fleet_instances", "Monitor instances in the ring.", float64(n))
		w.Gauge("fleet_projects", "Distinct project keys routed.", float64(projects))
	})
}

// FederationHandler serves the merged exposition document: the front's
// own fleet_* counters plus every member scrape (each already labeled
// with its instance id via the registry's constant labels). Scrape errors
// surface as a fleet_federation_errors comment rather than failing the
// whole scrape — a dead instance must not blind the fleet.
func (f *Front) FederationHandler(front *obs.Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		f.mu.Lock()
		members := make([]*Member, 0, len(f.members))
		for _, m := range f.members {
			members = append(members, m)
		}
		f.mu.Unlock()
		docs := make([]string, 0, len(members)+1)
		if front != nil {
			docs = append(docs, front.Render())
		}
		errs := 0
		for _, m := range members {
			if m.Metrics == nil {
				continue
			}
			doc, err := m.Metrics()
			if err != nil {
				errs++
				continue
			}
			docs = append(docs, doc)
		}
		merged := obs.MergeExpositions(docs...)
		if errs > 0 {
			merged += fmt.Sprintf("# fleet_federation_errors %d instance scrapes failed\n", errs)
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_, _ = w.Write([]byte(merged))
	})
}
