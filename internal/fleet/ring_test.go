package fleet

import (
	"fmt"
	"testing"
)

// syntheticProjects generates k deterministic project keys shaped like
// the simulator's ids (hex-ish, prefixed).
func syntheticProjects(k int) []string {
	out := make([]string, k)
	for i := range out {
		out[i] = fmt.Sprintf("proj-%08x", i*2654435761)
	}
	return out
}

func instanceIDs(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("m-%02d", i)
	}
	return out
}

// TestRingBalance: across 1k synthetic projects every instance's share
// stays within ±20% of the fair share, at N ∈ {2, 4, 8}.
func TestRingBalance(t *testing.T) {
	const k = 1000
	projects := syntheticProjects(k)
	for _, n := range []int{2, 4, 8} {
		ring, err := NewRing(instanceIDs(n))
		if err != nil {
			t.Fatal(err)
		}
		counts := make(map[string]int)
		for _, p := range projects {
			counts[ring.Owner(p)]++
		}
		fair := float64(k) / float64(n)
		lo, hi := fair*0.8, fair*1.2
		for _, id := range ring.Instances() {
			c := float64(counts[id])
			if c < lo || c > hi {
				t.Errorf("N=%d: instance %s owns %.0f projects, outside [%.0f, %.0f] (fair %.0f)",
					n, id, c, lo, hi, fair)
			}
		}
	}
}

// TestRingMinimalRemap: growing the ring by one instance moves at most
// ceil(K/N')+ε keys (N' the new size), every moved key lands on the new
// instance, and unmoved keys keep their owner — rendezvous hashing's
// defining property, and the bound the mid-run resize invariant relies
// on.
func TestRingMinimalRemap(t *testing.T) {
	const k = 1000
	projects := syntheticProjects(k)
	for _, n := range []int{2, 3, 4, 7} {
		old, err := NewRing(instanceIDs(n))
		if err != nil {
			t.Fatal(err)
		}
		grown, err := NewRing(instanceIDs(n + 1))
		if err != nil {
			t.Fatal(err)
		}
		newID := fmt.Sprintf("m-%02d", n)
		moved := 0
		for _, p := range projects {
			before, after := old.Owner(p), grown.Owner(p)
			if before == after {
				continue
			}
			moved++
			if after != newID {
				t.Errorf("N=%d→%d: project %s moved %s→%s, not to the new instance %s",
					n, n+1, p, before, after, newID)
			}
		}
		// Fair share of the grown ring, with 20% slack for hash variance
		// (the same ε the balance property grants).
		bound := int(float64(k)/float64(n+1)*1.2) + 1
		if moved > bound {
			t.Errorf("N=%d→%d: %d of %d keys moved, want ≤ %d (~K/N')", n, n+1, moved, k, bound)
		}
		if moved == 0 {
			t.Errorf("N=%d→%d: no keys moved — the new instance owns nothing", n, n+1)
		}
	}
}

// TestRingStability: ownership is a pure function of (key, instance set)
// — same inputs, same owner, regardless of id order.
func TestRingStability(t *testing.T) {
	a, _ := NewRing([]string{"m-00", "m-01", "m-02"})
	b, _ := NewRing([]string{"m-02", "m-00", "m-01"})
	for _, p := range syntheticProjects(100) {
		if a.Owner(p) != b.Owner(p) {
			t.Fatalf("owner of %s depends on instance order: %s vs %s", p, a.Owner(p), b.Owner(p))
		}
		if a.Owner(p) != a.Owner(p) {
			t.Fatalf("owner of %s is not deterministic", p)
		}
	}
}

func TestRingValidation(t *testing.T) {
	if _, err := NewRing(nil); err == nil {
		t.Error("empty ring accepted")
	}
	if _, err := NewRing([]string{"a", "a"}); err == nil {
		t.Error("duplicate ids accepted")
	}
	if _, err := NewRing([]string{""}); err == nil {
		t.Error("empty id accepted")
	}
}
