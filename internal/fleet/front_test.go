package fleet

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"cloudmon/internal/obs"
)

// fakeInstance records which projects it served and its generation bumps.
type fakeInstance struct {
	id     string
	mu     sync.Mutex
	served map[string]int
	bumped map[string]int
}

func newFakeInstance(id string) *fakeInstance {
	return &fakeInstance{id: id, served: map[string]int{}, bumped: map[string]int{}}
}

func (f *fakeInstance) member() *Member {
	return &Member{
		ID: f.id,
		Proxy: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			f.mu.Lock()
			f.served[ProjectKey(r.URL.Path)]++
			f.mu.Unlock()
			w.WriteHeader(http.StatusOK)
		}),
		Metrics: func() (string, error) {
			return fmt.Sprintf("# HELP t_up up\n# TYPE t_up gauge\nt_up{instance=%q} 1\n", f.id), nil
		},
		Invalidate: func(project string) error {
			f.mu.Lock()
			f.bumped[project]++
			f.mu.Unlock()
			return nil
		},
	}
}

func (f *fakeInstance) servedProjects() map[string]int {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make(map[string]int, len(f.served))
	for k, v := range f.served {
		out[k] = v
	}
	return out
}

func get(t *testing.T, h http.Handler, path string) int {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
	return rec.Code
}

func TestProjectKey(t *testing.T) {
	cases := map[string]string{
		"/projects/p1/volumes":    "p1",
		"/projects/p1/volumes/v9": "p1",
		"/projects/abc":           "abc",
		"/healthz":                "/healthz",
		"/volumes/projects":       "/volumes/projects", // trailing "projects" has no successor
		"/x/projects/p7/quota":    "p7",
	}
	for path, want := range cases {
		if got := ProjectKey(path); got != want {
			t.Errorf("ProjectKey(%q) = %q, want %q", path, got, want)
		}
	}
}

// TestFrontDisjointRouting: every project is served by exactly one
// instance, matching the ring, and the union covers all requests.
func TestFrontDisjointRouting(t *testing.T) {
	fakes := []*fakeInstance{newFakeInstance("m-00"), newFakeInstance("m-01"), newFakeInstance("m-02")}
	members := make([]*Member, len(fakes))
	for i, fk := range fakes {
		members[i] = fk.member()
	}
	front, err := NewFront(members)
	if err != nil {
		t.Fatal(err)
	}
	projects := syntheticProjects(200)
	for round := 0; round < 3; round++ {
		for _, p := range projects {
			if code := get(t, front, "/projects/"+p+"/volumes"); code != http.StatusOK {
				t.Fatalf("status %d", code)
			}
		}
	}
	ring := front.Ring()
	seen := 0
	for _, fk := range fakes {
		for p, n := range fk.servedProjects() {
			seen += n
			if owner := ring.Owner(p); owner != fk.id {
				t.Errorf("project %s served by %s, ring owner is %s", p, fk.id, owner)
			}
		}
	}
	if seen != 3*len(projects) {
		t.Errorf("served %d requests, want %d", seen, 3*len(projects))
	}
	st := front.Stats()
	if st.Remaps != 0 {
		t.Errorf("stable run recorded %d remaps, want 0", st.Remaps)
	}
	if st.Requests != uint64(3*len(projects)) {
		t.Errorf("front counted %d requests, want %d", st.Requests, 3*len(projects))
	}
	if st.Projects != len(projects) {
		t.Errorf("front saw %d projects, want %d", st.Projects, len(projects))
	}
}

// TestFrontResizeFence: a concurrent workload over many projects survives
// an N=3→4 resize with every request answered, every moved project
// generation-bumped on its new owner before it serves there, and the
// remap fraction within the rendezvous bound.
func TestFrontResizeFence(t *testing.T) {
	fakes := make([]*fakeInstance, 4)
	members := make([]*Member, 4)
	for i := range fakes {
		fakes[i] = newFakeInstance(fmt.Sprintf("m-%02d", i))
		members[i] = fakes[i].member()
	}
	front, err := NewFront(members[:3])
	if err != nil {
		t.Fatal(err)
	}
	projects := syntheticProjects(120)
	oldOwners := front.Ring()
	// Establish pre-resize ownership for every project, so each moved one
	// must be fenced and generation-bumped when it re-routes.
	for _, p := range projects {
		if code := get(t, front, "/projects/"+p+"/volumes"); code != http.StatusOK {
			t.Fatalf("status %d", code)
		}
	}

	const rounds = 40
	var wg sync.WaitGroup
	resized := make(chan struct{})
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				if w == 0 && i == rounds/2 {
					if err := front.Resize(members); err != nil {
						t.Errorf("resize: %v", err)
					}
					close(resized)
				}
				p := projects[(w*rounds+i*17)%len(projects)]
				if code := get(t, front, "/projects/"+p+"/volumes"); code != http.StatusOK {
					t.Errorf("status %d for %s", code, p)
				}
			}
		}(w)
	}
	wg.Wait()
	<-resized

	// Drive every project once more so all remaps materialize.
	for _, p := range projects {
		get(t, front, "/projects/"+p+"/volumes")
	}

	newRing := front.Ring()
	if newRing.Size() != 4 {
		t.Fatalf("ring size %d after resize", newRing.Size())
	}
	moved := 0
	for _, p := range projects {
		if oldOwners.Owner(p) != newRing.Owner(p) {
			moved++
			// The moved project must have been bumped on its new owner.
			owner := newRing.Owner(p)
			for _, fk := range fakes {
				if fk.id != owner {
					continue
				}
				fk.mu.Lock()
				bumps := fk.bumped[p]
				fk.mu.Unlock()
				if bumps == 0 {
					t.Errorf("moved project %s has no generation bump on new owner %s", p, owner)
				}
			}
		}
	}
	if bound := int(float64(len(projects))*0.40) + 1; moved > bound {
		t.Errorf("%d/%d projects moved on 3→4 resize, want ≤ %d (~1/N)", moved, len(projects), bound)
	}
	st := front.Stats()
	if st.Remaps == 0 {
		t.Error("resize produced no recorded remaps")
	}
	// Post-resize, every served project must sit with its ring owner.
	for _, fk := range fakes {
		if fk.id == "m-03" {
			for p := range fk.servedProjects() {
				if newRing.Owner(p) != fk.id {
					t.Errorf("new instance served %s which it does not own", p)
				}
			}
		}
	}
}

// TestBusRoutesBumpsToOwner: a bus wired as instance m-00 drops bumps for
// its own projects and posts bumps for projects the ring assigns
// elsewhere.
func TestBusRoutesBumpsToOwner(t *testing.T) {
	fakes := []*fakeInstance{newFakeInstance("m-00"), newFakeInstance("m-01")}
	members := map[string]*Member{}
	for _, fk := range fakes {
		members[fk.id] = fk.member()
	}
	ring, _ := NewRing([]string{"m-00", "m-01"})
	bus := &Bus{
		Self:   "m-00",
		Ring:   func() *Ring { return ring },
		Member: func(id string) *Member { return members[id] },
	}
	own, foreign := 0, 0
	for _, p := range syntheticProjects(100) {
		bus.OnInvalidate(p)
		if ring.Owner(p) == "m-00" {
			own++
		} else {
			foreign++
		}
	}
	bus.Wait()
	sent, dropped := bus.Stats()
	if int(sent) != foreign {
		t.Errorf("bus sent %d bumps, want %d (foreign projects)", sent, foreign)
	}
	if dropped != 0 {
		t.Errorf("bus dropped %d bumps", dropped)
	}
	fakes[1].mu.Lock()
	got := len(fakes[1].bumped)
	fakes[1].mu.Unlock()
	if got != foreign {
		t.Errorf("owner received bumps for %d projects, want %d", got, foreign)
	}
	fakes[0].mu.Lock()
	if len(fakes[0].bumped) != 0 {
		t.Errorf("self-owned projects were bumped over the bus: %v", fakes[0].bumped)
	}
	fakes[0].mu.Unlock()
	if own == 0 || foreign == 0 {
		t.Fatalf("degenerate split own=%d foreign=%d", own, foreign)
	}
}

// TestInvalidateHandler: well-formed bumps bump, oversized and malformed
// ones are rejected, and the wire message stays within 64 bytes.
func TestInvalidateHandler(t *testing.T) {
	bumped := map[string]int{}
	h := InvalidateHandler(invalidatorFunc(func(p string) { bumped[p]++ }))

	do := func(method, body string) int {
		rec := httptest.NewRecorder()
		req := httptest.NewRequest(method, InvalidatePath, strings.NewReader(body))
		h.ServeHTTP(rec, req)
		return rec.Code
	}
	if code := do(http.MethodPost, `{"p":"proj-1"}`); code != http.StatusNoContent {
		t.Errorf("valid bump: status %d", code)
	}
	if bumped["proj-1"] != 1 {
		t.Errorf("bump not applied: %v", bumped)
	}
	if code := do(http.MethodGet, ""); code != http.StatusMethodNotAllowed {
		t.Errorf("GET: status %d", code)
	}
	if code := do(http.MethodPost, `{"p":"`+strings.Repeat("x", 80)+`"}`); code != http.StatusBadRequest {
		t.Errorf("oversized bump: status %d", code)
	}
	if code := do(http.MethodPost, `{`); code != http.StatusBadRequest {
		t.Errorf("malformed bump: status %d", code)
	}
	if code := do(http.MethodPost, `{"p":""}`); code != http.StatusBadRequest {
		t.Errorf("empty project: status %d", code)
	}
}

type invalidatorFunc func(string)

func (f invalidatorFunc) InvalidateProject(p string) { f(p) }

// TestFederationHandler: the merged scrape carries the front's counters
// and every instance document with one header per metric.
func TestFederationHandler(t *testing.T) {
	fakes := []*fakeInstance{newFakeInstance("m-00"), newFakeInstance("m-01")}
	members := make([]*Member, len(fakes))
	for i, fk := range fakes {
		members[i] = fk.member()
	}
	front, err := NewFront(members)
	if err != nil {
		t.Fatal(err)
	}
	get(t, front, "/projects/p1/volumes")
	reg := &obs.Registry{}
	front.RegisterMetrics(reg)

	rec := httptest.NewRecorder()
	front.FederationHandler(reg).ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	body := rec.Body.String()
	samples, err := obs.ParseText([]byte(body))
	if err != nil {
		t.Fatalf("federated document does not parse: %v\n%s", err, body)
	}
	up := obs.CounterByLabel(samples, "t_up", "instance")
	if up["m-00"] != 1 || up["m-01"] != 1 {
		t.Errorf("instance scrapes missing from federation: %v", up)
	}
	if got := obs.Find(samples, "fleet_requests_total"); len(got) != 1 || got[0].Value != 1 {
		t.Errorf("front counters missing from federation: %v", got)
	}
	if n := strings.Count(body, "# TYPE t_up"); n != 1 {
		t.Errorf("TYPE header duplicated %d times", n)
	}
}
