// Package fleet shards the cloud monitor horizontally: a thin front tier
// routes each request to one of N monitor instances by rendezvous hashing
// on the project key, so every instance owns a disjoint slice of projects
// and its per-project machinery — the generation-invalidated pre-state
// cache, the flight-coalescing groups, the async-post queues — stays
// shared-nothing. The package also carries the cross-instance
// invalidation bus (a ≤64-byte generation bump posted to a project's
// owner when another instance forwards a write for it) and the /metrics
// federation the front serves over per-instance scrapes.
package fleet

import (
	"fmt"
	"sort"
)

// Ring is an immutable rendezvous-hash (highest-random-weight) routing
// table over instance ids. Every key hashes against every instance and
// the highest score wins, which gives the two properties the fleet needs
// by construction: keys spread evenly, and adding an instance moves only
// the keys the new instance wins (~1/(N+1) of them) — nothing else
// remaps. Lookups are O(N) with N the instance count, not the key count.
type Ring struct {
	ids []string
}

// NewRing builds a ring over the instance ids (order-insensitive;
// duplicates and empties are errors).
func NewRing(ids []string) (*Ring, error) {
	if len(ids) == 0 {
		return nil, fmt.Errorf("fleet: ring needs at least one instance")
	}
	sorted := make([]string, len(ids))
	copy(sorted, ids)
	sort.Strings(sorted)
	for i, id := range sorted {
		if id == "" {
			return nil, fmt.Errorf("fleet: empty instance id")
		}
		if i > 0 && sorted[i-1] == id {
			return nil, fmt.Errorf("fleet: duplicate instance id %q", id)
		}
	}
	return &Ring{ids: sorted}, nil
}

// Owner returns the instance that owns the key.
func (r *Ring) Owner(key string) string {
	best, bestScore := "", uint64(0)
	for _, id := range r.ids {
		if s := score(key, id); best == "" || s > bestScore {
			best, bestScore = id, s
		}
	}
	return best
}

// Instances returns the sorted instance ids.
func (r *Ring) Instances() []string {
	out := make([]string, len(r.ids))
	copy(out, r.ids)
	return out
}

// Size returns the instance count.
func (r *Ring) Size() int { return len(r.ids) }

// score hashes (key, instance) to the instance's weight for the key:
// FNV-1a over key, a separator, and the instance id, finished with a
// 64-bit avalanche mix (splitmix64's finalizer) so short, structured ids
// like "m-01" still spread keys within the balance bound the property
// tests pin (±20% across 1k keys).
func score(key, id string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	h ^= 0xff // separator: "ab"+"c" must not collide with "a"+"bc"
	h *= prime64
	for i := 0; i < len(id); i++ {
		h ^= uint64(id[i])
		h *= prime64
	}
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}
