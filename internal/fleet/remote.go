package fleet

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httputil"
	"net/url"
)

// NewRemoteMember builds a Member over a network-reachable cloudmon
// instance: requests reverse-proxy to proxyURL, federation scrapes
// inspectURL/metrics, and invalidation bumps post to
// inspectURL/fleet/invalidate. inspectURL may be empty for an instance
// that exposes no inspection listener — it still routes, it just cannot
// federate or receive bumps.
func NewRemoteMember(id, proxyURL, inspectURL string, client *http.Client) (*Member, error) {
	target, err := url.Parse(proxyURL)
	if err != nil {
		return nil, fmt.Errorf("fleet: instance %s proxy url: %w", id, err)
	}
	rp := httputil.NewSingleHostReverseProxy(target)
	if client != nil {
		rp.Transport = client.Transport
	}
	m := &Member{ID: id, Proxy: rp}
	if inspectURL == "" {
		return m, nil
	}
	httpc := client
	if httpc == nil {
		httpc = http.DefaultClient
	}
	m.Metrics = func() (string, error) {
		resp, err := httpc.Get(inspectURL + "/metrics")
		if err != nil {
			return "", err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return "", fmt.Errorf("fleet: instance %s metrics: %s", id, resp.Status)
		}
		body, err := io.ReadAll(resp.Body)
		return string(body), err
	}
	m.Invalidate = func(project string) error {
		return PostInvalidate(httpc, inspectURL, project)
	}
	return m, nil
}
