package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"cloudmon/internal/obs"
	"cloudmon/internal/osclient"
)

// InvalidatePath is the bus endpoint an instance serves (POST).
const InvalidatePath = "/fleet/invalidate"

// busMessage is the wire shape of a generation bump: {"p":"<project>"} —
// single-letter key so the message stays within the ≤64-byte budget for
// any realistic project id (UUIDs are 32–36 bytes).
type busMessage struct {
	Project string `json:"p"`
}

// maxBusBody bounds what the invalidate handler will read.
const maxBusBody = 64

// Bus is the cross-instance invalidation fan-out: wired into a monitor's
// OnInvalidate hook, it checks whether the mutated project belongs to
// this instance under the current ring and, when it does not (the window
// a resize-driven remap opens), posts a generation bump to the owner.
// Delivery is fire-and-forget on a goroutine with the existing client
// retry policy — the bump is a freshness hint layered under the front's
// synchronous migration fence, never a correctness dependency.
type Bus struct {
	// Self is this instance's id.
	Self string
	// Ring returns the instance's current view of the routing table.
	Ring func() *Ring
	// Member resolves an instance id to its bus target (nil when
	// unknown — the bump is dropped and counted).
	Member func(id string) *Member
	// Retry paces redelivery attempts (zero value = client defaults).
	Retry osclient.RetryPolicy

	sent    obs.Counter // bumps posted (first attempts)
	dropped obs.Counter // bumps abandoned after retries or without a target
	wg      sync.WaitGroup
}

// OnInvalidate is the monitor hook: it fires on every forwarded write and
// posts a bump when the project's ring owner is another instance.
func (b *Bus) OnInvalidate(project string) {
	ring := b.Ring()
	if ring == nil {
		return
	}
	owner := ring.Owner(project)
	if owner == b.Self {
		return
	}
	m := b.Member(owner)
	if m == nil || m.Invalidate == nil {
		b.dropped.Inc()
		return
	}
	b.sent.Inc()
	b.wg.Add(1)
	go func() {
		defer b.wg.Done()
		policy := b.Retry.WithDefaults()
		for attempt := 1; ; attempt++ {
			if m.Invalidate(project) == nil {
				return
			}
			if attempt >= policy.MaxAttempts {
				b.dropped.Inc()
				return
			}
			time.Sleep(policy.Backoff(attempt, nil))
		}
	}()
}

// Wait blocks until every in-flight bump has been delivered or dropped —
// test and shutdown hygiene.
func (b *Bus) Wait() { b.wg.Wait() }

// Stats reports the bus tallies: bumps posted and bumps abandoned.
func (b *Bus) Stats() (sent, dropped uint64) {
	return b.sent.Value(), b.dropped.Value()
}

// RegisterMetrics exposes the bus counters.
func (b *Bus) RegisterMetrics(reg *obs.Registry) {
	reg.Collect(func(w *obs.MetricsWriter) {
		w.Counter("fleet_bus_sent_total",
			"Cross-instance invalidation bumps posted.", float64(b.sent.Value()))
		w.Counter("fleet_bus_dropped_total",
			"Invalidation bumps abandoned after retries.", float64(b.dropped.Value()))
	})
}

// Invalidator is the instance-side surface the bus bumps — satisfied by
// *monitor.Monitor.
type Invalidator interface {
	InvalidateProject(project string)
}

// InvalidateHandler serves InvalidatePath for one instance: it decodes
// the ≤64-byte bump and forwards it to the monitor's cache generation.
func InvalidateHandler(inv Invalidator) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		body, err := io.ReadAll(io.LimitReader(r.Body, maxBusBody+1))
		if err != nil || len(body) > maxBusBody {
			http.Error(w, "bump exceeds 64 bytes", http.StatusBadRequest)
			return
		}
		var msg busMessage
		if err := json.Unmarshal(body, &msg); err != nil || msg.Project == "" {
			http.Error(w, "malformed bump", http.StatusBadRequest)
			return
		}
		inv.InvalidateProject(msg.Project)
		w.WriteHeader(http.StatusNoContent)
	})
}

// PostInvalidate delivers one bump to a remote instance's bus endpoint —
// the Member.Invalidate implementation for HTTP-reachable instances.
func PostInvalidate(client *http.Client, baseURL, project string) error {
	body, err := json.Marshal(busMessage{Project: project})
	if err != nil {
		return err
	}
	if len(body) > maxBusBody {
		return fmt.Errorf("fleet: bump for project %q exceeds %d bytes", project, maxBusBody)
	}
	if client == nil {
		client = http.DefaultClient
	}
	resp, err := client.Post(baseURL+InvalidatePath, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode >= 300 {
		return fmt.Errorf("fleet: bump rejected: %s", resp.Status)
	}
	return nil
}
