// Package core is the top of the cloud-monitor pipeline: it takes the
// design models an analyst produced (programmatically, or imported from
// XMI), generates the method contracts, and wires a ready-to-serve cloud
// monitor against a private cloud URL.
//
// It is the API the examples and CLIs use:
//
//	sys, err := core.Build(core.Options{
//	    Model:    paper.CinderModel(),
//	    CloudURL: "http://cloud:8080",
//	    ServiceAccount: osbinding.ServiceAccount{...},
//	})
//	http.ListenAndServe(":9090", sys.Monitor)
package core

import (
	"fmt"
	"net/http"
	"time"

	"cloudmon/internal/contract"
	"cloudmon/internal/monitor"
	"cloudmon/internal/obs"
	"cloudmon/internal/osbinding"
	"cloudmon/internal/osclient"
	"cloudmon/internal/uml"
)

// Options configures Build.
type Options struct {
	// Model is the validated design model (resource + behavioral).
	Model *uml.Model
	// CloudURL is the private cloud's base URL.
	CloudURL string
	// ServiceAccount is the monitor's read-access identity on the cloud.
	ServiceAccount osbinding.ServiceAccount
	// Mode defaults to monitor.Enforce.
	Mode monitor.Mode
	// Level defaults to monitor.CheckFull; CheckPreOnly ablates the
	// post-condition verification.
	Level monitor.CheckLevel
	// Eval selects the evaluation engine (defaults to
	// monitor.EvalCompiled; monitor.EvalLazy re-walks the OCL trees,
	// monitor.EvalEager restores whole-contract snapshots).
	Eval monitor.EvalMode
	// NoFacts disables compile-time fact pruning in the lazy engine
	// (static clause assignment and witness-based sibling skips) — the
	// A/B knob behind EXPERIMENTS.md E16.
	NoFacts bool
	// NoPostReuse disables the post-check's effect-frame reuse: every
	// contract path is re-fetched after the forward (the full re-check
	// the paper's workflow describes; see monitor.Config.NoPostReuse).
	NoPostReuse bool
	// FailPolicy decides the verdict when a state snapshot fails
	// (defaults to monitor.FailClosed; Degrade requires
	// PreStateCacheTTL > 0).
	FailPolicy monitor.FailPolicy
	// Post selects when post-conditions are verified (defaults to
	// monitor.PostSync; PostAsync defers them to a bounded worker queue
	// and returns responses as soon as the forward completes).
	Post monitor.PostMode
	// PostQueueCap / PostWorkers / PostBackpressure tune the async post
	// pipeline (see the matching monitor.Config fields).
	PostQueueCap     int
	PostWorkers      int
	PostBackpressure monitor.BackpressurePolicy
	// CloudTimeout is the one knob both cloud-facing paths derive their
	// deadline from: the snapshot client's per-attempt deadline and the
	// forwarder's per-request deadline (0 = httpkit.DefaultCloudTimeout
	// via the default clients).
	CloudTimeout time.Duration
	// Retry tunes the snapshot provider's backoff loop (zero value =
	// defaults; MaxAttempts 1 disables retries).
	Retry osclient.RetryPolicy
	// Breaker, when non-nil, puts a circuit breaker on the snapshot path
	// so a dead cloud sheds reads instead of queueing retries.
	Breaker *osclient.BreakerConfig
	// OnVerdict, if set, receives every verdict (e.g. an
	// monitor.AuditWriter's Record method).
	OnVerdict func(monitor.Verdict)
	// ParallelSnapshots resolves state paths concurrently — enable when
	// the cloud is across a network (see osbinding.Provider.Parallel).
	ParallelSnapshots bool
	// SnapshotWorkers bounds the per-snapshot worker pool when
	// ParallelSnapshots is set (0 = osbinding.DefaultMaxParallel).
	SnapshotWorkers int
	// PreStateCacheTTL, when positive, enables the monitor's short-TTL
	// pre-state read cache (see monitor.Config.PreStateCacheTTL).
	PreStateCacheTTL time.Duration
	// DegradeTTL bounds the Degrade policy's stale-cache window (see
	// monitor.Config.DegradeTTL; 0 = 10 × PreStateCacheTTL).
	DegradeTTL time.Duration
	// HTTPClient overrides the forwarding client (tests inject the
	// httptest client here).
	HTTPClient *http.Client
	// MaxLog bounds the verdict log.
	MaxLog int
	// Audit, when non-nil, is the append-only audit sink the monitor
	// writes every violation and Unverified outcome to (see obs.AuditLog).
	Audit *obs.AuditLog
	// InstanceID names this monitor within a fleet: it is stamped on
	// every audit record and attached to the registry as a constant
	// instance label, so fleet metrics federate and fleet evidence packs
	// attribute each verdict (see monitor.Config.InstanceID).
	InstanceID string
	// OnInvalidate receives the project id of every forwarded write —
	// the fleet's cross-instance invalidation hook (see
	// monitor.Config.OnInvalidate).
	OnInvalidate func(project string)
}

// System is the assembled pipeline.
type System struct {
	// Model is the source model.
	Model *uml.Model
	// Contracts are the generated method contracts.
	Contracts *contract.Set
	// Monitor is the ready-to-serve proxy.
	Monitor *monitor.Monitor
	// Provider is the state binding (exported so callers can reuse it,
	// e.g. the mutation driver snapshots state through it).
	Provider *osbinding.Provider
	// Routes are the derived proxy routes.
	Routes []monitor.Route
	// Metrics is the system's metric registry: the monitor's verdict,
	// stage-latency, cache, and audit counters plus the provider's retry
	// and breaker state. Serve Metrics.Handler() on /metrics.
	Metrics *obs.Registry
}

// Build runs the pipeline: validate model -> generate contracts -> derive
// routes -> bind state provider -> assemble monitor.
func Build(opts Options) (*System, error) {
	if opts.Model == nil {
		return nil, fmt.Errorf("core: missing model")
	}
	if opts.CloudURL == "" {
		return nil, fmt.Errorf("core: missing cloud URL")
	}
	set, err := contract.Generate(opts.Model)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	routes := osbinding.Routes(set)
	provider := osbinding.NewProvider(opts.CloudURL, opts.ServiceAccount)
	if opts.HTTPClient != nil {
		// The provider's embedded client shares the HTTP client.
		provider = osbinding.NewProviderWithClient(opts.CloudURL, opts.ServiceAccount, opts.HTTPClient)
	}
	provider.Parallel = opts.ParallelSnapshots
	provider.MaxParallel = opts.SnapshotWorkers
	provider.Retry = opts.Retry
	if opts.CloudTimeout > 0 && provider.Retry.PerAttemptTimeout <= 0 {
		provider.Retry.PerAttemptTimeout = opts.CloudTimeout
	}
	if opts.Breaker != nil {
		provider.Breaker = osclient.NewBreaker(*opts.Breaker)
	}
	mon, err := monitor.New(monitor.Config{
		Contracts: set,
		Routes:    routes,
		Provider:  provider,
		Forward: &monitor.HTTPForwarder{
			BaseURL: opts.CloudURL,
			Client:  opts.HTTPClient,
			Timeout: opts.CloudTimeout,
		},
		Mode:             opts.Mode,
		Level:            opts.Level,
		Eval:             opts.Eval,
		NoFacts:          opts.NoFacts,
		NoPostReuse:      opts.NoPostReuse,
		FailPolicy:       opts.FailPolicy,
		Post:             opts.Post,
		PostQueueCap:     opts.PostQueueCap,
		PostWorkers:      opts.PostWorkers,
		PostBackpressure: opts.PostBackpressure,
		MaxLog:           opts.MaxLog,
		OnVerdict:        opts.OnVerdict,
		PreStateCacheTTL: opts.PreStateCacheTTL,
		DegradeTTL:       opts.DegradeTTL,
		Audit:            opts.Audit,
		InstanceID:       opts.InstanceID,
		OnInvalidate:     opts.OnInvalidate,
	})
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	reg := &obs.Registry{}
	if opts.InstanceID != "" {
		reg.SetConstLabels(obs.L("instance", opts.InstanceID))
	}
	mon.RegisterMetrics(reg)
	provider.RegisterMetrics(reg)
	return &System{
		Model:     opts.Model,
		Contracts: set,
		Monitor:   mon,
		Provider:  provider,
		Routes:    routes,
		Metrics:   reg,
	}, nil
}
