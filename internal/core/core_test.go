package core_test

import (
	"net/http"
	"net/http/httptest"
	"testing"

	"cloudmon/internal/core"
	"cloudmon/internal/monitor"
	"cloudmon/internal/openstack"
	"cloudmon/internal/openstack/cinder"
	"cloudmon/internal/osbinding"
	"cloudmon/internal/osclient"
	"cloudmon/internal/paper"
	"cloudmon/internal/uml"
)

// harness is a fully wired deployment: simulated cloud + monitor proxy,
// both served over real HTTP.
type harness struct {
	cloud      *openstack.Cloud
	cloudSrv   *httptest.Server
	monitorSrv *httptest.Server
	sys        *core.System
	projectID  string
}

func newHarness(t *testing.T, mode monitor.Mode) *harness {
	t.Helper()
	return newHarnessWithModel(t, mode, paper.CinderModel())
}

func newHarnessWithModel(t *testing.T, mode monitor.Mode, model *uml.Model) *harness {
	t.Helper()
	cloud := openstack.New(openstack.Config{})
	res := cloud.ApplySeed(openstack.Seed{
		ProjectName: "myProject",
		Quota:       cinder.QuotaSet{Volumes: 3, Gigabytes: 100},
		GroupRoles:  paper.GroupRole(),
		Users: []openstack.SeedUser{
			{Name: "alice", Password: "pw-alice", Group: paper.GroupProjAdministrator},
			{Name: "bob", Password: "pw-bob", Group: paper.GroupServiceArchitect},
			{Name: "carol", Password: "pw-carol", Group: paper.GroupBusinessAnalyst},
			{Name: "cm-svc", Password: "pw-svc", Group: paper.GroupProjAdministrator},
		},
	})
	cloudSrv := httptest.NewServer(cloud)
	t.Cleanup(cloudSrv.Close)

	sys, err := core.Build(core.Options{
		Model:    model,
		CloudURL: cloudSrv.URL,
		ServiceAccount: osbinding.ServiceAccount{
			User: "cm-svc", Password: "pw-svc", ProjectID: res.ProjectID,
		},
		Mode: mode,
	})
	if err != nil {
		t.Fatalf("core.Build: %v", err)
	}
	monitorSrv := httptest.NewServer(sys.Monitor)
	t.Cleanup(monitorSrv.Close)
	return &harness{
		cloud:      cloud,
		cloudSrv:   cloudSrv,
		monitorSrv: monitorSrv,
		sys:        sys,
		projectID:  res.ProjectID,
	}
}

// cloudLogin authenticates against the cloud and returns a client that
// talks to the *monitor* with that token — the paper's workflow, where the
// CM user obtained credentials from the cloud and invokes URIs on the CM.
func (h *harness) monitorClient(t *testing.T, user, password string) *osclient.Client {
	t.Helper()
	auth := osclient.New(h.cloudSrv.URL)
	tok, err := auth.Authenticate(user, password, h.projectID)
	if err != nil {
		t.Fatalf("authenticate %s: %v", user, err)
	}
	return osclient.New(h.monitorSrv.URL).WithToken(tok)
}

// monitorVolumePath builds the monitor-facing URI for the volume resource.
func (h *harness) volumesPath() string {
	return "/projects/" + h.projectID + "/volumes"
}

func (h *harness) createVolume(t *testing.T, c *osclient.Client, name string) string {
	t.Helper()
	var out struct {
		Volume cinder.Volume `json:"volume"`
	}
	in := map[string]map[string]any{"volume": {"name": name, "size": 5}}
	if _, err := c.Do(http.MethodPost, h.volumesPath(), in, &out, nil); err != nil {
		t.Fatalf("create volume via monitor: %v", err)
	}
	return out.Volume.ID
}

func TestMonitoredLifecycleThroughProxy(t *testing.T) {
	h := newHarness(t, monitor.Enforce)
	admin := h.monitorClient(t, "alice", "pw-alice")

	// POST through the monitor.
	volID := h.createVolume(t, admin, "data")

	// GET through the monitor.
	status, err := admin.Do(http.MethodGet, h.volumesPath()+"/"+volID, nil, nil, nil)
	if err != nil || status != http.StatusOK {
		t.Fatalf("GET via monitor = %d, %v", status, err)
	}
	// PUT through the monitor.
	in := map[string]map[string]any{"volume": {"name": "renamed"}}
	status, err = admin.Do(http.MethodPut, h.volumesPath()+"/"+volID, in, nil, nil)
	if err != nil || status != http.StatusOK {
		t.Fatalf("PUT via monitor = %d, %v", status, err)
	}
	// DELETE through the monitor: backend's 204 passes through.
	status, err = admin.Do(http.MethodDelete, h.volumesPath()+"/"+volID, nil, nil, nil)
	if err != nil || status != http.StatusNoContent {
		t.Fatalf("DELETE via monitor = %d, %v", status, err)
	}

	for _, v := range h.sys.Monitor.Log() {
		if v.Outcome != monitor.OK {
			t.Errorf("verdict %s = %v (%s)", v.Trigger, v.Outcome, v.Detail)
		}
	}
	cov := h.sys.Monitor.Coverage()
	for _, s := range []string{"1.1", "1.2", "1.3", "1.4"} {
		if cov[s] != 1 {
			t.Errorf("coverage[%s] = %d, want 1", s, cov[s])
		}
	}
}

func TestEnforceBlocksUnauthorizedDelete(t *testing.T) {
	h := newHarness(t, monitor.Enforce)
	admin := h.monitorClient(t, "alice", "pw-alice")
	member := h.monitorClient(t, "bob", "pw-bob")

	volID := h.createVolume(t, admin, "data")

	// Member DELETE: the contract pre fails -> 412, never forwarded.
	status, err := member.Do(http.MethodDelete, h.volumesPath()+"/"+volID, nil, nil, nil)
	if !osclient.IsStatus(err, http.StatusPreconditionFailed) {
		t.Fatalf("member DELETE = %d, %v; want 412", status, err)
	}
	// The volume still exists on the cloud.
	direct := osclient.New(h.cloudSrv.URL)
	if _, err := direct.Authenticate("alice", "pw-alice", h.projectID); err != nil {
		t.Fatal(err)
	}
	if _, _, err := direct.GetVolume(h.projectID, volID); err != nil {
		t.Errorf("volume gone after blocked delete: %v", err)
	}
}

func TestEnforceBlocksInUseDelete(t *testing.T) {
	h := newHarness(t, monitor.Enforce)
	admin := h.monitorClient(t, "alice", "pw-alice")
	volID := h.createVolume(t, admin, "data")

	// Attach the volume directly on the cloud (compute is not monitored).
	direct := osclient.New(h.cloudSrv.URL)
	if _, err := direct.Authenticate("alice", "pw-alice", h.projectID); err != nil {
		t.Fatal(err)
	}
	server, _, err := direct.CreateServer(h.projectID, "web")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := direct.AttachVolume(h.projectID, server.ID, volID); err != nil {
		t.Fatal(err)
	}

	// Admin DELETE on an in-use volume: guard fails -> blocked.
	status, err := admin.Do(http.MethodDelete, h.volumesPath()+"/"+volID, nil, nil, nil)
	if !osclient.IsStatus(err, http.StatusPreconditionFailed) {
		t.Fatalf("in-use DELETE = %d, %v; want 412", status, err)
	}
}

func TestEnforceBlocksOverQuotaCreate(t *testing.T) {
	h := newHarness(t, monitor.Enforce)
	admin := h.monitorClient(t, "alice", "pw-alice")
	for i := 0; i < 3; i++ {
		h.createVolume(t, admin, "v")
	}
	in := map[string]map[string]any{"volume": {"name": "overflow", "size": 5}}
	status, err := admin.Do(http.MethodPost, h.volumesPath(), in, nil, nil)
	if !osclient.IsStatus(err, http.StatusPreconditionFailed) {
		t.Fatalf("over-quota POST = %d, %v; want 412", status, err)
	}
}

func TestObserveOracleDetectsPolicyMutant(t *testing.T) {
	h := newHarness(t, monitor.Observe)
	member := h.monitorClient(t, "bob", "pw-bob")
	admin := h.monitorClient(t, "alice", "pw-alice")
	volID := h.createVolume(t, admin, "data")

	// Mutate the cloud: DELETE policy wrongly allows members.
	mutated := h.cloud.Volumes.Policy().Clone()
	if err := mutated.SetRule(cinder.ActionDelete, "role:admin or role:member"); err != nil {
		t.Fatal(err)
	}
	h.cloud.Volumes.SetPolicy(mutated)

	// Member deletes through the observing monitor: the cloud accepts,
	// the contract says no -> violation detected (mutant killed).
	status, err := member.Do(http.MethodDelete, h.volumesPath()+"/"+volID, nil, nil, nil)
	if !osclient.IsStatus(err, http.StatusConflict) {
		t.Fatalf("mutant DELETE = %d, %v; want 409 violation", status, err)
	}
	violations := h.sys.Monitor.Violations()
	if len(violations) != 1 || violations[0].Outcome != monitor.ViolationForbiddenAccepted {
		t.Errorf("violations = %+v", violations)
	}
}

func TestObserveOracleDetectsNoOpDelete(t *testing.T) {
	h := newHarness(t, monitor.Observe)
	admin := h.monitorClient(t, "alice", "pw-alice")
	volID := h.createVolume(t, admin, "data")

	h.cloud.Volumes.SetFaults(cinder.Faults{DeleteIsNoOp: true})

	status, err := admin.Do(http.MethodDelete, h.volumesPath()+"/"+volID, nil, nil, nil)
	if !osclient.IsStatus(err, http.StatusConflict) {
		t.Fatalf("no-op DELETE = %d, %v; want 409", status, err)
	}
	violations := h.sys.Monitor.Violations()
	if len(violations) != 1 || violations[0].Outcome != monitor.ViolationPostcondition {
		t.Errorf("violations = %+v", violations)
	}
}

func TestInvalidRequesterTokenBlocked(t *testing.T) {
	h := newHarness(t, monitor.Enforce)
	bogus := osclient.New(h.monitorSrv.URL).WithToken("bogus-token")
	in := map[string]map[string]any{"volume": {"name": "x", "size": 5}}
	status, err := bogus.Do(http.MethodPost, h.volumesPath(), in, nil, nil)
	if !osclient.IsStatus(err, http.StatusPreconditionFailed) {
		t.Fatalf("bogus-token POST = %d, %v; want 412", status, err)
	}
}

func TestBuildValidation(t *testing.T) {
	if _, err := core.Build(core.Options{}); err == nil {
		t.Error("empty options accepted")
	}
	if _, err := core.Build(core.Options{Model: paper.CinderModel()}); err == nil {
		t.Error("missing cloud URL accepted")
	}
	bad := paper.CinderModel()
	bad.Behavioral.Transitions[0].Guard = "(((" // malformed OCL
	if _, err := core.Build(core.Options{Model: bad, CloudURL: "http://x"}); err == nil {
		t.Error("malformed model accepted")
	}
}

func TestUnknownProjectBlocked(t *testing.T) {
	h := newHarness(t, monitor.Enforce)
	admin := h.monitorClient(t, "alice", "pw-alice")
	// DELETE against a project that does not exist: project.id->size()=1
	// fails in every case pre-condition.
	status, err := admin.Do(http.MethodDelete, "/projects/ghost/volumes/v1", nil, nil, nil)
	if !osclient.IsStatus(err, http.StatusPreconditionFailed) {
		t.Fatalf("ghost-project DELETE = %d, %v; want 412", status, err)
	}
}
