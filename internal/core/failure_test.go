package core_test

import (
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"

	"cloudmon/internal/core"
	"cloudmon/internal/monitor"
	"cloudmon/internal/openstack"
	"cloudmon/internal/openstack/cinder"
	"cloudmon/internal/osbinding"
	"cloudmon/internal/osclient"
	"cloudmon/internal/paper"
)

// flakyCloud wraps the cloud handler and fails a window of requests with
// 503 — the cloud becoming unreachable mid-operation.
type flakyCloud struct {
	inner   http.Handler
	failing atomic.Bool
}

func (f *flakyCloud) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if f.failing.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		return
	}
	f.inner.ServeHTTP(w, r)
}

func TestMonitorSurvivesCloudOutage(t *testing.T) {
	cloud := openstack.New(openstack.Config{})
	seed := cloud.ApplySeed(openstack.Seed{
		ProjectName: "p",
		Quota:       cinder.QuotaSet{Volumes: 5, Gigabytes: 100},
		GroupRoles:  paper.GroupRole(),
		Users: []openstack.SeedUser{
			{Name: "alice", Password: "pw", Group: paper.GroupProjAdministrator},
			{Name: "cm-svc", Password: "pw", Group: paper.GroupProjAdministrator},
		},
	})
	flaky := &flakyCloud{inner: cloud}
	cloudSrv := httptest.NewServer(flaky)
	defer cloudSrv.Close()

	sys, err := core.Build(core.Options{
		Model:    paper.CinderModel(),
		CloudURL: cloudSrv.URL,
		ServiceAccount: osbinding.ServiceAccount{
			User: "cm-svc", Password: "pw", ProjectID: seed.ProjectID,
		},
		Mode: monitor.Enforce,
	})
	if err != nil {
		t.Fatal(err)
	}
	monSrv := httptest.NewServer(sys.Monitor)
	defer monSrv.Close()

	auth := osclient.New(cloudSrv.URL)
	tok, err := auth.Authenticate("alice", "pw", seed.ProjectID)
	if err != nil {
		t.Fatal(err)
	}
	client := osclient.New(monSrv.URL).WithToken(tok)
	volumes := "/projects/" + seed.ProjectID + "/volumes"
	in := map[string]map[string]any{"volume": {"name": "x", "size": 1}}

	// Healthy request first.
	if _, err := client.Do(http.MethodPost, volumes, in, nil, nil); err != nil {
		t.Fatalf("healthy POST: %v", err)
	}

	// Outage: the monitor must answer 502 (monitor error), not hang or
	// misreport a contract violation.
	flaky.failing.Store(true)
	status, _ := client.Do(http.MethodPost, volumes, in, nil, nil)
	if status != http.StatusBadGateway {
		t.Fatalf("POST during outage = %d, want 502", status)
	}
	log := sys.Monitor.Log()
	last := log[len(log)-1]
	if last.Outcome != monitor.Error {
		t.Errorf("outage verdict = %v, want error", last.Outcome)
	}
	if len(sys.Monitor.Violations()) != 0 {
		t.Error("outage misreported as a contract violation")
	}

	// Recovery: the monitor works again without restart (service token
	// re-auth is transparent).
	flaky.failing.Store(false)
	if _, err := client.Do(http.MethodPost, volumes, in, nil, nil); err != nil {
		t.Fatalf("POST after recovery: %v", err)
	}
}

// TestMonitorConcurrentRequests hammers the monitor from many goroutines;
// run with -race. Interleaved snapshots may observe each other's volume
// counts, so individual verdicts may legitimately disagree with the
// request's own effect — the assertions here are about safety (no panics,
// no monitor errors, log bookkeeping consistent), not about verdict
// values.
func TestMonitorConcurrentRequests(t *testing.T) {
	h := newHarness(t, monitor.Observe)
	admin := h.monitorClient(t, "alice", "pw-alice")
	volumes := "/projects/" + h.projectID + "/volumes"

	// High quota so creates never collide with the limit.
	h.cloud.Volumes.SetQuota(h.projectID, cinder.QuotaSet{Volumes: 100000, Gigabytes: 1 << 30})

	const workers = 8
	const perWorker = 10
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				var out struct {
					Volume cinder.Volume `json:"volume"`
				}
				in := map[string]map[string]any{"volume": {"name": "c", "size": 1}}
				if _, err := admin.Do(http.MethodPost, volumes, in, &out, nil); err != nil {
					continue
				}
				_, _ = admin.Do(http.MethodGet, volumes+"/"+out.Volume.ID, nil, nil, nil)
				_, _ = admin.Do(http.MethodDelete, volumes+"/"+out.Volume.ID, nil, nil, nil)
			}
		}()
	}
	wg.Wait()

	log := h.sys.Monitor.Log()
	if len(log) == 0 {
		t.Fatal("no verdicts recorded")
	}
	outcomes := h.sys.Monitor.Outcomes()
	if outcomes[monitor.Error] != 0 {
		t.Errorf("monitor errors under concurrency: %d", outcomes[monitor.Error])
	}
	total := 0
	for _, n := range outcomes {
		total += n
	}
	if total != len(log) {
		t.Errorf("outcome counters (%d) disagree with log length (%d)", total, len(log))
	}
}
