package core_test

import (
	"net/http"
	"testing"

	"cloudmon/internal/core"
	"cloudmon/internal/monitor"
	"cloudmon/internal/osclient"
	"cloudmon/internal/paper"
)

// The Nova server model is the extension scenario: the same pipeline
// monitors the compute API (see internal/paper/nova.go).

func TestNovaModelMonitoredLifecycle(t *testing.T) {
	h := newHarnessWithModel(t, monitor.Enforce, paper.NovaModel())
	admin := h.monitorClient(t, "alice", "pw-alice")
	member := h.monitorClient(t, "bob", "pw-bob")
	user := h.monitorClient(t, "carol", "pw-carol")
	servers := "/projects/" + h.projectID + "/servers"

	// SecReq 2.2: POST by member is permitted.
	var created struct {
		Server struct {
			ID string `json:"id"`
		} `json:"server"`
	}
	in := map[string]map[string]string{"server": {"name": "web"}}
	status, err := member.Do(http.MethodPost, servers, in, &created, nil)
	if err != nil || status != http.StatusAccepted {
		t.Fatalf("member POST server = %d, %v", status, err)
	}
	// SecReq 2.2: POST by plain user is blocked by the monitor.
	status, _ = user.Do(http.MethodPost, servers, in, nil, nil)
	if status != http.StatusPreconditionFailed {
		t.Errorf("user POST server = %d, want 412", status)
	}
	// SecReq 2.1: GET by every role.
	for name, c := range map[string]*osclient.Client{
		"admin": admin, "member": member, "user": user,
	} {
		status, err := c.Do(http.MethodGet, servers+"/"+created.Server.ID, nil, nil, nil)
		if err != nil || status != http.StatusOK {
			t.Errorf("GET as %s = %d, %v", name, status, err)
		}
	}
	// SecReq 2.3: DELETE by member blocked, by admin permitted.
	status, _ = member.Do(http.MethodDelete, servers+"/"+created.Server.ID, nil, nil, nil)
	if status != http.StatusPreconditionFailed {
		t.Errorf("member DELETE server = %d, want 412", status)
	}
	status, err = admin.Do(http.MethodDelete, servers+"/"+created.Server.ID, nil, nil, nil)
	if err != nil || status != http.StatusNoContent {
		t.Fatalf("admin DELETE server = %d, %v", status, err)
	}

	for _, v := range h.sys.Monitor.Log() {
		if v.Outcome != monitor.OK && v.Outcome != monitor.Blocked {
			t.Errorf("verdict %s = %v (%s)", v.Trigger, v.Outcome, v.Detail)
		}
	}
	cov := h.sys.Monitor.Coverage()
	for _, s := range []string{"2.1", "2.2", "2.3"} {
		if cov[s] == 0 {
			t.Errorf("SecReq %s not covered", s)
		}
	}
}

func TestNovaModelValidatesAndGenerates(t *testing.T) {
	m := paper.NovaModel()
	if err := m.Validate(); err != nil {
		t.Fatalf("nova model invalid: %v", err)
	}
	sys, err := core.Build(core.Options{
		Model:    m,
		CloudURL: "http://x",
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(sys.Contracts.Contracts) != 3 {
		t.Errorf("contracts = %d, want 3 (GET/POST/DELETE server)", len(sys.Contracts.Contracts))
	}
}
