package core_test

import (
	"fmt"
	"net/http"

	"cloudmon/internal/core"
	"cloudmon/internal/httpkit"
	"cloudmon/internal/monitor"
	"cloudmon/internal/openstack"
	"cloudmon/internal/openstack/cinder"
	"cloudmon/internal/osbinding"
	"cloudmon/internal/osclient"
	"cloudmon/internal/paper"
)

// Example wires the full pipeline in process: the paper's Cinder model is
// compiled into contracts, a simulated cloud is seeded, and the resulting
// monitor blocks a member's DELETE while passing the administrator's.
func Example() {
	cloud := openstack.New(openstack.Config{})
	seed := cloud.ApplySeed(openstack.Seed{
		ProjectName: "myProject",
		Quota:       cinder.QuotaSet{Volumes: 3, Gigabytes: 100},
		GroupRoles:  paper.GroupRole(),
		Users: []openstack.SeedUser{
			{Name: "alice", Password: "pw-alice", Group: paper.GroupProjAdministrator},
			{Name: "bob", Password: "pw-bob", Group: paper.GroupServiceArchitect},
			{Name: "cm-svc", Password: "pw-svc", Group: paper.GroupProjAdministrator},
		},
	})
	cloudHTTP := httpkit.HandlerClient(cloud)

	sys, err := core.Build(core.Options{
		Model:    paper.CinderModel(),
		CloudURL: "http://cloud.internal",
		ServiceAccount: osbinding.ServiceAccount{
			User: "cm-svc", Password: "pw-svc", ProjectID: seed.ProjectID,
		},
		Mode:       monitor.Enforce,
		HTTPClient: cloudHTTP,
	})
	if err != nil {
		fmt.Println("build:", err)
		return
	}

	login := func(user string) *osclient.Client {
		auth := osclient.Client{BaseURL: "http://cloud.internal", HTTPClient: cloudHTTP}
		tok, err := auth.Authenticate(user, "pw-"+user, seed.ProjectID)
		if err != nil {
			fmt.Println("auth:", err)
			return nil
		}
		c := osclient.New("http://monitor.internal").WithToken(tok)
		c.HTTPClient = httpkit.HandlerClient(sys.Monitor)
		return c
	}
	admin, member := login("alice"), login("bob")
	volumes := "/projects/" + seed.ProjectID + "/volumes"

	var created struct {
		Volume cinder.Volume `json:"volume"`
	}
	in := map[string]map[string]any{"volume": {"name": "data", "size": 5}}
	status, _ := admin.Do(http.MethodPost, volumes, in, &created, nil)
	fmt.Println("admin POST:", status)

	status, _ = member.Do(http.MethodDelete, volumes+"/"+created.Volume.ID, nil, nil, nil)
	fmt.Println("member DELETE:", status)

	status, _ = admin.Do(http.MethodDelete, volumes+"/"+created.Volume.ID, nil, nil, nil)
	fmt.Println("admin DELETE:", status)

	fmt.Println("violations:", len(sys.Monitor.Violations()))
	// Output:
	// admin POST: 202
	// member DELETE: 412
	// admin DELETE: 204
	// violations: 0
}
