package osbinding

import (
	"errors"
	"net/http"
	"sync"
	"testing"
	"time"

	"cloudmon/internal/httpkit"
	"cloudmon/internal/osclient"
)

// scriptedCloud is a minimal fake cloud: it always authenticates and
// delegates everything else to a per-test handler, counting calls.
type scriptedCloud struct {
	mu      sync.Mutex
	auths   int
	calls   int
	handler func(call int, w http.ResponseWriter, r *http.Request)
}

func (s *scriptedCloud) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	if r.URL.Path == "/identity/v3/auth/tokens" {
		s.auths++
		s.mu.Unlock()
		w.Header().Set("X-Subject-Token", "svc-token")
		w.WriteHeader(http.StatusCreated)
		_, _ = w.Write([]byte(`{"token": {}}`))
		return
	}
	s.calls++
	call := s.calls
	s.mu.Unlock()
	s.handler(call, w, r)
}

func (s *scriptedCloud) counts() (auths, calls int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.auths, s.calls
}

func scriptedProvider(s *scriptedCloud, pol osclient.RetryPolicy) *Provider {
	p := NewProviderWithClient("http://cloud.internal", ServiceAccount{
		User: "svc", Password: "pw", ProjectID: "p1",
	}, httpkit.HandlerClient(s))
	p.Retry = pol
	return p
}

var fastRetry = osclient.RetryPolicy{BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond}

// TestWriteNotRetriedAfterTransportFailure is the double-apply regression:
// the cloud applies a write, then the connection dies before the response
// arrives. The caller cannot know the write landed — re-sending it would
// apply it twice — so the retry loop must surface the error after exactly
// one application.
func TestWriteNotRetriedAfterTransportFailure(t *testing.T) {
	applied := 0
	cloud := &scriptedCloud{handler: func(call int, w http.ResponseWriter, r *http.Request) {
		applied++
		panic(http.ErrAbortHandler) // connection dies after the effect landed
	}}
	p := scriptedProvider(cloud, fastRetry)

	err := p.retryDo(false, func(c *osclient.Client) error {
		_, err := c.Do(http.MethodPost, "/volume/v3/p1/volumes", map[string]any{"volume": map[string]any{}}, nil, nil)
		return err
	})
	if err == nil {
		t.Fatal("a write with an ambiguous outcome must surface its error")
	}
	if applied != 1 {
		t.Fatalf("write applied %d times, want exactly 1 (double-apply regression)", applied)
	}
}

// TestWriteRetriedAfter401 is the counterpart: a 401 is issued by the auth
// middleware before the body is acted on, so re-sending after re-auth is
// provably safe even for a POST.
func TestWriteRetriedAfter401(t *testing.T) {
	applied := 0
	cloud := &scriptedCloud{handler: func(call int, w http.ResponseWriter, r *http.Request) {
		if call == 1 {
			w.WriteHeader(http.StatusUnauthorized)
			_, _ = w.Write([]byte(`{"error": {"message": "token expired"}}`))
			return
		}
		applied++
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write([]byte(`{}`))
	}}
	p := scriptedProvider(cloud, fastRetry)

	err := p.retryDo(false, func(c *osclient.Client) error {
		_, err := c.Do(http.MethodPost, "/volume/v3/p1/volumes", map[string]any{"volume": map[string]any{}}, nil, nil)
		return err
	})
	if err != nil {
		t.Fatalf("401-then-success should recover: %v", err)
	}
	if applied != 1 {
		t.Fatalf("write applied %d times, want exactly 1", applied)
	}
	auths, calls := cloud.counts()
	if auths != 2 {
		t.Fatalf("authenticated %d times, want 2 (initial + re-auth after 401)", auths)
	}
	if calls != 2 {
		t.Fatalf("endpoint called %d times, want 2", calls)
	}
}

// TestReadRetriesInfrastructureFailures: 5xx answers on an idempotent read
// are retried until the cloud recovers.
func TestReadRetriesInfrastructureFailures(t *testing.T) {
	cloud := &scriptedCloud{handler: func(call int, w http.ResponseWriter, r *http.Request) {
		if call < 3 {
			w.WriteHeader(http.StatusServiceUnavailable)
			_, _ = w.Write([]byte(`{"error": {"message": "down"}}`))
			return
		}
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write([]byte(`{"ok": true}`))
	}}
	p := scriptedProvider(cloud, fastRetry)

	err := p.withRetry(func(c *osclient.Client) error {
		_, err := c.Do(http.MethodGet, "/volume/v3/p1/volumes", nil, nil, nil)
		return err
	})
	if err != nil {
		t.Fatalf("read should recover after transient 503s: %v", err)
	}
	if _, calls := cloud.counts(); calls != 3 {
		t.Fatalf("endpoint called %d times, want 3", calls)
	}
}

// TestPerAttemptDeadlineHonored: a hung first attempt is cut off by the
// per-attempt deadline and the retry succeeds, well before the hang would
// have resolved on its own.
func TestPerAttemptDeadlineHonored(t *testing.T) {
	const hang = 2 * time.Second
	cloud := &scriptedCloud{handler: func(call int, w http.ResponseWriter, r *http.Request) {
		if call == 1 {
			select {
			case <-r.Context().Done():
				return
			case <-time.After(hang):
				// Deadline never fired: fall through and answer late.
			}
		}
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write([]byte(`{"ok": true}`))
	}}
	pol := fastRetry
	pol.PerAttemptTimeout = 50 * time.Millisecond
	p := scriptedProvider(cloud, pol)

	start := time.Now()
	err := p.withRetry(func(c *osclient.Client) error {
		_, err := c.Do(http.MethodGet, "/volume/v3/p1/volumes", nil, nil, nil)
		return err
	})
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("retry after a timed-out attempt should succeed: %v", err)
	}
	if elapsed >= hang {
		t.Fatalf("loop waited out the hang (%v); the per-attempt deadline did not fire", elapsed)
	}
	if _, calls := cloud.counts(); calls != 2 {
		t.Fatalf("endpoint called %d times, want 2", calls)
	}
}

// TestBreakerShedsAfterThreshold: consecutive infrastructure failures open
// the circuit mid-loop; the next attempt is shed with ErrCircuitOpen
// instead of hammering a dead cloud.
func TestBreakerShedsAfterThreshold(t *testing.T) {
	cloud := &scriptedCloud{handler: func(call int, w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
		_, _ = w.Write([]byte(`{"error": {"message": "down"}}`))
	}}
	pol := fastRetry
	pol.MaxAttempts = 5
	p := scriptedProvider(cloud, pol)
	p.Breaker = osclient.NewBreaker(osclient.BreakerConfig{FailureThreshold: 2, Cooldown: time.Hour})

	err := p.withRetry(func(c *osclient.Client) error {
		_, err := c.Do(http.MethodGet, "/volume/v3/p1/volumes", nil, nil, nil)
		return err
	})
	if !errors.Is(err, osclient.ErrCircuitOpen) {
		t.Fatalf("err = %v, want ErrCircuitOpen", err)
	}
	if _, calls := cloud.counts(); calls != 2 {
		t.Fatalf("endpoint called %d times, want 2 (breaker must shed the rest)", calls)
	}
	if p.Breaker.State() != osclient.StateOpen {
		t.Fatalf("breaker state %s, want open", p.Breaker.State())
	}
}

// TestRetryBudgetCapsTheLoop: the wall-clock budget returns the last error
// rather than sleeping past it.
func TestRetryBudgetCapsTheLoop(t *testing.T) {
	cloud := &scriptedCloud{handler: func(call int, w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
		_, _ = w.Write([]byte(`{"error": {"message": "down"}}`))
	}}
	p := scriptedProvider(cloud, osclient.RetryPolicy{
		MaxAttempts: 10,
		BaseDelay:   200 * time.Millisecond,
		Budget:      50 * time.Millisecond,
	})

	start := time.Now()
	err := p.withRetry(func(c *osclient.Client) error {
		_, err := c.Do(http.MethodGet, "/volume/v3/p1/volumes", nil, nil, nil)
		return err
	})
	if !osclient.IsStatus(err, http.StatusServiceUnavailable) {
		t.Fatalf("err = %v, want the last 503", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("budgeted loop ran %v", elapsed)
	}
	if _, calls := cloud.counts(); calls != 1 {
		t.Fatalf("endpoint called %d times, want 1 (first backoff exceeds the budget)", calls)
	}
}
