package osbinding

import (
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"cloudmon/internal/ocl"
)

func TestParallelSnapshotMatchesSerial(t *testing.T) {
	f := newFixture(t)
	v, err := f.cloud.Volumes.Create(f.projectID, "data", 1)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := f.provider.Snapshot(f.ctx(v.ID), allPaths)
	if err != nil {
		t.Fatal(err)
	}
	f.provider.Parallel = true
	parallel, err := f.provider.Snapshot(f.ctx(v.ID), allPaths)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(parallel) {
		t.Fatalf("env sizes differ: %d vs %d", len(serial), len(parallel))
	}
	for k, sv := range serial {
		if !parallel[k].Equal(sv) {
			t.Errorf("%s: serial %v, parallel %v", k, sv, parallel[k])
		}
	}
}

func TestParallelSnapshotPropagatesErrors(t *testing.T) {
	// A provider against a dead endpoint fails in both modes.
	dead := NewProvider("http://127.0.0.1:1", ServiceAccount{User: "x", Password: "y", ProjectID: "p"})
	dead.Parallel = true
	ctx := (&fixture{projectID: "p"}).ctx("")
	if _, err := dead.Snapshot(ctx, allPaths); err == nil {
		t.Error("dead cloud accepted")
	}
}

// TestParallelSnapshotBoundedWorkers pins the MaxParallel contract: the
// fan-out never holds more simultaneous backend requests than the
// configured worker count.
func TestParallelSnapshotBoundedWorkers(t *testing.T) {
	f := newFixture(t)
	vol, err := f.cloud.Volumes.Create(f.projectID, "data", 1)
	if err != nil {
		t.Fatal(err)
	}
	var inFlight, peak atomic.Int64
	gate := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := inFlight.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		time.Sleep(5 * time.Millisecond) // hold the slot so overlaps are visible
		f.cloud.ServeHTTP(w, r)
		inFlight.Add(-1)
	}))
	defer gate.Close()

	provider := NewProvider(gate.URL, ServiceAccount{
		User: "cm-svc", Password: "pw", ProjectID: f.projectID,
	})
	provider.Parallel = true
	provider.MaxParallel = 2
	// Warm the service token outside the measurement.
	if _, err := provider.Snapshot(f.ctx(vol.ID), []string{"project.id"}); err != nil {
		t.Fatal(err)
	}
	peak.Store(0)
	if _, err := provider.Snapshot(f.ctx(vol.ID), allPaths); err != nil {
		t.Fatal(err)
	}
	if got := peak.Load(); got > 2 {
		t.Errorf("observed %d simultaneous backend requests, want <= MaxParallel (2)", got)
	}
	if got := peak.Load(); got < 2 {
		t.Errorf("observed %d simultaneous backend requests; pool never overlapped", got)
	}
}

// TestParallelSnapshotOverlapsLatency pins the point of the option: with
// an artificial per-request delay, the parallel snapshot completes in
// roughly one delay rather than five.
func TestParallelSnapshotOverlapsLatency(t *testing.T) {
	f := newFixture(t)
	vol, err := f.cloud.Volumes.Create(f.projectID, "data", 1)
	if err != nil {
		t.Fatal(err)
	}
	const delay = 30 * time.Millisecond
	var requests atomic.Int64
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		requests.Add(1)
		time.Sleep(delay)
		f.cloud.ServeHTTP(w, r)
	}))
	defer slow.Close()

	provider := NewProvider(slow.URL, ServiceAccount{
		User: "cm-svc", Password: "pw", ProjectID: f.projectID,
	})
	provider.Parallel = true
	// Warm the service token outside the measurement.
	if _, err := provider.Snapshot(f.ctx(vol.ID), []string{"project.id"}); err != nil {
		t.Fatal(err)
	}

	start := time.Now()
	env, err := provider.Snapshot(f.ctx(vol.ID), allPaths)
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if got := env["volume.status"]; got.Kind != ocl.KindString {
		t.Fatalf("snapshot incomplete: %v", env)
	}
	// Five reads at 30ms each: serial would need >= 150ms; parallel should
	// land well under 3 delays even on a loaded machine.
	if elapsed >= 3*delay {
		t.Errorf("parallel snapshot took %v (>= %v); latency not overlapped", elapsed, 3*delay)
	}
}
