package osbinding

import (
	"testing"

	"cloudmon/internal/contract"
	"cloudmon/internal/monitor"
	"cloudmon/internal/ocl"
	"cloudmon/internal/paper"
	"cloudmon/internal/uml"
)

func TestSnapshotServerPaths(t *testing.T) {
	f := newFixture(t)
	srv := f.cloud.Compute.CreateServer(f.projectID, "web")

	ctx := &monitor.RequestContext{
		Method:   uml.DELETE,
		Resource: "server",
		Params: map[string]string{
			"project_id": f.projectID,
			"server_id":  srv.ID,
		},
		Token: f.adminTok,
	}
	env, err := f.provider.Snapshot(ctx, []string{"project.servers", "server.status"})
	if err != nil {
		t.Fatal(err)
	}
	if got := env["project.servers"]; got.Size() != 1 {
		t.Errorf("project.servers = %v", got)
	}
	if got := env["server.status"]; !got.Equal(ocl.StringVal("ACTIVE")) {
		t.Errorf("server.status = %v", got)
	}

	// Ghost server resolves to undefined.
	ctx.Params["server_id"] = "ghost"
	env, err = f.provider.Snapshot(ctx, []string{"server.status"})
	if err != nil {
		t.Fatal(err)
	}
	if !env["server.status"].IsUndefined() {
		t.Errorf("ghost server.status = %v", env["server.status"])
	}
}

func TestNovaRoutesTargetCompute(t *testing.T) {
	set, err := contract.Generate(paper.NovaModel())
	if err != nil {
		t.Fatal(err)
	}
	routes := Routes(set)
	byMethod := make(map[uml.HTTPMethod]monitor.Route, len(routes))
	for _, r := range routes {
		byMethod[r.Trigger.Method] = r
	}
	if got := byMethod[uml.POST].Pattern; got != "/projects/{project_id}/servers" {
		t.Errorf("POST pattern = %q", got)
	}
	if got := byMethod[uml.POST].Backend; got != "/compute/v2.1/{project_id}/servers" {
		t.Errorf("POST backend = %q", got)
	}
	if got := byMethod[uml.DELETE].Backend; got != "/compute/v2.1/{project_id}/servers/{server_id}" {
		t.Errorf("DELETE backend = %q", got)
	}
}
