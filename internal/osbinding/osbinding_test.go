package osbinding

import (
	"testing"

	"cloudmon/internal/contract"
	"cloudmon/internal/httpkit"
	"cloudmon/internal/monitor"
	"cloudmon/internal/ocl"
	"cloudmon/internal/openstack"
	"cloudmon/internal/openstack/cinder"
	"cloudmon/internal/osclient"
	"cloudmon/internal/paper"
	"cloudmon/internal/uml"
)

// fixture wires a provider against an in-memory seeded cloud.
type fixture struct {
	cloud     *openstack.Cloud
	provider  *Provider
	projectID string
	adminTok  string
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	cloud := openstack.New(openstack.Config{})
	res := cloud.ApplySeed(openstack.Seed{
		ProjectName: "p",
		Quota:       cinder.QuotaSet{Volumes: 4, Gigabytes: 100},
		GroupRoles:  paper.GroupRole(),
		Users: []openstack.SeedUser{
			{Name: "alice", Password: "pw", Group: paper.GroupProjAdministrator},
			{Name: "cm-svc", Password: "pw", Group: paper.GroupProjAdministrator},
		},
	})
	client := httpkit.HandlerClient(cloud)
	provider := NewProviderWithClient("http://cloud.internal", ServiceAccount{
		User: "cm-svc", Password: "pw", ProjectID: res.ProjectID,
	}, client)

	auth := osclient.Client{BaseURL: "http://cloud.internal", HTTPClient: client}
	tok, err := auth.Authenticate("alice", "pw", res.ProjectID)
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{cloud: cloud, provider: provider, projectID: res.ProjectID, adminTok: tok}
}

func (f *fixture) ctx(volumeID string) *monitor.RequestContext {
	params := map[string]string{"project_id": f.projectID}
	if volumeID != "" {
		params["volume_id"] = volumeID
	}
	return &monitor.RequestContext{
		Method:   uml.DELETE,
		Resource: "volume",
		Params:   params,
		Token:    f.adminTok,
	}
}

var allPaths = []string{
	"project.id", "project.volumes", "quota_sets.volume",
	"volume.status", "user.id.groups",
}

func TestSnapshotResolvesAllPaths(t *testing.T) {
	f := newFixture(t)
	v, err := f.cloud.Volumes.Create(f.projectID, "data", 1)
	if err != nil {
		t.Fatal(err)
	}
	env, err := f.provider.Snapshot(f.ctx(v.ID), allPaths)
	if err != nil {
		t.Fatal(err)
	}
	if got := env["project.id"]; !got.Equal(ocl.StringVal(f.projectID)) {
		t.Errorf("project.id = %v", got)
	}
	if got := env["project.volumes"]; got.Size() != 1 {
		t.Errorf("project.volumes = %v", got)
	}
	if got := env["quota_sets.volume"]; !got.Equal(ocl.IntVal(4)) {
		t.Errorf("quota_sets.volume = %v", got)
	}
	if got := env["volume.status"]; !got.Equal(ocl.StringVal(cinder.StatusAvailable)) {
		t.Errorf("volume.status = %v", got)
	}
	if got := env["user.id.groups"]; !got.Equal(ocl.StringsVal(paper.RoleAdmin)) {
		t.Errorf("user.id.groups = %v", got)
	}
}

func TestSnapshotMissingResourcesAreUndefined(t *testing.T) {
	f := newFixture(t)
	// Unknown volume id and unknown project.
	env, err := f.provider.Snapshot(f.ctx("ghost"), []string{"volume.status"})
	if err != nil {
		t.Fatal(err)
	}
	if !env["volume.status"].IsUndefined() {
		t.Errorf("ghost volume status = %v, want undefined", env["volume.status"])
	}
	ctx := f.ctx("")
	ctx.Params["project_id"] = "ghost-project"
	env, err = f.provider.Snapshot(ctx, []string{"project.id", "project.volumes"})
	if err != nil {
		t.Fatal(err)
	}
	if !env["project.id"].IsUndefined() {
		t.Errorf("ghost project id = %v", env["project.id"])
	}
}

func TestSnapshotMissingParamsAreUndefined(t *testing.T) {
	f := newFixture(t)
	ctx := &monitor.RequestContext{Method: uml.POST, Resource: "volume", Params: map[string]string{}}
	env, err := f.provider.Snapshot(ctx, allPaths)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range allPaths {
		if !env[p].IsUndefined() {
			t.Errorf("%s = %v, want undefined without params", p, env[p])
		}
	}
}

func TestSnapshotUnknownPathIsUndefined(t *testing.T) {
	f := newFixture(t)
	env, err := f.provider.Snapshot(f.ctx(""), []string{"flavors.count"})
	if err != nil {
		t.Fatal(err)
	}
	if !env["flavors.count"].IsUndefined() {
		t.Errorf("unknown path = %v", env["flavors.count"])
	}
}

func TestUserGroupsInvalidToken(t *testing.T) {
	f := newFixture(t)
	ctx := f.ctx("")
	ctx.Token = "bogus"
	env, err := f.provider.Snapshot(ctx, []string{"user.id.groups"})
	if err != nil {
		t.Fatal(err)
	}
	if !env["user.id.groups"].IsUndefined() {
		t.Errorf("bogus token groups = %v", env["user.id.groups"])
	}
	ctx.Token = ""
	env, err = f.provider.Snapshot(ctx, []string{"user.id.groups"})
	if err != nil || !env["user.id.groups"].IsUndefined() {
		t.Errorf("empty token groups = %v, %v", env["user.id.groups"], err)
	}
}

func TestServiceTokenRefreshAfterRevocation(t *testing.T) {
	f := newFixture(t)
	// Prime the provider's cached token.
	if _, err := f.provider.Snapshot(f.ctx(""), []string{"project.volumes"}); err != nil {
		t.Fatal(err)
	}
	// Revoke every token (including the provider's) out from under it.
	f.provider.mu.Lock()
	cached := f.provider.token
	f.provider.mu.Unlock()
	f.cloud.Identity.Revoke(cached)
	// The provider must re-authenticate transparently.
	env, err := f.provider.Snapshot(f.ctx(""), []string{"project.volumes"})
	if err != nil {
		t.Fatalf("snapshot after revocation: %v", err)
	}
	if env["project.volumes"].Kind != ocl.KindCollection {
		t.Errorf("project.volumes = %v", env["project.volumes"])
	}
}

func TestBadServiceAccountFails(t *testing.T) {
	f := newFixture(t)
	bad := NewProviderWithClient("http://cloud.internal", ServiceAccount{
		User: "cm-svc", Password: "wrong", ProjectID: f.projectID,
	}, httpkit.HandlerClient(f.cloud))
	if _, err := bad.Snapshot(f.ctx(""), []string{"project.volumes"}); err == nil {
		t.Error("bad service credentials should surface an error")
	}
}

func TestRoutesDerivation(t *testing.T) {
	set, err := contract.Generate(paper.CinderModel())
	if err != nil {
		t.Fatal(err)
	}
	routes := Routes(set)
	if len(routes) != 4 {
		t.Fatalf("routes = %d", len(routes))
	}
	byMethod := make(map[uml.HTTPMethod]monitor.Route, len(routes))
	for _, r := range routes {
		byMethod[r.Trigger.Method] = r
	}
	if got := byMethod[uml.POST].Pattern; got != "/projects/{project_id}/volumes" {
		t.Errorf("POST pattern = %q (must target the collection)", got)
	}
	if got := byMethod[uml.DELETE].Pattern; got != "/projects/{project_id}/volumes/{volume_id}" {
		t.Errorf("DELETE pattern = %q", got)
	}
	if got := byMethod[uml.DELETE].Backend; got != "/volume/v3/{project_id}/volumes/{volume_id}" {
		t.Errorf("DELETE backend = %q", got)
	}
	if got := byMethod[uml.POST].Backend; got != "/volume/v3/{project_id}/volumes" {
		t.Errorf("POST backend = %q", got)
	}
}
