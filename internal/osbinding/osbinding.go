// Package osbinding binds the cloud monitor to the (simulated) OpenStack
// cloud: it implements monitor.StateProvider by resolving the OCL
// navigation paths of the paper's models to live REST queries, and derives
// the monitor's proxy routes from the generated contracts.
//
// Path bindings (Section IV.B semantics — each value is observed through
// the cloud's own API, so "the stateless nature of REST remains
// uncompromised"):
//
//	project.id        GET  /identity/v3/projects/{project_id}
//	                  200 -> the project id; otherwise OclUndefined
//	project.volumes   GET  /volume/v3/{project_id}/volumes
//	                  200 -> collection of volume ids
//	quota_sets.volume GET  /volume/v3/{project_id}/quota_sets
//	                  200 -> the volume quota integer
//	volume.status     GET  /volume/v3/{project_id}/volumes/{volume_id}
//	                  200 -> the status string; otherwise OclUndefined
//	user.id.groups    GET  /identity/v3/auth/tokens (X-Subject-Token =
//	                  requester token) -> the requester's project roles
//
// The provider authenticates as a dedicated monitoring service account
// with read access, exactly like a real monitoring deployment would.
package osbinding

import (
	"fmt"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"cloudmon/internal/contract"
	"cloudmon/internal/monitor"
	"cloudmon/internal/obs"
	"cloudmon/internal/ocl"
	"cloudmon/internal/osclient"
	"cloudmon/internal/uml"
)

// ServiceAccount is the monitor's own identity on the cloud.
type ServiceAccount struct {
	User     string
	Password string
	// ProjectID scopes the account's token.
	ProjectID string
}

// Provider implements monitor.StateProvider over the cloud's REST APIs.
type Provider struct {
	client  *osclient.Client
	account ServiceAccount

	// Parallel resolves snapshot paths concurrently. Worth enabling when
	// the cloud is across a network (snapshot latency becomes the slowest
	// read instead of the sum); for in-process or same-host deployments
	// the goroutine and lock-contention overhead outweighs the gain (see
	// BenchmarkSnapshotParallel).
	Parallel bool

	// MaxParallel bounds the worker pool used when Parallel is set, so a
	// contract with many paths cannot fan out an unbounded goroutine burst
	// per request (which multiplies under concurrent proxy load). Zero
	// selects DefaultMaxParallel.
	MaxParallel int

	// Retry configures the backoff loop every cloud read runs under. The
	// zero value selects the defaults (3 attempts, 10ms base, 4x growth,
	// ±50% jitter); set MaxAttempts to 1 to disable retries.
	Retry osclient.RetryPolicy

	// Breaker, when non-nil, sheds snapshot reads while the cloud is down
	// instead of queueing retries against it; shed reads surface as
	// snapshot errors, which the monitor resolves through its fail
	// policy.
	Breaker *osclient.Breaker

	mu sync.Mutex
	// token caches the service-account token; refreshed on 401.
	token string

	// Lock-free observability counters over the retry loop (exported via
	// RegisterMetrics).
	attempts      obs.Counter
	retries       obs.Counter
	authRefreshes obs.Counter
	gets          obs.Counter
}

// ProviderStats snapshots the retry-loop counters.
type ProviderStats struct {
	// Attempts counts cloud-read attempts, including retries.
	Attempts uint64 `json:"attempts"`
	// Retries counts attempts beyond the first for an operation.
	Retries uint64 `json:"retries"`
	// AuthRefreshes counts 401-triggered token invalidations.
	AuthRefreshes uint64 `json:"auth_refreshes"`
	// Gets counts state-path resolutions — one per navigation path read,
	// each one REST GET against the cloud (before retries). The lazy
	// monitor's fetch economy is measured against this.
	Gets uint64 `json:"gets"`
}

// Stats snapshots the provider's counters.
func (p *Provider) Stats() ProviderStats {
	return ProviderStats{
		Attempts:      p.attempts.Value(),
		Retries:       p.retries.Value(),
		AuthRefreshes: p.authRefreshes.Value(),
		Gets:          p.gets.Value(),
	}
}

// RegisterMetrics exposes the provider's retry and breaker state on the
// registry. Breaker state is sampled at scrape time (gauge: 0 closed,
// 1 half-open, 2 open).
func (p *Provider) RegisterMetrics(reg *obs.Registry) {
	reg.Collect(func(w *obs.MetricsWriter) {
		w.Counter("cloudmon_snapshot_attempts_total",
			"Cloud read attempts by the snapshot provider, including retries.",
			float64(p.attempts.Value()))
		w.Counter("cloudmon_snapshot_retries_total",
			"Snapshot read attempts beyond the first for an operation.",
			float64(p.retries.Value()))
		w.Counter("cloudmon_snapshot_auth_refresh_total",
			"Service-token refreshes triggered by 401 responses.",
			float64(p.authRefreshes.Value()))
		w.Counter("cloudmon_cloud_gets_total",
			"State-path reads issued against the cloud (one REST GET each, before retries).",
			float64(p.gets.Value()))
		if p.Breaker != nil {
			var state float64
			switch p.Breaker.State() {
			case osclient.StateHalfOpen:
				state = 1
			case osclient.StateOpen:
				state = 2
			}
			w.Gauge("cloudmon_breaker_state",
				"Snapshot circuit breaker state: 0 closed, 1 half-open, 2 open.",
				state)
			w.Counter("cloudmon_breaker_shed_total",
				"Snapshot reads shed while the breaker was open.",
				float64(p.Breaker.Shed()))
		}
	})
}

var _ monitor.StateProvider = (*Provider)(nil)

// NewProvider returns a provider for the cloud at baseURL, authenticating
// with the service account on demand.
func NewProvider(baseURL string, account ServiceAccount) *Provider {
	return NewProviderWithClient(baseURL, account, nil)
}

// NewProviderWithClient is NewProvider with an explicit HTTP client
// (httptest servers inject their client here).
func NewProviderWithClient(baseURL string, account ServiceAccount, httpClient *http.Client) *Provider {
	c := osclient.New(baseURL)
	c.HTTPClient = httpClient
	return &Provider{
		client:  c,
		account: account,
	}
}

// authedClient returns a client carrying a valid service token,
// re-authenticating if needed.
func (p *Provider) authedClient() (*osclient.Client, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.token == "" {
		tok, err := p.client.Authenticate(p.account.User, p.account.Password, p.account.ProjectID)
		if err != nil {
			return nil, fmt.Errorf("osbinding: service-account auth: %w", err)
		}
		p.token = tok
	}
	return p.client.WithToken(p.token), nil
}

// invalidateToken drops the cached token after a 401.
func (p *Provider) invalidateToken() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.token = ""
}

// withRetry runs fn — a read against the cloud — with an authenticated
// client under the provider's retry policy. All current callers are GET
// resolvers, hence idempotent.
func (p *Provider) withRetry(fn func(c *osclient.Client) error) error {
	return p.retryDo(true, fn)
}

// retryDo is the provider's retry loop: exponential backoff with jitter,
// a fresh per-attempt context deadline, an optional wall-clock budget,
// and re-authentication whenever the cloud answers 401 (expired service
// token — a pre-application failure, so re-sending is always safe).
//
// idempotent declares whether fn may be re-sent after a failure that
// could already have been applied. Non-idempotent operations (POST/PUT
// writes) are retried only on a 401 response: the cloud rejected the
// token before acting on the body, so the first attempt provably had no
// effect. A transport error or 5xx on a write is NOT retried — the write
// may have landed, and re-sending it is the double-apply bug.
func (p *Provider) retryDo(idempotent bool, fn func(c *osclient.Client) error) error {
	pol := p.Retry.WithDefaults()
	var deadline time.Time
	if pol.Budget > 0 {
		deadline = time.Now().Add(pol.Budget)
	}
	for attempt := 1; ; attempt++ {
		if p.Breaker != nil && !p.Breaker.Allow() {
			return fmt.Errorf("osbinding: snapshot shed: %w", osclient.ErrCircuitOpen)
		}
		p.attempts.Inc()
		if attempt > 1 {
			p.retries.Inc()
		}
		c, err := p.authedClient()
		if err == nil {
			if pol.PerAttemptTimeout > 0 {
				cp := *c
				cp.Timeout = pol.PerAttemptTimeout
				c = &cp
			}
			err = fn(c)
		}
		if p.Breaker != nil {
			p.Breaker.Record(!osclient.Infrastructure(err))
		}
		if err == nil {
			return nil
		}
		if osclient.IsStatus(err, http.StatusUnauthorized) {
			p.invalidateToken()
			p.authRefreshes.Inc()
		}
		if !osclient.RetryableFor(err, idempotent) || attempt >= pol.MaxAttempts {
			return err
		}
		sleep := pol.Backoff(attempt, nil)
		if !deadline.IsZero() && time.Now().Add(sleep).After(deadline) {
			return err
		}
		time.Sleep(sleep)
	}
}

// Snapshot implements monitor.StateProvider. Paths are independent REST
// reads; with Parallel set they are resolved concurrently.
func (p *Provider) Snapshot(ctx *monitor.RequestContext, paths []string) (ocl.MapEnv, error) {
	if !p.Parallel || len(paths) < 2 {
		env := make(ocl.MapEnv, len(paths))
		for _, path := range paths {
			v, err := p.resolve(ctx, path)
			if err != nil {
				return nil, fmt.Errorf("osbinding: resolve %s: %w", path, err)
			}
			env[path] = v
		}
		return env, nil
	}
	type result struct {
		path string
		val  ocl.Value
		err  error
	}
	results := make([]result, len(paths))
	workers := p.MaxParallel
	if workers <= 0 {
		workers = DefaultMaxParallel
	}
	if workers > len(paths) {
		workers = len(paths)
	}
	// Bounded pool: `workers` goroutines pull path indices off a shared
	// atomic counter until the list is drained.
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(paths) {
					return
				}
				v, err := p.resolve(ctx, paths[i])
				results[i] = result{path: paths[i], val: v, err: err}
			}
		}()
	}
	wg.Wait()
	env := make(ocl.MapEnv, len(paths))
	for _, r := range results {
		if r.err != nil {
			return nil, fmt.Errorf("osbinding: resolve %s: %w", r.path, r.err)
		}
		env[r.path] = r.val
	}
	return env, nil
}

// DefaultMaxParallel is the default per-snapshot worker-pool size.
const DefaultMaxParallel = 8

// resolve maps one navigation path to a value. Unknown paths and missing
// resources are OclUndefined, never errors — that is how "GET was not 200"
// enters the formulas.
func (p *Provider) resolve(ctx *monitor.RequestContext, path string) (ocl.Value, error) {
	p.gets.Inc()
	switch path {
	case "project.id":
		return p.resolveProjectID(ctx)
	case "project.volumes":
		return p.resolveProjectVolumes(ctx)
	case "project.servers":
		return p.resolveProjectServers(ctx)
	case "quota_sets.volume":
		return p.resolveQuota(ctx)
	case "volume.status":
		return p.resolveVolumeStatus(ctx)
	case "server.status":
		return p.resolveServerStatus(ctx)
	case "user.id.groups":
		return p.resolveUserGroups(ctx)
	default:
		return ocl.Undefined(), nil
	}
}

func (p *Provider) resolveProjectID(ctx *monitor.RequestContext) (ocl.Value, error) {
	pid := ctx.Params["project_id"]
	if pid == "" {
		return ocl.Undefined(), nil
	}
	var out ocl.Value
	err := p.withRetry(func(c *osclient.Client) error {
		proj, _, err := c.GetProject(pid)
		if err != nil {
			return err
		}
		out = ocl.StringVal(proj.ID)
		return nil
	})
	if osclient.IsStatus(err, http.StatusNotFound) {
		return ocl.Undefined(), nil
	}
	if err != nil {
		return ocl.Value{}, err
	}
	return out, nil
}

func (p *Provider) resolveProjectVolumes(ctx *monitor.RequestContext) (ocl.Value, error) {
	pid := ctx.Params["project_id"]
	if pid == "" {
		return ocl.Undefined(), nil
	}
	var out ocl.Value
	err := p.withRetry(func(c *osclient.Client) error {
		vols, _, err := c.ListVolumes(pid)
		if err != nil {
			return err
		}
		ids := make([]ocl.Value, len(vols))
		for i, v := range vols {
			ids[i] = ocl.StringVal(v.ID)
		}
		out = ocl.CollectionVal(ids...)
		return nil
	})
	if osclient.IsStatus(err, http.StatusNotFound) {
		return ocl.Undefined(), nil
	}
	if err != nil {
		return ocl.Value{}, err
	}
	return out, nil
}

func (p *Provider) resolveProjectServers(ctx *monitor.RequestContext) (ocl.Value, error) {
	pid := ctx.Params["project_id"]
	if pid == "" {
		return ocl.Undefined(), nil
	}
	var out ocl.Value
	err := p.withRetry(func(c *osclient.Client) error {
		servers, _, err := c.ListServers(pid)
		if err != nil {
			return err
		}
		ids := make([]ocl.Value, len(servers))
		for i, s := range servers {
			ids[i] = ocl.StringVal(s.ID)
		}
		out = ocl.CollectionVal(ids...)
		return nil
	})
	if osclient.IsStatus(err, http.StatusNotFound) {
		return ocl.Undefined(), nil
	}
	if err != nil {
		return ocl.Value{}, err
	}
	return out, nil
}

func (p *Provider) resolveServerStatus(ctx *monitor.RequestContext) (ocl.Value, error) {
	pid := ctx.Params["project_id"]
	sid := ctx.Params["server_id"]
	if pid == "" || sid == "" {
		return ocl.Undefined(), nil
	}
	var out ocl.Value
	err := p.withRetry(func(c *osclient.Client) error {
		s, _, err := c.GetServer(pid, sid)
		if err != nil {
			return err
		}
		out = ocl.StringVal(s.Status)
		return nil
	})
	if osclient.IsStatus(err, http.StatusNotFound) {
		return ocl.Undefined(), nil
	}
	if err != nil {
		return ocl.Value{}, err
	}
	return out, nil
}

func (p *Provider) resolveQuota(ctx *monitor.RequestContext) (ocl.Value, error) {
	pid := ctx.Params["project_id"]
	if pid == "" {
		return ocl.Undefined(), nil
	}
	var out ocl.Value
	err := p.withRetry(func(c *osclient.Client) error {
		q, _, err := c.GetQuota(pid)
		if err != nil {
			return err
		}
		out = ocl.IntVal(q.Volumes)
		return nil
	})
	if osclient.IsStatus(err, http.StatusNotFound) {
		return ocl.Undefined(), nil
	}
	if err != nil {
		return ocl.Value{}, err
	}
	return out, nil
}

func (p *Provider) resolveVolumeStatus(ctx *monitor.RequestContext) (ocl.Value, error) {
	pid := ctx.Params["project_id"]
	vid := ctx.Params["volume_id"]
	if pid == "" || vid == "" {
		// POST on the collection has no volume id; the formula's
		// volume.status conjuncts then evaluate over OclUndefined.
		return ocl.Undefined(), nil
	}
	var out ocl.Value
	err := p.withRetry(func(c *osclient.Client) error {
		v, _, err := c.GetVolume(pid, vid)
		if err != nil {
			return err
		}
		out = ocl.StringVal(v.Status)
		return nil
	})
	if osclient.IsStatus(err, http.StatusNotFound) {
		return ocl.Undefined(), nil
	}
	if err != nil {
		return ocl.Value{}, err
	}
	return out, nil
}

// resolveUserGroups resolves the requester's roles in the project. The
// paper's guards write `user.id.groups='admin'` where 'admin' is the role
// the user's group holds (Table I maps groups to roles); Keystone reports
// those roles in token validation.
func (p *Provider) resolveUserGroups(ctx *monitor.RequestContext) (ocl.Value, error) {
	if ctx.Token == "" {
		return ocl.Undefined(), nil
	}
	var out ocl.Value
	err := p.withRetry(func(c *osclient.Client) error {
		tok, err := c.ValidateToken(ctx.Token)
		if err != nil {
			return err
		}
		out = ocl.StringsVal(tok.Roles...)
		return nil
	})
	if osclient.IsStatus(err, http.StatusNotFound) {
		// Invalid requester token: no roles.
		return ocl.Undefined(), nil
	}
	if err != nil {
		return ocl.Value{}, err
	}
	return out, nil
}

// Routes derives the monitor's proxy routes from the generated contracts:
// the monitor-facing pattern is the model URI (POST uses the parent
// collection, since creation addresses the collection), and the backend
// template is the cloud's cinder URI.
func Routes(set *contract.Set) []monitor.Route {
	routes := make([]monitor.Route, 0, len(set.Contracts))
	for _, c := range set.Contracts {
		pattern := c.URI
		if c.Trigger.Method == uml.POST {
			pattern = parentOf(pattern)
		}
		routes = append(routes, monitor.Route{
			Trigger: c.Trigger,
			Pattern: pattern,
			Backend: backendFor(pattern),
		})
	}
	return routes
}

// parentOf strips the trailing path segment (the item id).
func parentOf(uri string) string {
	idx := strings.LastIndex(uri, "/")
	if idx <= 0 {
		return uri
	}
	return uri[:idx]
}

// backendFor maps a model URI onto the simulated cloud's service APIs:
// paths under a project route to cinder (/volume/v3) by default and to
// nova (/compute/v2.1) when they address the servers subtree.
func backendFor(pattern string) string {
	const prefix = "/projects/"
	if !strings.HasPrefix(pattern, prefix) {
		return pattern
	}
	rest := pattern[len(prefix):]
	if strings.Contains(pattern, "/servers") {
		return "/compute/v2.1/" + rest
	}
	return "/volume/v3/" + rest
}
