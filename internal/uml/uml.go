// Package uml defines the UML metamodel subset used by the cloud-monitor
// pipeline: resource models (class diagrams restricted by the paper's design
// constraints) and behavioral models (protocol state machines whose state
// invariants, guards and effects are OCL expressions over addressable
// resources).
//
// The vocabulary follows Section IV of the paper:
//
//   - A *resource definition* is a class. A *collection* resource definition
//     has no attributes and contains 0..* child resources; a *normal*
//     resource definition has one or more typed, public attributes.
//   - Associations carry a role name (used to compose URIs) and
//     multiplicities.
//   - The behavioral model's transitions are triggered by HTTP methods on
//     resources; guards combine functional conditions and authorization
//     conditions; comments on transitions carry security-requirement tags
//     (e.g. "SecReq 1.4") for traceability.
package uml

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// HTTPMethod is a REST method that can trigger a transition.
type HTTPMethod string

// The four methods the paper's REST interfaces use.
const (
	GET    HTTPMethod = "GET"
	PUT    HTTPMethod = "PUT"
	POST   HTTPMethod = "POST"
	DELETE HTTPMethod = "DELETE"
)

// ValidMethod reports whether m is one of the supported REST methods.
func ValidMethod(m HTTPMethod) bool {
	switch m {
	case GET, PUT, POST, DELETE:
		return true
	}
	return false
}

// ResourceKind distinguishes collection resource definitions from normal
// ones (Section IV.A).
type ResourceKind int

// Resource kinds. Enums start at 1 so the zero value is detectably unset.
const (
	// KindNormal is a resource with its own attributes.
	KindNormal ResourceKind = iota + 1
	// KindCollection is a resource that merely contains other resources.
	KindCollection
)

// String returns the kind name.
func (k ResourceKind) String() string {
	switch k {
	case KindNormal:
		return "normal"
	case KindCollection:
		return "collection"
	}
	return fmt.Sprintf("ResourceKind(%d)", int(k))
}

// AttrType is the type of a resource attribute. Attributes must be typed
// because they represent serialized documents (Section IV.A).
type AttrType string

// Attribute types supported by the OCL evaluator and the simulator.
const (
	TypeString  AttrType = "String"
	TypeInteger AttrType = "Integer"
	TypeBoolean AttrType = "Boolean"
)

// ValidAttrType reports whether t is a supported attribute type.
func ValidAttrType(t AttrType) bool {
	switch t {
	case TypeString, TypeInteger, TypeBoolean:
		return true
	}
	return false
}

// Attribute is a typed, public property of a normal resource definition.
type Attribute struct {
	Name string
	Type AttrType
}

// Multiplicity is a cardinality bound on an association end. Max == Many
// denotes an unbounded upper end ("*").
type Multiplicity struct {
	Min int
	Max int
}

// Many is the unbounded upper multiplicity ("*").
const Many = -1

// String renders the multiplicity in UML notation, e.g. "0..*".
func (m Multiplicity) String() string {
	upper := "*"
	if m.Max != Many {
		upper = fmt.Sprintf("%d", m.Max)
	}
	return fmt.Sprintf("%d..%s", m.Min, upper)
}

// Contains reports whether n satisfies the multiplicity bounds.
func (m Multiplicity) Contains(n int) bool {
	if n < m.Min {
		return false
	}
	return m.Max == Many || n <= m.Max
}

// Association is a directed link between two resource definitions. The role
// name becomes a URI path segment (Section IV.A: "To form URI addresses,
// every association should have a role name").
type Association struct {
	// From and To are resource-definition names.
	From, To string
	// Role is the role name (URI segment) of the target end.
	Role string
	// Mult is the multiplicity of the target end.
	Mult Multiplicity
}

// ResourceDef is a resource definition: a class in the resource model.
type ResourceDef struct {
	Name       string
	Kind       ResourceKind
	Attributes []Attribute
}

// Attribute returns the named attribute, if present.
func (r *ResourceDef) Attribute(name string) (Attribute, bool) {
	for _, a := range r.Attributes {
		if a.Name == name {
			return a, true
		}
	}
	return Attribute{}, false
}

// ResourceModel is the paper's resource model: a restricted class diagram.
type ResourceModel struct {
	Name         string
	Resources    []*ResourceDef
	Associations []Association
}

// Resource returns the named resource definition, if present.
func (m *ResourceModel) Resource(name string) (*ResourceDef, bool) {
	for _, r := range m.Resources {
		if r.Name == name {
			return r, true
		}
	}
	return nil, false
}

// AssociationsFrom returns all associations whose source is the named
// resource definition, in declaration order.
func (m *ResourceModel) AssociationsFrom(name string) []Association {
	var out []Association
	for _, a := range m.Associations {
		if a.From == name {
			out = append(out, a)
		}
	}
	return out
}

// Roots returns resource definitions that are not the target of any
// association — the URI composition entry points.
func (m *ResourceModel) Roots() []*ResourceDef {
	targeted := make(map[string]bool, len(m.Associations))
	for _, a := range m.Associations {
		targeted[a.To] = true
	}
	var roots []*ResourceDef
	for _, r := range m.Resources {
		if !targeted[r.Name] {
			roots = append(roots, r)
		}
	}
	return roots
}

// URIs composes the relative URI of every resource definition by traversing
// association role names from the roots (Section VI: "By traversing the tags
// on the associations between the resources, we compose the paths of each
// resource. We always start from the corresponding collection").
//
// Collection targets contribute their role name; normal resources contained
// in a collection additionally get an `{<resource>_id}` segment so items in
// the collection are addressable.
func (m *ResourceModel) URIs() map[string]string {
	uris := make(map[string]string, len(m.Resources))
	var walk func(name, prefix string, seen map[string]bool)
	walk = func(name, prefix string, seen map[string]bool) {
		if seen[name] {
			return
		}
		seen[name] = true
		defer delete(seen, name)
		if existing, ok := uris[name]; !ok || len(prefix) < len(existing) {
			uris[name] = prefix
		}
		res, ok := m.Resource(name)
		if !ok {
			return
		}
		for _, a := range m.AssociationsFrom(name) {
			seg := "/" + a.Role
			if res.Kind == KindCollection && a.Mult.Max == Many {
				// Items inside a collection are addressed by id.
				seg = "/{" + strings.ToLower(a.To) + "_id}"
			}
			walk(a.To, prefix+seg, seen)
		}
	}
	for _, root := range m.Roots() {
		prefix := "/" + strings.ToLower(root.Name)
		walk(root.Name, prefix, make(map[string]bool))
	}
	return uris
}

// Validate checks the paper's design constraints on the resource model.
// All violations are collected and returned as one joined error rather
// than stopping at the first, so an analyst fixes a broken diagram in one
// round trip.
func (m *ResourceModel) Validate() error {
	var errs []error
	fail := func(format string, args ...any) {
		errs = append(errs, fmt.Errorf(format, args...))
	}
	if m.Name == "" {
		fail("resource model: missing name")
	}
	seen := make(map[string]bool, len(m.Resources))
	for _, r := range m.Resources {
		if r.Name == "" {
			fail("resource model %q: resource with empty name", m.Name)
		} else if seen[r.Name] {
			fail("resource model %q: duplicate resource %q", m.Name, r.Name)
		}
		seen[r.Name] = true
		switch r.Kind {
		case KindCollection:
			if len(r.Attributes) > 0 {
				fail("collection resource %q must not declare attributes", r.Name)
			}
		case KindNormal:
			if len(r.Attributes) == 0 {
				fail("normal resource %q must declare at least one attribute", r.Name)
			}
		default:
			fail("resource %q: invalid kind %v", r.Name, r.Kind)
		}
		attrSeen := make(map[string]bool, len(r.Attributes))
		for _, a := range r.Attributes {
			if a.Name == "" {
				fail("resource %q: attribute with empty name", r.Name)
			} else if attrSeen[a.Name] {
				fail("resource %q: duplicate attribute %q", r.Name, a.Name)
			}
			attrSeen[a.Name] = true
			if !ValidAttrType(a.Type) {
				fail("resource %q attribute %q: attributes must have a supported type, got %q",
					r.Name, a.Name, a.Type)
			}
		}
	}
	for _, a := range m.Associations {
		if a.Role == "" {
			fail("association %s->%s: every association must have a role name", a.From, a.To)
		}
		if !seen[a.From] {
			fail("association %s->%s: unknown source resource %q", a.From, a.To, a.From)
		}
		if !seen[a.To] {
			fail("association %s->%s: unknown target resource %q", a.From, a.To, a.To)
		}
		if a.Mult.Min < 0 {
			fail("association %s->%s: negative minimum multiplicity", a.From, a.To)
		}
		if a.Mult.Max != Many && a.Mult.Max < a.Mult.Min {
			fail("association %s->%s: max multiplicity below min", a.From, a.To)
		}
	}
	return errors.Join(errs...)
}

// Trigger is a transition trigger: an HTTP method invoked on a resource.
type Trigger struct {
	Method   HTTPMethod
	Resource string
}

// String renders the trigger as in the paper, e.g. "DELETE(volume)".
func (t Trigger) String() string {
	return fmt.Sprintf("%s(%s)", t.Method, t.Resource)
}

// State is a state of the behavioral model, carrying an OCL invariant
// (Section IV.B: "We define the invariant of a state using OCL as a boolean
// expression over the addressable resources").
type State struct {
	Name string
	// Invariant is the OCL state invariant source text. Empty means "true".
	Invariant string
	// Initial marks the initial state.
	Initial bool
}

// Transition is a transition of the behavioral model.
type Transition struct {
	From, To string
	Trigger  Trigger
	// Guard is the OCL guard source text (functional + authorization
	// conditions). Empty means "true".
	Guard string
	// Effect is the OCL effect/postcondition fragment on the transition.
	// Empty means "true". Effects may use pre(...) to refer to pre-state
	// values.
	Effect string
	// SecReqs are the security-requirement tags annotated as comments on
	// the transition (Section IV.C), e.g. ["1.4"].
	SecReqs []string
}

// BehavioralModel is the paper's behavioral model: a protocol state machine
// for one stateful usage scenario of the REST API.
type BehavioralModel struct {
	Name        string
	States      []*State
	Transitions []*Transition
}

// State returns the named state, if present.
func (m *BehavioralModel) State(name string) (*State, bool) {
	for _, s := range m.States {
		if s.Name == name {
			return s, true
		}
	}
	return nil, false
}

// InitialState returns the model's initial state, if declared.
func (m *BehavioralModel) InitialState() (*State, bool) {
	for _, s := range m.States {
		if s.Initial {
			return s, true
		}
	}
	return nil, false
}

// TransitionsFor returns all transitions triggered by the given trigger, in
// declaration order. Contract generation combines these (Section V).
func (m *BehavioralModel) TransitionsFor(tr Trigger) []*Transition {
	var out []*Transition
	for _, t := range m.Transitions {
		if t.Trigger == tr {
			out = append(out, t)
		}
	}
	return out
}

// Triggers returns the distinct triggers appearing in the model, sorted for
// deterministic iteration.
func (m *BehavioralModel) Triggers() []Trigger {
	set := make(map[Trigger]bool, len(m.Transitions))
	for _, t := range m.Transitions {
		set[t.Trigger] = true
	}
	out := make([]Trigger, 0, len(set))
	for tr := range set {
		out = append(out, tr)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Resource != out[j].Resource {
			return out[i].Resource < out[j].Resource
		}
		return out[i].Method < out[j].Method
	})
	return out
}

// SecReqs returns the distinct security-requirement tags annotated anywhere
// in the model, sorted.
func (m *BehavioralModel) SecReqs() []string {
	set := make(map[string]bool)
	for _, t := range m.Transitions {
		for _, s := range t.SecReqs {
			set[s] = true
		}
	}
	out := make([]string, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// Validate checks structural well-formedness of the behavioral model.
// Like ResourceModel.Validate it aggregates every violation into one
// joined error.
func (m *BehavioralModel) Validate() error {
	var errs []error
	fail := func(format string, args ...any) {
		errs = append(errs, fmt.Errorf(format, args...))
	}
	if m.Name == "" {
		fail("behavioral model: missing name")
	}
	if len(m.States) == 0 {
		fail("behavioral model %q: no states", m.Name)
	}
	seen := make(map[string]bool, len(m.States))
	initials := 0
	for _, s := range m.States {
		if s.Name == "" {
			fail("behavioral model %q: state with empty name", m.Name)
		} else if seen[s.Name] {
			fail("behavioral model %q: duplicate state %q", m.Name, s.Name)
		}
		seen[s.Name] = true
		if s.Initial {
			initials++
		}
	}
	if initials > 1 {
		fail("behavioral model %q: multiple initial states", m.Name)
	}
	for _, t := range m.Transitions {
		if !seen[t.From] {
			fail("transition %s: unknown source state %q", t.Trigger, t.From)
		}
		if !seen[t.To] {
			fail("transition %s: unknown target state %q", t.Trigger, t.To)
		}
		if !ValidMethod(t.Trigger.Method) {
			fail("transition %s->%s: invalid trigger method %q", t.From, t.To, t.Trigger.Method)
		}
		if t.Trigger.Resource == "" {
			fail("transition %s->%s: trigger missing resource", t.From, t.To)
		}
	}
	return errors.Join(errs...)
}

// Model bundles the two diagrams the analyst produces for one scenario.
type Model struct {
	Resource   *ResourceModel
	Behavioral *BehavioralModel
}

// Validate validates both diagrams and their cross-references: every trigger
// resource must be declared in the resource model. Failures from both
// diagrams are reported together as one joined error.
func (m *Model) Validate() error {
	var errs []error
	if m.Resource == nil {
		errs = append(errs, fmt.Errorf("model: missing resource model"))
	}
	if m.Behavioral == nil {
		errs = append(errs, fmt.Errorf("model: missing behavioral model"))
	}
	if len(errs) > 0 {
		return errors.Join(errs...)
	}
	if err := m.Resource.Validate(); err != nil {
		errs = append(errs, err)
	}
	if err := m.Behavioral.Validate(); err != nil {
		errs = append(errs, err)
	}
	for _, t := range m.Behavioral.Transitions {
		if _, ok := m.Resource.Resource(t.Trigger.Resource); !ok {
			errs = append(errs, fmt.Errorf("transition %s: trigger resource %q not in resource model",
				t.Trigger, t.Trigger.Resource))
		}
	}
	return errors.Join(errs...)
}
