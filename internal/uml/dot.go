package uml

import (
	"fmt"
	"strings"
)

// This file renders models as Graphviz DOT documents. The paper motivates
// models partly by their communicability ("the models provide a graphical
// representation of the expected behavior of the system with the
// contracts, which can be communicated with a relative ease compared to
// the textual specifications", Section III); DOT export recovers that
// graphical view from the machine-readable models.

// DotBehavioral renders the behavioral model as a DOT digraph: states as
// nodes (invariants as tooltips), transitions as edges labelled with
// trigger, guard and SecReq tags.
func (m *BehavioralModel) Dot() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "digraph %q {\n", m.Name)
	sb.WriteString("  rankdir=LR;\n")
	sb.WriteString("  node [shape=box, style=rounded, fontsize=10];\n")
	sb.WriteString("  edge [fontsize=9];\n")
	for _, s := range m.States {
		attrs := []string{fmt.Sprintf("label=%q", s.Name)}
		if s.Invariant != "" {
			attrs = append(attrs, fmt.Sprintf("tooltip=%q", s.Invariant))
		}
		if s.Initial {
			attrs = append(attrs, "peripheries=2")
		}
		fmt.Fprintf(&sb, "  %q [%s];\n", s.Name, strings.Join(attrs, ", "))
	}
	if init, ok := m.InitialState(); ok {
		sb.WriteString("  __initial [shape=point, width=0.15];\n")
		fmt.Fprintf(&sb, "  __initial -> %q;\n", init.Name)
	}
	for _, t := range m.Transitions {
		label := t.Trigger.String()
		if t.Guard != "" {
			label += "\\n[" + escapeDot(t.Guard) + "]"
		}
		if len(t.SecReqs) > 0 {
			label += "\\nSecReq " + strings.Join(t.SecReqs, ", ")
		}
		fmt.Fprintf(&sb, "  %q -> %q [label=\"%s\"];\n", t.From, t.To, label)
	}
	sb.WriteString("}\n")
	return sb.String()
}

// Dot renders the resource model as a DOT digraph: resource definitions as
// record nodes listing attributes, associations as labelled edges with
// multiplicities.
func (m *ResourceModel) Dot() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "digraph %q {\n", m.Name)
	sb.WriteString("  rankdir=TB;\n")
	sb.WriteString("  node [shape=record, fontsize=10];\n")
	sb.WriteString("  edge [fontsize=9];\n")
	for _, r := range m.Resources {
		var fields []string
		for _, a := range r.Attributes {
			fields = append(fields, fmt.Sprintf("%s: %s", a.Name, a.Type))
		}
		label := r.Name
		if r.Kind == KindCollection {
			label = "\\<\\<collection\\>\\> " + r.Name
		}
		if len(fields) > 0 {
			label += "|" + strings.Join(fields, "\\l") + "\\l"
		}
		fmt.Fprintf(&sb, "  %q [label=\"{%s}\"];\n", r.Name, label)
	}
	for _, a := range m.Associations {
		fmt.Fprintf(&sb, "  %q -> %q [label=\"%s %s\"];\n", a.From, a.To, a.Role, a.Mult)
	}
	sb.WriteString("}\n")
	return sb.String()
}

// Dot renders both diagrams as one DOT document with two clusters.
func (m *Model) Dot() string {
	var sb strings.Builder
	sb.WriteString("digraph model {\n")
	sb.WriteString("  compound=true;\n")
	sb.WriteString(indentCluster("cluster_resources", "Resource model", m.Resource.Dot()))
	sb.WriteString(indentCluster("cluster_behavior", "Behavioral model", m.Behavioral.Dot()))
	sb.WriteString("}\n")
	return sb.String()
}

// indentCluster re-wraps an inner digraph body as a subgraph cluster.
func indentCluster(name, label, dot string) string {
	lines := strings.Split(dot, "\n")
	var body []string
	for _, line := range lines[1:] { // drop "digraph ... {"
		if strings.TrimSpace(line) == "}" || line == "" {
			continue
		}
		body = append(body, "  "+line)
	}
	return fmt.Sprintf("  subgraph %q {\n    label=%q;\n%s\n  }\n",
		name, label, strings.Join(body, "\n"))
}

// escapeDot escapes characters that break DOT string labels.
func escapeDot(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return s
}
