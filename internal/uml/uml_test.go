package uml

import (
	"strings"
	"testing"
)

func validResourceModel() *ResourceModel {
	return &ResourceModel{
		Name: "cinder",
		Resources: []*ResourceDef{
			{Name: "projects", Kind: KindCollection},
			{Name: "project", Kind: KindNormal, Attributes: []Attribute{{Name: "id", Type: TypeString}}},
			{Name: "volumes", Kind: KindCollection},
			{Name: "volume", Kind: KindNormal, Attributes: []Attribute{
				{Name: "id", Type: TypeString},
				{Name: "status", Type: TypeString},
				{Name: "size", Type: TypeInteger},
			}},
			{Name: "quota_sets", Kind: KindNormal, Attributes: []Attribute{{Name: "volume", Type: TypeInteger}}},
		},
		Associations: []Association{
			{From: "projects", To: "project", Role: "project", Mult: Multiplicity{Min: 0, Max: Many}},
			{From: "project", To: "volumes", Role: "volumes", Mult: Multiplicity{Min: 1, Max: 1}},
			{From: "volumes", To: "volume", Role: "volume", Mult: Multiplicity{Min: 0, Max: Many}},
			{From: "project", To: "quota_sets", Role: "quota_sets", Mult: Multiplicity{Min: 1, Max: 1}},
		},
	}
}

func validBehavioralModel() *BehavioralModel {
	return &BehavioralModel{
		Name: "cinder_project",
		States: []*State{
			{Name: "empty", Initial: true, Invariant: "project.volumes->size()=0"},
			{Name: "nonempty", Invariant: "project.volumes->size()>=1"},
		},
		Transitions: []*Transition{
			{
				From: "empty", To: "nonempty",
				Trigger: Trigger{Method: POST, Resource: "volume"},
				Guard:   "user.id.groups='admin'",
				SecReqs: []string{"1.3"},
			},
			{
				From: "nonempty", To: "empty",
				Trigger: Trigger{Method: DELETE, Resource: "volume"},
				Guard:   "user.id.groups='admin'",
				SecReqs: []string{"1.4"},
			},
		},
	}
}

func TestResourceModelValidateOK(t *testing.T) {
	if err := validResourceModel().Validate(); err != nil {
		t.Fatalf("valid model rejected: %v", err)
	}
}

func TestResourceModelValidateErrors(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*ResourceModel)
		want   string
	}{
		{"missing name", func(m *ResourceModel) { m.Name = "" }, "missing name"},
		{"duplicate resource", func(m *ResourceModel) {
			m.Resources = append(m.Resources, &ResourceDef{
				Name: "project", Kind: KindNormal,
				Attributes: []Attribute{{Name: "x", Type: TypeString}}})
		}, "duplicate resource"},
		{"collection with attributes", func(m *ResourceModel) {
			m.Resources[0].Attributes = []Attribute{{Name: "x", Type: TypeString}}
		}, "must not declare attributes"},
		{"normal without attributes", func(m *ResourceModel) {
			m.Resources[1].Attributes = nil
		}, "at least one attribute"},
		{"untyped attribute", func(m *ResourceModel) {
			m.Resources[1].Attributes[0].Type = ""
		}, "supported type"},
		{"duplicate attribute", func(m *ResourceModel) {
			m.Resources[1].Attributes = append(m.Resources[1].Attributes, Attribute{Name: "id", Type: TypeString})
		}, "duplicate attribute"},
		{"association without role", func(m *ResourceModel) {
			m.Associations[0].Role = ""
		}, "role name"},
		{"association unknown target", func(m *ResourceModel) {
			m.Associations[0].To = "ghost"
		}, "unknown target"},
		{"association unknown source", func(m *ResourceModel) {
			m.Associations[0].From = "ghost"
		}, "unknown source"},
		{"bad multiplicity", func(m *ResourceModel) {
			m.Associations[0].Mult = Multiplicity{Min: 2, Max: 1}
		}, "max multiplicity below min"},
		{"invalid kind", func(m *ResourceModel) {
			m.Resources[0].Kind = 0
		}, "invalid kind"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			m := validResourceModel()
			tt.mutate(m)
			err := m.Validate()
			if err == nil {
				t.Fatal("want error, got nil")
			}
			if !strings.Contains(err.Error(), tt.want) {
				t.Errorf("error %q does not mention %q", err, tt.want)
			}
		})
	}
}

func TestResourceModelURIs(t *testing.T) {
	m := validResourceModel()
	uris := m.URIs()
	tests := []struct {
		res, want string
	}{
		{"projects", "/projects"},
		{"project", "/projects/{project_id}"},
		{"volumes", "/projects/{project_id}/volumes"},
		{"volume", "/projects/{project_id}/volumes/{volume_id}"},
		{"quota_sets", "/projects/{project_id}/quota_sets"},
	}
	for _, tt := range tests {
		if got := uris[tt.res]; got != tt.want {
			t.Errorf("URI(%s) = %q, want %q", tt.res, got, tt.want)
		}
	}
}

func TestResourceModelURIsCyclic(t *testing.T) {
	m := &ResourceModel{
		Name: "cyclic",
		Resources: []*ResourceDef{
			{Name: "a", Kind: KindNormal, Attributes: []Attribute{{Name: "id", Type: TypeString}}},
			{Name: "b", Kind: KindNormal, Attributes: []Attribute{{Name: "id", Type: TypeString}}},
		},
		Associations: []Association{
			{From: "a", To: "b", Role: "b", Mult: Multiplicity{Min: 1, Max: 1}},
			{From: "b", To: "a", Role: "a", Mult: Multiplicity{Min: 1, Max: 1}},
		},
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("cyclic model should validate: %v", err)
	}
	// Both a and b are association targets, so there is no root; URI
	// composition must terminate and return an empty (but safe) map.
	uris := m.URIs()
	if len(uris) != 0 {
		t.Errorf("cyclic rootless model URIs = %v, want none", uris)
	}
}

func TestRoots(t *testing.T) {
	m := validResourceModel()
	roots := m.Roots()
	if len(roots) != 1 || roots[0].Name != "projects" {
		names := make([]string, len(roots))
		for i, r := range roots {
			names[i] = r.Name
		}
		t.Errorf("Roots = %v, want [projects]", names)
	}
}

func TestMultiplicity(t *testing.T) {
	m := Multiplicity{Min: 0, Max: Many}
	if m.String() != "0..*" {
		t.Errorf("String = %q, want 0..*", m.String())
	}
	if !m.Contains(0) || !m.Contains(100) {
		t.Error("0..* should contain everything >= 0")
	}
	if m.Contains(-1) {
		t.Error("0..* should not contain -1")
	}
	one := Multiplicity{Min: 1, Max: 1}
	if one.String() != "1..1" {
		t.Errorf("String = %q, want 1..1", one.String())
	}
	if one.Contains(0) || one.Contains(2) || !one.Contains(1) {
		t.Error("1..1 bounds wrong")
	}
}

func TestBehavioralModelValidateOK(t *testing.T) {
	if err := validBehavioralModel().Validate(); err != nil {
		t.Fatalf("valid model rejected: %v", err)
	}
}

func TestBehavioralModelValidateErrors(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*BehavioralModel)
		want   string
	}{
		{"missing name", func(m *BehavioralModel) { m.Name = "" }, "missing name"},
		{"no states", func(m *BehavioralModel) { m.States = nil }, "no states"},
		{"duplicate state", func(m *BehavioralModel) {
			m.States = append(m.States, &State{Name: "empty"})
		}, "duplicate state"},
		{"two initials", func(m *BehavioralModel) {
			m.States[1].Initial = true
		}, "multiple initial"},
		{"unknown source", func(m *BehavioralModel) {
			m.Transitions[0].From = "ghost"
		}, "unknown source state"},
		{"unknown target", func(m *BehavioralModel) {
			m.Transitions[0].To = "ghost"
		}, "unknown target state"},
		{"bad method", func(m *BehavioralModel) {
			m.Transitions[0].Trigger.Method = "PATCH"
		}, "invalid trigger method"},
		{"missing resource", func(m *BehavioralModel) {
			m.Transitions[0].Trigger.Resource = ""
		}, "missing resource"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			m := validBehavioralModel()
			tt.mutate(m)
			err := m.Validate()
			if err == nil {
				t.Fatal("want error, got nil")
			}
			if !strings.Contains(err.Error(), tt.want) {
				t.Errorf("error %q does not mention %q", err, tt.want)
			}
		})
	}
}

func TestTransitionsForAndTriggers(t *testing.T) {
	m := validBehavioralModel()
	post := Trigger{Method: POST, Resource: "volume"}
	if got := m.TransitionsFor(post); len(got) != 1 || got[0].From != "empty" {
		t.Errorf("TransitionsFor(POST volume) = %v", got)
	}
	if got := m.TransitionsFor(Trigger{Method: GET, Resource: "volume"}); len(got) != 0 {
		t.Errorf("TransitionsFor(GET volume) = %v, want empty", got)
	}
	trs := m.Triggers()
	if len(trs) != 2 {
		t.Fatalf("Triggers = %v, want 2", trs)
	}
	// Sorted by resource then method: DELETE < POST.
	if trs[0].Method != DELETE || trs[1].Method != POST {
		t.Errorf("Triggers order = %v", trs)
	}
}

func TestTriggerString(t *testing.T) {
	tr := Trigger{Method: DELETE, Resource: "volume"}
	if tr.String() != "DELETE(volume)" {
		t.Errorf("Trigger.String() = %q", tr.String())
	}
}

func TestSecReqs(t *testing.T) {
	m := validBehavioralModel()
	got := m.SecReqs()
	if len(got) != 2 || got[0] != "1.3" || got[1] != "1.4" {
		t.Errorf("SecReqs = %v, want [1.3 1.4]", got)
	}
}

func TestInitialState(t *testing.T) {
	m := validBehavioralModel()
	s, ok := m.InitialState()
	if !ok || s.Name != "empty" {
		t.Errorf("InitialState = %v, %v", s, ok)
	}
	m.States[0].Initial = false
	if _, ok := m.InitialState(); ok {
		t.Error("no initial state should be reported")
	}
}

func TestModelValidateCrossRef(t *testing.T) {
	m := &Model{Resource: validResourceModel(), Behavioral: validBehavioralModel()}
	if err := m.Validate(); err != nil {
		t.Fatalf("valid cross-model rejected: %v", err)
	}
	m.Behavioral.Transitions[0].Trigger.Resource = "ghost"
	if err := m.Validate(); err == nil {
		t.Error("trigger on undeclared resource accepted")
	}
	if err := (&Model{}).Validate(); err == nil {
		t.Error("empty model accepted")
	}
	if err := (&Model{Resource: validResourceModel()}).Validate(); err == nil {
		t.Error("model without behavioral accepted")
	}
}

func TestValidMethod(t *testing.T) {
	for _, m := range []HTTPMethod{GET, PUT, POST, DELETE} {
		if !ValidMethod(m) {
			t.Errorf("ValidMethod(%s) = false", m)
		}
	}
	if ValidMethod("PATCH") {
		t.Error("PATCH should be invalid")
	}
}

func TestResourceKindString(t *testing.T) {
	if KindNormal.String() != "normal" || KindCollection.String() != "collection" {
		t.Error("kind names wrong")
	}
	if ResourceKind(99).String() == "" {
		t.Error("unknown kind should still render")
	}
}

func TestAttributeLookup(t *testing.T) {
	m := validResourceModel()
	vol, _ := m.Resource("volume")
	if a, ok := vol.Attribute("status"); !ok || a.Type != TypeString {
		t.Errorf("Attribute(status) = %v, %v", a, ok)
	}
	if _, ok := vol.Attribute("ghost"); ok {
		t.Error("ghost attribute found")
	}
}
