package uml

import (
	"strings"
	"testing"
)

func TestBehavioralDot(t *testing.T) {
	m := validBehavioralModel()
	dot := m.Dot()
	for _, want := range []string{
		`digraph "cinder_project"`,
		`"empty" [label="empty"`,
		"peripheries=2",      // initial state double border
		"__initial ->",       // initial marker edge
		`POST(volume)`,       // trigger label
		`SecReq 1.3`,         // traceability on edges
		`[user.id.groups='a`, // guard fragment (escaped quote)
		`"empty" -> "nonemp`, // transition edge
		`tooltip="project.v`, // invariant as tooltip
		"rankdir=LR",         // layout
		`"nonempty" -> "emp`, // delete transition
		"}",                  // well-formed closing
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("behavioral DOT missing %q:\n%s", want, dot)
		}
	}
}

func TestResourceDot(t *testing.T) {
	m := validResourceModel()
	dot := m.Dot()
	for _, want := range []string{
		`digraph "cinder"`,
		`\<\<collection\>\> projects`,
		"id: String",
		"status: String",
		"size: Integer",
		`"projects" -> "project" [label="project 0..*"]`,
		`"project" -> "volumes" [label="volumes 1..1"]`,
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("resource DOT missing %q:\n%s", want, dot)
		}
	}
}

func TestModelDotClusters(t *testing.T) {
	m := &Model{Resource: validResourceModel(), Behavioral: validBehavioralModel()}
	dot := m.Dot()
	for _, want := range []string{
		"digraph model",
		`subgraph "cluster_resources"`,
		`subgraph "cluster_behavior"`,
		`label="Resource model"`,
		`label="Behavioral model"`,
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("model DOT missing %q", want)
		}
	}
	// Balanced braces.
	if strings.Count(dot, "{") != strings.Count(dot, "}") {
		t.Error("unbalanced braces in DOT output")
	}
}

func TestEscapeDot(t *testing.T) {
	if got := escapeDot(`a"b\c`); got != `a\"b\\c` {
		t.Errorf("escapeDot = %q", got)
	}
}
