package monitor

import (
	"encoding/json"
	"io"
	"sync"
)

// AuditWriter streams verdicts as NDJSON (one JSON document per line) —
// the durable log the paper's automated-testing use case needs for "fault
// localization". Install its Record method as Config.OnVerdict.
type AuditWriter struct {
	mu  sync.Mutex
	enc *json.Encoder
	err error
}

// NewAuditWriter returns an audit writer emitting to w.
func NewAuditWriter(w io.Writer) *AuditWriter {
	return &AuditWriter{enc: json.NewEncoder(w)}
}

// Record writes one verdict line. Write failures are remembered and
// reported by Err; monitoring must not fail because the audit sink did.
func (a *AuditWriter) Record(v Verdict) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.err != nil {
		return
	}
	docs := verdictDocs([]Verdict{v})
	if err := a.enc.Encode(docs[0]); err != nil {
		a.err = err
	}
}

// Err returns the first write error, if any.
func (a *AuditWriter) Err() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.err
}
