package monitor

import (
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"cloudmon/internal/contract"
	"cloudmon/internal/ocl"
	"cloudmon/internal/paper"
	"cloudmon/internal/uml"
)

// countingProvider serves a fixed env and counts how many paths it was
// asked to resolve.
type countingProvider struct {
	mu    sync.Mutex
	env   ocl.MapEnv
	paths int
	calls int
}

func (p *countingProvider) Snapshot(_ *RequestContext, paths []string) (ocl.MapEnv, error) {
	p.mu.Lock()
	p.calls++
	p.paths += len(paths)
	p.mu.Unlock()
	out := make(ocl.MapEnv, len(paths))
	for _, path := range paths {
		if v, ok := p.env[path]; ok {
			out[path] = v
		}
	}
	return out, nil
}

func (p *countingProvider) stats() (int, int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.calls, p.paths
}

// okForwarder is a stateless (and therefore race-free) backend stub for
// concurrent tests; fakeForwarder counts calls without locking.
type okForwarder struct{}

func (okForwarder) Forward(*http.Request, *Route, map[string]string) (*BackendResponse, error) {
	return &BackendResponse{StatusCode: 200, Header: http.Header{}, Body: []byte("{}")}, nil
}

func newCachedMonitor(t *testing.T, ttl time.Duration, p StateProvider, f Forwarder) *Monitor {
	t.Helper()
	set, err := contract.Generate(paper.CinderModel())
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(Config{
		Contracts: set,
		Routes: []Route{
			{Trigger: uml.Trigger{Method: uml.GET, Resource: "volume"},
				Pattern: "/projects/{project_id}/volumes/{volume_id}",
				Backend: "/v/{project_id}/{volume_id}"},
			{Trigger: uml.Trigger{Method: uml.DELETE, Resource: "volume"},
				Pattern: "/projects/{project_id}/volumes/{volume_id}",
				Backend: "/v/{project_id}/{volume_id}"},
		},
		Provider: p,
		Forward:  f,
		Mode:     Enforce,
		// These tests assert the eager engine's whole-snapshot call and
		// path arithmetic; the lazy engine's fetch economy is covered by
		// the differential and plan tests.
		Eval:             EvalEager,
		PreStateCacheTTL: ttl,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func doReq(m *Monitor, method, path, token string) *httptest.ResponseRecorder {
	req := httptest.NewRequest(method, path, nil)
	req.Header.Set("X-Auth-Token", token)
	w := httptest.NewRecorder()
	m.ServeHTTP(w, req)
	return w
}

// TestPreStateCacheHit: a second identical GET within the TTL resolves its
// pre-state entirely from the cache. (Post-state snapshots always hit the
// provider: GET/full-level needs one provider call per request even on a
// cache hit.)
func TestPreStateCacheHit(t *testing.T) {
	p := &countingProvider{env: env(1, 10, "available", "member")}
	m := newCachedMonitor(t, time.Minute, p, &fakeForwarder{status: 200})

	doReq(m, http.MethodGet, "/projects/p1/volumes/v1", "tok-a")
	calls1, paths1 := p.stats()
	if calls1 != 2 {
		t.Fatalf("first request made %d provider calls, want 2 (pre+post)", calls1)
	}

	doReq(m, http.MethodGet, "/projects/p1/volumes/v1", "tok-a")
	calls2, paths2 := p.stats()
	if calls2 != 3 {
		t.Errorf("second request made %d extra calls, want 1 (post only)", calls2-calls1)
	}
	// The post snapshot still fetches every path; the pre side fetched none.
	if paths2-paths1 != paths1/2 {
		t.Errorf("second request fetched %d paths, want %d", paths2-paths1, paths1/2)
	}

	for _, v := range m.Log() {
		if v.Outcome != OK {
			t.Errorf("outcome %s with cache enabled, want ok", v.Outcome)
		}
	}
}

// TestPreStateCacheDistinctTokens: the cache is keyed by token — another
// requester never sees a cached user.id.groups.
func TestPreStateCacheDistinctTokens(t *testing.T) {
	p := &countingProvider{env: env(1, 10, "available", "member")}
	m := newCachedMonitor(t, time.Minute, p, &fakeForwarder{status: 200})

	doReq(m, http.MethodGet, "/projects/p1/volumes/v1", "tok-a")
	_, pathsA := p.stats()
	doReq(m, http.MethodGet, "/projects/p1/volumes/v1", "tok-b")
	_, pathsB := p.stats()
	// The second token must re-fetch the full pre snapshot (plus post).
	if pathsB-pathsA != pathsA {
		t.Errorf("second token fetched %d paths, want %d (no cross-token reuse)", pathsB-pathsA, pathsA)
	}
}

// TestPreStateCacheInvalidatedByWrite: a forwarded write drops the
// project's cached pre-state, so the next read re-fetches.
func TestPreStateCacheInvalidatedByWrite(t *testing.T) {
	p := &countingProvider{env: env(1, 10, "available", "admin")}
	m := newCachedMonitor(t, time.Minute, p, &fakeForwarder{status: 200})

	doReq(m, http.MethodGet, "/projects/p1/volumes/v1", "tok-a") // fills cache
	doReq(m, http.MethodDelete, "/projects/p1/volumes/v1", "tok-a")
	_, pathsBefore := p.stats()
	doReq(m, http.MethodGet, "/projects/p1/volumes/v1", "tok-a")
	_, pathsAfter := p.stats()
	perSnapshot := len(m.routes[0].paths)
	// Pre and post both fetched: the write invalidated the cached pre-state.
	if pathsAfter-pathsBefore != 2*perSnapshot {
		t.Errorf("read after write fetched %d paths, want %d (cache must be invalidated)",
			pathsAfter-pathsBefore, 2*perSnapshot)
	}
}

// TestPreStateCacheTTLExpiry: entries die after the TTL even without a
// write through the monitor (covers out-of-band cloud mutations).
func TestPreStateCacheTTLExpiry(t *testing.T) {
	p := &countingProvider{env: env(1, 10, "available", "member")}
	m := newCachedMonitor(t, time.Minute, p, &fakeForwarder{status: 200})

	now := time.Now()
	m.cache.now = func() time.Time { return now }
	doReq(m, http.MethodGet, "/projects/p1/volumes/v1", "tok-a")
	_, paths1 := p.stats()

	now = now.Add(2 * time.Minute)
	doReq(m, http.MethodGet, "/projects/p1/volumes/v1", "tok-a")
	_, paths2 := p.stats()
	if paths2-paths1 != paths1 {
		t.Errorf("expired entries served: fetched %d paths, want %d", paths2-paths1, paths1)
	}
}

// TestPreStateCacheAbsentPaths: paths the provider omits from the env stay
// absent on cache hits (the fake mirrors providers that return partial
// envs; missing keys must not become zero Values).
func TestPreStateCacheAbsentPaths(t *testing.T) {
	partial := env(1, 10, "available", "member")
	delete(partial, "volume.status")
	p := &countingProvider{env: partial}
	m := newCachedMonitor(t, time.Minute, p, &fakeForwarder{status: 200})

	w1 := doReq(m, http.MethodGet, "/projects/p1/volumes/v1", "tok-a")
	w2 := doReq(m, http.MethodGet, "/projects/p1/volumes/v1", "tok-a")
	if w1.Code != w2.Code {
		t.Errorf("cached verdict diverged: first %d, second %d", w1.Code, w2.Code)
	}
	log := m.Log()
	if len(log) != 2 {
		t.Fatalf("got %d verdicts", len(log))
	}
	if _, ok := log[1].PreSnapshot["volume.status"]; ok {
		t.Error("absent path materialised in cached snapshot")
	}
	if log[0].Outcome != log[1].Outcome {
		t.Errorf("outcome changed on cache hit: %s then %s", log[0].Outcome, log[1].Outcome)
	}
}

// TestShardedCountersAggregate drives concurrent requests and checks that
// the sharded outcome/coverage counters and the merged log agree.
func TestShardedCountersAggregate(t *testing.T) {
	p := &countingProvider{env: env(1, 10, "available", "member")}
	m := newCachedMonitor(t, 0, p, okForwarder{})

	const goroutines, per = 16, 25
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				doReq(m, http.MethodGet, "/projects/p1/volumes/v1", "tok")
			}
		}()
	}
	wg.Wait()

	total := 0
	for _, n := range m.Outcomes() {
		total += n
	}
	if total != goroutines*per {
		t.Errorf("outcome counters sum to %d, want %d", total, goroutines*per)
	}
	log := m.Log()
	if len(log) != goroutines*per {
		t.Errorf("log holds %d verdicts, want %d", len(log), goroutines*per)
	}
	// Log must be ordered by arrival sequence.
	for i := 1; i < len(log); i++ {
		if log[i-1].seq >= log[i].seq {
			t.Fatalf("log out of order at %d: %d then %d", i, log[i-1].seq, log[i].seq)
		}
	}
}
