package monitor

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"cloudmon/internal/obs"
	"cloudmon/internal/ocl"
)

// slowPostProvider serves the pre-state instantly and delays every
// post-phase read — the shape of a cloud whose reads are slow enough that
// the async queue saturates under a fast request stream.
type slowPostProvider struct {
	pre, post ocl.MapEnv
	delay     time.Duration
}

func (p *slowPostProvider) Snapshot(ctx *RequestContext, paths []string) (ocl.MapEnv, error) {
	src := p.pre
	if ctx.Phase == PhasePost {
		time.Sleep(p.delay)
		src = p.post
	}
	out := make(ocl.MapEnv, len(paths))
	for _, path := range paths {
		if v, ok := src[path]; ok {
			out[path] = v
		}
	}
	return out, nil
}

// newAsyncMonitor builds a compiled monitor with the async post pipeline
// and the given knobs over the standard test routes.
func newAsyncMonitor(t *testing.T, cfg Config) *Monitor {
	t.Helper()
	cfg.Eval = EvalCompiled
	cfg.Post = PostAsync
	if cfg.Mode == 0 {
		cfg.Mode = Enforce
	}
	m := newPolicyMonitor(t, cfg)
	t.Cleanup(m.Close)
	return m
}

func doAsyncGet(t *testing.T, m *Monitor) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, "/projects/p1/volumes/v1", nil)
	req.Header.Set("X-Auth-Token", "tok")
	rec := httptest.NewRecorder()
	m.ServeHTTP(rec, req)
	return rec
}

// TestAsyncBackpressureMatrix crosses both backpressure policies with all
// three fail policies under a saturated queue: capacity one, one worker,
// and a post-phase read slow enough that a serial burst outruns it. The
// invariants per cell: exactly one verdict per request; under shed every
// rejected capture becomes an audited Unverified verdict tagged shed=true
// (counted, never silently dropped); under block nothing is shed or
// dropped and verdicts land in response order.
func TestAsyncBackpressureMatrix(t *testing.T) {
	const burst = 8
	policies := []BackpressurePolicy{BackpressureBlock, BackpressureShed}
	failPolicies := []FailPolicy{FailClosed, FailOpen, Degrade}
	for _, bp := range policies {
		for _, fp := range failPolicies {
			t.Run(fmt.Sprintf("%s/%s", bp, fp), func(t *testing.T) {
				dir := t.TempDir()
				audit, err := obs.OpenAuditLog(dir, 0)
				if err != nil {
					t.Fatal(err)
				}
				defer audit.Close()
				e := env(1, 10, "available", "admin")
				cfg := Config{
					Provider:         &slowPostProvider{pre: e, post: e, delay: 3 * time.Millisecond},
					Forward:          &fakeForwarder{status: 200},
					FailPolicy:       fp,
					PostQueueCap:     1,
					PostWorkers:      1,
					PostBackpressure: bp,
					Audit:            audit,
				}
				if fp == Degrade {
					cfg.PreStateCacheTTL = time.Second
				}
				m := newAsyncMonitor(t, cfg)
				for i := 0; i < burst; i++ {
					if rec := doAsyncGet(t, m); rec.Code != 200 {
						t.Fatalf("request %d: status %d, want 200", i, rec.Code)
					}
				}
				m.DrainPost()
				st := m.AsyncPostStats()
				outcomes := m.Outcomes()
				total := 0
				for _, n := range outcomes {
					total += n
				}
				if total != burst {
					t.Fatalf("recorded %d verdicts for %d requests: %v", total, burst, outcomes)
				}
				if st.Pending != 0 {
					t.Fatalf("pending %d after drain", st.Pending)
				}
				switch bp {
				case BackpressureShed:
					if st.Shed == 0 {
						t.Fatal("saturated queue shed nothing")
					}
					if got := outcomes[Unverified]; got != int(st.Shed) {
						t.Fatalf("Unverified verdicts %d, shed counter %d", got, st.Shed)
					}
					shedRecs := 0
					res, err := obs.ReadAuditDir(dir)
					if err != nil {
						t.Fatal(err)
					}
					for _, rec := range res.Records {
						if rec.Shed {
							shedRecs++
							if rec.Outcome != Unverified.String() {
								t.Errorf("shed audit record outcome %q, want unverified", rec.Outcome)
							}
							if !rec.Late {
								t.Error("shed audit record not tagged late")
							}
						}
					}
					if shedRecs != int(st.Shed) {
						t.Fatalf("audit has %d shed records, counter says %d", shedRecs, st.Shed)
					}
				case BackpressureBlock:
					if st.Shed != 0 {
						t.Fatalf("block policy shed %d captures", st.Shed)
					}
					if got := outcomes[OK]; got != burst {
						t.Fatalf("block policy verified %d of %d: %v", got, burst, outcomes)
					}
					if st.Lag.Count != uint64(burst) {
						t.Fatalf("lag histogram holds %d samples, want %d", st.Lag.Count, burst)
					}
					// One worker drains FIFO: verdicts must land in the order
					// the responses returned — block never reorders.
					var last time.Time
					for i, v := range m.Log() {
						if !v.Late {
							t.Fatalf("verdict %d not late under async", i)
						}
						if v.Returned.Before(last) {
							t.Fatalf("verdict %d recorded out of response order", i)
						}
						last = v.Returned
					}
				}
			})
		}
	}
}

// TestAsyncLateVerdictTimestamps is the regression test for the
// two-timestamp fix: a late verdict must carry both when its response
// returned and a non-negative detection lag, the lag must be in the
// histogram, and the audit record's times must stay monotonic
// (verdict time ≥ response-return time) so stage summaries never go
// negative.
func TestAsyncLateVerdictTimestamps(t *testing.T) {
	dir := t.TempDir()
	audit, err := obs.OpenAuditLog(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer audit.Close()
	// Post-state unchanged after a DELETE: a postcondition violation the
	// worker detects after the 204 already went out.
	m := newAsyncMonitor(t, Config{
		Provider: &fakeProvider{pre: env(2, 10, "available", "admin"), post: env(2, 10, "available", "admin")},
		Forward:  &fakeForwarder{status: 204},
		Audit:    audit,
	})
	before := time.Now()
	rec := doDelete(t, m)
	if rec.Code != 204 {
		t.Fatalf("async client must see the backend answer, got %d", rec.Code)
	}
	m.DrainPost()
	v := lastVerdict(t, m)
	if v.Outcome != ViolationPostcondition {
		t.Fatalf("outcome = %s, want violation:postcondition", v.Outcome)
	}
	if !v.Late || v.Shed {
		t.Fatalf("late verdict flags: Late=%v Shed=%v", v.Late, v.Shed)
	}
	if v.Returned.Before(before) {
		t.Fatalf("Returned %v predates the request", v.Returned)
	}
	if v.DetectionLag < 0 {
		t.Fatalf("DetectionLag = %v, want >= 0", v.DetectionLag)
	}
	st := m.AsyncPostStats()
	if st.Enqueued != 1 || st.LateViolations != 1 || st.Lag.Count != 1 {
		t.Fatalf("stats = %+v, want 1 enqueued, 1 late violation, 1 lag sample", st)
	}
	audit.Sync()
	res, err := obs.ReadAuditDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 1 {
		t.Fatalf("audit has %d records, want 1", len(res.Records))
	}
	ar := res.Records[0]
	if !ar.Late || ar.Shed {
		t.Fatalf("audit flags: late=%v shed=%v", ar.Late, ar.Shed)
	}
	if ar.ReturnUnixNano <= 0 || ar.LagNanos < 0 {
		t.Fatalf("audit timestamps: return=%d lag=%d", ar.ReturnUnixNano, ar.LagNanos)
	}
	if ar.Time < ar.ReturnUnixNano {
		t.Fatalf("verdict time %d predates response return %d", ar.Time, ar.ReturnUnixNano)
	}
}

// TestAsyncCrashMidDrainAudit simulates a crash while the worker pool was
// draining late verdicts into the audit trail: the segment's tail record
// is torn. The reader must keep every whole record, the verifier must
// flag exactly the torn tail, and a reopened trail must resume the chain
// without ever double-writing a late verdict.
func TestAsyncCrashMidDrainAudit(t *testing.T) {
	dir := t.TempDir()
	audit, err := obs.OpenAuditLog(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	e := env(2, 10, "available", "admin")
	m := newAsyncMonitor(t, Config{
		Provider: &fakeProvider{pre: e, post: e},
		Forward:  &fakeForwarder{status: 204},
		Audit:    audit,
	})
	const n = 4
	for i := 0; i < n; i++ {
		doDelete(t, m)
	}
	m.DrainPost()
	m.Close()
	audit.Close()

	segments, err := obs.AuditSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	path := segments[len(segments)-1].Path
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// The crash lands mid-write of the final late verdict.
	cut := len(data) - 1 - len(data)/(2*n)
	if err := os.WriteFile(path, data[:cut], 0o644); err != nil {
		t.Fatal(err)
	}

	res, err := obs.ReadAuditDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != n-1 || len(res.Torn) != 1 {
		t.Fatalf("after crash: %d whole, %d torn; want %d whole, 1 torn",
			len(res.Records), len(res.Torn), n-1)
	}
	ver, err := obs.VerifyAuditDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if ver.OK() {
		t.Fatal("verifier passed a torn chain")
	}
	torn := false
	for _, p := range ver.Problems {
		if strings.Contains(p, "torn final record") {
			torn = true
		}
	}
	if !torn {
		t.Fatalf("problems = %v, want exactly the torn tail", ver.Problems)
	}

	// Reopen and drain one more late verdict through a fresh monitor: the
	// chain resumes after the last whole record in a new segment, and no
	// seq appears twice — the crash cannot double-write a verdict.
	audit2, err := obs.OpenAuditLog(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	m2 := newAsyncMonitor(t, Config{
		Provider: &fakeProvider{pre: e, post: e},
		Forward:  &fakeForwarder{status: 204},
		Audit:    audit2,
	})
	doDelete(t, m2)
	m2.DrainPost()
	m2.Close()
	audit2.Close()

	res2, err := obs.ReadAuditDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[uint64]bool)
	for _, rec := range res2.Records {
		if seen[rec.Seq] {
			t.Fatalf("seq %d written twice after reopen", rec.Seq)
		}
		seen[rec.Seq] = true
	}
	last := res2.Records[len(res2.Records)-1]
	if last.Seq != uint64(n) {
		t.Fatalf("resumed seq = %d, want %d (after %d whole records)", last.Seq, n, n-1)
	}
	if len(res2.Segments) != 2 {
		t.Fatalf("crash recovery must open a fresh segment, got %d", len(res2.Segments))
	}
}
