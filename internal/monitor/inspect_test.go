package monitor

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
)

// inspected builds a monitor, drives one OK delete and one blocked delete,
// and returns the inspect handler.
func inspected(t *testing.T) (*Monitor, http.Handler) {
	t.Helper()
	p := &fakeProvider{
		pre:  env(2, 10, "available", "admin"),
		post: env(1, 10, "available", "admin"),
	}
	m := newMonitor(t, Enforce, p, &fakeForwarder{status: 204})
	doDelete(t, m) // OK
	p2 := &fakeProvider{pre: env(2, 10, "available", "member")}
	m2 := newMonitor(t, Enforce, p2, &fakeForwarder{status: 204})
	doDelete(t, m2) // Blocked (separate monitor to keep envs scripted)
	return m, m.InspectHandler()
}

func getJSON(t *testing.T, h http.Handler, path string, out any) int {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if out != nil && rec.Code == http.StatusOK {
		if err := json.Unmarshal(rec.Body.Bytes(), out); err != nil {
			t.Fatalf("decode %s: %v (body %s)", path, err, rec.Body.String())
		}
	}
	return rec.Code
}

func TestInspectLog(t *testing.T) {
	_, h := inspected(t)
	var body struct {
		Verdicts []struct {
			Trigger       string            `json:"trigger"`
			Outcome       string            `json:"outcome"`
			PreOK         bool              `json:"pre_ok"`
			PreSnapshot   map[string]string `json:"pre_snapshot"`
			ElapsedMicros int64             `json:"elapsed_micros"`
		} `json:"verdicts"`
	}
	if code := getJSON(t, h, "/log", &body); code != 200 {
		t.Fatalf("status = %d", code)
	}
	if len(body.Verdicts) != 1 {
		t.Fatalf("verdicts = %d", len(body.Verdicts))
	}
	v := body.Verdicts[0]
	if v.Trigger != "DELETE(volume)" || v.Outcome != "ok" || !v.PreOK {
		t.Errorf("verdict = %+v", v)
	}
	// Snapshots are rendered in OCL literal syntax for fault localization.
	if v.PreSnapshot["user.id.groups"] != "Set{'admin'}" {
		t.Errorf("pre snapshot = %v", v.PreSnapshot)
	}
}

func TestInspectViolationsEmptyOnCleanRun(t *testing.T) {
	_, h := inspected(t)
	var body struct {
		Verdicts []json.RawMessage `json:"verdicts"`
	}
	if code := getJSON(t, h, "/violations", &body); code != 200 {
		t.Fatalf("status = %d", code)
	}
	if len(body.Verdicts) != 0 {
		t.Errorf("violations = %d, want 0", len(body.Verdicts))
	}
}

func TestInspectCoverageAndOutcomes(t *testing.T) {
	_, h := inspected(t)
	var cov struct {
		Coverage    map[string]int `json:"coverage"`
		Transitions map[string]int `json:"transitions"`
	}
	getJSON(t, h, "/coverage", &cov)
	if cov.Coverage["1.4"] != 1 || cov.Coverage["1.1"] != 0 {
		t.Errorf("coverage = %v", cov.Coverage)
	}
	if len(cov.Transitions) != 11 {
		t.Errorf("transition coverage universe = %d, want 11", len(cov.Transitions))
	}
	hits := 0
	for _, n := range cov.Transitions {
		hits += n
	}
	if hits != 1 {
		t.Errorf("transition hits = %d, want 1", hits)
	}
	var out struct {
		Outcomes map[string]int `json:"outcomes"`
	}
	getJSON(t, h, "/outcomes", &out)
	if out.Outcomes["ok"] != 1 {
		t.Errorf("outcomes = %v", out.Outcomes)
	}
}

func TestInspectContracts(t *testing.T) {
	_, h := inspected(t)
	var body struct {
		Contracts []struct {
			Trigger    string   `json:"trigger"`
			URI        string   `json:"uri"`
			Pre        string   `json:"pre"`
			SecReqs    []string `json:"sec_reqs"`
			StatePaths []string `json:"state_paths"`
			Plan       struct {
				Pre []struct {
					Case  int      `json:"case"`
					Paths []string `json:"paths"`
				} `json:"pre"`
				Post []struct {
					Case    int      `json:"case"`
					Touched []string `json:"touched"`
				} `json:"post"`
				PrePaths []string `json:"pre_paths"`
			} `json:"plan"`
		} `json:"contracts"`
	}
	getJSON(t, h, "/contracts", &body)
	if len(body.Contracts) != 4 {
		t.Fatalf("contracts = %d", len(body.Contracts))
	}
	found := false
	for _, c := range body.Contracts {
		if c.Trigger == "DELETE(volume)" {
			found = true
			if c.URI == "" || c.Pre == "" || len(c.StatePaths) == 0 {
				t.Errorf("incomplete contract doc: %+v", c)
			}
			if len(c.SecReqs) != 1 || c.SecReqs[0] != "1.4" {
				t.Errorf("sec_reqs = %v", c.SecReqs)
			}
			if len(c.Plan.Pre) != 3 || len(c.Plan.Post) != 3 {
				t.Errorf("plan clauses = %d pre / %d post, want 3/3", len(c.Plan.Pre), len(c.Plan.Post))
			}
			if len(c.Plan.PrePaths) != len(c.StatePaths) {
				t.Errorf("plan pre_paths = %v, want the %d state paths", c.Plan.PrePaths, len(c.StatePaths))
			}
			for _, pc := range c.Plan.Post {
				if len(pc.Touched) == 0 {
					t.Errorf("post clause %d has no effect frame", pc.Case)
				}
			}
		}
	}
	if !found {
		t.Error("DELETE(volume) contract missing")
	}
}

func TestInspectReset(t *testing.T) {
	m, h := inspected(t)
	req := httptest.NewRequest(http.MethodPost, "/reset", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusNoContent {
		t.Fatalf("reset status = %d", rec.Code)
	}
	if len(m.Log()) != 0 {
		t.Error("log not cleared")
	}
}

func TestInspectStats(t *testing.T) {
	m, h := inspected(t)
	var body struct {
		Stats []struct {
			Trigger  string         `json:"trigger"`
			Count    int            `json:"count"`
			Outcomes map[string]int `json:"outcomes"`
		} `json:"stats"`
	}
	if code := getJSON(t, h, "/stats", &body); code != 200 {
		t.Fatalf("status = %d", code)
	}
	if len(body.Stats) != 1 {
		t.Fatalf("stats = %+v", body.Stats)
	}
	st := body.Stats[0]
	if st.Trigger != "DELETE(volume)" || st.Count != 1 || st.Outcomes["ok"] != 1 {
		t.Errorf("stats = %+v", st)
	}
	// Programmatic access agrees.
	stats := m.Stats()
	if len(stats) != 1 || stats[0].Count != 1 {
		t.Errorf("Stats() = %+v", stats)
	}
}

func TestInspectUnknownPath(t *testing.T) {
	_, h := inspected(t)
	if code := getJSON(t, h, "/nope", nil); code != http.StatusNotFound {
		t.Errorf("unknown path = %d", code)
	}
}
