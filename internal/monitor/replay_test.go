package monitor

import (
	"net/http"
	"net/http/httptest"
	"testing"

	"cloudmon/internal/contract"
	"cloudmon/internal/obs"
	"cloudmon/internal/paper"
	"cloudmon/internal/uml"
)

// recordTrail drives a monitor through a blocked request and a
// postcondition violation with the audit sink attached, then returns
// the recorded trail. These are the two interesting replay shapes: a
// never-forwarded enforcement and a forwarded-then-failed verdict.
func recordTrail(t *testing.T) (*contract.Set, []obs.AuditRecord) {
	t.Helper()
	set, err := contract.Generate(paper.CinderModel())
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	log, err := obs.OpenAuditLog(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	run := func(p *fakeProvider) {
		t.Helper()
		m, err := New(Config{
			Contracts: set,
			Routes: []Route{{Trigger: uml.Trigger{Method: uml.DELETE, Resource: "volume"},
				Pattern: "/projects/{project_id}/volumes/{volume_id}",
				Backend: "/volume/v3/{project_id}/volumes/{volume_id}"}},
			Provider: p,
			Forward:  &fakeForwarder{status: 204},
			Mode:     Enforce,
			Audit:    log,
		})
		if err != nil {
			t.Fatal(err)
		}
		req := httptest.NewRequest(http.MethodDelete, "/projects/p1/volumes/v1", nil)
		req.Header.Set("X-Auth-Token", "tok")
		m.ServeHTTP(httptest.NewRecorder(), req)
	}
	// member may not delete → blocked (audited with its pre snapshot).
	run(&fakeProvider{pre: env(1, 10, "available", "member")})
	// admin deletes but the volume count does not drop → postcondition
	// violation (audited with pre and post snapshots).
	run(&fakeProvider{
		pre:  env(2, 10, "available", "admin"),
		post: env(2, 10, "available", "admin"),
	})
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}
	res, err := obs.ReadAuditDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 2 {
		t.Fatalf("recorded %d audit records, want 2", len(res.Records))
	}
	return set, res.Records
}

func TestReplayReproducesVerdicts(t *testing.T) {
	set, recs := recordTrail(t)
	r, err := NewReplayer(set)
	if err != nil {
		t.Fatal(err)
	}
	sum := r.ReplayAll(recs)
	if !sum.OK() || sum.Matched != 2 || sum.Skipped != 0 {
		t.Fatalf("replay summary %+v (failures %+v)", sum, sum.Failures)
	}
	if recs[0].Outcome != Blocked.String() || recs[1].Outcome != ViolationPostcondition.String() {
		t.Fatalf("trail shape changed: %s, %s", recs[0].Outcome, recs[1].Outcome)
	}
}

func TestReplayDetectsTamperedSnapshot(t *testing.T) {
	set, recs := recordTrail(t)
	// Forge the blocked record's pre state: with admin rights the
	// contract would have allowed the delete, so the recorded "blocked"
	// verdict no longer follows from the (tampered) evidence.
	recs[0].Pre["user.id.groups"] = "Set{'admin'}"
	r, err := NewReplayer(set)
	if err != nil {
		t.Fatal(err)
	}
	sum := r.ReplayAll(recs)
	if sum.OK() || sum.Diverged != 1 {
		t.Fatalf("tampered snapshot not caught: %+v", sum)
	}
	if sum.Failures[0].Seq != recs[0].Seq || sum.Failures[0].Replayed == recs[0].Outcome {
		t.Fatalf("failure %+v", sum.Failures[0])
	}
}

func TestReplayDetectsTamperedOutcome(t *testing.T) {
	set, recs := recordTrail(t)
	// Downgrade the violation to an innocuous outcome: replay must
	// re-derive the violation from the snapshots and flag the mismatch.
	recs[1].Outcome = Rejected.String()
	r, err := NewReplayer(set)
	if err != nil {
		t.Fatal(err)
	}
	sum := r.ReplayAll(recs)
	if sum.OK() {
		t.Fatalf("tampered outcome not caught: %+v", sum)
	}
}

func TestReplayContractDigestBinding(t *testing.T) {
	set, recs := recordTrail(t)
	if recs[0].ContractDigest == "" {
		t.Fatal("audit record carries no contract digest")
	}
	recs[0].ContractDigest = "sha256:0000000000000000"
	r, err := NewReplayer(set)
	if err != nil {
		t.Fatal(err)
	}
	sum := r.ReplayAll(recs)
	if sum.ContractMismatch != 1 || sum.OK() {
		t.Fatalf("digest mismatch not flagged: %+v", sum)
	}
}

func TestReplaySkipsIncompleteVerdicts(t *testing.T) {
	set, recs := recordTrail(t)
	recs[0].Outcome = Error.String()
	recs[1].Outcome = Unverified.String()
	r, err := NewReplayer(set)
	if err != nil {
		t.Fatal(err)
	}
	sum := r.ReplayAll(recs)
	if !sum.OK() || sum.Skipped != 2 || sum.Replayed != 0 {
		t.Fatalf("error/unverified must be skipped, not judged: %+v", sum)
	}
}

func TestContractDigestStability(t *testing.T) {
	a, err := contract.Generate(paper.CinderModel())
	if err != nil {
		t.Fatal(err)
	}
	b, err := contract.Generate(paper.CinderModel())
	if err != nil {
		t.Fatal(err)
	}
	if a.Digest() != b.Digest() {
		t.Error("same model generates different set digests")
	}
	nova, err := contract.Generate(paper.NovaModel())
	if err != nil {
		t.Fatal(err)
	}
	if a.Digest() == nova.Digest() {
		t.Error("different models share a set digest")
	}
	for _, c := range a.Contracts {
		if c.Digest() == "" {
			t.Fatalf("contract %s has empty digest", c.Trigger)
		}
	}
}
