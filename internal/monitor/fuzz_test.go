package monitor

import (
	"net/http"
	"net/url"
	"strings"
	"testing"

	"cloudmon/internal/contract"
	"cloudmon/internal/paper"
)

// fuzzMonitor builds one monitor over the paper's Cinder routes for the
// fuzz target (construction is too expensive per input).
func fuzzMonitor(tb testing.TB) *Monitor {
	tb.Helper()
	set, err := contract.Generate(paper.CinderModel())
	if err != nil {
		tb.Fatal(err)
	}
	var routes []Route
	for _, c := range set.Contracts {
		pattern := c.URI
		if string(c.Trigger.Method) == http.MethodPost {
			pattern = pattern[:strings.LastIndex(pattern, "/")]
		}
		routes = append(routes, Route{Trigger: c.Trigger, Pattern: pattern, Backend: pattern})
	}
	m, err := New(Config{
		Contracts: set,
		Routes:    routes,
		Provider:  &fakeProvider{},
		Forward:   &fakeForwarder{status: 200},
	})
	if err != nil {
		tb.Fatal(err)
	}
	return m
}

// FuzzRouteMatch is the satellite fuzz target for route matching and URI
// parameter extraction: arbitrary methods and paths — malformed, encoded,
// trailing-slashed — must never panic, and a reported match must be
// internally consistent (substituting the captured params back into the
// pattern reproduces the request path).
func FuzzRouteMatch(f *testing.F) {
	m := fuzzMonitor(f)
	seeds := []struct{ method, path string }{
		{"GET", "/projects/p1/volumes/v1"},
		{"DELETE", "/projects/p1/volumes/v1"},
		{"POST", "/projects/p1/volumes"},
		{"PUT", "/projects/p1/volumes/v1"},
		{"GET", "/projects/p1/volumes/v1/"},
		{"GET", "//projects//p1//volumes//v1"},
		{"GET", "/projects/p%2F1/volumes/v1"},
		{"GET", "/projects//volumes/"},
		{"get", "/projects/p1/volumes/v1"},
		{"GET", ""},
		{"GET", "/"},
		{"TRACE", "/projects/p1/volumes/v1"},
		{"GET", "/projects/p1/volumes/v1/extra"},
		{"GET", strings.Repeat("/projects", 64)},
		{"GET", "/projects/{project_id}/volumes/{volume_id}"},
		{"GET", "/projects/\x00/volumes/\xff"},
	}
	for _, s := range seeds {
		f.Add(s.method, s.path)
	}
	f.Fuzz(func(t *testing.T, method, path string) {
		req := &http.Request{Method: method, URL: &url.URL{Path: path}}
		cr, params, ok := m.match(req)
		if !ok {
			if cr != nil || params != nil {
				t.Fatalf("no match but cr=%v params=%v", cr, params)
			}
			return
		}
		if cr == nil || params == nil {
			t.Fatalf("match returned ok with cr=%v params=%v", cr, params)
		}
		if string(cr.route.Trigger.Method) != method {
			t.Fatalf("matched %s route for method %q", cr.route.Trigger.Method, method)
		}
		// Substituting the captures back into the pattern must reproduce
		// the request's segment split — otherwise a request was mis-routed.
		segs := splitPath(path)
		if len(segs) != len(cr.segments) {
			t.Fatalf("matched %d-segment pattern against %d-segment path", len(cr.segments), len(segs))
		}
		for i, p := range cr.segments {
			if strings.HasPrefix(p, "{") && strings.HasSuffix(p, "}") {
				name := p[1 : len(p)-1]
				got, okParam := params[name]
				if !okParam {
					t.Fatalf("capture %q missing from params %v", name, params)
				}
				if got != segs[i] {
					t.Fatalf("capture %q = %q, path segment %q", name, got, segs[i])
				}
				continue
			}
			if p != segs[i] {
				t.Fatalf("literal segment %q matched path segment %q", p, segs[i])
			}
		}
		// Captured values never span segments.
		for name, val := range params {
			if strings.Contains(val, "/") {
				t.Fatalf("param %q captured a slash: %q", name, val)
			}
		}
	})
}

// TestMatchTrailingAndEncoded pins concrete routing edge cases the fuzzer
// seeds: trailing slashes and doubled separators normalise away, encoded
// slashes arrive decoded in URL.Path and must not smear across segments.
func TestMatchTrailingAndEncoded(t *testing.T) {
	m := fuzzMonitor(t)
	cases := []struct {
		method, path string
		wantMatch    bool
		wantParams   map[string]string
	}{
		{"GET", "/projects/p1/volumes/v1", true, map[string]string{"project_id": "p1", "volume_id": "v1"}},
		{"GET", "/projects/p1/volumes/v1/", true, map[string]string{"project_id": "p1", "volume_id": "v1"}},
		{"GET", "//projects//p1//volumes//v1", false, nil},
		{"GET", "/projects/p1/volumes", false, nil},
		{"POST", "/projects/p1/volumes", true, map[string]string{"project_id": "p1"}},
		{"GET", "/Projects/p1/volumes/v1", false, nil},
		{"PATCH", "/projects/p1/volumes/v1", false, nil},
	}
	for _, c := range cases {
		req := &http.Request{Method: c.method, URL: &url.URL{Path: c.path}}
		cr, params, ok := m.match(req)
		if ok != c.wantMatch {
			t.Errorf("%s %s: match = %v, want %v", c.method, c.path, ok, c.wantMatch)
			continue
		}
		if !ok {
			continue
		}
		_ = cr
		for k, want := range c.wantParams {
			if params[k] != want {
				t.Errorf("%s %s: param %s = %q, want %q", c.method, c.path, k, params[k], want)
			}
		}
	}
}
