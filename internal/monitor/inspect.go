package monitor

import (
	"net/http"
	"sort"

	"cloudmon/internal/httpkit"
	"cloudmon/internal/ocl"
)

// InspectHandler returns an HTTP API over the monitor's verdict log and
// coverage counters — the paper's fourth use case: "an automated testing
// script, which uses CM as a test oracle ... invocation results can be
// logged for further fault localization" (Section III.B).
//
//	GET /log          full verdict log (oldest first)
//	GET /violations   only contract violations
//	GET /coverage     SecReq -> hit count (zero-hit requirements included)
//	GET /outcomes     outcome class -> count
//	GET /contracts    the generated contracts (trigger, URI, pre, post)
//	GET /stages       per-pipeline-stage latency summaries (p50/p95/p99)
//	POST /reset       clear the log and counters
//
// Mount it beside the proxy, e.g. on a loopback-only listener.
func (m *Monitor) InspectHandler() http.Handler {
	rt := &httpkit.Router{}
	rt.Handle(http.MethodGet, "/log", func(w http.ResponseWriter, r *http.Request, _ map[string]string) error {
		httpkit.WriteJSON(w, http.StatusOK, map[string]any{"verdicts": verdictDocs(m.Log())})
		return nil
	})
	rt.Handle(http.MethodGet, "/violations", func(w http.ResponseWriter, r *http.Request, _ map[string]string) error {
		httpkit.WriteJSON(w, http.StatusOK, map[string]any{"verdicts": verdictDocs(m.Violations())})
		return nil
	})
	rt.Handle(http.MethodGet, "/coverage", func(w http.ResponseWriter, r *http.Request, _ map[string]string) error {
		httpkit.WriteJSON(w, http.StatusOK, map[string]any{
			"coverage":    m.Coverage(),
			"transitions": m.TransitionCoverage(),
		})
		return nil
	})
	rt.Handle(http.MethodGet, "/outcomes", func(w http.ResponseWriter, r *http.Request, _ map[string]string) error {
		counts := make(map[string]int)
		for outcome, n := range m.Outcomes() {
			counts[outcome.String()] = n
		}
		httpkit.WriteJSON(w, http.StatusOK, map[string]any{"outcomes": counts})
		return nil
	})
	rt.Handle(http.MethodGet, "/contracts", func(w http.ResponseWriter, r *http.Request, _ map[string]string) error {
		type preClauseDoc struct {
			Case  int      `json:"case"`
			Paths []string `json:"paths"`
			Added []string `json:"added,omitempty"`
			Cost  int      `json:"cost"`
		}
		type postClauseDoc struct {
			Case     int      `json:"case"`
			CurPaths []string `json:"cur_paths,omitempty"`
			PrePaths []string `json:"pre_paths,omitempty"`
			Touched  []string `json:"touched,omitempty"`
			Cost     int      `json:"cost"`
		}
		type staticDoc struct {
			Case   int    `json:"case"`
			Value  string `json:"value"`
			Reason string `json:"reason,omitempty"`
		}
		type foldDoc struct {
			Case   int    `json:"case"`
			Folded string `json:"folded"`
		}
		type exclusionDoc struct {
			Case       int    `json:"case"`
			Provider   int    `json:"provider"`
			Witness    string `json:"witness"`
			WitnessPos int    `json:"witness_pos"`
			Elements   int    `json:"elements"`
		}
		type subsumedDoc struct {
			Case int   `json:"case"`
			By   []int `json:"by"`
		}
		// factsDoc surfaces the plan's compile-time facts — what the
		// lazy engine prunes with (cloudmon_facts_pruned_total).
		type factsDoc struct {
			Static       []staticDoc    `json:"static,omitempty"`
			Folded       []foldDoc      `json:"folded,omitempty"`
			Exclusions   []exclusionDoc `json:"exclusions,omitempty"`
			Subsumed     []subsumedDoc  `json:"subsumed,omitempty"`
			VacuousPosts []int          `json:"vacuous_posts,omitempty"`
			DeadPaths    []string       `json:"dead_paths,omitempty"`
		}
		type planDoc struct {
			Pre      []preClauseDoc  `json:"pre"`
			Post     []postClauseDoc `json:"post"`
			PrePaths []string        `json:"pre_paths"`
			Facts    *factsDoc       `json:"facts,omitempty"`
		}
		type contractDoc struct {
			Trigger    string   `json:"trigger"`
			URI        string   `json:"uri"`
			Pre        string   `json:"pre"`
			Post       string   `json:"post"`
			SecReqs    []string `json:"sec_reqs"`
			StatePaths []string `json:"state_paths"`
			Plan       planDoc  `json:"plan"`
		}
		docs := make([]contractDoc, 0, len(m.contracts.Contracts))
		for _, c := range m.contracts.Contracts {
			plan := c.Plan()
			pd := planDoc{PrePaths: plan.PrePaths}
			for _, cl := range plan.Pre {
				pd.Pre = append(pd.Pre, preClauseDoc{
					Case: cl.Index, Paths: cl.Paths, Added: cl.Added, Cost: cl.Cost,
				})
			}
			for _, cl := range plan.Post {
				pd.Post = append(pd.Post, postClauseDoc{
					Case: cl.Index, CurPaths: cl.CurPaths, PrePaths: cl.PrePaths,
					Touched: cl.Touched, Cost: cl.Cost,
				})
			}
			if f := plan.Facts; f != nil {
				fd := &factsDoc{}
				for i := range f.Pre {
					pf := &f.Pre[i]
					if pf.Static != nil {
						fd.Static = append(fd.Static, staticDoc{
							Case: i, Value: pf.Static.String(), Reason: pf.Reason,
						})
					}
					if pf.Rewritten {
						fd.Folded = append(fd.Folded, foldDoc{Case: i, Folded: pf.Folded.String()})
					}
					if len(pf.SubsumedBy) > 0 {
						fd.Subsumed = append(fd.Subsumed, subsumedDoc{Case: i, By: pf.SubsumedBy})
					}
				}
				for j, exs := range f.Exclusions {
					for _, ex := range exs {
						fd.Exclusions = append(fd.Exclusions, exclusionDoc{
							Case: j, Provider: ex.Provider, Witness: ex.Witness.String(),
							WitnessPos: ex.WitnessPos, Elements: ex.Elements,
						})
					}
				}
				for i := range f.Post {
					if f.Post[i].Vacuous() {
						fd.VacuousPosts = append(fd.VacuousPosts, i)
					}
				}
				for _, d := range f.DeadPaths {
					fd.DeadPaths = append(fd.DeadPaths, d.Path)
				}
				pd.Facts = fd
			}
			docs = append(docs, contractDoc{
				Trigger:    c.Trigger.String(),
				URI:        c.URI,
				Pre:        c.Pre.String(),
				Post:       c.Post.String(),
				SecReqs:    c.SecReqs,
				StatePaths: c.StatePaths(),
				Plan:       pd,
			})
		}
		httpkit.WriteJSON(w, http.StatusOK, map[string]any{"contracts": docs})
		return nil
	})
	rt.Handle(http.MethodGet, "/stats", func(w http.ResponseWriter, r *http.Request, _ map[string]string) error {
		httpkit.WriteJSON(w, http.StatusOK, map[string]any{"stats": m.Stats()})
		return nil
	})
	rt.Handle(http.MethodGet, "/stages", func(w http.ResponseWriter, r *http.Request, _ map[string]string) error {
		httpkit.WriteJSON(w, http.StatusOK, map[string]any{"stages": m.StageSummaries()})
		return nil
	})
	rt.Handle(http.MethodPost, "/reset", func(w http.ResponseWriter, r *http.Request, _ map[string]string) error {
		m.ResetLog()
		w.WriteHeader(http.StatusNoContent)
		return nil
	})
	return rt
}

// TriggerStats summarizes the monitoring cost and outcomes per trigger,
// computed from the in-memory verdict log.
type TriggerStats struct {
	Trigger    string         `json:"trigger"`
	Count      int            `json:"count"`
	MeanMicros int64          `json:"mean_micros"`
	MaxMicros  int64          `json:"max_micros"`
	Outcomes   map[string]int `json:"outcomes"`
}

// Stats aggregates the verdict log per trigger, sorted by trigger name.
func (m *Monitor) Stats() []TriggerStats {
	byTrigger := make(map[string]*TriggerStats)
	var totalMicros = make(map[string]int64)
	for _, v := range m.Log() {
		key := v.Trigger.String()
		st, ok := byTrigger[key]
		if !ok {
			st = &TriggerStats{Trigger: key, Outcomes: make(map[string]int)}
			byTrigger[key] = st
		}
		st.Count++
		micros := v.Elapsed.Microseconds()
		totalMicros[key] += micros
		if micros > st.MaxMicros {
			st.MaxMicros = micros
		}
		st.Outcomes[v.Outcome.String()]++
	}
	out := make([]TriggerStats, 0, len(byTrigger))
	for key, st := range byTrigger {
		if st.Count > 0 {
			st.MeanMicros = totalMicros[key] / int64(st.Count)
		}
		out = append(out, *st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Trigger < out[j].Trigger })
	return out
}

// verdictDoc is the JSON shape of one verdict.
type verdictDoc struct {
	Trigger        string            `json:"trigger"`
	Outcome        string            `json:"outcome"`
	PreOK          bool              `json:"pre_ok"`
	PostOK         bool              `json:"post_ok"`
	Forwarded      bool              `json:"forwarded"`
	BackendStatus  int               `json:"backend_status,omitempty"`
	SecReqs        []string          `json:"sec_reqs,omitempty"`
	MatchedSecReqs []string          `json:"matched_sec_reqs,omitempty"`
	FailingClause  string            `json:"failing_clause,omitempty"`
	Detail         string            `json:"detail,omitempty"`
	FetchedPaths   int               `json:"fetched_paths"`
	ReusedPaths    int               `json:"reused_paths,omitempty"`
	DemandedPaths  int               `json:"demanded_paths,omitempty"`
	FactsSkipped   int               `json:"facts_skipped,omitempty"`
	ElapsedMicros  int64             `json:"elapsed_micros"`
	StageNanos     map[string]int64  `json:"stage_nanos,omitempty"`
	PreSnapshot    map[string]string `json:"pre_snapshot,omitempty"`
	PostSnapshot   map[string]string `json:"post_snapshot,omitempty"`
}

func verdictDocs(vs []Verdict) []verdictDoc {
	docs := make([]verdictDoc, 0, len(vs))
	for _, v := range vs {
		docs = append(docs, verdictDoc{
			Trigger:        v.Trigger.String(),
			Outcome:        v.Outcome.String(),
			PreOK:          v.PreOK,
			PostOK:         v.PostOK,
			Forwarded:      v.Forwarded,
			BackendStatus:  v.BackendStatus,
			SecReqs:        v.SecReqs,
			MatchedSecReqs: v.MatchedSecReqs,
			FailingClause:  v.FailingClause,
			Detail:         v.Detail,
			FetchedPaths:   v.FetchedPaths,
			ReusedPaths:    v.ReusedPaths,
			DemandedPaths:  v.DemandedPaths,
			FactsSkipped:   v.FactsSkipped,
			ElapsedMicros:  v.Elapsed.Microseconds(),
			StageNanos:     v.Trace.Map(),
			PreSnapshot:    snapshotDoc(v.PreSnapshot),
			PostSnapshot:   snapshotDoc(v.PostSnapshot),
		})
	}
	return docs
}

// snapshotDoc renders a snapshot environment with OCL literal syntax —
// the values the verdict was computed from, for fault localization.
func snapshotDoc(env ocl.MapEnv) map[string]string {
	if len(env) == 0 {
		return nil
	}
	out := make(map[string]string, len(env))
	keys := env.Keys()
	sort.Strings(keys)
	for _, k := range keys {
		out[k] = env[k].String()
	}
	return out
}
