package monitor

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"cloudmon/internal/ocl"
)

// slowSecondSnapshot fails only on the post-state snapshot, isolating the
// error path after forwarding.
type slowSecondSnapshot struct {
	pre   ocl.MapEnv
	calls int
}

func (f *slowSecondSnapshot) Snapshot(ctx *RequestContext, paths []string) (ocl.MapEnv, error) {
	f.calls++
	if ctx.Phase == PhasePost {
		return nil, errFake
	}
	out := make(ocl.MapEnv, len(paths))
	for _, p := range paths {
		if v, ok := f.pre[p]; ok {
			out[p] = v
		}
	}
	return out, nil
}

func TestPostSnapshotFailureIsError(t *testing.T) {
	p := &slowSecondSnapshot{pre: env(2, 10, "available", "admin")}
	m := newMonitor(t, Enforce, p, &fakeForwarder{status: 204})
	rec := doDelete(t, m)
	if rec.Code != http.StatusBadGateway {
		t.Errorf("status = %d, want 502", rec.Code)
	}
	v := lastVerdict(t, m)
	if v.Outcome != Error || !v.Forwarded {
		t.Errorf("verdict = %+v", v)
	}
	if !strings.Contains(v.Detail, "post-state snapshot") {
		t.Errorf("detail = %q", v.Detail)
	}
}

// headerForwarder returns a response with headers and body to verify
// pass-through fidelity.
type headerForwarder struct{}

func (headerForwarder) Forward(*http.Request, *Route, map[string]string) (*BackendResponse, error) {
	h := http.Header{}
	h.Set("X-Backend", "cinder")
	h.Add("X-Multi", "a")
	h.Add("X-Multi", "b")
	return &BackendResponse{StatusCode: 200, Header: h, Body: []byte(`{"volume":{}}`)}, nil
}

func TestBackendHeadersAndBodyPassThrough(t *testing.T) {
	p := &fakeProvider{
		pre:  env(2, 10, "available", "admin"),
		post: env(2, 10, "available", "admin"),
	}
	m := newMonitor(t, Enforce, p, headerForwarder{})
	req := httptest.NewRequest(http.MethodGet, "/projects/p1/volumes/v1", nil)
	req.Header.Set("X-Auth-Token", "tok")
	rec := httptest.NewRecorder()
	m.ServeHTTP(rec, req)
	if rec.Code != 200 {
		t.Fatalf("status = %d", rec.Code)
	}
	if rec.Header().Get("X-Backend") != "cinder" {
		t.Error("backend header lost")
	}
	if got := rec.Header().Values("X-Multi"); len(got) != 2 {
		t.Errorf("multi-value header = %v", got)
	}
	if rec.Body.String() != `{"volume":{}}` {
		t.Errorf("body = %q", rec.Body.String())
	}
}

// TestMethodMismatchIs404 ensures a known pattern with the wrong verb does
// not match a different trigger's route.
func TestMethodMismatchIs404(t *testing.T) {
	p := &fakeProvider{pre: env(1, 10, "available", "admin")}
	m := newMonitor(t, Enforce, p, &fakeForwarder{status: 200})
	// PATCH is not a modeled method at all.
	req := httptest.NewRequest("PATCH", "/projects/p1/volumes/v1", nil)
	rec := httptest.NewRecorder()
	m.ServeHTTP(rec, req)
	if rec.Code != http.StatusNotFound {
		t.Errorf("PATCH = %d, want 404", rec.Code)
	}
}

// TestHTTPForwarderSubstitution checks param substitution and header
// propagation of the default forwarder against a live backend.
func TestHTTPForwarderSubstitution(t *testing.T) {
	var gotPath, gotToken, gotBody string
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotPath = r.URL.Path
		gotToken = r.Header.Get("X-Auth-Token")
		buf := make([]byte, 64)
		n, _ := r.Body.Read(buf)
		gotBody = string(buf[:n])
		w.WriteHeader(201)
	}))
	defer backend.Close()

	f := &HTTPForwarder{BaseURL: backend.URL}
	req := httptest.NewRequest(http.MethodPost, "/projects/p9/volumes",
		strings.NewReader(`{"volume":{}}`))
	req.Header.Set("X-Auth-Token", "tok-123")
	route := &Route{Backend: "/volume/v3/{project_id}/volumes"}
	resp, err := f.Forward(req, route, map[string]string{"project_id": "p9"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 201 {
		t.Errorf("status = %d", resp.StatusCode)
	}
	if gotPath != "/volume/v3/p9/volumes" {
		t.Errorf("backend path = %q", gotPath)
	}
	if gotToken != "tok-123" {
		t.Errorf("token = %q", gotToken)
	}
	if gotBody != `{"volume":{}}` {
		t.Errorf("body = %q", gotBody)
	}
}

func TestHTTPForwarderUnreachableBackend(t *testing.T) {
	f := &HTTPForwarder{BaseURL: "http://127.0.0.1:1"}
	req := httptest.NewRequest(http.MethodGet, "/x", nil)
	if _, err := f.Forward(req, &Route{Backend: "/x"}, nil); err == nil {
		t.Error("unreachable backend accepted")
	}
}
