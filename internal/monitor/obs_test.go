package monitor

import (
	"net/http"
	"net/http/httptest"
	"testing"

	"cloudmon/internal/contract"
	"cloudmon/internal/obs"
	"cloudmon/internal/paper"
	"cloudmon/internal/uml"
)

// newObsMonitor wires an audit sink into the standard test monitor.
func newObsMonitor(t *testing.T, mode Mode, p StateProvider, f Forwarder, audit *obs.AuditLog) *Monitor {
	t.Helper()
	set, err := contract.Generate(paper.CinderModel())
	if err != nil {
		t.Fatal(err)
	}
	routes := []Route{
		{Trigger: uml.Trigger{Method: uml.GET, Resource: "volume"},
			Pattern: "/projects/{project_id}/volumes/{volume_id}",
			Backend: "/volume/v3/{project_id}/volumes/{volume_id}"},
		{Trigger: uml.Trigger{Method: uml.DELETE, Resource: "volume"},
			Pattern: "/projects/{project_id}/volumes/{volume_id}",
			Backend: "/volume/v3/{project_id}/volumes/{volume_id}"},
	}
	m, err := New(Config{
		Contracts: set,
		Routes:    routes,
		Provider:  p,
		Forward:   f,
		Mode:      mode,
		Audit:     audit,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestVerdictTraceRecorded(t *testing.T) {
	p := &fakeProvider{
		pre:  env(1, 10, "available", "admin"),
		post: env(1, 10, "available", "admin"),
	}
	m := newMonitor(t, Enforce, p, &fakeForwarder{status: http.StatusOK})
	req := httptest.NewRequest(http.MethodGet, "/projects/p1/volumes/v1", nil)
	req.Header.Set("X-Auth-Token", "tok")
	m.ServeHTTP(httptest.NewRecorder(), req)

	v := lastVerdict(t, m)
	if v.Outcome != OK {
		t.Fatalf("outcome = %v", v.Outcome)
	}
	// A forwarded GET passes through every stage.
	for _, stage := range []obs.Stage{
		obs.StagePreSnapshot, obs.StagePreEval,
		obs.StageForward, obs.StagePostSnapshot, obs.StagePostEval,
	} {
		if v.Trace[stage] <= 0 {
			t.Errorf("stage %s has no span: %v", stage, v.Trace)
		}
	}
	sums := m.StageSummaries()
	if sums["forward"].Count != 1 {
		t.Errorf("tracer summaries = %v", sums)
	}
}

func TestBlockedSkipsPostStages(t *testing.T) {
	p := &fakeProvider{pre: env(1, 10, "available")} // no roles: pre fails
	fw := &fakeForwarder{status: http.StatusOK}
	m := newMonitor(t, Enforce, p, fw)
	doDelete(t, m)
	v := lastVerdict(t, m)
	if v.Outcome != Blocked {
		t.Fatalf("outcome = %v", v.Outcome)
	}
	if v.Trace[obs.StageForward] != 0 || v.Trace[obs.StagePostEval] != 0 {
		t.Errorf("blocked request has post-block spans: %v", v.Trace)
	}
	if v.FailingClause == "" {
		t.Error("blocked verdict has no failing clause")
	}
}

func TestAuditSinkReceivesOnlyViolations(t *testing.T) {
	dir := t.TempDir()
	audit, err := obs.OpenAuditLog(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	p := &fakeProvider{
		pre:  env(1, 10, "available", "admin"),
		post: env(1, 10, "available", "admin"),
	}
	m := newObsMonitor(t, Enforce, p, &fakeForwarder{status: http.StatusOK}, audit)
	doGet(t, m) // OK: must NOT be audited

	p2 := &fakeProvider{pre: env(1, 10, "available")} // no roles: blocked
	m2 := newObsMonitor(t, Enforce, p2, &fakeForwarder{status: http.StatusOK}, audit)
	doGet(t, m2)

	if err := audit.Close(); err != nil {
		t.Fatal(err)
	}
	res, err := obs.ReadAuditDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 1 {
		t.Fatalf("audited %d records, want 1 (the blocked one)", len(res.Records))
	}
	rec := res.Records[0]
	if rec.Outcome != Blocked.String() {
		t.Errorf("audited outcome = %q", rec.Outcome)
	}
	if len(rec.SecReqs) == 0 {
		t.Error("audit record names no SecReqs")
	}
	if rec.FailingClause == "" {
		t.Error("audit record has no failing clause")
	}
	if len(rec.Pre) == 0 {
		t.Error("audit record has no pre-state snapshot")
	}
	if len(rec.StageNanos) == 0 {
		t.Error("audit record has no stage timings")
	}
}

func TestRegisterMetricsAgreesWithCounters(t *testing.T) {
	p := &fakeProvider{
		pre:  env(1, 10, "available", "admin"),
		post: env(1, 10, "available", "admin"),
	}
	m := newMonitor(t, Enforce, p, &fakeForwarder{status: http.StatusOK})
	doGet(t, m)
	doGet(t, m)

	reg := &obs.Registry{}
	m.RegisterMetrics(reg)
	samples, err := obs.ParseText([]byte(reg.Render()))
	if err != nil {
		t.Fatal(err)
	}
	verdicts := obs.CounterByLabel(samples, "cloudmon_verdicts_total", "outcome")
	for outcome, n := range m.Outcomes() {
		if int(verdicts[outcome.String()]) != n {
			t.Errorf("metrics %s = %v, counters say %d", outcome, verdicts[outcome.String()], n)
		}
	}
	if verdicts[OK.String()] != 2 {
		t.Errorf("ok = %v, want 2", verdicts[OK.String()])
	}
	// Every declared outcome class appears, even at zero.
	if len(obs.Find(samples, "cloudmon_verdicts_total")) != int(Unverified) {
		t.Errorf("verdict series = %d, want %d", len(obs.Find(samples, "cloudmon_verdicts_total")), int(Unverified))
	}
	if snap, ok := obs.HistogramFromSamples(samples, "cloudmon_stage_duration_seconds", "stage", "forward"); !ok || snap.Count != 2 {
		t.Errorf("forward stage histogram count = %d (ok=%v), want 2", snap.Count, ok)
	}
	secreqs := obs.CounterByLabel(samples, "cloudmon_secreq_matched_total", "secreq")
	if len(secreqs) == 0 {
		t.Error("no secreq coverage series")
	}
}

func TestResetLogClearsObsState(t *testing.T) {
	p := &fakeProvider{
		pre:  env(1, 10, "available", "admin"),
		post: env(1, 10, "available", "admin"),
	}
	m := newMonitor(t, Enforce, p, &fakeForwarder{status: http.StatusOK})
	req := httptest.NewRequest(http.MethodGet, "/projects/p1/volumes/v1", nil)
	req.Header.Set("X-Auth-Token", "tok")
	m.ServeHTTP(httptest.NewRecorder(), req)
	if len(m.Outcomes()) == 0 || len(m.StageSummaries()) == 0 {
		t.Fatal("no state to reset")
	}
	m.ResetLog()
	if len(m.Outcomes()) != 0 {
		t.Errorf("Outcomes after reset = %v", m.Outcomes())
	}
	if len(m.StageSummaries()) != 0 {
		t.Errorf("StageSummaries after reset = %v", m.StageSummaries())
	}
	for sr, n := range m.Coverage() {
		if n != 0 {
			t.Errorf("Coverage[%s] = %d after reset", sr, n)
		}
	}
}
