package monitor

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestCheckPreOnlySkipsPostSnapshot(t *testing.T) {
	// The post-state would fail the contract (no volume removed), but the
	// pre-only monitor never looks.
	p := &fakeProvider{
		pre:  env(2, 10, "available", "admin"),
		post: env(2, 10, "available", "admin"),
	}
	set := newMonitor(t, Enforce, p, &fakeForwarder{status: 204})
	_ = set // full monitor as reference

	m2, err := New(Config{
		Contracts: set.contracts,
		Routes:    []Route{set.routes[3].route, set.routes[0].route, set.routes[1].route, set.routes[2].route},
		Provider:  p,
		Forward:   &fakeForwarder{status: 204},
		Mode:      Enforce,
		Level:     CheckPreOnly,
	})
	if err != nil {
		t.Fatal(err)
	}
	if m2.Level() != CheckPreOnly {
		t.Fatalf("level = %v", m2.Level())
	}
	rec := doDelete(t, m2)
	if rec.Code != 204 {
		t.Fatalf("status = %d (pre-only must accept)", rec.Code)
	}
	v := lastVerdict(t, m2)
	if v.Outcome != OK || !v.PostOK {
		t.Errorf("verdict = %+v", v)
	}
	// Lazy evaluation fetches path-by-path, so the pre phase may make
	// several Snapshot calls; what CheckPreOnly guarantees is that none
	// of them happen after the forward.
	if p.postCalls != 0 {
		t.Errorf("post-phase snapshot calls = %d, want 0 (no post snapshot)", p.postCalls)
	}
}

func TestCheckLevelString(t *testing.T) {
	if CheckFull.String() != "full" || CheckPreOnly.String() != "pre-only" {
		t.Error("level names wrong")
	}
	if CheckLevel(9).String() == "" {
		t.Error("unknown level renders empty")
	}
}

func TestOnVerdictHook(t *testing.T) {
	p := &fakeProvider{
		pre:  env(2, 10, "available", "admin"),
		post: env(1, 10, "available", "admin"),
	}
	var seen []Verdict
	set := newMonitor(t, Enforce, p, &fakeForwarder{status: 204})
	m, err := New(Config{
		Contracts: set.contracts,
		Routes:    []Route{set.routes[0].route, set.routes[1].route, set.routes[2].route, set.routes[3].route},
		Provider:  p,
		Forward:   &fakeForwarder{status: 204},
		OnVerdict: func(v Verdict) { seen = append(seen, v) },
	})
	if err != nil {
		t.Fatal(err)
	}
	doDelete(t, m)
	if len(seen) != 1 || seen[0].Outcome != OK {
		t.Errorf("hook saw %v", seen)
	}
}

func TestAuditWriterNDJSON(t *testing.T) {
	var buf bytes.Buffer
	aw := NewAuditWriter(&buf)
	p := &fakeProvider{
		pre:  env(2, 10, "available", "admin"),
		post: env(1, 10, "available", "admin"),
	}
	set := newMonitor(t, Enforce, p, &fakeForwarder{status: 204})
	m, err := New(Config{
		Contracts: set.contracts,
		Routes:    []Route{set.routes[0].route, set.routes[1].route, set.routes[2].route, set.routes[3].route},
		Provider:  p,
		Forward:   &fakeForwarder{status: 204},
		OnVerdict: aw.Record,
	})
	if err != nil {
		t.Fatal(err)
	}
	doDelete(t, m)
	p.calls = 0
	doDelete(t, m)
	if err := aw.Err(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("audit lines = %d, want 2", len(lines))
	}
	for _, line := range lines {
		var doc struct {
			Trigger string `json:"trigger"`
			Outcome string `json:"outcome"`
		}
		if err := json.Unmarshal([]byte(line), &doc); err != nil {
			t.Fatalf("line %q: %v", line, err)
		}
		if doc.Trigger != "DELETE(volume)" || doc.Outcome != "ok" {
			t.Errorf("doc = %+v", doc)
		}
	}
}

type failingWriter struct{}

func (failingWriter) Write([]byte) (int, error) { return 0, errFake }

func TestAuditWriterRemembersError(t *testing.T) {
	aw := NewAuditWriter(failingWriter{})
	aw.Record(Verdict{})
	if aw.Err() == nil {
		t.Error("write error not remembered")
	}
	// Further records are silently dropped, no panic.
	aw.Record(Verdict{})
}
