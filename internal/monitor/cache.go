package monitor

import (
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"cloudmon/internal/obs"
	"cloudmon/internal/ocl"
)

// CacheStats are the pre-state cache's hit/generation counters, exported
// on /metrics.
type CacheStats struct {
	// Hits and Misses count fresh-read lookups (per path).
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
	// StaleHits counts degrade-path lookups served past the TTL.
	StaleHits uint64 `json:"stale_hits"`
	// Invalidations counts project generation bumps from forwarded
	// writes.
	Invalidations uint64 `json:"invalidations"`
}

// snapshotCache is the optional short-TTL pre-state read cache. Entries are
// keyed by (navigation path, requester token, URI params) and carry the
// project's generation counter at fetch time: any forwarded write for the
// project bumps the counter, invalidating every cached value for it in
// O(1). The TTL additionally bounds how long a write that bypassed the
// monitor can stay invisible.
//
// Only the pre-state lookup consults the cache; post-state snapshots always
// read the cloud, because the post-condition verifies the request's own
// effect.
type snapshotCache struct {
	ttl    time.Duration
	now    func() time.Time
	shards [cacheShards]cacheShard
	// gens maps project id -> *atomic.Uint64 generation counter.
	gens sync.Map

	// Lock-free observability counters (see CacheStats).
	hits          obs.Counter
	misses        obs.Counter
	staleHits     obs.Counter
	invalidations obs.Counter
}

// stats snapshots the counters.
func (c *snapshotCache) stats() CacheStats {
	return CacheStats{
		Hits:          c.hits.Value(),
		Misses:        c.misses.Value(),
		StaleHits:     c.staleHits.Value(),
		Invalidations: c.invalidations.Value(),
	}
}

// cacheShards is the number of entry-map shards (power of two).
const cacheShards = 16

// cacheShardLimit triggers an expired-entry sweep when a shard grows past
// it, bounding memory on long runs with many distinct tokens.
const cacheShardLimit = 4096

type cacheShard struct {
	mu      sync.RWMutex
	entries map[string]cacheEntry
}

type cacheEntry struct {
	val     ocl.Value
	present bool
	fetched time.Time
	expires time.Time
	gen     uint64
}

func newSnapshotCache(ttl time.Duration) *snapshotCache {
	c := &snapshotCache{ttl: ttl, now: time.Now}
	for i := range c.shards {
		c.shards[i].entries = make(map[string]cacheEntry)
	}
	return c
}

// projectGen returns the project's current invalidation generation.
func (c *snapshotCache) projectGen(project string) uint64 {
	if g, ok := c.gens.Load(project); ok {
		return g.(*atomic.Uint64).Load()
	}
	return 0
}

// invalidateProject bumps the project's generation, making every cached
// entry fetched under an older generation stale.
func (c *snapshotCache) invalidateProject(project string) {
	g, ok := c.gens.Load(project)
	if !ok {
		g, _ = c.gens.LoadOrStore(project, new(atomic.Uint64))
	}
	g.(*atomic.Uint64).Add(1)
	c.invalidations.Inc()
}

// cacheKey builds the entry key. The token partitions requester-dependent
// paths (user.id.groups); the params partition resource-dependent ones.
func cacheKey(path, token, paramsKey string) string {
	return path + "\x1f" + token + "\x1f" + paramsKey
}

// paramsCacheKey flattens the URI captures into a stable string.
func paramsCacheKey(params map[string]string) string {
	if len(params) == 0 {
		return ""
	}
	keys := make([]string, 0, len(params))
	for k := range params {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	for _, k := range keys {
		sb.WriteString(k)
		sb.WriteByte('=')
		sb.WriteString(params[k])
		sb.WriteByte(';')
	}
	return sb.String()
}

func (c *snapshotCache) shardFor(key string) *cacheShard {
	// FNV-1a over the key.
	h := uint64(14695981039346656037)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	return &c.shards[h%cacheShards]
}

// get returns the cached value for (path, token, params) if fresh under
// the project's current generation. The second return distinguishes "path
// was absent from the provider snapshot" (ok, present=false) from a miss.
func (c *snapshotCache) get(path, token, paramsKey, project string) (ocl.Value, bool, bool) {
	key := cacheKey(path, token, paramsKey)
	sh := c.shardFor(key)
	sh.mu.RLock()
	e, ok := sh.entries[key]
	sh.mu.RUnlock()
	if !ok || c.now().After(e.expires) || e.gen != c.projectGen(project) {
		c.misses.Inc()
		return ocl.Value{}, false, false
	}
	c.hits.Inc()
	return e.val, e.present, true
}

// put stores a fetched value under the generation captured before the
// fetch started, so a write that lands mid-fetch invalidates it.
func (c *snapshotCache) put(path, token, paramsKey, project string, val ocl.Value, present bool, gen uint64) {
	key := cacheKey(path, token, paramsKey)
	sh := c.shardFor(key)
	now := c.now()
	sh.mu.Lock()
	if len(sh.entries) >= cacheShardLimit {
		for k, e := range sh.entries {
			if now.After(e.expires) {
				delete(sh.entries, k)
			}
		}
	}
	sh.entries[key] = cacheEntry{val: val, present: present, fetched: now, expires: now.Add(c.ttl), gen: gen}
	sh.mu.Unlock()
}

// getStale is the degrade-path lookup: it accepts entries past the normal
// TTL as long as they were fetched within maxAge and belong to the
// project's current generation. Normal (non-degraded) reads must use get.
func (c *snapshotCache) getStale(path, token, paramsKey, project string, maxAge time.Duration) (ocl.Value, bool, bool) {
	key := cacheKey(path, token, paramsKey)
	sh := c.shardFor(key)
	sh.mu.RLock()
	e, ok := sh.entries[key]
	sh.mu.RUnlock()
	if !ok || c.now().Sub(e.fetched) > maxAge || e.gen != c.projectGen(project) {
		return ocl.Value{}, false, false
	}
	c.staleHits.Inc()
	return e.val, e.present, true
}

// cachedPre serves the full pre-state from the cache alone — the Degrade
// fail policy's fallback when the live snapshot fails. Entries may be
// older than the read-cache TTL (a live snapshot would otherwise have
// succeeded) but must be younger than the degrade window and of the
// project's current generation. Every path must be served; one miss and
// the fallback is refused (a partial pre-state would evaluate formulas
// over silently-undefined values).
func (m *Monitor) cachedPre(reqCtx *RequestContext, paths []string) (ocl.MapEnv, bool) {
	if m.cache == nil {
		return nil, false
	}
	project := reqCtx.Params["project_id"]
	pk := paramsCacheKey(reqCtx.Params)
	env := make(ocl.MapEnv, len(paths))
	for _, p := range paths {
		v, present, ok := m.cache.getStale(p, reqCtx.Token, pk, project, m.degradeTTL)
		if !ok {
			return nil, false
		}
		if present {
			env[p] = v
		}
	}
	return env, true
}

// preSnapshot resolves the pre-state, serving paths from the cache when
// enabled and fetching only the misses from the provider. The second
// return is the number of paths actually fetched from the provider.
func (m *Monitor) preSnapshot(reqCtx *RequestContext, paths []string) (ocl.MapEnv, int, error) {
	if m.cache == nil {
		env, err := m.provider.Snapshot(reqCtx, paths)
		return env, len(paths), err
	}
	project := reqCtx.Params["project_id"]
	pk := paramsCacheKey(reqCtx.Params)
	env := make(ocl.MapEnv, len(paths))
	var missing []string
	for _, p := range paths {
		v, present, ok := m.cache.get(p, reqCtx.Token, pk, project)
		if !ok {
			missing = append(missing, p)
			continue
		}
		if present {
			env[p] = v
		}
	}
	if len(missing) == 0 {
		return env, 0, nil
	}
	gen := m.cache.projectGen(project)
	fetched, err := m.provider.Snapshot(reqCtx, missing)
	if err != nil {
		return nil, len(missing), err
	}
	for _, p := range missing {
		v, present := fetched[p]
		if present {
			env[p] = v
		}
		m.cache.put(p, reqCtx.Token, pk, project, v, present, gen)
	}
	return env, len(missing), nil
}
