package monitor

import (
	"fmt"
	"net/http"
	"sort"

	"cloudmon/internal/contract"
	"cloudmon/internal/obs"
	"cloudmon/internal/ocl"
	"cloudmon/internal/uml"
)

// Replayer re-evaluates audited verdicts without a live cloud: the state
// provider serves the pre/post snapshots the original verdict recorded,
// the forwarder replays the recorded backend status, and the regular
// demand-driven check pipeline (compiled engine, facts pruning, the same
// postVerify) runs over them. Because evaluation demands are a
// deterministic function of the plan and the served values, a faithful
// record reproduces its outcome and failing clause exactly — which is
// what makes the audit trail independently checkable evidence rather
// than an assertion.
//
// Blocked verdicts replay on an Enforce-mode monitor (they were never
// forwarded); every other forwarded outcome replays on an Observe-mode
// monitor with the recorded backend status standing in for the cloud.
// Error and unverified verdicts are skipped: their state is incomplete
// by construction (the snapshot failed the first time around).
//
// Not safe for concurrent use: replay is record-at-a-time.
type Replayer struct {
	enforce *Monitor
	observe *Monitor
	// byTrigger indexes the compiled routes of both monitors by the
	// trigger string audit records carry.
	enforceRoutes map[string]*compiledRoute
	observeRoutes map[string]*compiledRoute

	// cur* is the record being replayed — what the provider and
	// forwarder serve.
	curPre    ocl.MapEnv
	curPost   ocl.MapEnv
	curStatus int
}

// NewReplayer builds a replayer for the contract set the trail was
// monitored under.
func NewReplayer(set *contract.Set) (*Replayer, error) {
	r := &Replayer{}
	build := func(mode Mode) (*Monitor, map[string]*compiledRoute, error) {
		var routes []Route
		for _, c := range set.Contracts {
			routes = append(routes, Route{
				Trigger: c.Trigger,
				// Replay never matches URLs — check() is entered directly
				// with the compiled route — but patterns must be unique.
				Pattern: "/replay/" + string(c.Trigger.Method) + "/" + c.Trigger.Resource,
				Backend: "/replay/" + c.Trigger.Resource,
			})
		}
		m, err := New(Config{
			Contracts: set,
			Routes:    routes,
			Provider:  (*replayProvider)(r),
			Forward:   (*replayForwarder)(r),
			Mode:      mode,
			Level:     CheckFull,
			// Reuse would read untouched post paths from the pre env; the
			// recorded post snapshot already contains every value the
			// original post phase saw (reused ones included, written back
			// through env.set), so the full re-fetch against the packed
			// post state is both simpler and engine-agnostic: it replays
			// trails recorded with or without reuse identically.
			NoPostReuse: true,
			FailPolicy:  FailClosed,
			MaxLog:      1,
		})
		if err != nil {
			return nil, nil, err
		}
		idx := make(map[string]*compiledRoute, len(m.routes))
		for i := range m.routes {
			cr := &m.routes[i]
			idx[cr.route.Trigger.String()] = cr
		}
		return m, idx, nil
	}
	var err error
	if r.enforce, r.enforceRoutes, err = build(Enforce); err != nil {
		return nil, err
	}
	if r.observe, r.observeRoutes, err = build(Observe); err != nil {
		return nil, err
	}
	return r, nil
}

// replayProvider serves snapshots from the current record. A path absent
// from the recorded snapshot is served as absent, which the lazy env
// resolves to OclUndefined — the same value the original evaluation saw
// for a fetched-but-missing resource.
type replayProvider Replayer

func (p *replayProvider) Snapshot(ctx *RequestContext, paths []string) (ocl.MapEnv, error) {
	src := p.curPre
	if ctx.Phase == PhasePost {
		src = p.curPost
	}
	out := make(ocl.MapEnv, len(paths))
	for _, path := range paths {
		if v, ok := src[path]; ok {
			out[path] = v
		}
	}
	return out, nil
}

// replayForwarder replays the recorded backend status.
type replayForwarder Replayer

func (f *replayForwarder) Forward(r *http.Request, route *Route, params map[string]string) (*BackendResponse, error) {
	return &BackendResponse{StatusCode: f.curStatus, Header: http.Header{}}, nil
}

// ReplayResult is the verdict-level outcome of replaying one record.
type ReplayResult struct {
	Seq     uint64 `json:"seq"`
	Trigger string `json:"trigger"`
	// Recorded is the outcome the trail claims.
	Recorded string `json:"recorded"`
	// Replayed is the outcome the re-evaluation produced (empty when
	// skipped).
	Replayed string `json:"replayed,omitempty"`
	// Skipped carries the reason a record was not replayable.
	Skipped string `json:"skipped,omitempty"`
	// ContractMismatch: the record's contract digest does not match the
	// replayer's contract for the trigger — the verdict binds to a
	// different contract version, so comparing outcomes would be
	// meaningless. Counted as a failure, not a skip.
	ContractMismatch bool `json:"contract_mismatch,omitempty"`
	// Diverged: the replayed outcome or failing clause differs.
	Diverged bool   `json:"diverged,omitempty"`
	Reason   string `json:"reason,omitempty"`
}

// Replay re-evaluates one audit record.
func (r *Replayer) Replay(rec *obs.AuditRecord) ReplayResult {
	res := ReplayResult{Seq: rec.Seq, Trigger: rec.Trigger, Recorded: rec.Outcome}
	switch rec.Outcome {
	case Error.String():
		res.Skipped = "error verdicts carry no complete state"
		return res
	case Unverified.String():
		res.Skipped = "unverified verdicts carry no complete state"
		return res
	}
	mon, routes := r.observe, r.observeRoutes
	if rec.Outcome == Blocked.String() {
		mon, routes = r.enforce, r.enforceRoutes
	}
	tr := uml.Trigger{Method: uml.HTTPMethod(rec.Method), Resource: rec.Resource}
	cr, ok := routes[tr.String()]
	if !ok {
		res.Skipped = fmt.Sprintf("no contract for trigger %s", tr)
		return res
	}
	if rec.ContractDigest != "" && rec.ContractDigest != cr.digest {
		res.ContractMismatch = true
		res.Reason = fmt.Sprintf("record bound to contract %s, replaying against %s",
			rec.ContractDigest, cr.digest)
		return res
	}
	pre, err := parseSnapshot(rec.Pre)
	if err != nil {
		res.Skipped = fmt.Sprintf("unparsable pre snapshot: %v", err)
		return res
	}
	post, err := parseSnapshot(rec.Post)
	if err != nil {
		res.Skipped = fmt.Sprintf("unparsable post snapshot: %v", err)
		return res
	}
	r.curPre, r.curPost, r.curStatus = pre, post, rec.BackendStatus

	req, err := http.NewRequest(rec.Method, "http://replay.invalid/", nil)
	if err != nil {
		res.Skipped = fmt.Sprintf("build replay request: %v", err)
		return res
	}
	var trace obs.Trace
	v, _, cap := mon.check(req, cr, map[string]string{}, &trace)
	if cap != nil {
		// Unreachable: replay monitors run synchronous post. Recorded so
		// a future regression cannot silently drop verdicts.
		res.Skipped = "internal: replay produced a deferred capture"
		return res
	}
	res.Replayed = v.Outcome.String()
	switch {
	case res.Replayed != res.Recorded:
		res.Diverged = true
		res.Reason = fmt.Sprintf("outcome %s replayed as %s", res.Recorded, res.Replayed)
	case v.FailingClause != rec.FailingClause:
		res.Diverged = true
		res.Reason = fmt.Sprintf("failing clause %q replayed as %q", rec.FailingClause, v.FailingClause)
	}
	return res
}

// parseSnapshot rebuilds a state environment from the OCL literal map an
// audit record carries.
func parseSnapshot(doc map[string]string) (ocl.MapEnv, error) {
	env := make(ocl.MapEnv, len(doc))
	for path, lit := range doc {
		v, err := ocl.ParseValue(lit)
		if err != nil {
			return nil, fmt.Errorf("path %s: %w", path, err)
		}
		env[path] = v
	}
	return env, nil
}

// ReplaySummary aggregates a whole-trail replay.
type ReplaySummary struct {
	Total    int `json:"total"`
	Replayed int `json:"replayed"`
	Matched  int `json:"matched"`
	// Diverged counts replayed records whose outcome or failing clause
	// differs, plus contract-digest mismatches — any non-zero value means
	// the trail does not reproduce.
	Diverged         int            `json:"diverged"`
	ContractMismatch int            `json:"contract_mismatch"`
	Skipped          int            `json:"skipped"`
	SkipReasons      map[string]int `json:"skip_reasons,omitempty"`
	// Failures lists the diverged and mismatched records.
	Failures []ReplayResult `json:"failures,omitempty"`
}

// OK reports whether every replayable record reproduced its verdict.
func (s *ReplaySummary) OK() bool { return s.Diverged == 0 && s.ContractMismatch == 0 }

// ReplayAll replays every record and aggregates the results.
func (r *Replayer) ReplayAll(recs []obs.AuditRecord) *ReplaySummary {
	sum := &ReplaySummary{SkipReasons: map[string]int{}}
	for i := range recs {
		res := r.Replay(&recs[i])
		sum.Total++
		switch {
		case res.ContractMismatch:
			sum.ContractMismatch++
			sum.Diverged++
			sum.Failures = append(sum.Failures, res)
		case res.Skipped != "":
			sum.Skipped++
			sum.SkipReasons[res.Skipped]++
		case res.Diverged:
			sum.Replayed++
			sum.Diverged++
			sum.Failures = append(sum.Failures, res)
		default:
			sum.Replayed++
			sum.Matched++
		}
	}
	if len(sum.SkipReasons) == 0 {
		sum.SkipReasons = nil
	}
	// Deterministic failure ordering for reports.
	sort.Slice(sum.Failures, func(i, j int) bool { return sum.Failures[i].Seq < sum.Failures[j].Seq })
	return sum
}
