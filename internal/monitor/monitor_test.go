package monitor

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"cloudmon/internal/contract"
	"cloudmon/internal/ocl"
	"cloudmon/internal/paper"
	"cloudmon/internal/uml"
)

// fakeProvider returns scripted snapshots: pre-phase reads serve pre,
// post-phase reads serve post (the lazy engine issues several Snapshot
// calls per phase, so the phase on the request context — not the call
// count — selects the script).
type fakeProvider struct {
	pre, post ocl.MapEnv
	err       error
	// mu guards the call counters: with PostAsync a worker's post-phase
	// read overlaps the next request's pre-phase read.
	mu        sync.Mutex
	calls     int
	postCalls int
}

func (f *fakeProvider) Snapshot(ctx *RequestContext, paths []string) (ocl.MapEnv, error) {
	f.mu.Lock()
	f.calls++
	if ctx.Phase == PhasePost {
		f.postCalls++
	}
	f.mu.Unlock()
	if f.err != nil {
		return nil, f.err
	}
	src := f.pre
	if ctx.Phase == PhasePost {
		src = f.post
	}
	out := make(ocl.MapEnv, len(paths))
	for _, p := range paths {
		if v, ok := src[p]; ok {
			out[p] = v
		}
	}
	return out, nil
}

// fakeForwarder returns a scripted backend response.
type fakeForwarder struct {
	status int
	err    error
	calls  int
}

func (f *fakeForwarder) Forward(*http.Request, *Route, map[string]string) (*BackendResponse, error) {
	f.calls++
	if f.err != nil {
		return nil, f.err
	}
	return &BackendResponse{StatusCode: f.status, Header: http.Header{}, Body: []byte("{}")}, nil
}

func env(vols, quota int, status string, roles ...string) ocl.MapEnv {
	elems := make([]ocl.Value, vols)
	for i := range elems {
		elems[i] = ocl.StringVal("v")
	}
	return ocl.MapEnv{
		"project.id":        ocl.StringVal("p1"),
		"project.volumes":   ocl.CollectionVal(elems...),
		"quota_sets.volume": ocl.IntVal(quota),
		"volume.status":     ocl.StringVal(status),
		"user.id.groups":    ocl.StringsVal(roles...),
	}
}

func newMonitor(t *testing.T, mode Mode, p StateProvider, f Forwarder) *Monitor {
	t.Helper()
	set, err := contract.Generate(paper.CinderModel())
	if err != nil {
		t.Fatal(err)
	}
	routes := []Route{
		{Trigger: uml.Trigger{Method: uml.GET, Resource: "volume"},
			Pattern: "/projects/{project_id}/volumes/{volume_id}",
			Backend: "/volume/v3/{project_id}/volumes/{volume_id}"},
		{Trigger: uml.Trigger{Method: uml.PUT, Resource: "volume"},
			Pattern: "/projects/{project_id}/volumes/{volume_id}",
			Backend: "/volume/v3/{project_id}/volumes/{volume_id}"},
		{Trigger: uml.Trigger{Method: uml.POST, Resource: "volume"},
			Pattern: "/projects/{project_id}/volumes",
			Backend: "/volume/v3/{project_id}/volumes"},
		{Trigger: uml.Trigger{Method: uml.DELETE, Resource: "volume"},
			Pattern: "/projects/{project_id}/volumes/{volume_id}",
			Backend: "/volume/v3/{project_id}/volumes/{volume_id}"},
	}
	m, err := New(Config{
		Contracts: set,
		Routes:    routes,
		Provider:  p,
		Forward:   f,
		Mode:      mode,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func doDelete(t *testing.T, m *Monitor) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodDelete, "/projects/p1/volumes/v1", nil)
	req.Header.Set("X-Auth-Token", "tok")
	rec := httptest.NewRecorder()
	m.ServeHTTP(rec, req)
	return rec
}

func lastVerdict(t *testing.T, m *Monitor) Verdict {
	t.Helper()
	log := m.Log()
	if len(log) == 0 {
		t.Fatal("no verdicts logged")
	}
	return log[len(log)-1]
}

func TestEnforceBlocksForbiddenRequest(t *testing.T) {
	// member tries DELETE: contract pre fails, nothing forwarded.
	p := &fakeProvider{pre: env(1, 10, "available", "member")}
	f := &fakeForwarder{status: 204}
	m := newMonitor(t, Enforce, p, f)
	rec := doDelete(t, m)
	if rec.Code != http.StatusPreconditionFailed {
		t.Errorf("status = %d, want 412", rec.Code)
	}
	if f.calls != 0 {
		t.Error("blocked request must not be forwarded")
	}
	v := lastVerdict(t, m)
	if v.Outcome != Blocked || v.PreOK || v.Forwarded {
		t.Errorf("verdict = %+v", v)
	}
}

func TestEnforceForwardsPermittedRequest(t *testing.T) {
	p := &fakeProvider{
		pre:  env(2, 10, "available", "admin"),
		post: env(1, 10, "available", "admin"),
	}
	f := &fakeForwarder{status: 204}
	m := newMonitor(t, Enforce, p, f)
	rec := doDelete(t, m)
	if rec.Code != http.StatusNoContent {
		t.Errorf("status = %d, want backend 204", rec.Code)
	}
	v := lastVerdict(t, m)
	if v.Outcome != OK || !v.PreOK || !v.PostOK || !v.Forwarded {
		t.Errorf("verdict = %+v", v)
	}
	if v.BackendStatus != 204 {
		t.Errorf("backend status = %d", v.BackendStatus)
	}
	if len(v.MatchedSecReqs) != 1 || v.MatchedSecReqs[0] != "1.4" {
		t.Errorf("matched SecReqs = %v", v.MatchedSecReqs)
	}
}

func TestPostconditionViolationDetected(t *testing.T) {
	// Backend says 204 but the volume count did not change: the DeleteIsNoOp
	// mutant's signature.
	p := &fakeProvider{
		pre:  env(2, 10, "available", "admin"),
		post: env(2, 10, "available", "admin"),
	}
	f := &fakeForwarder{status: 204}
	m := newMonitor(t, Enforce, p, f)
	rec := doDelete(t, m)
	if rec.Code != http.StatusConflict {
		t.Errorf("status = %d, want 409 violation", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "violation:postcondition") {
		t.Errorf("body = %s", rec.Body.String())
	}
	v := lastVerdict(t, m)
	if v.Outcome != ViolationPostcondition {
		t.Errorf("outcome = %v", v.Outcome)
	}
}

func TestObserveDetectsForbiddenAccepted(t *testing.T) {
	// Privilege escalation: member's DELETE is accepted by the cloud.
	p := &fakeProvider{
		pre:  env(2, 10, "available", "member"),
		post: env(1, 10, "available", "member"),
	}
	f := &fakeForwarder{status: 204}
	m := newMonitor(t, Observe, p, f)
	rec := doDelete(t, m)
	if rec.Code != http.StatusConflict {
		t.Errorf("status = %d, want 409", rec.Code)
	}
	v := lastVerdict(t, m)
	if v.Outcome != ViolationForbiddenAccepted {
		t.Errorf("outcome = %v", v.Outcome)
	}
	if f.calls != 1 {
		t.Error("observe mode must forward")
	}
}

func TestObserveAcceptsCorrectRejection(t *testing.T) {
	p := &fakeProvider{pre: env(2, 10, "available", "member")}
	f := &fakeForwarder{status: 403}
	m := newMonitor(t, Observe, p, f)
	rec := doDelete(t, m)
	if rec.Code != http.StatusForbidden {
		t.Errorf("status = %d, want backend 403 passed through", rec.Code)
	}
	v := lastVerdict(t, m)
	if v.Outcome != Rejected {
		t.Errorf("outcome = %v", v.Outcome)
	}
}

func TestAllowedRejectedViolation(t *testing.T) {
	// Admin's valid DELETE rejected by the cloud: authorized user denied.
	p := &fakeProvider{pre: env(2, 10, "available", "admin")}
	f := &fakeForwarder{status: 403}
	m := newMonitor(t, Enforce, p, f)
	rec := doDelete(t, m)
	if rec.Code != http.StatusConflict {
		t.Errorf("status = %d, want 409", rec.Code)
	}
	v := lastVerdict(t, m)
	if v.Outcome != ViolationAllowedRejected {
		t.Errorf("outcome = %v", v.Outcome)
	}
}

func TestProviderErrorIsMonitorError(t *testing.T) {
	p := &fakeProvider{err: errFake}
	f := &fakeForwarder{status: 204}
	m := newMonitor(t, Enforce, p, f)
	rec := doDelete(t, m)
	if rec.Code != http.StatusBadGateway {
		t.Errorf("status = %d, want 502", rec.Code)
	}
	v := lastVerdict(t, m)
	if v.Outcome != Error {
		t.Errorf("outcome = %v", v.Outcome)
	}
	if f.calls != 0 {
		t.Error("must not forward after snapshot failure")
	}
}

func TestForwarderErrorIsMonitorError(t *testing.T) {
	p := &fakeProvider{pre: env(2, 10, "available", "admin")}
	f := &fakeForwarder{err: errFake}
	m := newMonitor(t, Enforce, p, f)
	rec := doDelete(t, m)
	if rec.Code != http.StatusBadGateway {
		t.Errorf("status = %d, want 502", rec.Code)
	}
}

var errFake = &fakeError{}

type fakeError struct{}

func (*fakeError) Error() string { return "fake failure" }

func TestUnroutedRequestIs404(t *testing.T) {
	p := &fakeProvider{pre: env(1, 10, "available", "admin")}
	m := newMonitor(t, Enforce, p, &fakeForwarder{status: 200})
	req := httptest.NewRequest(http.MethodGet, "/nonsense", nil)
	rec := httptest.NewRecorder()
	m.ServeHTTP(rec, req)
	if rec.Code != http.StatusNotFound {
		t.Errorf("status = %d, want 404", rec.Code)
	}
	if len(m.Log()) != 0 {
		t.Error("unrouted requests must not be logged as verdicts")
	}
}

func TestCoverageTracking(t *testing.T) {
	p := &fakeProvider{
		pre:  env(2, 10, "available", "admin"),
		post: env(1, 10, "available", "admin"),
	}
	m := newMonitor(t, Enforce, p, &fakeForwarder{status: 204})
	doDelete(t, m)
	cov := m.Coverage()
	if cov["1.4"] != 1 {
		t.Errorf("coverage[1.4] = %d, want 1", cov["1.4"])
	}
	// Declared but unexercised requirements appear with zero.
	for _, s := range []string{"1.1", "1.2", "1.3"} {
		if c, ok := cov[s]; !ok || c != 0 {
			t.Errorf("coverage[%s] = %d,%v; want 0,true", s, c, ok)
		}
	}
	if got := m.Outcomes()[OK]; got != 1 {
		t.Errorf("outcomes[OK] = %d", got)
	}
	// Transition coverage: exactly one DELETE transition matched (the env
	// has 2 of 10 volumes: the not-full, size>1 case).
	tc := m.TransitionCoverage()
	matchedCount := 0
	total := 0
	for key, n := range tc {
		total++
		if n > 0 {
			matchedCount += n
			if !strings.Contains(key, "DELETE(volume)") {
				t.Errorf("unexpected matched transition %q", key)
			}
		}
	}
	if matchedCount != 1 {
		t.Errorf("matched transitions = %d, want 1 (%v)", matchedCount, tc)
	}
	if total != 11 {
		t.Errorf("transition universe = %d, want 11 (all model transitions)", total)
	}
	m.ResetLog()
	if len(m.Log()) != 0 || m.Coverage()["1.4"] != 0 {
		t.Error("ResetLog did not clear state")
	}
	for _, n := range m.TransitionCoverage() {
		if n != 0 {
			t.Error("transition coverage survives reset")
		}
	}
}

func TestViolationsFilter(t *testing.T) {
	p := &fakeProvider{pre: env(2, 10, "available", "admin"), post: env(2, 10, "available", "admin")}
	m := newMonitor(t, Enforce, p, &fakeForwarder{status: 204})
	doDelete(t, m)
	if got := m.Violations(); len(got) != 1 || got[0].Outcome != ViolationPostcondition {
		t.Errorf("Violations = %v", got)
	}
}

func TestLogBounded(t *testing.T) {
	set, err := contract.Generate(paper.CinderModel())
	if err != nil {
		t.Fatal(err)
	}
	p := &fakeProvider{pre: env(1, 10, "available", "member")}
	m, err := New(Config{
		Contracts: set,
		Routes: []Route{{
			Trigger: uml.Trigger{Method: uml.DELETE, Resource: "volume"},
			Pattern: "/projects/{project_id}/volumes/{volume_id}",
			Backend: "/x/{project_id}/{volume_id}",
		}},
		Provider: p,
		Forward:  &fakeForwarder{status: 403},
		Mode:     Enforce,
		MaxLog:   3,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		p.calls = 0 // keep returning the pre env
		doDelete(t, m)
	}
	if got := len(m.Log()); got != 3 {
		t.Errorf("log length = %d, want 3", got)
	}
}

func TestNewValidation(t *testing.T) {
	set, err := contract.Generate(paper.CinderModel())
	if err != nil {
		t.Fatal(err)
	}
	valid := Config{
		Contracts: set,
		Routes: []Route{{
			Trigger: uml.Trigger{Method: uml.DELETE, Resource: "volume"},
			Pattern: "/x", Backend: "/y",
		}},
		Provider: &fakeProvider{},
		Forward:  &fakeForwarder{},
	}
	if _, err := New(valid); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	for name, corrupt := range map[string]func(*Config){
		"no contracts": func(c *Config) { c.Contracts = nil },
		"no provider":  func(c *Config) { c.Provider = nil },
		"no forwarder": func(c *Config) { c.Forward = nil },
		"no routes":    func(c *Config) { c.Routes = nil },
		"route without contract": func(c *Config) {
			c.Routes = []Route{{Trigger: uml.Trigger{Method: uml.GET, Resource: "ghost"}}}
		},
		"conflicting routes": func(c *Config) {
			r := Route{
				Trigger: uml.Trigger{Method: uml.DELETE, Resource: "volume"},
				Pattern: "/x", Backend: "/y",
			}
			c.Routes = []Route{r, r}
		},
	} {
		cfg := valid
		corrupt(&cfg)
		if _, err := New(cfg); err == nil {
			t.Errorf("%s: want error", name)
		}
	}
}

func TestDefaultModeIsEnforce(t *testing.T) {
	p := &fakeProvider{pre: env(1, 10, "available", "admin")}
	m := newMonitor(t, 0, p, &fakeForwarder{status: 204})
	if m.Mode() != Enforce {
		t.Errorf("default mode = %v", m.Mode())
	}
}

func TestModeAndOutcomeStrings(t *testing.T) {
	if Enforce.String() != "enforce" || Observe.String() != "observe" {
		t.Error("mode names wrong")
	}
	for o, want := range map[Outcome]string{
		OK:                         "ok",
		Blocked:                    "blocked",
		Rejected:                   "rejected",
		ViolationForbiddenAccepted: "violation:forbidden-accepted",
		ViolationAllowedRejected:   "violation:allowed-rejected",
		ViolationPostcondition:     "violation:postcondition",
		Error:                      "error",
	} {
		if o.String() != want {
			t.Errorf("Outcome %d = %q, want %q", o, o.String(), want)
		}
	}
	if !ViolationPostcondition.IsViolation() || OK.IsViolation() || Blocked.IsViolation() {
		t.Error("IsViolation classification wrong")
	}
}

func TestPostRouteOnCollection(t *testing.T) {
	p := &fakeProvider{
		pre:  env(0, 10, "", "admin"),
		post: env(1, 10, "", "admin"),
	}
	m := newMonitor(t, Enforce, p, &fakeForwarder{status: 202})
	req := httptest.NewRequest(http.MethodPost, "/projects/p1/volumes",
		strings.NewReader(`{"volume":{"name":"n","size":1}}`))
	req.Header.Set("X-Auth-Token", "tok")
	rec := httptest.NewRecorder()
	m.ServeHTTP(rec, req)
	if rec.Code != http.StatusAccepted {
		t.Errorf("status = %d, body=%s", rec.Code, rec.Body.String())
	}
	v := lastVerdict(t, m)
	if v.Outcome != OK {
		t.Errorf("outcome = %v (%s)", v.Outcome, v.Detail)
	}
}
