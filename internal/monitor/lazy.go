package monitor

import (
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"cloudmon/internal/contract"
	"cloudmon/internal/obs"
	"cloudmon/internal/ocl"
)

// EvalMode selects the snapshot/evaluation engine.
type EvalMode int

// Evaluation modes.
const (
	// EvalLazy evaluates the contract's compiled plan
	// clause-by-clause, fetching each state path the first time a formula
	// demands it. The pre-check fetches only what deciding (and
	// attributing) the disjuncts needs; the post-check re-fetches only
	// paths inside the active transitions' effect frame and reuses the
	// pre-state snapshot for the rest.
	EvalLazy EvalMode = iota + 1
	// EvalEager snapshots the contract's full StatePaths union before each
	// evaluation — the paper's original workflow. Kept for differential
	// testing and benchmarking against the plan engine.
	EvalEager
	// EvalCompiled (the default) runs the same demand-driven workflow as
	// EvalLazy — same fetch order, facts pruning, FailPolicy semantics and
	// demand accounting — but evaluates each clause through its compiled
	// closure-chain program (contract/compile.go) over a pooled slot
	// frame instead of re-walking the OCL tree. Only the per-node
	// evaluation changes; the differential suite proves the verdicts
	// field-for-field identical.
	EvalCompiled
)

// String returns the mode name.
func (e EvalMode) String() string {
	switch e {
	case EvalLazy:
		return "lazy"
	case EvalEager:
		return "eager"
	case EvalCompiled:
		return "compiled"
	}
	return fmt.Sprintf("EvalMode(%d)", int(e))
}

// ParseEvalMode parses a -eval flag value.
func ParseEvalMode(s string) (EvalMode, error) {
	switch s {
	case "compiled":
		return EvalCompiled, nil
	case "lazy":
		return EvalLazy, nil
	case "eager":
		return EvalEager, nil
	}
	return 0, fmt.Errorf("monitor: unknown eval mode %q (compiled|lazy|eager)", s)
}

// unfetchedError is the demand signal of lazy evaluation: a formula reached
// a navigation path its environment has not fetched yet. The evaluator
// aborts on any environment error, so the driver fetches the path and
// re-evaluates; fetched values are stable, so each retry advances past the
// previous miss.
type unfetchedError struct {
	env  *lazyEnv
	path string
}

func (e *unfetchedError) Error() string {
	return "monitor: state path " + e.path + " not fetched"
}

// fetchError wraps a cloud fetch failure so the check loop can tell
// snapshot failures (fail-policy territory) from formula evaluation errors.
type fetchError struct{ err error }

func (e *fetchError) Error() string { return e.err.Error() }
func (e *fetchError) Unwrap() error { return e.err }

// lazyEnv is an ocl.Environment populated on demand. A fetched-but-absent
// path resolves to Undefined exactly like ocl.MapEnv; an unfetched path
// resolves to an unfetchedError naming itself.
type lazyEnv struct {
	vals ocl.MapEnv
	have map[string]bool
	// demanded records the distinct paths the current clause has resolved
	// (see beginClause/takeDemands); nil until accounting starts.
	demanded map[string]bool
	// slotSet, when non-nil, mirrors every set into the compiled engine's
	// frame bank, so the env (the verdict's snapshot of record) and the
	// slot model can never disagree about what has been fetched.
	slotSet func(path string, v ocl.Value, present bool)
}

func newLazyEnv() *lazyEnv {
	return &lazyEnv{vals: make(ocl.MapEnv), have: make(map[string]bool)}
}

// Resolve implements ocl.Environment.
func (e *lazyEnv) Resolve(path []string) (ocl.Value, error) {
	key := strings.Join(path, ".")
	if e.have[key] {
		if e.demanded != nil {
			e.demanded[key] = true
		}
		if v, ok := e.vals[key]; ok {
			return v, nil
		}
		return ocl.Undefined(), nil
	}
	return ocl.Value{}, &unfetchedError{env: e, path: key}
}

// beginClause opens a demand-accounting window: takeDemands then reports
// the distinct paths the evaluator resolved since. The per-clause counts
// feed Verdict.DemandedPaths — the work measure fact pruning reduces even
// when every path was already fetched.
func (e *lazyEnv) beginClause() {
	if e.demanded == nil {
		e.demanded = make(map[string]bool, 8)
		return
	}
	clear(e.demanded)
}

// takeDemands closes the window and returns its distinct demand count.
func (e *lazyEnv) takeDemands() int {
	n := len(e.demanded)
	clear(e.demanded)
	return n
}

// set records a fetched value (present=false marks the path as fetched but
// absent, resolving to Undefined from now on).
func (e *lazyEnv) set(path string, v ocl.Value, present bool) {
	e.have[path] = true
	if present {
		e.vals[path] = v
	}
	if e.slotSet != nil {
		e.slotSet(path, v, present)
	}
}

// fetched reports whether the path has been resolved already.
func (e *lazyEnv) fetched(path string) bool { return e.have[path] }

// value returns the stored value for a fetched path (ok=false: absent).
func (e *lazyEnv) value(path string) (ocl.Value, bool) {
	v, ok := e.vals[path]
	return v, ok
}

// flightGroup coalesces identical concurrent cloud GETs: the first caller
// for a key becomes the flight leader and performs the fetch (capturing the
// cache generation before it starts, so it alone may store the result);
// callers arriving while the flight is open wait for the leader's result
// and never touch the cache. Flight keys are the pre-state cache keys —
// (path, token, params) — so coalescing and caching agree on identity.
// Post-state fetches never join a flight: a request must observe its own
// forwarded effect, not a read that started before it.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flight
}

type flight struct {
	done    chan struct{}
	val     ocl.Value
	present bool
	err     error
}

func newFlightGroup() *flightGroup {
	return &flightGroup{m: make(map[string]*flight)}
}

// do runs fn once per open key: the leader executes it, everyone else waits
// and shares the result. coalesced counts the waiters.
func (g *flightGroup) do(key string, fn func() (ocl.Value, bool, error), coalesced *obs.Counter) (ocl.Value, bool, error) {
	g.mu.Lock()
	if fl, ok := g.m[key]; ok {
		g.mu.Unlock()
		<-fl.done
		coalesced.Inc()
		return fl.val, fl.present, fl.err
	}
	fl := &flight{done: make(chan struct{})}
	g.m[key] = fl
	g.mu.Unlock()
	fl.val, fl.present, fl.err = fn()
	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	close(fl.done)
	return fl.val, fl.present, fl.err
}

// lazyFetcher performs the per-path cloud reads of one lazy check,
// accounting fetch counts and time per phase.
type lazyFetcher struct {
	m       *Monitor
	reqCtx  *RequestContext
	project string
	pk      string

	degraded bool
	fetched  int
	preDur   time.Duration
	postDur  time.Duration
}

// fetchPre resolves one pre-state path: read cache first, then a coalesced
// provider fetch, then — under the Degrade policy — a stale cache entry
// within the degrade window. The flight leader captures the project
// generation before fetching and is the only writer to the cache, so a
// waiter can never store a value observed before a write that invalidated
// it.
func (f *lazyFetcher) fetchPre(env *lazyEnv, path string) error {
	m := f.m
	if m.cache != nil {
		if v, present, ok := m.cache.get(path, f.reqCtx.Token, f.pk, f.project); ok {
			env.set(path, v, present)
			return nil
		}
	}
	t0 := time.Now()
	val, present, err := m.flights.do(cacheKey(path, f.reqCtx.Token, f.pk), func() (ocl.Value, bool, error) {
		var gen uint64
		if m.cache != nil {
			gen = m.cache.projectGen(f.project)
		}
		f.fetched++
		snap, ferr := m.provider.Snapshot(f.reqCtx, []string{path})
		if ferr != nil {
			return ocl.Value{}, false, ferr
		}
		v, ok := snap[path]
		if m.cache != nil {
			m.cache.put(path, f.reqCtx.Token, f.pk, f.project, v, ok, gen)
		}
		return v, ok, nil
	}, &m.coalesced)
	f.preDur += time.Since(t0)
	if err == nil {
		env.set(path, val, present)
		return nil
	}
	if m.failPolicy == Degrade && m.cache != nil {
		if v, present, ok := m.cache.getStale(path, f.reqCtx.Token, f.pk, f.project, m.degradeTTL); ok {
			env.set(path, v, present)
			f.degraded = true
			return nil
		}
	}
	return err
}

// fetchPost resolves one post-state path straight from the cloud — no
// cache, no coalescing: the post-condition verifies this request's own
// effect, so joining a read that started before the forward would compare
// against stale state.
func (f *lazyFetcher) fetchPost(env *lazyEnv, path string) error {
	t0 := time.Now()
	f.fetched++
	snap, err := f.m.provider.Snapshot(f.reqCtx, []string{path})
	f.postDur += time.Since(t0)
	if err != nil {
		return err
	}
	v, ok := snap[path]
	env.set(path, v, ok)
	return nil
}

// evalDemand evaluates expr, fetching navigation paths the moment the
// evaluator demands one. The loop terminates because every successful fetch
// marks its path fetched and Resolve only errors on unfetched paths.
// Fetch failures come back wrapped in fetchError; all other errors are
// genuine evaluation errors.
func evalDemand(expr ocl.Expr, ctx ocl.Context, fetch func(*lazyEnv, string) error) (ocl.Value, error) {
	for {
		val, err := ocl.Eval(expr, ctx)
		if err == nil {
			return val, nil
		}
		var uf *unfetchedError
		if !errors.As(err, &uf) {
			return ocl.Value{}, err
		}
		if uf.env.fetched(uf.path) {
			// A fetch that does not mark its path would loop forever; fail
			// loudly instead.
			return ocl.Value{}, fmt.Errorf("monitor: demand loop stuck on path %s", uf.path)
		}
		if ferr := fetch(uf.env, uf.path); ferr != nil {
			return ocl.Value{}, &fetchError{err: ferr}
		}
	}
}

// evalProgram is evalDemand's twin for the compiled engine: it runs the
// clause's closure-chain program, fetching a state path the moment a slot
// demand surfaces. Termination mirrors evalDemand — every successful
// fetch fills its slot (via the env's slotSet mirror), and a filled slot
// cannot demand again.
func evalProgram(prog *contract.Program, fr *contract.Frame, fetch func(*contract.Demand) error) (ocl.Value, error) {
	for {
		val, err := prog.Run(fr)
		if err == nil {
			return val, nil
		}
		var d *contract.Demand
		if !errors.As(err, &d) {
			return ocl.Value{}, err
		}
		if fr.Filled(d) {
			// A fetch that does not fill its slot would loop forever; fail
			// loudly instead.
			return ocl.Value{}, fmt.Errorf("monitor: demand loop stuck on path %s", d.Path)
		}
		if ferr := fetch(d); ferr != nil {
			return ocl.Value{}, &fetchError{err: ferr}
		}
	}
}

// boolValue reports (isBool, value) for a tri-state result.
func boolValue(v ocl.Value) (bool, bool) {
	return v.Kind == ocl.KindBool, v.Kind == ocl.KindBool && v.Bool
}

// Pruning kinds of the cloudmon_facts_pruned_total metric.
const (
	factsPrunedPreClause  = "pre-clause"  // disjunct assigned a static value
	factsPrunedPreSibling = "pre-sibling" // disjunct decided by a witness element
	factsPrunedPostClause = "post-clause" // implication statically vacuous
)

// witnessSkip tries to decide disjunct i through an armed exclusion: a
// sibling already observed definitely true whose elements refute one of
// i's. Only a definite-false observation of the witness element licenses
// the skip — the prover is idealized (facts.go), so the observation is
// the soundness guard. Every other outcome (true, undefined, non-boolean,
// evaluation or fetch error) falls back to full evaluation, which
// reproduces the no-facts engine exactly: the witness's fetched values
// are shared state, and fetchPre retries failed paths on re-demand.
func (m *Monitor) witnessSkip(facts *contract.Facts, comp *contract.Compiled, fr *contract.Frame, i int, anteVals []ocl.Value, pre *lazyEnv, preCtx ocl.Context, f *lazyFetcher, v *Verdict) (ocl.Value, bool) {
	for j, ex := range facts.Exclusions[i] {
		if isBool, b := boolValue(anteVals[ex.Provider]); !isBool || !b {
			continue
		}
		var wval ocl.Value
		var err error
		if fr != nil {
			fr.BeginClause()
			wval, err = evalProgram(comp.WitnessProgram(i, j), fr, func(d *contract.Demand) error {
				return f.fetchPre(pre, d.Path)
			})
			v.DemandedPaths += fr.TakeDemands()
		} else {
			pre.beginClause()
			wval, err = evalDemand(ex.Witness, preCtx, f.fetchPre)
			v.DemandedPaths += pre.takeDemands()
		}
		if err == nil {
			if isBool, b := boolValue(wval); isBool && !b {
				v.FactsSkipped++
				m.factsPruned.Add(factsPrunedPreSibling, 1)
				return ocl.BoolVal(false), true
			}
		}
		// Per request only the first armed exclusion is tried: its witness
		// observation already paid the fetches, and after a non-false
		// observation the full evaluation reuses them anyway.
		return ocl.Value{}, false
	}
	return ocl.Value{}, false
}

// checkLazy is the plan-driven monitoring workflow: semantically equivalent
// to checkEager (same verdicts, failing clauses and SecReq attributions —
// see differential_test.go) while fetching only the state paths the
// verdict actually needs.
//
// Pre-check: every disjunct is evaluated (coverage attribution needs each
// case's truth, Section IV.C) in plan order, but demand-driven — a failed
// source invariant never fetches the guard's paths, and disjuncts sharing
// paths pay once. Post-check: implications whose antecedent was false in
// the pre-state are skipped outright; active consequents re-fetch only
// paths inside the transitions' effect frame and reuse the pre-state
// snapshot for untouched paths (disable with Config.NoPostReuse).
//
// The third return value is non-nil only under PostAsync: the pre phase
// and the forward are complete, the verdict is deferred, and the capture
// carries everything postVerify needs to finish it off the response path.
func (m *Monitor) checkLazy(r *http.Request, cr *compiledRoute, params map[string]string, trace *obs.Trace) (Verdict, *BackendResponse, *postCapture) {
	start := time.Now()
	c := cr.contract
	plan := cr.plan
	reqCtx := &RequestContext{
		Method:   c.Trigger.Method,
		Resource: c.Trigger.Resource,
		Params:   params,
		Token:    r.Header.Get("X-Auth-Token"),
		Phase:    PhasePre,
	}
	v := Verdict{Trigger: c.Trigger, SecReqs: c.SecReqs, ContractDigest: cr.digest}
	f := &lazyFetcher{
		m:       m,
		reqCtx:  reqCtx,
		project: params["project_id"],
		pk:      paramsCacheKey(params),
	}
	var preEvalDur, postEvalDur time.Duration
	finish := func(outcome Outcome, detail string) Verdict {
		v.Outcome = outcome
		v.Detail = detail
		v.Elapsed = time.Since(start)
		v.FetchedPaths = f.fetched
		switch outcome {
		case Blocked, Rejected, ViolationForbiddenAccepted, ViolationAllowedRejected:
			v.FailingClause = c.Pre.String()
		case ViolationPostcondition:
			v.FailingClause = c.Post.String()
		}
		// Fetch time accumulates into the snapshot stages; the evaluation
		// stages get the remainder of each interleaved phase.
		trace[obs.StagePreSnapshot] = f.preDur
		trace[obs.StagePreEval] = preEvalDur
		trace[obs.StagePostSnapshot] = f.postDur
		trace[obs.StagePostEval] = postEvalDur
		return v
	}
	// snapshotFailed runs the pre-forward fail-policy branches shared by
	// the pre-check and the pre-state top-up (the Degrade rescue already
	// ran per path inside fetchPre).
	snapshotFailed := func(err error) (Verdict, *BackendResponse, *postCapture) {
		if m.failPolicy == FailOpen {
			m.fenceWrites(r.Method)
			fwdStart := time.Now()
			resp, ferr := m.forward.Forward(r, &cr.route, params)
			trace[obs.StageForward] = time.Since(fwdStart)
			if ferr != nil {
				return finish(Error, fmt.Sprintf(
					"pre-state snapshot: %v; forward to cloud: %v", err, ferr)), nil, nil
			}
			v.Forwarded = true
			v.BackendStatus = resp.StatusCode
			m.forwardedWrite(r.Method, params["project_id"])
			return finish(Unverified, fmt.Sprintf("pre-state snapshot failed (fail-open): %v", err)), resp, nil
		}
		return finish(Error, fmt.Sprintf("pre-state snapshot: %v", err)), nil, nil
	}

	// Pre phase: evaluate every disjunct, cheapest-planned first. The
	// tri-state value is kept per case: the post-check derives each
	// implication's antecedent from it without re-reading the pre-state.
	// With facts on, a statically decided disjunct is assigned its value
	// without evaluation, and a disjunct with an armed exclusion (a
	// sibling already observed definitely true) is decided by its witness
	// element alone when that witness is observed definitely false — every
	// other observation falls back to full evaluation, reproducing the
	// no-facts engine exactly.
	preStart := time.Now()
	facts := plan.Facts
	useFacts := !m.noFacts && facts != nil
	anteVals := make([]ocl.Value, len(c.Cases))
	pre := newLazyEnv()
	preCtx := ocl.Context{Cur: pre}
	// The compiled engine swaps only the per-clause evaluation: a pooled
	// slot frame mirrors the env (slotSet keeps them in lockstep), the
	// clause programs run over it, and the demand loop, fetch order and
	// accounting stay exactly the lazy engine's.
	comp := plan.Compiled
	useCompiled := m.eval == EvalCompiled && comp != nil
	var fr *contract.Frame
	var demandPre func(*contract.Demand) error
	if useCompiled {
		fr = comp.NewFrame()
		defer comp.Release(fr)
		pre.slotSet = fr.SetCur
		demandPre = func(d *contract.Demand) error { return f.fetchPre(pre, d.Path) }
	} else {
		comp = nil
	}
	// debugRecheck re-derives a fact-decided value the slow way
	// (FactsDebug): an unsound fact surfaces as a mismatch count here and
	// as a verdict divergence in the differential suites.
	debugRecheck := func(i int, got ocl.Value) {
		if !m.factsDebug {
			return
		}
		pre.beginClause()
		full, err := evalDemand(c.Cases[i].Pre, preCtx, f.fetchPre)
		pre.takeDemands()
		if err != nil || !full.Equal(got) {
			m.factsMismatch.Inc()
		}
	}
	for _, cl := range plan.Pre {
		i := cl.Index
		if useFacts {
			if s := facts.Pre[i].Static; s != nil {
				anteVals[i] = *s
				v.FactsSkipped++
				m.factsPruned.Add(factsPrunedPreClause, 1)
				debugRecheck(i, *s)
				continue
			}
			if val, ok := m.witnessSkip(facts, comp, fr, i, anteVals, pre, preCtx, f, &v); ok {
				anteVals[i] = val
				debugRecheck(i, val)
				continue
			}
		}
		var val ocl.Value
		var err error
		if useCompiled {
			// The program was compiled from the folded form, which is
			// value-, error- and demand-equivalent to the original
			// (facts.go) — one program serves facts-on and facts-off.
			fr.BeginClause()
			val, err = evalProgram(comp.PreProgram(i), fr, demandPre)
			v.DemandedPaths += fr.TakeDemands()
		} else {
			expr := c.Cases[i].Pre
			if useFacts {
				// The folded form is value- and error-equivalent (facts.go).
				expr = facts.Pre[i].Folded
			}
			pre.beginClause()
			val, err = evalDemand(expr, preCtx, f.fetchPre)
			v.DemandedPaths += pre.takeDemands()
		}
		if err != nil {
			preEvalDur = time.Since(preStart) - f.preDur
			var fe *fetchError
			if errors.As(err, &fe) {
				return snapshotFailed(fe.err)
			}
			return finish(Error, fmt.Sprintf("pre-condition evaluation: %v", err)), nil, nil
		}
		anteVals[i] = val
	}
	preEvalDur = time.Since(preStart) - f.preDur
	v.DegradedPre = f.degraded
	v.PreSnapshot = pre.vals

	// Coverage attribution in model order, exactly as the eager evalPre.
	preOK := false
	var matched, matchedTrans []string
	seen := make(map[string]bool)
	for i := range c.Cases {
		if isBool, b := boolValue(anteVals[i]); !isBool || !b {
			continue
		}
		preOK = true
		cs := &c.Cases[i]
		matchedTrans = append(matchedTrans,
			cs.Transition.From+"->"+cs.Transition.To+" on "+cs.Transition.Trigger.String())
		for _, s := range cs.Transition.SecReqs {
			if !seen[s] {
				seen[s] = true
				matched = append(matched, s)
			}
		}
	}
	sort.Strings(matched)
	v.PreOK = preOK
	v.MatchedSecReqs = matched
	v.MatchedTransitions = matchedTrans

	if !preOK && m.mode == Enforce {
		return finish(Blocked, "pre-condition failed; request not forwarded"), nil, nil
	}

	// Pre-state top-up: pre-context paths of active consequents are
	// unobservable once the request is forwarded, so capture any the
	// disjunct evaluation did not already touch. An implication whose
	// antecedent is definitely false is skipped entirely — its consequent
	// is never evaluated, so its old values are never read.
	if preOK && m.level == CheckFull {
		topStart := time.Now()
		preFetchBefore := f.preDur
		for _, pc := range plan.Post {
			if isBool, b := boolValue(anteVals[pc.Index]); isBool && !b {
				continue
			}
			for _, p := range pc.PrePaths {
				if pre.fetched(p) {
					continue
				}
				if err := f.fetchPre(pre, p); err != nil {
					preEvalDur += time.Since(topStart) - (f.preDur - preFetchBefore)
					return snapshotFailed(err)
				}
			}
		}
		preEvalDur += time.Since(topStart) - (f.preDur - preFetchBefore)
		v.DegradedPre = f.degraded
	}

	// A deferred post check reads the cloud after its response returns; a
	// write forwarded underneath it would interfere. Mutations wait here
	// for the pending deferred checks — reads pass straight through — so
	// async verdicts match the synchronous ordering (see fenceWrites).
	m.fenceWrites(r.Method)
	fwdStart := time.Now()
	resp, err := m.forward.Forward(r, &cr.route, params)
	trace[obs.StageForward] = time.Since(fwdStart)
	if err != nil {
		return finish(Error, fmt.Sprintf("forward to cloud: %v", err)), nil, nil
	}
	v.Forwarded = true
	v.BackendStatus = resp.StatusCode
	// A forwarded write may change any state the project's contracts
	// read: drop the project's cached pre-state and tell the fleet hook.
	m.forwardedWrite(r.Method, params["project_id"])

	if !preOK {
		// Observe mode with a forbidden request: the cloud must reject it.
		if resp.Succeeded() {
			return finish(ViolationForbiddenAccepted, fmt.Sprintf(
				"contract forbids %s but cloud answered %d", c.Trigger, resp.StatusCode)), resp, nil
		}
		return finish(Rejected, ""), resp, nil
	}

	if !resp.Succeeded() {
		return finish(ViolationAllowedRejected, fmt.Sprintf(
			"contract permits %s but cloud answered %d", c.Trigger, resp.StatusCode)), resp, nil
	}

	if m.level == CheckPreOnly {
		v.PostOK = true
		return finish(OK, ""), resp, nil
	}

	// The post phase runs over a capture of everything the pre phase
	// learned: the demand fetcher with its accounting, the pre-state env,
	// the per-case antecedent values and the accumulated timings.
	// Synchronous mode consumes the capture right here, on the response
	// path, reusing the pooled frame; PostAsync hands it to the worker
	// pool and returns the response immediately.
	cap := &postCapture{
		m:          m,
		cr:         cr,
		reqCtx:     reqCtx,
		v:          v,
		f:          f,
		pre:        pre,
		anteVals:   anteVals,
		resp:       resp,
		start:      start,
		preEvalDur: preEvalDur,
	}
	if m.post == PostAsync {
		// The pooled frame dies with this call (deferred Release): stop
		// mirroring into it before the capture escapes. The worker
		// re-materializes a frame from the env — BeginPost copies
		// nothing, so a rebuilt frame and a turned-around one are
		// indistinguishable. The response-path trace keeps the pre-phase
		// spans; the worker fills in the post spans on its own copy.
		pre.slotSet = nil
		trace[obs.StagePreSnapshot] = f.preDur
		trace[obs.StagePreEval] = preEvalDur
		// Pending from this moment — before the response is written — so
		// the write fence and DrainPost account for the capture even while
		// ServeHTTP is still carrying it to the queue.
		m.asyncPost.pending.Add(1)
		return v, resp, cap
	}
	return m.postVerify(cap, trace, fr), resp, nil
}

// postCapture is the deferred-verdict record of one forwarded request:
// everything the post phase needs, captured the moment the forward
// completed. The verdict inside carries the final pre-phase fields
// (coverage, antecedents, fetch accounting); postVerify finishes it.
type postCapture struct {
	m          *Monitor
	cr         *compiledRoute
	reqCtx     *RequestContext
	v          Verdict
	f          *lazyFetcher
	pre        *lazyEnv
	anteVals   []ocl.Value
	resp       *BackendResponse
	start      time.Time
	preEvalDur time.Duration
	// trace is the request's pipeline trace as of response return. The
	// async worker owns this copy and adds the post-phase spans; the
	// response path's own trace array is dead once the handler returns.
	trace obs.Trace
	// returned is when the response went back to the client (PostAsync);
	// detection lag is measured from it.
	returned time.Time
}

// postVerify is the post phase shared verbatim by the synchronous check
// and the async workers. The effect frame is the union of what the active
// transitions may change; post-state reads outside it reuse the pre-state
// snapshot (the forwarded call cannot have moved them). fr is the pre
// phase's pooled frame on the synchronous path; async workers pass nil
// and a fresh frame is rebuilt from the captured env — BeginPost copies
// no state, so the rebuilt frame evaluates identically.
func (m *Monitor) postVerify(cap *postCapture, trace *obs.Trace, fr *contract.Frame) Verdict {
	c := cap.cr.contract
	plan := cap.cr.plan
	reqCtx := cap.reqCtx
	f := cap.f
	pre := cap.pre
	anteVals := cap.anteVals
	v := &cap.v
	facts := plan.Facts
	useFacts := !m.noFacts && facts != nil
	comp := plan.Compiled
	useCompiled := m.eval == EvalCompiled && comp != nil
	if useCompiled && fr == nil {
		fr = comp.NewFrame()
		defer comp.Release(fr)
	}
	var postEvalDur time.Duration
	finish := func(outcome Outcome, detail string) Verdict {
		v.Outcome = outcome
		v.Detail = detail
		v.Elapsed = time.Since(cap.start)
		v.FetchedPaths = f.fetched
		if outcome == ViolationPostcondition {
			v.FailingClause = c.Post.String()
		}
		trace[obs.StagePreSnapshot] = f.preDur
		trace[obs.StagePreEval] = cap.preEvalDur
		trace[obs.StagePostSnapshot] = f.postDur
		trace[obs.StagePostEval] = postEvalDur
		return *v
	}
	reqCtx.Phase = PhasePost
	postStart := time.Now()
	var frame map[string]bool
	if !m.noPostReuse {
		frame = make(map[string]bool)
		for _, pc := range plan.Post {
			if isBool, b := boolValue(anteVals[pc.Index]); isBool && !b {
				continue
			}
			for _, p := range pc.Touched {
				frame[p] = true
			}
		}
	}
	post := newLazyEnv()
	postCtx := ocl.Context{Cur: post, Pre: pre}
	if useCompiled {
		// Turn the frame around: the current bank now describes the
		// post-state (filled on demand below) and the captured pre-state
		// becomes the pre bank. The pre env stops mirroring into the
		// frame — nothing writes it after the forward.
		fr.BeginPost()
		pre.slotSet = nil
		post.slotSet = fr.SetCur
		for path := range pre.have {
			val, present := pre.value(path)
			fr.SetPre(path, val, present)
		}
	}
	fetchPost := func(env *lazyEnv, p string) error {
		if env == pre {
			// Defense against a plan bug: every pre-context path of an
			// active consequent was topped up before the forward.
			return fmt.Errorf("monitor: pre-state path %s demanded after forward", p)
		}
		if frame != nil && !frame[p] && pre.fetched(p) {
			val, present := pre.value(p)
			env.set(p, val, present)
			v.ReusedPaths++
			return nil
		}
		return f.fetchPost(env, p)
	}
	var demandPost func(*contract.Demand) error
	if useCompiled {
		demandPost = func(d *contract.Demand) error {
			if d.Pre {
				// Mirrors the env == pre guard above: every pre-context
				// path of an active consequent was topped up already.
				return fmt.Errorf("monitor: pre-state path %s demanded after forward", d.Path)
			}
			return fetchPost(post, d.Path)
		}
	}
	sawUndef := false
	postOK := true
	for _, pc := range plan.Post {
		ante := anteVals[pc.Index]
		anteBool, anteTrue := boolValue(ante)
		if anteBool && !anteTrue {
			if useFacts && facts.Post[pc.Index].Vacuous() {
				// The skip is ordinary Kleene vacuity, but the antecedent
				// was decided statically — attribute the avoided clause.
				v.FactsSkipped++
				m.factsPruned.Add(factsPrunedPostClause, 1)
			}
			continue // antecedent false: implication holds, nothing to read
		}
		if !anteBool && ante.Kind != ocl.KindUndefined {
			// The eager engine feeds the antecedent through its boolean
			// connective, which rejects non-boolean kinds.
			postEvalDur = time.Since(postStart) - f.postDur
			return finish(Error, fmt.Sprintf("post-condition evaluation: %v",
				&ocl.EvalError{Expr: c.Post, Message: "boolean operator applied to " + ante.Kind.String()}))
		}
		var consVal ocl.Value
		var err error
		if useCompiled {
			fr.BeginClause()
			consVal, err = evalProgram(comp.PostProgram(pc.Index), fr, demandPost)
			v.DemandedPaths += fr.TakeDemands()
		} else {
			postExpr := c.Cases[pc.Index].Post
			if useFacts {
				postExpr = facts.Post[pc.Index].Folded
			}
			pre.beginClause()
			post.beginClause()
			consVal, err = evalDemand(postExpr, postCtx, fetchPost)
			v.DemandedPaths += pre.takeDemands() + post.takeDemands()
		}
		if err != nil {
			postEvalDur = time.Since(postStart) - f.postDur
			var fe *fetchError
			if errors.As(err, &fe) {
				if m.failPolicy == FailOpen || m.failPolicy == Degrade {
					return finish(Unverified, fmt.Sprintf(
						"post-state snapshot failed (%s): %v", m.failPolicy, fe.err))
				}
				return finish(Error, fmt.Sprintf("post-state snapshot: %v", fe.err))
			}
			return finish(Error, fmt.Sprintf("post-condition evaluation: %v", err))
		}
		consBool, consTrue := boolValue(consVal)
		if !consBool && consVal.Kind != ocl.KindUndefined {
			postEvalDur = time.Since(postStart) - f.postDur
			return finish(Error, fmt.Sprintf("post-condition evaluation: %v",
				&ocl.EvalError{Expr: c.Post, Message: "boolean operator applied to " + consVal.Kind.String()}))
		}
		// Kleene implication given the antecedent is true or undefined:
		//   true  => X  is X;  undef => X  is true only when X is true.
		switch {
		case consBool && consTrue:
			// implication true
		case anteTrue && consBool: // consequent definitely false
			postOK = false
		default:
			sawUndef = true
		}
		if !postOK {
			break // the eager conjunction short-circuits on definite false
		}
	}
	postEvalDur = time.Since(postStart) - f.postDur
	if sawUndef {
		// EvalBool maps an Undefined post-condition to false.
		postOK = false
	}
	v.PostSnapshot = post.vals
	v.PostOK = postOK
	if !postOK {
		return finish(ViolationPostcondition, fmt.Sprintf(
			"post-condition of %s failed: %s", c.Trigger, c.Post))
	}
	return finish(OK, "")
}
