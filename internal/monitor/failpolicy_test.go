package monitor

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"cloudmon/internal/contract"
	"cloudmon/internal/ocl"
	"cloudmon/internal/paper"
	"cloudmon/internal/uml"
)

// switchProvider serves a fixed snapshot until fail is flipped, then
// errors — the shape of a cloud that was healthy and went down.
type switchProvider struct {
	env  ocl.MapEnv
	fail atomic.Bool
}

func (p *switchProvider) Snapshot(_ *RequestContext, paths []string) (ocl.MapEnv, error) {
	if p.fail.Load() {
		return nil, errFake
	}
	out := make(ocl.MapEnv, len(paths))
	for _, path := range paths {
		if v, ok := p.env[path]; ok {
			out[path] = v
		}
	}
	return out, nil
}

// prePostProvider serves the pre-state and errors on post-state reads.
type prePostProvider struct {
	pre   ocl.MapEnv
	calls int
}

func (p *prePostProvider) Snapshot(ctx *RequestContext, paths []string) (ocl.MapEnv, error) {
	p.calls++
	if ctx.Phase == PhasePost {
		return nil, errFake
	}
	out := make(ocl.MapEnv, len(paths))
	for _, path := range paths {
		if v, ok := p.pre[path]; ok {
			out[path] = v
		}
	}
	return out, nil
}

// newPolicyMonitor is newMonitor with the degradation knobs exposed.
func newPolicyMonitor(t *testing.T, cfg Config) *Monitor {
	t.Helper()
	set, err := contract.Generate(paper.CinderModel())
	if err != nil {
		t.Fatal(err)
	}
	cfg.Contracts = set
	cfg.Routes = testRoutes()
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func testRoutes() []Route {
	return []Route{
		{Trigger: uml.Trigger{Method: uml.GET, Resource: "volume"},
			Pattern: "/projects/{project_id}/volumes/{volume_id}",
			Backend: "/volume/v3/{project_id}/volumes/{volume_id}"},
		{Trigger: uml.Trigger{Method: uml.DELETE, Resource: "volume"},
			Pattern: "/projects/{project_id}/volumes/{volume_id}",
			Backend: "/volume/v3/{project_id}/volumes/{volume_id}"},
	}
}

func doGet(t *testing.T, m *Monitor) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, "/projects/p1/volumes/v1", nil)
	req.Header.Set("X-Auth-Token", "tok")
	rec := httptest.NewRecorder()
	m.ServeHTTP(rec, req)
	return rec
}

func TestFailPolicyString(t *testing.T) {
	cases := map[FailPolicy]string{FailClosed: "fail-closed", FailOpen: "fail-open", Degrade: "degrade"}
	for p, want := range cases {
		if p.String() != want {
			t.Errorf("%d.String() = %q, want %q", p, p.String(), want)
		}
	}
	if Unverified.String() != "unverified" {
		t.Errorf("Unverified.String() = %q", Unverified.String())
	}
}

func TestNewRejectsDegradeWithoutCache(t *testing.T) {
	set, err := contract.Generate(paper.CinderModel())
	if err != nil {
		t.Fatal(err)
	}
	_, err = New(Config{
		Contracts:  set,
		Routes:     testRoutes(),
		Provider:   &fakeProvider{},
		Forward:    &fakeForwarder{},
		FailPolicy: Degrade,
	})
	if err == nil || !strings.Contains(err.Error(), "PreStateCacheTTL") {
		t.Fatalf("New accepted Degrade without a cache: err = %v", err)
	}
}

func TestFailOpenForwardsUnverified(t *testing.T) {
	p := &switchProvider{}
	p.fail.Store(true)
	f := &fakeForwarder{status: 200}
	m := newPolicyMonitor(t, Config{Provider: p, Forward: f, FailPolicy: FailOpen})
	rec := doGet(t, m)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d, want 200 (fail-open serves the backend response)", rec.Code)
	}
	v := lastVerdict(t, m)
	if v.Outcome != Unverified || !v.Forwarded {
		t.Fatalf("verdict = %s forwarded=%v, want unverified forwarded", v.Outcome, v.Forwarded)
	}
	if f.calls != 1 {
		t.Fatalf("forwarder called %d times, want 1", f.calls)
	}
}

func TestFailOpenForwardFailureIsError(t *testing.T) {
	p := &switchProvider{}
	p.fail.Store(true)
	f := &fakeForwarder{err: errFake}
	m := newPolicyMonitor(t, Config{Provider: p, Forward: f, FailPolicy: FailOpen})
	rec := doGet(t, m)
	if rec.Code != http.StatusBadGateway {
		t.Fatalf("status %d, want 502 (nothing to serve when the forward also fails)", rec.Code)
	}
	if v := lastVerdict(t, m); v.Outcome != Error || v.Forwarded {
		t.Fatalf("verdict = %s forwarded=%v, want error not-forwarded", v.Outcome, v.Forwarded)
	}
}

func TestFailClosedNeverForwardsOnSnapshotError(t *testing.T) {
	p := &switchProvider{}
	p.fail.Store(true)
	f := &fakeForwarder{status: 200}
	m := newPolicyMonitor(t, Config{Provider: p, Forward: f}) // default policy
	rec := doGet(t, m)
	if rec.Code != http.StatusBadGateway {
		t.Fatalf("status %d, want 502", rec.Code)
	}
	if f.calls != 0 {
		t.Fatalf("fail-closed forwarded %d requests on snapshot error", f.calls)
	}
	if v := lastVerdict(t, m); v.Outcome != Error {
		t.Fatalf("verdict = %s, want error", v.Outcome)
	}
}

func TestDegradeColdCacheFailsClosed(t *testing.T) {
	p := &switchProvider{}
	p.fail.Store(true)
	f := &fakeForwarder{status: 200}
	m := newPolicyMonitor(t, Config{
		Provider: p, Forward: f,
		FailPolicy:       Degrade,
		PreStateCacheTTL: 50 * time.Millisecond,
	})
	rec := doGet(t, m)
	if rec.Code != http.StatusBadGateway {
		t.Fatalf("status %d, want 502 (cold cache degrades to fail-closed)", rec.Code)
	}
	if f.calls != 0 {
		t.Fatal("degrade with a cold cache forwarded")
	}
	if v := lastVerdict(t, m); v.Outcome != Error || v.DegradedPre {
		t.Fatalf("verdict = %s degraded=%v, want error not-degraded", v.Outcome, v.DegradedPre)
	}
}

func TestDegradeServesCachedPre(t *testing.T) {
	p := &switchProvider{env: env(1, 10, "available", "admin")}
	f := &fakeForwarder{status: 200}
	m := newPolicyMonitor(t, Config{
		Provider: p, Forward: f,
		Level:            CheckPreOnly,
		FailPolicy:       Degrade,
		PreStateCacheTTL: 20 * time.Millisecond,
		DegradeTTL:       10 * time.Second,
	})

	// Healthy read warms the cache.
	if rec := doGet(t, m); rec.Code != http.StatusOK {
		t.Fatalf("warm read status %d, want 200", rec.Code)
	}
	if v := lastVerdict(t, m); v.Outcome != OK || v.DegradedPre {
		t.Fatalf("warm verdict = %s degraded=%v", v.Outcome, v.DegradedPre)
	}

	// Let the read cache lapse, then break the cloud: the live snapshot
	// fails and the degrade window serves the stale pre-state.
	time.Sleep(30 * time.Millisecond)
	p.fail.Store(true)
	rec := doGet(t, m)
	if rec.Code != http.StatusOK {
		t.Fatalf("degraded read status %d, want 200", rec.Code)
	}
	v := lastVerdict(t, m)
	if v.Outcome != OK || !v.DegradedPre || !v.Forwarded {
		t.Fatalf("degraded verdict = %s degraded=%v forwarded=%v, want ok degraded forwarded",
			v.Outcome, v.DegradedPre, v.Forwarded)
	}
}

func TestDegradeRefusesInvalidatedCache(t *testing.T) {
	p := &switchProvider{env: env(2, 10, "available", "admin")}
	f := &fakeForwarder{status: 204}
	m := newPolicyMonitor(t, Config{
		Provider: p, Forward: f,
		Level:            CheckPreOnly,
		FailPolicy:       Degrade,
		PreStateCacheTTL: time.Hour,
		DegradeTTL:       time.Hour,
	})

	// Warm, then forward a write: the generation bump must make the
	// cached pre-state unusable no matter how fresh it is.
	if rec := doGet(t, m); rec.Code != http.StatusNoContent {
		t.Fatalf("warm read status %d, want the forwarder's 204", rec.Code)
	}
	req := httptest.NewRequest(http.MethodDelete, "/projects/p1/volumes/v1", nil)
	req.Header.Set("X-Auth-Token", "tok")
	m.ServeHTTP(httptest.NewRecorder(), req)

	p.fail.Store(true)
	rec := doGet(t, m)
	if rec.Code != http.StatusBadGateway {
		t.Fatalf("status %d, want 502 (invalidated cache must not be degraded onto)", rec.Code)
	}
	if v := lastVerdict(t, m); v.Outcome != Error || v.DegradedPre {
		t.Fatalf("verdict = %s degraded=%v, want error not-degraded", v.Outcome, v.DegradedPre)
	}
}

func TestPostSnapshotErrorPerPolicy(t *testing.T) {
	cases := []struct {
		policy  FailPolicy
		ttl     time.Duration
		want    Outcome
		wantRec int
	}{
		{FailClosed, 0, Error, http.StatusBadGateway},
		{FailOpen, 0, Unverified, http.StatusNoContent},
		{Degrade, time.Minute, Unverified, http.StatusNoContent},
	}
	for _, tc := range cases {
		t.Run(tc.policy.String(), func(t *testing.T) {
			p := &prePostProvider{pre: env(2, 10, "available", "admin")}
			f := &fakeForwarder{status: 204}
			m := newPolicyMonitor(t, Config{
				Provider: p, Forward: f,
				FailPolicy:       tc.policy,
				PreStateCacheTTL: tc.ttl,
			})
			rec := doDelete(t, m)
			if rec.Code != tc.wantRec {
				t.Fatalf("status %d, want %d", rec.Code, tc.wantRec)
			}
			v := lastVerdict(t, m)
			if v.Outcome != tc.want {
				t.Fatalf("verdict = %s (detail %q), want %s", v.Outcome, v.Detail, tc.want)
			}
			if !v.Forwarded {
				t.Fatal("post-snapshot failure implies the request was forwarded")
			}
		})
	}
}
