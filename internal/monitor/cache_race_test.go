package monitor

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cloudmon/internal/ocl"
)

// counterProvider snapshots a monotonically increasing counter — a stand-in
// for cloud state that concurrent writes keep advancing.
type counterProvider struct {
	n atomic.Int64
}

func (p *counterProvider) Snapshot(_ *RequestContext, paths []string) (ocl.MapEnv, error) {
	v := ocl.IntVal(int(p.n.Load()))
	out := make(ocl.MapEnv, len(paths))
	for _, path := range paths {
		out[path] = v
	}
	return out, nil
}

// TestCacheGenerationRace races the pre-state cache's generation
// invalidation against concurrent forwarded writes. Writers advance the
// cloud counter and then bump the project generation (exactly what a
// forwarded write does); readers record the writers' published progress
// before snapshotting and demand the served pre-state is at least that
// fresh — a stale value surviving a generation bump is the bug the
// per-entry generation stamp exists to prevent. Run with -race.
func TestCacheGenerationRace(t *testing.T) {
	p := &counterProvider{}
	m := newPolicyMonitor(t, Config{
		Provider:         p,
		Forward:          &fakeForwarder{status: 200},
		PreStateCacheTTL: time.Hour, // entries never expire; only generations invalidate
	})
	paths := []string{"quota_sets.volume"}
	reqCtx := &RequestContext{Params: map[string]string{"project_id": "p1"}, Token: "tok"}

	// progress publishes the counter value whose invalidation has
	// completed: any snapshot starting after must serve >= progress.
	var progress atomic.Int64
	const (
		writers    = 4
		readers    = 4
		iterations = 2000
	)
	var wg sync.WaitGroup
	errs := make(chan string, readers)

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iterations; i++ {
				v := p.n.Add(1)
				m.cache.invalidateProject("p1")
				// Publish monotonically: a racing slower writer must not
				// roll the floor back.
				for {
					cur := progress.Load()
					if v <= cur || progress.CompareAndSwap(cur, v) {
						break
					}
				}
			}
		}()
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iterations; i++ {
				floor := progress.Load()
				env, _, err := m.preSnapshot(reqCtx, paths)
				if err != nil {
					errs <- "snapshot error: " + err.Error()
					return
				}
				v, ok := env["quota_sets.volume"]
				if !ok {
					errs <- "snapshot missing path"
					return
				}
				if int64(v.Int) < floor {
					errs <- "stale pre-state served across a generation bump"
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Fatal(msg)
	}
}
