// Package monitor implements the paper's Cloud Monitor (CM): a proxy
// interface on top of a private cloud that verifies every intercepted
// request against the contracts generated from the design models
// (Figure 2's workflow).
//
// For each request the monitor:
//
//  1. snapshots the pre-state — only the navigation-path values the
//     method's contract mentions ("a few bits of storage per method"),
//  2. evaluates the pre-condition on the snapshot,
//  3. forwards the request to the private cloud (in Enforce mode only if
//     the pre-condition holds),
//  4. snapshots the post-state and evaluates the post-condition with the
//     pre-state bound to pre()/@pre references,
//  5. returns the cloud's response, or an invalid-response document
//     describing the contract violation.
//
// Two modes cover the paper's use cases (Section III.B): Enforce protects a
// live cloud by blocking requests whose pre-condition fails; Observe
// forwards everything and acts as a conformance test oracle — the mode the
// mutation campaign uses, where a request the contract forbids but the
// cloud accepts reveals a privilege-escalation fault.
package monitor

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"cloudmon/internal/contract"
	"cloudmon/internal/httpkit"
	"cloudmon/internal/obs"
	"cloudmon/internal/ocl"
	"cloudmon/internal/uml"
)

// Mode selects the monitor's behaviour on pre-condition failure.
type Mode int

// Monitor modes.
const (
	// Enforce blocks requests whose pre-condition fails (proxy
	// protection; the workflow of Figure 2).
	Enforce Mode = iota + 1
	// Observe forwards every request and reports contract violations —
	// the test-oracle mode used for mutation analysis.
	Observe
)

// String returns the mode name.
func (m Mode) String() string {
	switch m {
	case Enforce:
		return "enforce"
	case Observe:
		return "observe"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// FailPolicy decides what a verdict means when the monitor cannot
// snapshot cloud state (cloud flaky, slow, or shed by the circuit
// breaker) — the degradation semantics a proxy monitor must make
// explicit, because "no snapshot" is otherwise silently either an outage
// amplifier or an enforcement hole.
type FailPolicy int

// Fail policies.
const (
	// FailClosed blocks the request when a snapshot fails: nothing
	// unverifiable reaches the cloud. Availability is sacrificed for
	// enforcement (the default, and the paper's implicit behaviour).
	FailClosed FailPolicy = iota + 1
	// FailOpen forwards the request anyway and records the verdict as
	// Unverified: availability is preserved, the enforcement gap is made
	// auditable instead of silent.
	FailOpen
	// Degrade falls back to the pre-state read cache (fresh within its
	// TTL and generation) when the live snapshot fails; with no usable
	// cached state it behaves like FailClosed. Requires the pre-state
	// cache to be enabled.
	Degrade
)

// String returns the policy name.
func (p FailPolicy) String() string {
	switch p {
	case FailClosed:
		return "fail-closed"
	case FailOpen:
		return "fail-open"
	case Degrade:
		return "degrade"
	}
	return fmt.Sprintf("FailPolicy(%d)", int(p))
}

// Outcome classifies a monitored request.
type Outcome int

// Outcomes.
const (
	// OK: contract satisfied end to end.
	OK Outcome = iota + 1
	// Blocked: pre-condition failed in Enforce mode; not forwarded.
	Blocked
	// Rejected: pre-condition failed and the cloud also rejected the
	// request (Observe mode) — correct behaviour.
	Rejected
	// ViolationForbiddenAccepted: the contract forbids the request but
	// the cloud accepted it — privilege escalation or a broken guard.
	ViolationForbiddenAccepted
	// ViolationAllowedRejected: the contract permits the request but the
	// cloud rejected it — an authorized user was denied access.
	ViolationAllowedRejected
	// ViolationPostcondition: the request was permitted and accepted but
	// the observed effect contradicts the post-condition.
	ViolationPostcondition
	// Error: the monitor itself failed (cloud unreachable, evaluation
	// error); no verdict about the cloud is implied.
	Error
	// Unverified: a snapshot failed but the fail policy let the request
	// through (FailOpen, or Degrade without usable cached state for the
	// post-check) — the request was forwarded and answered, but the
	// contract was not (fully) verified. Auditors must treat these as
	// gaps, not as passes.
	Unverified
)

// String returns the outcome name.
func (o Outcome) String() string {
	switch o {
	case OK:
		return "ok"
	case Blocked:
		return "blocked"
	case Rejected:
		return "rejected"
	case ViolationForbiddenAccepted:
		return "violation:forbidden-accepted"
	case ViolationAllowedRejected:
		return "violation:allowed-rejected"
	case ViolationPostcondition:
		return "violation:postcondition"
	case Error:
		return "error"
	case Unverified:
		return "unverified"
	}
	return fmt.Sprintf("Outcome(%d)", int(o))
}

// IsViolation reports whether the outcome is a contract violation.
func (o Outcome) IsViolation() bool {
	switch o {
	case ViolationForbiddenAccepted, ViolationAllowedRejected, ViolationPostcondition:
		return true
	}
	return false
}

// Snapshot phases, carried on RequestContext so providers (and test fakes)
// can tell a pre-state read from a post-state read — under lazy evaluation
// each phase may issue several Snapshot calls, so call counting no longer
// identifies the phase.
const (
	PhasePre  = "pre"
	PhasePost = "post"
)

// RequestContext describes one intercepted request to the state provider.
type RequestContext struct {
	// Method and Resource identify the contract trigger.
	Method   uml.HTTPMethod
	Resource string
	// Params are the URI captures (e.g. project_id, volume_id).
	Params map[string]string
	// Phase is PhasePre or PhasePost: which snapshot of the monitoring
	// workflow this read belongs to.
	Phase string
	// Token is the requester's X-Auth-Token.
	Token string
}

// StateProvider resolves the navigation paths a contract mentions to
// current cloud state for a given request. Implementations query the
// monitored cloud over REST (see package osbinding); tests use fakes.
// Paths that navigate through missing resources must resolve to
// ocl.Undefined; only infrastructure failures should return an error.
type StateProvider interface {
	Snapshot(ctx *RequestContext, paths []string) (ocl.MapEnv, error)
}

// Forwarder sends the (possibly rewritten) request to the private cloud
// and returns its response. The default implementation rewrites the URI by
// the route's backend template and uses an http.Client.
type Forwarder interface {
	Forward(r *http.Request, route *Route, params map[string]string) (*BackendResponse, error)
}

// BackendResponse is the captured cloud response.
type BackendResponse struct {
	StatusCode int
	Header     http.Header
	Body       []byte
}

// Succeeded reports whether the status code is 2xx.
func (r *BackendResponse) Succeeded() bool {
	return r.StatusCode >= 200 && r.StatusCode <= 299
}

// Route binds a contract to URI patterns: Pattern is the monitor-facing
// URI (from the resource model); Backend is the cloud URI template with
// the same `{name}` placeholders.
type Route struct {
	Trigger uml.Trigger
	Pattern string
	Backend string
}

// Verdict records the monitoring result for one request.
type Verdict struct {
	Trigger   uml.Trigger
	Outcome   Outcome
	PreOK     bool
	PostOK    bool
	Forwarded bool
	// DegradedPre marks a verdict whose pre-state came from the cache
	// after the live snapshot failed (FailPolicy Degrade).
	DegradedPre bool
	// BackendStatus is the cloud's response code (0 when not forwarded).
	BackendStatus int
	// SecReqs are the security requirements attached to the contract.
	SecReqs []string
	// MatchedSecReqs are the requirements of the transition cases whose
	// pre-condition held — the coverage signal of Section IV.C.
	MatchedSecReqs []string
	// MatchedTransitions identifies the transition cases whose
	// pre-condition held, as "From->To" labels — model-element coverage
	// for the behavioral diagram.
	MatchedTransitions []string
	// PreSnapshot and PostSnapshot are the state the verdict was computed
	// from, for fault localization.
	PreSnapshot  ocl.MapEnv
	PostSnapshot ocl.MapEnv
	// Detail is a human-readable explanation for violations and errors.
	Detail string
	// FailingClause is the contract clause that decided a negative
	// verdict: the pre-condition for blocked/rejected/forbidden-accepted
	// outcomes, the post-condition for effect violations.
	FailingClause string
	// ContractDigest is the content digest of the contract that produced
	// the verdict (contract.Contract.Digest) — the binding evidence replay
	// checks before comparing outcomes.
	ContractDigest string
	// FetchedPaths counts the state-path reads this verdict issued to the
	// provider (pre and post phases; cache hits and coalesced waits are
	// free and not counted).
	FetchedPaths int
	// ReusedPaths counts post-state paths served from the pre-state
	// snapshot because no active transition's effect could touch them
	// (lazy evaluation only).
	ReusedPaths int
	// DemandedPaths counts the per-clause path demands the evaluator
	// issued (lazy engine only; eager leaves it zero). A path demanded by
	// two clauses counts twice — the number measures evaluation work, not
	// fetch traffic, so it shows what fact-based pruning saves even when
	// every path was already fetched by an earlier clause.
	DemandedPaths int
	// FactsSkipped counts the clause evaluations a compile-time fact
	// decided without full evaluation: statically valued disjuncts,
	// witness-based sibling skips, statically vacuous post implications.
	FactsSkipped int
	// Elapsed is the total monitoring duration. For late verdicts
	// (PostAsync) it spans from request arrival to the deferred
	// post-evaluation's completion — queue wait included.
	Elapsed time.Duration
	// Late marks a verdict whose post phase ran asynchronously, after the
	// response had already returned to the client (PostAsync).
	Late bool
	// Shed marks an Unverified verdict recorded because the async post
	// queue was saturated under the shed backpressure policy: the
	// response stood, the post phase was abandoned, and this verdict is
	// the accounted (never silent) record of that.
	Shed bool
	// Returned is when the response was handed back to the client (late
	// verdicts only; zero for synchronous ones).
	Returned time.Time
	// DetectionLag is verdict time minus response-return time (late
	// verdicts only) — by construction non-negative, the regression
	// tests pin it.
	DetectionLag time.Duration
	// Trace holds the per-stage pipeline timings (route match, snapshots,
	// evaluations, forward). Stages the request never reached are zero.
	Trace obs.Trace

	// seq is the global arrival order, assigned by record(); Log() sorts
	// the sharded slices by it.
	seq uint64
}

// CheckLevel selects how much of the contract the monitor verifies per
// request — the ablation axis of the evaluation (a pre-only monitor halves
// the state reads but cannot catch lost-effect faults).
type CheckLevel int

// Check levels.
const (
	// CheckFull verifies pre- and post-conditions (the paper's workflow).
	CheckFull CheckLevel = iota + 1
	// CheckPreOnly verifies only pre-conditions: no post-state snapshot,
	// no effect verification.
	CheckPreOnly
)

// String returns the level name.
func (l CheckLevel) String() string {
	switch l {
	case CheckFull:
		return "full"
	case CheckPreOnly:
		return "pre-only"
	}
	return fmt.Sprintf("CheckLevel(%d)", int(l))
}

// Config assembles a Monitor.
type Config struct {
	// Contracts are the generated contracts to enforce.
	Contracts *contract.Set
	// Routes map contract triggers to URI patterns. Required.
	Routes []Route
	// Provider snapshots cloud state. Required.
	Provider StateProvider
	// Forward sends requests to the cloud. Required.
	Forward Forwarder
	// Mode defaults to Enforce.
	Mode Mode
	// Level defaults to CheckFull.
	Level CheckLevel
	// Eval selects the evaluation engine (defaults to EvalCompiled, the
	// closure-chain programs over pooled slot frames; EvalLazy re-walks
	// the OCL trees clause by clause; EvalEager restores the
	// whole-contract snapshot workflow).
	Eval EvalMode
	// NoPostReuse disables the lazy post-check's effect-frame reuse of
	// pre-state values: every demanded post path is re-fetched from the
	// cloud. Reuse assumes the cloud honors the model's effect frames;
	// differential tests turn it off to compare against arbitrary states.
	NoPostReuse bool
	// NoFacts disables the plan's compile-time facts artifact (static
	// clause values, witness-based sibling skips, constant-folded clause
	// forms): the lazy engine evaluates every disjunct in full. Facts
	// change no verdict — the differential suite proves field-for-field
	// equality — only the work a verdict costs.
	NoFacts bool
	// FactsDebug re-derives every fact-decided clause value the slow way
	// and counts disagreements in cloudmon_facts_mismatch_total — a
	// soundness tripwire for development, not for production paths (the
	// re-check fetches the state the fact avoided fetching).
	FactsDebug bool
	// FailPolicy decides the verdict when a state snapshot fails
	// (defaults to FailClosed). Degrade additionally requires
	// PreStateCacheTTL > 0.
	FailPolicy FailPolicy
	// MaxLog bounds the in-memory verdict log (default 1024).
	MaxLog int
	// OnVerdict, if set, is invoked synchronously with every recorded
	// verdict — the hook for NDJSON verdict streams and alerting.
	OnVerdict func(Verdict)
	// Audit, if set, receives an obs.AuditRecord for every verdict that
	// is not a clean pass (blocked, rejected, violations, errors,
	// unverified forwards) — the durable, SecReq-indexed trail
	// cmd/auditctl queries. OK verdicts are never audited, so the hot
	// path stays write-free under healthy traffic.
	Audit *obs.AuditLog
	// PreStateCacheTTL, when positive, enables a short-TTL pre-state read
	// cache keyed by (path, token, URI params). Cached values are
	// invalidated whenever the monitor forwards a write (non-GET) for the
	// same project, so monitor-mediated traffic stays coherent; writes
	// that bypass the monitor are only seen after the TTL expires. Leave
	// zero for strict per-request snapshots (the paper's workflow).
	PreStateCacheTTL time.Duration
	// DegradeTTL bounds how stale a cached pre-state the Degrade fail
	// policy may substitute for a failed live snapshot. It is
	// deliberately wider than PreStateCacheTTL — within the read-cache
	// TTL a live snapshot would not have been attempted at all — but
	// entries invalidated by a forwarded write are never served
	// regardless of age. Default 10 × PreStateCacheTTL.
	DegradeTTL time.Duration
	// Post selects when post-conditions are verified (defaults to
	// PostSync). PostAsync returns the cloud response as soon as the
	// forward completes and verifies the effect on a bounded worker
	// queue, emitting late verdicts with detection-lag accounting.
	// Requires a demand-driven engine (EvalCompiled or EvalLazy).
	Post PostMode
	// PostQueueCap bounds the async post queue (default 1024).
	PostQueueCap int
	// PostWorkers sizes the async post worker pool (default 4).
	PostWorkers int
	// PostBackpressure decides what a saturated queue does to the
	// response path (defaults to BackpressureBlock).
	PostBackpressure BackpressurePolicy
	// InstanceID names this monitor within a fleet. It is stamped on
	// every audit record (obs.AuditRecord.Instance) so evidence packs cut
	// from a fleet's merged trails attribute each verdict to the engine
	// that produced it. Empty for single-instance deployments.
	InstanceID string
	// OnInvalidate, if set, is invoked synchronously with the project id
	// whenever the monitor forwards a write (non-GET) — the hook the
	// fleet's cross-instance invalidation bus hangs off: an instance that
	// mutates state for a project it does not own posts a generation bump
	// to the owner. The local pre-state cache is always invalidated first,
	// regardless of this hook.
	OnInvalidate func(project string)
}

// Monitor is the cloud monitor. Safe for concurrent use.
type Monitor struct {
	contracts   *contract.Set
	routes      []compiledRoute
	byMethod    map[string][]*compiledRoute
	provider    StateProvider
	forward     Forwarder
	mode        Mode
	level       CheckLevel
	eval        EvalMode
	noPostReuse bool
	noFacts     bool
	factsDebug  bool
	failPolicy  FailPolicy
	degradeTTL  time.Duration
	onVerdict   func(Verdict)
	cache       *snapshotCache
	audit       *obs.AuditLog
	instanceID  string
	onInvalid   func(project string)
	// flights coalesces identical concurrent pre-state GETs (lazy engine).
	flights *flightGroup
	// post/postBackpressure/asyncPost form the deferred post-verification
	// pipeline (asyncpost.go); asyncPost is nil under PostSync.
	post             PostMode
	postBackpressure BackpressurePolicy
	asyncPost        *asyncPost

	// The verdict log is sharded to keep the record() critical section
	// off the proxy's critical path under concurrent load; verdicts
	// carry a global sequence number so Log() can restore arrival order.
	seq      atomic.Uint64
	shards   [logShards]logShard
	maxLog   int
	shardMax int

	// Counters and per-stage latency histograms live in lock-free obs
	// types — the single source of truth ResetLog, Outcomes(), the
	// /metrics endpoint and loadmon -verify all read (previously each
	// shard kept its own maps, which only agreed with the log by
	// convention).
	tracer        *obs.Tracer
	outcomes      [numOutcomes]obs.Counter
	coverage      obs.KeyedCounter
	transCoverage obs.KeyedCounter
	// pathsFetched distributes per-request provider path reads; coalesced
	// counts pre-state fetches that joined another request's flight.
	pathsFetched *obs.Histogram
	coalesced    obs.Counter
	// factsPruned counts clause evaluations decided by compile-time facts,
	// keyed by pruning kind (pre-clause, pre-sibling, post-clause);
	// factsMismatch counts FactsDebug re-checks that disagreed with a
	// fact-assigned value — any non-zero value is a soundness bug.
	factsPruned   obs.KeyedCounter
	factsMismatch obs.Counter
}

// numOutcomes sizes the outcome counter array (outcomes are 1-based).
const numOutcomes = int(Unverified) + 1

// logShards is the number of verdict-log shards (power of two).
const logShards = 8

// logShard holds one slice of the verdict log. Once the shard is full it
// becomes a circular buffer: next is the index of the oldest entry (the
// one the next verdict overwrites). Log() sorts by sequence number, so
// in-shard rotation never has to shift elements.
type logShard struct {
	mu   sync.Mutex
	log  []Verdict
	next int
}

type compiledRoute struct {
	route    Route
	segments []string
	contract *contract.Contract
	// paths is the contract's StatePaths, computed once at build time so
	// the per-request hot path never re-walks the formulas.
	paths []string
	// plan is the contract's compiled evaluation plan (lazy engine).
	plan *contract.Plan
	// digest is the contract's content digest, computed once at build time
	// and stamped on every verdict (and audit record) the route produces.
	digest string
}

var _ http.Handler = (*Monitor)(nil)

// New builds a monitor from the configuration.
func New(cfg Config) (*Monitor, error) {
	if cfg.Contracts == nil {
		return nil, fmt.Errorf("monitor: missing contracts")
	}
	if cfg.Provider == nil {
		return nil, fmt.Errorf("monitor: missing state provider")
	}
	if cfg.Forward == nil {
		return nil, fmt.Errorf("monitor: missing forwarder")
	}
	if len(cfg.Routes) == 0 {
		return nil, fmt.Errorf("monitor: no routes")
	}
	mode := cfg.Mode
	if mode == 0 {
		mode = Enforce
	}
	level := cfg.Level
	if level == 0 {
		level = CheckFull
	}
	policy := cfg.FailPolicy
	if policy == 0 {
		policy = FailClosed
	}
	eval := cfg.Eval
	if eval == 0 {
		eval = EvalCompiled
	}
	if policy == Degrade && cfg.PreStateCacheTTL <= 0 {
		return nil, fmt.Errorf("monitor: fail policy %s requires PreStateCacheTTL > 0", policy)
	}
	post := cfg.Post
	if post == 0 {
		post = PostSync
	}
	backpressure := cfg.PostBackpressure
	if backpressure == 0 {
		backpressure = BackpressureBlock
	}
	if post == PostAsync && eval == EvalEager {
		return nil, fmt.Errorf("monitor: post mode %s requires the compiled or lazy engine", post)
	}
	if post == PostAsync && level == CheckPreOnly {
		return nil, fmt.Errorf("monitor: post mode %s is meaningless at check level %s", post, level)
	}
	maxLog := cfg.MaxLog
	if maxLog <= 0 {
		maxLog = 1024
	}
	m := &Monitor{
		contracts:    cfg.Contracts,
		provider:     cfg.Provider,
		forward:      cfg.Forward,
		mode:         mode,
		level:        level,
		eval:         eval,
		noPostReuse:  cfg.NoPostReuse,
		noFacts:      cfg.NoFacts,
		factsDebug:   cfg.FactsDebug,
		failPolicy:   policy,
		onVerdict:    cfg.OnVerdict,
		audit:        cfg.Audit,
		instanceID:   cfg.InstanceID,
		onInvalid:    cfg.OnInvalidate,
		maxLog:       maxLog,
		shardMax:     (maxLog + logShards - 1) / logShards,
		tracer:       obs.NewTracer(),
		flights:      newFlightGroup(),
		pathsFetched: obs.NewCountHistogram(),

		post:             post,
		postBackpressure: backpressure,
	}
	if post == PostAsync {
		queueCap := cfg.PostQueueCap
		if queueCap <= 0 {
			queueCap = 1024
		}
		workers := cfg.PostWorkers
		if workers <= 0 {
			workers = 4
		}
		m.asyncPost = newAsyncPost(m, queueCap, workers)
	}
	if m.shardMax < 1 {
		m.shardMax = 1
	}
	if cfg.PreStateCacheTTL > 0 {
		m.cache = newSnapshotCache(cfg.PreStateCacheTTL)
		m.degradeTTL = cfg.DegradeTTL
		if m.degradeTTL <= 0 {
			m.degradeTTL = 10 * cfg.PreStateCacheTTL
		}
	}
	seen := make(map[string]bool, len(cfg.Routes))
	for _, r := range cfg.Routes {
		c, ok := cfg.Contracts.For(r.Trigger)
		if !ok {
			return nil, fmt.Errorf("monitor: route %s has no contract", r.Trigger)
		}
		key := string(r.Trigger.Method) + " " + r.Pattern
		if seen[key] {
			return nil, fmt.Errorf("monitor: conflicting routes for %s", key)
		}
		seen[key] = true
		m.routes = append(m.routes, compiledRoute{
			route:    r,
			segments: splitPath(r.Pattern),
			contract: c,
			paths:    c.StatePaths(),
			plan:     c.Plan(),
			digest:   c.Digest(),
		})
	}
	// Index the compiled routes by HTTP method so match() scans only the
	// method's candidates. Built after the append loop: pointers into
	// m.routes are stable from here on.
	m.byMethod = make(map[string][]*compiledRoute, 4)
	for i := range m.routes {
		cr := &m.routes[i]
		meth := string(cr.route.Trigger.Method)
		m.byMethod[meth] = append(m.byMethod[meth], cr)
	}
	return m, nil
}

// Mode returns the monitor's mode.
func (m *Monitor) Mode() Mode { return m.mode }

// Level returns the monitor's check level.
func (m *Monitor) Level() CheckLevel { return m.level }

// FailPolicy returns the monitor's snapshot-failure policy.
func (m *Monitor) FailPolicy() FailPolicy { return m.failPolicy }

// Eval returns the monitor's evaluation engine.
func (m *Monitor) Eval() EvalMode { return m.eval }

// Post returns the monitor's post-verification mode.
func (m *Monitor) Post() PostMode { return m.post }

// ServeHTTP implements the proxy entry point.
func (m *Monitor) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	// The trace lives on this frame: stage spans are written into the
	// array as the pipeline advances and folded into the per-stage
	// histograms once — no allocation, no locks on the hot path.
	var trace obs.Trace
	matchStart := time.Now()
	cr, params, ok := m.match(r)
	trace[obs.StageRouteMatch] = time.Since(matchStart)
	if !ok {
		httpkit.WriteError(w, httpkit.NotFound(
			"cloud monitor has no contract route for %s %s", r.Method, r.URL.Path))
		return
	}
	verdict, resp, cap := m.check(r, cr, params, &trace)
	if cap != nil {
		// PostAsync: the pre phase passed and the forward succeeded; the
		// post phase is deferred. The capture owns its trace copy from
		// here; the enqueue runs before the response is written so the
		// block policy's backpressure reaches the client and queue order
		// matches response order. Exactly one verdict is recorded per
		// request — by the worker, or as a shed Unverified here.
		cap.trace = trace
		cap.returned = time.Now()
		if !m.asyncPost.enqueue(cap, m.postBackpressure) {
			m.shedVerdict(cap)
		}
		writeBackend(w, resp)
		return
	}
	verdict.Trace = trace
	m.record(verdict)
	m.respond(w, verdict, resp)
}

// match finds the route for the request.
func (m *Monitor) match(r *http.Request) (*compiledRoute, map[string]string, bool) {
	segs := splitPath(r.URL.Path)
	for _, cr := range m.byMethod[r.Method] {
		if params, ok := matchSegments(cr.segments, segs); ok {
			if params == nil {
				params = map[string]string{}
			}
			return cr, params, true
		}
	}
	return nil, nil, false
}

// check runs the monitoring workflow for a matched request and returns the
// verdict plus the backend response (nil when not forwarded), dispatching
// to the configured evaluation engine. A non-nil capture (PostAsync only)
// means the verdict is deferred: the caller must enqueue or shed it.
func (m *Monitor) check(r *http.Request, cr *compiledRoute, params map[string]string, trace *obs.Trace) (Verdict, *BackendResponse, *postCapture) {
	if m.eval == EvalEager {
		v, resp := m.checkEager(r, cr, params, trace)
		return v, resp, nil
	}
	return m.checkLazy(r, cr, params, trace)
}

// checkEager is the whole-contract snapshot workflow: fetch every state
// path the contract mentions, evaluate, forward, fetch them all again,
// evaluate the post-condition. Stage boundaries are written into trace as
// the pipeline advances.
func (m *Monitor) checkEager(r *http.Request, cr *compiledRoute, params map[string]string, trace *obs.Trace) (Verdict, *BackendResponse) {
	start := time.Now()
	c := cr.contract
	reqCtx := &RequestContext{
		Method:   c.Trigger.Method,
		Resource: c.Trigger.Resource,
		Params:   params,
		Token:    r.Header.Get("X-Auth-Token"),
		Phase:    PhasePre,
	}
	v := Verdict{Trigger: c.Trigger, SecReqs: c.SecReqs, ContractDigest: cr.digest}
	finish := func(outcome Outcome, detail string) Verdict {
		v.Outcome = outcome
		v.Detail = detail
		v.Elapsed = time.Since(start)
		// A negative verdict names the clause that decided it — the
		// traceability link the audit trail indexes.
		switch outcome {
		case Blocked, Rejected, ViolationForbiddenAccepted, ViolationAllowedRejected:
			v.FailingClause = c.Pre.String()
		case ViolationPostcondition:
			v.FailingClause = c.Post.String()
		}
		return v
	}
	// Stage spans are boundary-to-boundary: one clock read per stage
	// transition (not two per stage), each span absorbing the thin glue
	// code that precedes its stage.
	now := start
	mark := func(stage obs.Stage) {
		t := time.Now()
		trace[stage] = t.Sub(now)
		now = t
	}

	paths := cr.paths
	pre, fetched, err := m.preSnapshot(reqCtx, paths)
	v.FetchedPaths = fetched
	if err != nil && m.failPolicy == Degrade {
		// Degrade: a recent cached pre-state (within the degrade window,
		// generation-valid) substitutes for the failed live snapshot;
		// without one the policy falls through to fail-closed below.
		if cached, ok := m.cachedPre(reqCtx, paths); ok {
			pre, err = cached, nil
			v.DegradedPre = true
		}
	}
	mark(obs.StagePreSnapshot)
	if err != nil {
		if m.failPolicy == FailOpen {
			// FailOpen: forward unverified rather than amplify the cloud's
			// flakiness into blocked requests; the gap is recorded.
			resp, ferr := m.forward.Forward(r, &cr.route, params)
			mark(obs.StageForward)
			if ferr != nil {
				return finish(Error, fmt.Sprintf(
					"pre-state snapshot: %v; forward to cloud: %v", err, ferr)), nil
			}
			v.Forwarded = true
			v.BackendStatus = resp.StatusCode
			m.forwardedWrite(r.Method, params["project_id"])
			return finish(Unverified, fmt.Sprintf("pre-state snapshot failed (fail-open): %v", err)), resp
		}
		// FailClosed (and Degrade with a cold cache): nothing
		// unverifiable reaches the cloud.
		return finish(Error, fmt.Sprintf("pre-state snapshot: %v", err)), nil
	}
	v.PreSnapshot = pre

	preOK, matched, matchedTrans, err := evalPre(c, pre)
	mark(obs.StagePreEval)
	if err != nil {
		return finish(Error, fmt.Sprintf("pre-condition evaluation: %v", err)), nil
	}
	v.PreOK = preOK
	v.MatchedSecReqs = matched
	v.MatchedTransitions = matchedTrans

	if !preOK && m.mode == Enforce {
		return finish(Blocked, "pre-condition failed; request not forwarded"), nil
	}

	resp, err := m.forward.Forward(r, &cr.route, params)
	mark(obs.StageForward)
	if err != nil {
		return finish(Error, fmt.Sprintf("forward to cloud: %v", err)), nil
	}
	v.Forwarded = true
	v.BackendStatus = resp.StatusCode
	// A forwarded write may change any state the project's contracts
	// read: drop the project's cached pre-state and tell the fleet hook.
	m.forwardedWrite(r.Method, params["project_id"])

	if !preOK {
		// Observe mode with a forbidden request: the cloud must reject it.
		if resp.Succeeded() {
			return finish(ViolationForbiddenAccepted, fmt.Sprintf(
				"contract forbids %s but cloud answered %d", c.Trigger, resp.StatusCode)), resp
		}
		return finish(Rejected, ""), resp
	}

	// Pre-condition held: the cloud must accept and produce the specified
	// effect.
	if !resp.Succeeded() {
		return finish(ViolationAllowedRejected, fmt.Sprintf(
			"contract permits %s but cloud answered %d", c.Trigger, resp.StatusCode)), resp
	}

	if m.level == CheckPreOnly {
		// Ablated monitor: skip the post-state snapshot and effect check.
		v.PostOK = true
		return finish(OK, ""), resp
	}

	reqCtx.Phase = PhasePost
	post, err := m.provider.Snapshot(reqCtx, paths)
	v.FetchedPaths += len(paths)
	mark(obs.StagePostSnapshot)
	if err != nil {
		// The response is already in hand; under FailOpen and Degrade the
		// missing effect-check is recorded as an enforcement gap rather
		// than a monitor error (Degrade cannot substitute a cache here —
		// the post-condition verifies this request's own effect).
		if m.failPolicy == FailOpen || m.failPolicy == Degrade {
			return finish(Unverified, fmt.Sprintf(
				"post-state snapshot failed (%s): %v", m.failPolicy, err)), resp
		}
		return finish(Error, fmt.Sprintf("post-state snapshot: %v", err)), resp
	}
	v.PostSnapshot = post
	postOK, err := ocl.EvalBool(c.Post, ocl.Context{Cur: post, Pre: pre})
	mark(obs.StagePostEval)
	if err != nil {
		return finish(Error, fmt.Sprintf("post-condition evaluation: %v", err)), resp
	}
	v.PostOK = postOK
	if !postOK {
		return finish(ViolationPostcondition, fmt.Sprintf(
			"post-condition of %s failed: %s", c.Trigger, c.Post)), resp
	}
	return finish(OK, ""), resp
}

// evalPre evaluates the combined pre-condition and reports which cases'
// SecReqs and transitions matched (for coverage).
func evalPre(c *contract.Contract, env ocl.MapEnv) (bool, []string, []string, error) {
	ctx := ocl.Context{Cur: env}
	anyOK := false
	var matched, matchedTrans []string
	seen := make(map[string]bool)
	for _, cs := range c.Cases {
		ok, err := ocl.EvalBool(cs.Pre, ctx)
		if err != nil {
			return false, nil, nil, err
		}
		if !ok {
			continue
		}
		anyOK = true
		matchedTrans = append(matchedTrans,
			cs.Transition.From+"->"+cs.Transition.To+" on "+cs.Transition.Trigger.String())
		for _, s := range cs.Transition.SecReqs {
			if !seen[s] {
				seen[s] = true
				matched = append(matched, s)
			}
		}
	}
	sort.Strings(matched)
	return anyOK, matched, matchedTrans, nil
}

// violationBody is the invalid-response document returned to the CM user.
type violationBody struct {
	Violation struct {
		Outcome string   `json:"outcome"`
		Trigger string   `json:"trigger"`
		Detail  string   `json:"detail"`
		SecReqs []string `json:"sec_reqs,omitempty"`
		Backend int      `json:"backend_status,omitempty"`
	} `json:"violation"`
}

// respond writes the monitor's answer: the cloud's response when the
// contract holds, or a violation document.
func (m *Monitor) respond(w http.ResponseWriter, v Verdict, resp *BackendResponse) {
	switch v.Outcome {
	case OK, Rejected, Unverified:
		// Unverified: the fail policy decided the cloud's answer stands
		// even though the contract could not be (fully) checked.
		writeBackend(w, resp)
	case Blocked:
		httpkit.WriteError(w, httpkit.Errorf(http.StatusPreconditionFailed,
			"precondition_failed", "cloud monitor: %s", v.Detail))
	case Error:
		httpkit.WriteError(w, httpkit.Errorf(http.StatusBadGateway,
			"monitor_error", "cloud monitor: %s", v.Detail))
	default: // violations
		var body violationBody
		body.Violation.Outcome = v.Outcome.String()
		body.Violation.Trigger = v.Trigger.String()
		body.Violation.Detail = v.Detail
		body.Violation.SecReqs = v.SecReqs
		body.Violation.Backend = v.BackendStatus
		httpkit.WriteJSON(w, http.StatusConflict, body)
	}
}

func writeBackend(w http.ResponseWriter, resp *BackendResponse) {
	for k, vals := range resp.Header {
		for _, val := range vals {
			w.Header().Add(k, val)
		}
	}
	w.WriteHeader(resp.StatusCode)
	if len(resp.Body) > 0 {
		// The response is already committed; a failed write only truncates
		// the body for this one client.
		_, _ = w.Write(resp.Body)
	}
}

// record appends the verdict to its shard's bounded log, updates the
// lock-free counters and stage histograms, and feeds the audit sink for
// non-OK outcomes. Verdicts are spread round-robin by sequence number, so
// concurrent requests rarely contend on the same shard lock.
func (m *Monitor) record(v Verdict) {
	v.seq = m.seq.Add(1)
	s := &m.shards[v.seq%logShards]
	s.mu.Lock()
	if len(s.log) < m.shardMax {
		s.log = append(s.log, v)
	} else {
		s.log[s.next] = v
		s.next++
		if s.next == m.shardMax {
			s.next = 0
		}
	}
	s.mu.Unlock()
	if int(v.Outcome) < numOutcomes {
		m.outcomes[v.Outcome].Inc()
	}
	for _, sec := range v.MatchedSecReqs {
		m.coverage.Add(sec, 1)
	}
	for _, tr := range v.MatchedTransitions {
		m.transCoverage.Add(tr, 1)
	}
	m.pathsFetched.ObserveCount(v.FetchedPaths)
	m.tracer.Observe(&v.Trace)
	if m.audit != nil && v.Outcome != OK {
		rec := auditRecord(&v)
		rec.Instance = m.instanceID
		m.audit.Append(rec)
	}
	if m.onVerdict != nil {
		m.onVerdict(v)
	}
}

// forwardedWrite runs the cache-coherence consequences of a forwarded
// mutation: the project's cached pre-state is dropped and the
// OnInvalidate hook fires so a fleet can bump the owning instance's
// generation. Reads are free — they change no state.
func (m *Monitor) forwardedWrite(method, project string) {
	if method == http.MethodGet {
		return
	}
	if m.cache != nil {
		m.cache.invalidateProject(project)
	}
	if m.onInvalid != nil {
		m.onInvalid(project)
	}
}

// InvalidateProject bumps the project's pre-state cache generation: every
// cached snapshot for the project becomes unusable at once. The fleet's
// invalidation bus calls this on the owning instance when another
// instance forwarded a write for the project (resize-driven remaps leave
// such windows); it is a no-op without the pre-state cache.
func (m *Monitor) InvalidateProject(project string) {
	if m.cache != nil {
		m.cache.invalidateProject(project)
	}
}

// InstanceID returns the fleet instance id ("" outside fleets).
func (m *Monitor) InstanceID() string { return m.instanceID }

// auditRecord converts a verdict into the durable audit shape. Late
// verdicts carry both timestamps — when the response returned and how far
// behind it the verdict landed — so lag is reconstructible from the trail
// alone and auditctl summaries stay monotonic.
func auditRecord(v *Verdict) *obs.AuditRecord {
	rec := &obs.AuditRecord{
		Trigger:        v.Trigger.String(),
		Method:         string(v.Trigger.Method),
		Resource:       v.Trigger.Resource,
		Outcome:        v.Outcome.String(),
		SecReqs:        v.SecReqs,
		MatchedSecReqs: v.MatchedSecReqs,
		FailingClause:  v.FailingClause,
		ContractDigest: v.ContractDigest,
		Detail:         v.Detail,
		BackendStatus:  v.BackendStatus,
		DegradedPre:    v.DegradedPre,
		Pre:            snapshotDoc(v.PreSnapshot),
		Post:           snapshotDoc(v.PostSnapshot),
		StageNanos:     v.Trace.Map(),
	}
	if v.Late {
		rec.Late = true
		rec.Shed = v.Shed
		rec.ReturnUnixNano = v.Returned.UnixNano()
		rec.LagNanos = int64(v.DetectionLag)
	}
	return rec
}

// Log returns a copy of the verdict log (oldest first). With the log
// sharded, the bound is enforced per shard; the merged view holds roughly
// the MaxLog most recent verdicts.
func (m *Monitor) Log() []Verdict {
	var out []Verdict
	for i := range m.shards {
		s := &m.shards[i]
		s.mu.Lock()
		out = append(out, s.log...)
		s.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].seq < out[j].seq })
	if len(out) > m.maxLog {
		out = out[len(out)-m.maxLog:]
	}
	return out
}

// Violations returns the logged verdicts that are contract violations.
func (m *Monitor) Violations() []Verdict {
	var out []Verdict
	for _, v := range m.Log() {
		if v.Outcome.IsViolation() {
			out = append(out, v)
		}
	}
	return out
}

// Coverage returns the hit count per security requirement: how often a
// transition annotated with the requirement had its pre-condition matched.
// Requirements declared by the contracts but never exercised appear with
// count zero, so testers can see uncovered requirements (Section IV.C).
func (m *Monitor) Coverage() map[string]int {
	out := make(map[string]int)
	for _, s := range m.contracts.SecReqs() {
		out[s] = 0
	}
	for s, n := range m.coverage.Snapshot() {
		if _, ok := out[s]; ok {
			out[s] += int(n)
		}
	}
	return out
}

// TransitionCoverage returns per-transition hit counts — how often each
// transition's case pre-condition matched a monitored request. Transitions
// never exercised appear with count zero, giving model-element coverage of
// the behavioral diagram.
func (m *Monitor) TransitionCoverage() map[string]int {
	out := make(map[string]int)
	for _, c := range m.contracts.Contracts {
		for _, cs := range c.Cases {
			key := cs.Transition.From + "->" + cs.Transition.To + " on " + cs.Transition.Trigger.String()
			out[key] = 0
		}
	}
	for key, n := range m.transCoverage.Snapshot() {
		if _, ok := out[key]; ok {
			out[key] += int(n)
		}
	}
	return out
}

// Outcomes returns the count per outcome class, read from the same
// atomic counters the /metrics endpoint exports — the log, the counters
// and the exposition document cannot drift apart.
func (m *Monitor) Outcomes() map[Outcome]int {
	out := make(map[Outcome]int)
	for i := 1; i < numOutcomes; i++ {
		if n := m.outcomes[i].Value(); n > 0 {
			out[Outcome(i)] = int(n)
		}
	}
	return out
}

// Tracer exposes the per-stage latency histograms.
func (m *Monitor) Tracer() *obs.Tracer { return m.tracer }

// StageSummaries condenses the per-stage histograms for reports.
func (m *Monitor) StageSummaries() map[string]obs.StageSummary {
	return m.tracer.Summaries()
}

// CacheStats returns the pre-state cache counters (zero when the cache
// is disabled).
func (m *Monitor) CacheStats() CacheStats {
	if m.cache == nil {
		return CacheStats{}
	}
	return m.cache.stats()
}

// AuditLog returns the configured audit sink (nil when none).
func (m *Monitor) AuditLog() *obs.AuditLog { return m.audit }

// RegisterMetrics contributes the monitor's counters and histograms to a
// metrics registry under cloudmon_* names. The collectors read the live
// atomic state at scrape time; nothing is copied on the hot path.
func (m *Monitor) RegisterMetrics(reg *obs.Registry) {
	reg.Collect(func(w *obs.MetricsWriter) {
		for i := 1; i < numOutcomes; i++ {
			w.Counter("cloudmon_verdicts_total",
				"Monitored requests by verdict outcome.",
				float64(m.outcomes[i].Value()), obs.L("outcome", Outcome(i).String()))
		}
		w.KeyedCounter("cloudmon_secreq_matched_total",
			"Requests whose matched transition case is annotated with the security requirement.",
			&m.coverage, "secreq")
		for s := obs.Stage(0); s < obs.NumStages; s++ {
			w.Histogram("cloudmon_stage_duration_seconds",
				"Monitor pipeline latency by stage.",
				m.tracer.Stage(s), obs.L("stage", s.String()))
		}
		w.Histogram("cloudmon_snapshot_paths_fetched",
			"State paths fetched from the provider per monitored request (count histogram: 1 unit = 1 path).",
			m.pathsFetched)
		w.Counter("cloudmon_snapshot_coalesced_total",
			"Pre-state path fetches that joined another request's in-flight cloud read.",
			float64(m.coalesced.Value()))
		w.KeyedCounter("cloudmon_facts_pruned_total",
			"Clause evaluations decided by compile-time plan facts, by pruning kind.",
			&m.factsPruned, "kind")
		w.Counter("cloudmon_facts_mismatch_total",
			"FactsDebug re-checks that disagreed with a fact-assigned clause value.",
			float64(m.factsMismatch.Value()))
		if ap := m.asyncPost; ap != nil {
			w.Histogram("cloudmon_post_lag_seconds",
				"Detection lag of async post verdicts (verdict time minus response-return time).",
				ap.lag)
			w.Gauge("cloudmon_post_queue_depth",
				"Captures enqueued for async post verification and not yet recorded.",
				float64(ap.pending.Load()))
			w.Counter("cloudmon_post_enqueued_total",
				"Captures accepted onto the async post queue.",
				float64(ap.enqueued.Value()))
			w.Counter("cloudmon_post_shed_total",
				"Async post captures shed by a saturated queue (each is an audited Unverified verdict).",
				float64(ap.shed.Value()))
			w.Counter("cloudmon_post_late_violations_total",
				"Violations detected after the response returned (async post).",
				float64(ap.lateViol.Value()))
			w.Counter("cloudmon_post_fence_waits_total",
				"Mutating forwards that waited on the write fence for pending deferred checks.",
				float64(ap.fenceWaits.Value()))
		}
		if m.cache != nil {
			cs := m.cache.stats()
			w.Counter("cloudmon_cache_hits_total", "Pre-state cache hits.", float64(cs.Hits))
			w.Counter("cloudmon_cache_misses_total", "Pre-state cache misses.", float64(cs.Misses))
			w.Counter("cloudmon_cache_stale_hits_total", "Degrade-path stale cache hits.", float64(cs.StaleHits))
			w.Counter("cloudmon_cache_invalidations_total", "Project generation bumps from forwarded writes.", float64(cs.Invalidations))
		}
		if m.audit != nil {
			var total uint64
			for _, n := range m.audit.Counts() {
				total += n
			}
			w.Counter("cloudmon_audit_records_total", "Audit records appended.", float64(total))
		}
	})
}

// ResetLog clears the verdict log, counters and stage histograms
// (between mutation runs).
func (m *Monitor) ResetLog() {
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.Lock()
		sh.log = nil
		sh.next = 0
		sh.mu.Unlock()
	}
	for i := range m.outcomes {
		m.outcomes[i].Reset()
	}
	m.coverage.Reset()
	m.transCoverage.Reset()
	m.tracer.Reset()
	m.pathsFetched.Reset()
	m.coalesced.Reset()
	m.factsPruned.Reset()
	m.factsMismatch.Reset()
	if ap := m.asyncPost; ap != nil {
		ap.enqueued.Reset()
		ap.shed.Reset()
		ap.lateViol.Reset()
		ap.lag.Reset()
	}
}

// FetchStats are the monitor-side fetch-economy counters: how many state
// paths requests actually read and how often concurrent reads coalesced.
type FetchStats struct {
	// Requests is the number of verdicts with fetch accounting.
	Requests uint64 `json:"requests"`
	// PathsFetched is the total provider path reads across them.
	PathsFetched uint64 `json:"paths_fetched"`
	// Coalesced counts pre-state fetches served by another request's
	// in-flight read.
	Coalesced uint64 `json:"coalesced"`
}

// FetchStats returns the fetch-economy counters.
func (m *Monitor) FetchStats() FetchStats {
	snap := m.pathsFetched.Snapshot()
	return FetchStats{
		Requests:     snap.Count,
		PathsFetched: uint64(snap.Sum + 0.5),
		Coalesced:    m.coalesced.Value(),
	}
}

// splitPath splits a URL path into non-empty segments.
func splitPath(p string) []string {
	parts := strings.Split(strings.Trim(p, "/"), "/")
	if len(parts) == 1 && parts[0] == "" {
		return nil
	}
	return parts
}

// matchSegments matches concrete path segments against a pattern with
// `{name}` captures.
func matchSegments(pattern, segs []string) (map[string]string, bool) {
	if len(pattern) != len(segs) {
		return nil, false
	}
	var params map[string]string
	for i, p := range pattern {
		if strings.HasPrefix(p, "{") && strings.HasSuffix(p, "}") {
			if params == nil {
				params = make(map[string]string, 2)
			}
			params[p[1:len(p)-1]] = segs[i]
			continue
		}
		if p != segs[i] {
			return nil, false
		}
	}
	return params, true
}

// HTTPForwarder is the default Forwarder: it substitutes the captured
// params into the route's backend template and issues the request against
// BaseURL with Client.
type HTTPForwarder struct {
	// BaseURL is the private cloud's root URL.
	BaseURL string
	// Client defaults to a pooled client bounded by the shared
	// httpkit.DefaultCloudTimeout knob.
	Client *http.Client
	// Timeout, when positive, bounds each forwarded request with a
	// context deadline — the same knob the snapshot client derives its
	// per-attempt deadline from, so the two cloud-facing paths cannot
	// silently drift apart.
	Timeout time.Duration
}

var _ Forwarder = (*HTTPForwarder)(nil)

// defaultForwardClient pools connections to the backend cloud: the proxy
// forwards every request to the same host, so the idle-connection cap is
// raised past net/http's per-host default of 2, and the shared cloud
// timeout bounds how long a hung cloud can stall a monitored request.
var defaultForwardClient = &http.Client{
	Timeout: httpkit.DefaultCloudTimeout,
	Transport: func() *http.Transport {
		t := http.DefaultTransport.(*http.Transport).Clone()
		t.MaxIdleConns = 256
		t.MaxIdleConnsPerHost = 64
		return t
	}(),
}

// Forward implements Forwarder.
func (f *HTTPForwarder) Forward(r *http.Request, route *Route, params map[string]string) (*BackendResponse, error) {
	target := route.Backend
	for k, val := range params {
		target = strings.ReplaceAll(target, "{"+k+"}", val)
	}
	var body io.Reader
	if r.Body != nil {
		data, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
		if err != nil {
			return nil, fmt.Errorf("monitor: read request body: %w", err)
		}
		if len(data) > 0 {
			body = strings.NewReader(string(data))
		}
	}
	ctx := r.Context()
	if f.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, f.Timeout)
		defer cancel()
	}
	req, err := http.NewRequestWithContext(ctx, r.Method, f.BaseURL+target, body)
	if err != nil {
		return nil, fmt.Errorf("monitor: build backend request: %w", err)
	}
	for _, h := range []string{"X-Auth-Token", "Content-Type", "Accept"} {
		if val := r.Header.Get(h); val != "" {
			req.Header.Set(h, val)
		}
	}
	client := f.Client
	if client == nil {
		client = defaultForwardClient
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("monitor: backend request: %w", err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return nil, fmt.Errorf("monitor: read backend response: %w", err)
	}
	return &BackendResponse{
		StatusCode: resp.StatusCode,
		Header:     resp.Header.Clone(),
		Body:       data,
	}, nil
}
