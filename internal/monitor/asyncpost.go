package monitor

import (
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"cloudmon/internal/obs"
)

// PostMode selects when post-condition verification runs relative to the
// response path.
type PostMode int

// Post-verification modes.
const (
	// PostSync (the default) verifies the post-condition before the
	// response returns — the paper's workflow: the client never sees an
	// answer the monitor has not fully judged.
	PostSync PostMode = iota + 1
	// PostAsync returns the cloud response as soon as the forward
	// completes and runs post-condition evaluation on a bounded queue of
	// captured (pre-state, effect-frame, response) records drained by a
	// worker pool. Violations surface late — tagged late=true in the
	// audit trail with a detection-lag histogram — trading detection
	// latency for response-path throughput (the monitorability spectrum).
	PostAsync
)

// String returns the mode name.
func (p PostMode) String() string {
	switch p {
	case PostSync:
		return "sync"
	case PostAsync:
		return "async"
	}
	return fmt.Sprintf("PostMode(%d)", int(p))
}

// ParsePostMode parses a -post flag value.
func ParsePostMode(s string) (PostMode, error) {
	switch s {
	case "sync":
		return PostSync, nil
	case "async":
		return PostAsync, nil
	}
	return 0, fmt.Errorf("monitor: unknown post mode %q (sync|async)", s)
}

// BackpressurePolicy decides what a saturated async post queue does to the
// response path, mirroring FailPolicy's stance on unverifiable requests.
type BackpressurePolicy int

// Backpressure policies.
const (
	// BackpressureBlock (the default) applies backpressure: the enqueue
	// waits for a queue slot, so every forwarded effect is eventually
	// verified and records are never dropped or reordered against their
	// responses. Detection lag is bounded by queue capacity × service
	// time; response latency degrades under sustained overload.
	BackpressureBlock BackpressurePolicy = iota + 1
	// BackpressureShed keeps the response path non-blocking: when the
	// queue is full the request's post phase is abandoned and an
	// Unverified verdict is recorded — counted and audited (shed=true),
	// never silently dropped.
	BackpressureShed
)

// String returns the policy name.
func (b BackpressurePolicy) String() string {
	switch b {
	case BackpressureBlock:
		return "block"
	case BackpressureShed:
		return "shed"
	}
	return fmt.Sprintf("BackpressurePolicy(%d)", int(b))
}

// ParseBackpressure parses a -post-backpressure flag value.
func ParseBackpressure(s string) (BackpressurePolicy, error) {
	switch s {
	case "block":
		return BackpressureBlock, nil
	case "shed":
		return BackpressureShed, nil
	}
	return 0, fmt.Errorf("monitor: unknown backpressure policy %q (block|shed)", s)
}

// asyncPost is the bounded post-verification pipeline: a channel of
// captured records drained by a fixed worker pool. Lifecycle: ServeHTTP
// enqueues after the response is written, workers run the identical
// post-evaluation the synchronous engines use (postVerify), and every
// capture ends as exactly one recorded verdict — verified, or shed as
// Unverified by the caller when the queue is saturated under the shed
// policy.
type asyncPost struct {
	queue chan *postCapture
	wg    sync.WaitGroup
	// mu guards enqueue against close: senders hold the read lock, Close
	// takes the write lock before closing the channel, so a send can
	// never race the close. The response path already crosses locks in
	// record(); one more uncontended RLock is off the evaluation hot path.
	mu     sync.RWMutex
	closed atomic.Bool
	// pending counts captures created but not yet recorded. It is
	// incremented the moment checkLazy defers a verdict — before the
	// response is written — so the write fence and DrainPost see every
	// outstanding capture, and decremented only after the verdict (verified
	// or shed) is in the log, the counters and the audit trail.
	pending atomic.Int64

	enqueued   obs.Counter
	shed       obs.Counter
	lateViol   obs.Counter
	fenceWaits obs.Counter
	lag        *obs.Histogram
}

func newAsyncPost(m *Monitor, capacity, workers int) *asyncPost {
	ap := &asyncPost{
		queue: make(chan *postCapture, capacity),
		lag:   obs.NewDurationHistogram(),
	}
	for i := 0; i < workers; i++ {
		ap.wg.Add(1)
		go func() {
			defer ap.wg.Done()
			for pc := range ap.queue {
				m.completePost(pc)
			}
		}()
	}
	return ap
}

// enqueue hands a capture to the worker pool. Under the block policy the
// send waits for a slot; under shed it fails fast when the queue is full.
// Returns false when the capture was not accepted (full queue under shed,
// or the monitor is closing) — the caller must then record the capture as
// a shed Unverified verdict so no request ever goes unaccounted.
func (ap *asyncPost) enqueue(pc *postCapture, policy BackpressurePolicy) bool {
	ap.mu.RLock()
	defer ap.mu.RUnlock()
	if ap.closed.Load() {
		return false
	}
	if policy == BackpressureShed {
		select {
		case ap.queue <- pc:
		default:
			return false
		}
	} else {
		ap.queue <- pc
	}
	ap.enqueued.Inc()
	return true
}

// fenceWrites blocks a mutating forward until every pending deferred post
// check has completed. Deferred checks read the cloud's post-state after
// the response returns; letting the next write land first would hand them
// interfered state and fabricate violations the synchronous engines never
// see. The fence restores the synchronous ordering exactly where it
// matters — reads stream through unfenced, and a write's wait overlaps the
// pending captures' fetches, which started at the previous response — so
// serial workloads get verdict-for-verdict equivalence by construction.
func (m *Monitor) fenceWrites(method string) {
	ap := m.asyncPost
	if ap == nil || method == http.MethodGet || method == http.MethodHead {
		return
	}
	if ap.pending.Load() == 0 {
		return
	}
	ap.fenceWaits.Inc()
	for ap.pending.Load() != 0 {
		time.Sleep(20 * time.Microsecond)
	}
}

// completePost runs the deferred post phase for one capture and records
// the request's single, complete verdict. The evaluation is byte-for-byte
// the synchronous engines' (postVerify); only the timestamps differ: the
// verdict carries both when the response returned and how long detection
// lagged behind it, so stage timings and audit summaries stay monotonic.
func (m *Monitor) completePost(pc *postCapture) {
	v := m.postVerify(pc, &pc.trace, nil)
	v.Late = true
	v.Returned = pc.returned
	v.DetectionLag = time.Since(pc.returned)
	m.asyncPost.lag.Observe(v.DetectionLag)
	if v.Outcome.IsViolation() {
		m.asyncPost.lateViol.Inc()
	}
	v.Trace = pc.trace
	m.record(v)
	// Decrement after record: DrainPost returning means every verdict is
	// in the log, the counters and the audit trail.
	m.asyncPost.pending.Add(-1)
}

// shedVerdict finalizes a capture the queue did not accept: the post phase
// is abandoned and the request is recorded as Unverified — the same
// "forwarded but unchecked" outcome a fail-open snapshot failure yields —
// tagged Shed so audits can tell saturation from fault-policy decisions.
func (m *Monitor) shedVerdict(pc *postCapture) {
	m.asyncPost.shed.Inc()
	v := pc.v
	v.Outcome = Unverified
	v.Detail = "post-verification shed: async queue full"
	v.Late = true
	v.Shed = true
	v.Returned = pc.returned
	v.Elapsed = time.Since(pc.start)
	v.FetchedPaths = pc.f.fetched
	pc.trace[obs.StagePreSnapshot] = pc.f.preDur
	pc.trace[obs.StagePreEval] = pc.preEvalDur
	v.Trace = pc.trace
	m.record(v)
	m.asyncPost.pending.Add(-1)
}

// DrainPost blocks until every enqueued capture has been verified and
// recorded. Non-destructive: the workers stay up and the monitor keeps
// accepting requests — load harnesses call it before diffing counters.
func (m *Monitor) DrainPost() {
	ap := m.asyncPost
	if ap == nil {
		return
	}
	for ap.pending.Load() != 0 {
		time.Sleep(200 * time.Microsecond)
	}
}

// Close gracefully shuts the async post pipeline down: no new captures are
// accepted (late arrivals shed), the queue is drained, and every worker
// exits. Safe to call more than once; a synchronous monitor is a no-op.
func (m *Monitor) Close() {
	ap := m.asyncPost
	if ap == nil || !ap.closed.CompareAndSwap(false, true) {
		return
	}
	// The write lock waits out in-flight enqueues (their sends complete —
	// the workers are still draining), then the close ends the workers'
	// range loops once the queue empties.
	ap.mu.Lock()
	close(ap.queue)
	ap.mu.Unlock()
	ap.wg.Wait()
}

// AsyncPostStats are the async pipeline's counters and lag distribution.
type AsyncPostStats struct {
	// Enqueued counts captures accepted onto the queue.
	Enqueued uint64 `json:"enqueued"`
	// Shed counts captures rejected by a saturated queue under the shed
	// policy; each one is an Unverified verdict with an audit record.
	Shed uint64 `json:"shed"`
	// LateViolations counts violations detected after the response
	// returned.
	LateViolations uint64 `json:"late_violations"`
	// FenceWaits counts mutating forwards that waited on the write fence
	// for pending deferred checks to complete.
	FenceWaits uint64 `json:"fence_waits"`
	// Pending is the current queue backlog (enqueued, not yet recorded).
	Pending int64 `json:"pending"`
	// Lag is the detection-lag distribution (verdict time − response
	// return time).
	Lag obs.HistSnapshot `json:"lag"`
}

// AsyncPostStats returns the async post pipeline's counters (zero when
// the monitor verifies synchronously).
func (m *Monitor) AsyncPostStats() AsyncPostStats {
	ap := m.asyncPost
	if ap == nil {
		return AsyncPostStats{}
	}
	return AsyncPostStats{
		Enqueued:       ap.enqueued.Value(),
		Shed:           ap.shed.Value(),
		LateViolations: ap.lateViol.Value(),
		FenceWaits:     ap.fenceWaits.Value(),
		Pending:        ap.pending.Load(),
		Lag:            ap.lag.Snapshot(),
	}
}
