package monitor

import (
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"

	"cloudmon/internal/contract"
	"cloudmon/internal/ocl"
	"cloudmon/internal/paper"
)

// TestFactsPruneOnPaperModel pins what fact pruning saves on the paper's
// Cinder model, measured in per-clause path demands (DemandedPaths): once
// one disjunct of a trigger is observed true, every sibling is decided by
// a single witness element instead of a full evaluation.
func TestFactsPruneOnPaperModel(t *testing.T) {
	set, err := contract.Generate(paper.CinderModel())
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name, method, path   string
		pre, post            ocl.MapEnv
		wantSkipped          int
		wantFacts, wantPlain int // DemandedPaths with facts on / off
	}{
		// DELETE of the project's last volume: the size()=1 disjunct is
		// true, arming the witness exclusion of its size()>1 sibling.
		{"delete-last", http.MethodDelete, "/projects/p1/volumes/v1",
			env(1, 10, "available", "admin"), env(0, 10, "available", "admin"),
			1, 12, 14},
		// POST into an empty project: the NoVolume disjunct is true and
		// all three siblings are decided by one witness element each.
		{"post-empty", http.MethodPost, "/projects/p1/volumes",
			env(0, 10, "available", "admin"), env(1, 10, "available", "admin"),
			3, 11, 16},
	}
	for _, tc := range cases {
		vf, _ := runEngine(t, set, EvalLazy, false, false, Enforce, tc.method, tc.path, tc.pre, tc.post, 204)
		vl, _ := runEngine(t, set, EvalLazy, false, true, Enforce, tc.method, tc.path, tc.pre, tc.post, 204)
		if vf.Outcome != OK || vl.Outcome != OK {
			t.Fatalf("%s: outcomes facts=%s plain=%s, want ok/ok", tc.name, vf.Outcome, vl.Outcome)
		}
		if vl.FactsSkipped != 0 {
			t.Errorf("%s: NoFacts verdict reports %d skips", tc.name, vl.FactsSkipped)
		}
		if vf.FactsSkipped != tc.wantSkipped {
			t.Errorf("%s: FactsSkipped = %d, want %d", tc.name, vf.FactsSkipped, tc.wantSkipped)
		}
		if vf.DemandedPaths >= vl.DemandedPaths {
			t.Errorf("%s: facts did not reduce demands: %d with, %d without",
				tc.name, vf.DemandedPaths, vl.DemandedPaths)
		}
		if vf.DemandedPaths != tc.wantFacts || vl.DemandedPaths != tc.wantPlain {
			t.Errorf("%s: DemandedPaths = %d/%d (facts/plain), want %d/%d",
				tc.name, vf.DemandedPaths, vl.DemandedPaths, tc.wantFacts, tc.wantPlain)
		}
	}
}

// TestFactsDebugRecheck drives the FactsDebug tripwire over seeded random
// states: every fact-decided clause value is re-derived the slow way, and
// the mismatch counter must stay zero while prunes actually fire.
func TestFactsDebugRecheck(t *testing.T) {
	set, err := contract.Generate(paper.CinderModel())
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(Config{
		Contracts:  set,
		Routes:     diffRoutes(),
		Provider:   &fakeProvider{},
		Forward:    &fakeForwarder{status: 204},
		FactsDebug: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := m.provider.(*fakeProvider)
	rng := rand.New(rand.NewSource(7))
	reqs := diffRequests()
	for i := 0; i < 200; i++ {
		rq := reqs[rng.Intn(len(reqs))]
		p.pre, p.post = randomEnv(rng), randomEnv(rng)
		req := httptest.NewRequest(rq.method, rq.path, nil)
		req.Header.Set("X-Auth-Token", "tok")
		m.ServeHTTP(httptest.NewRecorder(), req)
	}
	if n := m.factsMismatch.Value(); n != 0 {
		t.Fatalf("FactsDebug found %d mismatches: a fact decided a value the evaluator disagrees with", n)
	}
	pruned := m.factsPruned.Snapshot()
	if pruned[factsPrunedPreSibling] == 0 {
		t.Errorf("no witness skips fired over 200 random states: %v", pruned)
	}
}

// TestFactsMetricsAndReset: the pruning counters surface in /metrics under
// cloudmon_facts_* and ResetLog clears them.
func TestFactsMetricsAndReset(t *testing.T) {
	pre := env(1, 10, "available", "admin")
	post := env(0, 10, "available", "admin")
	m := newMonitor(t, Enforce, &fakeProvider{pre: pre, post: post}, &fakeForwarder{status: 204})
	doDelete(t, m)
	if got := m.factsPruned.Snapshot()[factsPrunedPreSibling]; got != 1 {
		t.Fatalf("pre-sibling prunes = %d, want 1", got)
	}
	m.ResetLog()
	if got := m.factsPruned.Snapshot()[factsPrunedPreSibling]; got != 0 {
		t.Errorf("prune counter survived ResetLog: %d", got)
	}
	if m.factsMismatch.Value() != 0 {
		t.Errorf("mismatch counter non-zero after reset")
	}
}

// TestEagerLeavesDemandAccountingZero: DemandedPaths and FactsSkipped are
// lazy-engine measures; the eager engine must leave them untouched.
func TestEagerLeavesDemandAccountingZero(t *testing.T) {
	set, err := contract.Generate(paper.CinderModel())
	if err != nil {
		t.Fatal(err)
	}
	v, _ := runEngine(t, set, EvalEager, false, false, Enforce,
		http.MethodDelete, "/projects/p1/volumes/v1",
		env(1, 10, "available", "admin"), env(0, 10, "available", "admin"), 204)
	if v.DemandedPaths != 0 || v.FactsSkipped != 0 {
		t.Errorf("eager verdict has DemandedPaths=%d FactsSkipped=%d, want 0/0",
			v.DemandedPaths, v.FactsSkipped)
	}
}
