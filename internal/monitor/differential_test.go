package monitor

import (
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"

	"cloudmon/internal/contract"
	"cloudmon/internal/ocl"
	"cloudmon/internal/paper"
	"cloudmon/internal/uml"
)

// The differential suite proves the engines' safety claim: the lazy plan
// engine — with and without compile-time fact pruning — and the eager
// whole-snapshot engine produce bit-identical verdicts: same outcome,
// pre/post truth, failing clause and SecReq attribution on every request.
// Only the fetch economy may differ. Each sweep runs three arms (eager,
// lazy with facts off, lazy with facts on) and compares both lazy arms
// against eager, so all three agree field for field.

// diffRoutes mirrors newMonitor's route table.
func diffRoutes() []Route {
	return []Route{
		{Trigger: uml.Trigger{Method: uml.GET, Resource: "volume"},
			Pattern: "/projects/{project_id}/volumes/{volume_id}",
			Backend: "/volume/v3/{project_id}/volumes/{volume_id}"},
		{Trigger: uml.Trigger{Method: uml.PUT, Resource: "volume"},
			Pattern: "/projects/{project_id}/volumes/{volume_id}",
			Backend: "/volume/v3/{project_id}/volumes/{volume_id}"},
		{Trigger: uml.Trigger{Method: uml.POST, Resource: "volume"},
			Pattern: "/projects/{project_id}/volumes",
			Backend: "/volume/v3/{project_id}/volumes"},
		{Trigger: uml.Trigger{Method: uml.DELETE, Resource: "volume"},
			Pattern: "/projects/{project_id}/volumes/{volume_id}",
			Backend: "/volume/v3/{project_id}/volumes/{volume_id}"},
	}
}

// runEngine drives one request through a freshly built monitor in the given
// eval mode and returns its verdict and response code.
func runEngine(t *testing.T, set *contract.Set, eval EvalMode, noReuse, noFacts bool, mode Mode,
	method, path string, pre, post ocl.MapEnv, status int) (Verdict, int) {
	t.Helper()
	m, err := New(Config{
		Contracts:   set,
		Routes:      diffRoutes(),
		Provider:    &fakeProvider{pre: pre, post: post},
		Forward:     &fakeForwarder{status: status},
		Mode:        mode,
		Eval:        eval,
		NoPostReuse: noReuse,
		NoFacts:     noFacts,
	})
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(method, path, nil)
	req.Header.Set("X-Auth-Token", "tok")
	rec := httptest.NewRecorder()
	m.ServeHTTP(rec, req)
	return lastVerdict(t, m), rec.Code
}

// diffCompare asserts the equivalence contract between two verdicts. Detail
// is compared except on Error outcomes: plan order may surface a different
// (equally real) evaluation error than the monolithic formula does.
func diffCompare(t *testing.T, name string, eager, lazy Verdict, eagerCode, lazyCode int) {
	t.Helper()
	fail := func(field string, e, l interface{}) {
		t.Errorf("%s: %s diverged: eager %v, lazy %v", name, field, e, l)
	}
	if eager.Outcome != lazy.Outcome {
		fail("outcome", fmt.Sprintf("%s (%s)", eager.Outcome, eager.Detail),
			fmt.Sprintf("%s (%s)", lazy.Outcome, lazy.Detail))
		return
	}
	if eagerCode != lazyCode {
		fail("status", eagerCode, lazyCode)
	}
	if eager.PreOK != lazy.PreOK {
		fail("PreOK", eager.PreOK, lazy.PreOK)
	}
	if eager.PostOK != lazy.PostOK {
		fail("PostOK", eager.PostOK, lazy.PostOK)
	}
	if eager.Forwarded != lazy.Forwarded {
		fail("Forwarded", eager.Forwarded, lazy.Forwarded)
	}
	if !reflect.DeepEqual(eager.MatchedSecReqs, lazy.MatchedSecReqs) {
		fail("MatchedSecReqs", eager.MatchedSecReqs, lazy.MatchedSecReqs)
	}
	if !reflect.DeepEqual(eager.MatchedTransitions, lazy.MatchedTransitions) {
		fail("MatchedTransitions", eager.MatchedTransitions, lazy.MatchedTransitions)
	}
	if eager.FailingClause != lazy.FailingClause {
		fail("FailingClause", eager.FailingClause, lazy.FailingClause)
	}
	if eager.Outcome != Error && eager.Detail != lazy.Detail {
		fail("Detail", eager.Detail, lazy.Detail)
	}
	if lazy.FetchedPaths > eager.FetchedPaths {
		fail("FetchedPaths (lazy must not fetch more)", eager.FetchedPaths, lazy.FetchedPaths)
	}
}

type diffRequest struct {
	method, path string
}

func diffRequests() []diffRequest {
	return []diffRequest{
		{http.MethodGet, "/projects/p1/volumes/v1"},
		{http.MethodPut, "/projects/p1/volumes/v1"},
		{http.MethodPost, "/projects/p1/volumes"},
		{http.MethodDelete, "/projects/p1/volumes/v1"},
	}
}

// TestDifferentialExampleStates sweeps hand-picked states covering every
// outcome class: pre pass/fail, post pass/fail, backend accept/reject, in
// both modes — eager vs lazy with post-state reuse disabled (the
// unconditionally equivalent configuration).
func TestDifferentialExampleStates(t *testing.T) {
	set, err := contract.Generate(paper.CinderModel())
	if err != nil {
		t.Fatal(err)
	}
	type state struct {
		name      string
		pre, post ocl.MapEnv
		status    int
	}
	states := []state{
		{"ok-delete", env(2, 10, "available", "admin"), env(1, 10, "available", "admin"), 204},
		{"post-violation", env(2, 10, "available", "admin"), env(2, 10, "available", "admin"), 204},
		{"pre-fail-role", env(2, 10, "available", "intruder"), env(1, 10, "available", "intruder"), 204},
		{"pre-fail-in-use", env(2, 10, "in-use", "admin"), env(1, 10, "in-use", "admin"), 204},
		{"backend-rejects", env(2, 10, "available", "admin"), env(2, 10, "available", "admin"), 403},
		{"backend-errors", env(2, 10, "available", "admin"), env(2, 10, "available", "admin"), 500},
		{"quota-edge", env(10, 10, "available", "admin"), env(9, 10, "available", "admin"), 204},
		{"empty-project", env(0, 10, "available", "admin"), env(0, 10, "available", "admin"), 204},
	}
	// Undefined inputs: missing paths resolve to Undefined in both engines.
	partial := env(2, 10, "available", "admin")
	delete(partial, "volume.status")
	states = append(states, state{"absent-status", partial, env(1, 10, "available", "admin"), 204})
	// Ill-typed state: quota as a string exercises evaluation errors.
	illTyped := env(2, 10, "available", "admin")
	illTyped["quota_sets.volume"] = ocl.StringVal("ten")
	states = append(states, state{"ill-typed-quota", illTyped, illTyped, 204})

	for _, mode := range []Mode{Enforce, Observe} {
		for _, rq := range diffRequests() {
			for _, st := range states {
				name := fmt.Sprintf("%s/%s/%s", mode, rq.method, st.name)
				ve, ce := runEngine(t, set, EvalEager, false, false, mode, rq.method, rq.path, st.pre, st.post, st.status)
				vl, cl := runEngine(t, set, EvalLazy, true, true, mode, rq.method, rq.path, st.pre, st.post, st.status)
				vf, cf := runEngine(t, set, EvalLazy, true, false, mode, rq.method, rq.path, st.pre, st.post, st.status)
				diffCompare(t, name, ve, vl, ce, cl)
				diffCompare(t, name+"/facts", ve, vf, ce, cf)
			}
		}
	}
}

// randomEnv draws a state; roughly half the draws are well-typed, the rest
// mix in absent paths and wrong kinds so the error paths diverge or agree
// loudly.
func randomEnv(rng *rand.Rand) ocl.MapEnv {
	roles := []string{"admin", "member", "user", "intruder", ""}
	statuses := []string{"available", "in-use", "error", ""}
	e := env(rng.Intn(4), rng.Intn(4), statuses[rng.Intn(len(statuses))], roles[rng.Intn(len(roles))])
	if rng.Intn(4) == 0 {
		keys := []string{"project.id", "project.volumes", "quota_sets.volume", "volume.status", "user.id.groups"}
		delete(e, keys[rng.Intn(len(keys))])
	}
	if rng.Intn(6) == 0 {
		e["quota_sets.volume"] = ocl.StringVal("zz")
	}
	return e
}

// TestDifferentialFuzzStates drives both engines over seeded random pre and
// post states and demands verdict equivalence (reuse off: post states are
// unconstrained, so the frame assumption does not hold).
func TestDifferentialFuzzStates(t *testing.T) {
	set, err := contract.Generate(paper.CinderModel())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	reqs := diffRequests()
	statuses := []int{200, 204, 403, 500}
	for i := 0; i < 300; i++ {
		rq := reqs[rng.Intn(len(reqs))]
		pre, post := randomEnv(rng), randomEnv(rng)
		status := statuses[rng.Intn(len(statuses))]
		mode := Enforce
		if rng.Intn(2) == 0 {
			mode = Observe
		}
		name := fmt.Sprintf("fuzz-%d/%s/%s", i, mode, rq.method)
		ve, ce := runEngine(t, set, EvalEager, false, false, mode, rq.method, rq.path, pre, post, status)
		vl, cl := runEngine(t, set, EvalLazy, true, true, mode, rq.method, rq.path, pre, post, status)
		vf, cf := runEngine(t, set, EvalLazy, true, false, mode, rq.method, rq.path, pre, post, status)
		diffCompare(t, name, ve, vl, ce, cl)
		diffCompare(t, name+"/facts", ve, vf, ce, cf)
		if t.Failed() {
			t.Fatalf("first divergence at iteration %d: pre=%v post=%v status=%d", i, pre, post, status)
		}
	}
}

// TestDifferentialPostReuseOnFrameRespectingStates checks the default lazy
// configuration (effect-frame reuse ON) against eager, on post states that
// honor the frame: only paths inside the active transitions' effect frame
// change across the call. This is the soundness condition the reuse
// optimization rests on — the cloud moved only what the model says the
// transition touches.
func TestDifferentialPostReuseOnFrameRespectingStates(t *testing.T) {
	set, err := contract.Generate(paper.CinderModel())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	reqs := diffRequests()
	for i := 0; i < 200; i++ {
		rq := reqs[rng.Intn(len(reqs))]
		pre := randomEnv(rng)
		// The paper model's every effect frame is {project.volumes}: a
		// frame-respecting post state mutates only the volume set.
		post := make(ocl.MapEnv, len(pre))
		for k, v := range pre {
			post[k] = v
		}
		elems := make([]ocl.Value, rng.Intn(4))
		for j := range elems {
			elems[j] = ocl.StringVal("v")
		}
		post["project.volumes"] = ocl.CollectionVal(elems...)
		name := fmt.Sprintf("reuse-%d/%s", i, rq.method)
		ve, ce := runEngine(t, set, EvalEager, false, false, Enforce, rq.method, rq.path, pre, post, 204)
		vl, cl := runEngine(t, set, EvalLazy, false, true, Enforce, rq.method, rq.path, pre, post, 204)
		vf, cf := runEngine(t, set, EvalLazy, false, false, Enforce, rq.method, rq.path, pre, post, 204)
		diffCompare(t, name, ve, vl, ce, cl)
		diffCompare(t, name+"/facts", ve, vf, ce, cf)
		if t.Failed() {
			t.Fatalf("first divergence at iteration %d: pre=%v post=%v", i, pre, post)
		}
	}
}

// TestLazyFetchEconomyOnPaperModel pins the headline numbers the tentpole
// claims for the paper's Cinder model: a clean GET needs 5 cloud reads
// under the plan engine against the eager engine's 8, and a clean DELETE 6
// against 10.
func TestLazyFetchEconomyOnPaperModel(t *testing.T) {
	set, err := contract.Generate(paper.CinderModel())
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		method, path        string
		pre, post           ocl.MapEnv
		status              int
		wantLazy, wantEager int
		wantReused          int
	}{
		// GET: 4 pre paths + post re-fetch of project.volumes; the other
		// 2 consequent reads reuse the pre-state (project.id, quota).
		{http.MethodGet, "/projects/p1/volumes/v1",
			env(2, 10, "available", "admin"), env(2, 10, "available", "admin"), 200, 5, 8, 2},
		// DELETE: 5 pre paths + 1 framed post path.
		{http.MethodDelete, "/projects/p1/volumes/v1",
			env(2, 10, "available", "admin"), env(1, 10, "available", "admin"), 204, 6, 10, 2},
	}
	for _, tc := range cases {
		vl, _ := runEngine(t, set, EvalLazy, false, false, Enforce, tc.method, tc.path, tc.pre, tc.post, tc.status)
		ve, _ := runEngine(t, set, EvalEager, false, false, Enforce, tc.method, tc.path, tc.pre, tc.post, tc.status)
		if vl.Outcome != OK || ve.Outcome != OK {
			t.Fatalf("%s: outcomes lazy=%s eager=%s, want ok/ok", tc.method, vl.Outcome, ve.Outcome)
		}
		if vl.FetchedPaths != tc.wantLazy {
			t.Errorf("%s: lazy fetched %d paths, want %d", tc.method, vl.FetchedPaths, tc.wantLazy)
		}
		if ve.FetchedPaths != tc.wantEager {
			t.Errorf("%s: eager fetched %d paths, want %d", tc.method, ve.FetchedPaths, tc.wantEager)
		}
		if vl.ReusedPaths != tc.wantReused {
			t.Errorf("%s: lazy reused %d paths, want %d", tc.method, vl.ReusedPaths, tc.wantReused)
		}
	}
}
