package monitor

import (
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"cloudmon/internal/contract"
	"cloudmon/internal/ocl"
	"cloudmon/internal/paper"
	"cloudmon/internal/uml"
)

// The differential suite proves the engines' safety claim: the compiled
// closure-chain engine, the lazy tree-walking plan engine — each with and
// without compile-time fact pruning — and the eager whole-snapshot engine
// produce bit-identical verdicts: same outcome, pre/post truth, failing
// clause and SecReq attribution on every request. Only the fetch economy
// may differ between eager and the plan engines; between lazy and
// compiled even the economy counters (fetches, reuses, clause demands,
// fact skips) must agree exactly, because the compiled engine swaps only
// the per-node evaluator inside the shared demand-driven workflow. Each
// sweep runs five arms (eager; lazy and compiled, facts off and on) and
// compares every plan arm against eager, then lazy against compiled.

// diffRoutes mirrors newMonitor's route table.
func diffRoutes() []Route {
	return []Route{
		{Trigger: uml.Trigger{Method: uml.GET, Resource: "volume"},
			Pattern: "/projects/{project_id}/volumes/{volume_id}",
			Backend: "/volume/v3/{project_id}/volumes/{volume_id}"},
		{Trigger: uml.Trigger{Method: uml.PUT, Resource: "volume"},
			Pattern: "/projects/{project_id}/volumes/{volume_id}",
			Backend: "/volume/v3/{project_id}/volumes/{volume_id}"},
		{Trigger: uml.Trigger{Method: uml.POST, Resource: "volume"},
			Pattern: "/projects/{project_id}/volumes",
			Backend: "/volume/v3/{project_id}/volumes"},
		{Trigger: uml.Trigger{Method: uml.DELETE, Resource: "volume"},
			Pattern: "/projects/{project_id}/volumes/{volume_id}",
			Backend: "/volume/v3/{project_id}/volumes/{volume_id}"},
	}
}

// runEngine drives one request through a freshly built monitor in the given
// eval mode and returns its verdict and response code.
func runEngine(t *testing.T, set *contract.Set, eval EvalMode, noReuse, noFacts bool, mode Mode,
	method, path string, pre, post ocl.MapEnv, status int) (Verdict, int) {
	t.Helper()
	m, err := New(Config{
		Contracts:   set,
		Routes:      diffRoutes(),
		Provider:    &fakeProvider{pre: pre, post: post},
		Forward:     &fakeForwarder{status: status},
		Mode:        mode,
		Eval:        eval,
		NoPostReuse: noReuse,
		NoFacts:     noFacts,
	})
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(method, path, nil)
	req.Header.Set("X-Auth-Token", "tok")
	rec := httptest.NewRecorder()
	m.ServeHTTP(rec, req)
	return lastVerdict(t, m), rec.Code
}

// runEngineAsync drives one request through a compiled monitor deferring
// post verification to the async pipeline, drains it, and returns the late
// verdict and the response code the client saw. Against the fixed fake
// states the drained verdict must be indistinguishable from the
// synchronous arms — same outcome, failing clause and fetch economy — the
// sixth differential arm.
func runEngineAsync(t *testing.T, set *contract.Set, noFacts bool, mode Mode,
	method, path string, pre, post ocl.MapEnv, status int) (Verdict, int) {
	t.Helper()
	m, err := New(Config{
		Contracts:   set,
		Routes:      diffRoutes(),
		Provider:    &fakeProvider{pre: pre, post: post},
		Forward:     &fakeForwarder{status: status},
		Mode:        mode,
		Eval:        EvalCompiled,
		NoPostReuse: true,
		NoFacts:     noFacts,
		Post:        PostAsync,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	req := httptest.NewRequest(method, path, nil)
	req.Header.Set("X-Auth-Token", "tok")
	rec := httptest.NewRecorder()
	m.ServeHTTP(rec, req)
	m.DrainPost()
	return lastVerdict(t, m), rec.Code
}

// diffCompare asserts the equivalence contract between a reference verdict
// (the eager arm) and a plan-engine verdict. Detail is compared except on
// Error outcomes: plan order may surface a different (equally real)
// evaluation error than the monolithic formula does.
func diffCompare(t *testing.T, name string, ref, got Verdict, refCode, gotCode int) {
	t.Helper()
	fail := func(field string, e, l interface{}) {
		t.Errorf("%s: %s diverged: ref %v, got %v", name, field, e, l)
	}
	if ref.Outcome != got.Outcome {
		fail("outcome", fmt.Sprintf("%s (%s)", ref.Outcome, ref.Detail),
			fmt.Sprintf("%s (%s)", got.Outcome, got.Detail))
		return
	}
	if refCode != gotCode {
		fail("status", refCode, gotCode)
	}
	if ref.PreOK != got.PreOK {
		fail("PreOK", ref.PreOK, got.PreOK)
	}
	if ref.PostOK != got.PostOK {
		fail("PostOK", ref.PostOK, got.PostOK)
	}
	if ref.Forwarded != got.Forwarded {
		fail("Forwarded", ref.Forwarded, got.Forwarded)
	}
	if !reflect.DeepEqual(ref.MatchedSecReqs, got.MatchedSecReqs) {
		fail("MatchedSecReqs", ref.MatchedSecReqs, got.MatchedSecReqs)
	}
	if !reflect.DeepEqual(ref.MatchedTransitions, got.MatchedTransitions) {
		fail("MatchedTransitions", ref.MatchedTransitions, got.MatchedTransitions)
	}
	if ref.FailingClause != got.FailingClause {
		fail("FailingClause", ref.FailingClause, got.FailingClause)
	}
	if ref.Outcome != Error && ref.Detail != got.Detail {
		fail("Detail", ref.Detail, got.Detail)
	}
	if got.FetchedPaths > ref.FetchedPaths {
		fail("FetchedPaths (plan engine must not fetch more)", ref.FetchedPaths, got.FetchedPaths)
	}
}

// diffEconomy asserts exact economy-counter agreement between the lazy and
// compiled arms of one configuration. The compiled engine reuses the lazy
// workflow (fetch cache, flights, facts pruning, effect-frame reuse) and
// swaps only per-node evaluation, so fetches, reuses, per-clause demands
// and fact skips must match to the unit — any drift means the closure
// chains demand state the tree walk does not, or vice versa.
func diffEconomy(t *testing.T, name string, lazy, comp Verdict) {
	t.Helper()
	if lazy.FetchedPaths != comp.FetchedPaths {
		t.Errorf("%s: FetchedPaths diverged: lazy %d, compiled %d", name, lazy.FetchedPaths, comp.FetchedPaths)
	}
	if lazy.ReusedPaths != comp.ReusedPaths {
		t.Errorf("%s: ReusedPaths diverged: lazy %d, compiled %d", name, lazy.ReusedPaths, comp.ReusedPaths)
	}
	if lazy.DemandedPaths != comp.DemandedPaths {
		t.Errorf("%s: DemandedPaths diverged: lazy %d, compiled %d", name, lazy.DemandedPaths, comp.DemandedPaths)
	}
	if lazy.FactsSkipped != comp.FactsSkipped {
		t.Errorf("%s: FactsSkipped diverged: lazy %d, compiled %d", name, lazy.FactsSkipped, comp.FactsSkipped)
	}
}

type diffRequest struct {
	method, path string
}

func diffRequests() []diffRequest {
	return []diffRequest{
		{http.MethodGet, "/projects/p1/volumes/v1"},
		{http.MethodPut, "/projects/p1/volumes/v1"},
		{http.MethodPost, "/projects/p1/volumes"},
		{http.MethodDelete, "/projects/p1/volumes/v1"},
	}
}

// TestDifferentialExampleStates sweeps hand-picked states covering every
// outcome class: pre pass/fail, post pass/fail, backend accept/reject, in
// both modes — eager vs lazy with post-state reuse disabled (the
// unconditionally equivalent configuration).
func TestDifferentialExampleStates(t *testing.T) {
	set, err := contract.Generate(paper.CinderModel())
	if err != nil {
		t.Fatal(err)
	}
	type state struct {
		name      string
		pre, post ocl.MapEnv
		status    int
	}
	states := []state{
		{"ok-delete", env(2, 10, "available", "admin"), env(1, 10, "available", "admin"), 204},
		{"post-violation", env(2, 10, "available", "admin"), env(2, 10, "available", "admin"), 204},
		{"pre-fail-role", env(2, 10, "available", "intruder"), env(1, 10, "available", "intruder"), 204},
		{"pre-fail-in-use", env(2, 10, "in-use", "admin"), env(1, 10, "in-use", "admin"), 204},
		{"backend-rejects", env(2, 10, "available", "admin"), env(2, 10, "available", "admin"), 403},
		{"backend-errors", env(2, 10, "available", "admin"), env(2, 10, "available", "admin"), 500},
		{"quota-edge", env(10, 10, "available", "admin"), env(9, 10, "available", "admin"), 204},
		{"empty-project", env(0, 10, "available", "admin"), env(0, 10, "available", "admin"), 204},
	}
	// Undefined inputs: missing paths resolve to Undefined in both engines.
	partial := env(2, 10, "available", "admin")
	delete(partial, "volume.status")
	states = append(states, state{"absent-status", partial, env(1, 10, "available", "admin"), 204})
	// Ill-typed state: quota as a string exercises evaluation errors.
	illTyped := env(2, 10, "available", "admin")
	illTyped["quota_sets.volume"] = ocl.StringVal("ten")
	states = append(states, state{"ill-typed-quota", illTyped, illTyped, 204})

	for _, mode := range []Mode{Enforce, Observe} {
		for _, rq := range diffRequests() {
			for _, st := range states {
				name := fmt.Sprintf("%s/%s/%s", mode, rq.method, st.name)
				ve, ce := runEngine(t, set, EvalEager, false, false, mode, rq.method, rq.path, st.pre, st.post, st.status)
				vl, cl := runEngine(t, set, EvalLazy, true, true, mode, rq.method, rq.path, st.pre, st.post, st.status)
				vf, cf := runEngine(t, set, EvalLazy, true, false, mode, rq.method, rq.path, st.pre, st.post, st.status)
				vc, cc := runEngine(t, set, EvalCompiled, true, true, mode, rq.method, rq.path, st.pre, st.post, st.status)
				vcf, ccf := runEngine(t, set, EvalCompiled, true, false, mode, rq.method, rq.path, st.pre, st.post, st.status)
				va, ca := runEngineAsync(t, set, true, mode, rq.method, rq.path, st.pre, st.post, st.status)
				diffCompare(t, name, ve, vl, ce, cl)
				diffCompare(t, name+"/facts", ve, vf, ce, cf)
				diffCompare(t, name+"/compiled", ve, vc, ce, cc)
				diffCompare(t, name+"/compiled+facts", ve, vcf, ce, ccf)
				// The async arm's one designed observable difference: a
				// verdict decided in the deferred post phase (violation or
				// evaluation error) lands after the client already has the
				// backend's answer, so the wire code is the backend's, not
				// the 409/502 the synchronous monitor substitutes.
				wantCode := ce
				if va.Late {
					wantCode = va.BackendStatus
				}
				diffCompare(t, name+"/async", ve, va, wantCode, ca)
				diffEconomy(t, name+"/economy", vl, vc)
				diffEconomy(t, name+"/economy+facts", vf, vcf)
				diffEconomy(t, name+"/economy+async", vc, va)
			}
		}
	}
}

// randomEnv draws a state; roughly half the draws are well-typed, the rest
// mix in absent paths and wrong kinds so the error paths diverge or agree
// loudly.
func randomEnv(rng *rand.Rand) ocl.MapEnv {
	roles := []string{"admin", "member", "user", "intruder", ""}
	statuses := []string{"available", "in-use", "error", ""}
	e := env(rng.Intn(4), rng.Intn(4), statuses[rng.Intn(len(statuses))], roles[rng.Intn(len(roles))])
	if rng.Intn(4) == 0 {
		keys := []string{"project.id", "project.volumes", "quota_sets.volume", "volume.status", "user.id.groups"}
		delete(e, keys[rng.Intn(len(keys))])
	}
	if rng.Intn(6) == 0 {
		e["quota_sets.volume"] = ocl.StringVal("zz")
	}
	return e
}

// TestDifferentialFuzzStates drives both engines over seeded random pre and
// post states and demands verdict equivalence (reuse off: post states are
// unconstrained, so the frame assumption does not hold).
func TestDifferentialFuzzStates(t *testing.T) {
	set, err := contract.Generate(paper.CinderModel())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	reqs := diffRequests()
	statuses := []int{200, 204, 403, 500}
	for i := 0; i < 300; i++ {
		rq := reqs[rng.Intn(len(reqs))]
		pre, post := randomEnv(rng), randomEnv(rng)
		status := statuses[rng.Intn(len(statuses))]
		mode := Enforce
		if rng.Intn(2) == 0 {
			mode = Observe
		}
		name := fmt.Sprintf("fuzz-%d/%s/%s", i, mode, rq.method)
		ve, ce := runEngine(t, set, EvalEager, false, false, mode, rq.method, rq.path, pre, post, status)
		vl, cl := runEngine(t, set, EvalLazy, true, true, mode, rq.method, rq.path, pre, post, status)
		vf, cf := runEngine(t, set, EvalLazy, true, false, mode, rq.method, rq.path, pre, post, status)
		vc, cc := runEngine(t, set, EvalCompiled, true, true, mode, rq.method, rq.path, pre, post, status)
		vcf, ccf := runEngine(t, set, EvalCompiled, true, false, mode, rq.method, rq.path, pre, post, status)
		va, ca := runEngineAsync(t, set, true, mode, rq.method, rq.path, pre, post, status)
		diffCompare(t, name, ve, vl, ce, cl)
		diffCompare(t, name+"/facts", ve, vf, ce, cf)
		diffCompare(t, name+"/compiled", ve, vc, ce, cc)
		diffCompare(t, name+"/compiled+facts", ve, vcf, ce, ccf)
		wantCode := ce
		if va.Late {
			wantCode = va.BackendStatus
		}
		diffCompare(t, name+"/async", ve, va, wantCode, ca)
		diffEconomy(t, name+"/economy", vl, vc)
		diffEconomy(t, name+"/economy+facts", vf, vcf)
		diffEconomy(t, name+"/economy+async", vc, va)
		if t.Failed() {
			t.Fatalf("first divergence at iteration %d: pre=%v post=%v status=%d", i, pre, post, status)
		}
	}
}

// TestDifferentialPostReuseOnFrameRespectingStates checks the default lazy
// configuration (effect-frame reuse ON) against eager, on post states that
// honor the frame: only paths inside the active transitions' effect frame
// change across the call. This is the soundness condition the reuse
// optimization rests on — the cloud moved only what the model says the
// transition touches.
func TestDifferentialPostReuseOnFrameRespectingStates(t *testing.T) {
	set, err := contract.Generate(paper.CinderModel())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	reqs := diffRequests()
	for i := 0; i < 200; i++ {
		rq := reqs[rng.Intn(len(reqs))]
		pre := randomEnv(rng)
		// The paper model's every effect frame is {project.volumes}: a
		// frame-respecting post state mutates only the volume set.
		post := make(ocl.MapEnv, len(pre))
		for k, v := range pre {
			post[k] = v
		}
		elems := make([]ocl.Value, rng.Intn(4))
		for j := range elems {
			elems[j] = ocl.StringVal("v")
		}
		post["project.volumes"] = ocl.CollectionVal(elems...)
		name := fmt.Sprintf("reuse-%d/%s", i, rq.method)
		ve, ce := runEngine(t, set, EvalEager, false, false, Enforce, rq.method, rq.path, pre, post, 204)
		vl, cl := runEngine(t, set, EvalLazy, false, true, Enforce, rq.method, rq.path, pre, post, 204)
		vf, cf := runEngine(t, set, EvalLazy, false, false, Enforce, rq.method, rq.path, pre, post, 204)
		vc, cc := runEngine(t, set, EvalCompiled, false, true, Enforce, rq.method, rq.path, pre, post, 204)
		vcf, ccf := runEngine(t, set, EvalCompiled, false, false, Enforce, rq.method, rq.path, pre, post, 204)
		diffCompare(t, name, ve, vl, ce, cl)
		diffCompare(t, name+"/facts", ve, vf, ce, cf)
		diffCompare(t, name+"/compiled", ve, vc, ce, cc)
		diffCompare(t, name+"/compiled+facts", ve, vcf, ce, ccf)
		diffEconomy(t, name+"/economy", vl, vc)
		diffEconomy(t, name+"/economy+facts", vf, vcf)
		if t.Failed() {
			t.Fatalf("first divergence at iteration %d: pre=%v post=%v", i, pre, post)
		}
	}
}

// TestLazyFetchEconomyOnPaperModel pins the headline numbers the plan
// engines claim for the paper's Cinder model: a clean GET needs 5 cloud
// reads under the plan engines against the eager engine's 8, and a clean
// DELETE 6 against 10. Both demand-driven engines — lazy tree walk and
// compiled closure chains — must hit the same pins.
func TestLazyFetchEconomyOnPaperModel(t *testing.T) {
	set, err := contract.Generate(paper.CinderModel())
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		method, path        string
		pre, post           ocl.MapEnv
		status              int
		wantPlan, wantEager int
		wantReused          int
	}{
		// GET: 4 pre paths + post re-fetch of project.volumes; the other
		// 2 consequent reads reuse the pre-state (project.id, quota).
		{http.MethodGet, "/projects/p1/volumes/v1",
			env(2, 10, "available", "admin"), env(2, 10, "available", "admin"), 200, 5, 8, 2},
		// DELETE: 5 pre paths + 1 framed post path.
		{http.MethodDelete, "/projects/p1/volumes/v1",
			env(2, 10, "available", "admin"), env(1, 10, "available", "admin"), 204, 6, 10, 2},
	}
	for _, tc := range cases {
		ve, _ := runEngine(t, set, EvalEager, false, false, Enforce, tc.method, tc.path, tc.pre, tc.post, tc.status)
		if ve.Outcome != OK {
			t.Fatalf("%s: eager outcome %s, want ok", tc.method, ve.Outcome)
		}
		if ve.FetchedPaths != tc.wantEager {
			t.Errorf("%s: eager fetched %d paths, want %d", tc.method, ve.FetchedPaths, tc.wantEager)
		}
		for _, eval := range []EvalMode{EvalLazy, EvalCompiled} {
			vp, _ := runEngine(t, set, eval, false, false, Enforce, tc.method, tc.path, tc.pre, tc.post, tc.status)
			if vp.Outcome != OK {
				t.Fatalf("%s/%s: outcome %s, want ok", tc.method, eval, vp.Outcome)
			}
			if vp.FetchedPaths != tc.wantPlan {
				t.Errorf("%s/%s: fetched %d paths, want %d", tc.method, eval, vp.FetchedPaths, tc.wantPlan)
			}
			if vp.ReusedPaths != tc.wantReused {
				t.Errorf("%s/%s: reused %d paths, want %d", tc.method, eval, vp.ReusedPaths, tc.wantReused)
			}
		}
	}
}

// TestDifferentialFailPolicies checks that every snapshot-failure policy
// degrades identically under the lazy and compiled engines, with facts on
// and off: a cloud outage must yield the same outcome, attribution and
// economy regardless of how clauses are evaluated. Three fault shapes are
// driven per policy: pre-phase failure (cold), post-phase failure, and —
// for Degrade — a warmed cache followed by an outage, which must serve the
// cached pre-state in both engines.
func TestDifferentialFailPolicies(t *testing.T) {
	set, err := contract.Generate(paper.CinderModel())
	if err != nil {
		t.Fatal(err)
	}
	build := func(eval EvalMode, noFacts bool, policy FailPolicy, prov StateProvider) *Monitor {
		t.Helper()
		cfg := Config{
			Contracts:  set,
			Routes:     diffRoutes(),
			Provider:   prov,
			Forward:    &fakeForwarder{status: 204},
			Mode:       Enforce,
			Eval:       eval,
			NoFacts:    noFacts,
			FailPolicy: policy,
		}
		if policy == Degrade {
			cfg.PreStateCacheTTL = 20 * time.Millisecond
			cfg.DegradeTTL = 10 * time.Second
		}
		m, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	sendReq := func(m *Monitor, method string) (Verdict, int) {
		t.Helper()
		req := httptest.NewRequest(method, "/projects/p1/volumes/v1", nil)
		req.Header.Set("X-Auth-Token", "tok")
		rec := httptest.NewRecorder()
		m.ServeHTTP(rec, req)
		return lastVerdict(t, m), rec.Code
	}
	send := func(m *Monitor) (Verdict, int) { return sendReq(m, http.MethodDelete) }
	good := env(2, 10, "available", "admin")
	for _, policy := range []FailPolicy{FailClosed, FailOpen, Degrade} {
		for _, noFacts := range []bool{true, false} {
			tag := fmt.Sprintf("%s/facts=%v", policy, !noFacts)

			// Pre-phase outage from the first request.
			run := func(eval EvalMode) (Verdict, int) {
				prov := &switchProvider{env: good}
				prov.fail.Store(true)
				return send(build(eval, noFacts, policy, prov))
			}
			vl, cl := run(EvalLazy)
			vc, cc := run(EvalCompiled)
			diffCompare(t, tag+"/pre-fault", vl, vc, cl, cc)
			diffEconomy(t, tag+"/pre-fault", vl, vc)
			if vl.DegradedPre != vc.DegradedPre {
				t.Errorf("%s/pre-fault: DegradedPre diverged: lazy %v, compiled %v", tag, vl.DegradedPre, vc.DegradedPre)
			}

			// Post-phase outage: the pre-check passes, the post snapshot
			// fails mid-request.
			runPost := func(eval EvalMode) (Verdict, int) {
				return send(build(eval, noFacts, policy, &prePostProvider{pre: good}))
			}
			vl, cl = runPost(EvalLazy)
			vc, cc = runPost(EvalCompiled)
			diffCompare(t, tag+"/post-fault", vl, vc, cl, cc)
			diffEconomy(t, tag+"/post-fault", vl, vc)

			if policy != Degrade {
				continue
			}
			// Warm cache, then outage: Degrade must serve the cached
			// pre-state and mark the verdict degraded in both engines.
			// GET keeps the state fixpoint-clean across both requests.
			runWarm := func(eval EvalMode) (Verdict, int) {
				prov := &switchProvider{env: good}
				m := build(eval, noFacts, policy, prov)
				if v, _ := sendReq(m, http.MethodGet); v.Outcome != OK {
					t.Fatalf("%s/%s: warm request outcome %s, want ok", tag, eval, v.Outcome)
				}
				// Let the read cache lapse so the live snapshot really
				// fails; the degrade window is still wide open.
				time.Sleep(30 * time.Millisecond)
				prov.fail.Store(true)
				return sendReq(m, http.MethodGet)
			}
			vl, cl = runWarm(EvalLazy)
			vc, cc = runWarm(EvalCompiled)
			diffCompare(t, tag+"/degrade-warm", vl, vc, cl, cc)
			diffEconomy(t, tag+"/degrade-warm", vl, vc)
			if !vl.DegradedPre || !vc.DegradedPre {
				t.Errorf("%s/degrade-warm: DegradedPre lazy=%v compiled=%v, want both true", tag, vl.DegradedPre, vc.DegradedPre)
			}
		}
	}
}
