// Package rbac implements Role Based Access Control as used by OpenStack
// services (Section IV.C of the paper): users belong to user groups, groups
// are assigned roles within projects, and services authorize requests by
// evaluating policy rules — the policy.json paradigm — against the
// requester's credentials.
package rbac

import (
	"fmt"
	"sort"
)

// Directory is the RBAC database: users, groups, group membership and the
// role each group holds per project. It mirrors the information the paper
// assumes is "well-defined and available for the cloud developer and
// security analyst".
//
// Directory is not safe for concurrent mutation; services guard it with
// their own locks.
type Directory struct {
	// userGroups maps user ID -> set of group names.
	userGroups map[string]map[string]bool
	// groupRoles maps project ID -> group name -> set of roles.
	groupRoles map[string]map[string]map[string]bool
}

// NewDirectory returns an empty directory.
func NewDirectory() *Directory {
	return &Directory{
		userGroups: make(map[string]map[string]bool),
		groupRoles: make(map[string]map[string]map[string]bool),
	}
}

// AddUserToGroup records that the user belongs to the group.
func (d *Directory) AddUserToGroup(userID, group string) {
	gs, ok := d.userGroups[userID]
	if !ok {
		gs = make(map[string]bool)
		d.userGroups[userID] = gs
	}
	gs[group] = true
}

// RemoveUserFromGroup removes a membership; unknown pairs are ignored.
func (d *Directory) RemoveUserFromGroup(userID, group string) {
	delete(d.userGroups[userID], group)
}

// AssignRole grants the role to the group within the project.
func (d *Directory) AssignRole(projectID, group, role string) {
	pg, ok := d.groupRoles[projectID]
	if !ok {
		pg = make(map[string]map[string]bool)
		d.groupRoles[projectID] = pg
	}
	rs, ok := pg[group]
	if !ok {
		rs = make(map[string]bool)
		pg[group] = rs
	}
	rs[role] = true
}

// RevokeRole removes a grant; unknown grants are ignored.
func (d *Directory) RevokeRole(projectID, group, role string) {
	delete(d.groupRoles[projectID][group], role)
}

// Groups returns the sorted groups the user belongs to.
func (d *Directory) Groups(userID string) []string {
	return sortedKeys(d.userGroups[userID])
}

// Roles returns the sorted roles the user holds in the project, through any
// of its groups.
func (d *Directory) Roles(userID, projectID string) []string {
	set := make(map[string]bool)
	for g := range d.userGroups[userID] {
		for r := range d.groupRoles[projectID][g] {
			set[r] = true
		}
	}
	return sortedKeys(set)
}

// HasRole reports whether the user holds the role in the project.
func (d *Directory) HasRole(userID, projectID, role string) bool {
	for g := range d.userGroups[userID] {
		if d.groupRoles[projectID][g][role] {
			return true
		}
	}
	return false
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Credentials are the authenticated requester attributes a policy rule can
// reference, mirroring what Keystone puts into a token's context.
type Credentials struct {
	UserID    string
	ProjectID string
	Roles     []string
	Groups    []string
}

// HasRole reports whether the credentials carry the role.
func (c Credentials) HasRole(role string) bool {
	for _, r := range c.Roles {
		if r == role {
			return true
		}
	}
	return false
}

// HasGroup reports whether the credentials carry the group.
func (c Credentials) HasGroup(group string) bool {
	for _, g := range c.Groups {
		if g == group {
			return true
		}
	}
	return false
}

// Target carries request attributes a rule can match with the
// `%(attr)s` substitution syntax, e.g. the project ID a resource belongs to.
type Target map[string]string

// UnknownRuleError is returned when evaluation references an undefined rule.
type UnknownRuleError struct {
	Rule string
}

// Error implements the error interface.
func (e *UnknownRuleError) Error() string {
	return fmt.Sprintf("rbac: unknown policy rule %q", e.Rule)
}
