package rbac

import (
	"encoding/json"
	"errors"
	"testing"
	"testing/quick"
)

func TestDirectoryMembershipAndRoles(t *testing.T) {
	d := NewDirectory()
	d.AddUserToGroup("alice", "proj_administrator")
	d.AddUserToGroup("bob", "service_architect")
	d.AddUserToGroup("bob", "business_analyst")
	d.AssignRole("p1", "proj_administrator", "admin")
	d.AssignRole("p1", "service_architect", "member")
	d.AssignRole("p1", "business_analyst", "user")
	d.AssignRole("p2", "proj_administrator", "member")

	if got := d.Groups("bob"); len(got) != 2 || got[0] != "business_analyst" {
		t.Errorf("Groups(bob) = %v", got)
	}
	if got := d.Roles("alice", "p1"); len(got) != 1 || got[0] != "admin" {
		t.Errorf("Roles(alice,p1) = %v", got)
	}
	if got := d.Roles("bob", "p1"); len(got) != 2 {
		t.Errorf("Roles(bob,p1) = %v, want [member user]", got)
	}
	// Role assignments are per-project.
	if got := d.Roles("alice", "p2"); len(got) != 1 || got[0] != "member" {
		t.Errorf("Roles(alice,p2) = %v", got)
	}
	if !d.HasRole("alice", "p1", "admin") {
		t.Error("alice should be admin in p1")
	}
	if d.HasRole("alice", "p2", "admin") {
		t.Error("alice should not be admin in p2")
	}
	if d.HasRole("nobody", "p1", "admin") {
		t.Error("unknown user should have no roles")
	}
}

func TestDirectoryRevocation(t *testing.T) {
	d := NewDirectory()
	d.AddUserToGroup("alice", "g")
	d.AssignRole("p", "g", "admin")
	if !d.HasRole("alice", "p", "admin") {
		t.Fatal("setup failed")
	}
	d.RevokeRole("p", "g", "admin")
	if d.HasRole("alice", "p", "admin") {
		t.Error("role survives revocation")
	}
	d.AssignRole("p", "g", "admin")
	d.RemoveUserFromGroup("alice", "g")
	if d.HasRole("alice", "p", "admin") {
		t.Error("role survives group removal")
	}
	// Removing unknown pairs must not panic.
	d.RemoveUserFromGroup("ghost", "g")
	d.RevokeRole("ghost", "g", "admin")
}

func cinderPolicy(t *testing.T) *Policy {
	t.Helper()
	p, err := NewPolicy(map[string]string{
		"admin_required": "role:admin",
		"volume:get":     "role:admin or role:member or role:user",
		"volume:update":  "role:admin or role:member",
		"volume:create":  "role:admin or role:member",
		"volume:delete":  "rule:admin_required",
		"owner_only":     "project_id:%(project_id)s",
		"admin_or_owner": "rule:admin_required or rule:owner_only",
	})
	if err != nil {
		t.Fatalf("NewPolicy: %v", err)
	}
	return p
}

func TestPolicyTableISemantics(t *testing.T) {
	p := cinderPolicy(t)
	admin := Credentials{UserID: "alice", ProjectID: "p1", Roles: []string{"admin"}}
	member := Credentials{UserID: "bob", ProjectID: "p1", Roles: []string{"member"}}
	user := Credentials{UserID: "carol", ProjectID: "p1", Roles: []string{"user"}}

	tests := []struct {
		rule  string
		creds Credentials
		want  bool
	}{
		{"volume:get", admin, true},
		{"volume:get", member, true},
		{"volume:get", user, true},
		{"volume:update", admin, true},
		{"volume:update", member, true},
		{"volume:update", user, false},
		{"volume:create", member, true},
		{"volume:create", user, false},
		{"volume:delete", admin, true},
		{"volume:delete", member, false},
		{"volume:delete", user, false},
	}
	for _, tt := range tests {
		got, err := p.Check(tt.rule, tt.creds, nil)
		if err != nil {
			t.Fatalf("Check(%s): %v", tt.rule, err)
		}
		if got != tt.want {
			t.Errorf("Check(%s, roles=%v) = %v, want %v", tt.rule, tt.creds.Roles, got, tt.want)
		}
	}
}

func TestPolicyTargetSubstitution(t *testing.T) {
	p := cinderPolicy(t)
	owner := Credentials{UserID: "dave", ProjectID: "p7", Roles: []string{"user"}}
	ok, err := p.Check("admin_or_owner", owner, Target{"project_id": "p7"})
	if err != nil || !ok {
		t.Errorf("owner should pass admin_or_owner: %v %v", ok, err)
	}
	ok, err = p.Check("admin_or_owner", owner, Target{"project_id": "other"})
	if err != nil || ok {
		t.Errorf("non-owner non-admin should fail: %v %v", ok, err)
	}
	// Missing target attribute denies.
	ok, err = p.Check("owner_only", owner, nil)
	if err != nil || ok {
		t.Errorf("missing target should deny: %v %v", ok, err)
	}
}

func TestPolicyConstsAndConnectives(t *testing.T) {
	p := MustPolicy(map[string]string{
		"allow":    "@",
		"deny":     "!",
		"empty":    "",
		"both":     "role:a and role:b",
		"neg":      "not role:a",
		"grouping": "(role:a or role:b) and not role:c",
		"group":    "group:g1",
		"uid":      "user_id:u42",
	})
	creds := func(roles ...string) Credentials { return Credentials{Roles: roles} }
	tests := []struct {
		rule  string
		creds Credentials
		want  bool
	}{
		{"allow", creds(), true},
		{"deny", creds("admin"), false},
		{"empty", creds(), true},
		{"both", creds("a"), false},
		{"both", creds("a", "b"), true},
		{"neg", creds("a"), false},
		{"neg", creds("b"), true},
		{"grouping", creds("a"), true},
		{"grouping", creds("a", "c"), false},
		{"grouping", creds("c"), false},
		{"group", Credentials{Groups: []string{"g1"}}, true},
		{"group", Credentials{Groups: []string{"g2"}}, false},
		{"uid", Credentials{UserID: "u42"}, true},
		{"uid", Credentials{UserID: "u43"}, false},
	}
	for _, tt := range tests {
		got, err := p.Check(tt.rule, tt.creds, nil)
		if err != nil {
			t.Fatalf("Check(%s): %v", tt.rule, err)
		}
		if got != tt.want {
			t.Errorf("Check(%s, %+v) = %v, want %v", tt.rule, tt.creds, got, tt.want)
		}
	}
}

func TestPolicyUnknownRule(t *testing.T) {
	p := cinderPolicy(t)
	_, err := p.Check("no:such:rule", Credentials{}, nil)
	var unknown *UnknownRuleError
	if !errors.As(err, &unknown) {
		t.Fatalf("want UnknownRuleError, got %v", err)
	}
	if unknown.Rule != "no:such:rule" {
		t.Errorf("rule = %q", unknown.Rule)
	}
}

func TestPolicyUnknownRuleReference(t *testing.T) {
	p := MustPolicy(map[string]string{"a": "rule:missing"})
	if _, err := p.Check("a", Credentials{}, nil); err == nil {
		t.Error("dangling rule reference should error")
	}
}

func TestPolicyCycleTerminates(t *testing.T) {
	p := MustPolicy(map[string]string{
		"a": "rule:b",
		"b": "rule:a",
	})
	if _, err := p.Check("a", Credentials{}, nil); err == nil {
		t.Error("cyclic rules should error, not hang")
	}
}

func TestPolicyParseErrors(t *testing.T) {
	for _, src := range []string{
		"role:",           // empty value is fine actually? -> role named "" allowed; skip
		"bogus:x",         // unknown kind
		"role:a or",       // dangling connective
		"(role:a",         // unbalanced paren
		"role:a role:b",   // missing connective
		"not",             // dangling not
		"role:a and (or)", // nested garbage
	} {
		if src == "role:" {
			continue // empty role value is tolerated like oslo.policy
		}
		if _, err := NewPolicy(map[string]string{"r": src}); err == nil {
			t.Errorf("NewPolicy(%q): want error", src)
		}
	}
}

func TestParsePolicyJSON(t *testing.T) {
	data := []byte(`{
		"volume:delete": "role:admin",
		"volume:get": "role:admin or role:member or role:user"
	}`)
	p, err := ParsePolicy(data)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := p.Check("volume:delete", Credentials{Roles: []string{"admin"}}, nil)
	if err != nil || !ok {
		t.Errorf("Check = %v, %v", ok, err)
	}
	if _, err := ParsePolicy([]byte("not json")); err == nil {
		t.Error("malformed JSON accepted")
	}
	// Round-trip through MarshalJSON.
	out, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := ParsePolicy(out)
	if err != nil {
		t.Fatalf("re-parse marshaled policy: %v", err)
	}
	if len(p2.Rules()) != len(p.Rules()) {
		t.Errorf("round-trip lost rules: %v vs %v", p2.Rules(), p.Rules())
	}
}

func TestPolicyCloneIsolation(t *testing.T) {
	p := cinderPolicy(t)
	cp := p.Clone()
	if err := cp.SetRule("volume:delete", "role:member"); err != nil {
		t.Fatal(err)
	}
	member := Credentials{Roles: []string{"member"}}
	ok, _ := cp.Check("volume:delete", member, nil)
	if !ok {
		t.Error("mutated clone should allow member")
	}
	ok, _ = p.Check("volume:delete", member, nil)
	if ok {
		t.Error("mutating the clone must not affect the original")
	}
}

func TestPolicySetRuleRejectsGarbage(t *testing.T) {
	p := cinderPolicy(t)
	if err := p.SetRule("volume:delete", "((("); err == nil {
		t.Error("garbage rule accepted")
	}
}

func TestPolicySourceAndRules(t *testing.T) {
	p := cinderPolicy(t)
	src, ok := p.Source("volume:delete")
	if !ok || src != "rule:admin_required" {
		t.Errorf("Source = %q, %v", src, ok)
	}
	if _, ok := p.Source("ghost"); ok {
		t.Error("ghost rule has source")
	}
	rules := p.Rules()
	if len(rules) != 7 {
		t.Errorf("Rules = %v", rules)
	}
}

// Property: a role check passes exactly when the role is among the
// credentials' roles, regardless of the other roles present.
func TestPolicyRoleCheckProperty(t *testing.T) {
	p := MustPolicy(map[string]string{"r": "role:target"})
	f := func(others []string, include bool) bool {
		roles := make([]string, 0, len(others)+1)
		for _, o := range others {
			if o != "target" {
				roles = append(roles, o)
			}
		}
		if include {
			roles = append(roles, "target")
		}
		got, err := p.Check("r", Credentials{Roles: roles}, nil)
		return err == nil && got == include
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: directory role lookup is the union over the user's groups.
func TestDirectoryRolesProperty(t *testing.T) {
	f := func(groups []uint8, grants []uint8) bool {
		d := NewDirectory()
		groupName := func(i uint8) string { return "g" + string(rune('a'+i%8)) }
		roleName := func(i uint8) string { return "r" + string(rune('a'+i%4)) }
		want := make(map[string]bool)
		inGroup := make(map[string]bool)
		for _, g := range groups {
			d.AddUserToGroup("u", groupName(g))
			inGroup[groupName(g)] = true
		}
		for _, gr := range grants {
			g := groupName(gr)
			r := roleName(gr / 8)
			d.AssignRole("p", g, r)
			if inGroup[g] {
				want[r] = true
			}
		}
		got := d.Roles("u", "p")
		if len(got) != len(want) {
			return false
		}
		for _, r := range got {
			if !want[r] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
