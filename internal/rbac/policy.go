package rbac

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// Policy is a parsed policy.json document: a set of named rules. Services
// check a request by evaluating the rule named after the action, e.g.
// "volume:delete".
type Policy struct {
	rules map[string]checkExpr
	// raw keeps the original rule sources for re-serialization.
	raw map[string]string
}

// ParsePolicy parses a policy.json document:
//
//	{
//	  "admin_required": "role:admin",
//	  "volume:get":     "role:admin or role:member or role:user",
//	  "volume:delete":  "rule:admin_required",
//	  "volume:attach":  "role:admin and project_id:%(project_id)s"
//	}
//
// Rule syntax: `role:<name>`, `group:<name>`, `user_id:<id>`, `rule:<name>`
// references, `<attr>:%(<target>)s` target matching, the constants `@`
// (always allow), `!` (always deny) and `true`/`false`, combined with
// `and`, `or`, `not` and parentheses.
func ParsePolicy(data []byte) (*Policy, error) {
	var doc map[string]string
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("rbac: parse policy.json: %w", err)
	}
	return NewPolicy(doc)
}

// NewPolicy builds a policy from rule name -> rule source.
func NewPolicy(rules map[string]string) (*Policy, error) {
	p := &Policy{
		rules: make(map[string]checkExpr, len(rules)),
		raw:   make(map[string]string, len(rules)),
	}
	for name, src := range rules {
		expr, err := parseRule(src)
		if err != nil {
			return nil, fmt.Errorf("rbac: rule %q: %w", name, err)
		}
		p.rules[name] = expr
		p.raw[name] = src
	}
	return p, nil
}

// MustPolicy builds a policy and panics on error; for constant policies in
// tests and fixtures.
func MustPolicy(rules map[string]string) *Policy {
	p, err := NewPolicy(rules)
	if err != nil {
		panic(err)
	}
	return p
}

// Rules returns the sorted rule names.
func (p *Policy) Rules() []string {
	out := make([]string, 0, len(p.rules))
	for name := range p.rules {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Source returns the original source text of a rule.
func (p *Policy) Source(name string) (string, bool) {
	src, ok := p.raw[name]
	return src, ok
}

// SetRule adds or replaces a rule. Used by the mutation framework to inject
// authorization faults.
func (p *Policy) SetRule(name, src string) error {
	expr, err := parseRule(src)
	if err != nil {
		return fmt.Errorf("rbac: rule %q: %w", name, err)
	}
	p.rules[name] = expr
	p.raw[name] = src
	return nil
}

// Clone returns a deep copy of the policy (mutation campaigns clone the
// baseline policy before perturbing it).
func (p *Policy) Clone() *Policy {
	cp := &Policy{
		rules: make(map[string]checkExpr, len(p.rules)),
		raw:   make(map[string]string, len(p.raw)),
	}
	for k, v := range p.rules {
		cp.rules[k] = v
	}
	for k, v := range p.raw {
		cp.raw[k] = v
	}
	return cp
}

// MarshalJSON re-serializes the policy as a policy.json document.
func (p *Policy) MarshalJSON() ([]byte, error) {
	return json.Marshal(p.raw)
}

// Check evaluates the named rule against the credentials and target.
// A missing rule denies and returns an UnknownRuleError.
func (p *Policy) Check(rule string, creds Credentials, target Target) (bool, error) {
	expr, ok := p.rules[rule]
	if !ok {
		return false, &UnknownRuleError{Rule: rule}
	}
	return expr.eval(p, creds, target, 0)
}

// maxRuleDepth bounds rule-reference chains so cyclic policies terminate.
const maxRuleDepth = 32

// checkExpr is a parsed rule expression.
type checkExpr interface {
	eval(p *Policy, creds Credentials, target Target, depth int) (bool, error)
}

type constCheck bool

func (c constCheck) eval(*Policy, Credentials, Target, int) (bool, error) {
	return bool(c), nil
}

type roleCheck string

func (r roleCheck) eval(_ *Policy, creds Credentials, _ Target, _ int) (bool, error) {
	return creds.HasRole(string(r)), nil
}

type groupCheck string

func (g groupCheck) eval(_ *Policy, creds Credentials, _ Target, _ int) (bool, error) {
	return creds.HasGroup(string(g)), nil
}

type userCheck string

func (u userCheck) eval(_ *Policy, creds Credentials, _ Target, _ int) (bool, error) {
	return creds.UserID == string(u), nil
}

type ruleRef string

func (r ruleRef) eval(p *Policy, creds Credentials, target Target, depth int) (bool, error) {
	if depth >= maxRuleDepth {
		return false, fmt.Errorf("rbac: rule reference depth exceeded at %q", string(r))
	}
	expr, ok := p.rules[string(r)]
	if !ok {
		return false, &UnknownRuleError{Rule: string(r)}
	}
	return expr.eval(p, creds, target, depth+1)
}

// attrCheck matches a credential attribute against a target substitution,
// e.g. `project_id:%(project_id)s`.
type attrCheck struct {
	attr      string
	targetKey string
}

func (a attrCheck) eval(_ *Policy, creds Credentials, target Target, _ int) (bool, error) {
	want, ok := target[a.targetKey]
	if !ok {
		return false, nil
	}
	switch a.attr {
	case "project_id":
		return creds.ProjectID == want, nil
	case "user_id":
		return creds.UserID == want, nil
	default:
		return false, nil
	}
}

type notCheck struct{ inner checkExpr }

func (n notCheck) eval(p *Policy, creds Credentials, target Target, depth int) (bool, error) {
	ok, err := n.inner.eval(p, creds, target, depth)
	return !ok, err
}

type andCheck struct{ l, r checkExpr }

func (a andCheck) eval(p *Policy, creds Credentials, target Target, depth int) (bool, error) {
	ok, err := a.l.eval(p, creds, target, depth)
	if err != nil || !ok {
		return false, err
	}
	return a.r.eval(p, creds, target, depth)
}

type orCheck struct{ l, r checkExpr }

func (o orCheck) eval(p *Policy, creds Credentials, target Target, depth int) (bool, error) {
	ok, err := o.l.eval(p, creds, target, depth)
	if err != nil || ok {
		return ok, err
	}
	return o.r.eval(p, creds, target, depth)
}

// parseRule parses a rule source string. Grammar (precedence low to high):
//
//	expr   := term ("or" term)*
//	term   := factor ("and" factor)*
//	factor := "not" factor | "(" expr ")" | atom
//	atom   := "@" | "!" | "true" | "false" | kind ":" value
func parseRule(src string) (checkExpr, error) {
	toks := tokenizeRule(src)
	p := &ruleParser{toks: toks}
	if len(toks) == 0 {
		// Empty rule means "always allow" in oslo.policy.
		return constCheck(true), nil
	}
	expr, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if p.pos != len(p.toks) {
		return nil, fmt.Errorf("unexpected token %q", p.toks[p.pos])
	}
	return expr, nil
}

// tokenizeRule splits a rule into tokens. Parentheses are separate tokens
// except inside a `%(key)s` target substitution, which stays part of its
// check token.
func tokenizeRule(src string) []string {
	var toks []string
	var cur strings.Builder
	flush := func() {
		if cur.Len() > 0 {
			toks = append(toks, cur.String())
			cur.Reset()
		}
	}
	for i := 0; i < len(src); i++ {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			flush()
		case c == '%' && i+1 < len(src) && src[i+1] == '(':
			// Consume the whole %(key)s substitution into the current token.
			end := strings.IndexByte(src[i:], ')')
			if end < 0 {
				cur.WriteByte(c)
				continue
			}
			stop := i + end + 1
			if stop < len(src) && src[stop] == 's' {
				stop++
			}
			cur.WriteString(src[i:stop])
			i = stop - 1
		case c == '(' || c == ')':
			flush()
			toks = append(toks, string(c))
		default:
			cur.WriteByte(c)
		}
	}
	flush()
	return toks
}

type ruleParser struct {
	toks []string
	pos  int
}

func (p *ruleParser) peek() string {
	if p.pos >= len(p.toks) {
		return ""
	}
	return p.toks[p.pos]
}

func (p *ruleParser) parseOr() (checkExpr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for strings.EqualFold(p.peek(), "or") {
		p.pos++
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = orCheck{l: left, r: right}
	}
	return left, nil
}

func (p *ruleParser) parseAnd() (checkExpr, error) {
	left, err := p.parseFactor()
	if err != nil {
		return nil, err
	}
	for strings.EqualFold(p.peek(), "and") {
		p.pos++
		right, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		left = andCheck{l: left, r: right}
	}
	return left, nil
}

func (p *ruleParser) parseFactor() (checkExpr, error) {
	tok := p.peek()
	switch {
	case tok == "":
		return nil, fmt.Errorf("unexpected end of rule")
	case strings.EqualFold(tok, "not"):
		p.pos++
		inner, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		return notCheck{inner: inner}, nil
	case tok == "(":
		p.pos++
		expr, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if p.peek() != ")" {
			return nil, fmt.Errorf("missing closing parenthesis")
		}
		p.pos++
		return expr, nil
	default:
		p.pos++
		return parseAtom(tok)
	}
}

func parseAtom(tok string) (checkExpr, error) {
	switch tok {
	case "@", "true":
		return constCheck(true), nil
	case "!", "false":
		return constCheck(false), nil
	}
	kind, value, ok := strings.Cut(tok, ":")
	if !ok {
		return nil, fmt.Errorf("malformed check %q (expected kind:value)", tok)
	}
	// Target substitution: attr:%(key)s
	if strings.HasPrefix(value, "%(") && strings.HasSuffix(value, ")s") {
		return attrCheck{attr: kind, targetKey: value[2 : len(value)-2]}, nil
	}
	switch kind {
	case "role":
		return roleCheck(value), nil
	case "group":
		return groupCheck(value), nil
	case "user_id":
		return userCheck(value), nil
	case "rule":
		return ruleRef(value), nil
	default:
		return nil, fmt.Errorf("unknown check kind %q", kind)
	}
}
