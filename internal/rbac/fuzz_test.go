package rbac

import "testing"

// FuzzParseRule checks the policy-rule parser never panics and that
// accepted rules evaluate without panicking.
func FuzzParseRule(f *testing.F) {
	for _, s := range []string{
		"",
		"@",
		"!",
		"role:admin",
		"role:admin or role:member",
		"rule:admin_required and not group:banned",
		"project_id:%(project_id)s",
		"(role:a or role:b) and not role:c",
		"not not role:x",
		"role:",
		"bogus",
		"(((",
		"%(",
		"user_id:%(user_id)s or @",
	} {
		f.Add(s)
	}
	creds := Credentials{
		UserID:    "u1",
		ProjectID: "p1",
		Roles:     []string{"admin", "a"},
		Groups:    []string{"g1"},
	}
	target := Target{"project_id": "p1", "user_id": "u1"}
	f.Fuzz(func(t *testing.T, src string) {
		p, err := NewPolicy(map[string]string{"r": src})
		if err != nil {
			return
		}
		// Accepted rules must evaluate deterministically without panics.
		got1, err1 := p.Check("r", creds, target)
		got2, err2 := p.Check("r", creds, target)
		if (err1 == nil) != (err2 == nil) || got1 != got2 {
			t.Fatalf("nondeterministic rule %q: (%v,%v) vs (%v,%v)", src, got1, err1, got2, err2)
		}
	})
}
