// The symbolic pass (MV7xx) surfaces what the compile-time fact engine
// (internal/contract facts, built on internal/analysis/symbolic) proved
// about the generated contracts: disjuncts whose pre-condition decides to
// a constant for every state, disjuncts subsumed by a sibling, state
// paths no clause can ever demand, and — as a hard error — a facts
// artifact that fails its own machine check. These findings are modeling
// smells the monitor silently optimizes around at runtime; modelvet makes
// them visible at design time.
package analysis

import (
	"fmt"

	"cloudmon/internal/contract"
	"cloudmon/internal/ocl"
)

func symbolicPass() Pass {
	return Pass{
		Name: "symbolic",
		Doc:  "compile-time clause facts: statically decided or subsumed disjuncts, dead state paths",
		Codes: []string{
			"MV700", // disjunct statically false or undefined: the case can never fire
			"MV701", // disjunct statically true: the case fires for every state
			"MV702", // disjunct subsumed by a sibling: redundant in pre(m)
			"MV703", // state path never demanded once static clauses are pruned
			"MV704", // facts artifact failed its machine check
		},
		Run: runSymbolic,
	}
}

func runSymbolic(ctx *Context) []Diagnostic {
	if ctx.contracts == nil {
		return nil
	}
	var ds []Diagnostic
	for _, c := range ctx.contracts.Contracts {
		f := c.Plan().Facts
		if f == nil {
			continue
		}
		if err := f.Check(c); err != nil {
			ds = append(ds, Diagnostic{
				Code:     "MV704",
				Severity: Error,
				Pass:     "symbolic",
				Loc:      contractLoc(c, ""),
				Message:  fmt.Sprintf("facts artifact failed its machine check: %v", err),
			})
			continue
		}
		for i := range f.Pre {
			pf := &f.Pre[i]
			tr := c.Cases[i].Transition
			if s := pf.Static; s != nil {
				if s.Kind == ocl.KindBool && s.Bool {
					ds = append(ds, Diagnostic{
						Code:     "MV701",
						Severity: Info,
						Pass:     "symbolic",
						Loc:      transitionLoc(tr, "pre-condition"),
						Message: fmt.Sprintf(
							"disjunct fires for every state: inv(%s) and guard %s", tr.From, pf.Reason),
					})
				} else {
					ds = append(ds, Diagnostic{
						Code:     "MV700",
						Severity: Warning,
						Pass:     "symbolic",
						Loc:      transitionLoc(tr, "pre-condition"),
						Message: fmt.Sprintf(
							"disjunct can never fire: inv(%s) and guard %s", tr.From, pf.Reason),
					})
				}
			}
			for _, j := range pf.SubsumedBy {
				sib := c.Cases[j].Transition
				ds = append(ds, Diagnostic{
					Code:     "MV702",
					Severity: Warning,
					Pass:     "symbolic",
					Loc:      transitionLoc(tr, "pre-condition"),
					Message: fmt.Sprintf(
						"redundant disjunct: it entails the %s->%s case, so it never decides pre(%s) alone",
						sib.From, sib.To, c.Trigger),
				})
			}
		}
		for _, d := range f.DeadPaths {
			ds = append(ds, Diagnostic{
				Code:     "MV703",
				Severity: Info,
				Pass:     "symbolic",
				Loc:      contractLoc(c, "state paths"),
				Message: fmt.Sprintf(
					"state path %q is never demanded: %s", d.Path, d.Reason),
			})
		}
	}
	return ds
}

// contractLoc locates a generated contract (a trigger's clause set).
func contractLoc(c *contract.Contract, detail string) Location {
	return Location{
		Diagram: "behavioral",
		Element: fmt.Sprintf("contract %s", c.Trigger),
		Detail:  detail,
	}
}
