package analysis

import (
	"testing"

	"cloudmon/internal/paper"
	"cloudmon/internal/uml"
)

// TestStaticDisjunctMV700AndDeadPathMV703: a guard carrying a false
// conjunct makes the whole DELETE disjunct statically false — the case can
// never fire, and the paths only its clauses read are never demanded.
func TestStaticDisjunctMV700AndDeadPathMV703(t *testing.T) {
	m := minimalModel()
	m.Behavioral.Transitions[1].Guard = "things->size() = 1 and 2 > 3"
	r := analyze(m)
	wantDiag(t, r, "MV700", Warning, "DELETE(thing) busy->empty", "can never fire")
	wantDiag(t, r, "MV703", Info, "contract DELETE(thing)", `"things"`, "never demanded")
}

// TestTautologicalDisjunctMV701: a source invariant that folds to true and
// a guardless transition give a disjunct that fires for every state.
func TestTautologicalDisjunctMV701(t *testing.T) {
	m := minimalModel()
	m.Behavioral.States[0].Invariant = "2 > 1"
	r := analyze(m)
	wantDiag(t, r, "MV701", Info, "POST(thing) empty->busy", "fires for every state")
}

// TestSubsumedDisjunctMV702: a second DELETE case whose inv+guard entail a
// sibling's is redundant in the disjunction pre(m).
func TestSubsumedDisjunctMV702(t *testing.T) {
	m := minimalModel()
	// "full" duplicates busy's invariant; its DELETE guard (>= 1) is
	// entailed by busy's (= 1), so the busy case is the redundant one.
	m.Behavioral.States = append(m.Behavioral.States,
		&uml.State{Name: "full", Invariant: "things->size() >= 1"})
	m.Behavioral.Transitions = append(m.Behavioral.Transitions,
		&uml.Transition{
			From: "busy", To: "full",
			Trigger: uml.Trigger{Method: uml.PUT, Resource: "thing"},
			Guard:   "things->size() >= 1",
			Effect:  "things->size() = pre(things->size())",
			SecReqs: []string{"1.2"},
		},
		&uml.Transition{
			From: "full", To: "busy",
			Trigger: uml.Trigger{Method: uml.DELETE, Resource: "thing"},
			Guard:   "things->size() >= 1",
			Effect:  "things->size() = pre(things->size()) - 1",
			SecReqs: []string{"1.2"},
		})
	r := analyze(m)
	wantDiag(t, r, "MV702", Warning, "DELETE(thing) busy->empty",
		"redundant disjunct", "full->busy")
}

// TestSymbolicQuietOnShippedModels: the paper's models have no statically
// decided or subsumed disjuncts and no dead paths — MV70x must stay
// silent on them (their facts are pairwise exclusions, which are an
// optimization, not a smell).
func TestSymbolicQuietOnShippedModels(t *testing.T) {
	for name, m := range map[string]*uml.Model{
		"cinder":  paper.CinderModel(),
		"nova":    paper.NovaModel(),
		"minimal": minimalModel(),
	} {
		r := analyze(m)
		for _, code := range []string{"MV700", "MV701", "MV702", "MV703", "MV704"} {
			if ds := r.ByCode(code); len(ds) != 0 {
				t.Errorf("%s model: %s fired:\n%s", name, code, r.Render())
			}
		}
	}
}

// TestMV601QuietOnTautologyGuard: a written guard that constant-folds to
// true is a deliberate "always fires", not a forgotten guard — MV601 must
// not flag it even though it reads none of the trigger's vocabulary.
func TestMV601QuietOnTautologyGuard(t *testing.T) {
	m := minimalModel()
	m.Behavioral.States = append(m.Behavioral.States,
		&uml.State{Name: "drained", Invariant: "thing.count = 0"})
	m.Behavioral.Transitions = append(m.Behavioral.Transitions, &uml.Transition{
		From: "drained", To: "empty",
		Trigger: uml.Trigger{Method: uml.DELETE, Resource: "thing"},
		Guard:   "1 = 1",
		Effect:  "things->size() = pre(things->size())",
		SecReqs: []string{"1.2"},
	})
	m.Behavioral.Transitions = append(m.Behavioral.Transitions, &uml.Transition{
		From: "busy", To: "drained",
		Trigger: uml.Trigger{Method: uml.PUT, Resource: "thing"},
		Guard:   "thing.count = 0",
		Effect:  "things->size() = pre(things->size())",
		SecReqs: []string{"1.2"},
	})
	r := analyze(m)
	if got := len(r.ByCode("MV601")); got != 0 {
		t.Fatalf("MV601 fired %d times on an explicit tautology guard:\n%s", got, r.Render())
	}
}

// TestDiagnosticsDeduped: two identical transitions yield byte-identical
// diagnostics; the report keeps one.
func TestDiagnosticsDeduped(t *testing.T) {
	m := minimalModel()
	dup := *m.Behavioral.Transitions[1]
	m.Behavioral.Transitions = append(m.Behavioral.Transitions, &dup)
	// Both DELETE cases now carry identical inv+guard: each subsumes the
	// other, producing two identical MV702 diagnostics per direction
	// before deduplication.
	r := analyze(m)
	ds := r.ByCode("MV702")
	seen := make(map[string]bool)
	for _, d := range ds {
		key := d.Loc.String() + "|" + d.Message
		if seen[key] {
			t.Fatalf("duplicate diagnostic survived dedupe: %s: %s", d.Loc, d.Message)
		}
		seen[key] = true
	}
	if len(ds) == 0 {
		t.Fatalf("expected MV702 on duplicated transitions:\n%s", r.Render())
	}
}
