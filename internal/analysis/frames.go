// The frames pass (MV6xx) checks the model's effect frames and disjunct
// vocabularies against what the evaluation planner can exploit: effects
// that change state nothing reads, and pre-condition disjuncts that ignore
// the guard vocabulary their trigger discriminates on. Both are legal, both
// almost always mean the model says less than the modeler thinks.
package analysis

import (
	"fmt"
	"sort"
	"strings"

	"cloudmon/internal/analysis/symbolic"
	"cloudmon/internal/ocl"
	"cloudmon/internal/uml"
)

func framesPass() Pass {
	return Pass{
		Name: "frames",
		Doc:  "effect frames and disjunct vocabulary vs the paths guards and invariants read",
		Codes: []string{
			"MV600", // dead effect: changed path read by no invariant or guard
			"MV601", // unguarded disjunct: case shares no paths with the trigger's guard vocabulary
		},
		Run: runFrames,
	}
}

func runFrames(ctx *Context) []Diagnostic {
	var ds []Diagnostic

	// Paths some invariant or guard reads (current-state context), plus the
	// per-state invariant and per-transition guard path sets.
	read := make(map[string]bool)
	invPaths := make(map[string][]string)
	guardPaths := make(map[*uml.Transition][]string)
	guardExprs := make(map[*uml.Transition]ocl.Expr)
	for _, me := range ctx.exprs {
		if me.Expr == nil {
			continue
		}
		cur, _ := ocl.ContextPaths(me.Expr)
		switch me.Kind {
		case exprInvariant:
			invPaths[me.State.Name] = cur
		case exprGuard:
			guardPaths[me.Transition] = cur
			guardExprs[me.Transition] = me.Expr
		case exprEffect:
			continue
		}
		for _, p := range cur {
			read[p] = true
		}
	}

	// MV600 — a path the effect changes that no invariant or guard ever
	// reads: the monitor re-fetches and verifies it after every call, yet
	// no pre-condition can depend on it. Either the model under-specifies
	// its states or the effect constrains the wrong attribute.
	for _, me := range ctx.exprs {
		if me.Kind != exprEffect || me.Expr == nil {
			continue
		}
		touched, _ := ocl.ContextPaths(me.Expr)
		for _, p := range touched {
			if !read[p] {
				ds = append(ds, Diagnostic{
					Code:     "MV600",
					Severity: Warning,
					Pass:     "frames",
					Loc:      me.Loc,
					Message: fmt.Sprintf(
						"dead effect: changes %q but no state invariant or guard reads it", p),
				})
			}
		}
	}

	// MV601 — the trigger's guard vocabulary is the union of the paths its
	// transitions' guards read; it is what tells the generated disjuncts of
	// pre(m) apart. A case whose inv(source)+guard shares no path with that
	// vocabulary is decided blind to it — typically a transition whose
	// guard was forgotten while its siblings discriminate on state.
	byTrigger := make(map[uml.Trigger][]*uml.Transition)
	var order []uml.Trigger
	for _, t := range ctx.Model.Behavioral.Transitions {
		if _, ok := byTrigger[t.Trigger]; !ok {
			order = append(order, t.Trigger)
		}
		byTrigger[t.Trigger] = append(byTrigger[t.Trigger], t)
	}
	for _, trig := range order {
		vocab := make(map[string]bool)
		for _, t := range byTrigger[trig] {
			for _, p := range guardPaths[t] {
				vocab[p] = true
			}
		}
		if len(vocab) == 0 {
			continue
		}
		var vocabList []string
		for p := range vocab {
			vocabList = append(vocabList, p)
		}
		sort.Strings(vocabList)
		for _, t := range byTrigger[trig] {
			shares := false
			for _, p := range append(append([]string(nil), invPaths[t.From]...), guardPaths[t]...) {
				if vocab[p] {
					shares = true
					break
				}
			}
			if !shares {
				// A written guard that constant-folds to true is an
				// explicit tautology — the modeler said "always fires" on
				// purpose. Only a missing guard is a forgotten one.
				if g := guardExprs[t]; g != nil && strings.TrimSpace(t.Guard) != "" {
					if l, ok := symbolic.Fold(g).(*ocl.Lit); ok &&
						l.Value.Kind == ocl.KindBool && l.Value.Bool {
						continue
					}
				}
				ds = append(ds, Diagnostic{
					Code:     "MV601",
					Severity: Warning,
					Pass:     "frames",
					Loc:      transitionLoc(t, "guard"),
					Message: fmt.Sprintf(
						"unguarded disjunct: this case of %s reads none of the trigger's guard vocabulary [%s]",
						trig, strings.Join(vocabList, " ")),
				})
			}
		}
	}
	return ds
}
