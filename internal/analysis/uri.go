package analysis

import (
	"fmt"
	"sort"
	"strings"

	"cloudmon/internal/uml"
)

// interfacePass checks the REST interface derived from the resource
// model: association role names must compose collision-free URIs, every
// trigger must name an addressable resource, the contract table should
// not have silent method holes, and the generated routes must be unique
// per (method, URI pattern) — the condition monitor.New enforces at boot.
func interfacePass() Pass {
	return Pass{
		Name:  "interface",
		Doc:   "URI collisions, unaddressable resources, contract-table holes",
		Codes: []string{"MV301", "MV302", "MV303", "MV304"},
		Run:   runInterface,
	}
}

func runInterface(ctx *Context) []Diagnostic {
	rm := ctx.Model.Resource
	var ds []Diagnostic

	// MV301a: duplicate role names on associations out of one resource —
	// the role is a URI segment, so duplicates alias distinct resources.
	type roleKey struct{ from, role string }
	roles := make(map[roleKey][]string)
	for _, a := range rm.Associations {
		k := roleKey{from: a.From, role: a.Role}
		roles[k] = append(roles[k], a.To)
	}
	var roleKeys []roleKey
	for k, targets := range roles {
		if len(targets) > 1 {
			roleKeys = append(roleKeys, k)
		}
	}
	sort.Slice(roleKeys, func(i, j int) bool {
		if roleKeys[i].from != roleKeys[j].from {
			return roleKeys[i].from < roleKeys[j].from
		}
		return roleKeys[i].role < roleKeys[j].role
	})
	for _, k := range roleKeys {
		targets := append([]string(nil), roles[k]...)
		sort.Strings(targets)
		ds = append(ds, Diagnostic{
			Code: "MV301", Severity: Error, Pass: "interface",
			Loc: resourceLoc(k.from, ""),
			Message: fmt.Sprintf("role name %q is used by associations to %s — URI segments collide",
				k.role, strings.Join(targets, " and ")),
		})
	}

	// MV301b: distinct resources composing the same URI.
	uris := rm.URIs()
	byURI := make(map[string][]string)
	for res, uri := range uris {
		byURI[uri] = append(byURI[uri], res)
	}
	var collidingURIs []string
	for uri, rs := range byURI {
		if len(rs) > 1 {
			collidingURIs = append(collidingURIs, uri)
		}
	}
	sort.Strings(collidingURIs)
	for _, uri := range collidingURIs {
		rs := append([]string(nil), byURI[uri]...)
		sort.Strings(rs)
		ds = append(ds, Diagnostic{
			Code: "MV301", Severity: Error, Pass: "interface",
			Loc: Location{Diagram: "resource", Element: fmt.Sprintf("uri %q", uri)},
			Message: fmt.Sprintf("resources %s compose the same URI",
				strings.Join(rs, " and ")),
		})
	}

	// MV302: triggers must name addressable resources — resources with a
	// composed URI. A resource caught in an association cycle that no
	// root reaches has none, and its contract would carry an empty URI.
	reported := make(map[string]bool)
	for _, t := range ctx.Model.Behavioral.Transitions {
		res := t.Trigger.Resource
		if _, ok := uris[res]; ok || reported[res] {
			continue
		}
		reported[res] = true
		ds = append(ds, Diagnostic{
			Code: "MV302", Severity: Error, Pass: "interface",
			Loc: resourceLoc(res, ""),
			Message: fmt.Sprintf(
				"trigger resource %q is unaddressable: no URI can be composed from the association roots", res),
		})
	}

	// MV303: contract-table holes — a resource that appears in triggers
	// but lacks transitions for some REST methods. Informational: the
	// monitor will pass such requests through unchecked.
	methodsFor := make(map[string]map[uml.HTTPMethod]bool)
	for _, t := range ctx.Model.Behavioral.Transitions {
		res := t.Trigger.Resource
		if methodsFor[res] == nil {
			methodsFor[res] = make(map[uml.HTTPMethod]bool, 4)
		}
		methodsFor[res][t.Trigger.Method] = true
	}
	var triggered []string
	for res := range methodsFor {
		triggered = append(triggered, res)
	}
	sort.Strings(triggered)
	all := []uml.HTTPMethod{uml.GET, uml.PUT, uml.POST, uml.DELETE}
	for _, res := range triggered {
		var missing []string
		for _, m := range all {
			if !methodsFor[res][m] {
				missing = append(missing, string(m))
			}
		}
		if len(missing) > 0 {
			ds = append(ds, Diagnostic{
				Code: "MV303", Severity: Info, Pass: "interface",
				Loc: resourceLoc(res, ""),
				Message: fmt.Sprintf(
					"no transition for %s — these methods on %q will not be monitored",
					strings.Join(missing, ", "), res),
			})
		}
	}

	// MV304: route conflicts across generated contracts — two triggers
	// mapping to the same (method, URI) pair. monitor.New refuses such a
	// route table. Needs generated contracts.
	if set := ctx.Contracts(); set != nil {
		seen := make(map[string]uml.Trigger)
		for _, c := range set.Contracts {
			key := string(c.Trigger.Method) + " " + c.URI
			if prev, dup := seen[key]; dup {
				ds = append(ds, Diagnostic{
					Code: "MV304", Severity: Error, Pass: "interface",
					Loc: Location{Diagram: "resource", Element: fmt.Sprintf("uri %q", c.URI)},
					Message: fmt.Sprintf("triggers %s and %s map to the same route %s",
						prev, c.Trigger, key),
				})
			} else {
				seen[key] = c.Trigger
			}
		}
	}
	return ds
}
