package analysis

import (
	"fmt"

	"cloudmon/internal/uml"
)

// secreqPass checks security-requirement traceability (Section IV.C of
// the paper): authorization-relevant transitions (PUT/POST/DELETE) should
// carry a SecReq tag, tags must be well-formed and not duplicated on one
// transition, and — when the analyst supplies the requirements table —
// every required tag must trace to at least one transition.
func secreqPass() Pass {
	return Pass{
		Name:  "secreq",
		Doc:   "security-requirement traceability",
		Codes: []string{"MV401", "MV402", "MV403"},
		Run:   runSecReq,
	}
}

// authRelevant reports whether the method changes cloud state and thus
// needs an authorization requirement trace.
func authRelevant(m uml.HTTPMethod) bool {
	switch m {
	case uml.PUT, uml.POST, uml.DELETE:
		return true
	}
	return false
}

func runSecReq(ctx *Context) []Diagnostic {
	bm := ctx.Model.Behavioral
	var ds []Diagnostic

	traced := make(map[string]bool)
	for _, t := range bm.Transitions {
		seen := make(map[string]bool, len(t.SecReqs))
		for _, tag := range t.SecReqs {
			if tag == "" {
				ds = append(ds, Diagnostic{
					Code: "MV403", Severity: Warning, Pass: "secreq",
					Loc:     transitionLoc(t, ""),
					Message: "empty security-requirement tag",
				})
				continue
			}
			if seen[tag] {
				ds = append(ds, Diagnostic{
					Code: "MV403", Severity: Warning, Pass: "secreq",
					Loc:     transitionLoc(t, ""),
					Message: fmt.Sprintf("security-requirement tag %q repeated on one transition", tag),
					SecReq:  tag,
				})
			}
			seen[tag] = true
			traced[tag] = true
		}
		if authRelevant(t.Trigger.Method) && len(t.SecReqs) == 0 {
			ds = append(ds, Diagnostic{
				Code: "MV401", Severity: Warning, Pass: "secreq",
				Loc: transitionLoc(t, ""),
				Message: fmt.Sprintf(
					"authorization-relevant %s transition carries no security-requirement tag",
					t.Trigger.Method),
			})
		}
	}

	// MV402: requirements the analyst declared but never traced.
	for _, tag := range ctx.Config.RequiredSecReqs {
		if !traced[tag] {
			ds = append(ds, Diagnostic{
				Code: "MV402", Severity: Error, Pass: "secreq",
				Loc: Location{Diagram: "behavioral",
					Element: fmt.Sprintf("state machine %q", bm.Name)},
				Message: fmt.Sprintf(
					"security requirement %q traces to no transition — the requirement is not monitored", tag),
				SecReq: tag,
			})
		}
	}
	return ds
}
