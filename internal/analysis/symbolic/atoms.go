package symbolic

import (
	"math"

	"cloudmon/internal/ocl"
)

// Atom is a normalized comparison literal extracted from a clause
// element: either subject-vs-integer-constant (an interval constraint) or
// subject-vs-subject (a constraint on the comparison result of two fixed
// expressions). Subjects are identified by their canonical rendering —
// two atoms talk about the same quantity exactly when their renderings
// match, which is the same identity the fact engine uses to match clause
// elements across disjuncts.
//
// The prover is deliberately idealized: it reads `=` as equality under
// the same integer coercion the ordering operators use. The concrete
// evaluator's membership coercion (collection = scalar) can diverge from
// that reading, so atom-level conclusions select candidate facts but
// never decide a verdict on their own — the monitor confirms every
// refutation by evaluating the witness element at runtime.
type Atom struct {
	// Subject is the canonical rendering of the constrained expression
	// (the lexically smaller side for subject-pair atoms).
	Subject string
	// Other is the second subject's rendering; empty for constant atoms.
	Other string
	// Op relates Subject to Other or to Const, after normalization.
	Op ocl.BinOp
	// Const is the integer bound of a constant atom.
	Const int
	// Pair distinguishes subject-pair atoms from constant atoms.
	Pair bool
}

// comparisonOps are the binary operators atoms are extracted from.
func isComparison(op ocl.BinOp) bool {
	switch op {
	case ocl.OpEq, ocl.OpNe, ocl.OpLt, ocl.OpLe, ocl.OpGt, ocl.OpGe:
		return true
	}
	return false
}

// mirror flips a comparison across its operands (a < b  ==  b > a).
func mirror(op ocl.BinOp) ocl.BinOp {
	switch op {
	case ocl.OpLt:
		return ocl.OpGt
	case ocl.OpLe:
		return ocl.OpGe
	case ocl.OpGt:
		return ocl.OpLt
	case ocl.OpGe:
		return ocl.OpLe
	}
	return op // = and <> are symmetric
}

// AtomOf extracts the atom of a clause element, if it has one. String and
// boolean literals never form atoms (string equality is membership-
// coercing, so `groups='admin'` and `groups='member'` can hold at once);
// fully literal comparisons are left to the constant folder.
func AtomOf(e ocl.Expr) (Atom, bool) {
	b, ok := e.(*ocl.Binary)
	if !ok || !isComparison(b.Op) {
		return Atom{}, false
	}
	lInt, lIsLit := intLitOf(b.L)
	rInt, rIsLit := intLitOf(b.R)
	_, lAnyLit := b.L.(*ocl.Lit)
	_, rAnyLit := b.R.(*ocl.Lit)
	switch {
	case rIsLit && !lAnyLit:
		return Atom{Subject: b.L.String(), Op: b.Op, Const: rInt}, true
	case lIsLit && !rAnyLit:
		return Atom{Subject: b.R.String(), Op: mirror(b.Op), Const: lInt}, true
	case !lAnyLit && !rAnyLit:
		ls, rs := b.L.String(), b.R.String()
		if ls <= rs {
			return Atom{Subject: ls, Other: rs, Op: b.Op, Pair: true}, true
		}
		return Atom{Subject: rs, Other: ls, Op: mirror(b.Op), Pair: true}, true
	}
	return Atom{}, false
}

func intLitOf(e ocl.Expr) (int, bool) {
	l, ok := e.(*ocl.Lit)
	if !ok || l.Value.Kind != ocl.KindInt {
		return 0, false
	}
	return l.Value.Int, true
}

// sameSubjects reports whether the atoms constrain the same quantities.
func (a Atom) sameSubjects(b Atom) bool {
	return a.Pair == b.Pair && a.Subject == b.Subject && a.Other == b.Other
}

// Refutes reports whether a and b cannot both hold: their satisfying sets
// are disjoint under the idealized integer reading. Used to find witness
// elements — once one disjunct is definitely true, a sibling containing
// an element refuted by it is expected to be false.
func (a Atom) Refutes(b Atom) bool {
	if !a.sameSubjects(b) {
		return false
	}
	if a.Pair {
		return cmpSet(a.Op)&cmpSet(b.Op) == 0
	}
	return intervalsDisjoint(a, b)
}

// Entails reports whether a holding forces b to hold: a's satisfying set
// is contained in b's. Used for subsumption diagnostics (MV702).
func (a Atom) Entails(b Atom) bool {
	if !a.sameSubjects(b) {
		return false
	}
	if a.Pair {
		sa, sb := cmpSet(a.Op), cmpSet(b.Op)
		return sa&^sb == 0
	}
	return intervalSubset(a, b)
}

// cmpSet maps a comparison operator to the set of three-way comparison
// results {-1, 0, 1} that satisfy it, as a 3-bit mask (bit 0: less,
// bit 1: equal, bit 2: greater).
func cmpSet(op ocl.BinOp) uint8 {
	switch op {
	case ocl.OpLt:
		return 0b001
	case ocl.OpLe:
		return 0b011
	case ocl.OpEq:
		return 0b010
	case ocl.OpNe:
		return 0b101
	case ocl.OpGt:
		return 0b100
	case ocl.OpGe:
		return 0b110
	}
	return 0b111
}

// interval returns the satisfying integer interval of a constant atom;
// ok is false for <>, whose satisfying set is a punctured line.
func interval(a Atom) (lo, hi int64, ok bool) {
	c := int64(a.Const)
	switch a.Op {
	case ocl.OpEq:
		return c, c, true
	case ocl.OpLt:
		return math.MinInt64, c - 1, true
	case ocl.OpLe:
		return math.MinInt64, c, true
	case ocl.OpGt:
		return c + 1, math.MaxInt64, true
	case ocl.OpGe:
		return c, math.MaxInt64, true
	}
	return 0, 0, false
}

func intervalsDisjoint(a, b Atom) bool {
	alo, ahi, aok := interval(a)
	blo, bhi, bok := interval(b)
	switch {
	case aok && bok:
		return alo > bhi || blo > ahi
	case aok: // b is <> c: disjoint only if a's interval is exactly {c}
		return a.Op == ocl.OpEq && a.Const == b.Const
	case bok:
		return b.Op == ocl.OpEq && b.Const == a.Const
	default: // two punctured lines always intersect
		return false
	}
}

func intervalSubset(a, b Atom) bool {
	alo, ahi, aok := interval(a)
	blo, bhi, bok := interval(b)
	switch {
	case aok && bok:
		return blo <= alo && ahi <= bhi
	case aok: // b is <> c: a must avoid c
		return int64(b.Const) < alo || int64(b.Const) > ahi
	case bok: // a is <> c, b an interval: only the full line contains it
		return false
	default:
		return a.Const == b.Const
	}
}
