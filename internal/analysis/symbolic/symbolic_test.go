package symbolic

import (
	"testing"

	"cloudmon/internal/ocl"
)

func parse(t *testing.T, src string) ocl.Expr {
	t.Helper()
	e, err := ocl.Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return e
}

func lit(v ocl.Value) ocl.Expr { return &ocl.Lit{Value: v} }

// TestUndefinedPropagationTable pins the three-valued domain against the
// concrete evaluator: for every connective and every combination of
// {true, false, OclUndefined} operands, Decide on the literal formula
// must return exactly the value ocl.Eval computes.
func TestUndefinedPropagationTable(t *testing.T) {
	vals := []ocl.Value{ocl.BoolVal(true), ocl.BoolVal(false), ocl.Undefined()}
	ops := []ocl.BinOp{ocl.OpAnd, ocl.OpOr, ocl.OpImplies, ocl.OpXor}
	toTri := func(v ocl.Value) Tri {
		switch {
		case v.Kind == ocl.KindUndefined:
			return Undef
		case v.Bool:
			return True
		default:
			return False
		}
	}
	for _, op := range ops {
		for _, l := range vals {
			for _, r := range vals {
				e := &ocl.Binary{Op: op, L: lit(l), R: lit(r)}
				want, err := ocl.Eval(e, ocl.Context{})
				if err != nil {
					t.Fatalf("%s: concrete eval: %v", e, err)
				}
				if got := Decide(e); got != toTri(want) {
					t.Errorf("%s: Decide=%v, concrete=%v", e, got, want)
				}
			}
		}
	}
	// not over the three values.
	for _, v := range vals {
		e := &ocl.Unary{Op: ocl.OpNot, Expr: lit(v)}
		want, err := ocl.Eval(e, ocl.Context{})
		if err != nil {
			t.Fatalf("%s: concrete eval: %v", e, err)
		}
		if got := Decide(e); got != toTri(want) {
			t.Errorf("%s: Decide=%v, concrete=%v", e, got, want)
		}
	}
}

func TestDecide(t *testing.T) {
	cases := []struct {
		src  string
		want Tri
	}{
		{"true", True},
		{"false", False},
		{"1 = 1", Unknown},            // not folded: Decide alone is structural
		{"true or thing.x > 0", True}, // short-circuit hides the unknown right
		{"false and thing.x > 0", False},
		{"thing.x > 0 or true", Unknown}, // left may error on a non-orderable kind
		{"thing.x = 1 and false", False}, // = never errors, definite false wins
		{"thing.x = 1", Unknown},
		{"not false", True},
	}
	for _, c := range cases {
		if got := Decide(parse(t, c.src)); got != c.want {
			t.Errorf("Decide(%q) = %v, want %v", c.src, got, c.want)
		}
	}
	// After folding, literal arithmetic decides too.
	if got := Decide(Fold(parse(t, "1 + 1 = 2"))); got != True {
		t.Errorf("Decide(Fold(1+1=2)) = %v, want true", got)
	}
	if got := Decide(Fold(parse(t, "thing.x = 1 and 2 > 3"))); got != False {
		t.Errorf("Decide(Fold(x=1 and 2>3)) = %v, want false", got)
	}
}

func TestNeverErrors(t *testing.T) {
	yes := []string{
		"true",
		"thing.x = 1",
		"thing.x <> 'busy'",
		"things->size() = 0",
		"things->size() >= 1",
		"things->includes('a')",
		"things->isEmpty()",
		"user.id.groups = 'admin' or user.id.groups = 'member'",
		"things->forAll(v | v <> 'banned')",
		"things->select(v | v = 'x')->size() = 1",
		"things->size() > 1 and things->size() < 5",
	}
	no := []string{
		"thing.x > 0 and true",        // > can hit a non-orderable kind
		"things < quota.max",          // ordering two untyped navigations
		"thing.x + 1 = 2",             // arithmetic on arbitrary kinds
		"not thing.x",                 // not over a possibly non-boolean value
		"things->sum() = 3",           // sum errors on non-integer elements
		"pre(things->size()) = 0",     // no pre-state in the pre phase
		"things@pre->size() = 0",      // @pre likewise
		"things->forAll(v | v.x = 1)", // navigation below an iterator variable
	}
	for _, src := range yes {
		if !NeverErrors(parse(t, src)) {
			t.Errorf("NeverErrors(%q) = false, want true", src)
		}
	}
	for _, src := range no {
		if NeverErrors(parse(t, src)) {
			t.Errorf("NeverErrors(%q) = true, want false", src)
		}
	}
	// A bare navigation never errors by itself (it is the operators around
	// it that reject kinds).
	if !NeverErrors(parse(t, "thing.x")) {
		t.Errorf("NeverErrors(thing.x) = false, want true")
	}
}

// TestFoldSoundness cross-checks folding against the concrete evaluator
// over a corpus of formulas and environments: the folded expression must
// produce the same value, and error exactly when the original errors.
func TestFoldSoundness(t *testing.T) {
	exprs := []string{
		"1 + 2 = 3",
		"2 > 3",
		"true and thing.x = 1",
		"thing.x = 1 and 2 > 3",
		"(1 + 1 = 2) or thing.x > 0",
		"thing.x > 10 - 3",
		"things->size() = 4 / 2",
		"not (1 = 2)",
		"false and thing.x + 1 = 2", // folding must not bypass the left guard
		"thing.x = 1 and 1 = 0 and thing.y = 2",
		"things->select(v | v = 'a')->size() >= 0 - 1",
	}
	envs := []ocl.MapEnv{
		{},
		{"thing.x": ocl.IntVal(1), "thing.y": ocl.IntVal(2), "things": ocl.StringsVal("a", "b")},
		{"thing.x": ocl.StringVal("zz"), "things": ocl.IntVal(7)},
		{"thing.x": ocl.BoolVal(true), "thing.y": ocl.Undefined()},
	}
	for _, src := range exprs {
		orig := parse(t, src)
		folded := Fold(orig)
		for _, env := range envs {
			ctx := ocl.Context{Cur: env}
			v1, err1 := ocl.Eval(orig, ctx)
			v2, err2 := ocl.Eval(folded, ctx)
			if (err1 == nil) != (err2 == nil) {
				t.Fatalf("%q folded to %q: error divergence (%v vs %v) in env %v",
					src, folded, err1, err2, env)
			}
			if err1 == nil && !v1.Equal(v2) {
				t.Fatalf("%q folded to %q: value divergence (%v vs %v) in env %v",
					src, folded, v1, v2, env)
			}
		}
	}
}

func TestFoldRewrites(t *testing.T) {
	cases := []struct{ src, want string }{
		{"1 + 2 = 3", "true"},
		{"2 > 3", "false"},
		{"thing.x > 10 - 3", "thing.x > 7"},
		{"true and thing.x = 1", "true and thing.x = 1"}, // no unsound unit law
		{"not (1 = 2)", "true"},
	}
	for _, c := range cases {
		if got := Fold(parse(t, c.src)).String(); got != c.want {
			t.Errorf("Fold(%q) = %q, want %q", c.src, got, c.want)
		}
	}
	// Erroring closed subtrees are preserved verbatim.
	src := "1 + 'a' = 2"
	if got := Fold(parse(t, src)).String(); got != src {
		t.Errorf("Fold(%q) = %q, want unchanged", src, got)
	}
}

func TestElementsOrder(t *testing.T) {
	e := parse(t, "a.x = 1 and b.y = 2 and c.z = 3")
	els := Elements(e)
	want := []string{"a.x = 1", "b.y = 2", "c.z = 3"}
	if len(els) != len(want) {
		t.Fatalf("got %d elements, want %d", len(els), len(want))
	}
	for i, w := range want {
		if els[i].String() != w {
			t.Errorf("element %d = %q, want %q", i, els[i], w)
		}
	}
	if got := Elements(parse(t, "a.x = 1 or b.y = 2")); len(got) != 1 {
		t.Errorf("disjunction should be a single element, got %d", len(got))
	}
}

func TestAtoms(t *testing.T) {
	atom := func(src string) Atom {
		a, ok := AtomOf(parse(t, src))
		if !ok {
			t.Fatalf("AtomOf(%q): no atom", src)
		}
		return a
	}
	refutes := [][2]string{
		{"things->size() = 0", "things->size() >= 1"},
		{"things->size() = 1", "things->size() > 1"},
		{"quota.max > 1", "quota.max = 1"},
		{"1 = quota.max", "quota.max > 1"}, // constant-on-the-left normalizes
		{"things < quota.max", "things = quota.max"},
		{"things < quota.max", "quota.max < things"}, // mirrored pair
		{"things->size() <= 2", "things->size() >= 5"},
	}
	for _, p := range refutes {
		a, b := atom(p[0]), atom(p[1])
		if !a.Refutes(b) || !b.Refutes(a) {
			t.Errorf("expected %q and %q to refute each other (%+v vs %+v)", p[0], p[1], a, b)
		}
	}
	compatible := [][2]string{
		{"things->size() >= 1", "things->size() > 1"},
		{"things->size() <> 0", "things->size() <> 1"},
		{"things < quota.max", "things <= quota.max"},
		{"a.x = 1", "b.x = 2"}, // different subjects: no judgement
	}
	for _, p := range compatible {
		a, b := atom(p[0]), atom(p[1])
		if a.Refutes(b) || b.Refutes(a) {
			t.Errorf("did not expect %q and %q to refute each other", p[0], p[1])
		}
	}
	entails := [][2]string{
		{"things->size() = 1", "things->size() >= 1"},
		{"things->size() > 1", "things->size() >= 1"},
		{"things->size() = 2", "things->size() <> 0"},
		{"things < quota.max", "things <= quota.max"},
	}
	for _, p := range entails {
		a, b := atom(p[0]), atom(p[1])
		if !a.Entails(b) {
			t.Errorf("expected %q to entail %q", p[0], p[1])
		}
		if b.Entails(a) {
			t.Errorf("did not expect %q to entail %q", p[1], p[0])
		}
	}
	// String comparisons never form atoms: `=` is membership-coercing.
	if _, ok := AtomOf(parse(t, "user.id.groups = 'admin'")); ok {
		t.Errorf("string equality must not form an atom")
	}
	if _, ok := AtomOf(parse(t, "1 = 2")); ok {
		t.Errorf("fully literal comparison must not form an atom")
	}
}

func TestKinds(t *testing.T) {
	cases := []struct {
		src  string
		want KindSet
	}{
		{"things->size()", KInt},
		{"things->isEmpty()", KBool},
		{"thing.x = 1", KBool | KUndef},
		{"thing.x + 1", KInt | KUndef},
		{"not thing.x", KBool | KUndef},
		{"things->select(v | v = 'a')", KColl},
		{"things->forAll(v | v = 'a')", KBool | KUndef},
		{"thing.x", AnyKind},
	}
	for _, c := range cases {
		if got := Kinds(parse(t, c.src)); got != c.want {
			t.Errorf("Kinds(%q) = %b, want %b", c.src, got, c.want)
		}
	}
}
