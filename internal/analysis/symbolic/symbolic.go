// Package symbolic is an abstract interpreter over OCL ASTs. It reasons
// about contract clauses without an environment: which value kinds an
// expression can produce, whether its evaluation can ever raise an error,
// whether a boolean formula is decided (true, false or OclUndefined) for
// every possible state, and which comparison atoms refute or entail each
// other. The contract planner compiles these judgements into a
// contract.Facts artifact that the lazy monitor uses to skip clause
// evaluations at runtime, and the analysis package reports them as
// MV700-series model diagnostics.
//
// Soundness contract: every exported judgement is conservative with
// respect to the concrete evaluator in package ocl. Kinds over-
// approximates the possible result kinds, NeverErrors only returns true
// when no environment can make evaluation fail, Decide only commits to a
// verdict the concrete evaluator would reach for every environment, and
// Fold only rewrites environment-independent subtrees whose concrete
// value it computed with the real evaluator. The one deliberately
// idealized component is the atom prover (see atoms.go): its entailments
// assume declared attribute types, so its conclusions must be guarded by
// a runtime observation before they may decide a verdict — which is
// exactly how the monitor consumes them.
package symbolic

import "cloudmon/internal/ocl"

// KindSet is a bitset of ocl value kinds — the abstract value domain.
type KindSet uint8

// Kind bits.
const (
	KBool KindSet = 1 << iota
	KInt
	KString
	KColl
	KUndef
)

// AnyKind is the full domain: nothing is known about the value.
const AnyKind = KBool | KInt | KString | KColl | KUndef

// SubsetOf reports whether every kind in k is also in of.
func (k KindSet) SubsetOf(of KindSet) bool { return k&^of == 0 }

// Has reports whether k includes any bit of b.
func (k KindSet) Has(b KindSet) bool { return k&b != 0 }

// kindBit maps a concrete value kind to its bit.
func kindBit(k ocl.Kind) KindSet {
	switch k {
	case ocl.KindBool:
		return KBool
	case ocl.KindInt:
		return KInt
	case ocl.KindString:
		return KString
	case ocl.KindCollection:
		return KColl
	case ocl.KindUndefined:
		return KUndef
	}
	return AnyKind
}

// Kinds over-approximates the kinds the expression can evaluate to,
// assuming evaluation does not error. Navigation can resolve to anything,
// so most precision comes from operator result types.
func Kinds(e ocl.Expr) KindSet { return kinds(e, map[string]int{}) }

func kinds(e ocl.Expr, bound map[string]int) KindSet {
	switch n := e.(type) {
	case *ocl.Lit:
		return kindBit(n.Value.Kind)
	case *ocl.Nav:
		return AnyKind
	case *ocl.PreExpr:
		return kinds(n.Expr, bound)
	case *ocl.Unary:
		if n.Op == ocl.OpNot {
			return KBool | KUndef
		}
		return KInt | KUndef
	case *ocl.Binary:
		switch n.Op {
		case ocl.OpAnd, ocl.OpOr, ocl.OpImplies, ocl.OpXor,
			ocl.OpEq, ocl.OpNe, ocl.OpLt, ocl.OpLe, ocl.OpGt, ocl.OpGe:
			return KBool | KUndef
		default:
			return KInt | KUndef
		}
	case *ocl.CollOp:
		switch n.Name {
		case "size", "count", "sum":
			return KInt
		case "isEmpty", "notEmpty", "includes", "excludes":
			return KBool
		default: // first, or unknown
			return AnyKind
		}
	case *ocl.IterOp:
		switch n.Name {
		case "forAll", "exists":
			return KBool | KUndef
		case "select", "reject", "collect":
			return KColl
		default:
			return AnyKind
		}
	}
	return AnyKind
}

// NeverErrors reports whether evaluating the expression cannot raise an
// evaluation error in any environment. It is the gate for treating a
// clause element as safe to leave unevaluated: if every element before a
// refuted witness is error-free, skipping them cannot hide an error the
// eager engine would have surfaced. Fetch failures are a separate class —
// demand-driven evaluation already fetches less than the eager engine, so
// they are outside this judgement (see DESIGN.md §3.5).
//
// pre()/@pre references are conservatively erroring: pre-conditions are
// evaluated without a pre-state environment, where they raise
// ErrNoPreState.
func NeverErrors(e ocl.Expr) bool { return neverErrors(e, map[string]int{}) }

func neverErrors(e ocl.Expr, bound map[string]int) bool {
	switch n := e.(type) {
	case *ocl.Lit:
		return true
	case *ocl.Nav:
		if n.AtPre {
			return false
		}
		if bound[n.Path[0]] > 0 {
			// Navigating below an iterator variable is an eval error.
			return len(n.Path) == 1
		}
		return true
	case *ocl.PreExpr:
		return false
	case *ocl.Unary:
		if !neverErrors(n.Expr, bound) {
			return false
		}
		if n.Op == ocl.OpNot {
			return kinds(n.Expr, bound).SubsetOf(KBool | KUndef)
		}
		return kinds(n.Expr, bound).SubsetOf(KInt | KUndef)
	case *ocl.Binary:
		if !neverErrors(n.L, bound) || !neverErrors(n.R, bound) {
			return false
		}
		lk, rk := kinds(n.L, bound), kinds(n.R, bound)
		switch n.Op {
		case ocl.OpAnd, ocl.OpOr, ocl.OpImplies, ocl.OpXor:
			return lk.SubsetOf(KBool|KUndef) && rk.SubsetOf(KBool|KUndef)
		case ocl.OpEq, ocl.OpNe:
			// equalValues coerces every kind combination without error.
			return true
		case ocl.OpLt, ocl.OpLe, ocl.OpGt, ocl.OpGe:
			return pairwiseOK(lk, rk, comparablePair)
		default: // arithmetic
			return pairwiseOK(lk, rk, arithPair)
		}
	case *ocl.CollOp:
		if !neverErrors(n.Recv, bound) {
			return false
		}
		switch n.Name {
		case "size", "isEmpty", "notEmpty", "first":
			return len(n.Args) == 0
		case "includes", "excludes", "count":
			return len(n.Args) == 1 && neverErrors(n.Args[0], bound)
		default:
			// sum errors on non-integer elements; unknown names error.
			return false
		}
	case *ocl.IterOp:
		if !neverErrors(n.Recv, bound) {
			return false
		}
		bound[n.Var]++
		defer func() { bound[n.Var]-- }()
		switch n.Name {
		case "forAll", "exists", "select", "reject":
			return neverErrors(n.Body, bound) &&
				kinds(n.Body, bound).SubsetOf(KBool|KUndef)
		case "collect":
			return neverErrors(n.Body, bound)
		default:
			return false
		}
	}
	return false
}

// pairwiseOK checks ok for every combination of one kind from lk and one
// from rk — the per-pair error condition of a binary coercion.
func pairwiseOK(lk, rk KindSet, ok func(l, r KindSet) bool) bool {
	for l := KindSet(1); l <= KUndef; l <<= 1 {
		if !lk.Has(l) {
			continue
		}
		for r := KindSet(1); r <= KUndef; r <<= 1 {
			if rk.Has(r) && !ok(l, r) {
				return false
			}
		}
	}
	return true
}

// comparablePair mirrors compareValues: Undefined absorbs, two strings
// order lexically, and otherwise both sides must coerce to integers
// (Integer or Collection-size).
func comparablePair(l, r KindSet) bool {
	if l == KUndef || r == KUndef {
		return true
	}
	if l == KString && r == KString {
		return true
	}
	return l.SubsetOf(KInt|KColl) && r.SubsetOf(KInt|KColl)
}

// arithPair mirrors arithValues: Undefined absorbs, otherwise integer
// coercion on both sides.
func arithPair(l, r KindSet) bool {
	if l == KUndef || r == KUndef {
		return true
	}
	return l.SubsetOf(KInt|KColl) && r.SubsetOf(KInt|KColl)
}
