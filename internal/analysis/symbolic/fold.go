package symbolic

import "cloudmon/internal/ocl"

// Fold rewrites every maximal environment-independent subtree to the
// literal the concrete evaluator produces for it. The rewrite is
// value- and error-preserving for every environment:
//
//   - only closed subtrees (no free navigation, no pre() references) are
//     evaluated, so the computed value is the value any evaluation would
//     see;
//   - a closed subtree whose evaluation errors is kept verbatim, so an
//     expression that always errors still errors after folding;
//   - nothing is rewritten across a non-closed boundary — in particular
//     `true and x` is NOT simplified to `x`, because the conjunction
//     applies a boolean coercion to x that the bare x would lose.
//
// The input expression is never mutated; shared structure is reused when
// nothing under it folds.
func Fold(e ocl.Expr) ocl.Expr {
	folded, _ := foldExpr(e, map[string]int{})
	return folded
}

// foldExpr folds bottom-up, reporting whether the (folded) subtree is
// closed: its value does not depend on the environment. Iterator
// variables are closed when bound — their value comes from the enclosing
// iteration, which the concrete evaluator replays during tryEval.
func foldExpr(e ocl.Expr, bound map[string]int) (ocl.Expr, bool) {
	switch n := e.(type) {
	case *ocl.Lit:
		return n, true
	case *ocl.Nav:
		return n, bound[n.Path[0]] > 0 && !n.AtPre
	case *ocl.PreExpr:
		inner, _ := foldExpr(n.Expr, bound)
		if inner == n.Expr {
			return n, false
		}
		return &ocl.PreExpr{Expr: inner}, false
	case *ocl.Unary:
		sub, closed := foldExpr(n.Expr, bound)
		out := e
		if sub != n.Expr {
			out = &ocl.Unary{Op: n.Op, Expr: sub}
		}
		if closed {
			return tryEval(out), true
		}
		return out, false
	case *ocl.Binary:
		l, lc := foldExpr(n.L, bound)
		r, rc := foldExpr(n.R, bound)
		out := e
		if l != n.L || r != n.R {
			out = &ocl.Binary{Op: n.Op, L: l, R: r}
		}
		if lc && rc {
			return tryEval(out), true
		}
		return out, false
	case *ocl.CollOp:
		recv, closed := foldExpr(n.Recv, bound)
		changed := recv != n.Recv
		args := make([]ocl.Expr, len(n.Args))
		for i, a := range n.Args {
			fa, ac := foldExpr(a, bound)
			closed = closed && ac
			args[i] = fa
			if fa != a {
				changed = true
			}
		}
		out := e
		if changed {
			out = &ocl.CollOp{Recv: recv, Name: n.Name, Args: args}
		}
		if closed {
			return tryEval(out), true
		}
		return out, false
	case *ocl.IterOp:
		recv, rc := foldExpr(n.Recv, bound)
		bound[n.Var]++
		body, bc := foldExpr(n.Body, bound)
		bound[n.Var]--
		out := e
		if recv != n.Recv || body != n.Body {
			out = &ocl.IterOp{Recv: recv, Name: n.Name, Var: n.Var, Body: body}
		}
		if rc && bc {
			return tryEval(out), true
		}
		return out, false
	}
	return e, false
}

// tryEval evaluates a closed expression with the concrete evaluator and
// returns the literal result; expressions that error are kept as-is so
// folding never changes error behavior.
func tryEval(e ocl.Expr) ocl.Expr {
	if _, ok := e.(*ocl.Lit); ok {
		return e
	}
	v, err := ocl.Eval(e, ocl.Context{})
	if err != nil {
		return e
	}
	return &ocl.Lit{Value: v}
}

// Elements flattens the expression's top-level conjunction into its
// elements, in evaluation order. The concrete evaluator decides a
// conjunction by evaluating elements left to right and stopping at the
// first definite false; every skip the fact engine performs is justified
// against this element list.
func Elements(e ocl.Expr) []ocl.Expr {
	b, ok := e.(*ocl.Binary)
	if !ok || b.Op != ocl.OpAnd {
		return []ocl.Expr{e}
	}
	return append(Elements(b.L), Elements(b.R)...)
}
