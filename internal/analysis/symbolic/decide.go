package symbolic

import "cloudmon/internal/ocl"

// Tri is the verdict of the static three-valued decision procedure.
type Tri int

// Decision outcomes. Unknown means the formula's value depends on the
// environment (or the analysis could not tell).
const (
	Unknown Tri = iota
	True
	False
	Undef
)

// String returns the verdict name.
func (t Tri) String() string {
	switch t {
	case True:
		return "true"
	case False:
		return "false"
	case Undef:
		return "OclUndefined"
	}
	return "unknown"
}

// outcome is a bitset over the abstract boolean outcomes of evaluating a
// formula: the three Kleene values plus oErr for "errors or produces a
// non-boolean value".
type outcome uint8

const (
	oTrue outcome = 1 << iota
	oFalse
	oUndef
	oErr
)

const oAnyBool = oTrue | oFalse | oUndef

// Decide statically evaluates a boolean formula over every environment at
// once, honoring the evaluator's Kleene connectives and their
// short-circuiting. It returns True/False/Undef only when the concrete
// evaluator reaches that exact value, without error, for every
// environment. Fold the expression first for best precision — Decide
// itself only interprets literals and connectives abstractly.
func Decide(e ocl.Expr) Tri {
	switch absBool(e, map[string]int{}) {
	case oTrue:
		return True
	case oFalse:
		return False
	case oUndef:
		return Undef
	}
	return Unknown
}

// absBool computes the set of outcomes the formula can evaluate to.
// Structural cases cover literals and the boolean connectives (where
// short-circuiting prunes outcomes); everything else falls back to the
// kind and error analyses.
func absBool(e ocl.Expr, bound map[string]int) outcome {
	switch n := e.(type) {
	case *ocl.Lit:
		switch n.Value.Kind {
		case ocl.KindBool:
			if n.Value.Bool {
				return oTrue
			}
			return oFalse
		case ocl.KindUndefined:
			return oUndef
		default:
			return oErr // a non-boolean literal fed to a boolean context
		}
	case *ocl.Unary:
		if n.Op == ocl.OpNot {
			sub := absBool(n.Expr, bound)
			var out outcome
			if sub&oTrue != 0 {
				out |= oFalse
			}
			if sub&oFalse != 0 {
				out |= oTrue
			}
			out |= sub & (oUndef | oErr)
			return out
		}
	case *ocl.Binary:
		switch n.Op {
		case ocl.OpAnd, ocl.OpOr, ocl.OpImplies, ocl.OpXor:
			return absLogic(n, bound)
		}
	}
	return leafOutcome(e, bound)
}

// leafOutcome derives the outcome set of a non-connective node from its
// possible kinds and error-freedom.
func leafOutcome(e ocl.Expr, bound map[string]int) outcome {
	var out outcome
	k := kinds(e, bound)
	if k.Has(KBool) {
		out |= oTrue | oFalse
	}
	if k.Has(KUndef) {
		out |= oUndef
	}
	if k.Has(KInt|KString|KColl) || !neverErrors(e, bound) {
		out |= oErr
	}
	return out
}

// absLogic lifts the evaluator's short-circuiting Kleene connectives to
// outcome sets. The left operand is always evaluated, so its error
// outcome always propagates; the right operand's outcomes only matter
// when some left outcome fails to short-circuit.
func absLogic(n *ocl.Binary, bound map[string]int) outcome {
	l := absBool(n.L, bound)
	var out outcome
	out |= l & oErr
	var shortcut, rest outcome
	switch n.Op {
	case ocl.OpAnd:
		shortcut = oFalse // false and _ = false, right unevaluated
	case ocl.OpOr:
		shortcut = oTrue
	case ocl.OpImplies:
		shortcut = oFalse // false implies _ = true
	}
	if n.Op != ocl.OpXor && l&shortcut != 0 {
		if n.Op == ocl.OpImplies {
			out |= oTrue
		} else {
			out |= shortcut
		}
	}
	rest = l & oAnyBool &^ shortcut
	if n.Op == ocl.OpXor {
		rest = l & oAnyBool
	}
	if rest == 0 {
		return out
	}
	r := absBool(n.R, bound)
	out |= r & oErr
	for _, la := range [...]outcome{oTrue, oFalse, oUndef} {
		if rest&la == 0 {
			continue
		}
		for _, rb := range [...]outcome{oTrue, oFalse, oUndef} {
			if r&rb == 0 {
				continue
			}
			out |= kleene(n.Op, la, rb)
		}
	}
	return out
}

// kleene is the evaluator's three-valued truth table for one pair of
// operand values.
func kleene(op ocl.BinOp, l, r outcome) outcome {
	switch op {
	case ocl.OpAnd:
		switch {
		case l == oFalse || r == oFalse:
			return oFalse
		case l == oUndef || r == oUndef:
			return oUndef
		default:
			return oTrue
		}
	case ocl.OpOr:
		switch {
		case l == oTrue || r == oTrue:
			return oTrue
		case l == oUndef || r == oUndef:
			return oUndef
		default:
			return oFalse
		}
	case ocl.OpImplies:
		switch {
		case l == oFalse || r == oTrue:
			return oTrue
		case l == oUndef || r == oUndef:
			return oUndef
		default:
			return r
		}
	case ocl.OpXor:
		switch {
		case l == oUndef || r == oUndef:
			return oUndef
		case l != r:
			return oTrue
		default:
			return oFalse
		}
	}
	return oErr
}
