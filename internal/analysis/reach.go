package analysis

import (
	"fmt"
)

// reachabilityPass checks the behavioral model's graph structure: every
// state should be reachable from the initial state, every transition
// should be live, and the machine should not trap the scenario — either
// every state can reach a terminal (absorbing) state when the model has
// one, or, in a fully live machine, every state can return to the initial
// state (the home-state property of protocol state machines).
func reachabilityPass() Pass {
	return Pass{
		Name:  "reachability",
		Doc:   "unreachable states, dead transitions, trap states",
		Codes: []string{"MV101", "MV102", "MV103", "MV104"},
		Run:   runReachability,
	}
}

func runReachability(ctx *Context) []Diagnostic {
	bm := ctx.Model.Behavioral
	init, ok := bm.InitialState()
	if !ok {
		return []Diagnostic{{
			Code: "MV101", Severity: Warning, Pass: "reachability",
			Loc: Location{Diagram: "behavioral",
				Element: fmt.Sprintf("state machine %q", bm.Name)},
			Message: "no initial state — reachability cannot be analyzed",
		}}
	}

	succ := make(map[string][]string, len(bm.States))
	pred := make(map[string][]string, len(bm.States))
	for _, t := range bm.Transitions {
		succ[t.From] = append(succ[t.From], t.To)
		pred[t.To] = append(pred[t.To], t.From)
	}

	reachable := closure([]string{init.Name}, succ)

	var ds []Diagnostic
	for _, s := range bm.States {
		if !reachable[s.Name] {
			ds = append(ds, Diagnostic{
				Code: "MV102", Severity: Warning, Pass: "reachability",
				Loc: stateLoc(s, ""),
				Message: fmt.Sprintf("state is unreachable from the initial state %q",
					init.Name),
			})
		}
	}
	for _, t := range bm.Transitions {
		if !reachable[t.From] {
			ds = append(ds, Diagnostic{
				Code: "MV103", Severity: Warning, Pass: "reachability",
				Loc: transitionLoc(t, ""),
				Message: fmt.Sprintf("dead transition: source state %q is unreachable",
					t.From),
			})
		}
	}

	// Liveness. Terminal states are absorbing: no outgoing transitions.
	var terminals []string
	for _, s := range bm.States {
		if len(succ[s.Name]) == 0 {
			terminals = append(terminals, s.Name)
		}
	}
	var goal map[string]bool
	var goalDesc string
	if len(terminals) > 0 {
		goal = closure(terminals, pred)
		goalDesc = "no path to a terminal state"
	} else {
		goal = closure([]string{init.Name}, pred)
		goalDesc = fmt.Sprintf("trap: no path back to the initial state %q", init.Name)
	}
	for _, s := range bm.States {
		if reachable[s.Name] && !goal[s.Name] {
			ds = append(ds, Diagnostic{
				Code: "MV104", Severity: Warning, Pass: "reachability",
				Loc: stateLoc(s, ""), Message: goalDesc,
			})
		}
	}
	return ds
}

// closure returns the set of states reachable from the seeds over edges.
func closure(seeds []string, edges map[string][]string) map[string]bool {
	seen := make(map[string]bool, len(edges))
	stack := append([]string(nil), seeds...)
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[n] {
			continue
		}
		seen[n] = true
		stack = append(stack, edges[n]...)
	}
	return seen
}
