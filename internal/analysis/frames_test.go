package analysis

import (
	"testing"

	"cloudmon/internal/paper"
	"cloudmon/internal/uml"
)

func TestDeadEffectMV600(t *testing.T) {
	m := minimalModel()
	// The effect now also pins thing.count, which no invariant or guard
	// ever reads — the post-check verifies a change nothing depends on.
	m.Behavioral.Transitions[0].Effect =
		"things->size() = pre(things->size()) + 1 and thing.count = 0"
	r := analyze(m)
	wantDiag(t, r, "MV600", Warning, "effect", `dead effect`, `"thing.count"`)
}

func TestUnguardedDisjunctMV601(t *testing.T) {
	m := minimalModel()
	// Give DELETE(thing) a second, guardless case out of a state whose
	// invariant ignores the trigger's guard vocabulary (things->size()).
	m.Behavioral.States = append(m.Behavioral.States,
		&uml.State{Name: "drained", Invariant: "thing.count = 0"})
	m.Behavioral.Transitions = append(m.Behavioral.Transitions, &uml.Transition{
		From: "drained", To: "empty",
		Trigger: uml.Trigger{Method: uml.DELETE, Resource: "thing"},
		Effect:  "things->size() = pre(things->size())",
		SecReqs: []string{"1.2"},
	})
	// Keep reachability quiet: drained is reachable via a POST from busy.
	m.Behavioral.Transitions = append(m.Behavioral.Transitions, &uml.Transition{
		From: "busy", To: "drained",
		Trigger: uml.Trigger{Method: uml.PUT, Resource: "thing"},
		Guard:   "thing.count = 0",
		Effect:  "things->size() = pre(things->size())",
		SecReqs: []string{"1.2"},
	})
	r := analyze(m)
	wantDiag(t, r, "MV601", Warning, "DELETE(thing) drained->empty",
		"unguarded disjunct", "things")
}

func TestMV601QuietWhenTriggerHasNoGuards(t *testing.T) {
	m := minimalModel()
	// Strip the only guard: an empty vocabulary cannot be ignored.
	m.Behavioral.Transitions[1].Guard = ""
	r := analyze(m)
	if got := len(r.ByCode("MV601")); got != 0 {
		t.Fatalf("MV601 fired %d times on a guardless trigger:\n%s", got, r.Render())
	}
}

// TestFramesQuietOnShippedModels: the paper's models use their effect
// frames and guard vocabularies fully — the advisory MV6xx lints must stay
// silent on them.
func TestFramesQuietOnShippedModels(t *testing.T) {
	for name, m := range map[string]*uml.Model{
		"cinder":  paper.CinderModel(),
		"nova":    paper.NovaModel(),
		"minimal": minimalModel(),
	} {
		r := analyze(m)
		for _, code := range []string{"MV600", "MV601"} {
			if ds := r.ByCode(code); len(ds) != 0 {
				t.Errorf("%s model: %s fired:\n%s", name, code, r.Render())
			}
		}
	}
}
