// Package analysis implements "modelvet": a multi-pass static analyzer
// over the design models (uml.Model) and the contracts generated from
// them. It catches the specification errors the paper's workflow would
// otherwise ship into a running monitor — type-confused OCL, unreachable
// states, contradictory guards, colliding URIs, untraced security
// requirements, and postconditions the proxy cannot observe — before any
// code is generated.
//
// Each check is an independent pass producing structured Diagnostics with
// a stable code (MVnnn), a severity, and a model location. Codes are
// grouped by pass:
//
//	MV0xx  ocl-typecheck      OCL parsing, vocabulary and type errors
//	MV1xx  reachability       unreachable states, dead transitions, traps
//	MV2xx  guards             contradictory / overlapping / illegal guards
//	MV3xx  interface          URI collisions, unaddressable resources,
//	                          contract-table holes, route conflicts
//	MV4xx  secreq             security-requirement traceability
//	MV5xx  monitorability     postconditions the proxy cannot observe
//	MV6xx  frames             dead effects, disjuncts blind to their
//	                          trigger's guard vocabulary
//	MV7xx  symbolic           compile-time clause facts: statically
//	                          decided disjuncts, subsumed disjuncts,
//	                          never-demanded state paths, facts-artifact
//	                          machine-check failures
//
// Diagnostics are deterministically ordered and exact duplicates removed,
// so the analyzer's output is byte-for-byte reproducible — a requirement
// for golden tests and CI.
package analysis

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"cloudmon/internal/contract"
	"cloudmon/internal/ocl"
	"cloudmon/internal/uml"
)

// Severity grades a diagnostic.
type Severity int

// Severities. Errors gate generation; warnings and infos are advisory.
const (
	// Info flags a noteworthy but legal modeling choice (e.g. a method
	// with no transition).
	Info Severity = iota + 1
	// Warning flags a construct that is almost certainly a mistake but
	// does not break generation or evaluation.
	Warning
	// Error flags a construct that breaks contract generation or is
	// guaranteed to fail at monitoring time.
	Error
)

// String returns the lowercase severity name.
func (s Severity) String() string {
	switch s {
	case Info:
		return "info"
	case Warning:
		return "warning"
	case Error:
		return "error"
	}
	return fmt.Sprintf("Severity(%d)", int(s))
}

// MarshalJSON renders the severity as its name.
func (s Severity) MarshalJSON() ([]byte, error) {
	return json.Marshal(s.String())
}

// Location identifies the model element a diagnostic is anchored at.
type Location struct {
	// Diagram is "resource" or "behavioral".
	Diagram string `json:"diagram"`
	// Element names the element, e.g. `state "full"` or
	// `transition POST(volume) a->b`.
	Element string `json:"element"`
	// Detail narrows the element part, e.g. "guard", "effect",
	// "invariant". Optional.
	Detail string `json:"detail,omitempty"`
}

// String renders the location. The diagram is omitted — element names
// ("state", "transition", "resource", "uri") already identify it; the
// JSON form carries the diagram explicitly.
func (l Location) String() string {
	s := l.Element
	if l.Detail != "" {
		s += " " + l.Detail
	}
	return s
}

// Diagnostic is one finding of the analyzer.
type Diagnostic struct {
	// Code is the stable diagnostic code, e.g. "MV102".
	Code string `json:"code"`
	// Severity grades the finding.
	Severity Severity `json:"severity"`
	// Pass is the name of the producing pass.
	Pass string `json:"pass"`
	// Loc anchors the finding at a model element.
	Loc Location `json:"location"`
	// Message is the human-readable explanation.
	Message string `json:"message"`
	// SecReq is the related security-requirement tag, when the finding
	// concerns traceability. Optional.
	SecReq string `json:"secreq,omitempty"`
}

// String renders the diagnostic in the analyzer's one-line text format.
func (d Diagnostic) String() string {
	s := fmt.Sprintf("%s %-7s %s: %s", d.Code, d.Severity, d.Loc, d.Message)
	if d.SecReq != "" {
		s += " [SecReq " + d.SecReq + "]"
	}
	return s
}

// Config tunes an analysis run.
type Config struct {
	// RequiredSecReqs lists security-requirement tags that must trace to
	// at least one transition (MV402). Empty disables the check.
	RequiredSecReqs []string
	// Passes selects pass names to run; nil runs every registered pass.
	Passes []string
}

// Pass is one independent analysis over the model.
type Pass struct {
	// Name identifies the pass (stable, kebab-case).
	Name string
	// Doc is a one-line description.
	Doc string
	// Codes lists the diagnostic codes the pass can emit.
	Codes []string
	// Run produces the pass's diagnostics.
	Run func(*Context) []Diagnostic
}

// Passes returns the registered passes in execution order.
func Passes() []Pass {
	return []Pass{
		typecheckPass(),
		reachabilityPass(),
		guardsPass(),
		interfacePass(),
		secreqPass(),
		monitorabilityPass(),
		framesPass(),
		symbolicPass(),
	}
}

// exprKind distinguishes the OCL attachment points of the metamodel.
type exprKind int

const (
	exprInvariant exprKind = iota + 1
	exprGuard
	exprEffect
)

func (k exprKind) String() string {
	switch k {
	case exprInvariant:
		return "invariant"
	case exprGuard:
		return "guard"
	case exprEffect:
		return "effect"
	}
	return "expr"
}

// modelExpr is one OCL fragment of the model, parsed once and shared by
// all passes. Expr is nil when parsing failed (the typecheck pass reports
// MV001 and dependent passes skip the fragment).
type modelExpr struct {
	Kind   exprKind
	Source string
	Expr   ocl.Expr
	Loc    Location
	// State is set for invariants.
	State *uml.State
	// Transition is set for guards and effects.
	Transition *uml.Transition
}

// Context carries the model and everything the passes share: parsed OCL
// fragments, the navigation vocabulary, the static type environment, and
// (when generation succeeds) the generated contracts.
type Context struct {
	Model  *uml.Model
	Config Config

	exprs   []modelExpr
	vocab   ocl.VocabularyFunc
	typeEnv ocl.TypeEnv

	// contracts is the generated contract set, nil when generation
	// failed (the underlying errors surface as diagnostics elsewhere).
	contracts *contract.Set
}

// Exprs returns the parsed OCL fragments of the model in declaration
// order: state invariants first, then per-transition guard and effect.
func (ctx *Context) Exprs() []modelExpr { return ctx.exprs }

// Contracts returns the generated contract set, or nil when contract
// generation failed.
func (ctx *Context) Contracts() *contract.Set { return ctx.contracts }

// stateLoc locates a state.
func stateLoc(s *uml.State, detail string) Location {
	return Location{Diagram: "behavioral", Element: fmt.Sprintf("state %q", s.Name), Detail: detail}
}

// transitionLoc locates a transition.
func transitionLoc(t *uml.Transition, detail string) Location {
	return Location{
		Diagram: "behavioral",
		Element: fmt.Sprintf("transition %s %s->%s", t.Trigger, t.From, t.To),
		Detail:  detail,
	}
}

// resourceLoc locates a resource definition.
func resourceLoc(name, detail string) Location {
	return Location{Diagram: "resource", Element: fmt.Sprintf("resource %q", name), Detail: detail}
}

// newContext parses every OCL fragment and prepares shared state.
func newContext(m *uml.Model, cfg Config) *Context {
	ctx := &Context{Model: m, Config: cfg}
	ctx.vocab = contract.VocabularyOf(m.Resource)
	ctx.typeEnv = TypeEnvOf(m.Resource)
	for _, s := range m.Behavioral.States {
		e, err := ocl.Parse(s.Invariant)
		if err != nil {
			e = nil
		}
		ctx.exprs = append(ctx.exprs, modelExpr{
			Kind: exprInvariant, Source: s.Invariant, Expr: e,
			Loc: stateLoc(s, "invariant"), State: s,
		})
	}
	for _, t := range m.Behavioral.Transitions {
		guard, err := ocl.Parse(t.Guard)
		if err != nil {
			guard = nil
		}
		ctx.exprs = append(ctx.exprs, modelExpr{
			Kind: exprGuard, Source: t.Guard, Expr: guard,
			Loc: transitionLoc(t, "guard"), Transition: t,
		})
		effect, err := ocl.Parse(t.Effect)
		if err != nil {
			effect = nil
		}
		ctx.exprs = append(ctx.exprs, modelExpr{
			Kind: exprEffect, Source: t.Effect, Expr: effect,
			Loc: transitionLoc(t, "effect"), Transition: t,
		})
	}
	if set, err := contract.Generate(m); err == nil {
		ctx.contracts = set
	}
	return ctx
}

// Report is the result of an analysis run.
type Report struct {
	// Diagnostics are sorted deterministically (code, then location,
	// then message).
	Diagnostics []Diagnostic `json:"diagnostics"`
}

// Analyze runs the configured passes over the model and returns the
// sorted report. The model must be structurally valid (uml.Model.Validate)
// — structural breakage is reported as a single MV000 diagnostic per
// joined validation error line, since the passes cannot run reliably on a
// malformed model.
func Analyze(m *uml.Model, cfg Config) *Report {
	r := &Report{}
	if err := m.Validate(); err != nil {
		for _, line := range strings.Split(err.Error(), "\n") {
			if line == "" {
				continue
			}
			r.Diagnostics = append(r.Diagnostics, Diagnostic{
				Code:     "MV000",
				Severity: Error,
				Pass:     "structure",
				Loc:      Location{Diagram: "model", Element: "validation"},
				Message:  line,
			})
		}
		sortDiagnostics(r.Diagnostics)
		return r
	}
	ctx := newContext(m, cfg)
	selected := make(map[string]bool, len(cfg.Passes))
	for _, name := range cfg.Passes {
		selected[name] = true
	}
	for _, p := range Passes() {
		if len(selected) > 0 && !selected[p.Name] {
			continue
		}
		r.Diagnostics = append(r.Diagnostics, p.Run(ctx)...)
	}
	sortDiagnostics(r.Diagnostics)
	r.Diagnostics = dedupeDiagnostics(r.Diagnostics)
	return r
}

// dedupeDiagnostics removes exact duplicates from a sorted slice. Passes
// anchored at shared model elements (identical sibling transitions, a path
// read in several clauses) can re-derive the same finding once per
// viewpoint; repeating it doubles the counts without adding information.
func dedupeDiagnostics(ds []Diagnostic) []Diagnostic {
	out := ds[:0]
	for i, d := range ds {
		if i > 0 && d == ds[i-1] {
			continue
		}
		out = append(out, d)
	}
	return out
}

// sortDiagnostics orders diagnostics deterministically: by code, then
// location, then message.
func sortDiagnostics(ds []Diagnostic) {
	sort.SliceStable(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Code != b.Code {
			return a.Code < b.Code
		}
		if a.Loc.Diagram != b.Loc.Diagram {
			return a.Loc.Diagram < b.Loc.Diagram
		}
		if a.Loc.Element != b.Loc.Element {
			return a.Loc.Element < b.Loc.Element
		}
		if a.Loc.Detail != b.Loc.Detail {
			return a.Loc.Detail < b.Loc.Detail
		}
		return a.Message < b.Message
	})
}

// Count returns the number of diagnostics at the given severity.
func (r *Report) Count(s Severity) int {
	n := 0
	for _, d := range r.Diagnostics {
		if d.Severity == s {
			n++
		}
	}
	return n
}

// HasErrors reports whether any diagnostic is an Error.
func (r *Report) HasErrors() bool { return r.Count(Error) > 0 }

// ByCode returns the diagnostics carrying the given code.
func (r *Report) ByCode(code string) []Diagnostic {
	var out []Diagnostic
	for _, d := range r.Diagnostics {
		if d.Code == code {
			out = append(out, d)
		}
	}
	return out
}

// Render writes the report in the one-line-per-diagnostic text format,
// ending with a summary line. The output is deterministic.
func (r *Report) Render() string {
	var sb strings.Builder
	for _, d := range r.Diagnostics {
		sb.WriteString(d.String())
		sb.WriteByte('\n')
	}
	fmt.Fprintf(&sb, "%d error(s), %d warning(s), %d info(s)\n",
		r.Count(Error), r.Count(Warning), r.Count(Info))
	return sb.String()
}

// RenderJSON renders the report as indented JSON with a stable field
// order.
func (r *Report) RenderJSON() (string, error) {
	type payload struct {
		Diagnostics []Diagnostic `json:"diagnostics"`
		Errors      int          `json:"errors"`
		Warnings    int          `json:"warnings"`
		Infos       int          `json:"infos"`
	}
	ds := r.Diagnostics
	if ds == nil {
		ds = []Diagnostic{}
	}
	b, err := json.MarshalIndent(payload{
		Diagnostics: ds,
		Errors:      r.Count(Error),
		Warnings:    r.Count(Warning),
		Infos:       r.Count(Info),
	}, "", "  ")
	if err != nil {
		return "", err
	}
	return string(b) + "\n", nil
}
