package analysis

import (
	"fmt"

	"cloudmon/internal/ocl"
	"cloudmon/internal/uml"
)

// TypeEnvOf derives the static type environment from the resource model,
// mirroring how the monitor's state provider resolves paths at runtime:
//
//   - `<resource>.<attribute>` has the attribute's declared type;
//   - `<resource>.<role>` navigating into a collection resource or across
//     a 0..*/1..* association is a Collection;
//   - a bare collection resource is a Collection;
//   - everything else — the `user` authorization context, bare normal
//     resources, paths deeper than two segments — is OclAny, about which
//     the checker stays silent (vocabulary errors are a separate check).
func TypeEnvOf(rm *uml.ResourceModel) ocl.TypeEnv {
	return &modelTypeEnv{rm: rm}
}

type modelTypeEnv struct {
	rm *uml.ResourceModel
}

func (e *modelTypeEnv) TypeOf(path []string) ocl.Type {
	if len(path) == 0 {
		return ocl.AnyType()
	}
	res, ok := e.rm.Resource(path[0])
	if !ok {
		return ocl.AnyType()
	}
	if len(path) == 1 {
		if res.Kind == uml.KindCollection {
			return ocl.CollType(ocl.AnyType())
		}
		return ocl.AnyType()
	}
	if len(path) > 2 {
		return ocl.AnyType()
	}
	if a, ok := res.Attribute(path[1]); ok {
		return attrType(a.Type)
	}
	for _, assoc := range e.rm.AssociationsFrom(res.Name) {
		if assoc.Role != path[1] {
			continue
		}
		target, ok := e.rm.Resource(assoc.To)
		if ok && target.Kind == uml.KindCollection {
			return ocl.CollType(ocl.AnyType())
		}
		if assoc.Mult.Max == uml.Many || assoc.Mult.Max > 1 {
			return ocl.CollType(ocl.AnyType())
		}
		return ocl.AnyType()
	}
	return ocl.AnyType()
}

func attrType(t uml.AttrType) ocl.Type {
	switch t {
	case uml.TypeString:
		return ocl.StringType()
	case uml.TypeInteger:
		return ocl.IntType()
	case uml.TypeBoolean:
		return ocl.BoolType()
	}
	return ocl.AnyType()
}

// typecheckPass builds the OCL front-end pass: parse errors, vocabulary
// errors (every unknown path, not just the first), static type errors
// mirroring the evaluator's coercion rules, and non-boolean constraints.
func typecheckPass() Pass {
	return Pass{
		Name: "ocl-typecheck",
		Doc:  "parse, vocabulary and type errors in every OCL fragment",
		Codes: []string{
			"MV001", "MV002", "MV003", "MV004", "MV005", "MV006", "MV007",
		},
		Run: runTypecheck,
	}
}

func runTypecheck(ctx *Context) []Diagnostic {
	var ds []Diagnostic
	for _, me := range ctx.Exprs() {
		if me.Expr == nil {
			// Re-parse to recover the error text.
			_, err := ocl.Parse(me.Source)
			msg := "unparseable OCL"
			if err != nil {
				msg = err.Error()
			}
			ds = append(ds, Diagnostic{
				Code: "MV001", Severity: Error, Pass: "ocl-typecheck",
				Loc: me.Loc, Message: msg,
			})
			continue
		}
		// MV002: every unknown navigation path, sorted and deduplicated.
		for _, p := range ocl.UnknownPaths(me.Expr, ctx.vocab) {
			ds = append(ds, Diagnostic{
				Code: "MV002", Severity: Error, Pass: "ocl-typecheck",
				Loc: me.Loc, Message: fmt.Sprintf("unknown navigation path %q", p),
			})
		}
		top, issues := ocl.InferType(me.Expr, ctx.typeEnv)
		for _, is := range issues {
			code, sev := issueCode(is.Kind)
			ds = append(ds, Diagnostic{
				Code: code, Severity: sev, Pass: "ocl-typecheck",
				Loc:     me.Loc,
				Message: fmt.Sprintf("%s (in %s)", is.Message, is.Expr),
			})
		}
		// MV007: an invariant or guard or effect must be a Boolean
		// constraint; any other definite top-level type can never hold.
		if top.Kind != ocl.TAny && top.Kind != ocl.TBool {
			ds = append(ds, Diagnostic{
				Code: "MV007", Severity: Error, Pass: "ocl-typecheck",
				Loc: me.Loc,
				Message: fmt.Sprintf("%s is %s, not Boolean — the constraint can never hold",
					me.Kind, top),
			})
		}
	}
	return ds
}

// issueCode maps a static type issue onto its diagnostic code and
// severity.
func issueCode(k ocl.IssueKind) (string, Severity) {
	switch k {
	case ocl.IssueTypeMismatch:
		return "MV003", Error
	case ocl.IssueIncomparable:
		return "MV004", Warning
	case ocl.IssueUnknownOp, ocl.IssueBadArity:
		return "MV005", Error
	case ocl.IssueIterScope:
		return "MV006", Error
	}
	return "MV003", Error
}
