package analysis

import (
	"strings"
	"testing"

	"cloudmon/internal/paper"
	"cloudmon/internal/slice"
	"cloudmon/internal/uml"
)

// minimalModel builds the smallest analyzer-clean model the tests mutate:
// a things/thing collection pair and a two-state machine with tagged
// POST/DELETE transitions.
func minimalModel() *uml.Model {
	rm := &uml.ResourceModel{
		Name: "m",
		Resources: []*uml.ResourceDef{
			{Name: "things", Kind: uml.KindCollection},
			{Name: "thing", Kind: uml.KindNormal, Attributes: []uml.Attribute{
				{Name: "id", Type: uml.TypeString},
				{Name: "count", Type: uml.TypeInteger},
			}},
		},
		Associations: []uml.Association{
			{From: "things", To: "thing", Role: "thing", Mult: uml.Multiplicity{Min: 0, Max: uml.Many}},
		},
	}
	bm := &uml.BehavioralModel{
		Name: "b",
		States: []*uml.State{
			{Name: "empty", Initial: true, Invariant: "things->size() = 0"},
			{Name: "busy", Invariant: "things->size() >= 1"},
		},
		Transitions: []*uml.Transition{
			{
				From: "empty", To: "busy",
				Trigger: uml.Trigger{Method: uml.POST, Resource: "thing"},
				Effect:  "things->size() = pre(things->size()) + 1",
				SecReqs: []string{"1.1"},
			},
			{
				From: "busy", To: "empty",
				Trigger: uml.Trigger{Method: uml.DELETE, Resource: "thing"},
				Guard:   "things->size() = 1",
				Effect:  "things->size() = pre(things->size()) - 1",
				SecReqs: []string{"1.2"},
			},
		},
	}
	return &uml.Model{Resource: rm, Behavioral: bm}
}

// wantDiag asserts the report contains a diagnostic with the code, at the
// expected severity, whose location+message mention every needle.
func wantDiag(t *testing.T, r *Report, code string, sev Severity, needles ...string) Diagnostic {
	t.Helper()
	ds := r.ByCode(code)
	if len(ds) == 0 {
		t.Fatalf("no %s diagnostic; report:\n%s", code, r.Render())
	}
	for _, d := range ds {
		if d.Severity != sev {
			continue
		}
		text := d.Loc.String() + ": " + d.Message
		ok := true
		for _, n := range needles {
			if !strings.Contains(text, n) {
				ok = false
				break
			}
		}
		if ok {
			return d
		}
	}
	t.Fatalf("no %s diagnostic at severity %s mentioning %q; report:\n%s",
		code, sev, needles, r.Render())
	return Diagnostic{}
}

func analyze(m *uml.Model) *Report { return Analyze(m, Config{}) }

func TestMinimalModelHasNoErrors(t *testing.T) {
	r := analyze(minimalModel())
	if r.HasErrors() {
		t.Fatalf("minimal model has errors:\n%s", r.Render())
	}
}

func TestStructurallyInvalidModelReportsMV000(t *testing.T) {
	m := minimalModel()
	m.Behavioral.Transitions[0].From = "ghost"
	m.Resource.Resources[1].Attributes = nil // normal resource without attributes
	r := analyze(m)
	wantDiag(t, r, "MV000", Error, "unknown source state")
	wantDiag(t, r, "MV000", Error, "at least one attribute")
	if !r.HasErrors() {
		t.Fatal("invalid model must report errors")
	}
}

func TestParseErrorMV001(t *testing.T) {
	m := minimalModel()
	m.Behavioral.Transitions[1].Guard = "things->size( ="
	r := analyze(m)
	wantDiag(t, r, "MV001", Error, `transition DELETE(thing) busy->empty`, "guard")
}

func TestUnknownPathsAllReportedMV002(t *testing.T) {
	m := minimalModel()
	m.Behavioral.States[0].Invariant = "thing.bogus = 1 and ghost.attr = 2 and thing.bogus = 3"
	r := analyze(m)
	wantDiag(t, r, "MV002", Error, `state "empty"`, `"ghost.attr"`)
	wantDiag(t, r, "MV002", Error, `state "empty"`, `"thing.bogus"`)
	// Deduplicated: thing.bogus appears twice in the formula, once in
	// the report.
	if got := len(r.ByCode("MV002")); got != 2 {
		t.Fatalf("MV002 count = %d, want 2 (deduplicated):\n%s", got, r.Render())
	}
}

func TestTypeMismatchMV003(t *testing.T) {
	m := minimalModel()
	// thing.count is Integer; `and` over it raises an EvalError at
	// runtime — modelvet catches it statically.
	m.Behavioral.Transitions[1].Guard = "thing.count and things->size() = 1"
	r := analyze(m)
	wantDiag(t, r, "MV003", Error, "guard", "and applied to Integer")
}

func TestIncomparableScalarsMV004(t *testing.T) {
	m := minimalModel()
	m.Behavioral.Transitions[1].Guard = "thing.count = 'busy'"
	r := analyze(m)
	wantDiag(t, r, "MV004", Warning, "always false")
	if r.HasErrors() {
		t.Fatalf("MV004 is advisory, got errors:\n%s", r.Render())
	}
}

func TestUnknownOpAndArityMV005(t *testing.T) {
	m := minimalModel()
	m.Behavioral.States[0].Invariant = "things->frobnicate() = 0"
	m.Behavioral.States[1].Invariant = "things->size(1) >= 1"
	r := analyze(m)
	wantDiag(t, r, "MV005", Error, `state "empty"`, `unknown collection operation "frobnicate"`)
	wantDiag(t, r, "MV005", Error, `state "busy"`, "size expects 0 argument(s), got 1")
}

func TestIteratorScopeMV006(t *testing.T) {
	m := minimalModel()
	m.Behavioral.Transitions[1].Guard = "things->forAll(x | x.id = 'a')"
	r := analyze(m)
	wantDiag(t, r, "MV006", Error, "guard", `cannot navigate below iterator variable "x"`)
}

func TestNonBooleanConstraintMV007(t *testing.T) {
	m := minimalModel()
	m.Behavioral.States[0].Invariant = "things->size()"
	r := analyze(m)
	wantDiag(t, r, "MV007", Error, "invariant", "Integer, not Boolean")
}

func TestNoInitialStateMV101(t *testing.T) {
	m := minimalModel()
	m.Behavioral.States[0].Initial = false
	r := analyze(m)
	wantDiag(t, r, "MV101", Warning, "no initial state")
}

func TestUnreachableStateAndDeadTransition(t *testing.T) {
	m := minimalModel()
	m.Behavioral.States = append(m.Behavioral.States,
		&uml.State{Name: "orphan", Invariant: "things->size() >= 0"})
	m.Behavioral.Transitions = append(m.Behavioral.Transitions, &uml.Transition{
		From: "orphan", To: "orphan",
		Trigger: uml.Trigger{Method: uml.GET, Resource: "thing"},
	})
	r := analyze(m)
	wantDiag(t, r, "MV102", Warning, `state "orphan"`, "unreachable")
	wantDiag(t, r, "MV103", Warning, "transition GET(thing) orphan->orphan", "dead transition")
}

func TestTrapStateMV104(t *testing.T) {
	// busy only loops on itself: the machine has no terminal state and
	// busy can never return to the initial state.
	m := minimalModel()
	m.Behavioral.Transitions[1].To = "busy"
	r := analyze(m)
	wantDiag(t, r, "MV104", Warning, `state "busy"`, "trap")
}

func TestNoPathToTerminalMV104(t *testing.T) {
	// With a genuine terminal state present, states that cannot reach
	// any terminal are flagged.
	m := minimalModel()
	m.Behavioral.States = append(m.Behavioral.States,
		&uml.State{Name: "done", Invariant: ""})
	m.Behavioral.Transitions[1].To = "busy" // busy loops forever
	m.Behavioral.Transitions = append(m.Behavioral.Transitions, &uml.Transition{
		From: "empty", To: "done",
		Trigger: uml.Trigger{Method: uml.PUT, Resource: "thing"},
		SecReqs: []string{"1.3"},
	})
	r := analyze(m)
	wantDiag(t, r, "MV104", Warning, `state "busy"`, "terminal")
}

func TestContradictoryGuardMV201(t *testing.T) {
	m := minimalModel()
	m.Behavioral.Transitions[1].Guard = "thing.count = 1 and not (thing.count = 1)"
	r := analyze(m)
	wantDiag(t, r, "MV201", Error, "guard", "unsatisfiable", "negation")
}

func TestOverlappingGuardsMV202(t *testing.T) {
	m := minimalModel()
	dup := &uml.Transition{
		From: "busy", To: "busy",
		Trigger: uml.Trigger{Method: uml.DELETE, Resource: "thing"},
		Guard:   "things->size() = 1",
		Effect:  "things->size() = pre(things->size()) - 1",
		SecReqs: []string{"1.2"},
	}
	m.Behavioral.Transitions = append(m.Behavioral.Transitions, dup)
	r := analyze(m)
	wantDiag(t, r, "MV202", Warning, "identical guard")
}

func TestComplementaryGuardsMV202(t *testing.T) {
	m := minimalModel()
	m.Behavioral.Transitions = append(m.Behavioral.Transitions, &uml.Transition{
		From: "busy", To: "busy",
		Trigger: uml.Trigger{Method: uml.DELETE, Resource: "thing"},
		Guard:   "not (things->size() = 1)",
		Effect:  "things->size() = pre(things->size()) - 1",
		SecReqs: []string{"1.2"},
	})
	r := analyze(m)
	wantDiag(t, r, "MV202", Warning, "complementary", "trivially true")
}

func TestPreInGuardAndInvariantMV203(t *testing.T) {
	m := minimalModel()
	m.Behavioral.Transitions[1].Guard = "pre(things->size()) = 1"
	m.Behavioral.States[0].Invariant = "things@pre->size() = 0"
	r := analyze(m)
	wantDiag(t, r, "MV203", Error, "guard", "no pre-state")
	wantDiag(t, r, "MV203", Error, "invariant", "no pre-state")
}

func TestRoleCollisionMV301(t *testing.T) {
	m := minimalModel()
	m.Resource.Resources = append(m.Resource.Resources,
		&uml.ResourceDef{Name: "meta", Kind: uml.KindNormal,
			Attributes: []uml.Attribute{{Name: "v", Type: uml.TypeInteger}}},
		&uml.ResourceDef{Name: "audit", Kind: uml.KindNormal,
			Attributes: []uml.Attribute{{Name: "v", Type: uml.TypeInteger}}},
	)
	m.Resource.Associations = append(m.Resource.Associations,
		uml.Association{From: "thing", To: "meta", Role: "info", Mult: uml.Multiplicity{Min: 1, Max: 1}},
		uml.Association{From: "thing", To: "audit", Role: "info", Mult: uml.Multiplicity{Min: 1, Max: 1}},
	)
	r := analyze(m)
	wantDiag(t, r, "MV301", Error, `resource "thing"`, `role name "info"`, "collide")
	wantDiag(t, r, "MV301", Error, "compose the same URI")
}

func TestUnaddressableTriggerResourceMV302(t *testing.T) {
	m := minimalModel()
	// a and b form an association cycle no root reaches.
	m.Resource.Resources = append(m.Resource.Resources,
		&uml.ResourceDef{Name: "a", Kind: uml.KindNormal,
			Attributes: []uml.Attribute{{Name: "v", Type: uml.TypeInteger}}},
		&uml.ResourceDef{Name: "b", Kind: uml.KindNormal,
			Attributes: []uml.Attribute{{Name: "v", Type: uml.TypeInteger}}},
	)
	m.Resource.Associations = append(m.Resource.Associations,
		uml.Association{From: "a", To: "b", Role: "b", Mult: uml.Multiplicity{Min: 1, Max: 1}},
		uml.Association{From: "b", To: "a", Role: "a", Mult: uml.Multiplicity{Min: 1, Max: 1}},
	)
	m.Behavioral.Transitions = append(m.Behavioral.Transitions, &uml.Transition{
		From: "busy", To: "busy",
		Trigger: uml.Trigger{Method: uml.GET, Resource: "a"},
	})
	r := analyze(m)
	wantDiag(t, r, "MV302", Error, `resource "a"`, "unaddressable")
}

func TestMethodHoleMV303(t *testing.T) {
	r := analyze(minimalModel())
	d := wantDiag(t, r, "MV303", Info, `resource "thing"`, "GET, PUT")
	if d.Severity != Info {
		t.Fatalf("MV303 severity = %s, want info", d.Severity)
	}
}

func TestRouteConflictMV304(t *testing.T) {
	// Two resources composing the same URI, both triggered with GET:
	// monitor.New would refuse the route table.
	m := minimalModel()
	m.Resource.Resources = append(m.Resource.Resources,
		&uml.ResourceDef{Name: "meta", Kind: uml.KindNormal,
			Attributes: []uml.Attribute{{Name: "v", Type: uml.TypeInteger}}},
		&uml.ResourceDef{Name: "audit", Kind: uml.KindNormal,
			Attributes: []uml.Attribute{{Name: "v", Type: uml.TypeInteger}}},
	)
	m.Resource.Associations = append(m.Resource.Associations,
		uml.Association{From: "thing", To: "meta", Role: "info", Mult: uml.Multiplicity{Min: 1, Max: 1}},
		uml.Association{From: "thing", To: "audit", Role: "info", Mult: uml.Multiplicity{Min: 1, Max: 1}},
	)
	m.Behavioral.Transitions = append(m.Behavioral.Transitions,
		&uml.Transition{From: "busy", To: "busy",
			Trigger: uml.Trigger{Method: uml.GET, Resource: "meta"}},
		&uml.Transition{From: "busy", To: "busy",
			Trigger: uml.Trigger{Method: uml.GET, Resource: "audit"}},
	)
	r := analyze(m)
	wantDiag(t, r, "MV304", Error, "same route")
}

func TestUntaggedAuthTransitionMV401(t *testing.T) {
	m := minimalModel()
	m.Behavioral.Transitions[0].SecReqs = nil
	r := analyze(m)
	wantDiag(t, r, "MV401", Warning, "transition POST(thing)", "no security-requirement tag")
}

func TestRequiredSecReqUntracedMV402(t *testing.T) {
	m := minimalModel()
	r := Analyze(m, Config{RequiredSecReqs: []string{"1.1", "9.9"}})
	d := wantDiag(t, r, "MV402", Error, `"9.9"`, "traces to no transition")
	if d.SecReq != "9.9" {
		t.Fatalf("MV402 SecReq = %q, want 9.9", d.SecReq)
	}
	if len(r.ByCode("MV402")) != 1 {
		t.Fatalf("traced requirement 1.1 must not be flagged:\n%s", r.Render())
	}
}

func TestMalformedSecReqTagsMV403(t *testing.T) {
	m := minimalModel()
	m.Behavioral.Transitions[0].SecReqs = []string{"1.1", "1.1", ""}
	r := analyze(m)
	wantDiag(t, r, "MV403", Warning, "repeated")
	wantDiag(t, r, "MV403", Warning, "empty security-requirement tag")
}

func TestPostReferencesCreatedResourceMV501(t *testing.T) {
	m := minimalModel()
	m.Behavioral.Transitions[0].Effect = "thing.count = 1"
	r := analyze(m)
	wantDiag(t, r, "MV501", Warning, "transition POST(thing)", `"thing.count"`, "OclUndefined")
}

func TestDeleteReadsDeletedResourceMV502(t *testing.T) {
	m := minimalModel()
	m.Behavioral.Transitions[1].Effect = "thing.count = 0"
	r := analyze(m)
	wantDiag(t, r, "MV502", Warning, "transition DELETE(thing)", `"thing.count"`, "pre(thing.count)")
}

func TestDeleteCardinalityAndPreAreObservable(t *testing.T) {
	// Asserting deletion through ->size()/isEmpty or through pre() is
	// exactly what the proxy can observe — no MV502.
	m := minimalModel()
	m.Behavioral.Transitions[1].Effect =
		"thing.id->size() = 0 and pre(thing.count) >= 0"
	r := analyze(m)
	if ds := r.ByCode("MV502"); len(ds) != 0 {
		t.Fatalf("cardinality/pre reads flagged:\n%s", r.Render())
	}
}

func TestNestedPreMV503(t *testing.T) {
	m := minimalModel()
	m.Behavioral.Transitions[1].Effect = "pre(things@pre->size()) = 1"
	r := analyze(m)
	wantDiag(t, r, "MV503", Warning, "effect", "nested old-value")
}

func TestShippedModelsAreAnalyzerClean(t *testing.T) {
	models := map[string]*uml.Model{
		"cinder": paper.CinderModel(),
		"nova":   paper.NovaModel(),
	}
	if sliced, err := slice.Model(paper.CinderModel(), slice.BySecReqs("1.4")); err == nil {
		models["cinder-slice"] = sliced
	} else {
		t.Fatalf("slice: %v", err)
	}
	for name, m := range models {
		if r := analyze(m); r.HasErrors() {
			t.Errorf("%s model has analyzer errors:\n%s", name, r.Render())
		}
	}
}

func TestReportDeterministic(t *testing.T) {
	m := minimalModel()
	m.Behavioral.States[0].Invariant = "thing.bogus = 1 and ghost.attr = 2"
	m.Behavioral.Transitions[0].SecReqs = nil
	m.Behavioral.Transitions[1].Guard = "thing.count = 'busy'"
	first := analyze(m).Render()
	for i := 0; i < 10; i++ {
		if got := analyze(m).Render(); got != first {
			t.Fatalf("run %d differs:\n%s\nvs\n%s", i, got, first)
		}
	}
	j1, err := analyze(m).RenderJSON()
	if err != nil {
		t.Fatal(err)
	}
	j2, err := analyze(m).RenderJSON()
	if err != nil {
		t.Fatal(err)
	}
	if j1 != j2 {
		t.Fatal("JSON output not deterministic")
	}
}

func TestPassSelection(t *testing.T) {
	m := minimalModel()
	m.Behavioral.States[0].Invariant = "ghost.attr = 1" // MV002 (ocl-typecheck)
	m.Behavioral.Transitions[0].SecReqs = nil           // MV401 (secreq)
	r := Analyze(m, Config{Passes: []string{"secreq"}})
	if len(r.ByCode("MV002")) != 0 {
		t.Fatalf("disabled pass ran:\n%s", r.Render())
	}
	wantDiag(t, r, "MV401", Warning, "no security-requirement tag")
}

func TestPassRegistryCodesAreUniqueAndDocumented(t *testing.T) {
	seen := make(map[string]string)
	for _, p := range Passes() {
		if p.Name == "" || p.Doc == "" || len(p.Codes) == 0 {
			t.Errorf("pass %+v is underdocumented", p.Name)
		}
		for _, c := range p.Codes {
			if prev, dup := seen[c]; dup {
				t.Errorf("code %s claimed by %s and %s", c, prev, p.Name)
			}
			seen[c] = p.Name
		}
	}
	if len(seen) < 8 {
		t.Fatalf("registry documents %d codes, want >= 8", len(seen))
	}
}
