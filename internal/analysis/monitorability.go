package analysis

import (
	"fmt"

	"cloudmon/internal/ocl"
	"cloudmon/internal/uml"
)

// monitorabilityPass checks that postconditions only reference values the
// proxy can actually observe. The monitor addresses resources through the
// request's URI parameters and snapshots exactly the navigation paths the
// contract mentions (contract.StatePaths), once before forwarding and
// once after; that mechanism cannot see:
//
//   - the resource a POST creates — its id is not in the request URI, so
//     every navigation into it resolves to OclUndefined in both
//     snapshots (MV501);
//   - the current state of a resource a DELETE removed — only pre()
//     references are backed by the pre-state snapshot; a post-state read
//     of the deleted resource is OclUndefined (MV502), except through
//     cardinality operations (size/isEmpty/notEmpty), where "undefined
//     reads as empty" is exactly how the paper asserts deletion;
//   - a state before the pre-state — pre() inside pre() (or @pre inside
//     pre()) references a snapshot the monitor never took (MV503).
func monitorabilityPass() Pass {
	return Pass{
		Name:  "monitorability",
		Doc:   "postconditions the proxy cannot observe",
		Codes: []string{"MV501", "MV502", "MV503"},
		Run:   runMonitorability,
	}
}

func runMonitorability(ctx *Context) []Diagnostic {
	var ds []Diagnostic

	invariants := make(map[string]ocl.Expr, len(ctx.Model.Behavioral.States))
	for _, me := range ctx.Exprs() {
		if me.Kind == exprInvariant && me.Expr != nil {
			invariants[me.State.Name] = me.Expr
		}
	}

	for _, me := range ctx.Exprs() {
		if me.Expr == nil || me.Kind != exprEffect {
			continue
		}
		t := me.Transition
		res := t.Trigger.Resource

		// MV503: nested old-value references, anywhere in the effect.
		for _, nested := range nestedPreRefs(me.Expr) {
			ds = append(ds, Diagnostic{
				Code: "MV503", Severity: Warning, Pass: "monitorability",
				Loc: me.Loc,
				Message: fmt.Sprintf(
					"nested old-value reference %s — the monitor keeps a single pre-state snapshot; there is no state before it", nested),
			})
		}

		// The postcondition of the transition is inv(target) and effect.
		post := []struct {
			expr ocl.Expr
			part string
		}{
			{me.Expr, "effect"},
			{invariants[t.To], fmt.Sprintf("target invariant (%s)", t.To)},
		}
		for _, p := range post {
			if p.expr == nil {
				continue
			}
			switch t.Trigger.Method {
			case uml.POST:
				for _, path := range headedPaths(p.expr, res, false) {
					ds = append(ds, Diagnostic{
						Code: "MV501", Severity: Warning, Pass: "monitorability",
						Loc: me.Loc,
						Message: fmt.Sprintf(
							"%s references %q of the resource POST creates — the created id is not in the request URI, so the proxy observes OclUndefined in both snapshots",
							p.part, path),
					})
				}
			case uml.DELETE:
				for _, path := range headedPaths(p.expr, res, true) {
					ds = append(ds, Diagnostic{
						Code: "MV502", Severity: Warning, Pass: "monitorability",
						Loc: me.Loc,
						Message: fmt.Sprintf(
							"%s reads %q of the deleted resource in the post-state — only pre(%s) is observable after DELETE",
							p.part, path, path),
					})
				}
			}
		}
	}
	return ds
}

// nestedPreRefs returns the rendered pre()/@pre sub-expressions that occur
// inside another pre() context.
func nestedPreRefs(e ocl.Expr) []string {
	var out []string
	var walk func(n ocl.Expr, inPre bool)
	walk = func(n ocl.Expr, inPre bool) {
		switch x := n.(type) {
		case nil:
		case *ocl.PreExpr:
			if inPre {
				out = append(out, x.String())
			}
			walk(x.Expr, true)
		case *ocl.Nav:
			if inPre && x.AtPre {
				out = append(out, x.String())
			}
		case *ocl.Unary:
			walk(x.Expr, inPre)
		case *ocl.Binary:
			walk(x.L, inPre)
			walk(x.R, inPre)
		case *ocl.CollOp:
			walk(x.Recv, inPre)
			for _, a := range x.Args {
				walk(a, inPre)
			}
		case *ocl.IterOp:
			walk(x.Recv, inPre)
			walk(x.Body, inPre)
		}
	}
	walk(e, false)
	return out
}

// headedPaths returns the distinct navigation paths headed at resource
// head that occur outside pre()/@pre contexts, in first-occurrence order.
// With skipCardinality set, paths consumed solely as the receiver of a
// cardinality operation (size, isEmpty, notEmpty) are exempt: reading a
// missing resource as "empty" is meaningful.
func headedPaths(e ocl.Expr, head string, skipCardinality bool) []string {
	cardinality := map[string]bool{"size": true, "isEmpty": true, "notEmpty": true}
	seen := make(map[string]bool)
	var out []string
	var walk func(n ocl.Expr, bound map[string]int)
	walk = func(n ocl.Expr, bound map[string]int) {
		switch x := n.(type) {
		case nil:
		case *ocl.PreExpr:
			// Old-value references are backed by the pre-state snapshot.
		case *ocl.Nav:
			if x.AtPre {
				return
			}
			if bound[x.Path[0]] > 0 {
				return
			}
			if x.Path[0] == head {
				key := x.String()
				if !seen[key] {
					seen[key] = true
					out = append(out, key)
				}
			}
		case *ocl.Unary:
			walk(x.Expr, bound)
		case *ocl.Binary:
			walk(x.L, bound)
			walk(x.R, bound)
		case *ocl.CollOp:
			if !(skipCardinality && cardinality[x.Name]) {
				walk(x.Recv, bound)
			}
			for _, a := range x.Args {
				walk(a, bound)
			}
		case *ocl.IterOp:
			walk(x.Recv, bound)
			bound[x.Var]++
			walk(x.Body, bound)
			bound[x.Var]--
		}
	}
	walk(e, map[string]int{})
	return out
}
