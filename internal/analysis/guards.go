package analysis

import (
	"fmt"
	"sort"

	"cloudmon/internal/ocl"
	"cloudmon/internal/uml"
)

// guardsPass analyzes transition guards: syntactic contradictions (a
// conjunction containing both e and not e, or a literal false), guard
// overlap between same-trigger transitions out of the same state (either
// duplicated guards, or a complementary pair g / not g whose disjunction
// makes the method pre-condition trivially true whenever the source
// invariant holds), and illegal pre()/@pre references in guards and
// invariants (which by definition have no pre-state).
func guardsPass() Pass {
	return Pass{
		Name:  "guards",
		Doc:   "contradictory, overlapping and illegal guards",
		Codes: []string{"MV201", "MV202", "MV203"},
		Run:   runGuards,
	}
}

func runGuards(ctx *Context) []Diagnostic {
	var ds []Diagnostic

	// MV201 + MV203 per fragment.
	for _, me := range ctx.Exprs() {
		if me.Expr == nil {
			continue
		}
		switch me.Kind {
		case exprGuard:
			if reason, bad := contradictoryConjunction(me.Expr); bad {
				ds = append(ds, Diagnostic{
					Code: "MV201", Severity: Error, Pass: "guards",
					Loc: me.Loc,
					Message: fmt.Sprintf(
						"guard is unsatisfiable (%s) — the transition can never fire", reason),
				})
			}
			if ocl.UsesPre(me.Expr) {
				ds = append(ds, Diagnostic{
					Code: "MV203", Severity: Error, Pass: "guards",
					Loc:     me.Loc,
					Message: "guard uses pre()/@pre — guards are evaluated before the call and have no pre-state",
				})
			}
		case exprInvariant:
			if ocl.UsesPre(me.Expr) {
				ds = append(ds, Diagnostic{
					Code: "MV203", Severity: Error, Pass: "guards",
					Loc:     me.Loc,
					Message: "state invariant uses pre()/@pre — invariants have no pre-state",
				})
			}
		}
	}

	// MV202: group transitions by (source state, trigger).
	type groupKey struct {
		from    string
		trigger uml.Trigger
	}
	groups := make(map[groupKey][]*uml.Transition)
	var order []groupKey
	for _, t := range ctx.Model.Behavioral.Transitions {
		k := groupKey{from: t.From, trigger: t.Trigger}
		if _, seen := groups[k]; !seen {
			order = append(order, k)
		}
		groups[k] = append(groups[k], t)
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].from != order[j].from {
			return order[i].from < order[j].from
		}
		return order[i].trigger.String() < order[j].trigger.String()
	})
	for _, k := range order {
		ts := groups[k]
		if len(ts) < 2 {
			continue
		}
		for i := 0; i < len(ts); i++ {
			gi := canonicalGuard(ts[i].Guard)
			for j := i + 1; j < len(ts); j++ {
				gj := canonicalGuard(ts[j].Guard)
				switch {
				case gi == gj:
					ds = append(ds, Diagnostic{
						Code: "MV202", Severity: Warning, Pass: "guards",
						Loc: transitionLoc(ts[i], "guard"),
						Message: fmt.Sprintf(
							"same-trigger transition to %q carries an identical guard — the contract cases overlap and the target state is ambiguous",
							ts[j].To),
					})
				case complementary(gi, gj):
					ds = append(ds, Diagnostic{
						Code: "MV202", Severity: Warning, Pass: "guards",
						Loc: transitionLoc(ts[i], "guard"),
						Message: fmt.Sprintf(
							"guard and the guard of the same-trigger transition to %q are complementary — their disjunction makes pre(%s) trivially true whenever the source invariant holds",
							ts[j].To, k.trigger),
					})
				}
			}
		}
	}
	return ds
}

// canonicalGuard renders the guard's canonical OCL spelling ("" parses to
// the true literal). Unparseable guards canonicalize to their raw text so
// they never spuriously collide.
func canonicalGuard(src string) string {
	e, err := ocl.Parse(src)
	if err != nil {
		return src
	}
	return e.String()
}

// complementary reports whether the canonical guards are g and not g.
func complementary(a, b string) bool {
	return a == "not "+b || b == "not "+a ||
		a == "not ("+b+")" || b == "not ("+a+")"
}

// contradictoryConjunction reports whether the expression is a conjunction
// containing a literal false or both e and not e for syntactically equal
// e. This is the cheap, sound-but-incomplete contradiction check: it never
// flags a satisfiable guard.
func contradictoryConjunction(e ocl.Expr) (string, bool) {
	conjuncts := flattenAnd(e)
	rendered := make(map[string]bool, len(conjuncts))
	for _, c := range conjuncts {
		rendered[c.String()] = true
	}
	for _, c := range conjuncts {
		if lit, ok := c.(*ocl.Lit); ok &&
			lit.Value.Kind == ocl.KindBool && !lit.Value.Bool {
			return "contains the literal false", true
		}
		if u, ok := c.(*ocl.Unary); ok && u.Op == ocl.OpNot {
			inner := u.Expr.String()
			if rendered[inner] {
				return fmt.Sprintf("contains both %q and its negation", inner), true
			}
		}
	}
	return "", false
}

// flattenAnd returns the conjuncts of a (possibly nested) conjunction.
func flattenAnd(e ocl.Expr) []ocl.Expr {
	if b, ok := e.(*ocl.Binary); ok && b.Op == ocl.OpAnd {
		return append(flattenAnd(b.L), flattenAnd(b.R)...)
	}
	return []ocl.Expr{e}
}
