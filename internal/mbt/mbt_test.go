package mbt

import (
	"bytes"
	"strings"
	"testing"

	"cloudmon/internal/paper"
	"cloudmon/internal/uml"
)

var allRoles = []string{paper.RoleAdmin, paper.RoleMember, paper.RoleUser}

func TestGuardRoles(t *testing.T) {
	tests := []struct {
		guard string
		want  []string
	}{
		{"user.id.groups='admin'", []string{"admin"}},
		{"(user.id.groups='admin' or user.id.groups='member')", []string{"admin", "member"}},
		{"user.id.groups='admin' and project.volumes->size() > 0", []string{"admin"}},
		{"'member' = user.id.groups", []string{"member"}},
		{"project.volumes->size() > 0", nil},
		{"", nil},
	}
	for _, tt := range tests {
		got, err := GuardRoles(tt.guard)
		if err != nil {
			t.Fatalf("GuardRoles(%q): %v", tt.guard, err)
		}
		if len(got) != len(tt.want) {
			t.Errorf("GuardRoles(%q) = %v, want %v", tt.guard, got, tt.want)
			continue
		}
		for i := range tt.want {
			if got[i] != tt.want[i] {
				t.Errorf("GuardRoles(%q) = %v, want %v", tt.guard, got, tt.want)
			}
		}
	}
	if _, err := GuardRoles("((("); err == nil {
		t.Error("malformed guard accepted")
	}
}

func TestGenerateCinderSuiteShape(t *testing.T) {
	suite, err := Generate(paper.CinderBehavioralModel(), allRoles)
	if err != nil {
		t.Fatal(err)
	}
	var pos, neg, anon int
	for _, c := range suite.Cases {
		switch {
		case strings.HasPrefix(c.ID, "POS-"):
			pos++
			if !c.ExpectPermitted {
				t.Errorf("%s: positive case expects denial", c.ID)
			}
		case strings.HasPrefix(c.ID, "NEG-"):
			neg++
			if c.ExpectPermitted {
				t.Errorf("%s: negative case expects permission", c.ID)
			}
		case strings.HasPrefix(c.ID, "ANON-"):
			anon++
			if c.Target.Role != "" {
				t.Errorf("%s: anonymous case carries a role", c.ID)
			}
		}
	}
	// Positive: POST 4 transitions x {admin,member} + DELETE 3 x {admin} +
	// GET 2 x 3 roles + PUT 2 x {admin,member} = 8+3+6+4 = 21.
	if pos != 21 {
		t.Errorf("positive cases = %d, want 21", pos)
	}
	// Negative: POST user, DELETE member+user, PUT user = 4 (GET admits all).
	if neg != 4 {
		t.Errorf("negative cases = %d, want 4", neg)
	}
	if anon != 4 {
		t.Errorf("anonymous cases = %d, want 4 (one per trigger)", anon)
	}
	// Every trigger is covered as a target.
	cov := suite.TriggerCoverage()
	for _, tr := range suite.Model.Triggers() {
		if cov[tr] == 0 {
			t.Errorf("trigger %s not covered", tr)
		}
	}
	// Unique IDs.
	seen := map[string]bool{}
	for _, c := range suite.Cases {
		if seen[c.ID] {
			t.Errorf("duplicate case ID %s", c.ID)
		}
		seen[c.ID] = true
	}
}

func TestGeneratePathsReachSourceStates(t *testing.T) {
	suite, err := Generate(paper.CinderBehavioralModel(), allRoles)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range suite.Cases {
		// Paths are short: the Cinder machine has diameter 2.
		if len(c.Path) > 2 {
			t.Errorf("%s: path length %d", c.ID, len(c.Path))
		}
		// Every path hop carries a role (the hop must be executable).
		for _, s := range c.Path {
			if s.Role == "" {
				t.Errorf("%s: path hop without role", c.ID)
			}
		}
	}
}

func TestGenerateNovaSuite(t *testing.T) {
	suite, err := Generate(paper.NovaBehavioralModel(), allRoles)
	if err != nil {
		t.Fatal(err)
	}
	if len(suite.Cases) == 0 {
		t.Fatal("empty suite")
	}
	// DELETE(server) negatives: member and user.
	var negDelete int
	for _, c := range suite.Cases {
		if strings.HasPrefix(c.ID, "NEG-DELETE(server)") {
			negDelete++
		}
	}
	if negDelete != 2 {
		t.Errorf("negative DELETE cases = %d, want 2", negDelete)
	}
}

func TestGenerateErrors(t *testing.T) {
	m := paper.CinderBehavioralModel()
	m.States = nil
	if _, err := Generate(m, allRoles); err == nil {
		t.Error("invalid model accepted")
	}
	m2 := paper.CinderBehavioralModel()
	m2.States[0].Initial = false
	if _, err := Generate(m2, allRoles); err == nil {
		t.Error("model without initial state accepted")
	}
	m3 := paper.CinderBehavioralModel()
	m3.Transitions[0].Guard = "((("
	if _, err := Generate(m3, allRoles); err == nil {
		t.Error("malformed guard accepted")
	}
}

// scriptedExecutor answers per-step according to a rule.
type scriptedExecutor struct {
	resets int
	fired  []Step
	// permit decides the answer for a step.
	permit func(Step) bool
	err    error
}

func (s *scriptedExecutor) Reset() error {
	s.resets++
	return nil
}

func (s *scriptedExecutor) Fire(step Step) (bool, error) {
	s.fired = append(s.fired, step)
	if s.err != nil {
		return false, s.err
	}
	return s.permit(step), nil
}

func TestRunHappyPath(t *testing.T) {
	suite, err := Generate(paper.CinderBehavioralModel(), allRoles)
	if err != nil {
		t.Fatal(err)
	}
	// An executor faithful to Table I: permitted iff the role matches the
	// trigger's authorization.
	authorized := map[uml.HTTPMethod]map[string]bool{
		uml.GET:    {"admin": true, "member": true, "user": true},
		uml.PUT:    {"admin": true, "member": true},
		uml.POST:   {"admin": true, "member": true},
		uml.DELETE: {"admin": true},
	}
	ex := &scriptedExecutor{permit: func(s Step) bool {
		return authorized[s.Trigger.Method][s.Role]
	}}
	res, err := Run(suite, ex)
	if err != nil {
		t.Fatal(err)
	}
	if res.Passed() != len(res.Results) {
		for _, f := range res.Failures() {
			t.Errorf("case %s failed: permitted=%v expect=%v setup=%v",
				f.Case.ID, f.Permitted, f.Case.ExpectPermitted, f.SetupErr)
		}
	}
	if ex.resets != len(suite.Cases) {
		t.Errorf("resets = %d, want one per case (%d)", ex.resets, len(suite.Cases))
	}
}

func TestRunDetectsMisbehaviour(t *testing.T) {
	suite, err := Generate(paper.CinderBehavioralModel(), allRoles)
	if err != nil {
		t.Fatal(err)
	}
	// A deployment that lets everyone do everything: negative cases fail.
	ex := &scriptedExecutor{permit: func(Step) bool { return true }}
	res, err := Run(suite, ex)
	if err != nil {
		t.Fatal(err)
	}
	failures := res.Failures()
	if len(failures) == 0 {
		t.Fatal("over-permissive deployment passed the suite")
	}
	for _, f := range failures {
		if f.Case.ExpectPermitted {
			t.Errorf("positive case %s failed under allow-all", f.Case.ID)
		}
	}
}

func TestRunSetupFailureInvalidatesCase(t *testing.T) {
	suite, err := Generate(paper.CinderBehavioralModel(), allRoles)
	if err != nil {
		t.Fatal(err)
	}
	// Deny everything: cases with non-empty paths fail in setup.
	ex := &scriptedExecutor{permit: func(Step) bool { return false }}
	res, err := Run(suite, ex)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Results {
		if len(r.Case.Path) > 0 && r.SetupErr == nil {
			t.Errorf("case %s: path denied but no setup error", r.Case.ID)
		}
	}
}

func TestFormatReport(t *testing.T) {
	suite, err := Generate(paper.CinderBehavioralModel(), allRoles)
	if err != nil {
		t.Fatal(err)
	}
	ex := &scriptedExecutor{permit: func(s Step) bool { return s.Role == "admin" }}
	res, err := Run(suite, ex)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	res.Format(&buf)
	out := buf.String()
	if !strings.Contains(out, "passed ") || !strings.Contains(out, "Case") {
		t.Errorf("report malformed:\n%s", out)
	}
}

func TestStepString(t *testing.T) {
	s := Step{Trigger: uml.Trigger{Method: uml.DELETE, Resource: "volume"}, Role: "admin"}
	if s.String() != "DELETE(volume) as admin" {
		t.Errorf("String = %q", s.String())
	}
	anon := Step{Trigger: uml.Trigger{Method: uml.GET, Resource: "volume"}}
	if !strings.Contains(anon.String(), "<anonymous>") {
		t.Errorf("String = %q", anon.String())
	}
}
