// Package mbt derives executable test suites from the behavioral model —
// model-based testing, which the paper names as a direct payoff of having
// the design models ("we can use several existing model-based testing
// approaches to facilitate functional and security testing of private
// clouds", Section III).
//
// For every transition of the model the generator emits:
//
//   - one *positive* case per role its authorization guard admits: drive
//     the deployment along a transition path from the initial state to the
//     transition's source state, fire the trigger with that role, and
//     expect the request to be permitted;
//   - one *negative* case per role that no transition of the same trigger
//     admits, expecting the request to be denied;
//   - one *anonymous* case per trigger (no credentials), always denied.
//
// Cases run against any Executor — in this repository, the cloud-monitor
// lab, so the monitor serves as the test oracle exactly as in the paper's
// validation.
package mbt

import (
	"fmt"
	"sort"
	"strings"

	"cloudmon/internal/ocl"
	"cloudmon/internal/uml"
)

// Case is one generated test case.
type Case struct {
	// ID is stable and unique within a suite, e.g. "POS-DELETE(volume)-admin-2".
	ID string
	// Description says what the case checks.
	Description string
	// Path is the trigger/role sequence that drives the deployment from
	// the initial state to the state under test.
	Path []Step
	// Target is the request under test.
	Target Step
	// ExpectPermitted is the oracle: whether the contract admits Target
	// after Path.
	ExpectPermitted bool
}

// Step is one request: a trigger fired by a role. An empty role means an
// unauthenticated request.
type Step struct {
	Trigger uml.Trigger
	Role    string
}

// String renders the step, e.g. "DELETE(volume) as admin".
func (s Step) String() string {
	role := s.Role
	if role == "" {
		role = "<anonymous>"
	}
	return fmt.Sprintf("%s as %s", s.Trigger, role)
}

// Suite is a generated set of cases.
type Suite struct {
	Model *uml.BehavioralModel
	Cases []Case
}

// GuardRoles extracts the roles a guard admits via its
// `user.id.groups='<role>'` comparisons. A guard without such comparisons
// admits every role (authorization-free transition). The scan is
// syntactic, matching how Table-I authorization enters the paper's guards.
func GuardRoles(guard string) ([]string, error) {
	e, err := ocl.Parse(guard)
	if err != nil {
		return nil, fmt.Errorf("mbt: parse guard: %w", err)
	}
	set := make(map[string]bool)
	ocl.Walk(e, func(n ocl.Expr) bool {
		b, ok := n.(*ocl.Binary)
		if !ok || b.Op != ocl.OpEq {
			return true
		}
		nav, lit := asGroupComparison(b.L, b.R)
		if nav == nil {
			nav, lit = asGroupComparison(b.R, b.L)
		}
		if nav != nil && lit != nil && lit.Value.Kind == ocl.KindString {
			set[lit.Value.Str] = true
		}
		return true
	})
	roles := make([]string, 0, len(set))
	for r := range set {
		roles = append(roles, r)
	}
	sort.Strings(roles)
	return roles, nil
}

// asGroupComparison matches (user.id.groups, literal) operand pairs.
func asGroupComparison(l, r ocl.Expr) (*ocl.Nav, *ocl.Lit) {
	nav, ok := l.(*ocl.Nav)
	if !ok || strings.Join(nav.Path, ".") != "user.id.groups" {
		return nil, nil
	}
	lit, ok := r.(*ocl.Lit)
	if !ok {
		return nil, nil
	}
	return nav, lit
}

// Generate derives a suite from the model. allRoles is the deployment's
// role universe (for negative cases).
func Generate(m *uml.BehavioralModel, allRoles []string) (*Suite, error) {
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("mbt: %w", err)
	}
	initial, ok := m.InitialState()
	if !ok {
		return nil, fmt.Errorf("mbt: model %q has no initial state", m.Name)
	}

	// Per-transition authorized roles, and the per-trigger union used for
	// negative cases (a negative role must fail EVERY transition of the
	// trigger, or the combined disjunctive pre-condition could still admit
	// it).
	transRoles := make(map[*uml.Transition][]string, len(m.Transitions))
	triggerRoles := make(map[uml.Trigger]map[string]bool)
	for _, t := range m.Transitions {
		roles, err := GuardRoles(t.Guard)
		if err != nil {
			return nil, err
		}
		if len(roles) == 0 {
			// Authorization-free transition: every role qualifies.
			roles = append([]string(nil), allRoles...)
		}
		transRoles[t] = roles
		set, ok := triggerRoles[t.Trigger]
		if !ok {
			set = make(map[string]bool)
			triggerRoles[t.Trigger] = set
		}
		for _, r := range roles {
			set[r] = true
		}
	}

	paths, err := shortestPaths(m, initial.Name, transRoles)
	if err != nil {
		return nil, err
	}

	suite := &Suite{Model: m}
	// Positive cases: per transition, per authorized role.
	for ti, t := range m.Transitions {
		path, reachable := paths[t.From]
		if !reachable {
			// The scenario cannot be driven from the initial state with
			// authorized requests; skip but keep generation total.
			continue
		}
		for _, role := range transRoles[t] {
			suite.Cases = append(suite.Cases, Case{
				ID: fmt.Sprintf("POS-%s-t%d-%s", t.Trigger, ti, role),
				Description: fmt.Sprintf("%s by %s from state %s is permitted (SecReqs %v)",
					t.Trigger, role, t.From, t.SecReqs),
				Path:            path,
				Target:          Step{Trigger: t.Trigger, Role: role},
				ExpectPermitted: true,
			})
		}
	}
	// Negative + anonymous cases: per trigger.
	for _, tr := range m.Triggers() {
		// Fire from a state where the trigger has at least one transition,
		// so the denial is attributable to authorization, not to state.
		var from string
		found := false
		for _, t := range m.Transitions {
			if t.Trigger == tr {
				from = t.From
				found = true
				break
			}
		}
		if !found {
			continue
		}
		path, reachable := paths[from]
		if !reachable {
			continue
		}
		admitted := triggerRoles[tr]
		for _, role := range allRoles {
			if admitted[role] {
				continue
			}
			suite.Cases = append(suite.Cases, Case{
				ID: fmt.Sprintf("NEG-%s-%s", tr, role),
				Description: fmt.Sprintf("%s by unauthorized role %s is denied",
					tr, role),
				Path:            path,
				Target:          Step{Trigger: tr, Role: role},
				ExpectPermitted: false,
			})
		}
		suite.Cases = append(suite.Cases, Case{
			ID:              fmt.Sprintf("ANON-%s", tr),
			Description:     fmt.Sprintf("%s without credentials is denied", tr),
			Path:            path,
			Target:          Step{Trigger: tr},
			ExpectPermitted: false,
		})
	}
	return suite, nil
}

// shortestPaths BFSes the state machine from the initial state, recording
// for every reachable state one executable step sequence (each hop fired
// by one of its authorized roles).
func shortestPaths(m *uml.BehavioralModel, initial string, transRoles map[*uml.Transition][]string) (map[string][]Step, error) {
	paths := map[string][]Step{initial: {}}
	queue := []string{initial}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, t := range m.Transitions {
			if t.From != cur {
				continue
			}
			if _, seen := paths[t.To]; seen {
				continue
			}
			roles := transRoles[t]
			if len(roles) == 0 {
				continue
			}
			hop := Step{Trigger: t.Trigger, Role: roles[0]}
			paths[t.To] = append(append([]Step(nil), paths[cur]...), hop)
			queue = append(queue, t.To)
		}
	}
	return paths, nil
}
