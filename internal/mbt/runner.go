package mbt

import (
	"fmt"
	"io"
	"strings"

	"cloudmon/internal/uml"
)

// Executor drives one deployment. Implementations map triggers to concrete
// REST requests against the monitored cloud (see mutation.NewModelExecutor).
type Executor interface {
	// Reset provisions a fresh deployment.
	Reset() error
	// Fire issues the step's request and reports whether it was permitted
	// (the contract let it through and the cloud succeeded).
	Fire(step Step) (permitted bool, err error)
}

// CaseResult records one executed case.
type CaseResult struct {
	Case Case
	// Permitted is what the deployment answered for the target request.
	Permitted bool
	// Pass is whether Permitted matched the case's expectation.
	Pass bool
	// SetupErr is non-nil when a path step failed, invalidating the case.
	SetupErr error
}

// SuiteResult aggregates a run.
type SuiteResult struct {
	Results []CaseResult
}

// Passed returns the number of passing cases.
func (r *SuiteResult) Passed() int {
	n := 0
	for _, res := range r.Results {
		if res.Pass {
			n++
		}
	}
	return n
}

// Failures returns the non-passing results.
func (r *SuiteResult) Failures() []CaseResult {
	var out []CaseResult
	for _, res := range r.Results {
		if !res.Pass {
			out = append(out, res)
		}
	}
	return out
}

// Run executes the suite: each case on a fresh deployment.
func Run(suite *Suite, ex Executor) (*SuiteResult, error) {
	out := &SuiteResult{Results: make([]CaseResult, 0, len(suite.Cases))}
	for _, c := range suite.Cases {
		res := CaseResult{Case: c}
		if err := ex.Reset(); err != nil {
			return nil, fmt.Errorf("mbt: reset before %s: %w", c.ID, err)
		}
		setupOK := true
		for i, step := range c.Path {
			permitted, err := ex.Fire(step)
			if err != nil {
				res.SetupErr = fmt.Errorf("path step %d (%s): %w", i, step, err)
				setupOK = false
				break
			}
			if !permitted {
				res.SetupErr = fmt.Errorf("path step %d (%s) was denied", i, step)
				setupOK = false
				break
			}
		}
		if setupOK {
			permitted, err := ex.Fire(c.Target)
			if err != nil {
				res.SetupErr = fmt.Errorf("target (%s): %w", c.Target, err)
			} else {
				res.Permitted = permitted
				res.Pass = permitted == c.ExpectPermitted
			}
		}
		out.Results = append(out.Results, res)
	}
	return out, nil
}

// Format renders the suite result as a report table.
func (r *SuiteResult) Format(w io.Writer) {
	fmt.Fprintf(w, "%-28s %-7s %-9s %s\n", "Case", "Pass", "Permitted", "Detail")
	fmt.Fprintln(w, strings.Repeat("-", 80))
	for _, res := range r.Results {
		pass := "ok"
		if !res.Pass {
			pass = "FAIL"
		}
		detail := res.Case.Description
		if res.SetupErr != nil {
			detail = "setup: " + res.SetupErr.Error()
		}
		fmt.Fprintf(w, "%-28s %-7s %-9v %s\n", res.Case.ID, pass, res.Permitted, detail)
	}
	fmt.Fprintln(w, strings.Repeat("-", 80))
	fmt.Fprintf(w, "passed %d/%d\n", r.Passed(), len(r.Results))
}

// TriggerCoverage reports which triggers of the model the suite exercises
// as targets.
func (s *Suite) TriggerCoverage() map[uml.Trigger]int {
	out := make(map[uml.Trigger]int)
	for _, c := range s.Cases {
		out[c.Target.Trigger]++
	}
	return out
}
