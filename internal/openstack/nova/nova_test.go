package nova

import (
	"errors"
	"testing"

	"cloudmon/internal/httpkit"
	"cloudmon/internal/openstack/cinder"
	"cloudmon/internal/openstack/keystone"
)

func setup(t *testing.T) (*Service, *cinder.Service, string) {
	t.Helper()
	ks := keystone.New()
	proj := ks.CreateProject("p")
	vols := cinder.New(ks, nil)
	return New(ks, vols, nil), vols, proj.ID
}

func wantStatus(t *testing.T, err error, status int) {
	t.Helper()
	var apiErr *httpkit.APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("want APIError with status %d, got %v", status, err)
	}
	if apiErr.Status != status {
		t.Fatalf("status = %d, want %d", apiErr.Status, status)
	}
}

func TestServerLifecycle(t *testing.T) {
	s, _, pid := setup(t)
	srv := s.CreateServer(pid, "web")
	if srv.Status != StatusActive {
		t.Errorf("status = %q", srv.Status)
	}
	if got, ok := s.Server(pid, srv.ID); !ok || got.Name != "web" {
		t.Errorf("Server lookup = %v, %v", got, ok)
	}
	if got := s.Servers(pid); len(got) != 1 {
		t.Errorf("Servers = %v", got)
	}
	if err := s.DeleteServer(pid, srv.ID); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Server(pid, srv.ID); ok {
		t.Error("server survives delete")
	}
	wantStatus(t, s.DeleteServer(pid, srv.ID), 404)
}

func TestAttachDetachDrivesVolumeStatus(t *testing.T) {
	s, vols, pid := setup(t)
	srv := s.CreateServer(pid, "web")
	v, err := vols.Create(pid, "data", 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Attach(pid, srv.ID, v.ID); err != nil {
		t.Fatalf("Attach: %v", err)
	}
	got, _ := vols.Volume(pid, v.ID)
	if got.Status != cinder.StatusInUse || got.AttachedTo != srv.ID {
		t.Errorf("volume after attach = %+v", got)
	}
	gotSrv, _ := s.Server(pid, srv.ID)
	if len(gotSrv.Volumes) != 1 || gotSrv.Volumes[0] != v.ID {
		t.Errorf("server volumes = %v", gotSrv.Volumes)
	}
	if err := s.Detach(pid, srv.ID, v.ID); err != nil {
		t.Fatalf("Detach: %v", err)
	}
	got, _ = vols.Volume(pid, v.ID)
	if got.Status != cinder.StatusAvailable || got.AttachedTo != "" {
		t.Errorf("volume after detach = %+v", got)
	}
}

func TestDeleteServerDetachesVolumes(t *testing.T) {
	s, vols, pid := setup(t)
	srv := s.CreateServer(pid, "web")
	v, _ := vols.Create(pid, "data", 1)
	if err := s.Attach(pid, srv.ID, v.ID); err != nil {
		t.Fatal(err)
	}
	if err := s.DeleteServer(pid, srv.ID); err != nil {
		t.Fatal(err)
	}
	got, _ := vols.Volume(pid, v.ID)
	if got.Status != cinder.StatusAvailable {
		t.Errorf("volume not released on server delete: %+v", got)
	}
}

func TestAttachErrors(t *testing.T) {
	s, vols, pid := setup(t)
	srv := s.CreateServer(pid, "web")
	v, _ := vols.Create(pid, "data", 1)
	wantStatus(t, s.Attach(pid, "ghost", v.ID), 404)
	wantStatus(t, s.Attach(pid, srv.ID, "ghost"), 404)
	if err := s.Attach(pid, srv.ID, v.ID); err != nil {
		t.Fatal(err)
	}
	// Double attach conflicts (propagated from cinder).
	other := s.CreateServer(pid, "web2")
	wantStatus(t, s.Attach(pid, other.ID, v.ID), 409)
}

func TestDetachErrors(t *testing.T) {
	s, vols, pid := setup(t)
	srv := s.CreateServer(pid, "web")
	v, _ := vols.Create(pid, "data", 1)
	wantStatus(t, s.Detach(pid, srv.ID, v.ID), 404) // not attached
	wantStatus(t, s.Detach(pid, "ghost", v.ID), 404)
}

func TestProjectIsolation(t *testing.T) {
	ks := keystone.New()
	p1 := ks.CreateProject("p1").ID
	p2 := ks.CreateProject("p2").ID
	vols := cinder.New(ks, nil)
	s := New(ks, vols, nil)
	srv := s.CreateServer(p1, "web")
	if _, ok := s.Server(p2, srv.ID); ok {
		t.Error("cross-project server visible")
	}
	if got := s.Servers(p2); len(got) != 0 {
		t.Errorf("cross-project listing = %v", got)
	}
	wantStatus(t, s.DeleteServer(p2, srv.ID), 404)
}
