package nova

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"cloudmon/internal/openstack/cinder"
	"cloudmon/internal/openstack/keystone"
	"cloudmon/internal/rbac"
)

type httpFixture struct {
	srv       *httptest.Server
	compute   *Service
	volumes   *cinder.Service
	projectID string
	tokens    map[string]string
}

func newHTTPFixture(t *testing.T) *httpFixture {
	t.Helper()
	ks := keystone.New()
	proj := ks.CreateProject("p")
	tokens := make(map[string]string, 3)
	for _, role := range []string{"admin", "member", "user"} {
		u := ks.CreateUser("u-"+role, "pw")
		ks.AddUserToGroup(u.ID, "g-"+role)
		ks.AssignRole(proj.ID, "g-"+role, role)
		tok, err := ks.Authenticate("u-"+role, "pw", proj.ID)
		if err != nil {
			t.Fatal(err)
		}
		tokens[role] = tok.ID
	}
	vols := cinder.New(ks, nil)
	svc := New(ks, vols, nil)
	srv := httptest.NewServer(svc.Handler())
	t.Cleanup(srv.Close)
	return &httpFixture{srv: srv, compute: svc, volumes: vols, projectID: proj.ID, tokens: tokens}
}

func (f *httpFixture) do(t *testing.T, role, method, path string, body []byte) (int, []byte) {
	t.Helper()
	req, err := http.NewRequest(method, f.srv.URL+path, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if role != "" {
		req.Header.Set("X-Auth-Token", f.tokens[role])
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	_, _ = buf.ReadFrom(resp.Body)
	return resp.StatusCode, buf.Bytes()
}

func (f *httpFixture) servers() string { return "/v2.1/" + f.projectID + "/servers" }

func serverBodyJSON(name string) []byte {
	b, _ := json.Marshal(map[string]map[string]string{"server": {"name": name}})
	return b
}

func TestHandlerServerLifecycle(t *testing.T) {
	f := newHTTPFixture(t)
	status, body := f.do(t, "member", http.MethodPost, f.servers(), serverBodyJSON("web"))
	if status != http.StatusAccepted {
		t.Fatalf("create = %d (%s)", status, body)
	}
	var created struct {
		Server Server `json:"server"`
	}
	if err := json.Unmarshal(body, &created); err != nil {
		t.Fatal(err)
	}
	status, body = f.do(t, "user", http.MethodGet, f.servers(), nil)
	if status != http.StatusOK {
		t.Fatalf("list = %d", status)
	}
	var listed struct {
		Servers []Server `json:"servers"`
	}
	_ = json.Unmarshal(body, &listed)
	if len(listed.Servers) != 1 {
		t.Errorf("servers = %v", listed.Servers)
	}
	status, _ = f.do(t, "user", http.MethodGet, f.servers()+"/"+created.Server.ID, nil)
	if status != http.StatusOK {
		t.Errorf("show = %d", status)
	}
	// Deletion is admin-only.
	status, _ = f.do(t, "member", http.MethodDelete, f.servers()+"/"+created.Server.ID, nil)
	if status != http.StatusForbidden {
		t.Errorf("member delete = %d, want 403", status)
	}
	status, _ = f.do(t, "admin", http.MethodDelete, f.servers()+"/"+created.Server.ID, nil)
	if status != http.StatusNoContent {
		t.Errorf("admin delete = %d", status)
	}
}

func TestHandlerAttachDetach(t *testing.T) {
	f := newHTTPFixture(t)
	v, err := f.volumes.Create(f.projectID, "data", 1)
	if err != nil {
		t.Fatal(err)
	}
	_, body := f.do(t, "admin", http.MethodPost, f.servers(), serverBodyJSON("web"))
	var created struct {
		Server Server `json:"server"`
	}
	_ = json.Unmarshal(body, &created)

	attach, _ := json.Marshal(map[string]string{"volume_id": v.ID})
	status, _ := f.do(t, "member", http.MethodPost, f.servers()+"/"+created.Server.ID+"/attach", attach)
	if status != http.StatusAccepted {
		t.Fatalf("attach = %d", status)
	}
	got, _ := f.volumes.Volume(f.projectID, v.ID)
	if got.Status != cinder.StatusInUse {
		t.Errorf("volume status = %q", got.Status)
	}
	// Plain users cannot attach.
	status, _ = f.do(t, "user", http.MethodPost, f.servers()+"/"+created.Server.ID+"/attach", attach)
	if status != http.StatusForbidden {
		t.Errorf("user attach = %d, want 403", status)
	}
	status, _ = f.do(t, "member", http.MethodPost, f.servers()+"/"+created.Server.ID+"/detach", attach)
	if status != http.StatusAccepted {
		t.Fatalf("detach = %d", status)
	}
	got, _ = f.volumes.Volume(f.projectID, v.ID)
	if got.Status != cinder.StatusAvailable {
		t.Errorf("volume status after detach = %q", got.Status)
	}
}

func TestHandlerErrors(t *testing.T) {
	f := newHTTPFixture(t)
	// No token.
	status, _ := f.do(t, "", http.MethodGet, f.servers(), nil)
	if status != http.StatusUnauthorized {
		t.Errorf("no token = %d", status)
	}
	// Malformed create body.
	status, _ = f.do(t, "admin", http.MethodPost, f.servers(), []byte("{"))
	if status != http.StatusBadRequest {
		t.Errorf("bad body = %d", status)
	}
	// Ghost server.
	status, _ = f.do(t, "admin", http.MethodGet, f.servers()+"/ghost", nil)
	if status != http.StatusNotFound {
		t.Errorf("ghost show = %d", status)
	}
	status, _ = f.do(t, "admin", http.MethodDelete, f.servers()+"/ghost", nil)
	if status != http.StatusNotFound {
		t.Errorf("ghost delete = %d", status)
	}
	// Attach with malformed body.
	_, body := f.do(t, "admin", http.MethodPost, f.servers(), serverBodyJSON("web"))
	var created struct {
		Server Server `json:"server"`
	}
	_ = json.Unmarshal(body, &created)
	status, _ = f.do(t, "admin", http.MethodPost, f.servers()+"/"+created.Server.ID+"/attach", []byte("{"))
	if status != http.StatusBadRequest {
		t.Errorf("bad attach body = %d", status)
	}
	// Detach with malformed body.
	status, _ = f.do(t, "admin", http.MethodPost, f.servers()+"/"+created.Server.ID+"/detach", []byte("{"))
	if status != http.StatusBadRequest {
		t.Errorf("bad detach body = %d", status)
	}
}

func TestDefaultPolicyRoles(t *testing.T) {
	p := DefaultPolicy()
	checks := []struct {
		action string
		role   string
		want   bool
	}{
		{ActionGet, "user", true},
		{ActionCreate, "member", true},
		{ActionCreate, "user", false},
		{ActionDelete, "admin", true},
		{ActionDelete, "member", false},
		{ActionAttach, "member", true},
		{ActionDetach, "user", false},
	}
	for _, tt := range checks {
		got, err := p.Check(tt.action, credsWithRole(tt.role), nil)
		if err != nil {
			t.Fatal(err)
		}
		if got != tt.want {
			t.Errorf("Check(%s, %s) = %v, want %v", tt.action, tt.role, got, tt.want)
		}
	}
}

// credsWithRole builds credentials holding one role.
func credsWithRole(role string) rbac.Credentials {
	return rbac.Credentials{Roles: []string{role}}
}
