// Package nova simulates the OpenStack compute service: servers (virtual
// machine instances) and volume attachment. Attaching a volume moves it to
// the "in-use" status in cinder, which is exactly the condition the paper's
// DELETE(volume) guard inspects ("a volume can be deleted if ... the volume
// is not attached to any instance, i.e., its status is not in-use").
package nova

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"net/http"
	"sort"
	"sync"

	"cloudmon/internal/httpkit"
	"cloudmon/internal/openstack/cinder"
	"cloudmon/internal/openstack/keystone"
	"cloudmon/internal/rbac"
)

// Server statuses.
const (
	StatusActive  = "ACTIVE"
	StatusDeleted = "DELETED"
)

// Policy action names enforced by the service.
const (
	ActionGet    = "compute:get"
	ActionCreate = "compute:create"
	ActionDelete = "compute:delete"
	ActionAttach = "compute:attach_volume"
	ActionDetach = "compute:detach_volume"
)

// DefaultPolicy returns the compute policy of the example deployment.
func DefaultPolicy() *rbac.Policy {
	return rbac.MustPolicy(map[string]string{
		ActionGet:    "role:admin or role:member or role:user",
		ActionCreate: "role:admin or role:member",
		ActionDelete: "role:admin",
		ActionAttach: "role:admin or role:member",
		ActionDetach: "role:admin or role:member",
	})
}

// Server is a compute instance.
type Server struct {
	ID        string   `json:"id"`
	ProjectID string   `json:"-"`
	Name      string   `json:"name"`
	Status    string   `json:"status"`
	Volumes   []string `json:"volumes"`
}

// TokenValidator resolves bearer tokens; keystone.Service satisfies it.
type TokenValidator interface {
	Validate(tokenID string) (*keystone.Token, error)
}

// Service is the simulated compute service. Safe for concurrent use.
type Service struct {
	mu      sync.RWMutex
	servers map[string]*Server
	policy  *rbac.Policy
	tokens  TokenValidator
	volumes *cinder.Service
	nextID  int
}

// SetPolicy swaps the enforcement policy (mutation campaigns use this).
func (s *Service) SetPolicy(p *rbac.Policy) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.policy = p
}

// Policy returns the current enforcement policy.
func (s *Service) Policy() *rbac.Policy {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.policy
}

// New returns a nova service. Volume attachment state is pushed into the
// given cinder service. A nil policy selects DefaultPolicy.
func New(tokens TokenValidator, volumes *cinder.Service, policy *rbac.Policy) *Service {
	if policy == nil {
		policy = DefaultPolicy()
	}
	return &Service{
		servers: make(map[string]*Server),
		policy:  policy,
		tokens:  tokens,
		volumes: volumes,
	}
}

func (s *Service) genID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		s.nextID++
		return fmt.Sprintf("srv-%d", s.nextID)
	}
	return hex.EncodeToString(b[:])
}

// CreateServer boots a server (synchronously ACTIVE).
func (s *Service) CreateServer(projectID, name string) *Server {
	s.mu.Lock()
	defer s.mu.Unlock()
	srv := &Server{ID: s.genID(), ProjectID: projectID, Name: name, Status: StatusActive}
	s.servers[srv.ID] = srv
	return srv
}

// Server returns a copy of the server if it belongs to the project.
func (s *Service) Server(projectID, id string) (*Server, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	srv, ok := s.servers[id]
	if !ok || srv.ProjectID != projectID {
		return nil, false
	}
	cp := *srv
	cp.Volumes = append([]string(nil), srv.Volumes...)
	return &cp, true
}

// Servers returns the project's servers sorted by ID.
func (s *Service) Servers(projectID string) []*Server {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []*Server
	for _, srv := range s.servers {
		if srv.ProjectID == projectID {
			cp := *srv
			cp.Volumes = append([]string(nil), srv.Volumes...)
			out = append(out, &cp)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// DeleteServer removes a server, detaching its volumes first.
func (s *Service) DeleteServer(projectID, id string) error {
	s.mu.Lock()
	srv, ok := s.servers[id]
	if !ok || srv.ProjectID != projectID {
		s.mu.Unlock()
		return httpkit.NotFound("server %q not found", id)
	}
	vols := append([]string(nil), srv.Volumes...)
	delete(s.servers, id)
	s.mu.Unlock()
	// Detach outside the lock: cinder has its own lock.
	for _, volID := range vols {
		// A failed detach leaves the volume in-use; report it.
		if err := s.volumes.SetAttachment(projectID, volID, ""); err != nil {
			return fmt.Errorf("nova: detach %s during delete: %w", volID, err)
		}
	}
	return nil
}

// Attach attaches the volume to the server, marking it in-use in cinder.
func (s *Service) Attach(projectID, serverID, volumeID string) error {
	s.mu.Lock()
	srv, ok := s.servers[serverID]
	if !ok || srv.ProjectID != projectID {
		s.mu.Unlock()
		return httpkit.NotFound("server %q not found", serverID)
	}
	s.mu.Unlock()
	if err := s.volumes.SetAttachment(projectID, volumeID, serverID); err != nil {
		return err
	}
	s.mu.Lock()
	// Re-check: the server may have been deleted while we attached.
	srv, ok = s.servers[serverID]
	if ok {
		srv.Volumes = append(srv.Volumes, volumeID)
	}
	s.mu.Unlock()
	if !ok {
		// Roll back the attachment.
		if err := s.volumes.SetAttachment(projectID, volumeID, ""); err != nil {
			return fmt.Errorf("nova: rollback attach of %s: %w", volumeID, err)
		}
		return httpkit.NotFound("server %q was deleted", serverID)
	}
	return nil
}

// Detach detaches the volume from the server, marking it available.
func (s *Service) Detach(projectID, serverID, volumeID string) error {
	s.mu.Lock()
	srv, ok := s.servers[serverID]
	if !ok || srv.ProjectID != projectID {
		s.mu.Unlock()
		return httpkit.NotFound("server %q not found", serverID)
	}
	idx := -1
	for i, v := range srv.Volumes {
		if v == volumeID {
			idx = i
			break
		}
	}
	if idx < 0 {
		s.mu.Unlock()
		return httpkit.NotFound("volume %q not attached to server %q", volumeID, serverID)
	}
	srv.Volumes = append(srv.Volumes[:idx], srv.Volumes[idx+1:]...)
	s.mu.Unlock()
	return s.volumes.SetAttachment(projectID, volumeID, "")
}

func (s *Service) authorize(r *http.Request, action, projectID string) (rbac.Credentials, error) {
	tok, err := s.tokens.Validate(r.Header.Get("X-Auth-Token"))
	if err != nil {
		return rbac.Credentials{}, err
	}
	creds := tok.Credentials()
	s.mu.RLock()
	policy := s.policy
	s.mu.RUnlock()
	ok, err := policy.Check(action, creds, rbac.Target{"project_id": projectID})
	if err != nil {
		return rbac.Credentials{}, fmt.Errorf("nova: policy check %s: %w", action, err)
	}
	if !ok {
		return rbac.Credentials{}, httpkit.Forbidden(
			"policy does not allow %s for roles %v", action, creds.Roles)
	}
	return creds, nil
}

// Handler returns the Nova REST API:
//
//	GET    /v2.1/{project_id}/servers                          list
//	POST   /v2.1/{project_id}/servers                          create
//	GET    /v2.1/{project_id}/servers/{server_id}              show
//	DELETE /v2.1/{project_id}/servers/{server_id}              delete
//	POST   /v2.1/{project_id}/servers/{server_id}/attach       attach volume
//	POST   /v2.1/{project_id}/servers/{server_id}/detach       detach volume
func (s *Service) Handler() http.Handler {
	rt := &httpkit.Router{}
	rt.Handle(http.MethodGet, "/v2.1/{project_id}/servers", s.handleList)
	rt.Handle(http.MethodPost, "/v2.1/{project_id}/servers", s.handleCreate)
	rt.Handle(http.MethodGet, "/v2.1/{project_id}/servers/{server_id}", s.handleShow)
	rt.Handle(http.MethodDelete, "/v2.1/{project_id}/servers/{server_id}", s.handleDelete)
	rt.Handle(http.MethodPost, "/v2.1/{project_id}/servers/{server_id}/attach", s.handleAttach)
	rt.Handle(http.MethodPost, "/v2.1/{project_id}/servers/{server_id}/detach", s.handleDetach)
	return rt
}

type serverBody struct {
	Server *Server `json:"server"`
}

type attachRequest struct {
	VolumeID string `json:"volume_id"`
}

func (s *Service) handleList(w http.ResponseWriter, r *http.Request, params map[string]string) error {
	projectID := params["project_id"]
	if _, err := s.authorize(r, ActionGet, projectID); err != nil {
		return err
	}
	servers := s.Servers(projectID)
	if servers == nil {
		servers = []*Server{}
	}
	httpkit.WriteJSON(w, http.StatusOK, map[string][]*Server{"servers": servers})
	return nil
}

func (s *Service) handleCreate(w http.ResponseWriter, r *http.Request, params map[string]string) error {
	projectID := params["project_id"]
	if _, err := s.authorize(r, ActionCreate, projectID); err != nil {
		return err
	}
	var req serverBody
	if err := httpkit.ReadJSON(r, &req); err != nil {
		return err
	}
	name := ""
	if req.Server != nil {
		name = req.Server.Name
	}
	srv := s.CreateServer(projectID, name)
	httpkit.WriteJSON(w, http.StatusAccepted, serverBody{Server: srv})
	return nil
}

func (s *Service) handleShow(w http.ResponseWriter, r *http.Request, params map[string]string) error {
	projectID := params["project_id"]
	if _, err := s.authorize(r, ActionGet, projectID); err != nil {
		return err
	}
	srv, ok := s.Server(projectID, params["server_id"])
	if !ok {
		return httpkit.NotFound("server %q not found", params["server_id"])
	}
	httpkit.WriteJSON(w, http.StatusOK, serverBody{Server: srv})
	return nil
}

func (s *Service) handleDelete(w http.ResponseWriter, r *http.Request, params map[string]string) error {
	projectID := params["project_id"]
	if _, err := s.authorize(r, ActionDelete, projectID); err != nil {
		return err
	}
	if err := s.DeleteServer(projectID, params["server_id"]); err != nil {
		return err
	}
	w.WriteHeader(http.StatusNoContent)
	return nil
}

func (s *Service) handleAttach(w http.ResponseWriter, r *http.Request, params map[string]string) error {
	projectID := params["project_id"]
	if _, err := s.authorize(r, ActionAttach, projectID); err != nil {
		return err
	}
	var req attachRequest
	if err := httpkit.ReadJSON(r, &req); err != nil {
		return err
	}
	if err := s.Attach(projectID, params["server_id"], req.VolumeID); err != nil {
		return err
	}
	w.WriteHeader(http.StatusAccepted)
	return nil
}

func (s *Service) handleDetach(w http.ResponseWriter, r *http.Request, params map[string]string) error {
	projectID := params["project_id"]
	if _, err := s.authorize(r, ActionDetach, projectID); err != nil {
		return err
	}
	var req attachRequest
	if err := httpkit.ReadJSON(r, &req); err != nil {
		return err
	}
	if err := s.Detach(projectID, params["server_id"], req.VolumeID); err != nil {
		return err
	}
	w.WriteHeader(http.StatusAccepted)
	return nil
}
