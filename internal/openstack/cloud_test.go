package openstack_test

import (
	"net/http"
	"net/http/httptest"
	"testing"

	"cloudmon/internal/openstack"
	"cloudmon/internal/openstack/cinder"
	"cloudmon/internal/osclient"
	"cloudmon/internal/paper"
)

// deploy provisions the paper's example deployment (Section VI.D): one
// project, three user groups bound to the Table-I roles, and one user in
// each group.
func deploy(t *testing.T) (*openstack.Cloud, *httptest.Server, openstack.SeedResult) {
	t.Helper()
	cloud := openstack.New(openstack.Config{})
	res := cloud.ApplySeed(openstack.Seed{
		ProjectName: "myProject",
		Quota:       cinder.QuotaSet{Volumes: 3, Gigabytes: 100},
		GroupRoles:  paper.GroupRole(),
		Users: []openstack.SeedUser{
			{Name: "alice", Password: "pw-alice", Group: paper.GroupProjAdministrator},
			{Name: "bob", Password: "pw-bob", Group: paper.GroupServiceArchitect},
			{Name: "carol", Password: "pw-carol", Group: paper.GroupBusinessAnalyst},
		},
	})
	srv := httptest.NewServer(cloud)
	t.Cleanup(srv.Close)
	return cloud, srv, res
}

func login(t *testing.T, url, user, password, projectID string) *osclient.Client {
	t.Helper()
	c := osclient.New(url)
	if _, err := c.Authenticate(user, password, projectID); err != nil {
		t.Fatalf("authenticate %s: %v", user, err)
	}
	return c
}

func TestEndToEndVolumeLifecycle(t *testing.T) {
	_, srv, res := deploy(t)
	pid := res.ProjectID
	admin := login(t, srv.URL, "alice", "pw-alice", pid)

	// Create.
	v, status, err := admin.CreateVolume(pid, "data", 10)
	if err != nil {
		t.Fatalf("CreateVolume: %v", err)
	}
	if status != http.StatusAccepted {
		t.Errorf("create status = %d", status)
	}
	// List and show.
	vols, _, err := admin.ListVolumes(pid)
	if err != nil || len(vols) != 1 {
		t.Fatalf("ListVolumes = %v, %v", vols, err)
	}
	got, _, err := admin.GetVolume(pid, v.ID)
	if err != nil || got.Status != cinder.StatusAvailable {
		t.Fatalf("GetVolume = %+v, %v", got, err)
	}
	// Update.
	upd, _, err := admin.UpdateVolume(pid, v.ID, "renamed")
	if err != nil || upd.Name != "renamed" {
		t.Fatalf("UpdateVolume = %+v, %v", upd, err)
	}
	// Delete returns 204 as the paper's Listing 2 expects.
	status, err = admin.DeleteVolume(pid, v.ID)
	if err != nil {
		t.Fatalf("DeleteVolume: %v", err)
	}
	if status != http.StatusNoContent {
		t.Errorf("delete status = %d, want 204", status)
	}
}

func TestEndToEndTableIAuthorization(t *testing.T) {
	_, srv, res := deploy(t)
	pid := res.ProjectID
	admin := login(t, srv.URL, "alice", "pw-alice", pid)
	member := login(t, srv.URL, "bob", "pw-bob", pid)
	user := login(t, srv.URL, "carol", "pw-carol", pid)

	v, _, err := admin.CreateVolume(pid, "shared", 5)
	if err != nil {
		t.Fatal(err)
	}

	// SecReq 1.1: GET for all three roles.
	for name, c := range map[string]*osclient.Client{"admin": admin, "member": member, "user": user} {
		if _, _, err := c.GetVolume(pid, v.ID); err != nil {
			t.Errorf("GET as %s: %v", name, err)
		}
	}
	// SecReq 1.2: PUT for admin and member only.
	if _, _, err := member.UpdateVolume(pid, v.ID, "m"); err != nil {
		t.Errorf("PUT as member: %v", err)
	}
	if _, status, err := user.UpdateVolume(pid, v.ID, "u"); !osclient.IsStatus(err, http.StatusForbidden) {
		t.Errorf("PUT as user = %d, %v; want 403", status, err)
	}
	// SecReq 1.3: POST for admin and member only.
	if _, _, err := member.CreateVolume(pid, "m-vol", 5); err != nil {
		t.Errorf("POST as member: %v", err)
	}
	if _, status, err := user.CreateVolume(pid, "u-vol", 5); !osclient.IsStatus(err, http.StatusForbidden) {
		t.Errorf("POST as user = %d, %v; want 403", status, err)
	}
	// SecReq 1.4: DELETE for admin only.
	if status, err := member.DeleteVolume(pid, v.ID); !osclient.IsStatus(err, http.StatusForbidden) {
		t.Errorf("DELETE as member = %d, %v; want 403", status, err)
	}
	if status, err := user.DeleteVolume(pid, v.ID); !osclient.IsStatus(err, http.StatusForbidden) {
		t.Errorf("DELETE as user = %d, %v; want 403", status, err)
	}
	if _, err := admin.DeleteVolume(pid, v.ID); err != nil {
		t.Errorf("DELETE as admin: %v", err)
	}
}

func TestEndToEndQuotaAndInUse(t *testing.T) {
	_, srv, res := deploy(t)
	pid := res.ProjectID
	admin := login(t, srv.URL, "alice", "pw-alice", pid)

	// Fill the 3-volume quota.
	ids := make([]string, 0, 3)
	for i := 0; i < 3; i++ {
		v, _, err := admin.CreateVolume(pid, "v", 5)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, v.ID)
	}
	if _, status, err := admin.CreateVolume(pid, "overflow", 5); !osclient.IsStatus(err, http.StatusRequestEntityTooLarge) {
		t.Errorf("over-quota create = %d, %v; want 413", status, err)
	}

	// Attach one to a server: it becomes in-use and undeletable.
	server, _, err := admin.CreateServer(pid, "web")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := admin.AttachVolume(pid, server.ID, ids[0]); err != nil {
		t.Fatal(err)
	}
	got, _, err := admin.GetVolume(pid, ids[0])
	if err != nil || got.Status != cinder.StatusInUse {
		t.Fatalf("attached volume = %+v, %v", got, err)
	}
	if status, err := admin.DeleteVolume(pid, ids[0]); !osclient.IsStatus(err, http.StatusBadRequest) {
		t.Errorf("delete in-use = %d, %v; want 400", status, err)
	}
	// Detach frees it.
	if _, err := admin.DetachVolume(pid, server.ID, ids[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := admin.DeleteVolume(pid, ids[0]); err != nil {
		t.Errorf("delete after detach: %v", err)
	}
}

func TestEndToEndTokenPlumbing(t *testing.T) {
	_, srv, res := deploy(t)
	pid := res.ProjectID

	// No token: 401.
	anon := osclient.New(srv.URL)
	if _, status, err := anon.ListVolumes(pid); !osclient.IsStatus(err, http.StatusUnauthorized) {
		t.Errorf("anonymous list = %d, %v; want 401", status, err)
	}
	// Garbage token: 401.
	bogus := osclient.New(srv.URL).WithToken("bogus")
	if _, status, err := bogus.ListVolumes(pid); !osclient.IsStatus(err, http.StatusUnauthorized) {
		t.Errorf("bogus token list = %d, %v; want 401", status, err)
	}
	// Validate endpoint reflects the requester's roles.
	admin := login(t, srv.URL, "alice", "pw-alice", pid)
	tok, err := admin.ValidateToken(admin.Token)
	if err != nil {
		t.Fatal(err)
	}
	if len(tok.Roles) != 1 || tok.Roles[0] != paper.RoleAdmin {
		t.Errorf("validated roles = %v", tok.Roles)
	}
	// Unknown service prefix is 404.
	status, err := admin.Do(http.MethodGet, "/nonsense/v1", nil, nil, nil)
	if !osclient.IsStatus(err, http.StatusNotFound) {
		t.Errorf("unknown prefix = %d, %v", status, err)
	}
	// GetProject works and 404s for ghosts.
	if _, _, err := admin.GetProject(pid); err != nil {
		t.Errorf("GetProject: %v", err)
	}
	if _, status, err := admin.GetProject("ghost"); !osclient.IsStatus(err, http.StatusNotFound) {
		t.Errorf("ghost project = %d, %v", status, err)
	}
}

func TestEndToEndQuotaAPI(t *testing.T) {
	_, srv, res := deploy(t)
	pid := res.ProjectID
	admin := login(t, srv.URL, "alice", "pw-alice", pid)
	user := login(t, srv.URL, "carol", "pw-carol", pid)

	q, _, err := admin.GetQuota(pid)
	if err != nil || q.Volumes != 3 {
		t.Fatalf("GetQuota = %+v, %v", q, err)
	}
	if _, err := admin.SetQuota(pid, cinder.QuotaSet{Volumes: 5, Gigabytes: 100}); err != nil {
		t.Fatalf("SetQuota: %v", err)
	}
	q, _, _ = admin.GetQuota(pid)
	if q.Volumes != 5 {
		t.Errorf("quota after update = %+v", q)
	}
	// Plain users may read but not write quotas.
	if _, _, err := user.GetQuota(pid); err != nil {
		t.Errorf("user GetQuota: %v", err)
	}
	if status, err := user.SetQuota(pid, cinder.QuotaSet{Volumes: 99}); !osclient.IsStatus(err, http.StatusForbidden) {
		t.Errorf("user SetQuota = %d, %v; want 403", status, err)
	}
}

func TestMethodNotAllowed(t *testing.T) {
	_, srv, res := deploy(t)
	admin := login(t, srv.URL, "alice", "pw-alice", res.ProjectID)
	// PATCH on volumes is not a supported method.
	status, err := admin.Do("PATCH", "/volume/v3/"+res.ProjectID+"/volumes", nil, nil, nil)
	if !osclient.IsStatus(err, http.StatusMethodNotAllowed) {
		t.Errorf("PATCH = %d, %v; want 405", status, err)
	}
}
