// Package openstack wires the simulated IaaS services — keystone (identity),
// cinder (block storage) and nova (compute) — into one private cloud with a
// single HTTP entry point, mirroring the two-node OpenStack deployment the
// paper validates against (Section VI.D).
//
// Service APIs are mounted under path prefixes in place of the distinct
// ports a real deployment uses:
//
//	/identity  -> keystone   (e.g. /identity/v3/auth/tokens)
//	/volume    -> cinder     (e.g. /volume/v3/{project_id}/volumes)
//	/compute   -> nova       (e.g. /compute/v2.1/{project_id}/servers)
package openstack

import (
	"net/http"
	"strings"

	"cloudmon/internal/httpkit"
	"cloudmon/internal/openstack/cinder"
	"cloudmon/internal/openstack/keystone"
	"cloudmon/internal/openstack/nova"
	"cloudmon/internal/rbac"
)

// Cloud is the simulated private cloud.
type Cloud struct {
	// Identity is the keystone service.
	Identity *keystone.Service
	// Volumes is the cinder service.
	Volumes *cinder.Service
	// Compute is the nova service.
	Compute *nova.Service

	identityH http.Handler
	volumeH   http.Handler
	computeH  http.Handler
}

// Config customizes cloud construction.
type Config struct {
	// VolumePolicy overrides cinder's default policy.
	VolumePolicy *rbac.Policy
	// ComputePolicy overrides nova's default policy.
	ComputePolicy *rbac.Policy
}

// New builds a cloud with empty state.
func New(cfg Config) *Cloud {
	identity := keystone.New()
	volumes := cinder.New(identity, cfg.VolumePolicy)
	compute := nova.New(identity, volumes, cfg.ComputePolicy)
	return &Cloud{
		Identity:  identity,
		Volumes:   volumes,
		Compute:   compute,
		identityH: identity.Handler(),
		volumeH:   volumes.Handler(),
		computeH:  compute.Handler(),
	}
}

var _ http.Handler = (*Cloud)(nil)

// ServeHTTP dispatches on the service prefix.
func (c *Cloud) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	path := r.URL.Path
	switch {
	case strings.HasPrefix(path, "/identity/"):
		c.stripPrefix("/identity", c.identityH).ServeHTTP(w, r)
	case strings.HasPrefix(path, "/volume/"):
		c.stripPrefix("/volume", c.volumeH).ServeHTTP(w, r)
	case strings.HasPrefix(path, "/compute/"):
		c.stripPrefix("/compute", c.computeH).ServeHTTP(w, r)
	default:
		httpkit.WriteError(w, httpkit.NotFound("unknown service path %q", path))
	}
}

func (c *Cloud) stripPrefix(prefix string, h http.Handler) http.Handler {
	return http.StripPrefix(prefix, h)
}

// SeedUser describes one user of the example deployment.
type SeedUser struct {
	Name     string
	Password string
	Group    string
}

// Seed describes an initial deployment: a project with a quota and a set of
// users whose groups hold roles.
type Seed struct {
	ProjectName string
	Quota       cinder.QuotaSet
	// GroupRoles maps group name -> role held in the project.
	GroupRoles map[string]string
	Users      []SeedUser
}

// SeedResult reports the identifiers the seed created.
type SeedResult struct {
	ProjectID string
	// UserIDs maps user name -> user ID.
	UserIDs map[string]string
}

// ApplySeed provisions the deployment and returns the created IDs.
func (c *Cloud) ApplySeed(s Seed) SeedResult {
	proj := c.Identity.CreateProject(s.ProjectName)
	if s.Quota != (cinder.QuotaSet{}) {
		c.Volumes.SetQuota(proj.ID, s.Quota)
	}
	for group, role := range s.GroupRoles {
		c.Identity.AssignRole(proj.ID, group, role)
	}
	res := SeedResult{ProjectID: proj.ID, UserIDs: make(map[string]string, len(s.Users))}
	for _, u := range s.Users {
		user := c.Identity.CreateUser(u.Name, u.Password)
		c.Identity.AddUserToGroup(user.ID, u.Group)
		res.UserIDs[u.Name] = user.ID
	}
	return res
}
