package cinder

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"cloudmon/internal/openstack/keystone"
)

// httpFixture boots keystone + cinder with an admin, a member and a plain
// user, served over httptest.
type httpFixture struct {
	srv       *httptest.Server
	service   *Service
	projectID string
	tokens    map[string]string // role -> token
}

func newHTTPFixture(t *testing.T) *httpFixture {
	t.Helper()
	ks := keystone.New()
	proj := ks.CreateProject("p")
	groups := map[string]string{"admin": "g-admin", "member": "g-member", "user": "g-user"}
	tokens := make(map[string]string, len(groups))
	for role, group := range groups {
		u := ks.CreateUser("u-"+role, "pw")
		ks.AddUserToGroup(u.ID, group)
		ks.AssignRole(proj.ID, group, role)
		tok, err := ks.Authenticate("u-"+role, "pw", proj.ID)
		if err != nil {
			t.Fatal(err)
		}
		tokens[role] = tok.ID
	}
	svc := New(ks, nil)
	svc.SetQuota(proj.ID, QuotaSet{Volumes: 2, Gigabytes: 100})
	srv := httptest.NewServer(svc.Handler())
	t.Cleanup(srv.Close)
	return &httpFixture{srv: srv, service: svc, projectID: proj.ID, tokens: tokens}
}

// do issues a request with the role's token and returns status + body.
func (f *httpFixture) do(t *testing.T, role, method, path string, body []byte) (int, []byte) {
	t.Helper()
	var rdr *bytes.Reader
	if body == nil {
		rdr = bytes.NewReader(nil)
	} else {
		rdr = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, f.srv.URL+path, rdr)
	if err != nil {
		t.Fatal(err)
	}
	if role != "" {
		req.Header.Set("X-Auth-Token", f.tokens[role])
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	_, _ = buf.ReadFrom(resp.Body)
	return resp.StatusCode, buf.Bytes()
}

func (f *httpFixture) volumes() string { return "/v3/" + f.projectID + "/volumes" }

func createBody(name string, size int) []byte {
	b, _ := json.Marshal(map[string]map[string]any{"volume": {"name": name, "size": size}})
	return b
}

func TestHandlerVolumeLifecycle(t *testing.T) {
	f := newHTTPFixture(t)

	status, body := f.do(t, "admin", http.MethodPost, f.volumes(), createBody("v", 5))
	if status != http.StatusAccepted {
		t.Fatalf("create = %d (%s)", status, body)
	}
	var created struct {
		Volume Volume `json:"volume"`
	}
	if err := json.Unmarshal(body, &created); err != nil {
		t.Fatal(err)
	}

	status, body = f.do(t, "user", http.MethodGet, f.volumes(), nil)
	if status != http.StatusOK {
		t.Fatalf("list = %d", status)
	}
	var listed struct {
		Volumes []Volume `json:"volumes"`
	}
	if err := json.Unmarshal(body, &listed); err != nil {
		t.Fatal(err)
	}
	if len(listed.Volumes) != 1 {
		t.Errorf("listed = %v", listed.Volumes)
	}

	status, _ = f.do(t, "member", http.MethodGet, f.volumes()+"/"+created.Volume.ID, nil)
	if status != http.StatusOK {
		t.Errorf("show = %d", status)
	}
	status, _ = f.do(t, "member", http.MethodPut, f.volumes()+"/"+created.Volume.ID, createBody("renamed", 0))
	if status != http.StatusOK {
		t.Errorf("update = %d", status)
	}
	status, _ = f.do(t, "admin", http.MethodDelete, f.volumes()+"/"+created.Volume.ID, nil)
	if status != http.StatusNoContent {
		t.Errorf("delete = %d, want 204", status)
	}
}

func TestHandlerAuthorizationMatrix(t *testing.T) {
	f := newHTTPFixture(t)
	status, body := f.do(t, "admin", http.MethodPost, f.volumes(), createBody("v", 5))
	if status != http.StatusAccepted {
		t.Fatalf("setup create = %d", status)
	}
	var created struct {
		Volume Volume `json:"volume"`
	}
	_ = json.Unmarshal(body, &created)
	item := f.volumes() + "/" + created.Volume.ID

	tests := []struct {
		role, method, path string
		body               []byte
		want               int
	}{
		{"user", http.MethodPost, f.volumes(), createBody("x", 1), http.StatusForbidden},
		{"user", http.MethodPut, item, createBody("x", 0), http.StatusForbidden},
		{"user", http.MethodDelete, item, nil, http.StatusForbidden},
		{"member", http.MethodDelete, item, nil, http.StatusForbidden},
		{"user", http.MethodGet, item, nil, http.StatusOK},
	}
	for _, tt := range tests {
		status, _ := f.do(t, tt.role, tt.method, tt.path, tt.body)
		if status != tt.want {
			t.Errorf("%s %s as %s = %d, want %d", tt.method, tt.path, tt.role, status, tt.want)
		}
	}
}

func TestHandlerAuthErrors(t *testing.T) {
	f := newHTTPFixture(t)
	// Missing token.
	status, _ := f.do(t, "", http.MethodGet, f.volumes(), nil)
	if status != http.StatusUnauthorized {
		t.Errorf("no token = %d", status)
	}
	// Garbage token.
	req, _ := http.NewRequest(http.MethodGet, f.srv.URL+f.volumes(), nil)
	req.Header.Set("X-Auth-Token", "garbage")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Errorf("garbage token = %d", resp.StatusCode)
	}
}

func TestHandlerBadBodies(t *testing.T) {
	f := newHTTPFixture(t)
	for _, body := range [][]byte{nil, []byte("{"), []byte("")} {
		status, _ := f.do(t, "admin", http.MethodPost, f.volumes(), body)
		if status != http.StatusBadRequest {
			t.Errorf("create with body %q = %d, want 400", body, status)
		}
	}
	// Non-positive size.
	status, _ := f.do(t, "admin", http.MethodPost, f.volumes(), createBody("v", 0))
	if status != http.StatusBadRequest {
		t.Errorf("zero size = %d", status)
	}
}

func TestHandlerQuotaEndpoints(t *testing.T) {
	f := newHTTPFixture(t)
	path := "/v3/" + f.projectID + "/quota_sets"

	status, body := f.do(t, "user", http.MethodGet, path, nil)
	if status != http.StatusOK {
		t.Fatalf("quota get = %d", status)
	}
	var q struct {
		QuotaSet QuotaSet `json:"quota_set"`
	}
	if err := json.Unmarshal(body, &q); err != nil {
		t.Fatal(err)
	}
	if q.QuotaSet.Volumes != 2 {
		t.Errorf("quota = %+v", q.QuotaSet)
	}

	update, _ := json.Marshal(map[string]QuotaSet{"quota_set": {Volumes: 9, Gigabytes: 10}})
	status, _ = f.do(t, "member", http.MethodPut, path, update)
	if status != http.StatusForbidden {
		t.Errorf("member quota update = %d, want 403", status)
	}
	status, _ = f.do(t, "admin", http.MethodPut, path, update)
	if status != http.StatusOK {
		t.Errorf("admin quota update = %d", status)
	}
	if got := f.service.Quota(f.projectID); got.Volumes != 9 {
		t.Errorf("quota after update = %+v", got)
	}
	// Malformed quota body.
	status, _ = f.do(t, "admin", http.MethodPut, path, []byte("{"))
	if status != http.StatusBadRequest {
		t.Errorf("bad quota body = %d", status)
	}
}

func TestHandlerQuotaOverflowAndFaultStatus(t *testing.T) {
	f := newHTTPFixture(t)
	f.do(t, "admin", http.MethodPost, f.volumes(), createBody("a", 1))
	f.do(t, "admin", http.MethodPost, f.volumes(), createBody("b", 1))
	status, _ := f.do(t, "admin", http.MethodPost, f.volumes(), createBody("c", 1))
	if status != http.StatusRequestEntityTooLarge {
		t.Errorf("over quota = %d, want 413", status)
	}

	// The wrong-status mutant surfaces through the handler.
	f.service.SetFaults(Faults{DeleteStatusCode: http.StatusInternalServerError})
	_, body := f.do(t, "admin", http.MethodGet, f.volumes(), nil)
	var listed struct {
		Volumes []Volume `json:"volumes"`
	}
	_ = json.Unmarshal(body, &listed)
	status, _ = f.do(t, "admin", http.MethodDelete, f.volumes()+"/"+listed.Volumes[0].ID, nil)
	if status != http.StatusInternalServerError {
		t.Errorf("mutated delete status = %d, want 500", status)
	}
}

func TestHandlerNotFoundVolume(t *testing.T) {
	f := newHTTPFixture(t)
	status, _ := f.do(t, "admin", http.MethodGet, f.volumes()+"/ghost", nil)
	if status != http.StatusNotFound {
		t.Errorf("ghost show = %d", status)
	}
	status, _ = f.do(t, "admin", http.MethodDelete, f.volumes()+"/ghost", nil)
	if status != http.StatusNotFound {
		t.Errorf("ghost delete = %d", status)
	}
	status, _ = f.do(t, "admin", http.MethodPut, f.volumes()+"/ghost", createBody("x", 0))
	if status != http.StatusNotFound {
		t.Errorf("ghost update = %d", status)
	}
}
