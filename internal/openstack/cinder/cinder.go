// Package cinder simulates the OpenStack block-storage service: volumes
// with a status lifecycle, per-project quota sets, and policy.json-based
// authorization of every request. It is the service the paper's case study
// monitors (Section II and Section VI).
//
// The service exposes deliberate fault-injection hooks (Faults) so the
// mutation framework can reproduce the paper's validation: authorization
// and functional mutants are injected into the *cloud implementation* and
// the cloud monitor must detect them.
package cinder

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"net/http"
	"sort"
	"sync"

	"cloudmon/internal/httpkit"
	"cloudmon/internal/openstack/keystone"
	"cloudmon/internal/rbac"
)

// Volume statuses used by the simulator. Creation is synchronous, so new
// volumes are immediately "available"; attachment (driven by nova) moves
// them to "in-use".
const (
	StatusAvailable = "available"
	StatusInUse     = "in-use"
	StatusError     = "error"
)

// Policy action names enforced by the service.
const (
	ActionGet         = "volume:get"
	ActionCreate      = "volume:create"
	ActionUpdate      = "volume:update"
	ActionDelete      = "volume:delete"
	ActionQuotaGet    = "quota:get"
	ActionQuotaUpdate = "quota:update"
)

// DefaultPolicy returns the policy.json the example deployment ships with:
// the direct encoding of the paper's Table I.
func DefaultPolicy() *rbac.Policy {
	return rbac.MustPolicy(map[string]string{
		ActionGet:         "role:admin or role:member or role:user",
		ActionCreate:      "role:admin or role:member",
		ActionUpdate:      "role:admin or role:member",
		ActionDelete:      "role:admin",
		ActionQuotaGet:    "role:admin or role:member or role:user",
		ActionQuotaUpdate: "role:admin",
	})
}

// Volume is a block-storage volume.
type Volume struct {
	ID        string `json:"id"`
	ProjectID string `json:"-"`
	Name      string `json:"name"`
	SizeGB    int    `json:"size"`
	Status    string `json:"status"`
	// AttachedTo is the server the volume is attached to, if any.
	AttachedTo string `json:"attached_to,omitempty"`
}

// QuotaSet carries the per-project resource limits. The paper's behavioral
// model reads quota_sets.volume — the maximum number of volumes.
type QuotaSet struct {
	Volumes   int `json:"volumes"`
	Gigabytes int `json:"gigabytes"`
}

// DefaultQuota is applied to projects without an explicit quota set.
var DefaultQuota = QuotaSet{Volumes: 10, Gigabytes: 1000}

// TokenValidator resolves bearer tokens; keystone.Service satisfies it.
type TokenValidator interface {
	Validate(tokenID string) (*keystone.Token, error)
}

// Faults are the mutation hooks: each field models a class of
// implementation error a cloud developer could introduce. All zero values
// mean "correct implementation".
type Faults struct {
	// SkipAuth disables the policy check for the given actions — the
	// "missing authorization check" mutant.
	SkipAuth map[string]bool
	// IgnoreInUseOnDelete deletes volumes even when attached — the
	// functional mutant violating the DELETE guard.
	IgnoreInUseOnDelete bool
	// IgnoreQuotaOnCreate creates volumes beyond the project quota.
	IgnoreQuotaOnCreate bool
	// DeleteStatusCode overrides the (correct) 204 success status of
	// DELETE — the "wrong response code" mutant. Zero means correct.
	DeleteStatusCode int
	// DeleteIsNoOp acknowledges DELETE without removing the volume — a
	// lost-update mutant only the post-condition can catch.
	DeleteIsNoOp bool
	// CreateIsNoOp acknowledges POST without creating the volume.
	CreateIsNoOp bool
}

// Service is the simulated block-storage service. Safe for concurrent use.
type Service struct {
	mu      sync.RWMutex
	volumes map[string]*Volume // by volume ID
	quotas  map[string]QuotaSet
	policy  *rbac.Policy
	tokens  TokenValidator
	faults  Faults
	nextID  int
}

// New returns a cinder service authorizing via the validator and policy.
// A nil policy selects DefaultPolicy.
func New(tokens TokenValidator, policy *rbac.Policy) *Service {
	if policy == nil {
		policy = DefaultPolicy()
	}
	return &Service{
		volumes: make(map[string]*Volume),
		quotas:  make(map[string]QuotaSet),
		policy:  policy,
		tokens:  tokens,
	}
}

// SetPolicy swaps the enforcement policy (mutation campaigns use this).
func (s *Service) SetPolicy(p *rbac.Policy) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.policy = p
}

// Policy returns the current enforcement policy.
func (s *Service) Policy() *rbac.Policy {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.policy
}

// SetFaults installs mutation hooks.
func (s *Service) SetFaults(f Faults) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.faults = f
}

// SetQuota sets the project's quota.
func (s *Service) SetQuota(projectID string, q QuotaSet) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.quotas[projectID] = q
}

// Quota returns the project's quota (or the default).
func (s *Service) Quota(projectID string) QuotaSet {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.quotaLocked(projectID)
}

func (s *Service) quotaLocked(projectID string) QuotaSet {
	if q, ok := s.quotas[projectID]; ok {
		return q
	}
	return DefaultQuota
}

func (s *Service) genID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		s.nextID++
		return fmt.Sprintf("vol-%d", s.nextID)
	}
	return hex.EncodeToString(b[:])
}

// Volumes returns the project's volumes sorted by ID.
func (s *Service) Volumes(projectID string) []*Volume {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []*Volume
	for _, v := range s.volumes {
		if v.ProjectID == projectID {
			cp := *v
			out = append(out, &cp)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Volume returns a copy of the volume if it belongs to the project.
func (s *Service) Volume(projectID, id string) (*Volume, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	v, ok := s.volumes[id]
	if !ok || v.ProjectID != projectID {
		return nil, false
	}
	cp := *v
	return &cp, true
}

// Create creates a volume, enforcing the project quota (unless the quota
// mutant is active).
func (s *Service) Create(projectID, name string, sizeGB int) (*Volume, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if sizeGB <= 0 {
		return nil, httpkit.BadRequest("volume size must be positive, got %d", sizeGB)
	}
	if s.faults.CreateIsNoOp {
		// Mutant: acknowledge without creating.
		return &Volume{ID: s.genID(), ProjectID: projectID, Name: name,
			SizeGB: sizeGB, Status: StatusAvailable}, nil
	}
	if !s.faults.IgnoreQuotaOnCreate {
		q := s.quotaLocked(projectID)
		count, gigs := 0, 0
		for _, v := range s.volumes {
			if v.ProjectID == projectID {
				count++
				gigs += v.SizeGB
			}
		}
		if count+1 > q.Volumes {
			return nil, httpkit.OverLimit("volume quota exceeded (%d/%d)", count, q.Volumes)
		}
		if gigs+sizeGB > q.Gigabytes {
			return nil, httpkit.OverLimit("gigabytes quota exceeded (%d+%d/%d)", gigs, sizeGB, q.Gigabytes)
		}
	}
	v := &Volume{
		ID:        s.genID(),
		ProjectID: projectID,
		Name:      name,
		SizeGB:    sizeGB,
		Status:    StatusAvailable,
	}
	s.volumes[v.ID] = v
	return v, nil
}

// Update renames a volume.
func (s *Service) Update(projectID, id, name string) (*Volume, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.volumes[id]
	if !ok || v.ProjectID != projectID {
		return nil, httpkit.NotFound("volume %q not found", id)
	}
	if name != "" {
		v.Name = name
	}
	cp := *v
	return &cp, nil
}

// Delete removes a volume. Attached (in-use) volumes are rejected with 400,
// as in the real Cinder API, unless the in-use mutant is active.
func (s *Service) Delete(projectID, id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.volumes[id]
	if !ok || v.ProjectID != projectID {
		return httpkit.NotFound("volume %q not found", id)
	}
	if v.Status == StatusInUse && !s.faults.IgnoreInUseOnDelete {
		return httpkit.BadRequest("volume %q is in-use and cannot be deleted", id)
	}
	if s.faults.DeleteIsNoOp {
		return nil
	}
	delete(s.volumes, id)
	return nil
}

// SetAttachment marks the volume attached to a server (in-use) or detached
// (available). Nova drives this when servers attach and detach volumes.
func (s *Service) SetAttachment(projectID, id, serverID string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.volumes[id]
	if !ok || v.ProjectID != projectID {
		return httpkit.NotFound("volume %q not found", id)
	}
	if serverID == "" {
		v.AttachedTo = ""
		v.Status = StatusAvailable
		return nil
	}
	if v.Status == StatusInUse {
		return httpkit.Conflict("volume %q already attached to %q", id, v.AttachedTo)
	}
	v.AttachedTo = serverID
	v.Status = StatusInUse
	return nil
}

// authorize validates the token and enforces the policy action.
func (s *Service) authorize(r *http.Request, action, projectID string) (rbac.Credentials, error) {
	tok, err := s.tokens.Validate(r.Header.Get("X-Auth-Token"))
	if err != nil {
		return rbac.Credentials{}, err
	}
	creds := tok.Credentials()
	s.mu.RLock()
	skip := s.faults.SkipAuth[action]
	policy := s.policy
	s.mu.RUnlock()
	if skip {
		// Mutant: authorization check dropped by the developer.
		return creds, nil
	}
	ok, err := policy.Check(action, creds, rbac.Target{"project_id": projectID})
	if err != nil {
		return rbac.Credentials{}, fmt.Errorf("cinder: policy check %s: %w", action, err)
	}
	if !ok {
		return rbac.Credentials{}, httpkit.Forbidden(
			"policy does not allow %s for roles %v", action, creds.Roles)
	}
	return creds, nil
}

// Handler returns the Cinder v3 REST API:
//
//	GET    /v3/{project_id}/volumes               list volumes
//	POST   /v3/{project_id}/volumes               create volume
//	GET    /v3/{project_id}/volumes/{volume_id}   show volume
//	PUT    /v3/{project_id}/volumes/{volume_id}   update volume
//	DELETE /v3/{project_id}/volumes/{volume_id}   delete volume (204)
//	GET    /v3/{project_id}/quota_sets            show quota
//	PUT    /v3/{project_id}/quota_sets            update quota
func (s *Service) Handler() http.Handler {
	rt := &httpkit.Router{}
	rt.Handle(http.MethodGet, "/v3/{project_id}/volumes", s.handleList)
	rt.Handle(http.MethodPost, "/v3/{project_id}/volumes", s.handleCreate)
	rt.Handle(http.MethodGet, "/v3/{project_id}/volumes/{volume_id}", s.handleShow)
	rt.Handle(http.MethodPut, "/v3/{project_id}/volumes/{volume_id}", s.handleUpdate)
	rt.Handle(http.MethodDelete, "/v3/{project_id}/volumes/{volume_id}", s.handleDelete)
	rt.Handle(http.MethodGet, "/v3/{project_id}/quota_sets", s.handleQuotaGet)
	rt.Handle(http.MethodPut, "/v3/{project_id}/quota_sets", s.handleQuotaUpdate)
	return rt
}

// volumeBody is the JSON envelope for one volume.
type volumeBody struct {
	Volume *Volume `json:"volume"`
}

// createRequest is the POST body.
type createRequest struct {
	Volume struct {
		Name   string `json:"name"`
		SizeGB int    `json:"size"`
	} `json:"volume"`
}

func (s *Service) handleList(w http.ResponseWriter, r *http.Request, params map[string]string) error {
	projectID := params["project_id"]
	if _, err := s.authorize(r, ActionGet, projectID); err != nil {
		return err
	}
	vols := s.Volumes(projectID)
	if vols == nil {
		vols = []*Volume{}
	}
	httpkit.WriteJSON(w, http.StatusOK, map[string][]*Volume{"volumes": vols})
	return nil
}

func (s *Service) handleCreate(w http.ResponseWriter, r *http.Request, params map[string]string) error {
	projectID := params["project_id"]
	if _, err := s.authorize(r, ActionCreate, projectID); err != nil {
		return err
	}
	var req createRequest
	if err := httpkit.ReadJSON(r, &req); err != nil {
		return err
	}
	v, err := s.Create(projectID, req.Volume.Name, req.Volume.SizeGB)
	if err != nil {
		return err
	}
	httpkit.WriteJSON(w, http.StatusAccepted, volumeBody{Volume: v})
	return nil
}

func (s *Service) handleShow(w http.ResponseWriter, r *http.Request, params map[string]string) error {
	projectID := params["project_id"]
	if _, err := s.authorize(r, ActionGet, projectID); err != nil {
		return err
	}
	v, ok := s.Volume(projectID, params["volume_id"])
	if !ok {
		return httpkit.NotFound("volume %q not found", params["volume_id"])
	}
	httpkit.WriteJSON(w, http.StatusOK, volumeBody{Volume: v})
	return nil
}

func (s *Service) handleUpdate(w http.ResponseWriter, r *http.Request, params map[string]string) error {
	projectID := params["project_id"]
	if _, err := s.authorize(r, ActionUpdate, projectID); err != nil {
		return err
	}
	var req createRequest
	if err := httpkit.ReadJSON(r, &req); err != nil {
		return err
	}
	v, err := s.Update(projectID, params["volume_id"], req.Volume.Name)
	if err != nil {
		return err
	}
	httpkit.WriteJSON(w, http.StatusOK, volumeBody{Volume: v})
	return nil
}

func (s *Service) handleDelete(w http.ResponseWriter, r *http.Request, params map[string]string) error {
	projectID := params["project_id"]
	if _, err := s.authorize(r, ActionDelete, projectID); err != nil {
		return err
	}
	if err := s.Delete(projectID, params["volume_id"]); err != nil {
		return err
	}
	s.mu.RLock()
	status := s.faults.DeleteStatusCode
	s.mu.RUnlock()
	if status == 0 {
		status = http.StatusNoContent
	}
	w.WriteHeader(status)
	return nil
}

func (s *Service) handleQuotaGet(w http.ResponseWriter, r *http.Request, params map[string]string) error {
	projectID := params["project_id"]
	if _, err := s.authorize(r, ActionQuotaGet, projectID); err != nil {
		return err
	}
	q := s.Quota(projectID)
	httpkit.WriteJSON(w, http.StatusOK, map[string]QuotaSet{"quota_set": q})
	return nil
}

func (s *Service) handleQuotaUpdate(w http.ResponseWriter, r *http.Request, params map[string]string) error {
	projectID := params["project_id"]
	if _, err := s.authorize(r, ActionQuotaUpdate, projectID); err != nil {
		return err
	}
	var req struct {
		QuotaSet QuotaSet `json:"quota_set"`
	}
	if err := httpkit.ReadJSON(r, &req); err != nil {
		return err
	}
	s.SetQuota(projectID, req.QuotaSet)
	httpkit.WriteJSON(w, http.StatusOK, map[string]QuotaSet{"quota_set": req.QuotaSet})
	return nil
}
