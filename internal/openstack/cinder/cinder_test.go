package cinder

import (
	"errors"
	"testing"

	"cloudmon/internal/httpkit"
	"cloudmon/internal/openstack/keystone"
	"cloudmon/internal/rbac"
)

func service(t *testing.T) (*Service, string) {
	t.Helper()
	ks := keystone.New()
	proj := ks.CreateProject("p")
	return New(ks, nil), proj.ID
}

func wantStatus(t *testing.T, err error, status int) {
	t.Helper()
	var apiErr *httpkit.APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("want APIError with status %d, got %v", status, err)
	}
	if apiErr.Status != status {
		t.Fatalf("status = %d, want %d (err: %v)", apiErr.Status, status, err)
	}
}

func TestCreateListDelete(t *testing.T) {
	s, pid := service(t)
	v, err := s.Create(pid, "data", 5)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	if v.Status != StatusAvailable {
		t.Errorf("new volume status = %q", v.Status)
	}
	if got := s.Volumes(pid); len(got) != 1 || got[0].ID != v.ID {
		t.Errorf("Volumes = %v", got)
	}
	if _, ok := s.Volume(pid, v.ID); !ok {
		t.Error("Volume lookup failed")
	}
	if err := s.Delete(pid, v.ID); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if got := s.Volumes(pid); len(got) != 0 {
		t.Errorf("Volumes after delete = %v", got)
	}
}

func TestCreateValidation(t *testing.T) {
	s, pid := service(t)
	_, err := s.Create(pid, "bad", 0)
	wantStatus(t, err, 400)
	_, err = s.Create(pid, "bad", -3)
	wantStatus(t, err, 400)
}

func TestQuotaEnforcement(t *testing.T) {
	s, pid := service(t)
	s.SetQuota(pid, QuotaSet{Volumes: 2, Gigabytes: 100})
	if _, err := s.Create(pid, "a", 10); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Create(pid, "b", 10); err != nil {
		t.Fatal(err)
	}
	_, err := s.Create(pid, "c", 10)
	wantStatus(t, err, 413)

	// Gigabytes quota binds independently.
	s.SetQuota(pid, QuotaSet{Volumes: 10, Gigabytes: 25})
	_, err = s.Create(pid, "big", 10)
	wantStatus(t, err, 413)
}

func TestQuotaIsPerProject(t *testing.T) {
	ks := keystone.New()
	p1 := ks.CreateProject("p1").ID
	p2 := ks.CreateProject("p2").ID
	s := New(ks, nil)
	s.SetQuota(p1, QuotaSet{Volumes: 1, Gigabytes: 100})
	if _, err := s.Create(p1, "a", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Create(p2, "b", 1); err != nil {
		t.Errorf("other project blocked by p1 quota: %v", err)
	}
	_, err := s.Create(p1, "c", 1)
	wantStatus(t, err, 413)
}

func TestDefaultQuota(t *testing.T) {
	s, pid := service(t)
	if q := s.Quota(pid); q != DefaultQuota {
		t.Errorf("Quota = %+v, want default", q)
	}
}

func TestDeleteInUseRejected(t *testing.T) {
	s, pid := service(t)
	v, err := s.Create(pid, "data", 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SetAttachment(pid, v.ID, "server-1"); err != nil {
		t.Fatal(err)
	}
	got, _ := s.Volume(pid, v.ID)
	if got.Status != StatusInUse || got.AttachedTo != "server-1" {
		t.Fatalf("attachment not recorded: %+v", got)
	}
	err = s.Delete(pid, v.ID)
	wantStatus(t, err, 400)

	// Detach frees it for deletion.
	if err := s.SetAttachment(pid, v.ID, ""); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete(pid, v.ID); err != nil {
		t.Errorf("Delete after detach: %v", err)
	}
}

func TestDoubleAttachConflicts(t *testing.T) {
	s, pid := service(t)
	v, _ := s.Create(pid, "data", 1)
	if err := s.SetAttachment(pid, v.ID, "s1"); err != nil {
		t.Fatal(err)
	}
	err := s.SetAttachment(pid, v.ID, "s2")
	wantStatus(t, err, 409)
}

func TestNotFoundPaths(t *testing.T) {
	s, pid := service(t)
	wantStatus(t, s.Delete(pid, "ghost"), 404)
	_, err := s.Update(pid, "ghost", "x")
	wantStatus(t, err, 404)
	wantStatus(t, s.SetAttachment(pid, "ghost", "s"), 404)
	// Cross-project access is not-found, not forbidden (no information leak).
	v, _ := s.Create(pid, "data", 1)
	wantStatus(t, s.Delete("other-project", v.ID), 404)
	if _, ok := s.Volume("other-project", v.ID); ok {
		t.Error("cross-project volume visible")
	}
}

func TestUpdateRename(t *testing.T) {
	s, pid := service(t)
	v, _ := s.Create(pid, "old", 1)
	got, err := s.Update(pid, v.ID, "new")
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "new" {
		t.Errorf("name = %q", got.Name)
	}
	// Empty name keeps the old one.
	got, err = s.Update(pid, v.ID, "")
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "new" {
		t.Errorf("empty update changed name to %q", got.Name)
	}
}

func TestFaultIgnoreQuota(t *testing.T) {
	s, pid := service(t)
	s.SetQuota(pid, QuotaSet{Volumes: 1, Gigabytes: 100})
	if _, err := s.Create(pid, "a", 1); err != nil {
		t.Fatal(err)
	}
	s.SetFaults(Faults{IgnoreQuotaOnCreate: true})
	if _, err := s.Create(pid, "b", 1); err != nil {
		t.Errorf("quota mutant should allow over-quota create: %v", err)
	}
}

func TestFaultIgnoreInUse(t *testing.T) {
	s, pid := service(t)
	v, _ := s.Create(pid, "a", 1)
	if err := s.SetAttachment(pid, v.ID, "s1"); err != nil {
		t.Fatal(err)
	}
	s.SetFaults(Faults{IgnoreInUseOnDelete: true})
	if err := s.Delete(pid, v.ID); err != nil {
		t.Errorf("in-use mutant should delete attached volume: %v", err)
	}
}

func TestFaultNoOps(t *testing.T) {
	s, pid := service(t)
	s.SetFaults(Faults{CreateIsNoOp: true})
	if _, err := s.Create(pid, "ghost", 1); err != nil {
		t.Fatal(err)
	}
	if got := s.Volumes(pid); len(got) != 0 {
		t.Errorf("no-op create actually created: %v", got)
	}
	s.SetFaults(Faults{DeleteIsNoOp: true})
	v, err := s.Create(pid, "real", 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Delete(pid, v.ID); err != nil {
		t.Fatal(err)
	}
	if got := s.Volumes(pid); len(got) != 1 {
		t.Errorf("no-op delete actually deleted: %v", got)
	}
}

func TestDefaultPolicyMatchesTableI(t *testing.T) {
	p := DefaultPolicy()
	creds := func(role string) rbac.Credentials {
		return rbac.Credentials{Roles: []string{role}}
	}
	tests := []struct {
		action, role string
		want         bool
	}{
		{ActionGet, "admin", true},
		{ActionGet, "member", true},
		{ActionGet, "user", true},
		{ActionUpdate, "user", false},
		{ActionCreate, "member", true},
		{ActionCreate, "user", false},
		{ActionDelete, "admin", true},
		{ActionDelete, "member", false},
		{ActionQuotaUpdate, "member", false},
	}
	for _, tt := range tests {
		got, err := p.Check(tt.action, creds(tt.role), nil)
		if err != nil {
			t.Fatal(err)
		}
		if got != tt.want {
			t.Errorf("Check(%s, %s) = %v, want %v", tt.action, tt.role, got, tt.want)
		}
	}
}
