package keystone

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func seeded(t *testing.T) (*Service, *Project, *User) {
	t.Helper()
	s := New()
	proj := s.CreateProject("myProject")
	u := s.CreateUser("alice", "secret")
	s.AddUserToGroup(u.ID, "proj_administrator")
	s.AssignRole(proj.ID, "proj_administrator", "admin")
	return s, proj, u
}

func TestAuthenticateAndValidate(t *testing.T) {
	s, proj, u := seeded(t)
	tok, err := s.Authenticate("alice", "secret", proj.ID)
	if err != nil {
		t.Fatalf("Authenticate: %v", err)
	}
	if tok.UserID != u.ID || tok.ProjectID != proj.ID {
		t.Errorf("token scope wrong: %+v", tok)
	}
	if len(tok.Roles) != 1 || tok.Roles[0] != "admin" {
		t.Errorf("roles = %v, want [admin]", tok.Roles)
	}
	got, err := s.Validate(tok.ID)
	if err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if got.UserID != u.ID {
		t.Errorf("validated token user = %q", got.UserID)
	}
}

func TestAuthenticateRejections(t *testing.T) {
	s, proj, _ := seeded(t)
	if _, err := s.Authenticate("alice", "wrong", proj.ID); err == nil {
		t.Error("wrong password accepted")
	}
	if _, err := s.Authenticate("ghost", "secret", proj.ID); err == nil {
		t.Error("unknown user accepted")
	}
	if _, err := s.Authenticate("alice", "secret", "ghost-project"); err == nil {
		t.Error("unknown project scope accepted")
	}
}

func TestValidateRejectsUnknownAndExpired(t *testing.T) {
	s, proj, _ := seeded(t)
	if _, err := s.Validate("bogus"); err == nil {
		t.Error("unknown token accepted")
	}
	now := time.Now()
	s.SetClock(func() time.Time { return now })
	tok, err := s.Authenticate("alice", "secret", proj.ID)
	if err != nil {
		t.Fatal(err)
	}
	s.SetClock(func() time.Time { return now.Add(2 * DefaultTokenTTL) })
	if _, err := s.Validate(tok.ID); err == nil {
		t.Error("expired token accepted")
	}
}

func TestValidateReflectsRevocations(t *testing.T) {
	s, proj, u := seeded(t)
	tok, err := s.Authenticate("alice", "secret", proj.ID)
	if err != nil {
		t.Fatal(err)
	}
	// Revoke the role after issuing: validation must show the fresh set.
	s.RevokeRole(proj.ID, "proj_administrator", "admin")
	got, err := s.Validate(tok.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Roles) != 0 {
		t.Errorf("roles after revocation = %v, want none", got.Roles)
	}
	// Token revocation kills the token.
	s.Revoke(tok.ID)
	if _, err := s.Validate(tok.ID); err == nil {
		t.Error("revoked token accepted")
	}
	_ = u
}

func TestRolesPerProjectIsolation(t *testing.T) {
	s, proj, u := seeded(t)
	other := s.CreateProject("otherProject")
	if roles := s.Roles(u.ID, other.ID); len(roles) != 0 {
		t.Errorf("roles in other project = %v, want none", roles)
	}
	if roles := s.Roles(u.ID, proj.ID); len(roles) != 1 {
		t.Errorf("roles in own project = %v", roles)
	}
}

func authBody(name, password, projectID string) []byte {
	var req authRequest
	req.Auth.Identity.Password.User.Name = name
	req.Auth.Identity.Password.User.Password = password
	req.Auth.Scope.Project.ID = projectID
	b, _ := json.Marshal(req)
	return b
}

func TestHTTPAuthFlow(t *testing.T) {
	s, proj, _ := seeded(t)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	// Issue a token.
	resp, err := http.Post(srv.URL+"/v3/auth/tokens", "application/json",
		bytes.NewReader(authBody("alice", "secret", proj.ID)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("auth status = %d", resp.StatusCode)
	}
	tok := resp.Header.Get("X-Subject-Token")
	if tok == "" {
		t.Fatal("missing X-Subject-Token")
	}

	// Validate it.
	req, _ := http.NewRequest(http.MethodGet, srv.URL+"/v3/auth/tokens", nil)
	req.Header.Set("X-Auth-Token", tok)
	req.Header.Set("X-Subject-Token", tok)
	vresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer vresp.Body.Close()
	if vresp.StatusCode != http.StatusOK {
		t.Fatalf("validate status = %d", vresp.StatusCode)
	}
	var body struct {
		Token Token `json:"token"`
	}
	if err := json.NewDecoder(vresp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if len(body.Token.Roles) != 1 || body.Token.Roles[0] != "admin" {
		t.Errorf("validated roles = %v", body.Token.Roles)
	}

	// Project endpoints.
	preq, _ := http.NewRequest(http.MethodGet, srv.URL+"/v3/projects/"+proj.ID, nil)
	preq.Header.Set("X-Auth-Token", tok)
	presp, err := http.DefaultClient.Do(preq)
	if err != nil {
		t.Fatal(err)
	}
	defer presp.Body.Close()
	if presp.StatusCode != http.StatusOK {
		t.Errorf("get project status = %d", presp.StatusCode)
	}

	// Unknown project is 404.
	nreq, _ := http.NewRequest(http.MethodGet, srv.URL+"/v3/projects/nope", nil)
	nreq.Header.Set("X-Auth-Token", tok)
	nresp, err := http.DefaultClient.Do(nreq)
	if err != nil {
		t.Fatal(err)
	}
	nresp.Body.Close()
	if nresp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown project status = %d", nresp.StatusCode)
	}

	// Revoke, then validation of subject fails with 404.
	rreq, _ := http.NewRequest(http.MethodDelete, srv.URL+"/v3/auth/tokens", nil)
	rreq.Header.Set("X-Auth-Token", tok)
	rreq.Header.Set("X-Subject-Token", tok)
	rresp, err := http.DefaultClient.Do(rreq)
	if err != nil {
		t.Fatal(err)
	}
	rresp.Body.Close()
	if rresp.StatusCode != http.StatusNoContent {
		t.Errorf("revoke status = %d", rresp.StatusCode)
	}
}

func TestHTTPUnauthenticatedCalls(t *testing.T) {
	s, proj, _ := seeded(t)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	for _, path := range []string{"/v3/projects", "/v3/projects/" + proj.ID} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusUnauthorized {
			t.Errorf("GET %s without token = %d, want 401", path, resp.StatusCode)
		}
	}
	// Malformed auth body is a 400.
	resp, err := http.Post(srv.URL+"/v3/auth/tokens", "application/json",
		bytes.NewReader([]byte("{")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed auth = %d, want 400", resp.StatusCode)
	}
}

func TestProjectsListing(t *testing.T) {
	s := New()
	s.CreateProject("beta")
	s.CreateProject("alpha")
	ps := s.Projects()
	if len(ps) != 2 || ps[0].Name != "alpha" || ps[1].Name != "beta" {
		t.Errorf("Projects order wrong: %v, %v", ps[0], ps[1])
	}
}
