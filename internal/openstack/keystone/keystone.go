// Package keystone simulates the OpenStack identity service: projects,
// users, user groups, per-project role assignments and bearer tokens. The
// other simulated services (cinder, nova) validate request tokens against
// it, exactly as real OpenStack services do ("Cinder uses Keystone service
// to validate the user's credentials and authorization requests",
// Section IV).
package keystone

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"cloudmon/internal/httpkit"
	"cloudmon/internal/rbac"
)

// DefaultTokenTTL is how long issued tokens stay valid.
const DefaultTokenTTL = time.Hour

// Project is an OpenStack project (tenant).
type Project struct {
	ID   string `json:"id"`
	Name string `json:"name"`
}

// User is an identity user.
type User struct {
	ID       string `json:"id"`
	Name     string `json:"name"`
	Password string `json:"-"`
}

// Token is an issued bearer token scoped to a project.
type Token struct {
	ID        string    `json:"-"`
	UserID    string    `json:"user_id"`
	ProjectID string    `json:"project_id"`
	Roles     []string  `json:"roles"`
	Groups    []string  `json:"groups"`
	ExpiresAt time.Time `json:"expires_at"`
}

// Credentials converts the token into the rbac credential view services
// authorize against.
func (t *Token) Credentials() rbac.Credentials {
	return rbac.Credentials{
		UserID:    t.UserID,
		ProjectID: t.ProjectID,
		Roles:     t.Roles,
		Groups:    t.Groups,
	}
}

// Service is the simulated identity service. All methods are safe for
// concurrent use.
type Service struct {
	mu        sync.RWMutex
	projects  map[string]*Project
	users     map[string]*User
	usersByNm map[string]*User
	tokens    map[string]*Token
	directory *rbac.Directory
	tokenTTL  time.Duration
	now       func() time.Time
	nextID    int
}

// New returns an empty identity service.
func New() *Service {
	return &Service{
		projects:  make(map[string]*Project),
		users:     make(map[string]*User),
		usersByNm: make(map[string]*User),
		tokens:    make(map[string]*Token),
		directory: rbac.NewDirectory(),
		tokenTTL:  DefaultTokenTTL,
		now:       time.Now,
	}
}

// SetClock overrides the time source (tests use this to expire tokens).
func (s *Service) SetClock(now func() time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.now = now
}

// genID draws a random 16-byte hex identifier, falling back to a counter if
// the system randomness source fails.
func (s *Service) genID(prefix string) string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		s.nextID++
		return fmt.Sprintf("%s-%d", prefix, s.nextID)
	}
	return hex.EncodeToString(b[:])
}

// CreateProject registers a project and returns it.
func (s *Service) CreateProject(name string) *Project {
	s.mu.Lock()
	defer s.mu.Unlock()
	p := &Project{ID: s.genID("proj"), Name: name}
	s.projects[p.ID] = p
	return p
}

// Project returns the project by ID.
func (s *Service) Project(id string) (*Project, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	p, ok := s.projects[id]
	return p, ok
}

// Projects returns all projects sorted by name.
func (s *Service) Projects() []*Project {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]*Project, 0, len(s.projects))
	for _, p := range s.projects {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// CreateUser registers a user with password credentials.
func (s *Service) CreateUser(name, password string) *User {
	s.mu.Lock()
	defer s.mu.Unlock()
	u := &User{ID: s.genID("user"), Name: name, Password: password}
	s.users[u.ID] = u
	s.usersByNm[u.Name] = u
	return u
}

// AddUserToGroup records group membership.
func (s *Service) AddUserToGroup(userID, group string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.directory.AddUserToGroup(userID, group)
}

// AssignRole grants the role to the group within the project.
func (s *Service) AssignRole(projectID, group, role string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.directory.AssignRole(projectID, group, role)
}

// RevokeRole removes the grant.
func (s *Service) RevokeRole(projectID, group, role string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.directory.RevokeRole(projectID, group, role)
}

// Roles returns the roles the user holds in the project.
func (s *Service) Roles(userID, projectID string) []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.directory.Roles(userID, projectID)
}

// Authenticate verifies name/password and issues a token scoped to the
// project, carrying the user's groups and project roles.
func (s *Service) Authenticate(userName, password, projectID string) (*Token, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	u, ok := s.usersByNm[userName]
	if !ok || u.Password != password {
		return nil, httpkit.Unauthorized("invalid credentials for user %q", userName)
	}
	if _, ok := s.projects[projectID]; !ok {
		return nil, httpkit.Unauthorized("unknown scope project %q", projectID)
	}
	tok := &Token{
		ID:        s.genID("tok"),
		UserID:    u.ID,
		ProjectID: projectID,
		Roles:     s.directory.Roles(u.ID, projectID),
		Groups:    s.directory.Groups(u.ID),
		ExpiresAt: s.now().Add(s.tokenTTL),
	}
	s.tokens[tok.ID] = tok
	return tok, nil
}

// Validate resolves a bearer token, rejecting unknown and expired tokens.
// Role and group sets are re-read from the directory at validation time so
// revocations take effect immediately.
func (s *Service) Validate(tokenID string) (*Token, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	tok, ok := s.tokens[tokenID]
	if !ok {
		return nil, httpkit.Unauthorized("invalid token")
	}
	if s.now().After(tok.ExpiresAt) {
		return nil, httpkit.Unauthorized("token expired")
	}
	fresh := *tok
	fresh.Roles = s.directory.Roles(tok.UserID, tok.ProjectID)
	fresh.Groups = s.directory.Groups(tok.UserID)
	return &fresh, nil
}

// Revoke invalidates a token. Revoking an unknown token is a no-op.
func (s *Service) Revoke(tokenID string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.tokens, tokenID)
}

// authRequest is the (reduced) OpenStack v3 password-auth request body.
type authRequest struct {
	Auth struct {
		Identity struct {
			Password struct {
				User struct {
					Name     string `json:"name"`
					Password string `json:"password"`
				} `json:"user"`
			} `json:"password"`
		} `json:"identity"`
		Scope struct {
			Project struct {
				ID string `json:"id"`
			} `json:"project"`
		} `json:"scope"`
	} `json:"auth"`
}

// tokenBody is the token document returned by the auth endpoints.
type tokenBody struct {
	Token Token `json:"token"`
}

// Handler returns the Keystone REST API:
//
//	POST   /v3/auth/tokens          password auth; token in X-Subject-Token
//	GET    /v3/auth/tokens          validate X-Subject-Token (needs X-Auth-Token)
//	DELETE /v3/auth/tokens          revoke X-Subject-Token
//	GET    /v3/projects             list projects
//	GET    /v3/projects/{id}        one project
func (s *Service) Handler() http.Handler {
	rt := &httpkit.Router{}
	rt.Handle(http.MethodPost, "/v3/auth/tokens", s.handleIssueToken)
	rt.Handle(http.MethodGet, "/v3/auth/tokens", s.handleValidateToken)
	rt.Handle(http.MethodDelete, "/v3/auth/tokens", s.handleRevokeToken)
	rt.Handle(http.MethodGet, "/v3/projects", s.handleListProjects)
	rt.Handle(http.MethodGet, "/v3/projects/{project_id}", s.handleGetProject)
	return rt
}

func (s *Service) handleIssueToken(w http.ResponseWriter, r *http.Request, _ map[string]string) error {
	var req authRequest
	if err := httpkit.ReadJSON(r, &req); err != nil {
		return err
	}
	tok, err := s.Authenticate(
		req.Auth.Identity.Password.User.Name,
		req.Auth.Identity.Password.User.Password,
		req.Auth.Scope.Project.ID,
	)
	if err != nil {
		return err
	}
	w.Header().Set("X-Subject-Token", tok.ID)
	httpkit.WriteJSON(w, http.StatusCreated, tokenBody{Token: *tok})
	return nil
}

func (s *Service) handleValidateToken(w http.ResponseWriter, r *http.Request, _ map[string]string) error {
	// The caller must itself hold a valid token.
	if _, err := s.Validate(r.Header.Get("X-Auth-Token")); err != nil {
		return err
	}
	tok, err := s.Validate(r.Header.Get("X-Subject-Token"))
	if err != nil {
		// Per the Keystone API, an invalid subject token is a 404 for an
		// authenticated caller.
		return httpkit.NotFound("subject token not found")
	}
	httpkit.WriteJSON(w, http.StatusOK, tokenBody{Token: *tok})
	return nil
}

func (s *Service) handleRevokeToken(w http.ResponseWriter, r *http.Request, _ map[string]string) error {
	if _, err := s.Validate(r.Header.Get("X-Auth-Token")); err != nil {
		return err
	}
	s.Revoke(r.Header.Get("X-Subject-Token"))
	w.WriteHeader(http.StatusNoContent)
	return nil
}

func (s *Service) handleListProjects(w http.ResponseWriter, r *http.Request, _ map[string]string) error {
	if _, err := s.Validate(r.Header.Get("X-Auth-Token")); err != nil {
		return err
	}
	httpkit.WriteJSON(w, http.StatusOK, map[string][]*Project{"projects": s.Projects()})
	return nil
}

func (s *Service) handleGetProject(w http.ResponseWriter, r *http.Request, params map[string]string) error {
	if _, err := s.Validate(r.Header.Get("X-Auth-Token")); err != nil {
		return err
	}
	p, ok := s.Project(params["project_id"])
	if !ok {
		return httpkit.NotFound("project %q not found", params["project_id"])
	}
	httpkit.WriteJSON(w, http.StatusOK, map[string]*Project{"project": p})
	return nil
}
